// Table 2 — "Simulation time overhead when using gem5 and the PMU RTL model
// (gem5+PMU) and with waveform tracing enabled (gem5+PMU+waveform),
// normalized to a gem5 execution without PMU", over three array sizes.
//
// Wall-clock times are averaged over three runs, like the paper. Default
// sizes are scaled down (the paper's 3k/30k/60k quadratic sorts would take
// hours of host time); GEM5RTL_FULL=1 selects larger arrays.
//
// Every (config, size, rep) run is an independent simulation, so all of
// them fan out over the parallel runner (--jobs / GEM5RTL_JOBS). Note that
// overhead *ratios* stay meaningful under parallel execution (every config
// shares the host contention), but absolute seconds are only comparable to
// the paper's in --jobs 1 runs. Results serialize to BENCH_table2.json.
//
// Further configurations measure quiescence gating: gem5+PMU repeated with
// gating disabled (the fig. 5-programmed PMU counts cycles, so it never
// reports idle and the two should match), and an *unprogrammed* PMU pair —
// attached but never configured, the idle-heavy case where gating
// deschedules nearly every RTL tick. The gated/ungated host-time ratios
// (and a final-tick identity check — the gate must be invisible in
// simulated time) land in the JSON.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "exp/bench_report.hh"
#include "exp/runner.hh"
#include "obs/diff.hh"
#include "soc/experiments.hh"

using namespace g5r;

namespace {

struct OnceResult {
    double wallSeconds = 0;
    bool completed = false;
    Tick finalTick = 0;
    double memLatencyP50 = 0;  ///< SoC-wide memory-bus latency percentiles.
    double memLatencyP99 = 0;
    std::shared_ptr<const obs::ProfileReport> profile;  ///< GEM5RTL_PROFILE=1.
};

OnceResult runOnce(std::uint64_t baseElems, bool attachPmu, bool waveform, bool gate,
                   bool program, int rep) {
    experiments::PmuRunConfig cfg;
    cfg.layout.baseElems = baseElems;
    cfg.layout.sleepNs = 20'000;
    cfg.numCores = 1;
    cfg.attachPmu = attachPmu;
    cfg.programPmu = program;
    cfg.gateIdleTicks = gate;
    if (waveform) {
        cfg.waveformPath = "/tmp/g5r_table2_" + std::to_string(baseElems) + "_" +
                           std::to_string(rep) + ".vcd";
    }
    const auto start = std::chrono::steady_clock::now();
    const auto result = experiments::runPmuSortExperiment(cfg);
    const auto end = std::chrono::steady_clock::now();
    if (!cfg.waveformPath.empty()) std::remove(cfg.waveformPath.c_str());

    OnceResult once;
    once.wallSeconds = std::chrono::duration<double>(end - start).count();
    once.completed = result.completed;
    once.finalTick = result.finalTick;
    once.memLatencyP50 = result.memLatencyP50;
    once.memLatencyP99 = result.memLatencyP99;
    once.profile = result.profile;
    return once;
}

struct Cell {
    const char* config;
    const char* sizeLabel;
    std::uint64_t baseElems;
    bool attachPmu;
    bool waveform;
    bool gate;
    bool program;
    int rep;
};

// When the gated/ungated final-tick identity check fails, re-run just the
// mismatched pair with flight recording on and localize the first divergent
// interval. This happens after every timed run, so the recorder's cost never
// pollutes the wall-clock measurements. Packet lane only: gating removes
// dispatches by design, but the memory traffic must be identical.
void reportGatingDivergence(std::uint64_t baseElems, bool program, int rep) {
    const auto runRecorded = [&](bool gate) {
        experiments::PmuRunConfig cfg;
        cfg.layout.baseElems = baseElems;
        cfg.layout.sleepNs = 20'000;
        cfg.numCores = 1;
        cfg.attachPmu = true;
        cfg.programPmu = program;
        cfg.gateIdleTicks = gate;
        cfg.obs.recordEnabled = true;
        cfg.obs.recordPath = "/tmp/g5r_table2_" + std::to_string(baseElems) + "_" +
                             std::to_string(rep) + (gate ? "_gated" : "_ungated") +
                             ".g5rec";
        const auto result = experiments::runPmuSortExperiment(cfg);
        return result.recordPath;
    };
    const std::string gated = runRecorded(true);
    const std::string ungated = runRecorded(false);
    const auto rep2 =
        obs::diffRecordingFiles(gated, ungated, obs::DiffLane::kPacketsOnly);
    std::printf("%s\n", obs::formatDivergenceReport(rep2, "gated", "ungated").c_str());
}

}  // namespace

int main(int argc, char** argv) {
    const unsigned jobs = exp::parseJobsFlag(argc, argv);
    const bool full = experiments::fullScaleRequested();
    // Labelled after the paper's 3k/30k/60k columns; scaled for bench time.
    const std::vector<std::pair<const char*, std::uint64_t>> sizes =
        full ? std::vector<std::pair<const char*, std::uint64_t>>{
                   {"3k", 3000}, {"30k", 30000}, {"60k", 60000}}
             : std::vector<std::pair<const char*, std::uint64_t>>{
                   {"3k(x1/20)", 150}, {"30k(x1/60)", 500}, {"60k(x1/60)", 1000}};

    std::printf("# Table 2: simulation-time overhead of the PMU RTL model,\n");
    std::printf("# normalized to gem5 without the PMU (average of 3 runs)\n");
    std::printf("%-26s", "Configs \\ Size");
    for (const auto& [label, elems] : sizes) std::printf(" %14s", label);
    std::printf("\n");

    // One task per (config, size, rep), in the historical measurement order.
    constexpr int kReps = 3;  // The paper averages over three simulations.
    const struct {
        const char* name;
        bool attachPmu;
        bool waveform;
        bool gate;
        bool program;
    } configs[] = {
        {"gem5 (baseline)", false, false, true, true},
        {"gem5+PMU", true, false, true, true},
        {"gem5+PMU (ungated)", true, false, false, true},
        {"gem5+PMU (idle)", true, false, true, false},
        {"gem5+PMU (idle, ungated)", true, false, false, false},
        {"gem5+PMU+waveform", true, true, true, true},
    };
    std::vector<Cell> cells;
    std::vector<exp::Task<OnceResult>> tasks;
    for (const auto& config : configs) {
        for (const auto& [label, elems] : sizes) {
            for (int rep = 0; rep < kReps; ++rep) {
                cells.push_back(Cell{config.name, label, elems, config.attachPmu,
                                     config.waveform, config.gate, config.program, rep});
                const Cell& cell = cells.back();
                tasks.push_back(exp::Task<OnceResult>{
                    std::string{config.name} + "/" + label + "/rep" + std::to_string(rep),
                    [cell] {
                        return runOnce(cell.baseElems, cell.attachPmu, cell.waveform,
                                       cell.gate, cell.program, cell.rep);
                    }});
            }
        }
    }
    const auto sweepStart = std::chrono::steady_clock::now();
    const auto outcomes = exp::runTasks(std::move(tasks), jobs);
    const double sweepWall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - sweepStart).count();

    // Per-(config, size) averages, in the same layout as before.
    const auto average = [&](bool attachPmu, bool waveform, bool gate, bool program) {
        std::vector<double> avg;
        for (std::size_t s = 0; s < sizes.size(); ++s) {
            double total = 0;
            int count = 0;
            for (std::size_t i = 0; i < cells.size(); ++i) {
                if (cells[i].attachPmu != attachPmu || cells[i].waveform != waveform ||
                    cells[i].gate != gate || cells[i].program != program ||
                    cells[i].baseElems != sizes[s].second) {
                    continue;
                }
                if (!outcomes[i].ok) {
                    std::printf("WARN: %s failed: %s\n", outcomes[i].label.c_str(),
                                outcomes[i].error.c_str());
                    continue;
                }
                if (!waveform && !outcomes[i].value.completed) {
                    std::printf("WARN: run did not complete\n");
                }
                total += outcomes[i].value.wallSeconds;
                ++count;
            }
            avg.push_back(count > 0 ? total / count : 0.0);
        }
        return avg;
    };
    const std::vector<double> base = average(false, false, true, true);
    const std::vector<double> pmu = average(true, false, true, true);
    const std::vector<double> pmuUngated = average(true, false, false, true);
    const std::vector<double> idle = average(true, false, true, false);
    const std::vector<double> idleUngated = average(true, false, false, false);
    const std::vector<double> wave = average(true, true, true, true);

    auto row = [&](const char* name, const std::vector<double>& t) {
        std::printf("%-26s", name);
        for (std::size_t i = 0; i < t.size(); ++i) std::printf(" %14.2f", t[i] / base[i]);
        std::printf("\n");
    };
    row("gem5 (baseline)", base);
    row("gem5+PMU", pmu);
    row("gem5+PMU (ungated)", pmuUngated);
    row("gem5+PMU (idle)", idle);
    row("gem5+PMU (idle, ungated)", idleUngated);
    row("gem5+PMU+waveform", wave);

    std::printf("\n# absolute wall seconds: ");
    for (std::size_t i = 0; i < base.size(); ++i) {
        std::printf("base=%.2fs pmu=%.2fs pmu_ungated=%.2fs idle=%.2fs "
                    "idle_ungated=%.2fs wave=%.2fs  ",
                    base[i], pmu[i], pmuUngated[i], idle[i], idleUngated[i], wave[i]);
    }
    std::printf("\n");

    // Idle-tick gating must be invisible in simulated time: every gated PMU
    // run must finish on exactly the same tick as its ungated twin (same
    // programming, same size, same rep).
    bool gatingTimingNeutral = true;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (!cells[i].attachPmu || cells[i].waveform || !cells[i].gate) continue;
        for (std::size_t j = 0; j < cells.size(); ++j) {
            if (!cells[j].attachPmu || cells[j].waveform || cells[j].gate) continue;
            if (cells[j].program != cells[i].program ||
                cells[j].baseElems != cells[i].baseElems || cells[j].rep != cells[i].rep) {
                continue;
            }
            if (outcomes[i].ok && outcomes[j].ok &&
                outcomes[i].value.finalTick != outcomes[j].value.finalTick) {
                if (gatingTimingNeutral) {
                    std::printf("\n# gating broke timing at %s/%zu elems: localizing "
                                "via flight recordings...\n",
                                cells[i].sizeLabel, cells[i].baseElems);
                    reportGatingDivergence(cells[i].baseElems, cells[i].program,
                                           cells[i].rep);
                }
                gatingTimingNeutral = false;
            }
        }
    }

    // Shape checks: PMU adds modest overhead; waveforms add a lot more.
    int failures = 0;
    auto check = [&](bool ok, const char* what) {
        std::printf("[%s] %s\n", ok ? "PASS" : "WARN", what);
        if (!ok) ++failures;
    };
    const std::size_t last = sizes.size() - 1;
    check(pmu[last] / base[last] < 2.0, "PMU overhead is manageable (< 2x)");
    check(wave[last] > pmu[last], "waveform tracing costs more than the bare PMU");
    check(wave[last] / base[last] > 1.5, "waveform overhead is substantial");
    check(gatingTimingNeutral,
          "idle-tick gating is timing-neutral (identical final ticks)");
    check(idle[last] < idleUngated[last] * 0.9,
          "gating an idle (unprogrammed) PMU saves host time");

    // ---- machine-readable results ------------------------------------------
    exp::Json doc = exp::benchDocument("table2", jobs);
    doc["sweepWallSeconds"] = sweepWall;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        exp::Json entry = exp::Json::object();
        entry["config"] = cells[i].config;
        entry["size"] = cells[i].sizeLabel;
        entry["baseElems"] = cells[i].baseElems;
        entry["rep"] = cells[i].rep;
        entry["gated"] = cells[i].gate;
        entry["programmed"] = cells[i].program;
        entry["runtimeTicks"] = outcomes[i].ok ? outcomes[i].value.finalTick : Tick{0};
        entry["wallSeconds"] = outcomes[i].wallSeconds;
        entry["completed"] = outcomes[i].ok && outcomes[i].value.completed;
        entry["memLatencyP50"] = outcomes[i].ok ? outcomes[i].value.memLatencyP50 : 0.0;
        entry["memLatencyP99"] = outcomes[i].ok ? outcomes[i].value.memLatencyP99 : 0.0;
        if (!outcomes[i].error.empty()) entry["error"] = outcomes[i].error;
        if (outcomes[i].ok && outcomes[i].value.profile != nullptr) {
            exp::Json buckets = exp::Json::object();
            for (const auto& b : outcomes[i].value.profile->buckets()) {
                exp::Json one = exp::Json::object();
                one["seconds"] = b.seconds;
                one["fraction"] = b.fraction;
                buckets[b.name] = std::move(one);
            }
            entry["profileBuckets"] = std::move(buckets);
        }
        doc["points"].push(std::move(entry));
    }
    // The paper's normalized matrix, for trend tracking at a glance.
    exp::Json norm = exp::Json::object();
    const std::vector<double>* perConfig[] = {&base, &pmu,  &pmuUngated,
                                              &idle, &idleUngated, &wave};
    for (std::size_t c = 0; c < 6; ++c) {
        const std::vector<double>& t = *perConfig[c];
        exp::Json perSize = exp::Json::object();
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            perSize[sizes[i].first] = base[i] > 0 ? t[i] / base[i] : 0.0;
        }
        norm[configs[c].name] = std::move(perSize);
    }
    doc["normalizedOverhead"] = std::move(norm);
    // Host-time win from quiescence gating, per size (< 1.0 means gating
    // saved wall clock; simulated time is identical by construction). The
    // programmed PMU counts cycles and is expected near 1.0; the idle rows
    // are where gating can actually deschedule ticks.
    exp::Json gatedRatio = exp::Json::object();
    exp::Json gatedRatioIdle = exp::Json::object();
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        gatedRatio[sizes[i].first] = pmuUngated[i] > 0 ? pmu[i] / pmuUngated[i] : 0.0;
        gatedRatioIdle[sizes[i].first] =
            idleUngated[i] > 0 ? idle[i] / idleUngated[i] : 0.0;
    }
    doc["gatedVsUngated"] = std::move(gatedRatio);
    doc["gatedVsUngatedIdle"] = std::move(gatedRatioIdle);
    doc["gatingTimingNeutral"] = gatingTimingNeutral;
    const std::string path = exp::writeBenchJson("BENCH_table2.json", doc);
    if (!path.empty()) {
        std::printf("# wrote %s (%zu points, jobs=%u, sweep %.1fs)\n", path.c_str(),
                    doc["points"].size(), jobs, sweepWall);
    }
    return failures == 0 ? 0 : 2;
}
