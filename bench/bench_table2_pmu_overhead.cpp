// Table 2 — "Simulation time overhead when using gem5 and the PMU RTL model
// (gem5+PMU) and with waveform tracing enabled (gem5+PMU+waveform),
// normalized to a gem5 execution without PMU", over three array sizes.
//
// Wall-clock times are averaged over three runs, like the paper. Default
// sizes are scaled down (the paper's 3k/30k/60k quadratic sorts would take
// hours of host time); GEM5RTL_FULL=1 selects larger arrays.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "soc/experiments.hh"

using namespace g5r;

namespace {

double runOnce(std::uint64_t baseElems, bool attachPmu, bool waveform, int rep) {
    experiments::PmuRunConfig cfg;
    cfg.layout.baseElems = baseElems;
    cfg.layout.sleepNs = 20'000;
    cfg.numCores = 1;
    cfg.attachPmu = attachPmu;
    if (waveform) {
        cfg.waveformPath = "/tmp/g5r_table2_" + std::to_string(baseElems) + "_" +
                           std::to_string(rep) + ".vcd";
    }
    const auto start = std::chrono::steady_clock::now();
    const auto result = experiments::runPmuSortExperiment(cfg);
    const auto end = std::chrono::steady_clock::now();
    if (!waveform && !result.completed) std::printf("WARN: run did not complete\n");
    if (!cfg.waveformPath.empty()) std::remove(cfg.waveformPath.c_str());
    return std::chrono::duration<double>(end - start).count();
}

double average(std::uint64_t baseElems, bool attachPmu, bool waveform) {
    constexpr int kReps = 3;  // The paper averages over three simulations.
    double total = 0;
    for (int rep = 0; rep < kReps; ++rep) total += runOnce(baseElems, attachPmu, waveform, rep);
    return total / kReps;
}

}  // namespace

int main() {
    const bool full = experiments::fullScaleRequested();
    // Labelled after the paper's 3k/30k/60k columns; scaled for bench time.
    const std::vector<std::pair<const char*, std::uint64_t>> sizes =
        full ? std::vector<std::pair<const char*, std::uint64_t>>{
                   {"3k", 3000}, {"30k", 30000}, {"60k", 60000}}
             : std::vector<std::pair<const char*, std::uint64_t>>{
                   {"3k(x1/20)", 150}, {"30k(x1/60)", 500}, {"60k(x1/60)", 1000}};

    std::printf("# Table 2: simulation-time overhead of the PMU RTL model,\n");
    std::printf("# normalized to gem5 without the PMU (average of 3 runs)\n");
    std::printf("%-24s", "Configs \\ Size");
    for (const auto& [label, elems] : sizes) std::printf(" %14s", label);
    std::printf("\n");

    std::vector<double> base, pmu, wave;
    for (const auto& [label, elems] : sizes) base.push_back(average(elems, false, false));
    for (const auto& [label, elems] : sizes) pmu.push_back(average(elems, true, false));
    for (const auto& [label, elems] : sizes) wave.push_back(average(elems, true, true));

    auto row = [&](const char* name, const std::vector<double>& t) {
        std::printf("%-24s", name);
        for (std::size_t i = 0; i < t.size(); ++i) std::printf(" %14.2f", t[i] / base[i]);
        std::printf("\n");
    };
    row("gem5 (baseline)", base);
    row("gem5+PMU", pmu);
    row("gem5+PMU+waveform", wave);

    std::printf("\n# absolute wall seconds: ");
    for (std::size_t i = 0; i < base.size(); ++i) {
        std::printf("base=%.2fs pmu=%.2fs wave=%.2fs  ", base[i], pmu[i], wave[i]);
    }
    std::printf("\n");

    // Shape checks: PMU adds modest overhead; waveforms add a lot more.
    int failures = 0;
    auto check = [&](bool ok, const char* what) {
        std::printf("[%s] %s\n", ok ? "PASS" : "WARN", what);
        if (!ok) ++failures;
    };
    const std::size_t last = sizes.size() - 1;
    check(pmu[last] / base[last] < 2.0, "PMU overhead is manageable (< 2x)");
    check(wave[last] > pmu[last], "waveform tracing costs more than the bare PMU");
    check(wave[last] / base[last] > 1.5, "waveform overhead is substantial");
    return failures == 0 ? 0 : 2;
}
