// Table 1 — "Parameters for gem5+rtl full-system simulations".
//
// Regenerates the configuration table from the actual instantiated objects,
// so what is printed is what every other bench simulates.
#include <cstdio>

#include "soc/soc.hh"

using namespace g5r;

int main() {
    Simulation sim;
    const SocConfig cfg = table1Config();
    Soc soc{sim, cfg};

    std::printf("Table 1: parameters for gem5+rtl full-system simulations\n");
    std::printf("---------------------------------------------------------\n");
    std::printf("Processor      %u cores\n", cfg.numCores);
    std::printf("Cores          %u-wide issue/retire, %u-entry instruction queue,\n"
                "               %u-entry ROB, %u LDQ + %u STQ, %.0f GHz\n",
                cfg.core.width, cfg.core.iqEntries, cfg.core.robEntries,
                cfg.core.ldqEntries, cfg.core.stqEntries,
                1e3 / static_cast<double>(cfg.coreClock));

    const auto l1i = cfg.l1iParams();
    const auto l1d = cfg.l1dParams();
    const auto l2 = cfg.l2Params();
    std::printf("Private caches L1I: %uKB, %u-way, %llu cycle, %u MSHRs\n",
                l1i.sizeBytes / 1024, l1i.assoc,
                static_cast<unsigned long long>(l1i.lookupLatency), l1i.mshrs);
    std::printf("               L1D: %uKB, %u-way, %llu cycle, %u MSHRs\n",
                l1d.sizeBytes / 1024, l1d.assoc,
                static_cast<unsigned long long>(l1d.lookupLatency), l1d.mshrs);
    std::printf("               L2: %uKB, %u-way, %llu cycle, %u MSHRs, "
                "stride prefetcher %s\n",
                l2.sizeBytes / 1024, l2.assoc,
                static_cast<unsigned long long>(l2.lookupLatency), l2.mshrs,
                l2.enablePrefetcher ? "on" : "off");

    const auto llc = cfg.llcBankParams();
    std::printf("LLC            %uMB total, %u-way, %u B lines, %u banks, "
                "%u MSHRs per bank,\n               data bank access latency %llu cycles\n",
                llc.sizeBytes * cfg.llcBanks / (1024 * 1024), llc.assoc, llc.lineSize,
                cfg.llcBanks, llc.mshrs,
                static_cast<unsigned long long>(llc.lookupLatency));

    const auto noc = cfg.nocParams();
    std::printf("NoC            coherent crossbar, %u-bit wide, %llu cycles\n",
                noc.widthBytes * 8, static_cast<unsigned long long>(noc.forwardLatency));

    std::printf("Main memory    ");
    for (const MemTech tech : {MemTech::kDdr4_1ch, MemTech::kDdr4_4ch, MemTech::kGddr5,
                               MemTech::kHbm}) {
        Simulation s2;
        BackingStore store;
        MultiChannelDram dram{s2, "m", dramParamsFor(tech, cfg.memRange), store};
        std::printf("%s%-9s %u ch, %u banks/rank x%u, %llu B row buffer, "
                    "%.2f GB/s peak\n",
                    tech == MemTech::kDdr4_1ch ? "" : "               ",
                    memTechName(tech), dram.numChannels(),
                    dramParamsFor(tech, cfg.memRange).channel.banks,
                    dramParamsFor(tech, cfg.memRange).channel.ranks,
                    static_cast<unsigned long long>(
                        dramParamsFor(tech, cfg.memRange).channel.rowBufferBytes),
                    dram.peakBandwidth() / 1e9);
    }
    std::printf("PMU            20 x 32-bit counters, RTL clock %.0f GHz\n",
                1e3 / static_cast<double>(cfg.rtlClock));
    std::printf("NVDLA          nv_full-like: 2048 8-bit MACs, 1 GHz, "
                "credit-capped AXI DMA\n");
    return 0;
}
