// Ablation: DRAM write-drain policy. The controller buffers writes and
// drains them in bursts (watermark + minimum-writes-per-switch), paying a
// bus-turnaround penalty per direction switch. Sweeping the minimum drain
// burst on a mixed read/write stream shows why batched drains win: fewer
// turnarounds and higher effective bandwidth.
#include <cstdio>
#include <deque>

#include "exp/runner.hh"
#include "mem/dram.hh"
#include "mem/dram_configs.hh"
#include "sim/rng.hh"

using namespace g5r;

namespace {

/// Minimal open-loop requester: issues a prepared mix of reads and writes,
/// respecting retries, and records the completion time.
class StreamDriver : public ClockedObject {
public:
    StreamDriver(Simulation& sim, std::string name)
        : ClockedObject(sim, std::move(name), periodFromGHz(2)),
          port_(this->name() + ".port", *this),
          issueEvent_([this] { issue(); }, this->name() + ".issue") {}

    RequestPort& port() { return port_; }

    void queue(PacketPtr pkt) { sendQueue_.push_back(std::move(pkt)); }
    void startup() override { eventQueue().schedule(issueEvent_, clockEdge()); }

    std::uint64_t responses = 0;

private:
    class Port final : public RequestPort {
    public:
        Port(std::string n, StreamDriver& o) : RequestPort(std::move(n)), owner_(o) {}
        bool recvTimingResp(PacketPtr& pkt) override {
            pkt.reset();
            ++owner_.responses;
            return true;
        }
        void recvReqRetry() override { owner_.blocked_ = false; owner_.issue(); }

    private:
        StreamDriver& owner_;
    };

    void issue() {
        while (!blocked_ && !sendQueue_.empty()) {
            PacketPtr& pkt = sendQueue_.front();
            if (!port_.sendTimingReq(pkt)) {
                blocked_ = true;
                return;
            }
            sendQueue_.pop_front();
        }
    }

    Port port_;
    CallbackEvent issueEvent_;
    std::deque<PacketPtr> sendQueue_;
    bool blocked_ = false;
};

struct Result {
    Tick completion = 0;
    double turnarounds = 0;
    double bandwidthGBs = 0;
};

Result run(double lowWatermark) {
    Simulation sim;
    BackingStore store;
    auto params = dramParamsFor(MemTech::kDdr4_1ch, AddrRange{0, 1ULL << 30});
    params.channel.writeLowWatermark = lowWatermark;
    params.channel.minWritesPerSwitch = 1;  // Let the watermark govern alone.
    MultiChannelDram dram{sim, "dram", params, store};
    StreamDriver driver{sim, "driver"};
    driver.port().bind(dram.port());

    // Interleaved read and write streams over distinct regions.
    Rng rng{7};
    constexpr int kLines = 4096;
    for (int i = 0; i < kLines; ++i) {
        if (rng.below(2) == 0) {
            driver.queue(makeReadPacket(64ull * i, 64));
        } else {
            auto w = makeWritePacket((1 << 24) + 64ull * i, 64);
            w->set<std::uint64_t>(i);
            driver.queue(std::move(w));
        }
    }
    sim.run();

    Result r;
    r.completion = sim.curTick();
    r.turnarounds = sim.findStat("dram.ch0.busTurnarounds")->value();
    r.bandwidthGBs = kLines * 64.0 / ticksToSeconds(r.completion) / 1e9;
    return r;
}

}  // namespace

int main(int argc, char** argv) {
    const unsigned jobs = exp::parseJobsFlag(argc, argv);
    std::printf("# Ablation: DRAM write-drain depth (DDR4-1ch, mixed stream)\n");
    std::printf("%-22s %14s %13s %12s\n", "low watermark", "completion(us)",
                "turnarounds", "GB/s");
    const double lowWm[4] = {0.80, 0.60, 0.40, 0.10};
    std::vector<exp::Task<Result>> tasks;
    for (int i = 0; i < 4; ++i) {
        char label[32];
        std::snprintf(label, sizeof label, "writedrain/wm%.2f", lowWm[i]);
        tasks.push_back(exp::Task<Result>{label, [wm = lowWm[i]] { return run(wm); }});
    }
    const auto outcomes = exp::runTasks(std::move(tasks), jobs);

    Result results[4];
    for (int i = 0; i < 4; ++i) {
        if (!outcomes[i].ok) {
            std::printf("WARN: %s failed: %s\n", outcomes[i].label.c_str(),
                        outcomes[i].error.c_str());
        }
        results[i] = outcomes[i].value;
        std::printf("%-22.2f %14.2f %13.0f %12.2f\n", lowWm[i],
                    ticksToMs(results[i].completion) * 1000.0, results[i].turnarounds,
                    results[i].bandwidthGBs);
    }

    int failures = 0;
    auto check = [&](bool ok, const char* what) {
        std::printf("[%s] %s\n", ok ? "PASS" : "WARN", what);
        if (!ok) ++failures;
    };
    check(results[3].turnarounds < results[0].turnarounds,
          "deeper drains cause fewer bus turnarounds");
    check(results[3].completion <= results[0].completion + results[0].completion / 20,
          "deeper drains finish the mixed stream no slower (within 5%)");
    return failures == 0 ? 0 : 2;
}
