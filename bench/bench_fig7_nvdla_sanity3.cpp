// Figure 7 — "Design-space exploration using the Sanity3 benchmark.
// Normalized to an ideal 1-cycle main memory." Same layout as Figure 6 with
// the memory-intensive sanity3 convolution, which stresses every memory
// technology much harder.
//
// GEM5RTL_FULL=1 doubles the convolution's spatial dimensions.
// --jobs N (or GEM5RTL_JOBS) fans the sweep points out over N worker
// threads; the panels are bit-identical to a --jobs 1 run.
#include "nvdla_dse_common.hh"

using namespace g5r;

int main(int argc, char** argv) {
    const unsigned jobs = exp::parseJobsFlag(argc, argv);
    const unsigned scale = experiments::fullScaleRequested() ? 2 : 1;
    const auto shape = models::sanity3Shape(scale);
    const auto results = bench::runDseSweep(shape, "sanity3", bench::accelSweep(), jobs);
    const int failures = bench::printAndCheckDse(results, "Figure 7", "Sanity3");

    // Sanity3-specific claims from the paper's text.
    int extra = 0;
    auto check = [&](bool ok, const char* what) {
        std::printf("[%s] %s\n", ok ? "PASS" : "WARN", what);
        if (!ok) ++extra;
    };
    auto at = [&](unsigned n, MemTech tech, unsigned inflight) {
        return results.panels.at(n).at(tech).at(inflight).normalized;
    };
    // "The performance drops significantly with DDR4-1ch" (one instance).
    check(at(1, MemTech::kDdr4_1ch, 240) < 0.7,
          "(a) DDR4-1ch drops significantly even with one instance");
    // "Even the DDR4-2ch and DDR4-4ch setups fail to deliver comparable
    //  performance with respect to GDDR5 and HBM for 16 and 32 in-flight".
    check(at(1, MemTech::kDdr4_2ch, 32) < at(1, MemTech::kGddr5, 32),
          "(a) DDR4-2ch behind GDDR5 at 32 in-flight requests");
    // "In the case of Sanity3, even with DDR4-4ch there is a noticeable
    //  performance degradation with respect to GDDR5 and HBM" (2 instances).
    check(at(2, MemTech::kDdr4_4ch, 240) < at(2, MemTech::kHbm, 240) - 0.05,
          "(b) DDR4-4ch noticeably behind HBM with two instances");
    // "Even the GDDR5 and HBM technologies see a performance drop with
    //  respect to the 2 NVDLA accelerators" (4 instances).
    check(at(4, MemTech::kHbm, 240) < at(2, MemTech::kHbm, 240),
          "(c) even HBM degrades going from 2 to 4 instances");
    bench::writeDseBenchJson(results, "fig7", "BENCH_fig7.json", "Sanity3");
    return failures + extra == 0 ? 0 : 2;
}
