// Ablation: the RTLObject clock-ratio parameter ("a parameter can be used
// to change the frequency with respect to the core"). The same NVDLA
// workload runs with the accelerator clocked at 0.5, 1 (Table 1) and 2 GHz
// inside the 2 GHz SoC: simulated runtime scales with the accelerator clock
// until memory becomes the bottleneck, and host simulation cost scales with
// the number of RTL ticks evaluated.
#include <chrono>
#include <cstdio>

#include "exp/runner.hh"
#include "soc/experiments.hh"
#include "soc/model_loader.hh"
#include "soc/nvdla_host.hh"
#include "soc/soc.hh"

using namespace g5r;

namespace {

struct Result {
    Tick runtime = 0;
    double ticks = 0;    ///< RTL ticks evaluated.
    double wall = 0;     ///< Host seconds.
    bool ok = false;
};

Result run(Tick rtlPeriod, MemTech tech) {
    const auto start = std::chrono::steady_clock::now();

    Simulation sim;
    SocConfig socCfg = table1Config(tech);
    socCfg.numCores = 0;
    Soc soc{sim, socCfg};

    const auto trace = models::makeConvTrace(
        "ratio", models::googlenetConv2Shape(), models::NvdlaPlacement{}, 0xC10C);
    RtlObjectParams rp;
    rp.clockPeriod = rtlPeriod;
    rp.maxInflight = 128;
    RtlObject& rtl = soc.attachRtlModel("nvdla0", loadRtlModel("nvdla"), rp,
                                        Soc::MemPorts::kMainMemory, false);

    NvdlaHost::Params hp;
    hp.csbBase = soc.deviceBaseOf(0);
    NvdlaHost host{sim, "system.host0", hp, trace};
    host.port().bind(soc.addHostPort("host0"));
    host.setDoneCallback([&] { sim.exitSimLoop("done"); });

    sim.run(2'000'000'000'000ULL);

    Result r;
    r.runtime = host.finishTick();
    r.ticks = rtl.statsGroup().find("ticks")->value();
    r.ok = host.finished() && host.checksumOk();
    r.wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                 .count();
    return r;
}

}  // namespace

int main(int argc, char** argv) {
    const unsigned jobs = exp::parseJobsFlag(argc, argv);
    std::printf("# Ablation: RTL clock ratio (GoogleNet conv2, one NVDLA, HBM)\n");
    std::printf("%-12s %14s %14s %12s\n", "rtl clock", "runtime (us)", "rtl ticks",
                "host (s)");

    const struct {
        const char* name;
        Tick period;
    } clocks[] = {
        {"0.5 GHz", periodFromMHz(500)},
        {"1 GHz", periodFromGHz(1)},
        {"2 GHz", periodFromGHz(2)},
    };

    std::vector<exp::Task<Result>> tasks;
    for (int i = 0; i < 3; ++i) {
        tasks.push_back(exp::Task<Result>{
            std::string{"clockratio/"} + clocks[i].name,
            [period = clocks[i].period] { return run(period, MemTech::kHbm); }});
    }
    const auto outcomes = exp::runTasks(std::move(tasks), jobs);

    Result results[3];
    for (int i = 0; i < 3; ++i) {
        if (!outcomes[i].ok) {
            std::printf("WARN: %s failed: %s\n", outcomes[i].label.c_str(),
                        outcomes[i].error.c_str());
        }
        results[i] = outcomes[i].value;
        std::printf("%-12s %14.2f %14.0f %12.3f\n", clocks[i].name,
                    ticksToMs(results[i].runtime) * 1000.0, results[i].ticks,
                    results[i].wall);
    }

    int failures = 0;
    auto check = [&](bool ok, const char* what) {
        std::printf("[%s] %s\n", ok ? "PASS" : "WARN", what);
        if (!ok) ++failures;
    };
    check(results[0].ok && results[1].ok && results[2].ok,
          "all clock ratios verify the datapath checksum");
    check(results[0].runtime > results[1].runtime &&
              results[1].runtime > results[2].runtime,
          "a faster accelerator clock shortens the (compute-bound) run");
    // Halving the clock roughly halves compute throughput on this
    // compute-bound workload.
    const double slowdown = static_cast<double>(results[0].runtime) /
                            static_cast<double>(results[1].runtime);
    check(slowdown > 1.6 && slowdown < 2.4, "runtime scales ~2x from 1 GHz to 0.5 GHz");
    return failures == 0 ? 0 : 2;
}
