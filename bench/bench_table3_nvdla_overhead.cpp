// Table 3 — "Simulation time overhead of gem5+rtl normalized to a standalone
// Verilator simulation with a single NVDLA accelerator."
//
// The baseline is the standalone trace player (the model running against an
// ideal memory with no simulator around it — the analogue of running the
// NVIDIA-provided Verilator wrapper directly). It is compared against the
// same trace executed inside the full SoC with a perfect (1-cycle) memory
// and with the DDR4-4ch configuration, for both workloads. The full-SoC
// runs include the host's trace-load step, which is what makes the shorter
// Sanity3 run proportionally more expensive, as the paper observes.
//
// Each SoC configuration runs twice: with idle-tick quiescence gating (the
// default) and without. The gated/ungated host-time ratios plus a
// runtimeTicks identity check (gating must not move simulated time) are
// serialized to BENCH_table3.json alongside the normalized overheads.
#include <chrono>
#include <cstdio>
#include <string>

#include "exp/bench_report.hh"
#include "models/nvdla/standalone.hh"
#include "obs/diff.hh"
#include "soc/experiments.hh"
#include "soc/model_loader.hh"

using namespace g5r;

namespace {

double wallSeconds(const std::function<void()>& fn) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

double standaloneSeconds(const models::NvdlaShape& shape, int reps) {
    double total = 0;
    for (int r = 0; r < reps; ++r) {
        total += wallSeconds([&] {
            const auto model = loadRtlModel("nvdla");
            const auto trace =
                models::makeConvTrace("t", shape, models::NvdlaPlacement{}, 0xACE + r);
            BackingStore mem;
            const auto result = models::playTraceStandalone(*model, trace, mem);
            if (!result.completed || result.checksum != trace.expectedChecksum) {
                std::printf("WARN: standalone run failed verification\n");
            }
        });
    }
    return total / reps;
}

struct SocOutcome {
    double wallSeconds = 0;    ///< Average over the reps.
    Tick runtimeTicks = 0;     ///< Simulated time; identical across reps.
    bool verified = true;      ///< Every rep completed with good checksums.
};

SocOutcome socRun(const models::NvdlaShape& shape, MemTech tech, int reps, bool gate) {
    SocOutcome out;
    double total = 0;
    for (int r = 0; r < reps; ++r) {
        total += wallSeconds([&] {
            experiments::DseRunConfig cfg;
            cfg.shape = shape;
            cfg.memTech = tech;
            cfg.numCores = 1;  // The paper's host application runs on a core.
            cfg.maxInflight = 240;
            cfg.gateIdleTicks = gate;
            const auto result = experiments::runNvdlaDse(cfg);
            if (!result.completed || !result.checksumsOk) {
                std::printf("WARN: SoC run failed verification\n");
                out.verified = false;
            }
            out.runtimeTicks = result.runtimeTicks;
        });
    }
    out.wallSeconds = total / reps;
    return out;
}

// Localize a gated/ungated runtimeTicks mismatch: re-run the pair once with
// flight recording enabled (after all timed runs, so the recorder cannot
// pollute the measurements) and print the first divergent interval. Packet
// lane only — gating removes dispatches by design; memory traffic must not
// change.
void reportGatingDivergence(const char* workload, const models::NvdlaShape& shape,
                            MemTech tech) {
    const auto runRecorded = [&](bool gate) {
        experiments::DseRunConfig cfg;
        cfg.shape = shape;
        cfg.memTech = tech;
        cfg.numCores = 1;
        cfg.maxInflight = 240;
        cfg.gateIdleTicks = gate;
        cfg.obs.recordEnabled = true;
        cfg.obs.recordPath = std::string{"/tmp/g5r_table3_"} + workload +
                             (gate ? "_gated" : "_ungated") + ".g5rec";
        const auto result = experiments::runNvdlaDse(cfg);
        return result.recordPath;
    };
    const std::string gated = runRecorded(true);
    const std::string ungated = runRecorded(false);
    const auto rep =
        obs::diffRecordingFiles(gated, ungated, obs::DiffLane::kPacketsOnly);
    std::printf("%s\n", obs::formatDivergenceReport(rep, "gated", "ungated").c_str());
}

}  // namespace

int main() {
    // Larger shapes than the DSE sweeps: wall-clock ratios need runs long
    // enough that per-run constants do not dominate. Sanity3 is the short
    // job and GoogleNet the long one, as in the paper — that asymmetry is
    // what makes trace loading proportionally heavier for Sanity3.
    const bool full = experiments::fullScaleRequested();
    const unsigned sanityScale = full ? 4 : 2;
    const unsigned googleScale = full ? 12 : 6;
    constexpr int kReps = 5;

    struct Workload {
        const char* name;
        models::NvdlaShape shape;
    };
    const Workload workloads[] = {
        {"Sanity3", models::sanity3Shape(sanityScale)},
        {"GoogleNet", models::googlenetConv2Shape(googleScale)},
    };

    std::printf("# Table 3: simulation-time overhead of gem5+rtl normalized to a\n");
    std::printf("# standalone (Verilator-style) NVDLA simulation, average of %d runs\n\n",
                kReps);
    std::printf("%-34s %10s %10s\n", "", "Sanity3", "GoogleNet");

    const auto sweepStart = std::chrono::steady_clock::now();
    double base[2];
    SocOutcome perfect[2], ddr[2], perfectUngated[2], ddrUngated[2];
    for (int w = 0; w < 2; ++w) base[w] = standaloneSeconds(workloads[w].shape, kReps);
    for (int w = 0; w < 2; ++w) {
        perfect[w] = socRun(workloads[w].shape, MemTech::kIdeal, kReps, true);
        perfectUngated[w] = socRun(workloads[w].shape, MemTech::kIdeal, kReps, false);
        ddr[w] = socRun(workloads[w].shape, MemTech::kDdr4_4ch, kReps, true);
        ddrUngated[w] = socRun(workloads[w].shape, MemTech::kDdr4_4ch, kReps, false);
    }
    const double sweepWall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - sweepStart).count();

    std::printf("%-34s %10.2f %10.2f\n", "gem5+NVDLA+perfect-memory",
                perfect[0].wallSeconds / base[0], perfect[1].wallSeconds / base[1]);
    std::printf("%-34s %10.2f %10.2f\n", "gem5+NVDLA+perfect-mem (ungated)",
                perfectUngated[0].wallSeconds / base[0],
                perfectUngated[1].wallSeconds / base[1]);
    std::printf("%-34s %10.2f %10.2f\n", "gem5+NVDLA+DDR4", ddr[0].wallSeconds / base[0],
                ddr[1].wallSeconds / base[1]);
    std::printf("%-34s %10.2f %10.2f\n", "gem5+NVDLA+DDR4 (ungated)",
                ddrUngated[0].wallSeconds / base[0], ddrUngated[1].wallSeconds / base[1]);
    std::printf("\n# absolute wall seconds: standalone=%.3f/%.3f perfect=%.3f/%.3f "
                "ddr4=%.3f/%.3f\n",
                base[0], base[1], perfect[0].wallSeconds, perfect[1].wallSeconds,
                ddr[0].wallSeconds, ddr[1].wallSeconds);
    std::printf("# gated/ungated host time: perfect=%.3f/%.3f ddr4=%.3f/%.3f\n",
                perfect[0].wallSeconds / perfectUngated[0].wallSeconds,
                perfect[1].wallSeconds / perfectUngated[1].wallSeconds,
                ddr[0].wallSeconds / ddrUngated[0].wallSeconds,
                ddr[1].wallSeconds / ddrUngated[1].wallSeconds);

    int failures = 0;
    auto check = [&](bool ok, const char* what) {
        std::printf("[%s] %s\n", ok ? "PASS" : "WARN", what);
        if (!ok) ++failures;
    };
    check(perfect[0].wallSeconds / base[0] > 1.0 && perfect[1].wallSeconds / base[1] > 1.0,
          "full-system simulation costs more than the standalone player");
    check(ddr[0].wallSeconds >= perfect[0].wallSeconds * 0.9,
          "the detailed DRAM model does not make simulation cheaper");
    // Judged on the perfect-memory configuration: the DDR4 rows carry more
    // wall-clock variance than the effect size on these short default runs.
    check(perfect[0].wallSeconds / base[0] > perfect[1].wallSeconds / base[1],
          "overhead is larger for the short Sanity3 run (trace-load dominates)");
    bool timingNeutral = true;
    for (int w = 0; w < 2; ++w) {
        if (perfect[w].runtimeTicks != perfectUngated[w].runtimeTicks) {
            if (timingNeutral) {
                std::printf("\n# gating broke timing (%s, perfect memory): localizing "
                            "via flight recordings...\n", workloads[w].name);
                reportGatingDivergence(workloads[w].name, workloads[w].shape,
                                       MemTech::kIdeal);
            }
            timingNeutral = false;
        }
        if (ddr[w].runtimeTicks != ddrUngated[w].runtimeTicks) {
            if (timingNeutral) {
                std::printf("\n# gating broke timing (%s, DDR4-4ch): localizing "
                            "via flight recordings...\n", workloads[w].name);
                reportGatingDivergence(workloads[w].name, workloads[w].shape,
                                       MemTech::kDdr4_4ch);
            }
            timingNeutral = false;
        }
    }
    check(timingNeutral, "idle-tick gating is timing-neutral (identical runtimeTicks)");

    // ---- machine-readable results ------------------------------------------
    exp::Json doc = exp::benchDocument("table3", 1);
    doc["sweepWallSeconds"] = sweepWall;
    const struct {
        const char* config;
        const SocOutcome* rows;
        bool gated;
    } socConfigs[] = {
        {"gem5+NVDLA+perfect-memory", perfect, true},
        {"gem5+NVDLA+perfect-memory (ungated)", perfectUngated, false},
        {"gem5+NVDLA+DDR4", ddr, true},
        {"gem5+NVDLA+DDR4 (ungated)", ddrUngated, false},
    };
    for (int w = 0; w < 2; ++w) {
        exp::Json entry = exp::Json::object();
        entry["config"] = "standalone";
        entry["workload"] = workloads[w].name;
        entry["wallSeconds"] = base[w];
        doc["points"].push(std::move(entry));
    }
    for (const auto& sc : socConfigs) {
        for (int w = 0; w < 2; ++w) {
            exp::Json entry = exp::Json::object();
            entry["config"] = sc.config;
            entry["workload"] = workloads[w].name;
            entry["gated"] = sc.gated;
            entry["wallSeconds"] = sc.rows[w].wallSeconds;
            entry["runtimeTicks"] = sc.rows[w].runtimeTicks;
            entry["normalizedToStandalone"] =
                base[w] > 0 ? sc.rows[w].wallSeconds / base[w] : 0.0;
            entry["verified"] = sc.rows[w].verified;
            doc["points"].push(std::move(entry));
        }
    }
    // Host-time win from quiescence gating (< 1.0 means gating saved wall
    // clock; simulated time is identical — see gatingTimingNeutral).
    exp::Json gatedRatio = exp::Json::object();
    for (int w = 0; w < 2; ++w) {
        exp::Json per = exp::Json::object();
        per["perfect"] = perfectUngated[w].wallSeconds > 0
                             ? perfect[w].wallSeconds / perfectUngated[w].wallSeconds
                             : 0.0;
        per["ddr4"] = ddrUngated[w].wallSeconds > 0
                          ? ddr[w].wallSeconds / ddrUngated[w].wallSeconds
                          : 0.0;
        gatedRatio[workloads[w].name] = std::move(per);
    }
    doc["gatedVsUngated"] = std::move(gatedRatio);
    doc["gatingTimingNeutral"] = timingNeutral;
    const std::string path = exp::writeBenchJson("BENCH_table3.json", doc);
    if (!path.empty()) {
        std::printf("# wrote %s (%zu points, sweep %.1fs)\n", path.c_str(),
                    doc["points"].size(), sweepWall);
    }
    return failures == 0 ? 0 : 2;
}
