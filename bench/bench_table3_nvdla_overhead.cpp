// Table 3 — "Simulation time overhead of gem5+rtl normalized to a standalone
// Verilator simulation with a single NVDLA accelerator."
//
// The baseline is the standalone trace player (the model running against an
// ideal memory with no simulator around it — the analogue of running the
// NVIDIA-provided Verilator wrapper directly). It is compared against the
// same trace executed inside the full SoC with a perfect (1-cycle) memory
// and with the DDR4-4ch configuration, for both workloads. The full-SoC
// runs include the host's trace-load step, which is what makes the shorter
// Sanity3 run proportionally more expensive, as the paper observes.
#include <chrono>
#include <cstdio>

#include "models/nvdla/standalone.hh"
#include "soc/experiments.hh"
#include "soc/model_loader.hh"

using namespace g5r;

namespace {

double wallSeconds(const std::function<void()>& fn) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

double standaloneSeconds(const models::NvdlaShape& shape, int reps) {
    double total = 0;
    for (int r = 0; r < reps; ++r) {
        total += wallSeconds([&] {
            const auto model = loadRtlModel("nvdla");
            const auto trace =
                models::makeConvTrace("t", shape, models::NvdlaPlacement{}, 0xACE + r);
            BackingStore mem;
            const auto result = models::playTraceStandalone(*model, trace, mem);
            if (!result.completed || result.checksum != trace.expectedChecksum) {
                std::printf("WARN: standalone run failed verification\n");
            }
        });
    }
    return total / reps;
}

double socSeconds(const models::NvdlaShape& shape, MemTech tech, int reps) {
    double total = 0;
    for (int r = 0; r < reps; ++r) {
        total += wallSeconds([&] {
            experiments::DseRunConfig cfg;
            cfg.shape = shape;
            cfg.memTech = tech;
            cfg.numCores = 1;  // The paper's host application runs on a core.
            cfg.maxInflight = 240;
            const auto result = experiments::runNvdlaDse(cfg);
            if (!result.completed || !result.checksumsOk) {
                std::printf("WARN: SoC run failed verification\n");
            }
        });
    }
    return total / reps;
}

}  // namespace

int main() {
    // Larger shapes than the DSE sweeps: wall-clock ratios need runs long
    // enough that per-run constants do not dominate. Sanity3 is the short
    // job and GoogleNet the long one, as in the paper — that asymmetry is
    // what makes trace loading proportionally heavier for Sanity3.
    const bool full = experiments::fullScaleRequested();
    const unsigned sanityScale = full ? 4 : 2;
    const unsigned googleScale = full ? 12 : 6;
    constexpr int kReps = 5;

    struct Workload {
        const char* name;
        models::NvdlaShape shape;
    };
    const Workload workloads[] = {
        {"Sanity3", models::sanity3Shape(sanityScale)},
        {"GoogleNet", models::googlenetConv2Shape(googleScale)},
    };

    std::printf("# Table 3: simulation-time overhead of gem5+rtl normalized to a\n");
    std::printf("# standalone (Verilator-style) NVDLA simulation, average of %d runs\n\n",
                kReps);
    std::printf("%-34s %10s %10s\n", "", "Sanity3", "GoogleNet");

    double base[2], perfect[2], ddr[2];
    for (int w = 0; w < 2; ++w) base[w] = standaloneSeconds(workloads[w].shape, kReps);
    for (int w = 0; w < 2; ++w) {
        perfect[w] = socSeconds(workloads[w].shape, MemTech::kIdeal, kReps);
    }
    for (int w = 0; w < 2; ++w) {
        ddr[w] = socSeconds(workloads[w].shape, MemTech::kDdr4_4ch, kReps);
    }

    std::printf("%-34s %10.2f %10.2f\n", "gem5+NVDLA+perfect-memory",
                perfect[0] / base[0], perfect[1] / base[1]);
    std::printf("%-34s %10.2f %10.2f\n", "gem5+NVDLA+DDR4", ddr[0] / base[0],
                ddr[1] / base[1]);
    std::printf("\n# absolute wall seconds: standalone=%.3f/%.3f perfect=%.3f/%.3f "
                "ddr4=%.3f/%.3f\n",
                base[0], base[1], perfect[0], perfect[1], ddr[0], ddr[1]);

    int failures = 0;
    auto check = [&](bool ok, const char* what) {
        std::printf("[%s] %s\n", ok ? "PASS" : "WARN", what);
        if (!ok) ++failures;
    };
    check(perfect[0] / base[0] > 1.0 && perfect[1] / base[1] > 1.0,
          "full-system simulation costs more than the standalone player");
    check(ddr[0] >= perfect[0] * 0.9,
          "the detailed DRAM model does not make simulation cheaper");
    // Judged on the perfect-memory configuration: the DDR4 rows carry more
    // wall-clock variance than the effect size on these short default runs.
    check(perfect[0] / base[0] > perfect[1] / base[1],
          "overhead is larger for the short Sanity3 run (trace-load dominates)");
    return failures == 0 ? 0 : 2;
}
