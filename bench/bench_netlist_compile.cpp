// Compiled netlist backend vs the interpreter — the speedup that justifies
// the g5r-netlistc toolflow. For each bitonic size N the same per-tick
// workload (all inputs re-randomized every evaluation, deterministic per-mode
// seed) runs through the dirty-bit interpreter, the levelized interpreter,
// and the netlistc-compiled shared library (dlopen'd raw-kernel face, i.e.
// the exact artifact the simulator loads); equal output checksums across the
// three lanes gate the timing claims. Results serialize to
// BENCH_netlist_compile.json (schema 1): per (n, mode) wallSeconds and
// nsPerEval, plus per-n speedupVsDirty.
//
// Single-process, single-thread by design: the per-eval numbers feed the
// EXPERIMENTS.md speedup table, so no parallel runner here.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp/bench_report.hh"
#include "rtl/codegen/kernel_loader.hh"
#include "rtl/netlist.hh"
#include "sim/rng.hh"
#include "soc/model_loader.hh"

using namespace g5r;

namespace {

bool g_allOk = true;

void check(bool ok, const std::string& what) {
    std::printf("%s %s\n", ok ? "ok  " : "FAIL", what.c_str());
    if (!ok) g_allOk = false;
}

struct LaneResult {
    double wallSeconds = 0;
    std::uint64_t checksum = 0;
};

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    return h;
}

// Each lane re-randomizes every input before every evaluation (same Rng
// stream per n, so all lanes see identical stimuli — worst case for the
// dirty-bit evaluator's activity tracking, and the case the speedup claim is
// about), but only the eval() call itself is timed: input delivery and
// output readback go through different interfaces per lane (string-keyed vs
// indexed) and would otherwise pollute the per-tick evaluator comparison.
// The clock-read overhead per iteration is identical across lanes.

/// Interpreter lane.
LaneResult runInterpreted(unsigned n, rtl::EvalMode mode, unsigned iters) {
    rtl::Netlist nl{rtl::bitonicSorterNetlist(n)};
    nl.setEvalMode(mode);
    std::vector<std::string> ins, outs;
    for (unsigned i = 0; i < n; ++i) {
        ins.push_back("in" + std::to_string(i));
        outs.push_back("out" + std::to_string(i));
    }
    Rng rng{0xBE7C4ull + n};
    LaneResult r;
    std::chrono::steady_clock::duration evalTime{};
    for (unsigned it = 0; it < iters; ++it) {
        for (unsigned i = 0; i < n; ++i) nl.setInput(ins[i], rng.next());
        const auto start = std::chrono::steady_clock::now();
        nl.eval();
        evalTime += std::chrono::steady_clock::now() - start;
        for (unsigned i = 0; i < n; ++i) r.checksum = mix(r.checksum, nl.output(outs[i]));
    }
    r.wallSeconds = std::chrono::duration<double>(evalTime).count();
    return r;
}

/// Compiled lane: the prebuilt lib<name>_cN.so from the model directory.
LaneResult runCompiled(rtl::codegen::CompiledKernel& kern, unsigned n,
                       unsigned iters) {
    Rng rng{0xBE7C4ull + n};  // Same stream as the interpreter lanes.
    LaneResult r;
    std::chrono::steady_clock::duration evalTime{};
    for (unsigned it = 0; it < iters; ++it) {
        for (unsigned i = 0; i < n; ++i) kern.setInput(i, rng.next());
        const auto start = std::chrono::steady_clock::now();
        kern.eval();
        evalTime += std::chrono::steady_clock::now() - start;
        for (unsigned i = 0; i < n; ++i) r.checksum = mix(r.checksum, kern.output(i));
    }
    r.wallSeconds = std::chrono::duration<double>(evalTime).count();
    return r;
}

}  // namespace

int main() {
    const bool full = std::getenv("GEM5RTL_FULL") != nullptr;
    const unsigned iters = full ? 200'000 : 20'000;
    const std::vector<unsigned> sizes{8, 16, 32, 64};

    exp::Json doc = exp::benchDocument("netlist_compile", 1);
    doc["iters"] = iters;
    doc["points"] = exp::Json::array();

    std::printf("# bitonic eval: dirty-bit vs levelized vs compiled, %u evals/lane\n",
                iters);
    std::printf("# %4s %14s %14s %14s %10s\n", "n", "dirty ns/eval",
                "level ns/eval", "compiled ns/eval", "speedup");

    const auto sweepStart = std::chrono::steady_clock::now();
    double speedupAt64 = 0;
    for (const unsigned n : sizes) {
        const std::string soPath = compiledNetlistModelPath("bitonic", n);
        std::string error;
        auto kern = rtl::codegen::CompiledKernel::load(soPath, &error);
        if (kern == nullptr) {
            check(false, soPath + ": " + error);
            continue;
        }

        // Best of three repetitions per lane: the per-eval floor is the
        // robust statistic on a shared host (checksums must agree across
        // reps, so every rep still does all the work).
        const auto best = [](LaneResult a, const LaneResult& b) {
            if (b.checksum == a.checksum && b.wallSeconds < a.wallSeconds) {
                a.wallSeconds = b.wallSeconds;
            }
            return a;
        };
        LaneResult dirty = runInterpreted(n, rtl::EvalMode::kDirtyBit, iters);
        LaneResult level = runInterpreted(n, rtl::EvalMode::kLevelized, iters);
        LaneResult comp = runCompiled(*kern, n, iters);
        for (int rep = 1; rep < 3; ++rep) {
            dirty = best(dirty, runInterpreted(n, rtl::EvalMode::kDirtyBit, iters));
            level = best(level, runInterpreted(n, rtl::EvalMode::kLevelized, iters));
            comp = best(comp, runCompiled(*kern, n, iters));
        }

        check(dirty.checksum == comp.checksum,
              "n=" + std::to_string(n) + ": compiled checksum == dirty-bit");
        check(level.checksum == comp.checksum,
              "n=" + std::to_string(n) + ": compiled checksum == levelized");

        const double perEval = 1e9 / iters;
        const double speedup =
            comp.wallSeconds > 0 ? dirty.wallSeconds / comp.wallSeconds : 0;
        if (n == 64) speedupAt64 = speedup;
        std::printf("  %4u %14.1f %14.1f %14.1f %9.1fx\n", n,
                    dirty.wallSeconds * perEval, level.wallSeconds * perEval,
                    comp.wallSeconds * perEval, speedup);

        const struct {
            const char* mode;
            const LaneResult* r;
        } lanes[] = {{"dirty", &dirty}, {"levelized", &level}, {"compiled", &comp}};
        for (const auto& lane : lanes) {
            exp::Json entry = exp::Json::object();
            entry["n"] = n;
            entry["mode"] = lane.mode;
            entry["iters"] = iters;
            entry["wallSeconds"] = lane.r->wallSeconds;
            entry["nsPerEval"] = lane.r->wallSeconds * perEval;
            entry["speedupVsDirty"] =
                lane.r->wallSeconds > 0 ? dirty.wallSeconds / lane.r->wallSeconds
                                        : 0.0;
            char hex[32];
            std::snprintf(hex, sizeof hex, "%016llx",
                          static_cast<unsigned long long>(lane.r->checksum));
            entry["checksum"] = hex;
            doc["points"].push(std::move(entry));
        }
    }
    doc["sweepWallSeconds"] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - sweepStart)
            .count();

    // The acceptance point for the compiled backend: an order of magnitude
    // over the dirty-bit interpreter on the biggest network.
    check(speedupAt64 >= 10.0,
          "compiled eval is >= 10x dirty-bit at n=64 (got " +
              std::to_string(speedupAt64) + "x)");

    const std::string path = exp::writeBenchJson("BENCH_netlist_compile.json", doc);
    if (!path.empty()) {
        std::printf("# wrote %s (%zu points)\n", path.c_str(),
                    doc["points"].size());
    }
    return g_allOk ? 0 : 1;
}
