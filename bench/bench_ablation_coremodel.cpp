// Ablation: CPU model fidelity. gem5 offers in-order and out-of-order core
// models; the paper's Table 1 uses the OoO one. Running the Fig. 5 sorting
// benchmark on both models shows what the OoO machinery buys (and what a
// cheaper in-order model would have reported instead).
#include <cstdio>
#include <memory>

#include "exp/runner.hh"
#include "cpu/ooo_core.hh"
#include "cpu/simple_core.hh"
#include "cpu/workloads.hh"
#include "mem/cache/cache.hh"
#include "mem/simple_mem.hh"
#include "mem/xbar.hh"

using namespace g5r;

namespace {

struct Measure {
    std::uint64_t cycles = 0;
    std::uint64_t insts = 0;
    double ipc() const {
        return cycles > 0 ? static_cast<double>(insts) / static_cast<double>(cycles) : 0;
    }
};

template <typename Core, typename Params>
Measure run(const isa::Program& prog, const workloads::SortBenchmarkLayout& layout) {
    Simulation sim;
    BackingStore store;
    workloads::populateSortArrays(store, layout);
    auto core = std::make_unique<Core>(sim, "cpu", Params{}, 0);
    CacheParams cp;
    cp.sizeBytes = 64 * 1024;
    cp.assoc = 4;
    cp.mshrs = 24;
    Cache l1i{sim, "l1i", cp};
    Cache l1d{sim, "l1d", cp};
    Xbar xbar{sim, "xbar", Xbar::Params{}};
    SimpleMemory::Params mp;
    mp.range = AddrRange{0, 1ULL << 26};
    mp.latency = 60'000;
    SimpleMemory mem{sim, "mem", mp, store};

    core->icachePort().bind(l1i.cpuSidePort());
    core->dcachePort().bind(l1d.cpuSidePort());
    l1i.memSidePort().bind(xbar.addCpuSidePort("i"));
    l1d.memSidePort().bind(xbar.addCpuSidePort("d"));
    xbar.addMemSidePort("m", RouteSpec{mp.range}).bind(mem.port());
    core->setExitCallback([&sim] { sim.exitSimLoop("done"); });

    for (std::size_t i = 0; i < prog.code.size(); ++i) {
        store.store<std::uint64_t>(i * isa::kInstrBytes, prog.code[i]);
    }
    sim.run(2'000'000'000'000ULL);
    return Measure{core->cyclesRetired(), core->committedInstructions()};
}

}  // namespace

int main(int argc, char** argv) {
    const unsigned jobs = exp::parseJobsFlag(argc, argv);
    workloads::SortBenchmarkLayout layout;
    layout.baseElems = 200;
    layout.sleepNs = 10'000;
    const auto prog = workloads::sortBenchmarkProgram(layout);

    std::printf("# Ablation: in-order vs out-of-order core on the sort benchmark\n");
    const auto outcomes = exp::runTasks<Measure>(
        {{"coremodel/in-order",
          [&prog, &layout] { return run<SimpleCore, SimpleCoreParams>(prog, layout); }},
         {"coremodel/out-of-order",
          [&prog, &layout] { return run<OooCore, OooCoreParams>(prog, layout); }}},
        jobs);
    const Measure inorder = outcomes[0].value;
    const Measure ooo = outcomes[1].value;

    std::printf("%-14s %14s %14s %8s\n", "core model", "cycles", "instructions", "IPC");
    std::printf("%-14s %14llu %14llu %8.3f\n", "in-order",
                static_cast<unsigned long long>(inorder.cycles),
                static_cast<unsigned long long>(inorder.insts), inorder.ipc());
    std::printf("%-14s %14llu %14llu %8.3f\n", "out-of-order",
                static_cast<unsigned long long>(ooo.cycles),
                static_cast<unsigned long long>(ooo.insts), ooo.ipc());
    std::printf("OoO speedup: %.2fx\n",
                static_cast<double>(inorder.cycles) / static_cast<double>(ooo.cycles));

    int failures = 0;
    auto check = [&](bool ok, const char* what) {
        std::printf("[%s] %s\n", ok ? "PASS" : "WARN", what);
        if (!ok) ++failures;
    };
    check(inorder.insts == ooo.insts, "both models commit the same instruction count");
    check(ooo.cycles < inorder.cycles, "the OoO model is faster at equal work");
    return failures == 0 ? 0 : 2;
}
