// Shared driver for the Figures 6 and 7 design-space explorations.
//
// For one workload, sweeps {1,2,4} accelerator instances x the five memory
// technologies x the in-flight-request cap, normalises every point to the
// ideal 1-cycle-memory run with the same instance count and cap, and prints
// one panel per instance count in the paper's layout. Ends with qualitative
// shape checks against the paper's findings.
//
// The sweep points are independent simulations, so they fan out over the
// parallel experiment runner (src/exp/): one task per (instances, in-flight)
// column, each running the ideal-memory baseline plus the five technologies
// serially inside the task. Results assemble in submission order, so panel
// text is bit-identical whatever --jobs is. Each sweep also serializes to a
// machine-readable BENCH_<figure>.json results document.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "exp/bench_report.hh"
#include "exp/runner.hh"
#include "soc/experiments.hh"

namespace g5r::bench {

struct DsePoint {
    double normalized = 0;
    Tick runtime = 0;
    double wallSeconds = 0;   ///< Host seconds for this one simulation.
    bool ok = false;
    std::string error;        ///< Why the point failed, when it did.

    /// Per-master memory-bus latency summaries (always collected).
    std::vector<std::pair<std::string, obs::LatencySummary>> memLatency;
    /// SoC-wide latency percentiles (merged per-master histograms).
    double memLatencyP50 = 0;
    double memLatencyP99 = 0;
    /// Host-time profile, only when GEM5RTL_PROFILE (or config) enabled it.
    std::shared_ptr<const obs::ProfileReport> profile;

    /// dmaSpm-path stats (zero on direct-path points).
    double spmReadHits = 0;
    double spmReadMisses = 0;
    double spmMshrJoins = 0;
    std::uint64_t dmaDescriptors = 0;
    double dmaLatencyP50 = 0;  ///< Per-descriptor latency percentiles, ticks.
    double dmaLatencyP99 = 0;
    double dmaLatencyMax = 0;

    /// Critical-path stage blame (stage name -> blamed ticks, "unattributed"
    /// last); populated on every point since DSE runs always trace.
    std::vector<std::pair<std::string, double>> stageBlame;
};

using Series = std::map<unsigned, DsePoint>;  // inflight -> point.

struct DseResults {
    // [numAccel][tech] -> series over the in-flight sweep.
    std::map<unsigned, std::map<MemTech, Series>> panels;
    // Same layout for the DMA + SPM staging path (memPath == kDmaSpm),
    // normalised against the same direct-path ideal run.
    std::map<unsigned, std::map<MemTech, Series>> dmaSpmPanels;
    std::map<unsigned, Series> ideal;  // [numAccel] -> ideal runtimes.
    double sweepWallSeconds = 0;       ///< Whole-sweep wall clock.
    unsigned jobs = 1;                 ///< Worker threads used.
};

/// One (instances, in-flight) column: the ideal baseline plus every
/// technology over both memory paths, normalised against that baseline.
struct DseColumn {
    DsePoint ideal;
    std::map<MemTech, DsePoint> techs;
    std::map<MemTech, DsePoint> dmaSpm;
};

inline DseColumn runDseColumn(const models::NvdlaShape& shape,
                              const std::string& workloadName, unsigned numAccel,
                              unsigned inflight) {
    experiments::DseRunConfig cfg;
    cfg.shape = shape;
    cfg.workloadName = workloadName;
    cfg.numAccelerators = numAccel;
    cfg.maxInflight = inflight;
    cfg.numCores = 0;  // Idle cores contribute nothing to this study.

    const auto timed = [](const experiments::DseRunConfig& c, double& wallSeconds) {
        const auto start = std::chrono::steady_clock::now();
        const auto run = experiments::runNvdlaDse(c);
        wallSeconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
        return run;
    };

    DseColumn column;
    cfg.memTech = MemTech::kIdeal;
    const auto idealRun = timed(cfg, column.ideal.wallSeconds);
    column.ideal.normalized = 1.0;
    column.ideal.runtime = idealRun.runtimeTicks;
    column.ideal.ok = idealRun.completed && idealRun.checksumsOk;
    column.ideal.memLatency = idealRun.memLatency;
    column.ideal.memLatencyP50 = idealRun.memLatencyP50;
    column.ideal.memLatencyP99 = idealRun.memLatencyP99;
    column.ideal.profile = idealRun.profile;
    column.ideal.stageBlame = idealRun.stageBlame;

    for (const MemPath memPath : {MemPath::kDirect, MemPath::kDmaSpm}) {
        cfg.memPath = memPath;
        for (const MemTech tech : experiments::memTechSeries()) {
            cfg.memTech = tech;
            DsePoint point;
            const auto run = timed(cfg, point.wallSeconds);
            point.runtime = run.runtimeTicks;
            point.ok = run.completed && run.checksumsOk;
            point.normalized = experiments::normalizedPerf(idealRun, run);
            point.memLatency = run.memLatency;
            point.memLatencyP50 = run.memLatencyP50;
            point.memLatencyP99 = run.memLatencyP99;
            point.profile = run.profile;
            point.spmReadHits = run.spmReadHits;
            point.spmReadMisses = run.spmReadMisses;
            point.spmMshrJoins = run.spmMshrJoins;
            point.dmaDescriptors = run.dmaDescriptors;
            point.dmaLatencyP50 = run.dmaLatencyP50;
            point.dmaLatencyP99 = run.dmaLatencyP99;
            point.dmaLatencyMax = run.dmaLatencyMax;
            point.stageBlame = run.stageBlame;
            (memPath == MemPath::kDirect ? column.techs : column.dmaSpm)[tech] = point;
        }
    }
    return column;
}

inline DseResults runDseSweep(const models::NvdlaShape& shape,
                              const std::string& workloadName,
                              const std::vector<unsigned>& accelCounts,
                              unsigned jobs = 1) {
    // One task per (instances, in-flight) column, in the historical nested
    // loop order; the runner returns them in that same order.
    std::vector<exp::Task<DseColumn>> tasks;
    std::vector<std::pair<unsigned, unsigned>> keys;
    for (const unsigned n : accelCounts) {
        for (const unsigned inflight : experiments::inflightSweep()) {
            keys.emplace_back(n, inflight);
            tasks.push_back(exp::Task<DseColumn>{
                workloadName + "/n" + std::to_string(n) + "/q" + std::to_string(inflight),
                [&shape, &workloadName, n, inflight] {
                    return runDseColumn(shape, workloadName, n, inflight);
                }});
        }
    }

    const auto sweepStart = std::chrono::steady_clock::now();
    const auto outcomes = exp::runTasks(std::move(tasks), jobs);

    DseResults results;
    results.jobs = exp::resolveJobs(jobs);
    results.sweepWallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - sweepStart).count();
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const auto& [n, inflight] = keys[i];
        const auto& outcome = outcomes[i];
        if (outcome.ok) {
            results.ideal[n][inflight] = outcome.value.ideal;
            for (const auto& [tech, point] : outcome.value.techs) {
                results.panels[n][tech][inflight] = point;
            }
            for (const auto& [tech, point] : outcome.value.dmaSpm) {
                results.dmaSpmPanels[n][tech][inflight] = point;
            }
        } else {
            // A failed column stays in the tables as not-ok points carrying
            // the error, so the sweep reports it without losing neighbours.
            DsePoint failed;
            failed.error = outcome.error;
            failed.wallSeconds = outcome.wallSeconds;
            results.ideal[n][inflight] = failed;
            for (const MemTech tech : experiments::memTechSeries()) {
                results.panels[n][tech][inflight] = failed;
                results.dmaSpmPanels[n][tech][inflight] = failed;
            }
        }
    }
    return results;
}

inline int printAndCheckDse(const DseResults& results, const std::string& figure,
                            const std::string& workloadName) {
    std::printf("# %s: design-space exploration, %s workload\n", figure.c_str(),
                workloadName.c_str());
    std::printf("# performance normalized to an ideal 1-cycle main memory\n");

    bool allOk = true;
    for (const auto& [n, techs] : results.panels) {
        std::printf("\n(%c) %u NVDLA accelerator%s\n",
                    static_cast<char>('a' + (n == 1 ? 0 : (n == 2 ? 1 : 2))), n,
                    n == 1 ? "" : "s");
        std::printf("%-10s", "maxreq");
        for (const unsigned inflight : experiments::inflightSweep()) {
            std::printf(" %7u", inflight);
        }
        std::printf("\n");
        for (const MemTech tech : experiments::memTechSeries()) {
            std::printf("%-10s", memTechName(tech));
            for (const unsigned inflight : experiments::inflightSweep()) {
                const DsePoint& p = techs.at(tech).at(inflight);
                std::printf(" %7.3f", p.normalized);
                allOk = allOk && p.ok;
            }
            std::printf("\n");
        }
        // The DMA + SPM staging rows, same normalisation baseline.
        for (const MemTech tech : experiments::memTechSeries()) {
            std::printf("%-10s", (std::string(memTechName(tech)) + "+spm").c_str());
            for (const unsigned inflight : experiments::inflightSweep()) {
                const DsePoint& p = results.dmaSpmPanels.at(n).at(tech).at(inflight);
                std::printf(" %7.3f", p.normalized);
                allOk = allOk && p.ok;
            }
            std::printf("\n");
        }
    }

    // ---- qualitative shape checks (the paper's findings) -------------------
    int failures = 0;
    auto check = [&](bool ok, const std::string& what) {
        std::printf("[%s] %s\n", ok ? "PASS" : "WARN", what.c_str());
        if (!ok) ++failures;
    };
    auto at = [&](unsigned n, MemTech tech, unsigned inflight) {
        return results.panels.at(n).at(tech).at(inflight).normalized;
    };
    auto atSpm = [&](unsigned n, MemTech tech, unsigned inflight) {
        return results.dmaSpmPanels.at(n).at(tech).at(inflight).normalized;
    };

    check(allOk, "every run completed with a verified datapath checksum");

    // The PR 9 memory-path axis: staging through DMA + SPM decouples the
    // accelerator from DRAM latency, so at a starved in-flight window it
    // must beat the direct DBBIF path somewhere in the sweep.
    {
        bool spmWinsSomewhere = false;
        for (const auto& [n, techs] : results.dmaSpmPanels) {
            for (const auto& [tech, series] : techs) {
                for (const auto& [inflight, p] : series) {
                    spmWinsSomewhere =
                        spmWinsSomewhere ||
                        (p.ok && p.normalized > at(n, tech, inflight));
                }
            }
        }
        check(spmWinsSomewhere,
              "DMA+SPM staging beats the direct path for some configuration");
        check(atSpm(1, MemTech::kDdr4_1ch, 1) > at(1, MemTech::kDdr4_1ch, 1),
              "at 1 in-flight request, SPM staging hides DDR4-1ch latency");
    }

    // Starvation: one permitted request cripples every technology.
    check(at(1, MemTech::kHbm, 1) < 0.4, "1 in-flight request is latency-crippled");

    // The paper's headline: >= 64 in-flight requests needed to perform well.
    check(at(1, MemTech::kHbm, 64) > 0.85,
          "64 in-flight requests suffice on high-bandwidth memory (1 instance)");
    check(at(1, MemTech::kHbm, 64) > at(1, MemTech::kHbm, 4) + 0.2,
          "a deep in-flight window is essential (64 far better than 4)");

    // Technology ordering at full concurrency, 4 instances.
    if (results.panels.count(4) > 0) {
        check(at(4, MemTech::kDdr4_1ch, 240) < at(4, MemTech::kDdr4_4ch, 240),
              "with 4 instances, DDR4-1ch is clearly worse than DDR4-4ch");
        check(at(4, MemTech::kDdr4_4ch, 240) < at(4, MemTech::kHbm, 240) + 1e-9,
              "with 4 instances, HBM is at least as good as DDR4-4ch");
        // Scaling pressure: 4 instances do worse (normalized) than 1 on DDR4.
        check(at(4, MemTech::kDdr4_1ch, 240) < at(1, MemTech::kDdr4_1ch, 240),
              "DDR4-1ch degrades as instances are added");
    }
    return failures;
}

/// Serialize a DSE sweep to BENCH_<figure>.json: one entry per sweep point
/// (tech "ideal" included) with runtime ticks, wall seconds, normalized
/// perf, and checksum status, plus host/config metadata.
inline void writeDseBenchJson(const DseResults& results, const std::string& benchName,
                              const std::string& filename,
                              const std::string& workloadName) {
    exp::Json doc = exp::benchDocument(benchName, results.jobs);
    doc["workload"] = workloadName;
    doc["sweepWallSeconds"] = results.sweepWallSeconds;

    const auto addPoint = [&doc](unsigned n, const char* tech, unsigned inflight,
                                 const DsePoint& p, const char* memPath = "direct") {
        exp::Json entry = exp::Json::object();
        entry["accelerators"] = n;
        entry["memTech"] = tech;
        entry["memPath"] = memPath;
        entry["maxInflight"] = inflight;
        entry["runtimeTicks"] = p.runtime;
        entry["wallSeconds"] = p.wallSeconds;
        entry["normalizedPerf"] = p.normalized;
        entry["checksumOk"] = p.ok;
        if (!p.error.empty()) entry["error"] = p.error;
        if (!p.memLatency.empty()) {
            exp::Json lat = exp::Json::object();
            for (const auto& [suffix, s] : p.memLatency) {
                exp::Json one = exp::Json::object();
                one["count"] = s.count;
                one["minTicks"] = s.minTicks;
                one["meanTicks"] = s.meanTicks;
                one["maxTicks"] = s.maxTicks;
                one["p50Ticks"] = s.p50Ticks;
                one["p99Ticks"] = s.p99Ticks;
                lat[suffix] = std::move(one);
            }
            entry["memLatency"] = std::move(lat);
            entry["memLatencyP50"] = p.memLatencyP50;
            entry["memLatencyP99"] = p.memLatencyP99;
        }
        if (p.profile != nullptr) {
            exp::Json buckets = exp::Json::object();
            for (const auto& b : p.profile->buckets()) {
                exp::Json one = exp::Json::object();
                one["seconds"] = b.seconds;
                one["fraction"] = b.fraction;
                buckets[b.name] = std::move(one);
            }
            entry["profileBuckets"] = std::move(buckets);
        }
        if (p.dmaDescriptors > 0) {
            entry["spmReadHits"] = p.spmReadHits;
            entry["spmReadMisses"] = p.spmReadMisses;
            entry["spmMshrJoins"] = p.spmMshrJoins;
            entry["dmaDescriptors"] = p.dmaDescriptors;
            entry["dmaLatencyP50"] = p.dmaLatencyP50;
            entry["dmaLatencyP99"] = p.dmaLatencyP99;
            entry["dmaLatencyMax"] = p.dmaLatencyMax;
        }
        if (!p.stageBlame.empty()) {
            exp::Json blame = exp::Json::object();
            for (const auto& [stage, ticks] : p.stageBlame) blame[stage] = ticks;
            entry["stageBlame"] = std::move(blame);
        }
        doc["points"].push(std::move(entry));
    };
    for (const auto& [n, series] : results.ideal) {
        for (const auto& [inflight, point] : series) {
            addPoint(n, "ideal", inflight, point);
        }
    }
    for (const auto& [n, techs] : results.panels) {
        for (const auto& [tech, series] : techs) {
            for (const auto& [inflight, point] : series) {
                addPoint(n, memTechName(tech), inflight, point);
            }
        }
    }
    for (const auto& [n, techs] : results.dmaSpmPanels) {
        for (const auto& [tech, series] : techs) {
            for (const auto& [inflight, point] : series) {
                addPoint(n, memTechName(tech), inflight, point, "dmaSpm");
            }
        }
    }

    const std::string path = exp::writeBenchJson(filename, doc);
    if (!path.empty()) {
        std::printf("# wrote %s (%zu points, jobs=%u, sweep %.1fs)\n", path.c_str(),
                    doc["points"].size(), results.jobs, results.sweepWallSeconds);
    }
}

/// Accelerator counts: {1,2,4} like the paper; trimmed in quick CI runs.
inline std::vector<unsigned> accelSweep() { return {1u, 2u, 4u}; }

}  // namespace g5r::bench
