// Shared driver for the Figures 6 and 7 design-space explorations.
//
// For one workload, sweeps {1,2,4} accelerator instances x the five memory
// technologies x the in-flight-request cap, normalises every point to the
// ideal 1-cycle-memory run with the same instance count and cap, and prints
// one panel per instance count in the paper's layout. Ends with qualitative
// shape checks against the paper's findings.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "soc/experiments.hh"

namespace g5r::bench {

struct DsePoint {
    double normalized = 0;
    Tick runtime = 0;
    bool ok = false;
};

using Series = std::map<unsigned, DsePoint>;  // inflight -> point.

struct DseResults {
    // [numAccel][tech] -> series over the in-flight sweep.
    std::map<unsigned, std::map<MemTech, Series>> panels;
    std::map<unsigned, Series> ideal;  // [numAccel] -> ideal runtimes.
};

inline DseResults runDseSweep(const models::NvdlaShape& shape,
                              const std::string& workloadName,
                              const std::vector<unsigned>& accelCounts) {
    DseResults results;
    for (const unsigned n : accelCounts) {
        for (const unsigned inflight : experiments::inflightSweep()) {
            experiments::DseRunConfig cfg;
            cfg.shape = shape;
            cfg.workloadName = workloadName;
            cfg.numAccelerators = n;
            cfg.maxInflight = inflight;
            cfg.numCores = 0;  // Idle cores contribute nothing to this study.

            cfg.memTech = MemTech::kIdeal;
            const auto idealRun = experiments::runNvdlaDse(cfg);
            results.ideal[n][inflight] =
                DsePoint{1.0, idealRun.runtimeTicks,
                         idealRun.completed && idealRun.checksumsOk};

            for (const MemTech tech : experiments::memTechSeries()) {
                cfg.memTech = tech;
                const auto run = experiments::runNvdlaDse(cfg);
                DsePoint point;
                point.runtime = run.runtimeTicks;
                point.ok = run.completed && run.checksumsOk;
                point.normalized = experiments::normalizedPerf(idealRun, run);
                results.panels[n][tech][inflight] = point;
            }
        }
    }
    return results;
}

inline int printAndCheckDse(const DseResults& results, const std::string& figure,
                            const std::string& workloadName) {
    std::printf("# %s: design-space exploration, %s workload\n", figure.c_str(),
                workloadName.c_str());
    std::printf("# performance normalized to an ideal 1-cycle main memory\n");

    bool allOk = true;
    for (const auto& [n, techs] : results.panels) {
        std::printf("\n(%c) %u NVDLA accelerator%s\n",
                    static_cast<char>('a' + (n == 1 ? 0 : (n == 2 ? 1 : 2))), n,
                    n == 1 ? "" : "s");
        std::printf("%-10s", "maxreq");
        for (const unsigned inflight : experiments::inflightSweep()) {
            std::printf(" %7u", inflight);
        }
        std::printf("\n");
        for (const MemTech tech : experiments::memTechSeries()) {
            std::printf("%-10s", memTechName(tech));
            for (const unsigned inflight : experiments::inflightSweep()) {
                const DsePoint& p = techs.at(tech).at(inflight);
                std::printf(" %7.3f", p.normalized);
                allOk = allOk && p.ok;
            }
            std::printf("\n");
        }
    }

    // ---- qualitative shape checks (the paper's findings) -------------------
    int failures = 0;
    auto check = [&](bool ok, const std::string& what) {
        std::printf("[%s] %s\n", ok ? "PASS" : "WARN", what.c_str());
        if (!ok) ++failures;
    };
    auto at = [&](unsigned n, MemTech tech, unsigned inflight) {
        return results.panels.at(n).at(tech).at(inflight).normalized;
    };

    check(allOk, "every run completed with a verified datapath checksum");

    // Starvation: one permitted request cripples every technology.
    check(at(1, MemTech::kHbm, 1) < 0.4, "1 in-flight request is latency-crippled");

    // The paper's headline: >= 64 in-flight requests needed to perform well.
    check(at(1, MemTech::kHbm, 64) > 0.85,
          "64 in-flight requests suffice on high-bandwidth memory (1 instance)");
    check(at(1, MemTech::kHbm, 64) > at(1, MemTech::kHbm, 4) + 0.2,
          "a deep in-flight window is essential (64 far better than 4)");

    // Technology ordering at full concurrency, 4 instances.
    if (results.panels.count(4) > 0) {
        check(at(4, MemTech::kDdr4_1ch, 240) < at(4, MemTech::kDdr4_4ch, 240),
              "with 4 instances, DDR4-1ch is clearly worse than DDR4-4ch");
        check(at(4, MemTech::kDdr4_4ch, 240) < at(4, MemTech::kHbm, 240) + 1e-9,
              "with 4 instances, HBM is at least as good as DDR4-4ch");
        // Scaling pressure: 4 instances do worse (normalized) than 1 on DDR4.
        check(at(4, MemTech::kDdr4_1ch, 240) < at(1, MemTech::kDdr4_1ch, 240),
              "DDR4-1ch degrades as instances are added");
    }
    return failures;
}

/// Accelerator counts: {1,2,4} like the paper; trimmed in quick CI runs.
inline std::vector<unsigned> accelSweep() { return {1u, 2u, 4u}; }

}  // namespace g5r::bench
