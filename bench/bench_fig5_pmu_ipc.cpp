// Figure 5 — "IPC measurements over time (ms) for the PMU and gem5
// statistics on three sorting kernels separated by 1 ms sleep".
//
// Prints the two IPC series (and the MPKI series) per 10,000-cycle PMU
// interval, then checks the figure's qualitative claims:
//   * PMU and gem5 curves coincide (small residual from the 1-cycle capture
//     delay and reset losses),
//   * three active phases separated by IPC ~= 0 sleep regions,
//   * the QuickSort phase (10x the elements) is the shortest.
//
// Default parameters are scaled down for a minutes-long bench run; set
// GEM5RTL_FULL=1 for the paper's sizing (10k/1k elements, 1 ms sleeps).
#include <cstdio>
#include <vector>

#include "soc/experiments.hh"

using namespace g5r;

int main() {
    experiments::PmuRunConfig cfg;
    if (experiments::fullScaleRequested()) {
        cfg.layout.baseElems = 1000;      // Quick sorts 10k.
        cfg.layout.sleepNs = 1'000'000;   // 1 ms.
    } else {
        cfg.layout.baseElems = 500;
        cfg.layout.sleepNs = 150'000;
    }
    cfg.intervalCycles = 10'000;
    cfg.numCores = 1;

    const auto result = experiments::runPmuSortExperiment(cfg);
    if (!result.completed) {
        std::printf("FAIL: benchmark did not complete\n");
        return 1;
    }

    std::printf("# Figure 5: IPC over time, PMU counters vs simulator statistics\n");
    std::printf("# %llu-cycle intervals; quick/selection/bubble = %llu/%llu/%llu elems, "
                "%llu ns sleeps\n",
                static_cast<unsigned long long>(cfg.intervalCycles),
                static_cast<unsigned long long>(cfg.layout.quickElems()),
                static_cast<unsigned long long>(cfg.layout.baseElems),
                static_cast<unsigned long long>(cfg.layout.baseElems),
                static_cast<unsigned long long>(cfg.layout.sleepNs));
    std::printf("%10s %9s %9s %11s %11s\n", "time_ms", "ipc_pmu", "ipc_gem5",
                "mpki_pmu", "mpki_gem5");
    for (const auto& iv : result.intervals) {
        std::printf("%10.4f %9.3f %9.3f %11.2f %11.2f\n", iv.timeMs, iv.pmuIpc,
                    iv.gem5Ipc, iv.pmuMpki, iv.gem5Mpki);
    }

    // --- shape checks -------------------------------------------------------
    int failures = 0;
    auto check = [&](bool ok, const char* what) {
        std::printf("[%s] %s\n", ok ? "PASS" : "WARN", what);
        if (!ok) ++failures;
    };

    check(result.maxAbsIpcError < 0.1,
          "PMU and gem5 IPC curves coincide (max |delta| < 0.1)");

    // Count active phases: runs of non-idle intervals separated by idle runs.
    int phases = 0;
    bool inPhase = false;
    std::vector<double> phaseEnd;
    std::vector<int> phaseLen;
    for (const auto& iv : result.intervals) {
        const bool active = iv.gem5Ipc > 0.05;
        if (active && !inPhase) {
            ++phases;
            phaseLen.push_back(0);
        }
        if (active) ++phaseLen.back();
        inPhase = active;
    }
    check(phases >= 3, "three sorting phases separated by sleep (IPC~0) regions");
    if (phaseLen.size() >= 3) {
        check(phaseLen[0] < phaseLen[1] && phaseLen[0] < phaseLen[2],
              "QuickSort (10x elements) finishes in the fewest intervals");
    }
    std::printf("max |IPC_pmu - IPC_gem5| = %.4f over %zu intervals\n",
                result.maxAbsIpcError, result.intervals.size());
    return failures == 0 ? 0 : 2;
}
