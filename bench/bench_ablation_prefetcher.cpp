// Ablation: the L2 stride prefetcher (Table 1 lists it as part of the
// private cache hierarchy). Runs a streaming-sum workload — the pattern a
// stride prefetcher exists for — on the full SoC with the prefetcher on and
// off, and reports cycles, IPC and L2 traffic.
#include <cstdio>

#include "exp/runner.hh"
#include "soc/soc.hh"

using namespace g5r;

namespace {

struct Result {
    std::uint64_t cycles = 0;
    double ipc = 0;
    double l2Prefetches = 0;
    double l2Misses = 0;
};

Result run(bool prefetcher, unsigned lines) {
    Simulation sim;
    SocConfig cfg = table1Config(MemTech::kDdr4_1ch);
    cfg.numCores = 1;
    cfg.l2Prefetcher = prefetcher;
    Soc soc{sim, cfg};

    // A *dependent* chase with a regular 64 B stride: each load's result is
    // the next pointer, so out-of-order MSHR parallelism cannot hide the
    // miss latency — only a prefetcher can (and the constant stride is
    // exactly what it detects).
    const std::uint64_t base = 0x400000;
    for (unsigned i = 0; i < lines; ++i) {
        soc.memory().store<std::uint64_t>(base + 64ull * i, base + 64ull * (i + 1));
    }
    const auto prog = isa::assemble("  li t3, " + std::to_string(base) +
                                    "\n  li t2, " + std::to_string(base + 64ull * lines) +
                                    R"(
          li a0, 0
        loop:
          ld t3, 0(t3)        ; next pointer (stride 64)
          addi a0, a0, 1
          blt t3, t2, loop
          li a7, 0
          ecall
          halt
    )");
    soc.loadProgram(0, prog);
    sim.run(500'000'000'000ULL);

    Result r;
    r.cycles = soc.core(0).cyclesRetired();
    r.ipc = static_cast<double>(soc.core(0).committedInstructions()) /
            static_cast<double>(r.cycles);
    r.l2Prefetches = sim.findStat("system.cpu0.l2.prefetchesIssued")->value();
    r.l2Misses = sim.findStat("system.cpu0.l2.misses")->value();
    return r;
}

}  // namespace

int main(int argc, char** argv) {
    const unsigned jobs = exp::parseJobsFlag(argc, argv);
    constexpr unsigned kLines = 8192;  // 512 KiB chase: past L2 into DRAM.
    std::printf("# Ablation: L2 stride prefetcher on a dependent 64 B-stride chase\n");
    const auto outcomes = exp::runTasks<Result>(
        {{"prefetcher/off", [] { return run(false, kLines); }},
         {"prefetcher/on", [] { return run(true, kLines); }}},
        jobs);
    const Result off = outcomes[0].value;
    const Result on = outcomes[1].value;

    std::printf("%-16s %12s %8s %14s %10s\n", "config", "cycles", "IPC",
                "l2 prefetches", "l2 misses");
    std::printf("%-16s %12llu %8.3f %14.0f %10.0f\n", "prefetcher off",
                static_cast<unsigned long long>(off.cycles), off.ipc, off.l2Prefetches,
                off.l2Misses);
    std::printf("%-16s %12llu %8.3f %14.0f %10.0f\n", "prefetcher on",
                static_cast<unsigned long long>(on.cycles), on.ipc, on.l2Prefetches,
                on.l2Misses);
    std::printf("speedup: %.2fx\n",
                static_cast<double>(off.cycles) / static_cast<double>(on.cycles));

    int failures = 0;
    auto check = [&](bool ok, const char* what) {
        std::printf("[%s] %s\n", ok ? "PASS" : "WARN", what);
        if (!ok) ++failures;
    };
    check(on.l2Prefetches > 1000, "prefetcher issues requests on the stream");
    check(on.cycles < off.cycles, "prefetching speeds up the streaming workload");
    return failures == 0 ? 0 : 2;
}
