// Ablation: the SRAMIF scratchpad — the paper's proposed extension ("a
// better solution ... could hook a proper SRAM such as an scratchpad memory
// to the SRAMIF interface"). A weight-heavy convolution runs with both
// NVDLA memory interfaces on main memory (the paper's configuration) and
// with weights steered to a private scratchpad, across DDR4 widths.
#include <cstdio>

#include "soc/experiments.hh"

using namespace g5r;

int main() {
    models::NvdlaShape shape;  // FC-like: weights dominate the traffic.
    shape.width = shape.height = 12;
    shape.inChannels = 128;
    shape.outChannels = 128;
    shape.filterH = shape.filterW = 3;
    shape.refetch = 3;

    std::printf("# Ablation: weights via SRAMIF scratchpad vs main memory\n");
    std::printf("# weight-heavy conv: ifmap %llu B (x3), weights %llu B, ofmap %llu B\n",
                static_cast<unsigned long long>(shape.ifmapBytes()),
                static_cast<unsigned long long>(shape.weightBytes()),
                static_cast<unsigned long long>(shape.ofmapBytes()));
    std::printf("%-10s %16s %16s %9s\n", "memory", "dram-only (us)", "scratchpad (us)",
                "speedup");

    int failures = 0;
    for (const MemTech tech : {MemTech::kDdr4_1ch, MemTech::kDdr4_2ch, MemTech::kGddr5}) {
        experiments::DseRunConfig cfg;
        cfg.shape = shape;
        cfg.memTech = tech;
        cfg.numCores = 0;
        cfg.maxInflight = 64;

        cfg.sramScratchpad = false;
        const auto base = experiments::runNvdlaDse(cfg);
        cfg.sramScratchpad = true;
        const auto pad = experiments::runNvdlaDse(cfg);

        if (!base.completed || !pad.completed || !base.checksumsOk || !pad.checksumsOk) {
            std::printf("%-10s verification FAILED\n", memTechName(tech));
            ++failures;
            continue;
        }
        const double baseUs = ticksToMs(base.runtimeTicks) * 1000.0;
        const double padUs = ticksToMs(pad.runtimeTicks) * 1000.0;
        std::printf("%-10s %16.2f %16.2f %8.2fx\n", memTechName(tech), baseUs, padUs,
                    baseUs / padUs);
        if (tech == MemTech::kDdr4_1ch && padUs >= baseUs) {
            std::printf("[WARN] scratchpad should relieve the narrow DDR4-1ch\n");
            ++failures;
        }
    }
    std::printf("[%s] scratchpad offload verified end to end (checksums)\n",
                failures == 0 ? "PASS" : "WARN");
    return failures == 0 ? 0 : 2;
}
