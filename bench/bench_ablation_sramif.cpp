// Ablation: the SRAMIF scratchpad — the paper's proposed extension ("a
// better solution ... could hook a proper SRAM such as an scratchpad memory
// to the SRAMIF interface"). A weight-heavy convolution runs with both
// NVDLA memory interfaces on main memory (the paper's configuration) and
// with weights steered to a private scratchpad, across DDR4 widths.
#include <cstdio>

#include "exp/runner.hh"
#include "soc/experiments.hh"

using namespace g5r;

namespace {

/// One technology: the dram-only baseline then the scratchpad run.
struct PadPair {
    experiments::DseRunResult base;
    experiments::DseRunResult pad;
};

}  // namespace

int main(int argc, char** argv) {
    const unsigned jobs = exp::parseJobsFlag(argc, argv);
    models::NvdlaShape shape;  // FC-like: weights dominate the traffic.
    shape.width = shape.height = 12;
    shape.inChannels = 128;
    shape.outChannels = 128;
    shape.filterH = shape.filterW = 3;
    shape.refetch = 3;

    std::printf("# Ablation: weights via SRAMIF scratchpad vs main memory\n");
    std::printf("# weight-heavy conv: ifmap %llu B (x3), weights %llu B, ofmap %llu B\n",
                static_cast<unsigned long long>(shape.ifmapBytes()),
                static_cast<unsigned long long>(shape.weightBytes()),
                static_cast<unsigned long long>(shape.ofmapBytes()));
    std::printf("%-10s %16s %16s %9s\n", "memory", "dram-only (us)", "scratchpad (us)",
                "speedup");

    const std::vector<MemTech> techs{MemTech::kDdr4_1ch, MemTech::kDdr4_2ch,
                                     MemTech::kGddr5};
    std::vector<exp::Task<PadPair>> tasks;
    for (const MemTech tech : techs) {
        tasks.push_back(exp::Task<PadPair>{
            std::string{"sramif/"} + memTechName(tech), [&shape, tech] {
                experiments::DseRunConfig cfg;
                cfg.shape = shape;
                cfg.memTech = tech;
                cfg.numCores = 0;
                cfg.maxInflight = 64;

                PadPair pair;
                cfg.sramScratchpad = false;
                pair.base = experiments::runNvdlaDse(cfg);
                cfg.sramScratchpad = true;
                pair.pad = experiments::runNvdlaDse(cfg);
                return pair;
            }});
    }
    const auto outcomes = exp::runTasks(std::move(tasks), jobs);

    int failures = 0;
    for (std::size_t i = 0; i < techs.size(); ++i) {
        const MemTech tech = techs[i];
        const auto& base = outcomes[i].value.base;
        const auto& pad = outcomes[i].value.pad;
        if (!outcomes[i].ok || !base.completed || !pad.completed || !base.checksumsOk ||
            !pad.checksumsOk) {
            std::printf("%-10s verification FAILED\n", memTechName(tech));
            ++failures;
            continue;
        }
        const double baseUs = ticksToMs(base.runtimeTicks) * 1000.0;
        const double padUs = ticksToMs(pad.runtimeTicks) * 1000.0;
        std::printf("%-10s %16.2f %16.2f %8.2fx\n", memTechName(tech), baseUs, padUs,
                    baseUs / padUs);
        if (tech == MemTech::kDdr4_1ch && padUs >= baseUs) {
            std::printf("[WARN] scratchpad should relieve the narrow DDR4-1ch\n");
            ++failures;
        }
    }
    std::printf("[%s] scratchpad offload verified end to end (checksums)\n",
                failures == 0 ? "PASS" : "WARN");
    return failures == 0 ? 0 : 2;
}
