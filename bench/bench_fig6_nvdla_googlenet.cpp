// Figure 6 — "Design-space exploration using the GoogleNet benchmark.
// Normalized to an ideal 1-cycle main memory." Panels (a)/(b)/(c): 1/2/4
// NVDLA accelerators; series: DDR4-1/2/4ch, GDDR5, HBM; x-axis: maximum
// permitted in-flight memory requests.
//
// GEM5RTL_FULL=1 doubles the convolution's spatial dimensions.
// --jobs N (or GEM5RTL_JOBS) fans the sweep points out over N worker
// threads; the panels are bit-identical to a --jobs 1 run.
#include "nvdla_dse_common.hh"

using namespace g5r;

int main(int argc, char** argv) {
    const unsigned jobs = exp::parseJobsFlag(argc, argv);
    const unsigned scale = experiments::fullScaleRequested() ? 2 : 1;
    const auto shape = models::googlenetConv2Shape(scale);
    const auto results = bench::runDseSweep(shape, "googlenet", bench::accelSweep(), jobs);
    const int failures = bench::printAndCheckDse(results, "Figure 6", "GoogleNet conv2");

    // GoogleNet-specific claims from the paper's text.
    int extra = 0;
    auto check = [&](bool ok, const char* what) {
        std::printf("[%s] %s\n", ok ? "PASS" : "WARN", what);
        if (!ok) ++extra;
    };
    auto at = [&](unsigned n, MemTech tech, unsigned inflight) {
        return results.panels.at(n).at(tech).at(inflight).normalized;
    };
    // "When employing one NVDLA accelerator all memory technologies perform
    //  similarly ... the only exception is DDR4-1ch, which falls a bit behind."
    check(at(1, MemTech::kGddr5, 240) > 0.9 && at(1, MemTech::kHbm, 240) > 0.9 &&
              at(1, MemTech::kDdr4_4ch, 240) > 0.9,
          "(a) all high-bandwidth technologies near 1.0 with one instance");
    check(at(1, MemTech::kDdr4_1ch, 240) < at(1, MemTech::kHbm, 240),
          "(a) DDR4-1ch falls behind with one instance");
    // "The GoogleNet benchmark requires at least DDR4-4ch to attain the same
    //  performance as the high-bandwidth memory configurations" (2 NVDLAs).
    check(at(2, MemTech::kDdr4_4ch, 240) > at(2, MemTech::kDdr4_2ch, 240),
          "(b) DDR4-4ch needed: 2ch is measurably worse with two instances");
    bench::writeDseBenchJson(results, "fig6", "BENCH_fig6.json", "GoogleNet conv2");
    return failures + extra == 0 ? 0 : 2;
}
