// NVDLA-style accelerator model: datapath correctness (checksum, output
// writes), workload character (memory- vs compute-bound), credit throttling,
// trace round-trips, and the standalone player.
#include <gtest/gtest.h>

#include "bridge/rtl_model.hh"
#include "models/nvdla/nvdla_design.hh"
#include "models/nvdla/standalone.hh"
#include "models/nvdla/trace.hh"

extern "C" const G5rRtlModelApi* g5r_nvdla_model_api();

namespace g5r {
namespace {

using models::googlenetConv2Shape;
using models::makeConvTrace;
using models::NvdlaDesign;
using models::NvdlaPlacement;
using models::NvdlaShape;
using models::NvdlaTrace;
using models::playTraceStandalone;
using models::sanity3Shape;

NvdlaShape tinyShape() {
    NvdlaShape s;
    s.width = 16;
    s.height = 16;
    s.inChannels = 8;
    s.outChannels = 8;
    s.filterH = s.filterW = 1;
    s.refetch = 1;
    return s;
}

TEST(NvdlaModel, CompletesAndChecksumMatchesGolden) {
    ApiRtlModel model{g5r_nvdla_model_api(), ""};
    const NvdlaTrace trace = makeConvTrace("tiny", tinyShape(), NvdlaPlacement{}, 7);
    BackingStore mem;
    const auto result = playTraceStandalone(model, trace, mem);
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.checksum, trace.expectedChecksum);
}

TEST(NvdlaModel, WritesTheFullOfmapWithTheExpectedPattern) {
    ApiRtlModel model{g5r_nvdla_model_api(), ""};
    const auto shape = tinyShape();
    const NvdlaTrace trace = makeConvTrace("tiny", shape, NvdlaPlacement{}, 9);
    BackingStore mem;
    const auto result = playTraceStandalone(model, trace, mem);
    ASSERT_TRUE(result.completed);
    for (std::uint64_t i = 0; i < shape.ofmapBytes(); i += 97) {
        EXPECT_EQ(mem.load<std::uint8_t>(trace.placement.ofmapBase + i),
                  static_cast<std::uint8_t>(i))
            << "ofmap byte " << i;
    }
}

TEST(NvdlaModel, RefetchStreamsReReadTheIfmap) {
    ApiRtlModel model{g5r_nvdla_model_api(), ""};
    auto shape = tinyShape();
    shape.refetch = 3;
    const NvdlaTrace trace = makeConvTrace("refetch", shape, NvdlaPlacement{}, 11);
    BackingStore mem;
    const auto result = playTraceStandalone(model, trace, mem);
    ASSERT_TRUE(result.completed);
    // Golden checksum counts the ifmap three times; matching proves the
    // engine actually streamed the region three times.
    EXPECT_EQ(result.checksum, trace.expectedChecksum);
}

TEST(NvdlaModel, Sanity3IsMemoryBoundGoogleNetIsComputeBound) {
    const auto sanity = sanity3Shape();
    const auto googlenet = googlenetConv2Shape();
    const double sanityDemand =
        static_cast<double>(sanity.totalTrafficBytes()) /
        static_cast<double>(sanity.totalMacs() / NvdlaDesign::kMacsPerCycle);
    const double googleDemand =
        static_cast<double>(googlenet.totalTrafficBytes()) /
        static_cast<double>(googlenet.totalMacs() / NvdlaDesign::kMacsPerCycle);
    // Bytes per compute cycle: sanity3 should be far hungrier.
    EXPECT_GT(sanityDemand, 30.0);
    EXPECT_LT(sanityDemand, 50.0);
    EXPECT_GT(googleDemand, 12.0);
    EXPECT_LT(googleDemand, 28.0);
    EXPECT_GT(sanityDemand, googleDemand * 1.5);
}

TEST(NvdlaModel, StandaloneCyclesScaleWithWork) {
    ApiRtlModel model{g5r_nvdla_model_api(), ""};
    BackingStore mem;

    auto small = tinyShape();
    const auto smallResult =
        playTraceStandalone(model, makeConvTrace("s", small, NvdlaPlacement{}, 1), mem);

    auto big = tinyShape();
    big.width = big.height = 32;  // 4x the data and MACs.
    const auto bigResult =
        playTraceStandalone(model, makeConvTrace("b", big, NvdlaPlacement{}, 1), mem);

    ASSERT_TRUE(smallResult.completed);
    ASSERT_TRUE(bigResult.completed);
    EXPECT_GT(bigResult.cycles, 3 * smallResult.cycles);
}

TEST(NvdlaModel, PerfCyclesRegisterMatchesObservedRuntime) {
    ApiRtlModel model{g5r_nvdla_model_api(), ""};
    BackingStore mem;
    const NvdlaTrace trace = makeConvTrace("tiny", tinyShape(), NvdlaPlacement{}, 3);
    const auto result = playTraceStandalone(model, trace, mem);
    ASSERT_TRUE(result.completed);
    // cycles counts setup handshakes too; PERF_CYCLES only start->done.
    EXPECT_GT(result.cycles, 0u);
}

// Credit sweep: fewer in-flight credits cannot make the accelerator faster,
// and starving it (the equivalent of max-1-request) slows it dramatically.
class CreditSweep : public ::testing::TestWithParam<unsigned> {};

namespace credit_detail {

// A standalone loop with a fixed response latency and a credit cap,
// emulating what the RTLObject + memory system impose.
std::uint64_t runWithCredits(unsigned credits, unsigned latency) {
    ApiRtlModel model{g5r_nvdla_model_api(), ""};
    const NvdlaTrace trace = makeConvTrace("tiny", tinyShape(), NvdlaPlacement{}, 5);
    BackingStore mem;
    trace.loadSegments(mem);
    model.reset();

    struct Pending {
        std::uint64_t readyAt;
        std::uint64_t id;
        std::array<std::uint8_t, 64> data;
    };
    std::deque<Pending> inflight;
    std::size_t nextWrite = 0;
    std::uint64_t cycle = 0;
    for (; cycle < 10'000'000; ++cycle) {
        G5rRtlInput in{};
        G5rRtlOutput out{};
        if (nextWrite < trace.regWrites.size()) {
            in.dev_valid = 1;
            in.dev_write = 1;
            in.dev_addr = trace.regWrites[nextWrite].addr;
            in.dev_wdata = trace.regWrites[nextWrite].data;
        }
        if (!inflight.empty() && inflight.front().readyAt <= cycle) {
            in.mem_resp_valid = 1;
            in.mem_resp_id = inflight.front().id;
            std::memcpy(in.mem_resp_data, inflight.front().data.data(), 64);
        }
        in.mem_req_credits =
            credits > inflight.size()
                ? std::min<unsigned>(credits - static_cast<unsigned>(inflight.size()),
                                     G5R_RTL_MAX_MEM_REQ)
                : 0;
        // Consume the response after building the input.
        const bool consumedResp = in.mem_resp_valid != 0;

        model.tick(in, out);
        if (in.dev_valid && out.dev_ready) ++nextWrite;
        if (consumedResp) inflight.pop_front();
        for (unsigned i = 0; i < out.mem_req_count; ++i) {
            const auto& req = out.mem_req[i];
            Pending p;
            p.readyAt = cycle + latency;
            p.id = req.id;
            p.data.fill(0);
            if (req.write != 0) {
                mem.write(req.addr, req.data, req.size);
            } else {
                mem.read(req.addr, p.data.data(), req.size);
            }
            inflight.push_back(p);
        }
        if (out.done != 0) break;
    }
    return cycle;
}

}  // namespace credit_detail

TEST_P(CreditSweep, MoreCreditsNeverSlower) {
    const unsigned credits = GetParam();
    const std::uint64_t t = credit_detail::runWithCredits(credits, 64);
    const std::uint64_t tMore = credit_detail::runWithCredits(credits * 2, 64);
    EXPECT_LE(tMore, t + t / 20);  // Allow 5% noise; more credits ~never slower.
}

INSTANTIATE_TEST_SUITE_P(Credits, CreditSweep, ::testing::Values(1u, 2u, 4u, 8u));

TEST(NvdlaModel, SingleCreditIsLatencyBound) {
    const std::uint64_t starved = credit_detail::runWithCredits(1, 64);
    const std::uint64_t fed = credit_detail::runWithCredits(8, 64);
    EXPECT_GT(starved, 3 * fed);
}

TEST(NvdlaTrace, SerializeParseRoundTrip) {
    const NvdlaTrace trace =
        makeConvTrace("sanity3", sanity3Shape(), NvdlaPlacement{}, 0xD1A5EED);
    const NvdlaTrace parsed = models::parseTrace(models::serializeTrace(trace));
    EXPECT_EQ(parsed.shape.width, trace.shape.width);
    EXPECT_EQ(parsed.shape.inChannels, trace.shape.inChannels);
    EXPECT_EQ(parsed.expectedChecksum, trace.expectedChecksum);
    EXPECT_EQ(parsed.placement.ofmapBase, trace.placement.ofmapBase);
    ASSERT_EQ(parsed.segments.size(), trace.segments.size());
    EXPECT_EQ(parsed.segments[0].bytes, trace.segments[0].bytes);
}

TEST(NvdlaTrace, ShapesMatchTableOneScaleKnob) {
    const auto s1 = sanity3Shape(1);
    const auto s2 = sanity3Shape(2);
    EXPECT_EQ(s2.ifmapBytes(), 4 * s1.ifmapBytes());
    EXPECT_EQ(googlenetConv2Shape().filterH, 3);
    EXPECT_EQ(sanity3Shape().filterH, 1);
}

}  // namespace
}  // namespace g5r
