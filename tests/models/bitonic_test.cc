// Bitonic sorter model (GHDL path) through the C ABI: configuration,
// pipeline timing, sorting correctness across sizes and random vectors.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bridge/rtl_model.hh"
#include "sim/rng.hh"

extern "C" const G5rRtlModelApi* g5r_bitonic_model_api();

namespace g5r {
namespace {

class BitonicHarness {
public:
    explicit BitonicHarness(const std::string& config = "n=16")
        : model_(g5r_bitonic_model_api(), config) {
        model_.reset();
    }

    G5rRtlOutput tick(const G5rRtlInput& in = {}) {
        G5rRtlOutput out{};
        model_.tick(in, out);
        return out;
    }

    void writeReg(std::uint64_t addr, std::uint64_t data) {
        G5rRtlInput in{};
        in.dev_valid = 1;
        in.dev_write = 1;
        in.dev_addr = addr;
        in.dev_wdata = data;
        tick(in);
    }

    std::uint64_t readReg(std::uint64_t addr) {
        G5rRtlInput in{};
        in.dev_valid = 1;
        in.dev_addr = addr;
        G5rRtlOutput out = tick(in);
        EXPECT_EQ(out.dev_ready, 1);
        out = tick();
        EXPECT_EQ(out.dev_resp_valid, 1);
        return out.dev_rdata;
    }

    std::vector<std::int64_t> sort(const std::vector<std::int64_t>& data) {
        for (std::size_t i = 0; i < data.size(); ++i) {
            writeReg(8 * i, static_cast<std::uint64_t>(data[i]));
        }
        writeReg(0x200, 1);  // Start.
        // Run until done (pipeline depth cycles).
        for (int t = 0; t < 200; ++t) {
            if (tick().done != 0) break;
        }
        std::vector<std::int64_t> out(data.size());
        for (std::size_t i = 0; i < data.size(); ++i) {
            out[i] = static_cast<std::int64_t>(readReg(0x100 + 8 * i));
        }
        return out;
    }

private:
    ApiRtlModel model_;
};

TEST(BitonicModel, ReportsConfiguredSize) {
    BitonicHarness b{"n=8"};
    EXPECT_EQ(b.readReg(0x210), 8u);
    BitonicHarness d{""};
    EXPECT_EQ(d.readReg(0x210), 16u);  // Default.
}

TEST(BitonicModel, SortsAFixedVector) {
    BitonicHarness b{"n=8"};
    const auto out = b.sort({5, -3, 9, 0, 2, 2, -7, 100});
    EXPECT_EQ(out, (std::vector<std::int64_t>{-7, -3, 0, 2, 2, 5, 9, 100}));
}

TEST(BitonicModel, TakesPipelineDepthCyclesBeforeDone) {
    BitonicHarness b{"n=16"};  // log2=4 -> 10 stages.
    for (std::size_t i = 0; i < 16; ++i) b.writeReg(8 * i, i);
    b.writeReg(0x200, 1);
    int cyclesToDone = 0;
    while (b.tick().done == 0) {
        ++cyclesToDone;
        ASSERT_LT(cyclesToDone, 100);
    }
    EXPECT_GE(cyclesToDone, 8);   // ~stage count.
    EXPECT_LE(cyclesToDone, 12);
    // Status register reflects done.
    EXPECT_EQ(b.readReg(0x208) & 2u, 2u);
}

TEST(BitonicModel, TracingIsUnsupportedOnTheGhdlPath) {
    ApiRtlModel model{g5r_bitonic_model_api(), "n=4"};
    EXPECT_FALSE(model.traceStart("/tmp/never.vcd"));
}

class BitonicRandomSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitonicRandomSweep, MatchesStdSort) {
    const unsigned n = GetParam();
    BitonicHarness b{"n=" + std::to_string(n)};
    Rng rng{n * 131};
    for (int trial = 0; trial < 5; ++trial) {
        std::vector<std::int64_t> data(n);
        for (auto& v : data) v = static_cast<std::int64_t>(rng.below(10000)) - 5000;
        auto expected = data;
        std::sort(expected.begin(), expected.end());
        EXPECT_EQ(b.sort(data), expected) << "n=" << n << " trial=" << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitonicRandomSweep, ::testing::Values(2u, 4u, 8u, 16u, 32u));

TEST(BitonicModel, RejectsBadConfig) {
    // Non-power-of-two falls back to the default size rather than failing.
    BitonicHarness b{"n=3"};
    EXPECT_EQ(b.readReg(0x210), 16u);
}

}  // namespace
}  // namespace g5r
