// PMU model: counting, enable gating, the 1-cycle capture-delay artefact,
// thresholds/interrupts with the reset-window event-loss artefact, the
// register file, and waveform tracing — all through the C ABI.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "bridge/rtl_model.hh"
#include "models/pmu/pmu_design.hh"
#include "sim/hw_events.hh"

extern "C" const G5rRtlModelApi* g5r_pmu_model_api();

namespace g5r {
namespace {

using models::PmuDesign;

class PmuHarness {
public:
    PmuHarness() : model_(g5r_pmu_model_api(), "") { model_.reset(); }

    /// One tick with the given event pulses; returns the output.
    G5rRtlOutput tick(std::initializer_list<std::pair<unsigned, std::uint32_t>> events = {}) {
        G5rRtlInput in{};
        for (const auto& [line, count] : events) in.events[line] = count;
        G5rRtlOutput out{};
        model_.tick(in, out);
        return out;
    }

    void writeReg(std::uint64_t addr, std::uint64_t data) {
        G5rRtlInput in{};
        in.dev_valid = 1;
        in.dev_write = 1;
        in.dev_addr = addr;
        in.dev_wdata = data;
        G5rRtlOutput out{};
        model_.tick(in, out);
        EXPECT_EQ(out.dev_ready, 1);
    }

    std::uint64_t readReg(std::uint64_t addr) {
        G5rRtlInput in{};
        in.dev_valid = 1;
        in.dev_write = 0;
        in.dev_addr = addr;
        G5rRtlOutput out{};
        model_.tick(in, out);
        EXPECT_EQ(out.dev_ready, 1);
        // Data arrives within the next few ticks (AXI-Lite read handshake).
        G5rRtlInput idle{};
        for (int i = 0; i < 4 && out.dev_resp_valid == 0; ++i) model_.tick(idle, out);
        EXPECT_EQ(out.dev_resp_valid, 1);
        return out.dev_rdata;
    }

    ApiRtlModel& model() { return model_; }

private:
    ApiRtlModel model_;
};

TEST(PmuModel, IdRegisterIdentifiesTheBlock) {
    PmuHarness pmu;
    EXPECT_EQ(pmu.readReg(PmuDesign::kIdReg), PmuDesign::kIdRegValue);
}

TEST(PmuModel, CountsEnabledEvents) {
    PmuHarness pmu;
    pmu.writeReg(PmuDesign::kEnableReg, 0b0011);  // Counters 0 and 1 only.
    for (int i = 0; i < 10; ++i) pmu.tick({{0, 1}, {1, 2}, {2, 5}});
    pmu.tick();  // Drain the capture stage.
    pmu.tick();
    EXPECT_EQ(pmu.readReg(PmuDesign::kCounterBase + 0), 10u);
    EXPECT_EQ(pmu.readReg(PmuDesign::kCounterBase + 8), 20u);
    EXPECT_EQ(pmu.readReg(PmuDesign::kCounterBase + 16), 0u);  // Disabled.
}

TEST(PmuModel, CaptureStageDelaysCountingByOneCycle) {
    PmuHarness pmu;
    pmu.writeReg(PmuDesign::kEnableReg, 1);
    // Pulse once; immediately after the tick the counter is still 0 because
    // the pulse sits in the capture register (artefact i in the paper).
    pmu.tick({{0, 1}});
    // Probe the internal design state through a read: the read itself takes
    // two more ticks, by which time the pulse has landed.
    EXPECT_EQ(pmu.readReg(PmuDesign::kCounterBase), 1u);
}

TEST(PmuModel, CycleLineIsWiredToTheClock) {
    PmuHarness pmu;
    pmu.writeReg(PmuDesign::kEnableReg, 1u << HwEventBus::kCycle);
    for (int i = 0; i < 50; ++i) pmu.tick();
    const std::uint64_t cycles =
        pmu.readReg(PmuDesign::kCounterBase + 8 * HwEventBus::kCycle);
    // Every tick (including the config/read handshakes) increments it.
    EXPECT_GE(cycles, 50u);
    EXPECT_LE(cycles, 60u);
}

TEST(PmuModel, ThresholdRaisesInterruptAndResetsCounter) {
    PmuHarness pmu;
    pmu.writeReg(PmuDesign::kEnableReg, 1);
    pmu.writeReg(PmuDesign::kThresholdSelReg, 0);
    pmu.writeReg(PmuDesign::kThresholdReg, 5);

    G5rRtlOutput out{};
    int irqAtTick = -1;
    for (int t = 0; t < 20; ++t) {
        out = pmu.tick({{0, 1}});
        if (out.irq != 0 && irqAtTick < 0) irqAtTick = t;
    }
    EXPECT_GE(irqAtTick, 4);  // Roughly at the 5th event (plus capture delay).
    EXPECT_LE(irqAtTick, 7);

    // The counter was reset on the interrupt and lost events during the
    // reset window (artefact ii), so it reads well below 20 - 5.
    const std::uint64_t counter = pmu.readReg(PmuDesign::kCounterBase);
    EXPECT_LT(counter, 20u - 5u);
    // IRQ is level-held until cleared.
    EXPECT_EQ(pmu.tick().irq, 1);
    pmu.writeReg(PmuDesign::kIrqStatusReg, 0);
    EXPECT_EQ(pmu.tick().irq, 0);
}

TEST(PmuModel, ResetWindowLosesExactlyTheWindowEvents) {
    PmuHarness pmu;
    pmu.writeReg(PmuDesign::kEnableReg, 0b10);  // Counter 1 only (no threshold).
    pmu.writeReg(PmuDesign::kThresholdSelReg, 0);
    pmu.writeReg(PmuDesign::kThresholdReg, 3);
    pmu.writeReg(PmuDesign::kEnableReg, 0b11);  // Now enable counter 0 too.

    // Stream simultaneous pulses on lines 0 and 1. Counter 0 trips its
    // threshold and resets; counter 1 keeps counting except during the
    // shared reset window.
    for (int i = 0; i < 40; ++i) pmu.tick({{0, 1}, {1, 1}});
    pmu.tick();
    pmu.tick();
    const std::uint64_t c1 = pmu.readReg(PmuDesign::kCounterBase + 8);
    EXPECT_LT(c1, 40u);  // Some events were lost to reset windows...
    EXPECT_GT(c1, 40u - 8 * (PmuDesign::kResetWindowCycles + 2));  // ...but boundedly.
}

TEST(PmuModel, CounterPresetViaConfigWrite) {
    PmuHarness pmu;
    pmu.writeReg(PmuDesign::kCounterBase + 8 * 3, 1000);
    EXPECT_EQ(pmu.readReg(PmuDesign::kCounterBase + 8 * 3), 1000u);
    pmu.writeReg(PmuDesign::kControlReg, 1);  // Global clear.
    EXPECT_EQ(pmu.readReg(PmuDesign::kCounterBase + 8 * 3), 0u);
}

TEST(PmuModel, MultiplePulsesPerCycleAreAccumulated) {
    // The paper wires four commit-event signals; a burst of 4 commits in a
    // cycle must be countable.
    PmuHarness pmu;
    pmu.writeReg(PmuDesign::kEnableReg, 1);
    for (int i = 0; i < 8; ++i) pmu.tick({{0, 4}});
    pmu.tick();
    pmu.tick();
    EXPECT_EQ(pmu.readReg(PmuDesign::kCounterBase), 32u);
}

TEST(PmuModel, WaveformTracingThroughTheAbi) {
    const std::string path = ::testing::TempDir() + "/pmu.vcd";
    PmuHarness pmu;
    ASSERT_TRUE(pmu.model().traceStart(path));
    pmu.writeReg(PmuDesign::kEnableReg, 1);
    for (int i = 0; i < 10; ++i) pmu.tick({{0, 1}});
    pmu.model().traceStop();

    std::ifstream in{path};
    std::string text{std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
    EXPECT_NE(text.find("counter0"), std::string::npos);
    EXPECT_NE(text.find("$enddefinitions"), std::string::npos);
    std::remove(path.c_str());
}

TEST(PmuModel, AbiResetClearsState) {
    PmuHarness pmu;
    pmu.writeReg(PmuDesign::kEnableReg, 1);
    for (int i = 0; i < 5; ++i) pmu.tick({{0, 1}});
    pmu.model().reset();
    pmu.tick();
    EXPECT_EQ(pmu.readReg(PmuDesign::kCounterBase), 0u);
    EXPECT_EQ(pmu.readReg(PmuDesign::kEnableReg), 0u);
}

}  // namespace
}  // namespace g5r
