// Netlist interpreter (the GHDL-path substitute): parsing, evaluation,
// sequential elements, error detection, and the generated bitonic sorter.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "rtl/netlist.hh"
#include "sim/rng.hh"

namespace g5r::rtl {
namespace {

TEST(Netlist, CombinationalGates) {
    Netlist nl{R"(
        input a
        input b
        and y_and a b
        or  y_or  a b
        xor y_xor a b
        not y_not a
        add y_add a b
        sub y_sub a b
        output o_and y_and
        output o_add y_add
        output o_sub y_sub
        output o_not y_not
    )"};
    nl.setInput("a", 0xF0);
    nl.setInput("b", 0x0F);
    nl.eval();
    EXPECT_EQ(nl.output("o_and"), 0u);
    EXPECT_EQ(nl.probe("y_or"), 0xFFu);
    EXPECT_EQ(nl.probe("y_xor"), 0xFFu);
    EXPECT_EQ(nl.output("o_add"), 0xFFu);
    EXPECT_EQ(nl.output("o_sub"), 0xE1u);
    EXPECT_EQ(nl.output("o_not"), ~std::uint64_t{0xF0});
}

TEST(Netlist, ComparisonsAndMux) {
    Netlist nl{R"(
        input a
        input b
        lt  s  a b      # signed
        ltu u  a b      # unsigned
        eq  e  a b
        mux m  s a b    # min(a, b) signed
        output min m
    )"};
    nl.setInput("a", static_cast<std::uint64_t>(-5));
    nl.setInput("b", 3);
    nl.eval();
    EXPECT_EQ(nl.probe("s"), 1u);   // -5 < 3 signed
    EXPECT_EQ(nl.probe("u"), 0u);   // huge unsigned > 3
    EXPECT_EQ(nl.probe("e"), 0u);
    EXPECT_EQ(nl.output("min"), static_cast<std::uint64_t>(-5));
}

TEST(Netlist, SignedCompareHonorsNarrowWidths) {
    // Regression: lt used to zero-extend the masked storage before the
    // signed cast, so for any net narrower than 64 bits it behaved exactly
    // like ltu (a 4-bit 0xF compared as 15, not -1).
    Netlist nl{R"(
        input a 4
        input b 4
        lt  s  a b
        ltu u  a b
    )"};
    nl.setInput("a", 0xF);  // -1 as a 4-bit signed value.
    nl.setInput("b", 0x3);  // +3.
    nl.eval();
    EXPECT_EQ(nl.probe("s"), 1u);  // -1 < 3 signed.
    EXPECT_EQ(nl.probe("u"), 0u);  // 15 > 3 unsigned.
    nl.setInput("a", 0x6);
    nl.setInput("b", 0x9);  // -7 as 4-bit signed.
    nl.eval();
    EXPECT_EQ(nl.probe("s"), 0u);  // 6 > -7 signed.
    EXPECT_EQ(nl.probe("u"), 1u);  // 6 < 9 unsigned.
}

TEST(Netlist, SignedCompareMixedWidths) {
    // Each operand sign-extends from its own declared width.
    Netlist nl{R"(
        input a 4
        input b 8
        lt s a b
    )"};
    nl.setInput("a", 0x8);   // -8 in 4 bits.
    nl.setInput("b", 0xF8);  // -8 in 8 bits.
    nl.eval();
    EXPECT_EQ(nl.probe("s"), 0u);  // Equal once both are sign-extended.
    nl.setInput("b", 0xF9);        // -7.
    nl.eval();
    EXPECT_EQ(nl.probe("s"), 1u);  // -8 < -7.
}

TEST(Netlist, ActivityDrivenEvalSkipsQuietCones) {
    Netlist nl{R"(
        input a
        input b
        input c
        add ab a b
        add abc ab c
        not nc c
        output o abc
    )"};
    nl.setInput("a", 1);
    nl.setInput("b", 2);
    nl.setInput("c", 3);
    nl.eval();
    EXPECT_EQ(nl.lastEvalComputedNodes(), 3u);  // Cold start: everything.
    EXPECT_EQ(nl.output("o"), 6u);

    nl.eval();  // Nothing changed: full skip.
    EXPECT_EQ(nl.lastEvalComputedNodes(), 0u);
    EXPECT_EQ(nl.output("o"), 6u);

    nl.setInput("a", 10);  // Touches ab and abc, but not nc.
    nl.eval();
    EXPECT_EQ(nl.lastEvalComputedNodes(), 2u);
    EXPECT_EQ(nl.output("o"), 15u);

    nl.setInput("a", 10);  // Unchanged value: still a full skip.
    nl.eval();
    EXPECT_EQ(nl.lastEvalComputedNodes(), 0u);
}

TEST(Netlist, ActivityDrivenEvalStopsWhenValuesRecomputeEqual) {
    // b changes but a&b recomputes to the same value, so the downstream
    // not-gate never re-evaluates.
    Netlist nl{R"(
        input a
        input b
        and ab a b
        not nab ab
        output o nab
    )"};
    nl.setInput("a", 0);
    nl.setInput("b", 1);
    nl.eval();
    const std::uint64_t first = nl.output("o");
    nl.setInput("b", 3);  // ab stays 0.
    nl.eval();
    EXPECT_EQ(nl.lastEvalComputedNodes(), 1u);  // Only ab recomputed.
    EXPECT_EQ(nl.output("o"), first);
}

TEST(Netlist, ActivityDrivenEvalTracksRegisterLatches) {
    // Accumulator with a constant increment: every tick changes acc, so the
    // adder must recompute every tick even with inputs untouched.
    Netlist nl{R"(
        const one 1
        add next acc one
        reg acc next 0
        output sum acc
    )"};
    for (int i = 1; i <= 5; ++i) {
        nl.tick();
        EXPECT_EQ(nl.probe("acc"), static_cast<std::uint64_t>(i));
    }
    nl.eval();
    nl.reset();
    nl.eval();
    EXPECT_EQ(nl.output("sum"), 0u);
    nl.tick();
    EXPECT_EQ(nl.probe("acc"), 1u);  // Counting resumes after reset.
}

TEST(Netlist, RegistersLatchOnTick) {
    // Accumulator: acc <= acc + in.
    Netlist nl{R"(
        input in
        add next acc in
        reg acc next 0
        output sum acc
    )"};
    nl.setInput("in", 5);
    nl.eval();
    EXPECT_EQ(nl.output("sum"), 0u);  // eval alone does not latch
    nl.tick();
    EXPECT_EQ(nl.probe("acc"), 5u);
    nl.tick();
    nl.tick();
    nl.eval();
    EXPECT_EQ(nl.output("sum"), 15u);
    nl.reset();
    nl.eval();
    EXPECT_EQ(nl.output("sum"), 0u);
}

TEST(Netlist, RegInitValues) {
    Netlist nl{R"(
        const zero 0
        reg r zero 42
        output o r
    )"};
    nl.eval();
    EXPECT_EQ(nl.output("o"), 42u);
    nl.tick();
    nl.eval();
    EXPECT_EQ(nl.output("o"), 0u);
}

TEST(Netlist, WatchAccessorsTolerateTheProbeMissSentinel) {
    Netlist nl{R"(
        input a 8
        output o a
    )"};
    nl.setInput("a", 0x1FF);
    nl.eval();

    // probeIndex() documents -1 for unknown nets and promises never to
    // throw; the index-based accessors must honour the same contract
    // instead of indexing nodes_ out of bounds.
    EXPECT_EQ(nl.probeIndex("nope"), -1);
    EXPECT_EQ(nl.valueAt(-1), 0u);
    EXPECT_EQ(nl.widthAt(-1), 0u);
    EXPECT_EQ(nl.nameAt(-1), "");
    const int past = static_cast<int>(nl.numNodes());
    EXPECT_EQ(nl.valueAt(past), 0u);
    EXPECT_EQ(nl.widthAt(past), 0u);
    EXPECT_EQ(nl.nameAt(past), "");

    // In-range indices still resolve normally.
    const int idx = nl.probeIndex("a");
    ASSERT_GE(idx, 0);
    EXPECT_EQ(nl.valueAt(idx), 0xFFu);
    EXPECT_EQ(nl.widthAt(idx), 8u);
    EXPECT_EQ(nl.nameAt(idx), "a");
}

TEST(Netlist, ErrorDetection) {
    EXPECT_THROW(Netlist{"bogus x a b\n"}, NetlistError);
    EXPECT_THROW(Netlist{"and y a b\n"}, NetlistError);           // Undefined nets.
    EXPECT_THROW(Netlist{"input a\ninput a\n"}, NetlistError);    // Duplicate.
    EXPECT_THROW(Netlist{"output o nowhere\n"}, NetlistError);
    // Combinational cycle: a = not b, b = not a.
    EXPECT_THROW(Netlist{"not a b\nnot b a\n"}, NetlistError);
    // Sequential loop through a reg is legal.
    EXPECT_NO_THROW(Netlist{"reg r inv 0\nnot inv r\n"});
}

TEST(Netlist, FourInputBitonicSortsAllPermutations) {
    Netlist nl{bitonicSorterNetlist(4)};
    std::vector<std::uint64_t> values{3, 1, 4, 2};
    std::sort(values.begin(), values.end());
    std::vector<std::uint64_t> perm = values;
    do {
        for (unsigned i = 0; i < 4; ++i) nl.setInput("in" + std::to_string(i), perm[i]);
        nl.eval();
        for (unsigned i = 0; i < 4; ++i) {
            EXPECT_EQ(nl.output("out" + std::to_string(i)), values[i]);
        }
    } while (std::next_permutation(perm.begin(), perm.end()));
}

class BitonicSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitonicSweep, SortsRandomVectors) {
    const unsigned n = GetParam();
    Netlist nl{bitonicSorterNetlist(n)};
    Rng rng{n * 7919};
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<std::int64_t> data(n);
        for (auto& v : data) {
            v = static_cast<std::int64_t>(rng.below(2000)) - 1000;  // Signed values.
        }
        for (unsigned i = 0; i < n; ++i) {
            nl.setInput("in" + std::to_string(i), static_cast<std::uint64_t>(data[i]));
        }
        nl.eval();
        std::sort(data.begin(), data.end());
        for (unsigned i = 0; i < n; ++i) {
            EXPECT_EQ(static_cast<std::int64_t>(nl.output("out" + std::to_string(i))),
                      data[i])
                << "n=" << n << " trial=" << trial << " lane=" << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitonicSweep, ::testing::Values(2u, 4u, 8u, 16u, 32u));

// ------------------------------------------------------ levelized eval mode --

/// Drive @p reference and @p candidate through the same stimulus and demand
/// every named net agree after every eval()/tick().
void expectLockstep(Netlist& reference, Netlist& candidate, unsigned inputs,
                    std::uint64_t seed) {
    Rng rng{seed};
    for (int cycle = 0; cycle < 25; ++cycle) {
        for (unsigned i = 0; i < inputs; ++i) {
            const std::uint64_t v = rng.next();
            reference.setInput("in" + std::to_string(i), v);
            candidate.setInput("in" + std::to_string(i), v);
        }
        reference.tick();
        candidate.tick();
        for (const auto& node : reference.graph().nodes) {
            ASSERT_EQ(reference.probe(node.name), candidate.probe(node.name))
                << "cycle " << cycle << " net " << node.name;
        }
    }
}

TEST(NetlistLevelized, MatchesDirtyBitOnBitonicNetworks) {
    for (const unsigned n : {4u, 8u, 16u}) {
        const std::string src = bitonicSorterNetlist(n);
        Netlist dirty{src};
        Netlist levelized{src};
        levelized.setEvalMode(EvalMode::kLevelized);
        ASSERT_EQ(levelized.evalMode(), EvalMode::kLevelized);
        expectLockstep(dirty, levelized, n, 0xB170 + n);
    }
}

TEST(NetlistLevelized, MatchesDirtyBitOnSequentialLogic) {
    const std::string src = R"(
        input in0 8
        const one 1 8
        add next acc one 8
        reg acc next 0 8
        ltu wrap in0 acc
        mux out wrap acc in0 8
        output o out
    )";
    Netlist dirty{src};
    Netlist levelized{src};
    levelized.setEvalMode(EvalMode::kLevelized);
    expectLockstep(dirty, levelized, 1, 0x5EC);
}

TEST(NetlistLevelized, FullRecomputeCountsEveryCombNode) {
    Netlist nl{bitonicSorterNetlist(4)};
    nl.setEvalMode(EvalMode::kLevelized);
    nl.eval();
    const std::size_t comb = nl.schedule().order.size();
    EXPECT_EQ(nl.lastEvalComputedNodes(), comb);
    nl.eval();  // No quiescent fast path in levelized mode: full recompute.
    EXPECT_EQ(nl.lastEvalComputedNodes(), comb);
}

TEST(NetlistLevelized, ModeCanBeSwitchedMidRun) {
    const std::string src = bitonicSorterNetlist(4);
    Netlist reference{src};
    Netlist switching{src};
    Rng rng{42};
    for (int cycle = 0; cycle < 20; ++cycle) {
        switching.setEvalMode((cycle % 3 == 0) ? EvalMode::kLevelized
                                               : EvalMode::kDirtyBit);
        for (unsigned i = 0; i < 4; ++i) {
            const std::uint64_t v = rng.below(1000);
            reference.setInput("in" + std::to_string(i), v);
            switching.setInput("in" + std::to_string(i), v);
        }
        reference.eval();
        switching.eval();
        for (unsigned i = 0; i < 4; ++i) {
            const std::string out = "out" + std::to_string(i);
            ASSERT_EQ(reference.output(out), switching.output(out)) << "cycle " << cycle;
        }
    }
}

TEST(NetlistLevelized, ScheduleIsLevelMajorAndCoversAllCombNodes) {
    Netlist nl{bitonicSorterNetlist(8)};
    const auto& sched = nl.schedule();
    EXPECT_TRUE(sched.acyclic());
    EXPECT_EQ(sched.depth(), 12u);
    std::size_t comb = 0;
    for (const auto& node : nl.graph().nodes) {
        if (!netOpIsSource(node.op)) ++comb;
    }
    EXPECT_EQ(sched.order.size(), comb);
    for (std::size_t i = 1; i < sched.order.size(); ++i) {
        EXPECT_LE(sched.levelOf[sched.order[i - 1]], sched.levelOf[sched.order[i]]);
    }
}

}  // namespace
}  // namespace g5r::rtl
