// VcdWriter failure paths: unwritable files and runtime-disabled tracing
// must never throw or write, mirroring how Table 2 toggles waveforms.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "rtl/kernel.hh"
#include "rtl/vcd.hh"

namespace g5r::rtl {
namespace {

class TinyDesign final : public Module {
public:
    TinyDesign() : Module("tiny"), count(*this, "count", 8) {}
    void evalComb() override { count.setD(static_cast<std::uint8_t>(count.q() + 1)); }

    Reg<std::uint8_t> count;
};

TEST(VcdWriter, UnwritablePathReportsNotOkWithoutThrowing) {
    TinyDesign top;
    VcdWriter vcd{"/nonexistent-g5r-dir/sub/wave.vcd", top};
    EXPECT_FALSE(vcd.ok());
    // Dumping against the dead stream is a no-op, not a crash.
    for (int i = 0; i < 4; ++i) {
        top.tick();
        EXPECT_NO_THROW(vcd.dumpCycle(static_cast<std::uint64_t>(i)));
    }
    EXPECT_EQ(vcd.bytesWritten(), 0u);
}

TEST(VcdWriter, DisabledWriterCountsNoBytes) {
    const std::string path = ::testing::TempDir() + "g5r_vcd_disabled.vcd";
    TinyDesign top;
    VcdWriter vcd{path, top};
    ASSERT_TRUE(vcd.ok());
    vcd.setEnabled(false);
    for (int i = 0; i < 4; ++i) {
        top.tick();
        vcd.dumpCycle(static_cast<std::uint64_t>(i));
    }
    EXPECT_EQ(vcd.bytesWritten(), 0u);
    std::remove(path.c_str());
}

TEST(VcdWriter, FailedWriterSurvivesDestructionAfterHeavyUse) {
    TinyDesign top;
    auto vcd = std::make_unique<VcdWriter>("/nonexistent-g5r-dir/wave.vcd", top);
    for (int i = 0; i < 100; ++i) {
        top.tick();
        vcd->dumpCycle(static_cast<std::uint64_t>(i));
    }
    EXPECT_FALSE(vcd->ok());
    EXPECT_NO_THROW(vcd.reset());  // Destructor of a dead writer is clean.
}

}  // namespace
}  // namespace g5r::rtl
