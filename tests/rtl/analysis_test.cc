// The netlist dataflow-analysis layer (src/rtl/analysis/): SCC condensation
// and levelization, value-range constant propagation, and structural cone
// dedup — plus the determinism guarantees the compiled backend and the
// levelized interpreter mode rely on.
#include <gtest/gtest.h>

#include <vector>

#include "exp/thread_pool.hh"
#include "rtl/analysis/cones.hh"
#include "rtl/analysis/const_prop.hh"
#include "rtl/analysis/levelize.hh"
#include "rtl/netlist.hh"
#include "rtl/netlist_graph.hh"

namespace g5r::rtl::analysis {
namespace {

NetlistGraph parse(std::string_view src) { return parseNetlistGraph(src); }

int idx(const NetlistGraph& g, std::string_view name) {
    const auto it = g.byName.find(std::string{name});
    return it == g.byName.end() ? -1 : it->second;
}

// ----------------------------------------------------------- levelization --

TEST(Levelize, ChainLevelsCountPathLength) {
    const auto g = parse(
        "input a\n"
        "not b a\n"
        "not c b\n"
        "not d c\n"
        "output o d\n");
    const auto sched = levelize(g);
    EXPECT_TRUE(sched.acyclic());
    EXPECT_EQ(sched.depth(), 3u);
    EXPECT_EQ(sched.levelOf[idx(g, "a")], 0);
    EXPECT_EQ(sched.levelOf[idx(g, "b")], 1);
    EXPECT_EQ(sched.levelOf[idx(g, "c")], 2);
    EXPECT_EQ(sched.levelOf[idx(g, "d")], 3);
    const std::vector<int> want{idx(g, "b"), idx(g, "c"), idx(g, "d")};
    EXPECT_EQ(sched.order, want);
}

TEST(Levelize, DiamondReconvergesAtMaxPredecessorLevel) {
    const auto g = parse(
        "input a\n"
        "not l a\n"
        "not r a\n"
        "not r2 r\n"
        "and j l r2\n"
        "output o j\n");
    const auto sched = levelize(g);
    // j's level is 1 + max(level(l)=1, level(r2)=2) = 3: longest path wins.
    EXPECT_EQ(sched.levelOf[idx(g, "j")], 3);
    EXPECT_EQ(sched.depth(), 3u);
}

TEST(Levelize, RegistersCutCombinationalPaths) {
    const auto g = parse(
        "input in\n"
        "add next acc in\n"
        "reg acc next 0\n"
        "output sum acc\n");
    const auto sched = levelize(g);
    EXPECT_TRUE(sched.acyclic());
    EXPECT_EQ(sched.levelOf[idx(g, "acc")], 0);   // Reg output is a source.
    EXPECT_EQ(sched.levelOf[idx(g, "next")], 1);  // One gate past sources.
    EXPECT_EQ(sched.depth(), 1u);
}

TEST(Levelize, CycleMembersArePinnedAtLevelZeroAndExcluded) {
    const auto g = parse(
        "input a\n"
        "and x y a\n"
        "and y x a\n"
        "not after x\n"
        "output o after\n");
    const auto sched = levelize(g);
    EXPECT_FALSE(sched.acyclic());
    ASSERT_EQ(sched.cyclicSccs.size(), 1u);
    EXPECT_EQ(sched.cyclic, (std::vector<int>{idx(g, "x"), idx(g, "y")}));
    EXPECT_EQ(sched.levelOf[idx(g, "x")], 0);
    // Downstream logic still stratifies past the broken cone.
    EXPECT_EQ(sched.levelOf[idx(g, "after")], 1);
    for (const int v : sched.order) {
        EXPECT_NE(v, idx(g, "x"));
        EXPECT_NE(v, idx(g, "y"));
    }
}

TEST(Levelize, BitonicDepthIsTwiceTheStageCount) {
    // Each compare-exchange stage contributes a compare level and a mux
    // level; a size-n network has log2(n)*(log2(n)+1)/2 stages.
    const auto depthOf = [](unsigned n) {
        const auto g = parseNetlistGraph(bitonicSorterNetlist(n));
        return levelize(g).depth();
    };
    EXPECT_EQ(depthOf(4), 6u);
    EXPECT_EQ(depthOf(8), 12u);
    EXPECT_EQ(depthOf(16), 20u);
}

TEST(Levelize, ScheduleIsDeterministicAcrossRunsAndThreadCounts) {
    const std::string src = bitonicSorterNetlist(8);
    const auto g = parseNetlistGraph(src);
    const auto reference = levelize(g);

    for (const unsigned jobs : {1u, 2u, 4u}) {
        std::vector<LevelSchedule> results(8);
        exp::ThreadPool pool{jobs};
        for (auto& slot : results) {
            pool.submit([&slot, &src] {
                const auto graph = parseNetlistGraph(src);
                slot = levelize(graph);
            });
        }
        pool.wait();
        for (const auto& sched : results) {
            EXPECT_EQ(sched.order, reference.order);
            EXPECT_EQ(sched.levelOf, reference.levelOf);
        }
    }
}

// ------------------------------------------------------ const propagation --

TEST(ConstProp, FoldsConstantDrivenCones) {
    const auto g = parse(
        "const a 5 8\n"
        "const b 3 8\n"
        "add s a b 8\n"
        "xor x s b 8\n"
        "output o x\n");
    const auto cp = propagateConstants(g, levelize(g));
    EXPECT_TRUE(cp.provablyConstant(idx(g, "s")));
    EXPECT_EQ(cp.range[idx(g, "s")].lo, 8u);
    EXPECT_TRUE(cp.provablyConstant(idx(g, "x")));
    EXPECT_EQ(cp.range[idx(g, "x")].lo, 11u);
}

TEST(ConstProp, AndWithZeroPinsTheConeToZero) {
    const auto g = parse(
        "input data 8\n"
        "const zero 0 8\n"
        "and gated data zero 8\n"
        "output o gated\n");
    const auto cp = propagateConstants(g, levelize(g));
    EXPECT_TRUE(cp.provablyConstant(idx(g, "gated")));
    EXPECT_EQ(cp.range[idx(g, "gated")].lo, 0u);
    EXPECT_FALSE(cp.provablyConstant(idx(g, "data")));  // Inputs stay free.
}

TEST(ConstProp, ConstFoldTracksEvalMaskingSemantics) {
    // 200 + 100 = 300, masked to 8 bits = 44 — exactly what eval() computes.
    const auto g = parse(
        "const a 200 8\n"
        "const b 100 8\n"
        "add s a b 8\n"
        "output o s\n");
    const auto cp = propagateConstants(g, levelize(g));
    const int s = idx(g, "s");
    EXPECT_TRUE(cp.provablyConstant(s));
    EXPECT_EQ(cp.range[s].lo, 44u);
    // The pre-mask range keeps the evidence that bits were dropped.
    EXPECT_EQ(cp.preMask[s].lo, 300u);

    Netlist n{
        "const a 200 8\n"
        "const b 100 8\n"
        "add s a b 8\n"
        "output o s\n"};
    n.eval();
    EXPECT_EQ(n.output("o"), cp.range[s].lo);
}

TEST(ConstProp, DecidesComparesFromDisjointRanges) {
    const auto g = parse(
        "input a 4\n"
        "const c 16 8\n"
        "ltu t a c\n"
        "eq e a a\n"
        "output o t\n"
        "output p e\n");
    const auto cp = propagateConstants(g, levelize(g));
    // a <= 15 < 16 always; a == a trivially.
    EXPECT_TRUE(cp.provablyConstant(idx(g, "t")));
    EXPECT_EQ(cp.range[idx(g, "t")].lo, 1u);
    EXPECT_TRUE(cp.provablyConstant(idx(g, "e")));
    EXPECT_EQ(cp.range[idx(g, "e")].lo, 1u);
}

TEST(ConstProp, SignedCompareFoldsWithSignExtension) {
    // 4-bit 0xF is -1 under lt (signed), so 0xF < 1 holds.
    const auto g = parse(
        "const m 15 4\n"
        "const one 1 4\n"
        "lt t m one\n"
        "output o t\n");
    const auto cp = propagateConstants(g, levelize(g));
    EXPECT_TRUE(cp.provablyConstant(idx(g, "t")));
    EXPECT_EQ(cp.range[idx(g, "t")].lo, 1u);
}

TEST(ConstProp, MuxWithDecidedSelectTakesOneArm) {
    const auto g = parse(
        "input a 8\n"
        "const one 1 1\n"
        "const lo 3 8\n"
        "mux m one lo a 8\n"
        "output o m\n");
    const auto cp = propagateConstants(g, levelize(g));
    EXPECT_TRUE(cp.provablyConstant(idx(g, "m")));
    EXPECT_EQ(cp.range[idx(g, "m")].lo, 3u);
}

TEST(ConstProp, StuckRegisterIsProvenStuck) {
    const auto g = parse(
        "reg r r 7 8\n"
        "output o r\n");
    const auto cp = propagateConstants(g, levelize(g));
    const int r = idx(g, "r");
    EXPECT_TRUE(cp.provablyConstant(r));
    EXPECT_EQ(cp.range[r].lo, 7u);
    EXPECT_TRUE(cp.stuckReg[r]);
}

TEST(ConstProp, CountingRegisterWidensToFullWidth) {
    const auto g = parse(
        "input en 1\n"
        "const one 1 8\n"
        "const zero 0 8\n"
        "mux step en one zero 8\n"
        "add next count step 8\n"
        "reg count next 0 8\n"
        "output value count\n");
    const auto cp = propagateConstants(g, levelize(g));
    const int count = idx(g, "count");
    EXPECT_FALSE(cp.provablyConstant(count));
    EXPECT_FALSE(cp.stuckReg[count]);
    EXPECT_EQ(cp.range[count].lo, 0u);
    EXPECT_EQ(cp.range[count].hi, 255u);  // Widened, not left mid-count.
    // The mux range stayed tight even though the reg widened.
    EXPECT_EQ(cp.range[idx(g, "step")].hi, 1u);
}

TEST(ConstProp, PreMaskProvesTruncationLossOrBenignity) {
    const auto g = parse(
        "input a 16\n"
        "const h 256 16\n"
        "const small 3 16\n"
        "or t a h 16\n"
        "add s t h 8\n"
        "and benign a small 8\n"
        "output o s\n"
        "output p benign\n");
    const auto cp = propagateConstants(g, levelize(g));
    // t >= 256 and h == 256, so t + h >= 512: the 8-bit mask on s always
    // drops bits — proven loss.
    EXPECT_GT(cp.preMask[idx(g, "s")].lo, 255u);
    // a & 3 <= 3 fits every 8-bit mask — proven benign.
    EXPECT_LE(cp.preMask[idx(g, "benign")].hi, 255u);
}

TEST(ConstProp, BitonicNetlistsHaveNoFalseConstants) {
    for (const unsigned n : {4u, 8u}) {
        const auto g = parseNetlistGraph(bitonicSorterNetlist(n));
        const auto cp = propagateConstants(g, levelize(g));
        for (std::size_t i = 0; i < g.nodes.size(); ++i) {
            if (g.nodes[i].op == NetOp::kConst) continue;
            EXPECT_FALSE(cp.provablyConstant(static_cast<int>(i)))
                << "net " << g.nodes[i].name << " wrongly proven constant";
        }
    }
}

// ------------------------------------------------------------- cone dedup --

TEST(Cones, CommutativeOperandOrderDoesNotSplitClasses) {
    const auto g = parse(
        "input a\n"
        "input b\n"
        "and x a b\n"
        "and y b a\n"
        "or o x y\n"
        "output sum o\n");
    const auto dup = findDuplicateCones(g, levelize(g));
    ASSERT_EQ(dup.classes.size(), 1u);
    EXPECT_EQ(dup.classes[0].nodes, (std::vector<int>{idx(g, "x"), idx(g, "y")}));
    EXPECT_EQ(dup.classes[0].coneSize, 1u);
    EXPECT_EQ(dup.redundantNodes, 1u);
}

TEST(Cones, EqualConstantsAreInterchangeableSources) {
    const auto g = parse(
        "input a 8\n"
        "const c1 5 8\n"
        "const c2 5 8\n"
        "add s1 a c1 8\n"
        "add s2 a c2 8\n"
        "xor o s1 s2 8\n"
        "output out o\n");
    const auto dup = findDuplicateCones(g, levelize(g));
    ASSERT_EQ(dup.classes.size(), 1u);
    EXPECT_EQ(dup.classes[0].nodes, (std::vector<int>{idx(g, "s1"), idx(g, "s2")}));
}

TEST(Cones, DistinctInputsMakeDistinctCones) {
    const auto g = parse(
        "input a\n"
        "input b\n"
        "input c\n"
        "and x a b\n"
        "and y a c\n"
        "or o x y\n"
        "output sum o\n");
    const auto dup = findDuplicateCones(g, levelize(g));
    EXPECT_TRUE(dup.classes.empty());
    EXPECT_EQ(dup.combNodes, 3u);
    EXPECT_EQ(dup.distinctCones, 3u);
}

TEST(Cones, NonCommutativeOperandOrderMatters) {
    const auto g = parse(
        "input a 8\n"
        "input b 8\n"
        "sub d1 a b 8\n"
        "sub d2 b a 8\n"
        "or o d1 d2 8\n"
        "output out o\n");
    const auto dup = findDuplicateCones(g, levelize(g));
    EXPECT_TRUE(dup.classes.empty());
}

TEST(Cones, DeepDuplicatesCountWholeConeSize) {
    const auto g = parse(
        "input a\n"
        "input b\n"
        "and m1 a b\n"
        "not n1 m1\n"
        "and m2 b a\n"
        "not n2 m2\n"
        "or o n1 n2\n"
        "output out o\n");
    const auto dup = findDuplicateCones(g, levelize(g));
    // Two classes: {m1, m2} (size-1 cones) and {n1, n2} (size-2 cones).
    ASSERT_EQ(dup.classes.size(), 2u);
    EXPECT_EQ(dup.classes[0].coneSize, 1u);
    EXPECT_EQ(dup.classes[1].coneSize, 2u);
    EXPECT_EQ(dup.redundantNodes, 2u);
}

TEST(Cones, BitonicNetworkHasNoDuplicateCones) {
    // Every compare-exchange reads a distinct lane pair, so a correct
    // generator yields zero duplicates — and the hasher must not invent any.
    const auto g = parseNetlistGraph(bitonicSorterNetlist(8));
    const auto dup = findDuplicateCones(g, levelize(g));
    EXPECT_TRUE(dup.classes.empty());
    EXPECT_EQ(dup.combNodes, 72u);
}

TEST(Cones, HashesAreDeterministicAcrossThreadCounts) {
    const std::string src = bitonicSorterNetlist(8);
    const auto refGraph = parseNetlistGraph(src);
    const auto reference = hashCones(refGraph, levelize(refGraph));

    std::vector<ConeHashes> results(6);
    exp::ThreadPool pool{3};
    for (auto& slot : results) {
        pool.submit([&slot, &src] {
            const auto g = parseNetlistGraph(src);
            slot = hashCones(g, levelize(g));
        });
    }
    pool.wait();
    for (const auto& ch : results) {
        EXPECT_EQ(ch.hash, reference.hash);
        EXPECT_EQ(ch.coneSize, reference.coneSize);
    }
}

}  // namespace
}  // namespace g5r::rtl::analysis
