// Compiled netlist backend conformance: every NetOp, across the interesting
// widths, must evaluate identically under dirty-bit interpretation,
// levelized interpretation, and the g5r-netlistc generated native code —
// loaded through the raw-kernel face of the emitted library, i.e. the same
// dlopen path the simulator uses.
//
// These tests invoke the host C++ compiler at runtime (once per width), so
// they live in their own binary rather than test_rtl.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "rtl/codegen/compile.hh"
#include "rtl/codegen/kernel_loader.hh"
#include "rtl/netlist.hh"
#include "sim/rng.hh"

namespace g5r::rtl::codegen {
namespace {

std::uint64_t maskFor(unsigned width) {
    return width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
}

/// Compile @p source into a temp .so and dlopen its kernel face. The .so is
/// removed when the returned holder goes out of scope.
struct Compiled {
    std::string soPath;
    CodegenStats stats;
    std::unique_ptr<CompiledKernel> kernel;

    explicit Compiled(const std::string& source, const std::string& tag) {
        soPath = (std::filesystem::temp_directory_path() /
                  ("g5r_cgtest_" + tag + "_" + std::to_string(::getpid()) + ".so"))
                     .string();
        std::string error;
        const bool ok = compileNetlistModelFromSource(
            source, CodegenOptions{}, CompileOptions{}, soPath, &error, &stats);
        EXPECT_TRUE(ok) << error;
        if (ok) {
            kernel = CompiledKernel::load(soPath, &error);
            EXPECT_NE(kernel, nullptr) << error;
        }
    }
    ~Compiled() {
        std::error_code ec;
        std::filesystem::remove(soPath, ec);
    }
};

int inputIndexOf(const CompiledKernel& k, const std::string& name) {
    for (std::uint32_t i = 0; i < k.numInputs(); ++i) {
        if (k.inputName(i) == name) return static_cast<int>(i);
    }
    return -1;
}

/// One netlist exercising every NetOp at data width @p w: two data inputs,
/// a 1-bit select, one constant, every combinational op, and a register.
std::string everyOpNetlist(unsigned w) {
    const std::string W = " " + std::to_string(w);
    std::string src;
    src += "input a" + W + "\n";
    src += "input b" + W + "\n";
    src += "input s 1\n";
    src += "const k 3" + W + "\n";
    src += "and y_and a b" + W + "\n";
    src += "or  y_or  a b" + W + "\n";
    src += "xor y_xor a b" + W + "\n";
    src += "not y_not a" + W + "\n";
    src += "add y_add a b" + W + "\n";
    src += "sub y_sub a b" + W + "\n";
    src += "add y_addk a k" + W + "\n";
    src += "lt  y_lt  a b\n";   // Signed: sign-extends from width w.
    src += "ltu y_ltu a b\n";
    src += "eq  y_eq  a b\n";
    src += "mux y_mux s a b" + W + "\n";
    src += "reg q y_xor 0" + W + "\n";
    for (const char* o : {"and", "or", "xor", "not", "add", "sub", "addk",
                          "lt", "ltu", "eq", "mux"}) {
        src += std::string{"output o_"} + o + " y_" + o + "\n";
    }
    src += "output o_q q\n";
    return src;
}

/// Boundary-heavy operand set for width @p w: zero, one, all-ones, the
/// signed extremes, an alternating pattern, and some deterministic randoms.
std::vector<std::uint64_t> operandsFor(unsigned w, Rng& rng) {
    const std::uint64_t m = maskFor(w);
    std::vector<std::uint64_t> v{0, 1, m, m - 1, m >> 1,       // max signed
                                 (m >> 1) + 1,                 // min signed
                                 0xAAAA'AAAA'AAAA'AAAAull & m};
    for (int i = 0; i < 4; ++i) v.push_back(rng.next() & m);
    return v;
}

TEST(CodegenConformance, EveryOpMatchesBothInterpretersAcrossWidths) {
    for (const unsigned w : {1u, 7u, 63u, 64u}) {
        SCOPED_TRACE("width " + std::to_string(w));
        const std::string src = everyOpNetlist(w);

        Netlist dirty{src};
        Netlist lev{src};
        lev.setEvalMode(EvalMode::kLevelized);
        Compiled compiled{src, "everyop_w" + std::to_string(w)};
        ASSERT_NE(compiled.kernel, nullptr);
        auto& kern = *compiled.kernel;

        ASSERT_EQ(kern.numInputs(), 3u);
        ASSERT_EQ(kern.numOutputs(), 12u);
        const int ia = inputIndexOf(kern, "a");
        const int ib = inputIndexOf(kern, "b");
        const int is = inputIndexOf(kern, "s");
        ASSERT_GE(ia, 0);
        ASSERT_GE(ib, 0);
        ASSERT_GE(is, 0);
        EXPECT_EQ(kern.inputWidth(static_cast<std::uint32_t>(ia)), w);
        EXPECT_EQ(kern.inputWidth(static_cast<std::uint32_t>(is)), 1u);

        dirty.reset();
        lev.reset();
        kern.reset();

        Rng rng{0xC0DE60ull + w};
        const auto operands = operandsFor(w, rng);
        unsigned sel = 0;
        for (const std::uint64_t a : operands) {
            for (const std::uint64_t b : operands) {
                sel ^= 1;
                for (Netlist* nl : {&dirty, &lev}) {
                    nl->setInput("a", a);
                    nl->setInput("b", b);
                    nl->setInput("s", sel);
                }
                kern.setInput(static_cast<std::uint32_t>(ia), a);
                kern.setInput(static_cast<std::uint32_t>(ib), b);
                kern.setInput(static_cast<std::uint32_t>(is), sel);

                // tick() = eval + latch: compares the combinational results
                // of this cycle and the register value captured last cycle.
                dirty.tick();
                lev.tick();
                kern.tick();
                for (std::uint32_t o = 0; o < kern.numOutputs(); ++o) {
                    const std::string name = kern.outputName(o);
                    const std::uint64_t expect = dirty.output(name);
                    ASSERT_EQ(lev.output(name), expect)
                        << name << " a=" << a << " b=" << b;
                    ASSERT_EQ(kern.output(o), expect)
                        << name << " a=" << a << " b=" << b;
                }
            }
        }
    }
}

TEST(CodegenConformance, SignedLtBoundaryValues) {
    // lt sign-extends both operands from their declared widths; the minimum
    // and maximum signed values either side of the wrap are where a
    // mis-compiled shift would show.
    for (const unsigned w : {7u, 63u, 64u}) {
        SCOPED_TRACE("width " + std::to_string(w));
        const std::string W = " " + std::to_string(w);
        const std::string src = "input a" + W + "\ninput b" + W +
                                "\nlt y a b\noutput o y\n";
        Netlist dirty{src};
        Compiled compiled{src, "lt_w" + std::to_string(w)};
        ASSERT_NE(compiled.kernel, nullptr);
        auto& kern = *compiled.kernel;

        const std::uint64_t m = maskFor(w);
        const std::uint64_t minSigned = (m >> 1) + 1;  // 100...0
        const std::uint64_t maxSigned = m >> 1;        // 011...1
        const std::uint64_t cases[] = {0, 1, m /* -1 */, minSigned, maxSigned,
                                       minSigned + 1, maxSigned - 1};
        for (const std::uint64_t a : cases) {
            for (const std::uint64_t b : cases) {
                dirty.setInput("a", a);
                dirty.setInput("b", b);
                dirty.eval();
                kern.setInput(0, a);
                kern.setInput(1, b);
                kern.eval();
                ASSERT_EQ(kern.output(0), dirty.output("o"))
                    << "a=" << a << " b=" << b;
            }
        }
    }
}

TEST(CodegenConformance, DuplicateConesEmitOnceAndStayCorrect) {
    // u and v are verified-identical cones: codegen must emit the adder once
    // and alias the duplicate, and the aliased value must still be right.
    const std::string src = R"(
        input a 8
        input b 8
        add u a b 8
        add v a b 8
        xor w u v 8
        output o_u u
        output o_v v
        output o_w w
    )";
    Netlist dirty{src};
    Compiled compiled{src, "dedup"};
    ASSERT_NE(compiled.kernel, nullptr);
    EXPECT_GE(compiled.stats.dedupReused, 1u);
    auto& kern = *compiled.kernel;

    Rng rng{7};
    for (int i = 0; i < 32; ++i) {
        const std::uint64_t a = rng.next() & 0xFF;
        const std::uint64_t b = rng.next() & 0xFF;
        dirty.setInput("a", a);
        dirty.setInput("b", b);
        dirty.eval();
        kern.setInput(0, a);
        kern.setInput(1, b);
        kern.eval();
        const int ou = kern.outputIndex("o_u");
        const int ov = kern.outputIndex("o_v");
        const int ow = kern.outputIndex("o_w");
        ASSERT_GE(ou, 0);
        ASSERT_GE(ov, 0);
        ASSERT_GE(ow, 0);
        EXPECT_EQ(kern.output(static_cast<std::uint32_t>(ou)), (a + b) & 0xFF);
        EXPECT_EQ(kern.output(static_cast<std::uint32_t>(ov)),
                  dirty.output("o_v"));
        EXPECT_EQ(kern.output(static_cast<std::uint32_t>(ow)), 0u);
    }
    EXPECT_EQ(kern.outputIndex("nope"), -1);
}

TEST(CodegenConformance, ConstantConesFoldToResetTimeInits) {
    // k + m is a constant cone: const prop proves it, codegen folds it, and
    // the fold must not change what the model computes.
    const std::string src = R"(
        const k 5 8
        const m 3 8
        add s k m 8
        input a 8
        add y a s 8
        output o y
        output o_s s
    )";
    Netlist dirty{src};
    Compiled compiled{src, "cfold"};
    ASSERT_NE(compiled.kernel, nullptr);
    EXPECT_GE(compiled.stats.constFolded, 1u);
    auto& kern = *compiled.kernel;

    for (const std::uint64_t a : {0ull, 0x7Full, 0xF8ull, 0xFFull}) {
        dirty.setInput("a", a);
        dirty.eval();
        kern.setInput(0, a);
        kern.eval();
        EXPECT_EQ(kern.output(static_cast<std::uint32_t>(kern.outputIndex("o"))),
                  (a + 8) & 0xFF);
        EXPECT_EQ(
            kern.output(static_cast<std::uint32_t>(kern.outputIndex("o_s"))),
            8u);
    }
}

TEST(CodegenConformance, MaskElisionStatsReflectConstProp) {
    // Compares produce {0,1} and 64-bit adds wrap for free: no masks. A
    // 7-bit add genuinely needs one.
    CodegenStats wide = Compiled{"input a\ninput b\nadd y a b\nlt c a b\n"
                                 "output o y\noutput oc c\n",
                                 "mask64"}
                            .stats;
    EXPECT_EQ(wide.masksApplied, 0u);
    EXPECT_GE(wide.masksSkipped, 2u);

    CodegenStats narrow = Compiled{"input a 7\ninput b 7\nadd y a b 7\n"
                                   "output o y\n",
                                   "mask7"}
                              .stats;
    EXPECT_EQ(narrow.masksApplied, 1u);
}

TEST(CodegenConformance, SequentialLogicMatchesAcrossBackends) {
    // An 8-bit accumulator with a mux-based enable: registers latch on
    // tick() and feed back combinationally.
    const std::string src = R"(
        input d 8
        input en 1
        add sum acc d 8
        mux nxt en sum acc 8
        reg acc nxt 0 8
        output o acc
    )";
    Netlist dirty{src};
    Netlist lev{src};
    lev.setEvalMode(EvalMode::kLevelized);
    Compiled compiled{src, "seq"};
    ASSERT_NE(compiled.kernel, nullptr);
    EXPECT_EQ(compiled.stats.regs, 1u);
    auto& kern = *compiled.kernel;
    const int id = inputIndexOf(kern, "d");
    const int ie = inputIndexOf(kern, "en");
    ASSERT_GE(id, 0);
    ASSERT_GE(ie, 0);

    dirty.reset();
    lev.reset();
    kern.reset();
    Rng rng{42};
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t d = rng.next() & 0xFF;
        const std::uint64_t en = rng.next() & 1;
        for (Netlist* nl : {&dirty, &lev}) {
            nl->setInput("d", d);
            nl->setInput("en", en);
            nl->tick();
        }
        kern.setInput(static_cast<std::uint32_t>(id), d);
        kern.setInput(static_cast<std::uint32_t>(ie), en);
        kern.tick();
        const std::uint64_t expect = dirty.output("o");
        ASSERT_EQ(lev.output("o"), expect) << "cycle " << i;
        ASSERT_EQ(kern.output(0), expect) << "cycle " << i;
    }

    // reset() returns all three to the same state.
    dirty.reset();
    lev.reset();
    kern.reset();
    dirty.eval();
    lev.eval();
    kern.eval();
    EXPECT_EQ(dirty.output("o"), 0u);
    EXPECT_EQ(lev.output("o"), 0u);
    EXPECT_EQ(kern.output(0), 0u);
}

TEST(CodegenConformance, GeneratedBitonicSortsLikeTheInterpreter) {
    const std::string src = bitonicSorterNetlist(8);
    Netlist dirty{src};
    Compiled compiled{src, "bitonic8"};
    ASSERT_NE(compiled.kernel, nullptr);
    auto& kern = *compiled.kernel;
    ASSERT_EQ(kern.numInputs(), 8u);
    ASSERT_EQ(kern.numOutputs(), 8u);

    Rng rng{0xB170ull};
    for (int round = 0; round < 16; ++round) {
        std::vector<std::uint64_t> data(8);
        for (auto& v : data) v = rng.next();
        for (unsigned i = 0; i < 8; ++i) {
            dirty.setInput("in" + std::to_string(i), data[i]);
            kern.setInput(i, data[i]);
        }
        dirty.eval();
        kern.eval();
        for (unsigned i = 0; i < 8; ++i) {
            ASSERT_EQ(kern.output(i), dirty.output("out" + std::to_string(i)))
                << "lane " << i;
        }
    }
}

TEST(CodegenCompile, RejectsNetlistsThatFailStrictElaboration) {
    const std::string soPath =
        (std::filesystem::temp_directory_path() /
         ("g5r_cgtest_bad_" + std::to_string(::getpid()) + ".so"))
            .string();
    std::string error;
    EXPECT_FALSE(compileNetlistModelFromSource("and y a b\noutput o y\n",
                                               CodegenOptions{}, CompileOptions{},
                                               soPath, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(std::filesystem::exists(soPath));
}

TEST(CodegenCompile, ReportsToolchainFailuresWithDiagnostics) {
    CompileOptions opts;
    opts.cxx = "/nonexistent/definitely-not-a-compiler";
    const std::string soPath =
        (std::filesystem::temp_directory_path() /
         ("g5r_cgtest_nocc_" + std::to_string(::getpid()) + ".so"))
            .string();
    std::string error;
    EXPECT_FALSE(compileNetlistModelFromSource("input a\noutput o a\n",
                                               CodegenOptions{}, opts, soPath,
                                               &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(std::filesystem::exists(soPath));
}

}  // namespace
}  // namespace g5r::rtl::codegen
