// RTL kernel: two-phase register semantics, hierarchy, reset, VCD output.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "rtl/kernel.hh"
#include "rtl/vcd.hh"

namespace g5r::rtl {
namespace {

// A 4-bit counter with enable and wrap.
class Counter final : public Module {
public:
    explicit Counter(Module* parent = nullptr)
        : Module("counter", parent), count(*this, "count", 4), enable(false) {}

    void evalComb() override {
        if (enable) count.setD((count.q() + 1) & 0xF);
    }

    Reg<std::uint8_t> count;
    bool enable;
};

TEST(RtlKernel, RegisterLatchesOnTickOnly) {
    Counter c;
    c.enable = true;
    EXPECT_EQ(c.count.q(), 0);
    c.evalComb();           // Combinational evaluation alone...
    EXPECT_EQ(c.count.q(), 0);  // ...does not change q.
    c.tick();
    EXPECT_EQ(c.count.q(), 1);
    for (int i = 0; i < 14; ++i) c.tick();
    EXPECT_EQ(c.count.q(), 15);
    c.tick();
    EXPECT_EQ(c.count.q(), 0);  // 4-bit wrap.
}

TEST(RtlKernel, HoldByDefault) {
    Counter c;
    c.enable = false;  // evalComb writes nothing: register must hold.
    c.tick();
    c.tick();
    EXPECT_EQ(c.count.q(), 0);
    c.enable = true;
    c.tick();
    EXPECT_EQ(c.count.q(), 1);
    c.enable = false;
    c.tick();
    EXPECT_EQ(c.count.q(), 1);
}

TEST(RtlKernel, ResetRestoresInitialValues) {
    Counter c;
    c.enable = true;
    for (int i = 0; i < 5; ++i) c.tick();
    EXPECT_EQ(c.count.q(), 5);
    c.reset();
    EXPECT_EQ(c.count.q(), 0);
}

// Two-phase correctness: a swap circuit (a <- b, b <- a simultaneously)
// only works with proper flip-flop semantics.
class Swapper final : public Module {
public:
    Swapper() : Module("swapper"), a(*this, "a", 8, 1), b(*this, "b", 8, 2) {}
    void evalComb() override {
        a.setD(b.q());
        b.setD(a.q());
    }
    Reg<std::uint8_t> a, b;
};

TEST(RtlKernel, SimultaneousSwapIsRaceFree) {
    Swapper s;
    s.tick();
    EXPECT_EQ(s.a.q(), 2);
    EXPECT_EQ(s.b.q(), 1);
    s.tick();
    EXPECT_EQ(s.a.q(), 1);
    EXPECT_EQ(s.b.q(), 2);
}

// Hierarchy: parent tick drives children.
class Pair final : public Module {
public:
    Pair() : Module("pair"), c0(this), c1(this) {}
    Counter c0, c1;
};

TEST(RtlKernel, HierarchyTicksChildren) {
    Pair p;
    p.c0.enable = true;
    p.c1.enable = true;
    p.tick();
    p.tick();
    EXPECT_EQ(p.c0.count.q(), 2);
    EXPECT_EQ(p.c1.count.q(), 2);
    p.reset();
    EXPECT_EQ(p.c0.count.q(), 0);
}

TEST(RtlVcd, ProducesParsableWaveform) {
    const std::string path = ::testing::TempDir() + "/counter.vcd";
    Counter c;
    c.enable = true;
    {
        VcdWriter vcd{path, c};
        ASSERT_TRUE(vcd.ok());
        for (std::uint64_t cycle = 0; cycle < 20; ++cycle) {
            c.tick();
            vcd.dumpCycle(cycle);
        }
        EXPECT_GT(vcd.bytesWritten(), 0u);
    }
    std::ifstream in{path};
    std::stringstream content;
    content << in.rdbuf();
    const std::string text = content.str();
    EXPECT_NE(text.find("$timescale"), std::string::npos);
    EXPECT_NE(text.find("$var reg 4"), std::string::npos);
    EXPECT_NE(text.find("count"), std::string::npos);
    EXPECT_NE(text.find("#0"), std::string::npos);
    EXPECT_NE(text.find("#19"), std::string::npos);
    std::remove(path.c_str());
}

TEST(RtlVcd, DisableStopsOutput) {
    const std::string path = ::testing::TempDir() + "/disabled.vcd";
    Counter c;
    c.enable = true;
    VcdWriter vcd{path, c};
    vcd.dumpCycle(0);
    const auto bytesAfterOne = vcd.bytesWritten();
    vcd.setEnabled(false);
    for (std::uint64_t cycle = 1; cycle < 100; ++cycle) {
        c.tick();
        vcd.dumpCycle(cycle);
    }
    EXPECT_EQ(vcd.bytesWritten(), bytesAfterOne);
    vcd.setEnabled(true);
    c.tick();
    vcd.dumpCycle(100);
    EXPECT_GT(vcd.bytesWritten(), bytesAfterOne);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace g5r::rtl
