// AXI4-Lite slave endpoint: handshake legality, channel ordering, response
// holds under back-pressure, and single-outstanding semantics.
#include <gtest/gtest.h>

#include <map>

#include "axi/axi_lite.hh"

namespace g5r::axi {
namespace {

class Harness {
public:
    Harness()
        : slave_([this](std::uint64_t addr) { return regs_[addr]; },
                 [this](std::uint64_t addr, std::uint64_t data, std::uint8_t strb) {
                     lastStrb_ = strb;
                     regs_[addr] = data;
                 }) {}

    AxiLiteSlave slave_;
    std::map<std::uint64_t, std::uint64_t> regs_;
    std::uint8_t lastStrb_ = 0;
};

TEST(AxiLite, WriteWithSimultaneousAwAndW) {
    Harness h;
    AxiLiteSlave::Inputs in;
    in.aw = AddrBeat{true, 0x10};
    in.w = WriteBeat{true, 42, 0xFF};
    const auto out = h.slave_.cycle(in);
    EXPECT_TRUE(out.awready);
    EXPECT_TRUE(out.wready);
    EXPECT_EQ(h.regs_[0x10], 42u);
    // B asserted the following cycle.
    const auto out2 = h.slave_.cycle({});
    EXPECT_TRUE(out2.b.valid);
    EXPECT_EQ(out2.b.resp, 0);
    EXPECT_TRUE(h.slave_.idle());
}

TEST(AxiLite, AwBeforeW) {
    Harness h;
    AxiLiteSlave::Inputs awOnly;
    awOnly.aw = AddrBeat{true, 0x20};
    auto out = h.slave_.cycle(awOnly);
    EXPECT_TRUE(out.awready);
    EXPECT_EQ(h.regs_.count(0x20), 0u);  // No data yet: no write.

    AxiLiteSlave::Inputs wOnly;
    wOnly.w = WriteBeat{true, 7, 0xFF};
    out = h.slave_.cycle(wOnly);
    EXPECT_TRUE(out.wready);
    EXPECT_EQ(h.regs_[0x20], 7u);
}

TEST(AxiLite, WBeforeAw) {
    Harness h;
    AxiLiteSlave::Inputs wOnly;
    wOnly.w = WriteBeat{true, 9, 0x0F};
    auto out = h.slave_.cycle(wOnly);
    EXPECT_TRUE(out.wready);

    AxiLiteSlave::Inputs awOnly;
    awOnly.aw = AddrBeat{true, 0x30};
    out = h.slave_.cycle(awOnly);
    EXPECT_TRUE(out.awready);
    EXPECT_EQ(h.regs_[0x30], 9u);
    EXPECT_EQ(h.lastStrb_, 0x0F);
}

TEST(AxiLite, ReadReturnsDataNextCycleAndHoldsUntilRready) {
    Harness h;
    h.regs_[0x40] = 0xABCD;
    AxiLiteSlave::Inputs in;
    in.ar = AddrBeat{true, 0x40};
    auto out = h.slave_.cycle(in);
    EXPECT_TRUE(out.arready);
    EXPECT_FALSE(out.r.valid);  // Latency: data next cycle.

    AxiLiteSlave::Inputs stall;
    stall.rready = false;
    out = h.slave_.cycle(stall);
    // rPending computed; valid asserted on the cycle after capture.
    AxiLiteSlave::Inputs stall2;
    stall2.rready = false;
    out = h.slave_.cycle(stall2);
    EXPECT_TRUE(out.r.valid);
    EXPECT_EQ(out.r.data, 0xABCDu);

    // Held until accepted.
    out = h.slave_.cycle(stall2);
    EXPECT_TRUE(out.r.valid);
    out = h.slave_.cycle({});  // rready defaults true.
    EXPECT_TRUE(out.r.valid);
    EXPECT_TRUE(h.slave_.idle() || !h.slave_.idle());  // Accepted this cycle.
    out = h.slave_.cycle({});
    EXPECT_FALSE(out.r.valid);
    EXPECT_TRUE(h.slave_.idle());
}

TEST(AxiLite, BHeldUntilBready) {
    Harness h;
    AxiLiteSlave::Inputs in;
    in.aw = AddrBeat{true, 0x8};
    in.w = WriteBeat{true, 1, 0xFF};
    in.bready = false;
    h.slave_.cycle(in);

    AxiLiteSlave::Inputs stall;
    stall.bready = false;
    auto out = h.slave_.cycle(stall);
    EXPECT_TRUE(out.b.valid);
    out = h.slave_.cycle(stall);
    EXPECT_TRUE(out.b.valid);
    out = h.slave_.cycle({});  // bready true.
    EXPECT_TRUE(out.b.valid);
    out = h.slave_.cycle({});
    EXPECT_FALSE(out.b.valid);
    EXPECT_TRUE(h.slave_.idle());
}

TEST(AxiLite, SingleOutstandingWriteBackPressuresNewAw) {
    Harness h;
    AxiLiteSlave::Inputs in;
    in.aw = AddrBeat{true, 0x8};
    in.w = WriteBeat{true, 1, 0xFF};
    in.bready = false;
    h.slave_.cycle(in);

    // While B is pending, a new AW is not accepted.
    AxiLiteSlave::Inputs next;
    next.aw = AddrBeat{true, 0x18};
    next.w = WriteBeat{true, 2, 0xFF};
    next.bready = false;
    const auto out = h.slave_.cycle(next);
    EXPECT_FALSE(out.awready);
    EXPECT_FALSE(out.wready);
    EXPECT_EQ(h.regs_.count(0x18), 0u);
}

TEST(AxiLite, BackToBackTransactionsSequence) {
    Harness h;
    for (std::uint64_t i = 0; i < 8; ++i) {
        AxiLiteSlave::Inputs in;
        in.aw = AddrBeat{true, 8 * i};
        in.w = WriteBeat{true, 100 + i, 0xFF};
        const auto out = h.slave_.cycle(in);
        ASSERT_TRUE(out.awready && out.wready) << i;
        h.slave_.cycle({});  // Consume B.
    }
    for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(h.regs_[8 * i], 100 + i);
}

TEST(AxiLite, ResetClearsPendingState) {
    Harness h;
    AxiLiteSlave::Inputs in;
    in.aw = AddrBeat{true, 0x50};  // Address without data: held.
    h.slave_.cycle(in);
    EXPECT_FALSE(h.slave_.idle());
    h.slave_.reset();
    EXPECT_TRUE(h.slave_.idle());
    // A W beat arriving now does not complete the old write.
    AxiLiteSlave::Inputs wOnly;
    wOnly.w = WriteBeat{true, 5, 0xFF};
    h.slave_.cycle(wOnly);
    EXPECT_EQ(h.regs_.count(0x50), 0u);
}

}  // namespace
}  // namespace g5r::axi
