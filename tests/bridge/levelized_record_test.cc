// Evaluator identity at the bridge level: the same bitonic sort driven
// through the dlopen'd model under both interpreter modes — and through the
// g5r-netlistc compiled library (eval=compiled) — must produce byte-identical
// flight recordings (the PR 5 recorder is the witness — g5r-diff exit 0 ==
// DivergenceReport{!diverged}) and equal sorted outputs read back over the
// device channel.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bridge/rtl_object.hh"
#include "common/test_requester.hh"
#include "mem/packet.hh"
#include "obs/diff.hh"
#include "obs/session.hh"
#include "sim/packet_id.hh"
#include "sim/rng.hh"
#include "soc/model_loader.hh"

#ifndef G5R_MODEL_DIR
#error "tests must be compiled with -DG5R_MODEL_DIR"
#endif

namespace g5r {
namespace {

std::string tmpPath(const std::string& file) {
    return (std::filesystem::temp_directory_path() / file).string();
}

/// Sort @p data through the shared-library bitonic model with a flight
/// recording attached; returns the read-back (sorted) outputs.
std::vector<std::uint64_t> runRecordedSort(const std::string& config,
                                           const std::vector<std::uint64_t>& data,
                                           const std::string& recordPath) {
    Simulation sim;
    obs::ObsOptions opts;
    opts.recordEnabled = true;
    opts.recordPath = recordPath;
    opts.recordIntervalTicks = 100'000;
    auto session = obs::ObsSession::create(sim, opts, "levelized_identity");

    RtlObjectParams params;
    // eval=compiled resolves to the g5r-netlistc library (libbitonic_cN.so),
    // everything else to the interpreted model.
    auto rtl = std::make_unique<RtlObject>(
        sim, "bitonic_obj", params,
        SharedLibModel::load(rtlModelPathForConfig("bitonic", config), config),
        nullptr);
    auto req = std::make_unique<testing::TestRequester>(sim, "host");
    req->port().bind(rtl->cpuSidePort(0));

    // Identical packet IDs per run: draw from a run-local counter, never the
    // process-global fallback (see tests/common/record_harness.hh).
    std::uint64_t packetIds = 0;
    PacketIdScope idScope{packetIds};

    const auto runUntilResponses = [&] {
        for (int slice = 0; slice < 1000 && !req->allResponsesReceived(); ++slice) {
            sim.run(sim.curTick() + 10'000);
        }
        ASSERT_TRUE(req->allResponsesReceived());
    };
    const auto writeReg = [&](std::uint64_t addr, std::uint64_t value) {
        auto pkt = makeWritePacket(addr, 8);
        pkt->set<std::uint64_t>(value);
        req->issueAt(sim.curTick(), std::move(pkt));
        runUntilResponses();
    };
    const auto readReg = [&](std::uint64_t addr) {
        req->issueAt(sim.curTick(), makeReadPacket(addr, 8));
        runUntilResponses();
        return req->responses().back().pkt->get<std::uint64_t>();
    };

    std::vector<std::uint64_t> sorted;
    for (std::size_t i = 0; i < data.size(); ++i) writeReg(8 * i, data[i]);
    writeReg(0x200, 1);  // Start.
    for (int spin = 0; spin < 100 && (readReg(0x208) & 2) == 0; ++spin) {
    }
    EXPECT_EQ(readReg(0x208) & 2, 2u) << "sort never finished";
    for (std::size_t i = 0; i < data.size(); ++i) {
        sorted.push_back(readReg(0x100 + 8 * i));
    }
    session->finish();
    return sorted;
}

class LevelizedRecord : public ::testing::TestWithParam<unsigned> {};

TEST_P(LevelizedRecord, BothEvalModesProduceIdenticalRecordingsAndOutputs) {
    const unsigned n = GetParam();
    Rng rng{0x1DE + n};
    std::vector<std::uint64_t> data(n);
    for (auto& v : data) v = rng.below(100'000);

    const std::string base = "n=" + std::to_string(n);
    const std::string recDirty = tmpPath("g5r_dirty_" + std::to_string(n) + ".g5rec");
    const std::string recLevel = tmpPath("g5r_level_" + std::to_string(n) + ".g5rec");

    const auto outDirty = runRecordedSort(base + ",eval=dirty", data, recDirty);
    const auto outLevel = runRecordedSort(base + ",eval=levelized", data, recLevel);

    // Functional identity: both modes sort, and sort identically.
    std::vector<std::uint64_t> expected = data;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(outDirty, expected);
    EXPECT_EQ(outLevel, outDirty);

    // Recorder identity: the library face of `g5r-diff a b` returning 0.
    const auto rep = obs::diffRecordingFiles(recDirty, recLevel, obs::DiffLane::kBoth);
    EXPECT_TRUE(rep.comparable) << rep.error;
    EXPECT_FALSE(rep.diverged) << rep.lane << " @ interval " << rep.intervalIndex
                               << ": " << rep.detail;

    std::remove(recDirty.c_str());
    std::remove(recLevel.c_str());
}

INSTANTIATE_TEST_SUITE_P(Sizes, LevelizedRecord, ::testing::Values(4u, 8u, 16u));

// The compiled backend through the same lens: the native .so emitted by
// g5r-netlistc, loaded over the identical dlopen ABI, must be recording-
// identical to BOTH interpreter modes — the acceptance witness that codegen
// preserves per-tick device behaviour, not just final values.
class CompiledRecord : public ::testing::TestWithParam<unsigned> {};

TEST_P(CompiledRecord, CompiledModelIsRecordingIdenticalToBothInterpreters) {
    const unsigned n = GetParam();
    Rng rng{0xC0 + n};
    std::vector<std::uint64_t> data(n);
    for (auto& v : data) v = rng.below(100'000);

    const std::string base = "n=" + std::to_string(n);
    const std::string recDirty =
        tmpPath("g5r_cdirty_" + std::to_string(n) + ".g5rec");
    const std::string recLevel =
        tmpPath("g5r_clevel_" + std::to_string(n) + ".g5rec");
    const std::string recCompiled =
        tmpPath("g5r_ccomp_" + std::to_string(n) + ".g5rec");

    const auto outDirty = runRecordedSort(base + ",eval=dirty", data, recDirty);
    const auto outLevel = runRecordedSort(base + ",eval=levelized", data, recLevel);
    const auto outCompiled =
        runRecordedSort(base + ",eval=compiled", data, recCompiled);

    std::vector<std::uint64_t> expected = data;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(outCompiled, expected);
    EXPECT_EQ(outCompiled, outDirty);
    EXPECT_EQ(outCompiled, outLevel);

    for (const auto* other : {&recDirty, &recLevel}) {
        const auto rep =
            obs::diffRecordingFiles(*other, recCompiled, obs::DiffLane::kBoth);
        EXPECT_TRUE(rep.comparable) << rep.error;
        EXPECT_FALSE(rep.diverged)
            << *other << " vs compiled: " << rep.lane << " @ interval "
            << rep.intervalIndex << ": " << rep.detail;
    }

    std::remove(recDirty.c_str());
    std::remove(recLevel.c_str());
    std::remove(recCompiled.c_str());
}

INSTANTIATE_TEST_SUITE_P(Sizes, CompiledRecord, ::testing::Values(4u, 8u, 16u));

TEST(LevelizedRecord, EnvVarSelectsTheLevelizedMode) {
    // GEM5RTL_NETLIST_EVAL covers fixed-config deployments; the run must
    // still sort correctly.
    ::setenv("GEM5RTL_NETLIST_EVAL", "levelized", 1);
    const std::string rec = tmpPath("g5r_env_level.g5rec");
    const std::vector<std::uint64_t> data{9, 3, 7, 1};
    const auto out = runRecordedSort("n=4", data, rec);
    ::unsetenv("GEM5RTL_NETLIST_EVAL");
    EXPECT_EQ(out, (std::vector<std::uint64_t>{1, 3, 7, 9}));
    std::remove(rec.c_str());
}

}  // namespace
}  // namespace g5r
