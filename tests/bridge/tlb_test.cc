// TLB object: mappings, identity fallback (the paper's IOMMU bypass),
// cached-entry behaviour and statistics.
#include <gtest/gtest.h>

#include "bridge/tlb.hh"

namespace g5r {
namespace {

TEST(Tlb, UnmappedAddressesPassThroughIdentity) {
    Simulation sim;
    Tlb tlb{sim, "tlb"};
    EXPECT_EQ(tlb.translate(0x1234'5678), 0x1234'5678u);
    EXPECT_EQ(tlb.statsGroup().find("identityFallbacks")->value(), 1.0);
}

TEST(Tlb, MappedRangeTranslates) {
    Simulation sim;
    Tlb tlb{sim, "tlb"};
    tlb.map(0x10000, 0x90000, 0x3000);  // Three pages.
    EXPECT_EQ(tlb.mappedPages(), 3u);
    EXPECT_EQ(tlb.translate(0x10000), 0x90000u);
    EXPECT_EQ(tlb.translate(0x10FFF), 0x90FFFu);
    EXPECT_EQ(tlb.translate(0x11000), 0x91000u);
    EXPECT_EQ(tlb.translate(0x12ABC), 0x92ABCu);
    // One byte past the mapping: identity again.
    EXPECT_EQ(tlb.translate(0x13000), 0x13000u);
}

TEST(Tlb, UnalignedRangeCoversPartialPages) {
    Simulation sim;
    Tlb tlb{sim, "tlb"};
    tlb.map(0x20800, 0x80800, 0x1000);  // Straddles two pages.
    EXPECT_EQ(tlb.mappedPages(), 2u);
    EXPECT_EQ(tlb.translate(0x20800), 0x80800u);
    EXPECT_EQ(tlb.translate(0x21000), 0x81000u);
}

TEST(Tlb, RepeatedLookupsHitTheCachedEntries) {
    Simulation sim;
    Tlb tlb{sim, "tlb", 4};
    tlb.map(0x40000, 0xC0000, 0x1000);
    tlb.translate(0x40010);  // Miss (refill).
    tlb.translate(0x40020);  // Hit.
    tlb.translate(0x40030);  // Hit.
    EXPECT_EQ(tlb.statsGroup().find("lookups")->value(), 3.0);
    EXPECT_EQ(tlb.statsGroup().find("hits")->value(), 2.0);
}

TEST(Tlb, CachedEntriesEvictLru) {
    Simulation sim;
    Tlb tlb{sim, "tlb", 2};  // Two cached entries.
    for (unsigned p = 0; p < 4; ++p) tlb.map(0x100000 + p * 0x1000, 0x500000 + p * 0x1000, 0x1000);
    tlb.translate(0x100000);  // Refill A.
    tlb.translate(0x101000);  // Refill B.
    tlb.translate(0x100010);  // Hit A.
    tlb.translate(0x102000);  // Refill C, evicts B (LRU).
    const double hitsBefore = tlb.statsGroup().find("hits")->value();
    tlb.translate(0x100020);  // Hit A still.
    EXPECT_EQ(tlb.statsGroup().find("hits")->value(), hitsBefore + 1);
    // All translations remain correct regardless of the cached set.
    EXPECT_EQ(tlb.translate(0x101234), 0x501234u);
    EXPECT_EQ(tlb.translate(0x103456), 0x503456u);
}

}  // namespace
}  // namespace g5r
