// TLB object: mappings, identity fallback (the paper's IOMMU bypass),
// cached-entry behaviour and statistics.
#include <gtest/gtest.h>

#include "bridge/tlb.hh"

namespace g5r {
namespace {

TEST(Tlb, UnmappedAddressesPassThroughIdentity) {
    Simulation sim;
    Tlb tlb{sim, "tlb"};
    EXPECT_EQ(tlb.translate(0x1234'5678), 0x1234'5678u);
    EXPECT_EQ(tlb.statsGroup().find("identityFallbacks")->value(), 1.0);
}

TEST(Tlb, MappedRangeTranslates) {
    Simulation sim;
    Tlb tlb{sim, "tlb"};
    tlb.map(0x10000, 0x90000, 0x3000);  // Three pages.
    EXPECT_EQ(tlb.mappedPages(), 3u);
    EXPECT_EQ(tlb.translate(0x10000), 0x90000u);
    EXPECT_EQ(tlb.translate(0x10FFF), 0x90FFFu);
    EXPECT_EQ(tlb.translate(0x11000), 0x91000u);
    EXPECT_EQ(tlb.translate(0x12ABC), 0x92ABCu);
    // One byte past the mapping: identity again.
    EXPECT_EQ(tlb.translate(0x13000), 0x13000u);
}

TEST(Tlb, UnalignedRangeCoversPartialPages) {
    Simulation sim;
    Tlb tlb{sim, "tlb"};
    tlb.map(0x20800, 0x80800, 0x1000);  // Straddles two pages.
    EXPECT_EQ(tlb.mappedPages(), 2u);
    EXPECT_EQ(tlb.translate(0x20800), 0x80800u);
    EXPECT_EQ(tlb.translate(0x21000), 0x81000u);
}

TEST(Tlb, RepeatedLookupsHitTheCachedEntries) {
    Simulation sim;
    Tlb tlb{sim, "tlb", 4};
    tlb.map(0x40000, 0xC0000, 0x1000);
    tlb.translate(0x40010);  // Miss (refill).
    tlb.translate(0x40020);  // Hit.
    tlb.translate(0x40030);  // Hit.
    EXPECT_EQ(tlb.statsGroup().find("lookups")->value(), 3.0);
    EXPECT_EQ(tlb.statsGroup().find("hits")->value(), 2.0);
}

TEST(Tlb, CachedEntriesEvictLru) {
    Simulation sim;
    Tlb tlb{sim, "tlb", 2};  // Two cached entries.
    for (unsigned p = 0; p < 4; ++p) tlb.map(0x100000 + p * 0x1000, 0x500000 + p * 0x1000, 0x1000);
    tlb.translate(0x100000);  // Refill A.
    tlb.translate(0x101000);  // Refill B.
    tlb.translate(0x100010);  // Hit A.
    tlb.translate(0x102000);  // Refill C, evicts B (LRU).
    const double hitsBefore = tlb.statsGroup().find("hits")->value();
    tlb.translate(0x100020);  // Hit A still.
    EXPECT_EQ(tlb.statsGroup().find("hits")->value(), hitsBefore + 1);
    // All translations remain correct regardless of the cached set.
    EXPECT_EQ(tlb.translate(0x101234), 0x501234u);
    EXPECT_EQ(tlb.translate(0x103456), 0x503456u);
}

TEST(Tlb, RemapInvalidatesCachedEntries) {
    Simulation sim;
    Tlb tlb{sim, "tlb", 4};
    tlb.map(0x40000, 0x80000, 0x1000);
    EXPECT_EQ(tlb.translate(0x40008), 0x80008u);  // Miss -> refill: cached now.
    // Remap the same virtual page somewhere else. The cached copy must not
    // keep serving the stale physical page.
    tlb.map(0x40000, 0xC0000, 0x1000);
    EXPECT_EQ(tlb.translate(0x40008), 0xC0008u);
    EXPECT_EQ(tlb.translate(0x40010), 0xC0010u);
}

TEST(Tlb, RemapLeavesNonOverlappingCachedEntriesAlone) {
    Simulation sim;
    Tlb tlb{sim, "tlb", 4};
    tlb.map(0x10000, 0x90000, 0x1000);
    tlb.map(0x20000, 0xA0000, 0x2000);
    tlb.translate(0x10000);  // Cache both mappings.
    tlb.translate(0x20000);
    tlb.translate(0x21000);
    tlb.map(0x20000, 0xB0000, 0x2000);  // Remap the second range only.
    const double hitsBefore = tlb.statsGroup().find("hits")->value();
    EXPECT_EQ(tlb.translate(0x10020), 0x90020u);  // Untouched entry still hits.
    EXPECT_EQ(tlb.statsGroup().find("hits")->value(), hitsBefore + 1);
    EXPECT_EQ(tlb.translate(0x20020), 0xB0020u);
    EXPECT_EQ(tlb.translate(0x21020), 0xB1020u);
}

TEST(Tlb, ZeroCachedEntriesStillTranslates) {
    Simulation sim;
    // cachedEntries == 0: the refill path must not touch &entries_[0] on an
    // empty vector.
    Tlb tlb{sim, "tlb", 0};
    tlb.map(0x10000, 0x90000, 0x2000);
    EXPECT_EQ(tlb.translate(0x10004), 0x90004u);
    EXPECT_EQ(tlb.translate(0x11004), 0x91004u);
    EXPECT_EQ(tlb.translate(0x10004), 0x90004u);  // Never cached, still right.
    EXPECT_EQ(tlb.statsGroup().find("hits")->value(), 0.0);
    EXPECT_EQ(tlb.translate(0x30000), 0x30000u);  // Identity fallback intact.
}

TEST(Tlb, ZeroByteMapMapsNothing) {
    Simulation sim;
    Tlb tlb{sim, "tlb"};
    // va == 0 with bytes == 0 underflowed va + bytes - 1 pre-fix and walked
    // ~2^52 pages; an empty range must simply map nothing.
    tlb.map(0, 0x5000, 0);
    EXPECT_EQ(tlb.mappedPages(), 0u);
    EXPECT_EQ(tlb.translate(0), 0u);
    tlb.map(0x2340, 0x9000, 0);  // Unaligned empty range: same.
    EXPECT_EQ(tlb.mappedPages(), 0u);
    EXPECT_EQ(tlb.translate(0x2340), 0x2340u);
}

}  // namespace
}  // namespace g5r
