// RTLObject integration: shared-library loading (dlopen), device-channel
// transactions, model-initiated memory traffic with the in-flight cap, TLB
// translation, clock ratios, interrupts, and a full NVDLA-over-SoC run.
#include <gtest/gtest.h>

#include <memory>

#include "bridge/rtl_object.hh"
#include "common/flaky_forwarder.hh"
#include "common/test_requester.hh"
#include "mem/simple_mem.hh"
#include "mem/xbar.hh"
#include "models/nvdla/trace.hh"
#include "models/pmu/pmu_design.hh"
#include "soc/nvdla_host.hh"

#ifndef G5R_MODEL_DIR
#error "tests must be compiled with -DG5R_MODEL_DIR"
#endif

namespace g5r {
namespace {

std::string modelPath(const std::string& lib) {
    return std::string{G5R_MODEL_DIR} + "/" + lib;
}

TEST(SharedLibModel, LoadsAllThreeModelLibraries) {
    const auto pmu = SharedLibModel::load(modelPath("libpmu_rtl.so"), "");
    EXPECT_STREQ(pmu->modelName(), "pmu");
    const auto nvdla = SharedLibModel::load(modelPath("libnvdla_rtl.so"), "");
    EXPECT_STREQ(nvdla->modelName(), "nvdla");
    const auto bitonic = SharedLibModel::load(modelPath("libbitonic_rtl.so"), "n=8");
    EXPECT_STREQ(bitonic->modelName(), "bitonic");
}

TEST(SharedLibModel, MissingLibraryThrows) {
    EXPECT_THROW(SharedLibModel::load("/nonexistent/libfoo.so", ""), std::runtime_error);
}

// ------------------------------------------------------------- PMU-on-SoC --

struct PmuHarness {
    PmuHarness(Tick rtlPeriod = periodFromGHz(1), bool gateIdleTicks = true) {
        RtlObjectParams params;
        params.clockPeriod = rtlPeriod;
        params.gateIdleTicks = gateIdleTicks;
        rtl = std::make_unique<RtlObject>(
            sim, "pmu_obj", params,
            SharedLibModel::load(modelPath("libpmu_rtl.so"), ""), &bus);
        req = std::make_unique<testing::TestRequester>(sim, "host");
        req->port().bind(rtl->cpuSidePort(0));
    }

    void writeReg(std::uint64_t addr, std::uint64_t data) {
        auto pkt = makeWritePacket(addr, 8);
        pkt->set<std::uint64_t>(data);
        req->issueAt(sim.curTick(), std::move(pkt));
        runUntilResponses();
    }

    std::uint64_t readReg(std::uint64_t addr) {
        req->issueAt(sim.curTick(), makeReadPacket(addr, 8));
        runUntilResponses();
        return req->responses().back().pkt->get<std::uint64_t>();
    }

    void runUntilResponses() {
        // RTLObject ticks forever; advance bounded slices until idle.
        for (int slice = 0; slice < 1000 && !req->allResponsesReceived(); ++slice) {
            sim.run(sim.curTick() + 10'000);
        }
        ASSERT_TRUE(req->allResponsesReceived());
    }

    void runCycles(std::uint64_t rtlCycles, Tick rtlPeriod = periodFromGHz(1)) {
        sim.run(sim.curTick() + rtlCycles * rtlPeriod);
    }

    Simulation sim;
    HwEventBus bus;
    std::unique_ptr<RtlObject> rtl;
    std::unique_ptr<testing::TestRequester> req;
};

TEST(RtlObjectPmu, DeviceChannelReadsAndWrites) {
    PmuHarness h;
    EXPECT_EQ(h.readReg(models::PmuDesign::kIdReg), models::PmuDesign::kIdRegValue);
    h.writeReg(models::PmuDesign::kEnableReg, 0x3F);
    EXPECT_EQ(h.readReg(models::PmuDesign::kEnableReg), 0x3Fu);
    EXPECT_GT(h.sim.findStat("pmu_obj.devReads")->value(), 0.0);
    EXPECT_GT(h.sim.findStat("pmu_obj.devWrites")->value(), 0.0);
}

TEST(RtlObjectPmu, EventBusPulsesReachTheModel) {
    PmuHarness h;
    h.writeReg(models::PmuDesign::kEnableReg, 1);  // Counter 0 on commit lane 0.
    for (int i = 0; i < 25; ++i) h.bus.pulse(HwEventBus::kCommit0);
    h.runCycles(20);  // Pulses drain on the next ticks.
    EXPECT_EQ(h.readReg(models::PmuDesign::kCounterBase), 25u);
}

TEST(RtlObjectPmu, CycleCounterTracksRtlClock) {
    PmuHarness h;
    h.writeReg(models::PmuDesign::kEnableReg, 1u << HwEventBus::kCycle);
    const std::uint64_t before = h.readReg(models::PmuDesign::kCounterBase +
                                           8 * HwEventBus::kCycle);
    h.runCycles(1000);
    const std::uint64_t after = h.readReg(models::PmuDesign::kCounterBase +
                                          8 * HwEventBus::kCycle);
    EXPECT_NEAR(static_cast<double>(after - before), 1000.0, 30.0);
}

TEST(RtlObjectPmu, ClockRatioHalvesTicks) {
    // Free-running comparison: an unconfigured PMU is quiescent, so idle
    // gating must be off for the tick counts to track the clock ratio.
    PmuHarness fast{periodFromGHz(2), /*gateIdleTicks=*/false};
    PmuHarness slow{periodFromGHz(1), /*gateIdleTicks=*/false};
    fast.sim.run(1'000'000);  // 1 us.
    slow.sim.run(1'000'000);
    const double fastTicks = fast.sim.findStat("pmu_obj.ticks")->value();
    const double slowTicks = slow.sim.findStat("pmu_obj.ticks")->value();
    EXPECT_NEAR(fastTicks / slowTicks, 2.0, 0.05);
}

TEST(RtlObjectPmu, ThresholdInterruptReachesTheCallback) {
    PmuHarness h;
    int edges = 0;
    bool level = false;
    h.rtl->setIrqCallback([&](bool l) {
        ++edges;
        level = l;
    });
    h.writeReg(models::PmuDesign::kEnableReg, 1u << HwEventBus::kCycle);
    h.writeReg(models::PmuDesign::kThresholdSelReg, HwEventBus::kCycle);
    h.writeReg(models::PmuDesign::kThresholdReg, 100);
    h.runCycles(300);
    EXPECT_GE(edges, 1);
    EXPECT_TRUE(level);
    EXPECT_TRUE(h.rtl->irqLevel());
    // Clearing the IRQ drops the line.
    h.writeReg(models::PmuDesign::kIrqStatusReg, 0);
    h.runCycles(5);
    EXPECT_FALSE(h.rtl->irqLevel());
}

// ----------------------------------------------------------- NVDLA-on-SoC --

struct NvdlaSocHarness {
    static constexpr Addr kCsbBase = 0x6000'0000;

    explicit NvdlaSocHarness(unsigned maxInflight = 64, bool useTlb = false,
                             bool gateIdleTicks = true, bool flakyMemPath = false) {
        const auto shape = [] {
            models::NvdlaShape s;
            s.width = s.height = 16;
            s.inChannels = s.outChannels = 8;
            s.filterH = s.filterW = 1;
            s.refetch = 1;
            return s;
        }();
        trace = models::makeConvTrace("tiny", shape, models::NvdlaPlacement{}, 21);

        xbar = std::make_unique<Xbar>(sim, "xbar", Xbar::Params{});
        SimpleMemory::Params mp;
        mp.range = AddrRange{0, 1ULL << 30};
        mp.latency = 50'000;  // 50 ns.
        mem = std::make_unique<SimpleMemory>(sim, "mem", mp, store);

        if (useTlb) {
            tlb = std::make_unique<Tlb>(sim, "tlb");
            // Model addresses are "virtual": shift everything up 1 MiB (disjoint from the virtual regions).
            for (const auto& seg : trace.segments) {
                tlb->map(seg.addr, seg.addr + 0x0010'0000, seg.bytes.size());
            }
            tlb->map(trace.placement.ofmapBase, trace.placement.ofmapBase + 0x0010'0000,
                     shape.ofmapBytes());
        }

        RtlObjectParams rp;
        rp.maxInflight = maxInflight;
        rp.translate = useTlb;
        rp.gateIdleTicks = gateIdleTicks;
        rtl = std::make_unique<RtlObject>(
            sim, "nvdla0", rp, SharedLibModel::load(modelPath("libnvdla_rtl.so"), ""),
            nullptr, tlb.get());

        NvdlaHost::Params hp;
        hp.csbBase = kCsbBase;
        host = std::make_unique<NvdlaHost>(sim, "host", hp, trace);
        host->setDoneCallback([this] { sim.exitSimLoop("nvdla done"); });

        host->port().bind(xbar->addCpuSidePort("host"));
        if (flakyMemPath) {
            // Splice a retry-injecting stage into the DBBIF path.
            flaky = std::make_unique<testing::FlakyForwarder>(sim, "flaky");
            rtl->memSidePort(0).bind(flaky->cpuSidePort());
            flaky->memSidePort().bind(xbar->addCpuSidePort("dla_dbbif"));
        } else {
            rtl->memSidePort(0).bind(xbar->addCpuSidePort("dla_dbbif"));
        }
        rtl->memSidePort(1).bind(xbar->addCpuSidePort("dla_sramif"));
        xbar->addMemSidePort("mem", RouteSpec{mp.range}).bind(mem->port());
        xbar->addMemSidePort("csb", RouteSpec{AddrRange{kCsbBase, kCsbBase + 0x1000}})
            .bind(rtl->cpuSidePort(0));
    }

    RunResult run() { return sim.run(sim.curTick() + 500'000'000'000ULL); }

    Simulation sim;
    BackingStore store;
    models::NvdlaTrace trace;
    std::unique_ptr<Xbar> xbar;
    std::unique_ptr<SimpleMemory> mem;
    std::unique_ptr<Tlb> tlb;
    std::unique_ptr<testing::FlakyForwarder> flaky;
    std::unique_ptr<RtlObject> rtl;
    std::unique_ptr<NvdlaHost> host;
};

TEST(RtlObjectNvdla, EndToEndTraceRunVerifiesChecksum) {
    NvdlaSocHarness h;
    const auto result = h.run();
    EXPECT_EQ(result.cause, ExitCause::kSimExit);
    EXPECT_TRUE(h.host->finished());
    EXPECT_TRUE(h.host->checksumOk())
        << "read 0x" << std::hex << h.host->checksumRead() << " expected 0x"
        << h.trace.expectedChecksum;
    // The ofmap landed in memory.
    EXPECT_EQ(h.store.load<std::uint8_t>(h.trace.placement.ofmapBase + 5), 5);
    EXPECT_GT(h.sim.findStat("nvdla0.memReads")->value(), 0.0);
    EXPECT_GT(h.sim.findStat("nvdla0.memWrites")->value(), 0.0);
}

TEST(RtlObjectNvdla, InflightCapIsRespected) {
    NvdlaSocHarness h{4};
    h.run();
    ASSERT_TRUE(h.host->finished());
    const auto* dist = dynamic_cast<const stats::Distribution*>(
        h.sim.findStat("nvdla0.outstanding"));
    ASSERT_NE(dist, nullptr);
    EXPECT_LE(dist->maxValue(), 4.0);
    EXPECT_GT(h.sim.findStat("nvdla0.zeroCreditTicks")->value(), 0.0);
}

TEST(RtlObjectNvdla, MoreCreditsFinishFaster) {
    NvdlaSocHarness starved{1};
    NvdlaSocHarness fed{64};
    starved.run();
    fed.run();
    ASSERT_TRUE(starved.host->finished());
    ASSERT_TRUE(fed.host->finished());
    EXPECT_GT(starved.host->finishTick(), 2 * fed.host->finishTick());
}

TEST(RtlObjectNvdla, TlbTranslationRedirectsTraffic) {
    NvdlaSocHarness h{64, /*useTlb=*/true};
    // Load the segments at their *physical* (translated) locations too,
    // since the host's functional loads are untranslated in this test.
    for (const auto& seg : h.trace.segments) {
        h.store.write(seg.addr + 0x0010'0000, seg.bytes.data(),
                      static_cast<unsigned>(seg.bytes.size()));
    }
    h.run();
    ASSERT_TRUE(h.host->finished());
    EXPECT_TRUE(h.host->checksumOk());
    // The ofmap appears at the translated address.
    EXPECT_EQ(h.store.load<std::uint8_t>(h.trace.placement.ofmapBase + 0x0010'0000 + 7), 7);
    EXPECT_GT(h.sim.findStat("tlb.lookups")->value(), 0.0);
    EXPECT_GT(h.sim.findStat("tlb.hits")->value(), 0.0);
}

// ------------------------------------------------- quiescence tick gating --

TEST(RtlObjectGating, IdlePmuGatesAndWakesOnDeviceRequest) {
    PmuHarness h;  // Unconfigured PMU: quiescent from the first tick.
    h.sim.run(1'000'000);  // 1 us = 1000 RTL cycles at 1 GHz.
    EXPECT_TRUE(h.rtl->isGated());
    EXPECT_LT(h.sim.findStat("pmu_obj.ticks")->value(), 50.0);
    // A device request wakes it; the read works and accounts skipped cycles.
    EXPECT_EQ(h.readReg(models::PmuDesign::kIdReg), models::PmuDesign::kIdRegValue);
    EXPECT_GT(h.rtl->gatedTicks(), 900u);
}

TEST(RtlObjectGating, BusPulseWakesGatedPmu) {
    PmuHarness h;
    h.sim.run(1'000'000);
    ASSERT_TRUE(h.rtl->isGated());
    const double ticksBefore = h.sim.findStat("pmu_obj.ticks")->value();
    h.bus.pulse(HwEventBus::kCommit0);  // Empty->non-empty fires the wake.
    EXPECT_FALSE(h.rtl->isGated());
    h.sim.run(h.sim.curTick() + 10'000);
    EXPECT_GT(h.sim.findStat("pmu_obj.ticks")->value(), ticksBefore);
    // Mask is 0, so the pulse counts nothing and the PMU re-gates.
    EXPECT_TRUE(h.rtl->isGated());
}

// One scripted PMU session; returns every architecturally visible
// observable, including the exact arrival tick of every device response.
struct PmuScriptResult {
    std::vector<Tick> responseTicks;
    std::uint64_t counterAfterPulses = 0;
    std::uint64_t counterAfterIdle = 0;
    std::uint64_t gated = 0;
};

PmuScriptResult runPmuScript(bool gate) {
    PmuHarness h{periodFromGHz(1), gate};
    h.writeReg(models::PmuDesign::kEnableReg, 1);  // Counter 0 on commit0.
    for (int i = 0; i < 25; ++i) h.bus.pulse(HwEventBus::kCommit0);
    h.runCycles(20);
    PmuScriptResult r;
    r.counterAfterPulses = h.readReg(models::PmuDesign::kCounterBase);
    h.writeReg(models::PmuDesign::kEnableReg, 0);  // Now idle-eligible.
    h.sim.run(h.sim.curTick() + 500'000);          // Long idle stretch.
    h.bus.pulse(HwEventBus::kCommit0);             // Ignored (mask 0) but wakes.
    h.runCycles(20);
    r.counterAfterIdle = h.readReg(models::PmuDesign::kCounterBase);
    for (const auto& resp : h.req->responses()) r.responseTicks.push_back(resp.tick);
    r.gated = h.rtl->gatedTicks();
    return r;
}

TEST(RtlObjectGating, PmuTimingIsByteIdenticalGatedVsUngated) {
    const PmuScriptResult gated = runPmuScript(true);
    const PmuScriptResult ungated = runPmuScript(false);
    EXPECT_EQ(gated.responseTicks, ungated.responseTicks);
    EXPECT_EQ(gated.counterAfterPulses, ungated.counterAfterPulses);
    EXPECT_EQ(gated.counterAfterIdle, ungated.counterAfterIdle);
    EXPECT_EQ(gated.counterAfterPulses, 25u);
    EXPECT_GT(gated.gated, 0u);
    EXPECT_EQ(ungated.gated, 0u);
}

TEST(RtlObjectGating, NvdlaRunIsTimingIdenticalGatedVsUngated) {
    NvdlaSocHarness gated{64, false, /*gateIdleTicks=*/true};
    NvdlaSocHarness ungated{64, false, /*gateIdleTicks=*/false};
    gated.run();
    ungated.run();
    ASSERT_TRUE(gated.host->finished());
    ASSERT_TRUE(ungated.host->finished());
    EXPECT_TRUE(gated.host->checksumOk());
    EXPECT_TRUE(ungated.host->checksumOk());
    EXPECT_EQ(gated.host->finishTick(), ungated.host->finishTick());
    EXPECT_EQ(gated.sim.findStat("nvdla0.irqEdges")->value(),
              ungated.sim.findStat("nvdla0.irqEdges")->value());
    EXPECT_GT(gated.rtl->gatedTicks(), 0u);
    EXPECT_EQ(ungated.rtl->gatedTicks(), 0u);
}

namespace v1compat {

// A minimal ABI-v1 model: its tick writes only the v1 output prefix, so any
// non-zero idle_hint byte the simulator might read is stale garbage. It must
// never be gated regardless.
void* create(const char*) { return new int(0); }
void destroy(void* m) { delete static_cast<int*>(m); }
void reset(void*) {}
void tick(void* m, const G5rRtlInput*, G5rRtlOutput* out) {
    ++*static_cast<int*>(m);
    out->idle_hint = 1;  // Simulated stale byte beyond the v1 struct end.
}

constexpr G5rRtlModelApi kApi = {1u, "v1model", create, destroy, reset, tick,
                                 nullptr, nullptr};

}  // namespace v1compat

TEST(RtlObjectGating, V1AbiModelsLoadButNeverGate) {
    Simulation sim;
    auto model = std::make_unique<ApiRtlModel>(&v1compat::kApi, "");
    EXPECT_EQ(model->abiVersion(), 1u);
    EXPECT_FALSE(model->supportsIdleHint());
    RtlObject rtl(sim, "v1_obj", RtlObjectParams{}, std::move(model));
    sim.run(100'000);  // 100 RTL cycles at 1 GHz.
    EXPECT_FALSE(rtl.isGated());
    EXPECT_EQ(rtl.gatedTicks(), 0u);
    EXPECT_GE(sim.findStat("v1_obj.ticks")->value(), 99.0);
}

// ------------------------------------------------------- device-queue retry --

TEST(RtlObjectDevRetry, RefusedPortIsRetriedWhenQueueSpaceFrees) {
    // Regression: retries used to be sent only when a *response* later went
    // out on the same CPU-side port, so a refused port whose traffic was
    // response-less at that moment starved even though the queue drained.
    Simulation sim;
    HwEventBus bus;
    RtlObjectParams params;
    params.devQueueDepth = 1;  // Any burst overflows instantly.
    RtlObject rtl(sim, "pmu_obj", params,
                  SharedLibModel::load(modelPath("libpmu_rtl.so"), ""), &bus);
    testing::TestRequester req0(sim, "host0");
    testing::TestRequester req1(sim, "host1");
    req0.port().bind(rtl.cpuSidePort(0));
    req1.port().bind(rtl.cpuSidePort(1));

    // Port 0 floods the 1-deep queue; port 1's lone write gets refused.
    for (int i = 0; i < 5; ++i) {
        auto pkt = makeWritePacket(models::PmuDesign::kControlReg, 8);
        pkt->set<std::uint64_t>(0);
        req0.issueAt(0, std::move(pkt));
    }
    auto pkt = makeWritePacket(models::PmuDesign::kControlReg, 8);
    pkt->set<std::uint64_t>(0);
    req1.issueAt(0, std::move(pkt));

    sim.run(1'000'000);
    EXPECT_TRUE(req0.allResponsesReceived());
    EXPECT_TRUE(req1.allResponsesReceived()) << "port 1 starved of its retry";
    EXPECT_GT(req0.retriesSeen() + req1.retriesSeen(), 0);
}

// ------------------------------------------------------ flaky-path retries --

TEST(RtlObjectRetryFuzz, FlakyMemoryPathLosesNothingGatedOrUngated) {
    NvdlaSocHarness gated{8, false, /*gateIdleTicks=*/true, /*flakyMemPath=*/true};
    NvdlaSocHarness ungated{8, false, /*gateIdleTicks=*/false, /*flakyMemPath=*/true};
    gated.run();
    ungated.run();
    for (const auto* h : {&gated, &ungated}) {
        ASSERT_TRUE(h->host->finished());
        EXPECT_TRUE(h->host->checksumOk());
        EXPECT_GT(h->flaky->reqRejections(), 0);
        EXPECT_EQ(h->flaky->reqsForwarded(), h->flaky->respsForwarded())
            << "a request or response was dropped in the retry protocol";
    }
    // The injected rejections perturb both runs identically, so gating must
    // still be timing-neutral under retry pressure.
    EXPECT_EQ(gated.host->finishTick(), ungated.host->finishTick());
    EXPECT_GT(gated.rtl->gatedTicks(), 0u);
}

}  // namespace
}  // namespace g5r
