// Dedicated regression tests for the thread-safety audit fixes that made
// concurrent Simulations legal: per-run packet IDs, the nextTick()
// const_cast removal, and interleave-free tagged logging.
#include <gtest/gtest.h>

#include <algorithm>
#include <iostream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "mem/packet.hh"
#include "sim/event.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/packet_id.hh"
#include "sim/simulation.hh"

namespace g5r {
namespace {

// ---- Packet::nextId(): per-Simulation, race-free --------------------------

std::vector<std::uint64_t> packetIdStream(Simulation& sim, int packetsPerEvent) {
    std::vector<std::uint64_t> ids;
    CallbackEvent mint{[&ids, packetsPerEvent] {
        for (int i = 0; i < packetsPerEvent; ++i) {
            ids.push_back(makeReadPacket(0x100, 64)->id());
        }
    }, "mint"};
    for (Tick t = 10; t <= 100; t += 10) {
        sim.eventQueue().schedule(mint, t);
        sim.run();
    }
    return ids;
}

TEST(PacketIdRegression, EachSimulationGetsItsOwnDeterministicStream) {
    // Two interleaved simulations in one thread: under the old process-global
    // counter the second stream continued where the first left off.
    Simulation simA;
    Simulation simB;
    const auto idsA = packetIdStream(simA, 2);
    const auto idsB = packetIdStream(simB, 3);

    ASSERT_EQ(idsA.size(), 20u);
    ASSERT_EQ(idsB.size(), 30u);
    for (std::size_t i = 0; i < idsA.size(); ++i) EXPECT_EQ(idsA[i], i + 1);
    for (std::size_t i = 0; i < idsB.size(); ++i) EXPECT_EQ(idsB[i], i + 1);
}

TEST(PacketIdRegression, ConcurrentRunsMatchSequentialRuns) {
    // The sequential reference...
    std::vector<std::uint64_t> seqA, seqB;
    {
        Simulation simA;
        seqA = packetIdStream(simA, 2);
        Simulation simB;
        seqB = packetIdStream(simB, 3);
    }
    // ...must be reproduced exactly when the two runs race on two threads
    // (and TSan must see no data race on the counters).
    std::vector<std::uint64_t> parA, parB;
    {
        std::jthread threadA{[&parA] {
            Simulation sim;
            parA = packetIdStream(sim, 2);
        }};
        std::jthread threadB{[&parB] {
            Simulation sim;
            parB = packetIdStream(sim, 3);
        }};
    }
    EXPECT_EQ(parA, seqA);
    EXPECT_EQ(parB, seqB);
}

TEST(PacketIdRegression, ScopesNestAndRestore) {
    std::uint64_t outer = 0;
    const PacketIdScope outerScope{outer};
    EXPECT_EQ(nextPacketId(), 1u);
    {
        std::uint64_t inner = 100;
        const PacketIdScope innerScope{inner};
        EXPECT_EQ(nextPacketId(), 101u);
    }
    EXPECT_EQ(nextPacketId(), 2u);  // Outer counter resumed, not clobbered.
}

TEST(PacketIdRegression, FallbackWithoutScopeStillProducesUniqueIds) {
    // Packets minted outside any Simulation::run() draw from the atomic
    // process-global counter: concurrently minted IDs never collide.
    std::vector<std::vector<std::uint64_t>> perThread(4);
    {
        std::vector<std::jthread> threads;
        for (auto& ids : perThread) {
            threads.emplace_back([&ids] {
                for (int i = 0; i < 250; ++i) ids.push_back(makeReadPacket(0, 8)->id());
            });
        }
    }
    std::set<std::uint64_t> all;
    for (const auto& ids : perThread) all.insert(ids.begin(), ids.end());
    EXPECT_EQ(all.size(), 1000u);
}

// ---- EventQueue::nextTick(): no const_cast mutation -----------------------

template <typename Q>
concept HasConstNextTick = requires(const Q& queue) { queue.nextTick(); };

TEST(NextTickRegression, NextTickIsNotCallableOnConstQueues) {
    // nextTick() compacts the heap (pops stale entries), so it must not be
    // callable through a const EventQueue — the old implementation hid the
    // mutation behind a const_cast (UB on a genuinely const object).
    static_assert(!HasConstNextTick<EventQueue>, "nextTick() must be non-const");
    SUCCEED();
}

TEST(NextTickRegression, NextTickSkipsStaleEntries) {
    EventQueue queue;
    int fired = 0;
    CallbackEvent early{[&fired] { ++fired; }, "early"};
    CallbackEvent late{[&fired] { ++fired; }, "late"};
    queue.schedule(early, 10);
    queue.schedule(late, 20);
    queue.deschedule(early);  // Leaves a stale heap entry at tick 10.
    EXPECT_EQ(queue.nextTick(), 20u);
    queue.serviceOne();
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(queue.empty());
}

// ---- logging: single-write lines, run labels ------------------------------

/// Redirect std::cerr into a buffer for the object's lifetime.
class CerrCapture {
public:
    CerrCapture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
    ~CerrCapture() { std::cerr.rdbuf(old_); }
    std::string text() const { return buffer_.str(); }

private:
    std::ostringstream buffer_;
    std::streambuf* old_;
};

TEST(LoggingRegression, ConcurrentDebugPrintsNeverTearLines) {
    CerrCapture capture;
    constexpr int kThreads = 8;
    constexpr int kLines = 50;
    {
        std::vector<std::jthread> threads;
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([t] {
                const RunLabelScope label{"run" + std::to_string(t)};
                for (int i = 0; i < kLines; ++i) {
                    debugPrint("flag", "thread " + std::to_string(t) + " line " +
                                           std::to_string(i));
                }
            });
        }
    }
    std::istringstream lines{capture.text()};
    int total = 0;
    std::string line;
    while (std::getline(lines, line)) {
        ++total;
        // Every captured line is exactly one whole message, tagged with the
        // emitting run's label: "[runT] [flag] thread T line I".
        ASSERT_TRUE(line.starts_with("[run")) << "torn line: " << line;
        const std::string thread = line.substr(4, line.find(']') - 4);
        EXPECT_EQ(line, "[run" + thread + "] [flag] thread " + thread + " line " +
                            line.substr(line.rfind(' ') + 1))
            << "torn line: " << line;
    }
    EXPECT_EQ(total, kThreads * kLines);
}

TEST(LoggingRegression, DebugPrintWithoutLabelKeepsHistoricalFormat) {
    CerrCapture capture;
    debugPrint("cache", "hit @0x40");
    EXPECT_EQ(capture.text(), "[cache] hit @0x40\n");
}

TEST(LoggingRegression, PanicMessageIsOneTaggedString) {
    const auto loc = std::source_location::current();
    {
        const RunLabelScope label{"sweep/p3"};
        const std::string msg = formatPanicMessage("invariant violated", loc);
        EXPECT_TRUE(msg.starts_with("[sweep/p3] panic: invariant violated\n  at "));
        EXPECT_TRUE(msg.ends_with(")\n"));
        EXPECT_NE(msg.find(loc.file_name()), std::string::npos);
    }
    // Untagged outside the scope: the historical format.
    EXPECT_TRUE(formatPanicMessage("boom", loc).starts_with("panic: boom\n  at "));
}

TEST(LoggingRegression, RunLabelScopesNestAndRestore) {
    EXPECT_EQ(logRunLabel(), "");
    {
        const RunLabelScope outer{"outer"};
        EXPECT_EQ(logRunLabel(), "outer");
        {
            const RunLabelScope inner{"inner"};
            EXPECT_EQ(logRunLabel(), "inner");
        }
        EXPECT_EQ(logRunLabel(), "outer");
    }
    EXPECT_EQ(logRunLabel(), "");
}

}  // namespace
}  // namespace g5r
