// The runner's contract: deterministic submission-order results whatever the
// worker count, first-class per-point failures, and per-run packet-ID
// streams identical under --jobs 1 and --jobs N.
#include "exp/runner.hh"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "mem/packet.hh"
#include "sim/event.hh"
#include "sim/simulation.hh"

namespace g5r::exp {
namespace {

/// A mock experiment: its own Simulation, a few events, and the packet IDs
/// the run observed — everything a real sweep point produces, in miniature.
struct MockOutcome {
    int point = 0;
    Tick finalTick = 0;
    std::vector<std::uint64_t> packetIds;

    bool operator==(const MockOutcome&) const = default;
};

MockOutcome runMockExperiment(int point) {
    Simulation sim;
    MockOutcome outcome;
    outcome.point = point;

    // Each event mints packets, recording the IDs this run hands out.
    CallbackEvent tick{[&outcome] {
        for (int i = 0; i <= outcome.point % 3; ++i) {
            outcome.packetIds.push_back(makeReadPacket(0x1000, 64)->id());
        }
    }, "mock.tick"};
    for (Tick t = 100; t <= 500; t += 100) {
        sim.eventQueue().schedule(tick, t);
        sim.run();
    }
    outcome.finalTick = sim.curTick();
    return outcome;
}

std::vector<Task<MockOutcome>> mockSweep(int points) {
    std::vector<Task<MockOutcome>> tasks;
    for (int p = 0; p < points; ++p) {
        tasks.push_back(Task<MockOutcome>{"mock/p" + std::to_string(p),
                                          [p] { return runMockExperiment(p); }});
    }
    return tasks;
}

TEST(Runner, SixteenPointSweepIdenticalAcrossJobCounts) {
    const auto serial = runTasks(mockSweep(16), 1);
    const auto parallel = runTasks(mockSweep(16), 4);

    ASSERT_EQ(serial.size(), 16u);
    ASSERT_EQ(parallel.size(), 16u);
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_TRUE(serial[i].ok);
        EXPECT_TRUE(parallel[i].ok);
        // Submission order is preserved...
        EXPECT_EQ(serial[i].label, "mock/p" + std::to_string(i));
        EXPECT_EQ(parallel[i].label, serial[i].label);
        // ...and the results — including each run's packet-ID stream — are
        // identical whatever the worker count.
        EXPECT_EQ(parallel[i].value, serial[i].value) << "point " << i;
    }
}

TEST(Runner, PacketIdStreamsRestartPerRun) {
    // Per-Simulation counters: every run sees IDs 1, 2, 3, ... regardless
    // of how many runs came before it in the process.
    const auto results = runTasks(mockSweep(4), 2);
    for (const auto& r : results) {
        ASSERT_TRUE(r.ok);
        ASSERT_FALSE(r.value.packetIds.empty());
        for (std::size_t i = 0; i < r.value.packetIds.size(); ++i) {
            EXPECT_EQ(r.value.packetIds[i], i + 1) << r.label;
        }
    }
}

TEST(Runner, FailingPointDoesNotPoisonNeighbours) {
    std::vector<Task<int>> tasks;
    for (int p = 0; p < 8; ++p) {
        tasks.push_back(Task<int>{"point" + std::to_string(p), [p]() -> int {
                                      if (p == 3) throw std::runtime_error("simulated fault");
                                      if (p == 5) throw 42;  // Non-std exception.
                                      return p * 10;
                                  }});
    }
    const auto results = runTasks(std::move(tasks), 4);
    ASSERT_EQ(results.size(), 8u);
    for (int p = 0; p < 8; ++p) {
        if (p == 3) {
            EXPECT_FALSE(results[p].ok);
            EXPECT_EQ(results[p].error, "simulated fault");
        } else if (p == 5) {
            EXPECT_FALSE(results[p].ok);
            EXPECT_EQ(results[p].error, "unknown exception");
        } else {
            EXPECT_TRUE(results[p].ok);
            EXPECT_EQ(results[p].value, p * 10);
            EXPECT_TRUE(results[p].error.empty());
        }
    }
}

TEST(Runner, TasksRunUnderTheirRunLabel) {
    std::vector<Task<std::string>> tasks;
    for (int p = 0; p < 6; ++p) {
        tasks.push_back(Task<std::string>{"label" + std::to_string(p),
                                          [] { return logRunLabel(); }});
    }
    const auto results = runTasks(std::move(tasks), 3);
    for (int p = 0; p < 6; ++p) {
        EXPECT_EQ(results[p].value, "label" + std::to_string(p));
    }
    // The label does not leak out of the runner.
    EXPECT_EQ(logRunLabel(), "");
}

TEST(Runner, WallSecondsArePopulated) {
    const auto results = runTasks(mockSweep(2), 2);
    for (const auto& r : results) EXPECT_GE(r.wallSeconds, 0.0);
}

TEST(RunnerJobs, ResolveJobsPrefersExplicitValue) {
    EXPECT_EQ(resolveJobs(3), 3u);
    EXPECT_GE(resolveJobs(0), 1u);  // env or hardware_concurrency, >= 1.
}

TEST(RunnerJobs, ParseJobsFlagVariants) {
    const char* argv1[] = {"bench", "--jobs", "5"};
    EXPECT_EQ(parseJobsFlag(3, const_cast<char**>(argv1)), 5u);
    const char* argv2[] = {"bench", "--jobs=7"};
    EXPECT_EQ(parseJobsFlag(2, const_cast<char**>(argv2)), 7u);
    const char* argv3[] = {"bench", "--unrelated"};
    EXPECT_GE(parseJobsFlag(2, const_cast<char**>(argv3)), 1u);
}

}  // namespace
}  // namespace g5r::exp
