#include "exp/json.hh"

#include <gtest/gtest.h>

#include <stdexcept>

#include "exp/bench_report.hh"

namespace g5r::exp {
namespace {

TEST(Json, ScalarsRoundTrip) {
    EXPECT_EQ(Json::parse("null").kind(), Json::Kind::kNull);
    EXPECT_TRUE(Json::parse("true").asBool());
    EXPECT_FALSE(Json::parse("false").asBool());
    EXPECT_EQ(Json::parse("42").asInt(), 42);
    EXPECT_EQ(Json::parse("-7").asInt(), -7);
    EXPECT_DOUBLE_EQ(Json::parse("3.25").asDouble(), 3.25);
    EXPECT_DOUBLE_EQ(Json::parse("1e3").asDouble(), 1000.0);
    EXPECT_EQ(Json::parse("\"hi\"").asString(), "hi");
}

TEST(Json, LargeTickValuesStayExact) {
    const std::uint64_t ticks = 2'000'000'000'000ULL;
    Json j{ticks};
    EXPECT_EQ(j.dump(), "2000000000000");
    EXPECT_EQ(Json::parse(j.dump()).asInt(), static_cast<std::int64_t>(ticks));
}

TEST(Json, StringsEscapeAndUnescape) {
    Json j{std::string{"a\"b\\c\nd\te"}};
    const std::string text = j.dump();
    EXPECT_EQ(Json::parse(text).asString(), "a\"b\\c\nd\te");
    EXPECT_EQ(Json::parse("\"\\u0041\\u00e9\"").asString(), "A\xc3\xa9");
}

TEST(Json, ObjectsPreserveInsertionOrder) {
    Json doc = Json::object();
    doc["zebra"] = 1;
    doc["alpha"] = 2;
    doc["mid"] = 3;
    const std::string text = doc.dump();
    EXPECT_LT(text.find("zebra"), text.find("alpha"));
    EXPECT_LT(text.find("alpha"), text.find("mid"));

    const Json back = Json::parse(text);
    ASSERT_EQ(back.members().size(), 3u);
    EXPECT_EQ(back.members()[0].first, "zebra");
    EXPECT_EQ(back.at("mid").asInt(), 3);
}

TEST(Json, NestedDocumentRoundTrips) {
    Json doc = Json::object();
    doc["schema"] = 1;
    doc["name"] = "fig6";
    Json point = Json::object();
    point["runtimeTicks"] = std::uint64_t{123456789};
    point["normalizedPerf"] = 0.937;
    point["checksumOk"] = true;
    doc["points"].push(std::move(point));
    doc["points"].push(Json::object());

    for (const int indent : {0, 2}) {
        const Json back = Json::parse(doc.dump(indent));
        EXPECT_EQ(back.at("schema").asInt(), 1);
        EXPECT_EQ(back.at("name").asString(), "fig6");
        ASSERT_EQ(back.at("points").items().size(), 2u);
        const Json& p = back.at("points").items()[0];
        EXPECT_EQ(p.at("runtimeTicks").asInt(), 123456789);
        EXPECT_DOUBLE_EQ(p.at("normalizedPerf").asDouble(), 0.937);
        EXPECT_TRUE(p.at("checksumOk").asBool());
    }
}

TEST(Json, ParseRejectsMalformedInput) {
    EXPECT_THROW(Json::parse(""), std::runtime_error);
    EXPECT_THROW(Json::parse("{"), std::runtime_error);
    EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
    EXPECT_THROW(Json::parse("{\"a\":1} trailing"), std::runtime_error);
    EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
    EXPECT_THROW(Json::parse("tru"), std::runtime_error);
    EXPECT_THROW(Json::parse("01a"), std::runtime_error);
}

TEST(Json, TypeErrorsThrowNotCrash) {
    const Json j{42};
    EXPECT_THROW(j.asString(), std::runtime_error);
    EXPECT_THROW(j.items(), std::runtime_error);
    EXPECT_THROW(Json::object().at("missing"), std::runtime_error);
}

TEST(BenchReport, DocumentCarriesRequiredMetadata) {
    const Json doc = benchDocument("unit-test", 4);
    EXPECT_EQ(doc.at("schema").asInt(), 2);
    EXPECT_EQ(doc.at("bench").asString(), "unit-test");
    EXPECT_EQ(doc.at("jobs").asInt(), 4);
    EXPECT_TRUE(doc.contains("host"));
    EXPECT_GE(doc.at("host").at("threads").asInt(), 0);
    EXPECT_TRUE(doc.at("host").contains("timestampUtc"));
    EXPECT_TRUE(doc.contains("fullScale"));
    EXPECT_TRUE(doc.at("points").isArray());

    // The whole skeleton round-trips through the parser.
    const Json back = Json::parse(doc.dump(2));
    EXPECT_EQ(back.at("bench").asString(), "unit-test");
}

TEST(BenchReport, Schema2PercentilePointRoundTrips) {
    // The schema-2 point shape: per-suffix latency objects carry
    // p50Ticks/p99Ticks and the point carries SoC-wide memLatencyP50/P99.
    Json doc = benchDocument("fig7", 2);
    Json point = Json::object();
    point["memTech"] = "hbm";
    point["maxInflight"] = 64u;
    point["runtimeTicks"] = std::uint64_t{987654321};
    Json lat = Json::object();
    Json one = Json::object();
    one["count"] = std::uint64_t{100000};
    one["minTicks"] = 1500.0;
    one["meanTicks"] = 23456.5;
    one["maxTicks"] = 901234.0;
    one["p50Ticks"] = 21504.0;
    one["p99Ticks"] = 114688.0;
    lat["nvdla0.dbbif"] = std::move(one);
    point["memLatency"] = std::move(lat);
    point["memLatencyP50"] = 21504.0;
    point["memLatencyP99"] = 114688.0;
    doc["points"].push(std::move(point));

    for (const int indent : {0, 2}) {
        const Json back = Json::parse(doc.dump(indent));
        EXPECT_EQ(back.at("schema").asInt(), 2);
        const Json& p = back.at("points").items()[0];
        EXPECT_DOUBLE_EQ(p.at("memLatencyP50").asDouble(), 21504.0);
        EXPECT_DOUBLE_EQ(p.at("memLatencyP99").asDouble(), 114688.0);
        const Json& l = p.at("memLatency").at("nvdla0.dbbif");
        EXPECT_EQ(l.at("count").asInt(), 100000);
        EXPECT_DOUBLE_EQ(l.at("p50Ticks").asDouble(), 21504.0);
        EXPECT_DOUBLE_EQ(l.at("p99Ticks").asDouble(), 114688.0);
        // Percentiles are ordered and bracketed by min/max.
        EXPECT_LE(l.at("minTicks").asDouble(), l.at("p50Ticks").asDouble());
        EXPECT_LE(l.at("p50Ticks").asDouble(), l.at("p99Ticks").asDouble());
        EXPECT_LE(l.at("p99Ticks").asDouble(), l.at("maxTicks").asDouble());
    }
}

}  // namespace
}  // namespace g5r::exp
