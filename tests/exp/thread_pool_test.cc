#include "exp/thread_pool.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace g5r::exp {
namespace {

TEST(ThreadPool, RunsEveryJob) {
    ThreadPool pool{4};
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i) {
        pool.submit([&count] { count.fetch_add(1); });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ClampsZeroJobsToOne) {
    ThreadPool pool{0};
    EXPECT_EQ(pool.jobCount(), 1u);
    std::atomic<int> count{0};
    pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ConcurrencyIsBounded) {
    ThreadPool pool{2};
    std::atomic<int> active{0};
    std::atomic<int> maxActive{0};
    for (int i = 0; i < 32; ++i) {
        pool.submit([&active, &maxActive] {
            const int now = active.fetch_add(1) + 1;
            int seen = maxActive.load();
            while (now > seen && !maxActive.compare_exchange_weak(seen, now)) {
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            active.fetch_sub(1);
        });
    }
    pool.wait();
    EXPECT_LE(maxActive.load(), 2);
    EXPECT_GE(maxActive.load(), 1);
}

TEST(ThreadPool, DestructorDrainsQueuedJobs) {
    std::atomic<int> count{0};
    {
        ThreadPool pool{1};
        for (int i = 0; i < 20; ++i) {
            pool.submit([&count] {
                std::this_thread::sleep_for(std::chrono::microseconds(100));
                count.fetch_add(1);
            });
        }
        // No wait(): destruction must still run everything queued.
    }
    EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, WaitIsReusable) {
    ThreadPool pool{2};
    std::atomic<int> count{0};
    pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 2);
}

}  // namespace
}  // namespace g5r::exp
