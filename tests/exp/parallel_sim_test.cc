// Two full Simulations ticking dlopen-ed NVDLA RTL models on two threads
// must behave exactly like sequential runs: same checksums, same runtimes,
// same per-accelerator finish ticks. This is the end-to-end guarantee the
// parallel experiment runner rests on (and, under TSan, the audit that the
// SharedLibModel / stats / logging paths really are thread-safe).
#include <gtest/gtest.h>

#include <thread>

#include "soc/experiments.hh"

namespace g5r {
namespace {

models::NvdlaShape tinyShape() {
    models::NvdlaShape shape;
    shape.width = shape.height = 8;
    shape.inChannels = 16;
    shape.outChannels = 16;
    shape.filterH = shape.filterW = 3;
    shape.refetch = 1;
    return shape;
}

experiments::DseRunConfig tinyConfig(MemTech tech, unsigned maxInflight) {
    experiments::DseRunConfig cfg;
    cfg.shape = tinyShape();
    cfg.workloadName = "parallel-regression";
    cfg.memTech = tech;
    cfg.maxInflight = maxInflight;
    cfg.numAccelerators = 1;
    cfg.numCores = 0;
    return cfg;
}

void expectSameRun(const experiments::DseRunResult& a, const experiments::DseRunResult& b) {
    EXPECT_TRUE(a.completed);
    EXPECT_TRUE(b.completed);
    EXPECT_TRUE(a.checksumsOk);
    EXPECT_TRUE(b.checksumsOk);
    EXPECT_EQ(a.runtimeTicks, b.runtimeTicks);
    EXPECT_EQ(a.perAcceleratorTicks, b.perAcceleratorTicks);
}

TEST(ParallelSimRegression, TwoThreadedNvdlaRunsMatchSequential) {
    // Two different configurations, so cross-contamination between the
    // concurrent runs cannot cancel out.
    const auto cfgA = tinyConfig(MemTech::kDdr4_1ch, 16);
    const auto cfgB = tinyConfig(MemTech::kHbm, 64);

    const auto seqA = experiments::runNvdlaDse(cfgA);
    const auto seqB = experiments::runNvdlaDse(cfgB);
    ASSERT_TRUE(seqA.completed && seqA.checksumsOk);
    ASSERT_TRUE(seqB.completed && seqB.checksumsOk);

    experiments::DseRunResult parA, parB;
    {
        std::jthread threadA{[&parA, &cfgA] { parA = experiments::runNvdlaDse(cfgA); }};
        std::jthread threadB{[&parB, &cfgB] { parB = experiments::runNvdlaDse(cfgB); }};
    }
    expectSameRun(seqA, parA);
    expectSameRun(seqB, parB);
}

TEST(ParallelSimRegression, RepeatedConcurrentRunsStayDeterministic) {
    // Same configuration raced against itself, twice over, keeps producing
    // the identical result — no hidden shared state between instances.
    const auto cfg = tinyConfig(MemTech::kGddr5, 32);
    const auto reference = experiments::runNvdlaDse(cfg);
    ASSERT_TRUE(reference.completed && reference.checksumsOk);

    for (int round = 0; round < 2; ++round) {
        experiments::DseRunResult left, right;
        {
            std::jthread a{[&left, &cfg] { left = experiments::runNvdlaDse(cfg); }};
            std::jthread b{[&right, &cfg] { right = experiments::runNvdlaDse(cfg); }};
        }
        expectSameRun(reference, left);
        expectSameRun(reference, right);
    }
}

}  // namespace
}  // namespace g5r
