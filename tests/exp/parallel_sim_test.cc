// Two full Simulations ticking dlopen-ed NVDLA RTL models on two threads
// must behave exactly like sequential runs: same checksums, same runtimes,
// same per-accelerator finish ticks, and byte-identical flight recordings.
// This is the end-to-end guarantee the parallel experiment runner rests on
// (and, under TSan, the audit that the SharedLibModel / stats / logging
// paths really are thread-safe). Routing the comparison through the flight
// recorder means a regression does not just fail — it names the first
// divergent interval and the owning SimObject.
#include <gtest/gtest.h>

#include <array>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/diff.hh"
#include "soc/experiments.hh"

namespace g5r {
namespace {

models::NvdlaShape tinyShape() {
    models::NvdlaShape shape;
    shape.width = shape.height = 8;
    shape.inChannels = 16;
    shape.outChannels = 16;
    shape.filterH = shape.filterW = 3;
    shape.refetch = 1;
    return shape;
}

experiments::DseRunConfig tinyConfig(MemTech tech, unsigned maxInflight,
                                     const std::string& recordName) {
    experiments::DseRunConfig cfg;
    cfg.shape = tinyShape();
    cfg.workloadName = "parallel-regression";
    cfg.memTech = tech;
    cfg.maxInflight = maxInflight;
    cfg.numAccelerators = 1;
    cfg.numCores = 0;
    cfg.obs.recordEnabled = true;
    cfg.obs.recordPath = ::testing::TempDir() + "/" + recordName + ".g5rec";
    return cfg;
}

std::string slurp(const std::string& path) {
    std::ifstream in{path};
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void expectSameRun(const experiments::DseRunResult& a, const experiments::DseRunResult& b) {
    EXPECT_TRUE(a.completed);
    EXPECT_TRUE(b.completed);
    EXPECT_TRUE(a.checksumsOk);
    EXPECT_TRUE(b.checksumsOk);
    EXPECT_EQ(a.runtimeTicks, b.runtimeTicks);
    EXPECT_EQ(a.perAcceleratorTicks, b.perAcceleratorTicks);

    // Byte-identical recordings are the strong form of "same run": every
    // dispatch and packet, in order. On mismatch, localize it instead of
    // failing bare.
    ASSERT_FALSE(a.recordPath.empty());
    ASSERT_FALSE(b.recordPath.empty());
    const std::string bytesA = slurp(a.recordPath);
    const std::string bytesB = slurp(b.recordPath);
    ASSERT_FALSE(bytesA.empty());
    if (bytesA != bytesB) {
        const obs::DivergenceReport rep =
            obs::diffRecordingFiles(a.recordPath, b.recordPath);
        ADD_FAILURE() << "flight recordings differ:\n"
                      << obs::formatDivergenceReport(rep, a.recordPath, b.recordPath);
    }
}

TEST(ParallelSimRegression, TwoThreadedNvdlaRunsMatchSequential) {
    // Two different configurations, so cross-contamination between the
    // concurrent runs cannot cancel out. Each run records to its own file.
    const auto cfgSeqA = tinyConfig(MemTech::kDdr4_1ch, 16, "par_seq_a");
    const auto cfgSeqB = tinyConfig(MemTech::kHbm, 64, "par_seq_b");
    auto cfgParA = cfgSeqA;
    auto cfgParB = cfgSeqB;
    cfgParA.obs.recordPath = ::testing::TempDir() + "/par_par_a.g5rec";
    cfgParB.obs.recordPath = ::testing::TempDir() + "/par_par_b.g5rec";

    const auto seqA = experiments::runNvdlaDse(cfgSeqA);
    const auto seqB = experiments::runNvdlaDse(cfgSeqB);
    ASSERT_TRUE(seqA.completed && seqA.checksumsOk);
    ASSERT_TRUE(seqB.completed && seqB.checksumsOk);

    experiments::DseRunResult parA, parB;
    {
        std::jthread threadA{[&parA, &cfgParA] { parA = experiments::runNvdlaDse(cfgParA); }};
        std::jthread threadB{[&parB, &cfgParB] { parB = experiments::runNvdlaDse(cfgParB); }};
    }
    expectSameRun(seqA, parA);
    expectSameRun(seqB, parB);
}

TEST(ParallelSimRegression, DmaSpmRunsMatchAcrossJobCounts) {
    // The DMA + SPM staging path has far more internal concurrency (DMA
    // descriptor streams, MSHR fills, banked response queues) than the
    // direct path, so it gets its own jobs-1-vs-jobs-4 identity check.
    auto cfgSeq = tinyConfig(MemTech::kDdr4_1ch, 16, "par_dmaspm_seq");
    cfgSeq.memPath = MemPath::kDmaSpm;
    const auto seq = experiments::runNvdlaDse(cfgSeq);
    ASSERT_TRUE(seq.completed && seq.checksumsOk);

    std::array<experiments::DseRunResult, 4> par;
    std::array<experiments::DseRunConfig, 4> cfgs;
    {
        std::vector<std::jthread> threads;
        for (int i = 0; i < 4; ++i) {
            cfgs[i] = cfgSeq;
            cfgs[i].obs.recordPath =
                ::testing::TempDir() + "/par_dmaspm_" + std::to_string(i) + ".g5rec";
            threads.emplace_back(
                [&r = par[i], &c = cfgs[i]] { r = experiments::runNvdlaDse(c); });
        }
    }
    for (const auto& run : par) expectSameRun(seq, run);
}

TEST(ParallelSimRegression, RepeatedConcurrentRunsStayDeterministic) {
    // Same configuration raced against itself, twice over, keeps producing
    // the identical result — no hidden shared state between instances.
    const auto cfgRef = tinyConfig(MemTech::kGddr5, 32, "par_ref");
    const auto reference = experiments::runNvdlaDse(cfgRef);
    ASSERT_TRUE(reference.completed && reference.checksumsOk);

    for (int round = 0; round < 2; ++round) {
        auto cfgL = cfgRef;
        auto cfgR = cfgRef;
        cfgL.obs.recordPath =
            ::testing::TempDir() + "/par_l" + std::to_string(round) + ".g5rec";
        cfgR.obs.recordPath =
            ::testing::TempDir() + "/par_r" + std::to_string(round) + ".g5rec";
        experiments::DseRunResult left, right;
        {
            std::jthread a{[&left, &cfgL] { left = experiments::runNvdlaDse(cfgL); }};
            std::jthread b{[&right, &cfgR] { right = experiments::runNvdlaDse(cfgR); }};
        }
        expectSameRun(reference, left);
        expectSameRun(reference, right);
    }
}

}  // namespace
}  // namespace g5r
