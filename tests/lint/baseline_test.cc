// Baseline suppression (lint/baseline.hh): fingerprinting, multiset
// counting, line-number independence, and the JSON file round trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "lint/baseline.hh"
#include "lint/netlist_lint.hh"

namespace g5r::lint {
namespace {

Report twoFindings() {
    Report rep;
    rep.add("G5R-FLOATING-NET", Severity::kWarning, "net 'x' drives nothing",
            SourceLoc{"a.nl", 3}, {"x"});
    rep.add("G5R-WIDTH-TRUNC", Severity::kWarning, "'s' is 8 bits wide ...",
            SourceLoc{"a.nl", 7}, {"s"});
    return rep;
}

TEST(Baseline, SuppressesExactlyTheRecordedFindings) {
    const Report rep = twoFindings();
    const Baseline base = makeBaseline(rep);
    EXPECT_EQ(base.total(), 2u);

    std::size_t suppressed = 0;
    const Report filtered = applyBaseline(rep, base, &suppressed);
    EXPECT_EQ(suppressed, 2u);
    EXPECT_TRUE(filtered.empty());
}

TEST(Baseline, NewFindingsSurviveSuppression) {
    const Baseline base = makeBaseline(twoFindings());
    Report rep = twoFindings();
    rep.add("G5R-DUP-CONE", Severity::kWarning, "2 identical cones",
            SourceLoc{"a.nl", 9}, {"p", "q"});

    std::size_t suppressed = 0;
    const Report filtered = applyBaseline(rep, base, &suppressed);
    EXPECT_EQ(suppressed, 2u);
    ASSERT_EQ(filtered.diagnostics().size(), 1u);
    EXPECT_EQ(filtered.diagnostics().front().ruleId, "G5R-DUP-CONE");
}

TEST(Baseline, FingerprintIgnoresLineNumbersButNotNets) {
    Report moved;
    // Same finding, shifted by an unrelated edit: still suppressed.
    moved.add("G5R-FLOATING-NET", Severity::kWarning, "net 'x' drives nothing",
              SourceLoc{"a.nl", 55}, {"x"});
    // Same rule on a different net: NOT suppressed.
    moved.add("G5R-FLOATING-NET", Severity::kWarning, "net 'y' drives nothing",
              SourceLoc{"a.nl", 56}, {"y"});

    std::size_t suppressed = 0;
    const Report filtered = applyBaseline(moved, makeBaseline(twoFindings()),
                                          &suppressed);
    EXPECT_EQ(suppressed, 1u);
    ASSERT_EQ(filtered.diagnostics().size(), 1u);
    EXPECT_EQ(filtered.diagnostics().front().nets, std::vector<std::string>{"y"});
}

TEST(Baseline, DuplicateFingerprintsAreCountedNotCollapsed) {
    Report two;
    two.add("G5R-DUP-CONE", Severity::kWarning, "dup", SourceLoc{"a.nl", 1}, {"x"});
    two.add("G5R-DUP-CONE", Severity::kWarning, "dup", SourceLoc{"a.nl", 2}, {"x"});
    const Baseline base = makeBaseline(two);

    Report three = two;
    three.add("G5R-DUP-CONE", Severity::kWarning, "dup", SourceLoc{"a.nl", 3}, {"x"});
    std::size_t suppressed = 0;
    const Report filtered = applyBaseline(three, base, &suppressed);
    EXPECT_EQ(suppressed, 2u);  // Budget of two; the third stays visible.
    EXPECT_EQ(filtered.diagnostics().size(), 1u);
}

TEST(Baseline, FileRoundTripPreservesEntries) {
    const std::string path =
        (std::filesystem::temp_directory_path() / "g5r_baseline_test.json").string();
    const Baseline written = makeBaseline(twoFindings());
    saveBaseline(written, path);
    const Baseline read = loadBaseline(path);
    EXPECT_EQ(read.entries, written.entries);
    std::remove(path.c_str());
}

TEST(Baseline, LoadRejectsMissingAndMalformedFiles) {
    EXPECT_THROW(loadBaseline("/nonexistent/dir/base.json"), std::runtime_error);

    const std::string path =
        (std::filesystem::temp_directory_path() / "g5r_baseline_bad.json").string();
    {
        std::ofstream out(path);
        out << "{\"not\": \"a baseline\"}\n";
    }
    EXPECT_THROW(loadBaseline(path), std::runtime_error);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace g5r::lint
