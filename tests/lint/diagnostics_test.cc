// The shared diagnostics engine: severities, report bookkeeping, the text
// and JSON emitters, and the stable-rule registry.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "lint/diagnostics.hh"

namespace g5r::lint {
namespace {

TEST(Diagnostics, ReportCountsBySeverity) {
    Report report;
    report.add("G5R-COMB-LOOP", Severity::kError, "loop");
    report.add("G5R-FLOATING-NET", Severity::kWarning, "floats");
    report.add("G5R-FLOATING-NET", Severity::kWarning, "floats again");
    report.add("G5R-DEAD-CONE", Severity::kNote, "fyi");
    EXPECT_EQ(report.size(), 4u);
    EXPECT_EQ(report.errors(), 1u);
    EXPECT_EQ(report.warnings(), 2u);
    EXPECT_EQ(report.count(Severity::kNote), 1u);
    EXPECT_TRUE(report.hasErrors());
    EXPECT_EQ(report.byRule("G5R-FLOATING-NET").size(), 2u);
    EXPECT_TRUE(report.byRule("G5R-SYNTAX").empty());
}

TEST(Diagnostics, MergePreservesOrder) {
    Report a, b;
    a.add("R1", Severity::kError, "first");
    b.add("R2", Severity::kWarning, "second");
    a.merge(b);
    ASSERT_EQ(a.size(), 2u);
    EXPECT_EQ(a.diagnostics()[0].ruleId, "R1");
    EXPECT_EQ(a.diagnostics()[1].ruleId, "R2");
}

TEST(Diagnostics, FormatWithLocationAndNets) {
    Report report;
    report.add("G5R-COMB-LOOP", Severity::kError, "combinational loop",
               SourceLoc{"top.nl", 12}, {"a", "b", "a"});
    EXPECT_EQ(formatDiagnostic(report.diagnostics().front()),
              "top.nl:12: error[G5R-COMB-LOOP]: combinational loop [a -> b -> a]");
}

TEST(Diagnostics, FormatWithoutLocation) {
    Report report;
    report.add("G5R-KRNL-ZERO-WIDTH", Severity::kError, "zero width", {},
               {"top.r"});
    EXPECT_EQ(formatDiagnostic(report.diagnostics().front()),
              "error[G5R-KRNL-ZERO-WIDTH]: zero width [top.r]");
}

TEST(Diagnostics, EmitTextSummarises) {
    Report report;
    report.add("R1", Severity::kError, "boom");
    report.add("R2", Severity::kWarning, "hmm");
    std::ostringstream os;
    emitText(report, os);
    const std::string out = os.str();
    EXPECT_NE(out.find("error[R1]: boom"), std::string::npos);
    EXPECT_NE(out.find("warning[R2]: hmm"), std::string::npos);
    EXPECT_NE(out.find("1 error(s), 1 warning(s) generated."), std::string::npos);
}

TEST(Diagnostics, EmitJsonEscapesAndCounts) {
    Report report;
    report.add("G5R-SYNTAX", Severity::kError, "bad \"token\"\nline two",
               SourceLoc{"a\\b.nl", 3}, {"net1"});
    std::ostringstream os;
    emitJson(report, os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"rule\":\"G5R-SYNTAX\""), std::string::npos) << out;
    EXPECT_NE(out.find("\"severity\":\"error\""), std::string::npos);
    EXPECT_NE(out.find("bad \\\"token\\\"\\nline two"), std::string::npos) << out;
    EXPECT_NE(out.find("\"file\":\"a\\\\b.nl\""), std::string::npos) << out;
    EXPECT_NE(out.find("\"line\":3"), std::string::npos);
    EXPECT_NE(out.find("\"nets\":[\"net1\"]"), std::string::npos);
    EXPECT_NE(out.find("\"errors\":1"), std::string::npos);
    EXPECT_NE(out.find("\"warnings\":0"), std::string::npos);
}

TEST(Diagnostics, RuleRegistryHasUniqueStableIds) {
    std::set<std::string_view> ids;
    for (const auto& rule : ruleRegistry()) {
        EXPECT_TRUE(ids.insert(rule.id).second) << "duplicate rule " << rule.id;
        EXPECT_EQ(rule.id.substr(0, 4), "G5R-");
        EXPECT_FALSE(rule.summary.empty());
    }
    // The five netlist rule classes the CLI advertises must stay registered
    // under these exact IDs.
    for (const char* id : {"G5R-COMB-LOOP", "G5R-MULTI-DRIVER",
                           "G5R-FLOATING-INPUT", "G5R-DEAD-CONE",
                           "G5R-WIDTH-TRUNC"}) {
        EXPECT_NE(findRule(id), nullptr) << id;
    }
    EXPECT_EQ(findRule("G5R-NOT-A-RULE"), nullptr);
}

}  // namespace
}  // namespace g5r::lint
