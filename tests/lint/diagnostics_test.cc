// The shared diagnostics engine: severities, report bookkeeping, the text
// and JSON emitters, and the stable-rule registry.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "exp/json.hh"
#include "lint/diagnostics.hh"
#include "lint/netlist_lint.hh"

namespace g5r::lint {
namespace {

TEST(Diagnostics, ReportCountsBySeverity) {
    Report report;
    report.add("G5R-COMB-LOOP", Severity::kError, "loop");
    report.add("G5R-FLOATING-NET", Severity::kWarning, "floats");
    report.add("G5R-FLOATING-NET", Severity::kWarning, "floats again");
    report.add("G5R-DEAD-CONE", Severity::kNote, "fyi");
    EXPECT_EQ(report.size(), 4u);
    EXPECT_EQ(report.errors(), 1u);
    EXPECT_EQ(report.warnings(), 2u);
    EXPECT_EQ(report.count(Severity::kNote), 1u);
    EXPECT_TRUE(report.hasErrors());
    EXPECT_EQ(report.byRule("G5R-FLOATING-NET").size(), 2u);
    EXPECT_TRUE(report.byRule("G5R-SYNTAX").empty());
}

TEST(Diagnostics, MergePreservesOrder) {
    Report a, b;
    a.add("R1", Severity::kError, "first");
    b.add("R2", Severity::kWarning, "second");
    a.merge(b);
    ASSERT_EQ(a.size(), 2u);
    EXPECT_EQ(a.diagnostics()[0].ruleId, "R1");
    EXPECT_EQ(a.diagnostics()[1].ruleId, "R2");
}

TEST(Diagnostics, FormatWithLocationAndNets) {
    Report report;
    report.add("G5R-COMB-LOOP", Severity::kError, "combinational loop",
               SourceLoc{"top.nl", 12}, {"a", "b", "a"});
    EXPECT_EQ(formatDiagnostic(report.diagnostics().front()),
              "top.nl:12: error[G5R-COMB-LOOP]: combinational loop [a -> b -> a]");
}

TEST(Diagnostics, FormatWithoutLocation) {
    Report report;
    report.add("G5R-KRNL-ZERO-WIDTH", Severity::kError, "zero width", {},
               {"top.r"});
    EXPECT_EQ(formatDiagnostic(report.diagnostics().front()),
              "error[G5R-KRNL-ZERO-WIDTH]: zero width [top.r]");
}

TEST(Diagnostics, EmitTextSummarises) {
    Report report;
    report.add("R1", Severity::kError, "boom");
    report.add("R2", Severity::kWarning, "hmm");
    std::ostringstream os;
    emitText(report, os);
    const std::string out = os.str();
    EXPECT_NE(out.find("error[R1]: boom"), std::string::npos);
    EXPECT_NE(out.find("warning[R2]: hmm"), std::string::npos);
    EXPECT_NE(out.find("1 error(s), 1 warning(s) generated."), std::string::npos);
}

TEST(Diagnostics, EmitJsonEscapesAndCounts) {
    Report report;
    report.add("G5R-SYNTAX", Severity::kError, "bad \"token\"\nline two",
               SourceLoc{"a\\b.nl", 3}, {"net1"});
    std::ostringstream os;
    emitJson(report, os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"rule\":\"G5R-SYNTAX\""), std::string::npos) << out;
    EXPECT_NE(out.find("\"severity\":\"error\""), std::string::npos);
    EXPECT_NE(out.find("bad \\\"token\\\"\\nline two"), std::string::npos) << out;
    EXPECT_NE(out.find("\"file\":\"a\\\\b.nl\""), std::string::npos) << out;
    EXPECT_NE(out.find("\"line\":3"), std::string::npos);
    EXPECT_NE(out.find("\"nets\":[\"net1\"]"), std::string::npos);
    EXPECT_NE(out.find("\"errors\":1"), std::string::npos);
    EXPECT_NE(out.find("\"warnings\":0"), std::string::npos);
}

TEST(Diagnostics, EmitJsonRoundTripsThroughTheJsonParser) {
    // The emitted document must be *parseable*, not merely grep-able: every
    // escape emitJson produces has to survive exp::Json::parse unchanged.
    const std::string nasty =
        std::string{"quote\" slash\\ nl\n tab\t cr\r bell\x07 nul"} +
        std::string(1, '\0') + "esc\x1b end";
    Report report;
    report.add("G5R-SYNTAX", Severity::kError, nasty, SourceLoc{nasty, 7},
               {nasty, "plain"});
    report.add("G5R-DUP-CONE", Severity::kWarning, "ok", SourceLoc{"b.nl", 1});

    std::ostringstream os;
    emitJson(report, os);
    const exp::Json doc = exp::Json::parse(os.str());

    EXPECT_EQ(doc.at("errors").asInt(), 1);
    EXPECT_EQ(doc.at("warnings").asInt(), 1);
    const auto& diags = doc.at("diagnostics").items();
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(diags[0].at("rule").asString(), "G5R-SYNTAX");
    EXPECT_EQ(diags[0].at("message").asString(), nasty);
    EXPECT_EQ(diags[0].at("file").asString(), nasty);
    EXPECT_EQ(diags[0].at("line").asInt(), 7);
    ASSERT_EQ(diags[0].at("nets").size(), 2u);
    EXPECT_EQ(diags[0].at("nets").items()[0].asString(), nasty);
    EXPECT_EQ(diags[1].at("rule").asString(), "G5R-DUP-CONE");
}

TEST(Diagnostics, LintJsonOutputForHostileNetNamesStaysParseable) {
    // The netlist tokenizer splits on whitespace only, so a net name can
    // legally carry raw control characters; the whole CLI pipeline (lint ->
    // emitJson) must still produce a valid document.
    const std::string source = "input a\x01z\ninput b\nnot y b\noutput o y\n";
    const Report report = runNetlistSource(source, "hostile\x02.nl");
    std::ostringstream os;
    emitJson(report, os);
    const exp::Json doc = exp::Json::parse(os.str());
    ASSERT_GT(doc.at("diagnostics").size(), 0u);  // a<SOH>z floats.
    const auto& first = doc.at("diagnostics").items()[0];
    EXPECT_EQ(first.at("rule").asString(), "G5R-FLOATING-INPUT");
    EXPECT_EQ(first.at("file").asString(), "hostile\x02.nl");
    EXPECT_EQ(first.at("nets").items()[0].asString(), "a\x01z");
}

TEST(Diagnostics, RuleRegistryHasUniqueStableIds) {
    std::set<std::string_view> ids;
    for (const auto& rule : ruleRegistry()) {
        EXPECT_TRUE(ids.insert(rule.id).second) << "duplicate rule " << rule.id;
        EXPECT_EQ(rule.id.substr(0, 4), "G5R-");
        EXPECT_FALSE(rule.summary.empty());
    }
    // The five netlist rule classes the CLI advertises must stay registered
    // under these exact IDs.
    for (const char* id : {"G5R-COMB-LOOP", "G5R-MULTI-DRIVER",
                           "G5R-FLOATING-INPUT", "G5R-DEAD-CONE",
                           "G5R-WIDTH-TRUNC"}) {
        EXPECT_NE(findRule(id), nullptr) << id;
    }
    EXPECT_EQ(findRule("G5R-NOT-A-RULE"), nullptr);
}

}  // namespace
}  // namespace g5r::lint
