// Kernel-model static analysis: duplicate hierarchical signal names,
// zero-width registers, and registers left out of the tick path.
#include <gtest/gtest.h>

#include <cstdint>

#include "lint/kernel_lint.hh"

namespace g5r::lint {
namespace {

using rtl::Module;
using rtl::Reg;

TEST(KernelLint, CleanHierarchyHasNoFindings) {
    Module top{"top"};
    Module child{"datapath", &top};
    Reg<std::uint32_t> a{top, "ctrl", 32};
    Reg<std::uint8_t> b{child, "state", 4};
    top.tick();
    EXPECT_TRUE(run(top).empty());
}

TEST(KernelLint, DuplicateRegisterNamesCorruptVcd) {
    Module top{"top"};
    Reg<std::uint32_t> a{top, "counter", 32};
    Reg<std::uint32_t> b{top, "counter", 32};
    const Report report = run(top);
    const auto dups = report.byRule("G5R-KRNL-DUP-SIGNAL");
    ASSERT_EQ(dups.size(), 1u);
    EXPECT_EQ(dups[0]->severity, Severity::kError);
    EXPECT_EQ(dups[0]->nets, std::vector<std::string>{"top.counter"});
}

TEST(KernelLint, DuplicateSubmoduleNamesAreAlsoErrors) {
    Module top{"top"};
    Module a{"lane", &top};
    Module b{"lane", &top};
    const Report report = run(top);
    const auto dups = report.byRule("G5R-KRNL-DUP-SIGNAL");
    ASSERT_EQ(dups.size(), 1u);
    EXPECT_EQ(dups[0]->nets, std::vector<std::string>{"top.lane"});
}

TEST(KernelLint, ZeroWidthRegister) {
    Module top{"top"};
    Reg<std::uint8_t> z{top, "ghost", 0};
    const Report report = run(top);
    const auto zero = report.byRule("G5R-KRNL-ZERO-WIDTH");
    ASSERT_EQ(zero.size(), 1u);
    EXPECT_EQ(zero[0]->severity, Severity::kError);
    EXPECT_EQ(zero[0]->nets, std::vector<std::string>{"top.ghost"});
}

TEST(KernelLint, NeverLatchedFlagsRegistersOutsideTheTickPath) {
    // Two sibling trees; only the child subtree is ticked, so the parent's
    // own register never latches — exactly the "module missing from the
    // tick path" bug this rule exists for.
    Module top{"top"};
    Module child{"engine", &top};
    Reg<std::uint32_t> stale{top, "stale", 32};
    Reg<std::uint32_t> live{child, "live", 32};
    child.tick();
    const Report report = run(top);
    const auto never = report.byRule("G5R-KRNL-NEVER-LATCHED");
    ASSERT_EQ(never.size(), 1u);
    EXPECT_EQ(never[0]->severity, Severity::kWarning);
    EXPECT_EQ(never[0]->nets, std::vector<std::string>{"top.stale"});
}

TEST(KernelLint, NeverLatchedIsSilentBeforeAnyTick) {
    Module top{"top"};
    Reg<std::uint32_t> r{top, "r", 32};
    EXPECT_TRUE(run(top).byRule("G5R-KRNL-NEVER-LATCHED").empty());
}

TEST(KernelLint, LatchCountsAccumulate) {
    Module top{"top"};
    Reg<std::uint32_t> r{top, "r", 32};
    for (int i = 0; i < 5; ++i) top.tick();
    EXPECT_EQ(r.latchCount(), 5u);
}

}  // namespace
}  // namespace g5r::lint
