// SoC elaboration static analysis: unbound crossbar ports, overlapping and
// shadowed routes, route coverage of the memory range — and the guarantee
// that the assembled Table 1 system lints clean.
#include <gtest/gtest.h>

#include "common/test_requester.hh"
#include "lint/soc_lint.hh"
#include "mem/simple_mem.hh"
#include "sim/simulation.hh"
#include "soc/soc.hh"

namespace g5r::lint {
namespace {

Xbar::Params xbarParams() {
    Xbar::Params p;
    p.clockPeriod = periodFromGHz(2);
    return p;
}

TEST(SocLint, UnboundPortsAreErrors) {
    Simulation sim;
    Xbar xbar{sim, "x", xbarParams()};
    xbar.addCpuSidePort("cpu0");
    xbar.addMemSidePort("mem0", RouteSpec{AddrRange{0, 0x1000}});
    Report report;
    lintXbar(xbar, report);
    const auto unbound = report.byRule("G5R-SOC-UNBOUND-PORT");
    ASSERT_EQ(unbound.size(), 2u);
    EXPECT_EQ(unbound[0]->severity, Severity::kError);
    EXPECT_EQ(unbound[0]->nets, std::vector<std::string>{"x.cpu_side.cpu0"});
    EXPECT_EQ(unbound[1]->nets, std::vector<std::string>{"x.mem_side.mem0"});
}

TEST(SocLint, OverlappingRoutesAreErrors) {
    Simulation sim;
    Xbar xbar{sim, "x", xbarParams()};
    xbar.addMemSidePort("a", RouteSpec{AddrRange{0, 0x1000}});
    xbar.addMemSidePort("b", RouteSpec{AddrRange{0x800, 0x2000}});
    Report report;
    lintXbar(xbar, report);
    const auto overlap = report.byRule("G5R-SOC-ROUTE-OVERLAP");
    ASSERT_EQ(overlap.size(), 1u);
    EXPECT_EQ(overlap[0]->severity, Severity::kError);
    EXPECT_EQ(overlap[0]->nets,
              (std::vector<std::string>{"x.mem_side.a", "x.mem_side.b"}));
}

TEST(SocLint, ShadowedRouteCanNeverMatch) {
    Simulation sim;
    Xbar xbar{sim, "x", xbarParams()};
    xbar.addMemSidePort("all", RouteSpec{AddrRange{0, 0x10000}});
    xbar.addMemSidePort("dead", RouteSpec{AddrRange{0x4000, 0x5000}});
    Report report;
    lintXbar(xbar, report);
    const auto shadow = report.byRule("G5R-SOC-ROUTE-SHADOW");
    ASSERT_EQ(shadow.size(), 1u);
    EXPECT_EQ(shadow[0]->severity, Severity::kError);
    EXPECT_EQ(shadow[0]->nets.front(), "x.mem_side.dead");
}

TEST(SocLint, DisjointBankStripesAreClean) {
    Simulation sim;
    Xbar xbar{sim, "x", xbarParams()};
    const AddrRange range{0, 0x10000};
    for (unsigned b = 0; b < 4; ++b) {
        xbar.addMemSidePort("bank" + std::to_string(b), RouteSpec{range, 6, 2, b});
    }
    Report report;
    lintXbar(xbar, report);
    EXPECT_TRUE(report.byRule("G5R-SOC-ROUTE-OVERLAP").empty());
    EXPECT_TRUE(report.byRule("G5R-SOC-ROUTE-SHADOW").empty());
    Report coverage;
    lintRouteCoverage(xbar, range, coverage);
    EXPECT_TRUE(coverage.empty()) << "complete stripe set covers the range";
}

TEST(SocLint, RepeatedStripeIsShadowed) {
    Simulation sim;
    Xbar xbar{sim, "x", xbarParams()};
    const AddrRange range{0, 0x10000};
    xbar.addMemSidePort("bank0", RouteSpec{range, 6, 2, 0});
    xbar.addMemSidePort("bank0again", RouteSpec{range, 6, 2, 0});
    Report report;
    lintXbar(xbar, report);
    EXPECT_EQ(report.byRule("G5R-SOC-ROUTE-SHADOW").size(), 1u);
}

TEST(SocLint, MixedInterleavingOverlapIsAWarning) {
    Simulation sim;
    Xbar xbar{sim, "x", xbarParams()};
    xbar.addMemSidePort("striped", RouteSpec{AddrRange{0, 0x10000}, 6, 2, 0});
    xbar.addMemSidePort("flat", RouteSpec{AddrRange{0x8000, 0x20000}});
    Report report;
    lintXbar(xbar, report);
    const auto ambiguous = report.byRule("G5R-SOC-AMBIGUOUS-ROUTE");
    ASSERT_EQ(ambiguous.size(), 1u);
    EXPECT_EQ(ambiguous[0]->severity, Severity::kWarning);
}

TEST(SocLint, MissingStripeLeavesMemoryUnreachable) {
    Simulation sim;
    Xbar xbar{sim, "x", xbarParams()};
    const AddrRange range{0, 0x10000};
    xbar.addMemSidePort("bank0", RouteSpec{range, 6, 2, 0});
    xbar.addMemSidePort("bank1", RouteSpec{range, 6, 2, 1});
    xbar.addMemSidePort("bank2", RouteSpec{range, 6, 2, 2});
    // Bank 3 forgotten: a quarter of all lines has no route.
    Report report;
    lintRouteCoverage(xbar, range, report);
    const auto gaps = report.byRule("G5R-SOC-UNREACHABLE-MEM");
    ASSERT_EQ(gaps.size(), 1u);
    EXPECT_EQ(gaps[0]->severity, Severity::kWarning);
}

TEST(SocLint, CoverageGapAtTheEndIsReported) {
    Simulation sim;
    Xbar xbar{sim, "x", xbarParams()};
    xbar.addMemSidePort("low", RouteSpec{AddrRange{0, 0x1000}});
    Report report;
    lintRouteCoverage(xbar, AddrRange{0, 0x2000}, report);
    const auto gaps = report.byRule("G5R-SOC-UNREACHABLE-MEM");
    ASSERT_EQ(gaps.size(), 1u);
    EXPECT_NE(gaps[0]->message.find("0x1000..0x2000"), std::string::npos)
        << gaps[0]->message;
}

TEST(SocLint, RoutelessCrossbarIsSuspicious) {
    Simulation sim;
    Xbar xbar{sim, "x", xbarParams()};
    Report report;
    lintXbar(xbar, report);
    EXPECT_EQ(report.byRule("G5R-SOC-NO-ROUTE").size(), 1u);
}

TEST(SocLint, DmaSpmUnboundPortsAreErrors) {
    Simulation sim;
    DmaEngine dma{sim, "dma", {}};
    Spm spm{sim, "spm", [] {
                Spm::Params p;
                p.range = AddrRange{0, 0x10000};
                return p;
            }()};
    Report report;
    lintDmaSpmPath(dma, spm, AddrRange{0, 0x10000}, report);
    // All four ports of the staging path are dangling.
    EXPECT_EQ(report.byRule("G5R-SOC-DMASPM-UNBOUND").size(), 4u);
    EXPECT_TRUE(report.hasErrors());
}

TEST(SocLint, DmaSpmStagedRangeMustFitTheSpm) {
    Simulation sim;
    BackingStore store;
    SimpleMemory::Params mp;
    mp.range = AddrRange{0, 0x10000};
    SimpleMemory memA{sim, "memA", mp, store};
    SimpleMemory memB{sim, "memB", mp, store};
    SimpleMemory memC{sim, "memC", mp, store};
    g5r::testing::TestRequester req{sim, "req"};

    Spm::Params sp;
    sp.range = AddrRange{0, 0x1000};  // Smaller than the staged window.
    Spm spm{sim, "spm", sp};
    DmaEngine dma{sim, "dma", {}};
    dma.memPort().bind(memA.port());
    dma.spmPort().bind(memB.port());
    spm.memSidePort().bind(memC.port());
    req.port().bind(spm.cpuSidePort());

    Report report;
    lintDmaSpmPath(dma, spm, AddrRange{0, 0x2000}, report);
    EXPECT_TRUE(report.byRule("G5R-SOC-DMASPM-UNBOUND").empty());
    ASSERT_EQ(report.byRule("G5R-SOC-DMASPM-RANGE").size(), 1u);
    EXPECT_EQ(report.byRule("G5R-SOC-DMASPM-RANGE")[0]->severity, Severity::kError);
}

TEST(SocLint, Table1SocLintsClean) {
    // The constructor already runs the lint in strict mode (it would panic
    // on errors); assert the full report — warnings included — is empty.
    Simulation sim;
    Soc soc{sim, table1Config()};
    const Report report = soc.elaborationLint();
    EXPECT_TRUE(report.empty()) << [&] {
        std::ostringstream os;
        emitText(report, os);
        return os.str();
    }();
}

TEST(SocLint, IdealMemorySocLintsClean) {
    Simulation sim;
    SocConfig cfg = table1Config(MemTech::kIdeal);
    cfg.numCores = 1;
    Soc soc{sim, cfg};
    EXPECT_FALSE(soc.elaborationLint().hasErrors());
}

TEST(SocLint, HostPortIsFlaggedUntilBound) {
    Simulation sim;
    SocConfig cfg = table1Config();
    cfg.numCores = 1;
    Soc soc{sim, cfg};
    soc.addHostPort("observer");  // Deliberately left unbound.
    const Report report = soc.elaborationLint();
    const auto unbound = report.byRule("G5R-SOC-UNBOUND-PORT");
    ASSERT_EQ(unbound.size(), 1u);
    EXPECT_EQ(unbound[0]->nets,
              std::vector<std::string>{"system.noc.cpu_side.observer"});
}

}  // namespace
}  // namespace g5r::lint
