// The shipped example netlists (examples/netlists/) are living lint
// documentation: every broken_<rule>.nl demo must fire exactly the rule it
// demonstrates, and the clean designs must stay clean — so the examples can
// never drift from the rules they illustrate (CI lints them all too).
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/netlist_lint.hh"

#ifndef G5R_EXAMPLES_DIR
#error "tests must be compiled with -DG5R_EXAMPLES_DIR"
#endif

namespace g5r::lint {
namespace {

Report lintExample(const std::string& file) {
    const std::string path = std::string{G5R_EXAMPLES_DIR} + "/netlists/" + file;
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << "missing example: " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return runNetlistSource(ss.str(), file);
}

std::vector<std::string> rulesFired(const Report& report) {
    std::vector<std::string> rules;
    for (const auto& d : report.diagnostics()) rules.push_back(d.ruleId);
    std::sort(rules.begin(), rules.end());
    rules.erase(std::unique(rules.begin(), rules.end()), rules.end());
    return rules;
}

TEST(ExampleNetlists, CleanDesignsLintClean) {
    for (const char* file : {"counter8.nl", "accumulator.nl"}) {
        const Report report = lintExample(file);
        EXPECT_TRUE(report.empty()) << file << ":\n" << [&] {
            std::ostringstream os;
            emitText(report, os);
            return os.str();
        }();
    }
}

TEST(ExampleNetlists, ConstConeDemoFiresExactlyConstNet) {
    const Report report = lintExample("broken_const_cone.nl");
    EXPECT_EQ(rulesFired(report), std::vector<std::string>{"G5R-CONST-NET"});
    EXPECT_EQ(report.byRule("G5R-CONST-NET").front()->nets,
              std::vector<std::string>{"gated"});
}

TEST(ExampleNetlists, TruncLossDemoFiresExactlyTruncLoss) {
    const Report report = lintExample("broken_trunc_loss.nl");
    EXPECT_EQ(rulesFired(report), std::vector<std::string>{"G5R-TRUNC-LOSS"});
    EXPECT_EQ(report.byRule("G5R-TRUNC-LOSS").front()->nets,
              std::vector<std::string>{"s"});
}

TEST(ExampleNetlists, DupConeDemoFiresExactlyDupCone) {
    const Report report = lintExample("broken_dup_cone.nl");
    EXPECT_EQ(rulesFired(report), std::vector<std::string>{"G5R-DUP-CONE"});
    EXPECT_EQ(report.byRule("G5R-DUP-CONE").front()->nets,
              (std::vector<std::string>{"x", "y"}));
}

TEST(ExampleNetlists, LegacyDemosStillFireTheirRules) {
    EXPECT_EQ(rulesFired(lintExample("broken_comb_loop.nl")),
              std::vector<std::string>{"G5R-COMB-LOOP"});
    EXPECT_EQ(rulesFired(lintExample("broken_multi_driver.nl")),
              std::vector<std::string>{"G5R-MULTI-DRIVER"});
    EXPECT_EQ(rulesFired(lintExample("broken_width_trunc.nl")),
              (std::vector<std::string>{"G5R-WIDTH-MISMATCH", "G5R-WIDTH-TRUNC"}));
    EXPECT_EQ(rulesFired(lintExample("broken_dead_cone.nl")),
              (std::vector<std::string>{"G5R-DEAD-CONE", "G5R-FLOATING-NET"}));
    EXPECT_EQ(rulesFired(lintExample("broken_floating.nl")),
              (std::vector<std::string>{"G5R-DEAD-CONE", "G5R-FLOATING-INPUT",
                                        "G5R-FLOATING-NET"}));
}

}  // namespace
}  // namespace g5r::lint
