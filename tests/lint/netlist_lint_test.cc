// Netlist static analysis: one fixture per rule, asserting rule ID,
// severity, and the cited net names — plus the no-false-positive guarantee
// over the generated bitonic sorter and the strict elaboration path.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "lint/netlist_lint.hh"
#include "rtl/netlist.hh"

namespace g5r::lint {
namespace {

const Diagnostic& only(const Report& report, std::string_view rule) {
    const auto found = report.byRule(rule);
    EXPECT_EQ(found.size(), 1u) << "expected exactly one " << rule;
    static const Diagnostic kEmpty{};
    return found.empty() ? kEmpty : *found.front();
}

TEST(NetlistLint, CombLoopNamesEveryNetOnThePath) {
    const Report report = runNetlistSource(R"(
        input a
        and x y a
        and y x a
        output o x
    )");
    EXPECT_TRUE(report.hasErrors());
    const Diagnostic& d = only(report, "G5R-COMB-LOOP");
    EXPECT_EQ(d.severity, Severity::kError);
    // Full cycle path, closed: x -> y -> x.
    ASSERT_EQ(d.nets.size(), 3u);
    EXPECT_EQ(d.nets.front(), d.nets.back());
    EXPECT_NE(std::find(d.nets.begin(), d.nets.end(), "x"), d.nets.end());
    EXPECT_NE(std::find(d.nets.begin(), d.nets.end(), "y"), d.nets.end());
    // The message spells the path out for humans too.
    EXPECT_NE(d.message.find("x -> y -> x"), std::string::npos) << d.message;
}

TEST(NetlistLint, SelfLoopIsACombLoop) {
    const Report report = runNetlistSource("input a\nand x x a\noutput o x\n");
    const Diagnostic& d = only(report, "G5R-COMB-LOOP");
    EXPECT_EQ(d.severity, Severity::kError);
    ASSERT_EQ(d.nets.size(), 2u);
    EXPECT_EQ(d.nets[0], "x");
    EXPECT_EQ(d.nets[1], "x");
}

TEST(NetlistLint, LongerLoopListsAllMembers) {
    const Report report = runNetlistSource(R"(
        input i
        and a c i
        and b a i
        and c b i
        output o a
    )");
    const Diagnostic& d = only(report, "G5R-COMB-LOOP");
    ASSERT_EQ(d.nets.size(), 4u);  // a -> b -> c -> a (closed).
    for (const char* net : {"a", "b", "c"}) {
        EXPECT_NE(std::find(d.nets.begin(), d.nets.end(), net), d.nets.end())
            << net << " missing from cycle path";
    }
}

TEST(NetlistLint, SequentialLoopThroughRegIsLegal) {
    const Report report = runNetlistSource("reg r inv 0\nnot inv r\noutput o r\n");
    EXPECT_TRUE(report.byRule("G5R-COMB-LOOP").empty());
    EXPECT_FALSE(report.hasErrors());
}

TEST(NetlistLint, MultiDriver) {
    const Report report = runNetlistSource(R"(
        input a
        input b
        and x a b
        or x a b
        output o x
    )");
    const Diagnostic& d = only(report, "G5R-MULTI-DRIVER");
    EXPECT_EQ(d.severity, Severity::kError);
    ASSERT_EQ(d.nets.size(), 1u);
    EXPECT_EQ(d.nets[0], "x");
    EXPECT_EQ(d.loc.line, 5u);  // The redefinition, not the first driver.
    EXPECT_NE(d.message.find("line 4"), std::string::npos) << d.message;
}

TEST(NetlistLint, UndrivenOperands) {
    const Report report = runNetlistSource("and y a b\noutput o y\n");
    const auto undriven = report.byRule("G5R-UNDRIVEN");
    ASSERT_EQ(undriven.size(), 2u);
    EXPECT_EQ(undriven[0]->severity, Severity::kError);
    EXPECT_EQ(undriven[0]->nets, std::vector<std::string>{"a"});
    EXPECT_EQ(undriven[1]->nets, std::vector<std::string>{"b"});
}

TEST(NetlistLint, UndrivenOutputTarget) {
    const Report report = runNetlistSource("input a\noutput o nowhere\n");
    const auto undriven = report.byRule("G5R-UNDRIVEN");
    ASSERT_EQ(undriven.size(), 1u);
    EXPECT_EQ(undriven[0]->nets, std::vector<std::string>{"nowhere"});
}

TEST(NetlistLint, FloatingInput) {
    const Report report = runNetlistSource(R"(
        input a
        input unused
        not y a
        output o y
    )");
    const Diagnostic& d = only(report, "G5R-FLOATING-INPUT");
    EXPECT_EQ(d.severity, Severity::kWarning);
    EXPECT_EQ(d.nets, std::vector<std::string>{"unused"});
    EXPECT_FALSE(report.hasErrors());  // Warnings only.
}

TEST(NetlistLint, FloatingNet) {
    const Report report = runNetlistSource(R"(
        input a
        not y a
        not z a
        output o y
    )");
    const Diagnostic& d = only(report, "G5R-FLOATING-NET");
    EXPECT_EQ(d.severity, Severity::kWarning);
    EXPECT_EQ(d.nets, std::vector<std::string>{"z"});
}

TEST(NetlistLint, DeadConeListsEveryUnreachableNet) {
    // y and z form a cone that reaches no output; a feeds only that cone.
    const Report report = runNetlistSource(R"(
        input a
        input b
        and y a b
        xor z y b
        output o b
    )");
    const Diagnostic& d = only(report, "G5R-DEAD-CONE");
    EXPECT_EQ(d.severity, Severity::kWarning);
    EXPECT_EQ(d.nets, (std::vector<std::string>{"a", "y", "z"}));
}

TEST(NetlistLint, DeadConeSeesThroughRegisters) {
    // Logic feeding a reg that feeds an output is alive, not dead.
    const Report report = runNetlistSource(R"(
        input in
        add next acc in
        reg acc next 0
        output sum acc
    )");
    EXPECT_TRUE(report.byRule("G5R-DEAD-CONE").empty());
    EXPECT_TRUE(report.empty()) << "accumulator should lint clean";
}

TEST(NetlistLint, WidthTruncation) {
    const Report report = runNetlistSource(R"(
        input a 32
        input b 32
        add s a b 8
        output o s
    )");
    const Diagnostic& d = only(report, "G5R-WIDTH-TRUNC");
    EXPECT_EQ(d.severity, Severity::kWarning);
    EXPECT_EQ(d.nets, std::vector<std::string>{"s"});
    EXPECT_TRUE(report.byRule("G5R-WIDTH-MISMATCH").empty());
}

TEST(NetlistLint, WidthMismatch) {
    const Report report = runNetlistSource(R"(
        input a 32
        input b 16
        add s a b
        output o s
    )");
    const Diagnostic& d = only(report, "G5R-WIDTH-MISMATCH");
    EXPECT_EQ(d.severity, Severity::kWarning);
    EXPECT_EQ(d.nets, (std::vector<std::string>{"s", "a", "b"}));
    EXPECT_TRUE(report.byRule("G5R-WIDTH-TRUNC").empty());  // s is 64 bits.
}

TEST(NetlistLint, MuxSelectWiderThanOneBit) {
    const Report report = runNetlistSource(R"(
        input sel 2
        input a
        input b
        mux m sel a b
        output o m
    )");
    const Diagnostic& d = only(report, "G5R-WIDTH-MISMATCH");
    EXPECT_EQ(d.nets, (std::vector<std::string>{"m", "sel"}));
}

TEST(NetlistLint, NoOutput) {
    const Report report = runNetlistSource("input a\nreg r a\n");
    EXPECT_FALSE(report.byRule("G5R-NO-OUTPUT").empty());
}

TEST(NetlistLint, SyntaxErrors) {
    const Report report = runNetlistSource("frobnicate x a\nconst c notanumber\n");
    const auto syntax = report.byRule("G5R-SYNTAX");
    ASSERT_EQ(syntax.size(), 2u);
    EXPECT_EQ(syntax[0]->severity, Severity::kError);
    EXPECT_EQ(syntax[0]->loc.line, 1u);
    EXPECT_EQ(syntax[1]->loc.line, 2u);
}

TEST(NetlistLint, BitonicSorterIsClean) {
    // The acceptance gate: zero findings — not merely zero errors — on the
    // generated 8-lane sorter.
    const Report report = runNetlistSource(rtl::bitonicSorterNetlist(8));
    EXPECT_TRUE(report.empty()) << [&] {
        std::ostringstream os;
        emitText(report, os);
        return os.str();
    }();
}

TEST(NetlistLint, SourceLocationsCarryTheFileName) {
    const Report report = runNetlistSource("and y a b\n", "designs/adder.nl");
    ASSERT_FALSE(report.empty());
    EXPECT_EQ(report.diagnostics().front().loc.file, "designs/adder.nl");
    const std::string text = formatDiagnostic(report.diagnostics().front());
    EXPECT_NE(text.find("designs/adder.nl:1:"), std::string::npos) << text;
}

// --- strict elaboration -----------------------------------------------------

TEST(NetlistStrict, ConstructorThrowsWithFullCyclePath) {
    try {
        rtl::Netlist nl{"not a b\nnot b a\noutput o a\n"};
        FAIL() << "expected NetlistError";
    } catch (const rtl::NetlistError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("G5R-COMB-LOOP"), std::string::npos) << what;
        EXPECT_NE(what.find("a -> b -> a"), std::string::npos) << what;
    }
}

TEST(NetlistStrict, WarningsDoNotBlockElaboration) {
    // Floating nets and dead cones are warnings; the design still builds.
    rtl::Netlist nl{"input a\nnot y a\nnot z a\noutput o y\n"};
    nl.setInput("a", 1);
    nl.eval();
    EXPECT_EQ(nl.output("o"), ~std::uint64_t{1});
}

TEST(NetlistStrict, ExplicitWidthsMaskValues) {
    rtl::Netlist nl{"input a 16\nadd s a a 8\noutput o s\n"};
    nl.setInput("a", 0xFF);
    nl.eval();
    EXPECT_EQ(nl.output("o"), 0xFEu);  // (0xFF + 0xFF) masked to 8 bits.
}

TEST(NetlistStrict, GraphAccessorSupportsRelint) {
    const rtl::Netlist nl{rtl::bitonicSorterNetlist(4)};
    EXPECT_TRUE(run(nl).empty());
    EXPECT_EQ(nl.graph().nodes.size(), nl.numNodes());
}

}  // namespace
}  // namespace g5r::lint
