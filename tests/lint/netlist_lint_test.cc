// Netlist static analysis: one fixture per rule, asserting rule ID,
// severity, and the cited net names — plus the no-false-positive guarantee
// over the generated bitonic sorter and the strict elaboration path.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "lint/netlist_lint.hh"
#include "rtl/netlist.hh"

namespace g5r::lint {
namespace {

const Diagnostic& only(const Report& report, std::string_view rule) {
    const auto found = report.byRule(rule);
    EXPECT_EQ(found.size(), 1u) << "expected exactly one " << rule;
    static const Diagnostic kEmpty{};
    return found.empty() ? kEmpty : *found.front();
}

TEST(NetlistLint, CombLoopNamesEveryNetOnThePath) {
    const Report report = runNetlistSource(R"(
        input a
        and x y a
        and y x a
        output o x
    )");
    EXPECT_TRUE(report.hasErrors());
    const Diagnostic& d = only(report, "G5R-COMB-LOOP");
    EXPECT_EQ(d.severity, Severity::kError);
    // Full cycle path, closed: x -> y -> x.
    ASSERT_EQ(d.nets.size(), 3u);
    EXPECT_EQ(d.nets.front(), d.nets.back());
    EXPECT_NE(std::find(d.nets.begin(), d.nets.end(), "x"), d.nets.end());
    EXPECT_NE(std::find(d.nets.begin(), d.nets.end(), "y"), d.nets.end());
    // The message spells the path out for humans too.
    EXPECT_NE(d.message.find("x -> y -> x"), std::string::npos) << d.message;
}

TEST(NetlistLint, SelfLoopIsACombLoop) {
    const Report report = runNetlistSource("input a\nand x x a\noutput o x\n");
    const Diagnostic& d = only(report, "G5R-COMB-LOOP");
    EXPECT_EQ(d.severity, Severity::kError);
    ASSERT_EQ(d.nets.size(), 2u);
    EXPECT_EQ(d.nets[0], "x");
    EXPECT_EQ(d.nets[1], "x");
}

TEST(NetlistLint, LongerLoopListsAllMembers) {
    const Report report = runNetlistSource(R"(
        input i
        and a c i
        and b a i
        and c b i
        output o a
    )");
    const Diagnostic& d = only(report, "G5R-COMB-LOOP");
    ASSERT_EQ(d.nets.size(), 4u);  // a -> b -> c -> a (closed).
    for (const char* net : {"a", "b", "c"}) {
        EXPECT_NE(std::find(d.nets.begin(), d.nets.end(), net), d.nets.end())
            << net << " missing from cycle path";
    }
}

TEST(NetlistLint, SequentialLoopThroughRegIsLegal) {
    const Report report = runNetlistSource("reg r inv 0\nnot inv r\noutput o r\n");
    EXPECT_TRUE(report.byRule("G5R-COMB-LOOP").empty());
    EXPECT_FALSE(report.hasErrors());
}

TEST(NetlistLint, MultiDriver) {
    const Report report = runNetlistSource(R"(
        input a
        input b
        and x a b
        or x a b
        output o x
    )");
    const Diagnostic& d = only(report, "G5R-MULTI-DRIVER");
    EXPECT_EQ(d.severity, Severity::kError);
    ASSERT_EQ(d.nets.size(), 1u);
    EXPECT_EQ(d.nets[0], "x");
    EXPECT_EQ(d.loc.line, 5u);  // The redefinition, not the first driver.
    EXPECT_NE(d.message.find("line 4"), std::string::npos) << d.message;
}

TEST(NetlistLint, UndrivenOperands) {
    const Report report = runNetlistSource("and y a b\noutput o y\n");
    const auto undriven = report.byRule("G5R-UNDRIVEN");
    ASSERT_EQ(undriven.size(), 2u);
    EXPECT_EQ(undriven[0]->severity, Severity::kError);
    EXPECT_EQ(undriven[0]->nets, std::vector<std::string>{"a"});
    EXPECT_EQ(undriven[1]->nets, std::vector<std::string>{"b"});
}

TEST(NetlistLint, UndrivenOutputTarget) {
    const Report report = runNetlistSource("input a\noutput o nowhere\n");
    const auto undriven = report.byRule("G5R-UNDRIVEN");
    ASSERT_EQ(undriven.size(), 1u);
    EXPECT_EQ(undriven[0]->nets, std::vector<std::string>{"nowhere"});
}

TEST(NetlistLint, FloatingInput) {
    const Report report = runNetlistSource(R"(
        input a
        input unused
        not y a
        output o y
    )");
    const Diagnostic& d = only(report, "G5R-FLOATING-INPUT");
    EXPECT_EQ(d.severity, Severity::kWarning);
    EXPECT_EQ(d.nets, std::vector<std::string>{"unused"});
    EXPECT_FALSE(report.hasErrors());  // Warnings only.
}

TEST(NetlistLint, FloatingNet) {
    const Report report = runNetlistSource(R"(
        input a
        not y a
        not z a
        output o y
    )");
    const Diagnostic& d = only(report, "G5R-FLOATING-NET");
    EXPECT_EQ(d.severity, Severity::kWarning);
    EXPECT_EQ(d.nets, std::vector<std::string>{"z"});
}

TEST(NetlistLint, DeadConeListsEveryUnreachableNet) {
    // y and z form a cone that reaches no output; a feeds only that cone.
    const Report report = runNetlistSource(R"(
        input a
        input b
        and y a b
        xor z y b
        output o b
    )");
    const Diagnostic& d = only(report, "G5R-DEAD-CONE");
    EXPECT_EQ(d.severity, Severity::kWarning);
    EXPECT_EQ(d.nets, (std::vector<std::string>{"a", "y", "z"}));
}

TEST(NetlistLint, DeadConeSeesThroughRegisters) {
    // Logic feeding a reg that feeds an output is alive, not dead.
    const Report report = runNetlistSource(R"(
        input in
        add next acc in
        reg acc next 0
        output sum acc
    )");
    EXPECT_TRUE(report.byRule("G5R-DEAD-CONE").empty());
    EXPECT_TRUE(report.empty()) << "accumulator should lint clean";
}

TEST(NetlistLint, WidthTruncation) {
    const Report report = runNetlistSource(R"(
        input a 32
        input b 32
        add s a b 8
        output o s
    )");
    const Diagnostic& d = only(report, "G5R-WIDTH-TRUNC");
    EXPECT_EQ(d.severity, Severity::kWarning);
    EXPECT_EQ(d.nets, std::vector<std::string>{"s"});
    EXPECT_TRUE(report.byRule("G5R-WIDTH-MISMATCH").empty());
}

TEST(NetlistLint, WidthMismatch) {
    const Report report = runNetlistSource(R"(
        input a 32
        input b 16
        add s a b
        output o s
    )");
    const Diagnostic& d = only(report, "G5R-WIDTH-MISMATCH");
    EXPECT_EQ(d.severity, Severity::kWarning);
    EXPECT_EQ(d.nets, (std::vector<std::string>{"s", "a", "b"}));
    EXPECT_TRUE(report.byRule("G5R-WIDTH-TRUNC").empty());  // s is 64 bits.
}

TEST(NetlistLint, MuxSelectWiderThanOneBit) {
    const Report report = runNetlistSource(R"(
        input sel 2
        input a
        input b
        mux m sel a b
        output o m
    )");
    const Diagnostic& d = only(report, "G5R-WIDTH-MISMATCH");
    EXPECT_EQ(d.nets, (std::vector<std::string>{"m", "sel"}));
}

TEST(NetlistLint, NoOutput) {
    const Report report = runNetlistSource("input a\nreg r a\n");
    EXPECT_FALSE(report.byRule("G5R-NO-OUTPUT").empty());
}

TEST(NetlistLint, SyntaxErrors) {
    const Report report = runNetlistSource("frobnicate x a\nconst c notanumber\n");
    const auto syntax = report.byRule("G5R-SYNTAX");
    ASSERT_EQ(syntax.size(), 2u);
    EXPECT_EQ(syntax[0]->severity, Severity::kError);
    EXPECT_EQ(syntax[0]->loc.line, 1u);
    EXPECT_EQ(syntax[1]->loc.line, 2u);
}

TEST(NetlistLint, BitonicSorterIsClean) {
    // The acceptance gate: zero findings — not merely zero errors — on the
    // generated 8-lane sorter.
    const Report report = runNetlistSource(rtl::bitonicSorterNetlist(8));
    EXPECT_TRUE(report.empty()) << [&] {
        std::ostringstream os;
        emitText(report, os);
        return os.str();
    }();
}

TEST(NetlistLint, SourceLocationsCarryTheFileName) {
    const Report report = runNetlistSource("and y a b\n", "designs/adder.nl");
    ASSERT_FALSE(report.empty());
    EXPECT_EQ(report.diagnostics().front().loc.file, "designs/adder.nl");
    const std::string text = formatDiagnostic(report.diagnostics().front());
    EXPECT_NE(text.find("designs/adder.nl:1:"), std::string::npos) << text;
}

// --- semantic rules (value-range / cone analysis) ---------------------------

TEST(NetlistLint, ProvablyBenignTruncationIsSilent) {
    // a & 3 <= 3 always fits 8 bits: structurally a truncation (16 -> 8),
    // semantically proven harmless.
    const Report report = runNetlistSource(R"(
        input a 16
        const three 3 16
        and masked a three 8
        output o masked
    )");
    EXPECT_TRUE(report.byRule("G5R-WIDTH-TRUNC").empty());
    EXPECT_TRUE(report.byRule("G5R-TRUNC-LOSS").empty());
    EXPECT_TRUE(report.empty());
}

TEST(NetlistLint, ProvenLossTruncationUpgradesToTruncLoss) {
    const Report report = runNetlistSource(R"(
        input a 16
        const h 256 16
        or t a h 16
        add s t h 8
        output o s
    )");
    const Diagnostic& d = only(report, "G5R-TRUNC-LOSS");
    EXPECT_EQ(d.severity, Severity::kWarning);
    EXPECT_EQ(d.nets, std::vector<std::string>{"s"});
    // The range evidence is spelled out for the user.
    EXPECT_NE(d.message.find("[512, "), std::string::npos) << d.message;
    EXPECT_TRUE(report.byRule("G5R-WIDTH-TRUNC").empty());
}

TEST(NetlistLint, PossibleTruncationKeepsWidthTruncWithRangeEvidence) {
    const Report report = runNetlistSource(R"(
        input a 32
        input b 32
        add s a b 8
        output o s
    )");
    const Diagnostic& d = only(report, "G5R-WIDTH-TRUNC");
    EXPECT_NE(d.message.find("value range"), std::string::npos) << d.message;
    EXPECT_TRUE(report.byRule("G5R-TRUNC-LOSS").empty());
}

TEST(NetlistLint, ConstNetFiresOnConstDrivenCone) {
    const Report report = runNetlistSource(R"(
        input data 8
        const zero 0 8
        and gated data zero 8
        or out gated data 8
        output o out
    )");
    const Diagnostic& d = only(report, "G5R-CONST-NET");
    EXPECT_EQ(d.severity, Severity::kWarning);
    EXPECT_EQ(d.nets, std::vector<std::string>{"gated"});
    EXPECT_NE(d.message.find("constant 0"), std::string::npos) << d.message;
    // Declared constants themselves never fire the rule.
    EXPECT_EQ(report.byRule("G5R-CONST-NET").size(), 1u);
}

TEST(NetlistLint, ConstNetFiresOnStuckRegister) {
    const Report report = runNetlistSource(R"(
        reg r r 7 8
        output o r
    )");
    const Diagnostic& d = only(report, "G5R-CONST-NET");
    EXPECT_EQ(d.nets, std::vector<std::string>{"r"});
    EXPECT_NE(d.message.find("stuck at 7"), std::string::npos) << d.message;
}

TEST(NetlistLint, FreeRunningCounterIsNotStuck) {
    const Report report = runNetlistSource(R"(
        const one 1 8
        add next acc one 8
        reg acc next 0 8
        output sum acc
    )");
    EXPECT_TRUE(report.byRule("G5R-CONST-NET").empty());
}

TEST(NetlistLint, ConstCompareFiresWithPolarity) {
    const Report report = runNetlistSource(R"(
        input a 4
        const c 16 8
        ltu always a c
        eq  never a c
        mux m always a a 4
        mux n never a a 4
        or  o m n 4
        output out o
    )");
    const auto compares = report.byRule("G5R-CONST-COMPARE");
    ASSERT_EQ(compares.size(), 2u);
    EXPECT_NE(compares[0]->message.find("always true"), std::string::npos)
        << compares[0]->message;
    EXPECT_NE(compares[1]->message.find("always false"), std::string::npos)
        << compares[1]->message;
    // Decided compares are reported as compares, not as constant nets.
    EXPECT_TRUE(report.byRule("G5R-CONST-NET").empty());
}

TEST(NetlistLint, UndecidableCompareIsSilent) {
    const Report report = runNetlistSource(R"(
        input a 8
        input b 8
        ltu t a b
        mux m t a b 8
        output o m
    )");
    EXPECT_TRUE(report.byRule("G5R-CONST-COMPARE").empty());
    EXPECT_TRUE(report.empty());
}

TEST(NetlistLint, DupConeReportsEveryClassMember) {
    const Report report = runNetlistSource(R"(
        input a
        input b
        and x a b
        and y b a
        or o x y
        output sum o
    )");
    const Diagnostic& d = only(report, "G5R-DUP-CONE");
    EXPECT_EQ(d.severity, Severity::kWarning);
    EXPECT_EQ(d.nets, (std::vector<std::string>{"x", "y"}));
    EXPECT_NE(d.message.find("'x' is duplicated by 'y'"), std::string::npos)
        << d.message;
}

TEST(NetlistLint, DistinctConesDoNotFireDupCone) {
    const Report report = runNetlistSource(R"(
        input a
        input b
        input c
        and x a b
        and y a c
        or o x y
        output sum o
    )");
    EXPECT_TRUE(report.byRule("G5R-DUP-CONE").empty());
    EXPECT_TRUE(report.empty());
}

TEST(NetlistLint, DeepLogicFiresPastTheConfiguredBudget) {
    std::ostringstream src;
    src << "input a\n";
    std::string prev = "a";
    for (int i = 0; i < 6; ++i) {
        src << "not n" << i << ' ' << prev << "\n";
        prev = "n" + std::to_string(i);
    }
    src << "output o " << prev << "\n";

    NetlistLintOptions tight;
    tight.maxLogicDepth = 4;
    const Report deep = runNetlistSource(src.str(), "", tight);
    const Diagnostic& d = only(deep, "G5R-DEEP-LOGIC");
    EXPECT_EQ(d.severity, Severity::kWarning);
    EXPECT_EQ(d.nets, std::vector<std::string>{"n5"});  // Critical-path end.
    EXPECT_NE(d.message.find("depth is 6"), std::string::npos) << d.message;

    // Default budget (64) tolerates the same chain.
    EXPECT_TRUE(runNetlistSource(src.str()).byRule("G5R-DEEP-LOGIC").empty());
}

TEST(NetlistLint, SocNetlistsPassTheZeroFindingsGate) {
    // The netlist designs the SoC actually instantiates (the bitonic model's
    // default n=16 and the test size n=8) must stay free of every rule in
    // the registry — semantic rules included.
    for (const unsigned n : {8u, 16u}) {
        const Report report = runNetlistSource(rtl::bitonicSorterNetlist(n));
        EXPECT_TRUE(report.empty()) << "bitonic n=" << n << ":\n" << [&] {
            std::ostringstream os;
            emitText(report, os);
            return os.str();
        }();
    }
}

// --- strict elaboration -----------------------------------------------------

TEST(NetlistStrict, ConstructorThrowsWithFullCyclePath) {
    try {
        rtl::Netlist nl{"not a b\nnot b a\noutput o a\n"};
        FAIL() << "expected NetlistError";
    } catch (const rtl::NetlistError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("G5R-COMB-LOOP"), std::string::npos) << what;
        EXPECT_NE(what.find("a -> b -> a"), std::string::npos) << what;
    }
}

TEST(NetlistStrict, WarningsDoNotBlockElaboration) {
    // Floating nets and dead cones are warnings; the design still builds.
    rtl::Netlist nl{"input a\nnot y a\nnot z a\noutput o y\n"};
    nl.setInput("a", 1);
    nl.eval();
    EXPECT_EQ(nl.output("o"), ~std::uint64_t{1});
}

TEST(NetlistStrict, ExplicitWidthsMaskValues) {
    rtl::Netlist nl{"input a 16\nadd s a a 8\noutput o s\n"};
    nl.setInput("a", 0xFF);
    nl.eval();
    EXPECT_EQ(nl.output("o"), 0xFEu);  // (0xFF + 0xFF) masked to 8 bits.
}

TEST(NetlistStrict, GraphAccessorSupportsRelint) {
    const rtl::Netlist nl{rtl::bitonicSorterNetlist(4)};
    EXPECT_TRUE(run(nl).empty());
    EXPECT_EQ(nl.graph().nodes.size(), nl.numNodes());
}

}  // namespace
}  // namespace g5r::lint
