// Flight recorder: sidecar round trip through Recording::load, byte-identical
// recordings at any --jobs count (the determinism contract g5r-diff rests
// on; TSan covers the data-race side), black-box ring behavior, and the
// panic-time black-box dump.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/record_harness.hh"
#include "exp/runner.hh"
#include "obs/diff.hh"
#include "obs/recorder.hh"
#include "obs/recording.hh"

namespace g5r::obs {
namespace {

std::string slurp(const std::string& path) {
    std::ifstream in{path};
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

ObsOptions recordOpts(const std::string& path, Tick intervalTicks = 2'000) {
    ObsOptions o;
    o.recordEnabled = true;
    o.recordPath = path;
    o.recordIntervalTicks = intervalTicks;
    return o;
}

TEST(Recorder, SidecarRoundTripsThroughRecordingLoad) {
    const std::string path = ::testing::TempDir() + "/rec_roundtrip.g5rec";
    testing::RecordHarness h{recordOpts(path), "rec_roundtrip"};
    ASSERT_NE(h.session, nullptr);
    ASSERT_NE(h.session->recorder(), nullptr);
    ASSERT_TRUE(h.session->recorder()->ok());
    h.runReads(16);

    const Recording rec = Recording::load(path);
    EXPECT_EQ(rec.runLabel, "rec_roundtrip");
    EXPECT_EQ(rec.intervalTicks, 2'000u);
    EXPECT_TRUE(rec.hasEnd);
    EXPECT_GT(rec.finalTick, 0u);
    EXPECT_EQ(rec.totalDispatches, h.sim.eventQueue().numProcessed());
    EXPECT_GT(rec.totalPackets, 0u);
    ASSERT_FALSE(rec.intervals.empty());

    // The last interval's cumulative digests are the run's final digests.
    const IntervalRecord& last = rec.intervals.back();
    EXPECT_EQ(last.cumDispatchDigest, rec.finalDispatchDigest);
    EXPECT_EQ(last.cumPacketDigest, rec.finalPacketDigest);

    // Interval counts partition the totals.
    std::uint64_t dispatches = 0, packets = 0;
    for (const IntervalRecord& iv : rec.intervals) {
        dispatches += iv.dispatchCount;
        packets += iv.packetCount;
        // Per-object rows partition the interval's dispatch count.
        std::uint64_t byObject = 0;
        for (const ObjEntry& ob : iv.objects) byObject += ob.count;
        EXPECT_EQ(byObject, iv.dispatchCount);
    }
    EXPECT_EQ(dispatches, rec.totalDispatches);
    EXPECT_EQ(packets, rec.totalPackets);

    // The name table covers the objects that dispatched.
    EXPECT_EQ(rec.objectName(0), "(unattributed)");
    bool sawMem = false, sawCpu = false;
    for (const std::string& name : rec.objectNames) {
        sawMem = sawMem || name == "system.mem0";
        sawCpu = sawCpu || name == "system.cpu0";
    }
    EXPECT_TRUE(sawMem);
    EXPECT_TRUE(sawCpu);
    std::remove(path.c_str());
}

// The determinism contract: identical runs produce byte-identical .g5rec
// files whether the sweep ran on one thread or four. Under TSan this doubles
// as the recorder's thread-safety audit (sessions share nothing, but the
// panic-hook registry and slot allocation paths all execute concurrently).
TEST(Recorder, RecordingsAreByteIdenticalAcrossRunnerJobs) {
    constexpr int kRuns = 4;
    const auto makeTasks = [](const std::string& tag) {
        std::vector<exp::Task<std::string>> tasks;
        for (int t = 0; t < kRuns; ++t) {
            const std::string path =
                ::testing::TempDir() + "/rec_" + tag + "_" + std::to_string(t) + ".g5rec";
            tasks.push_back(exp::Task<std::string>{
                "rec/" + tag + std::to_string(t), [t, path] {
                    testing::RecordHarness h{recordOpts(path),
                                             "rec_run" + std::to_string(t)};
                    h.runReads(8 + 2 * t);
                    return path;
                }});
        }
        return tasks;
    };

    const auto serial = exp::runTasks(makeTasks("j1"), 1);
    const auto parallel = exp::runTasks(makeTasks("j4"), 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (int t = 0; t < kRuns; ++t) {
        SCOPED_TRACE("run " + std::to_string(t));
        ASSERT_TRUE(serial[static_cast<std::size_t>(t)].ok);
        ASSERT_TRUE(parallel[static_cast<std::size_t>(t)].ok);
        const std::string& pathS = serial[static_cast<std::size_t>(t)].value;
        const std::string& pathP = parallel[static_cast<std::size_t>(t)].value;
        const std::string bytesS = slurp(pathS);
        const std::string bytesP = slurp(pathP);
        ASSERT_FALSE(bytesS.empty());
        if (bytesS != bytesP) {
            const DivergenceReport rep = diffRecordingFiles(pathS, pathP);
            ADD_FAILURE() << "jobs-1 and jobs-4 recordings differ:\n"
                          << formatDivergenceReport(rep, "jobs1", "jobs4");
        }
        std::remove(pathS.c_str());
        std::remove(pathP.c_str());
    }
}

TEST(Recorder, BlackBoxRingKeepsOnlyNewestEntries) {
    const std::string path = ::testing::TempDir() + "/rec_ring.g5rec";
    ObsOptions opts = recordOpts(path);
    opts.blackBoxDepth = 4;
    testing::RecordHarness h{opts, "rec_ring"};
    h.runReads(8);

    const Recording rec = Recording::load(path);
    const std::uint64_t pushed = rec.totalDispatches + rec.totalPackets;
    ASSERT_GT(pushed, 4u);  // Enough traffic to wrap the ring.
    ASSERT_EQ(rec.blackBox.size(), 4u);
    // Oldest first, consecutive, and ending at the very last recorded event.
    for (std::size_t i = 1; i < rec.blackBox.size(); ++i) {
        EXPECT_EQ(rec.blackBox[i].seq, rec.blackBox[i - 1].seq + 1);
    }
    EXPECT_EQ(rec.blackBox.back().seq, pushed);  // seq counts from 1.
    std::remove(path.c_str());
}

TEST(Recorder, UnopenablePathDegradesToBlackBoxOnly) {
    Recorder rec{"/nonexistent-g5r-dir/out.g5rec", "degraded", 1'000, 8};
    EXPECT_FALSE(rec.ok());
    rec.noteObjectName(1, "system.dev");
    rec.recordDispatch(5, 1, "system.dev.ev", digestOf("system.dev.ev"));
    rec.recordPacket(7, 1, 'I', 42, 0x100, 64, true);
    rec.finish(10);  // Must not crash with no file behind it.
    const std::string report = rec.blackBoxReport();
    EXPECT_NE(report.find("system.dev.ev"), std::string::npos);
    EXPECT_NE(report.find("issue id=42"), std::string::npos);
}

// The "black box" promise: panic() dumps the last K events to stderr, after
// the panic message itself, so a crash report always carries the event
// neighborhood.
TEST(RecorderDeath, PanicDumpsBlackBoxAfterPanicMessage) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const std::string path = ::testing::TempDir() + "/rec_panic.g5rec";
    const auto crash = [&path] {
        Recorder rec{path, "panic-run", 1'000, 8};
        rec.noteObjectName(1, "system.dev");
        rec.recordDispatch(5, 1, "system.dev.ev", digestOf("system.dev.ev"));
        panic("recorder black box check");
    };
    EXPECT_DEATH(crash(),
                 "panic: recorder black box check(.|\n)*black box \\[panic-run\\]"
                 "(.|\n)*dispatch \\[system\\.dev\\] system\\.dev\\.ev");
}

}  // namespace
}  // namespace g5r::obs
