// ObsSession end-to-end: span/dispatch round trip, packet flows, profiling
// attribution, parallel sessions, and the CI trace-validation entry point.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/json.hh"
#include "mem/simple_mem.hh"
#include "obs/session.hh"
#include "sim/simulation.hh"

namespace g5r::obs {
namespace {

std::string slurp(const std::string& path) {
    std::ifstream in{path};
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::size_t countPh(const exp::Json& doc, const std::string& ph) {
    std::size_t n = 0;
    for (const auto& ev : doc.at("traceEvents").items()) {
        if (ev.at("ph").asString() == ph) ++n;
    }
    return n;
}

// A requester that discards each response inside the receiving dispatch, so
// the packet's flow reaches its "f" (completed) event while the observer is
// still installed — matching how the SoC's masters consume responses.
class DroppingRequester : public SimObject {
public:
    DroppingRequester(Simulation& sim, std::string name)
        : SimObject(sim, std::move(name)),
          port_(this->name() + ".port", *this),
          issueEvent_([this] { issuePending(); }, this->name() + ".issue") {}

    RequestPort& port() { return port_; }

    void issueAt(Tick when, PacketPtr pkt) {
        sendQueue_.push_back(std::move(pkt));
        if (!issueEvent_.scheduled()) {
            eventQueue().schedule(issueEvent_, std::max(when, curTick()));
        }
    }

    std::size_t numResponses() const { return numResponses_; }

private:
    class Port final : public RequestPort {
    public:
        Port(std::string portName, DroppingRequester& owner)
            : RequestPort(std::move(portName)), owner_(owner) {}
        bool recvTimingResp(PacketPtr& pkt) override {
            pkt.reset();  // Packet dies here -> flow "f" lands in this span.
            ++owner_.numResponses_;
            return true;
        }
        void recvReqRetry() override {
            owner_.blocked_ = false;
            owner_.issuePending();
        }

    private:
        DroppingRequester& owner_;
    };

    void issuePending() {
        while (!blocked_ && !sendQueue_.empty()) {
            if (!port_.sendTimingReq(sendQueue_.front())) {
                blocked_ = true;
                return;
            }
            sendQueue_.pop_front();
        }
    }

    Port port_;
    CallbackEvent issueEvent_;
    std::deque<PacketPtr> sendQueue_;
    std::size_t numResponses_ = 0;
    bool blocked_ = false;
};

// One requester talking to one memory, with an ObsSession attached.
struct Harness {
    explicit Harness(const ObsOptions& opts, std::string_view runName) {
        SimpleMemory::Params p;
        p.range = AddrRange{0, 1ULL << 20};
        p.latency = 10'000;
        mem = std::make_unique<SimpleMemory>(sim, "system.mem0", p, store);
        req = std::make_unique<DroppingRequester>(sim, "system.cpu0");
        req->port().bind(mem->port());
        session = ObsSession::create(sim, opts, runName);
    }

    Simulation sim;
    BackingStore store;
    std::unique_ptr<SimpleMemory> mem;
    std::unique_ptr<DroppingRequester> req;
    std::unique_ptr<ObsSession> session;
};

ObsOptions traceOpts() {
    ObsOptions o;
    o.traceEnabled = true;
    o.traceDir = ::testing::TempDir();
    return o;
}

TEST(ObsSession, NothingEnabledYieldsNoSession) {
    Simulation sim;
    EXPECT_EQ(ObsSession::create(sim, ObsOptions{}, "off"), nullptr);
    EXPECT_EQ(sim.observer(), nullptr);
}

// The acceptance round trip: one "X" span per dispatched event, verified
// against the event queue's own count by re-parsing the emitted JSON.
TEST(ObsSession, SpanCountMatchesDispatchCount) {
    Harness h{traceOpts(), "session_spans"};
    ASSERT_NE(h.session, nullptr);
    ASSERT_NE(h.session->trace(), nullptr);
    ASSERT_TRUE(h.session->trace()->ok());
    for (int i = 0; i < 16; ++i) h.req->issueAt(0, makeReadPacket(0x100 + 64 * i, 64));
    h.sim.run();
    h.session->finish();

    const std::uint64_t dispatched = h.sim.eventQueue().numProcessed();
    EXPECT_GT(dispatched, 0u);
    EXPECT_EQ(h.session->trace()->spansWritten(), dispatched);

    const exp::Json doc = exp::Json::parse(slurp(h.session->trace()->path()));
    EXPECT_EQ(countPh(doc, "X"), dispatched);
    std::remove(h.session->trace()->path().c_str());
}

TEST(ObsSession, PacketFlowsBeginAndEndInBalance) {
    Harness h{traceOpts(), "session_flows"};
    constexpr int kReads = 12;
    for (int i = 0; i < kReads; ++i) h.req->issueAt(0, makeReadPacket(64 * i, 64));
    h.sim.run();
    h.session->finish();
    EXPECT_EQ(h.req->numResponses(), kReads);

    const exp::Json doc = exp::Json::parse(slurp(h.session->trace()->path()));
    EXPECT_EQ(countPh(doc, "s"), kReads);  // One flow per tracked request...
    EXPECT_EQ(countPh(doc, "f"), kReads);  // ...and every flow terminates.
    std::remove(h.session->trace()->path().c_str());
}

TEST(ObsSession, CountersSampleOnSimulatedTimeInterval) {
    ObsOptions opts = traceOpts();
    opts.counterIntervalTicks = 1'000;
    Harness h{opts, "session_counters"};
    h.session->addCounter(*h.mem->statsGroup().find("numReads"));
    for (int i = 0; i < 8; ++i) h.req->issueAt(0, makeReadPacket(64 * i, 64));
    h.sim.run();
    h.session->finish();

    const exp::Json doc = exp::Json::parse(slurp(h.session->trace()->path()));
    bool sawCounter = false;
    for (const auto& ev : doc.at("traceEvents").items()) {
        if (ev.at("ph").asString() != "C") continue;
        sawCounter = true;
        EXPECT_EQ(ev.at("name").asString(), "system.mem0.numReads");
        EXPECT_TRUE(ev.at("args").contains("value"));
    }
    EXPECT_TRUE(sawCounter);
    std::remove(h.session->trace()->path().c_str());
}

TEST(ObsSession, TracksAreLabelledWithObjectNames) {
    Harness h{traceOpts(), "session_tracks"};
    h.req->issueAt(0, makeReadPacket(0x0, 64));
    h.sim.run();
    h.session->finish();

    const exp::Json doc = exp::Json::parse(slurp(h.session->trace()->path()));
    std::vector<std::string> names;
    for (const auto& ev : doc.at("traceEvents").items()) {
        if (ev.at("ph").asString() == "M") {
            names.push_back(ev.at("args").at("name").asString());
        }
    }
    // Slot 0 plus the two objects whose events dispatched.
    EXPECT_NE(std::find(names.begin(), names.end(), "system.mem0"), names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "system.cpu0"), names.end());
    std::remove(h.session->trace()->path().c_str());
}

TEST(ObsSession, ProfilerAttributesEveryDispatch) {
    ObsOptions opts;
    opts.profileEnabled = true;  // No trace: exercises the strided path too.
    opts.profileStride = 3;
    Harness h{opts, "session_profile"};
    ASSERT_NE(h.session, nullptr);
    EXPECT_TRUE(h.session->profiling());
    EXPECT_EQ(h.session->trace(), nullptr);
    for (int i = 0; i < 32; ++i) h.req->issueAt(0, makeReadPacket(64 * i, 64));
    h.sim.run();
    h.session->finish();

    const auto report = h.session->profileReport();
    ASSERT_NE(report, nullptr);
    EXPECT_EQ(report->dispatches, h.sim.eventQueue().numProcessed());
    EXPECT_EQ(report->stride, 3u);
    EXPECT_GT(report->runSeconds, 0.0);

    // Dispatch counts stay exact under striding, and every dispatch lands
    // in some entry (the memory and the requester, here).
    std::uint64_t attributed = 0;
    for (const auto& e : report->entries) {
        attributed += e.dispatches;
        EXPECT_LE(e.sampled, e.dispatches);
    }
    EXPECT_EQ(attributed, report->dispatches);

    // Buckets partition runSeconds.
    double total = 0.0;
    for (const auto& b : report->buckets()) total += b.seconds;
    EXPECT_NEAR(total, report->runSeconds, 1e-9);
}

// The --jobs N story: concurrent simulations, each with its own session,
// must produce one uncorrupted trace per run (TSan covers the data-race
// side; this covers file separation and well-formedness).
TEST(ObsSession, ParallelSessionsWriteDistinctValidTraces) {
    constexpr int kThreads = 3;
    std::vector<std::string> paths(kThreads);
    std::vector<std::uint64_t> dispatched(kThreads, 0);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &paths, &dispatched] {
            Harness h{traceOpts(), "session_par" + std::to_string(t)};
            for (int i = 0; i < 8 + 4 * t; ++i) {
                h.req->issueAt(0, makeReadPacket(64 * i, 64));
            }
            h.sim.run();
            h.session->finish();
            paths[static_cast<std::size_t>(t)] = h.session->trace()->path();
            dispatched[static_cast<std::size_t>(t)] = h.sim.eventQueue().numProcessed();
        });
    }
    for (auto& th : threads) th.join();

    for (int t = 0; t < kThreads; ++t) {
        SCOPED_TRACE("thread " + std::to_string(t));
        const exp::Json doc = exp::Json::parse(slurp(paths[static_cast<std::size_t>(t)]));
        EXPECT_EQ(countPh(doc, "X"), dispatched[static_cast<std::size_t>(t)]);
        std::remove(paths[static_cast<std::size_t>(t)].c_str());
    }
    // Each run got its own file.
    EXPECT_NE(paths[0], paths[1]);
    EXPECT_NE(paths[1], paths[2]);
}

TEST(ObsSession, DetachesFromSimulationOnDestruction) {
    Simulation sim;
    {
        auto session = ObsSession::create(sim, traceOpts(), "session_detach");
        ASSERT_NE(session, nullptr);
        EXPECT_EQ(sim.observer(), session.get());
        std::remove(session->trace()->path().c_str());
    }
    EXPECT_EQ(sim.observer(), nullptr);
}

// CI entry point: after running examples/obs_profile with GEM5RTL_TRACE,
// the workflow points G5R_TRACE_CHECK_FILE at the emitted trace and runs
// --gtest_filter=TraceCheck.*; locally (env unset) the check skips.
TEST(TraceCheck, EmittedTraceFileIsValid) {
    const char* path = std::getenv("G5R_TRACE_CHECK_FILE");
    if (path == nullptr || *path == '\0') {
        GTEST_SKIP() << "G5R_TRACE_CHECK_FILE not set";
    }
    const std::string text = slurp(path);
    ASSERT_FALSE(text.empty()) << "trace file missing or empty: " << path;
    exp::Json doc;
    ASSERT_NO_THROW(doc = exp::Json::parse(text)) << "trace is not valid JSON";
    ASSERT_TRUE(doc.contains("traceEvents"));
    ASSERT_TRUE(doc.at("traceEvents").isArray());
    EXPECT_GT(countPh(doc, "X"), 0u) << "no dispatch spans in trace";
    EXPECT_EQ(countPh(doc, "s"), countPh(doc, "f")) << "unbalanced packet flows";
    for (const auto& ev : doc.at("traceEvents").items()) {
        ASSERT_TRUE(ev.contains("ph"));
        ASSERT_TRUE(ev.contains("pid"));
    }
}

}  // namespace
}  // namespace g5r::obs
