// Trigger-windowed waveform capture: spec parsing, window boundary math
// (partial and full pre-trigger rings, exact post counts, zero windows),
// condition semantics, and the no-file-when-unfired guarantee.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trigger.hh"

namespace g5r::obs {
namespace {

std::string tempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
}

bool fileExists(const std::string& path) {
    return std::ifstream{path}.good();
}

// Timestamps dumped into a VCD, in order (the "#<cycle>" lines).
std::vector<std::uint64_t> vcdTimestamps(const std::string& path) {
    std::vector<std::uint64_t> out;
    std::ifstream in{path};
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] == '#') out.push_back(std::stoull(line.substr(1)));
    }
    return out;
}

// A two-signal test design: "top.counter" increments every cycle (so every
// dumped cycle has a change and therefore a timestamp), "top.flag" is the
// watched signal.
struct Design {
    std::uint64_t counter = 0;
    std::uint64_t flag = 0;

    std::vector<rtl::VcdSignal> signals() {
        return {rtl::VcdSignal{"top", "counter", 16, [this] { return counter; }},
                rtl::VcdSignal{"top", "flag", 1, [this] { return flag; }}};
    }
};

TEST(TriggerSpec, ParsesAllThreeKinds) {
    std::string error;
    auto eq = TriggerSpec::parse("flag==1", &error);
    ASSERT_TRUE(eq.has_value()) << error;
    EXPECT_EQ(eq->signal, "flag");
    EXPECT_EQ(eq->kind, TriggerSpec::Kind::kValueEquals);
    EXPECT_EQ(eq->value, 1u);
    EXPECT_EQ(eq->preTriggerCycles, 16u);  // Defaults.
    EXPECT_EQ(eq->postTriggerCycles, 64u);

    auto hexWindow = TriggerSpec::parse("top.counter==0x1f@8,32", &error);
    ASSERT_TRUE(hexWindow.has_value()) << error;
    EXPECT_EQ(hexWindow->signal, "top.counter");
    EXPECT_EQ(hexWindow->value, 0x1fu);
    EXPECT_EQ(hexWindow->preTriggerCycles, 8u);
    EXPECT_EQ(hexWindow->postTriggerCycles, 32u);

    auto change = TriggerSpec::parse("flag:change@0,0", &error);
    ASSERT_TRUE(change.has_value()) << error;
    EXPECT_EQ(change->kind, TriggerSpec::Kind::kAnyChange);
    EXPECT_EQ(change->preTriggerCycles, 0u);
    EXPECT_EQ(change->postTriggerCycles, 0u);

    auto rise = TriggerSpec::parse("irq:rise", &error);
    ASSERT_TRUE(rise.has_value()) << error;
    EXPECT_EQ(rise->kind, TriggerSpec::Kind::kRisingEdge);
    EXPECT_EQ(rise->signal, "irq");
}

TEST(TriggerSpec, RejectsMalformedSpecs) {
    for (const char* bad : {"", "flag", "flag==", "==5", "flag:bogus", "flag==5@8",
                            "flag==notanumber", ":rise"}) {
        SCOPED_TRACE(bad);
        std::string error;
        EXPECT_FALSE(TriggerSpec::parse(bad, &error).has_value());
        EXPECT_FALSE(error.empty());
    }
}

TEST(TriggerCapture, UnknownSignalIsReportedNotThrownThroughFactory) {
    Design d;
    std::string error;
    auto capture = TriggerCapture::fromSpecString("nosuch==1", tempPath("trig_unknown.vcd"),
                                                  d.signals(), 1000, &error);
    EXPECT_EQ(capture, nullptr);
    EXPECT_NE(error.find("nosuch"), std::string::npos);
}

TEST(TriggerCapture, NeverFiredTriggerWritesNoFile) {
    Design d;
    const std::string path = tempPath("trig_unfired.vcd");
    std::string error;
    auto capture = TriggerCapture::fromSpecString("flag==1@4,4", path, d.signals(),
                                                  1000, &error);
    ASSERT_NE(capture, nullptr) << error;
    for (std::uint64_t c = 0; c < 100; ++c) {
        d.counter = c;
        capture->cycle(c);
    }
    EXPECT_FALSE(capture->fired());
    EXPECT_FALSE(capture->done());
    EXPECT_TRUE(capture->active());  // Still armed: gating must not idle it off.
    EXPECT_FALSE(fileExists(path));
}

TEST(TriggerCapture, FullPreRingPlusFireAndPostWindow) {
    Design d;
    const std::string path = tempPath("trig_window.vcd");
    auto capture = TriggerCapture::fromSpecString("flag==1@4,3", path, d.signals());
    ASSERT_NE(capture, nullptr);
    for (std::uint64_t c = 0; c < 20; ++c) {
        d.counter = c;
        d.flag = c == 10 ? 1 : 0;
        capture->cycle(c);
        if (c == 9) EXPECT_FALSE(capture->fired());
    }
    EXPECT_TRUE(capture->fired());
    EXPECT_EQ(capture->firedCycle(), 10u);
    EXPECT_TRUE(capture->done());
    EXPECT_FALSE(capture->active());

    // Window = 4 pre (cycles 6..9) + the firing cycle + 3 post (11..13).
    const auto stamps = vcdTimestamps(path);
    const std::vector<std::uint64_t> expected{6, 7, 8, 9, 10, 11, 12, 13};
    EXPECT_EQ(stamps, expected);
    std::remove(path.c_str());
}

TEST(TriggerCapture, PartialPreRingWhenFiringEarly) {
    Design d;
    const std::string path = tempPath("trig_partial.vcd");
    auto capture = TriggerCapture::fromSpecString("flag==1@10,2", path, d.signals());
    ASSERT_NE(capture, nullptr);
    // Fires at cycle 2: only cycles 0 and 1 exist as pre-trigger history.
    for (std::uint64_t c = 0; c < 10; ++c) {
        d.counter = c;
        d.flag = c == 2 ? 1 : 0;
        capture->cycle(c);
    }
    const auto stamps = vcdTimestamps(path);
    const std::vector<std::uint64_t> expected{0, 1, 2, 3, 4};
    EXPECT_EQ(stamps, expected);
    std::remove(path.c_str());
}

TEST(TriggerCapture, ZeroPostWindowClosesOnTheFiringCycle) {
    Design d;
    const std::string path = tempPath("trig_zeropost.vcd");
    auto capture = TriggerCapture::fromSpecString("flag==1@2,0", path, d.signals());
    ASSERT_NE(capture, nullptr);
    for (std::uint64_t c = 0; c < 8; ++c) {
        d.counter = c;
        d.flag = c == 5 ? 1 : 0;
        capture->cycle(c);
        if (c == 5) EXPECT_TRUE(capture->done());  // Closed immediately.
    }
    const auto stamps = vcdTimestamps(path);
    const std::vector<std::uint64_t> expected{3, 4, 5};
    EXPECT_EQ(stamps, expected);
    std::remove(path.c_str());
}

TEST(TriggerCapture, RisingEdgeNeedsAZeroBeforeTheOne) {
    // Signal held high from cycle 0: no 0 -> 1 transition, never fires.
    {
        Design d;
        d.flag = 1;
        const std::string path = tempPath("trig_rise_high.vcd");
        auto capture = TriggerCapture::fromSpecString("flag:rise@2,2", path, d.signals());
        ASSERT_NE(capture, nullptr);
        for (std::uint64_t c = 0; c < 10; ++c) {
            d.counter = c;
            capture->cycle(c);
        }
        EXPECT_FALSE(capture->fired());
        EXPECT_FALSE(fileExists(path));
    }
    // A genuine edge fires on the first non-zero cycle.
    {
        Design d;
        const std::string path = tempPath("trig_rise_edge.vcd");
        auto capture = TriggerCapture::fromSpecString("flag:rise@2,2", path, d.signals());
        ASSERT_NE(capture, nullptr);
        for (std::uint64_t c = 0; c < 10; ++c) {
            d.counter = c;
            d.flag = c >= 6 ? 1 : 0;
            capture->cycle(c);
        }
        EXPECT_TRUE(capture->fired());
        EXPECT_EQ(capture->firedCycle(), 6u);
        std::remove(path.c_str());
    }
}

TEST(TriggerCapture, AnyChangeFiresOnValueChangeNotOnFirstSample) {
    Design d;
    d.counter = 7;
    const std::string path = tempPath("trig_change.vcd");
    // Watch the counter itself; hold it steady, then change it once.
    auto capture = TriggerCapture::fromSpecString("top.counter:change@1,1", path,
                                                  d.signals());
    ASSERT_NE(capture, nullptr);
    for (std::uint64_t c = 0; c < 4; ++c) capture->cycle(c);  // Steady: no fire.
    EXPECT_FALSE(capture->fired());
    d.counter = 8;
    capture->cycle(4);
    EXPECT_TRUE(capture->fired());
    EXPECT_EQ(capture->firedCycle(), 4u);
    capture->cycle(5);
    EXPECT_TRUE(capture->done());
    std::remove(path.c_str());
}

}  // namespace
}  // namespace g5r::obs
