// Request-level causal tracing: sidecar format round-trip, the
// sums-to-100% blame invariant, overlap precedence, in-memory mode, the
// g5r-critpath CLI, and the ObsOptions environment overlay (including the
// combined multi-variable precedence case).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/json.hh"
#include "obs/critpath_cli.hh"
#include "obs/options.hh"
#include "obs/reqtrace.hh"

namespace g5r::obs {
namespace {

[[maybe_unused]] std::string slurp(const std::string& path) {
    std::ifstream in{path};
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/// A small but representative tree: one root job with a DMA child, spans
/// overlapping across stages, reported deliberately out of order.
void populate(ReqTraceSession& session) {
    session.onBegin(7, 3, "dmaPrefetch", 1'000);        // Child arrives first.
    session.onSpan(7, ReqStage::kDmaStage, 1'000, 5'000);
    session.onBegin(3, 0, "nvdlaJob", 0);
    session.onSpan(3, ReqStage::kRtlCompute, 5'000, 9'000);
    session.onSpan(3, ReqStage::kDramService, 6'000, 8'000);
    session.onSpan(3, ReqStage::kHostLoad, 0, 1'000);
    session.onEnd(3, 10'000);
    session.onEnd(7, 5'000);
    session.onSpan(7, ReqStage::kDramService, 2'000, 4'000);
}

TEST(ReqTrace, SidecarRoundTrips) {
    const std::string path = ::testing::TempDir() + "/roundtrip.reqtrace.jsonl";
    {
        ReqTraceSession session{path, "unit"};
        populate(session);
        session.finish(12'345);
        ASSERT_TRUE(session.ok());
    }

    const ReqTraceFile file = readReqTrace(path);
    EXPECT_EQ(file.schema, ReqTraceSession::kSchema);
    EXPECT_EQ(file.run, "unit");
    EXPECT_EQ(file.endTick, 12'345u);
    EXPECT_EQ(file.declaredRequests, 2u);
    ASSERT_EQ(file.records.size(), 2u);

    const ReqRecord& job = file.records[0];
    EXPECT_EQ(job.id, 3u);
    EXPECT_EQ(job.parent, 0u);
    EXPECT_EQ(job.kind, "nvdlaJob");
    EXPECT_EQ(job.beginTick, 0u);
    EXPECT_TRUE(job.ended);
    EXPECT_EQ(job.endTick, 10'000u);
    ASSERT_EQ(job.spans.size(), 3u);
    // Canonical (begin, stage, end) order, delta decoding reversed exactly.
    EXPECT_EQ(job.spans[0].stage, ReqStage::kHostLoad);
    EXPECT_EQ(job.spans[0].begin, 0u);
    EXPECT_EQ(job.spans[0].end, 1'000u);
    EXPECT_EQ(job.spans[1].stage, ReqStage::kRtlCompute);
    EXPECT_EQ(job.spans[1].begin, 5'000u);
    EXPECT_EQ(job.spans[2].stage, ReqStage::kDramService);
    EXPECT_EQ(job.spans[2].end, 8'000u);

    const ReqRecord& dma = file.records[1];
    EXPECT_EQ(dma.id, 7u);
    EXPECT_EQ(dma.parent, 3u);
    EXPECT_EQ(dma.kind, "dmaPrefetch");
    ASSERT_EQ(dma.spans.size(), 2u);
    EXPECT_EQ(dma.spans[0].stage, ReqStage::kDmaStage);
    EXPECT_EQ(dma.spans[1].begin, 2'000u);
    std::remove(path.c_str());
}

TEST(ReqTrace, InMemoryModeWritesNoFile) {
    ReqTraceSession session{"", "inmem"};
    populate(session);
    session.finish(9'999);
    EXPECT_TRUE(session.ok());
    EXPECT_TRUE(session.path().empty());
    EXPECT_EQ(session.requestsRecorded(), 2u);
    // Records are canonical and analysable without any file.
    const BlameSummary blame = computeBlame(session.data());
    ASSERT_EQ(blame.roots.size(), 1u);
    EXPECT_EQ(blame.totalTicks, 10'000u);
}

TEST(ReqTrace, UnopenablePathDegrades) {
    ReqTraceSession session{"/nonexistent-g5r-dir/deep/x.reqtrace.jsonl", "bad"};
    populate(session);
    session.finish(1);
    EXPECT_FALSE(session.ok());
    EXPECT_EQ(session.requestsRecorded(), 2u);  // Data still collected.
}

TEST(ReqTrace, ZeroLengthAndUntaggedSpansAreDropped) {
    ReqTraceSession session{"", "edge"};
    session.onBegin(1, 0, "job", 0);
    session.onSpan(1, ReqStage::kDramService, 500, 500);  // Empty.
    session.onSpan(1, ReqStage::kDramService, 700, 600);  // Inverted.
    session.onSpan(0, ReqStage::kDramService, 0, 100);    // Untagged id 0.
    session.onEnd(1, 1'000);
    session.finish(1'000);
    ASSERT_EQ(session.data().size(), 1u);
    EXPECT_TRUE(session.data()[0].spans.empty());
}

TEST(ReqTrace, BlameSumsTo100PercentPerRoot) {
    ReqTraceSession session{"", "sum"};
    populate(session);
    session.finish(10'000);
    const BlameSummary blame = computeBlame(session.data());
    ASSERT_EQ(blame.roots.size(), 1u);
    const RequestBlame& root = blame.roots[0];
    Tick sum = root.unattributed;
    for (const Tick t : root.stageTicks) sum += t;
    EXPECT_EQ(sum, root.total());
    Tick aggregate = blame.unattributed;
    for (const Tick t : blame.stageTicks) aggregate += t;
    EXPECT_EQ(aggregate, blame.totalTicks);
}

TEST(ReqTrace, OverlapPrecedenceAndChildAttribution) {
    ReqTraceSession session{"", "prec"};
    populate(session);
    session.finish(10'000);
    const BlameSummary blame = computeBlame(session.data());
    const RequestBlame& root = blame.roots[0];

    const auto ticks = [&root](ReqStage s) {
        return root.stageTicks[static_cast<std::size_t>(s)];
    };
    // [0,1000) hostLoad; [1000,5000) the child's dmaStage span owns the
    // staging window outright — the DRAM service of its own traffic
    // ([2000,4000)) is subsumed, not double-counted.
    EXPECT_EQ(ticks(ReqStage::kHostLoad), 1'000u);
    EXPECT_EQ(ticks(ReqStage::kDmaStage), 4'000u);
    // [5000,9000) rtlCompute, except [6000,8000) where the root's own DRAM
    // span outranks it.
    EXPECT_EQ(ticks(ReqStage::kRtlCompute), 2'000u);
    EXPECT_EQ(ticks(ReqStage::kDramService), 2'000u);
    // [9000,10000) nothing is open.
    EXPECT_EQ(root.unattributed, 1'000u);
    EXPECT_EQ(root.total(), 10'000u);
}

TEST(ReqTrace, EffectiveEndCoversLateChildren) {
    // The job ends at 1000 but its drain child works until 4000: the blame
    // window stretches to the last subtree activity.
    ReqTraceSession session{"", "drain"};
    session.onBegin(1, 0, "nvdlaJob", 0);
    session.onEnd(1, 1'000);
    session.onBegin(2, 1, "dmaDrain", 1'000);
    session.onSpan(2, ReqStage::kDrain, 1'000, 4'000);
    session.onEnd(2, 4'000);
    session.finish(4'000);
    const BlameSummary blame = computeBlame(session.data());
    ASSERT_EQ(blame.roots.size(), 1u);
    EXPECT_EQ(blame.roots[0].end, 4'000u);
    EXPECT_EQ(blame.roots[0].stageTicks[static_cast<std::size_t>(ReqStage::kDrain)],
              3'000u);
}

TEST(ReqTrace, NeverEndedRootUsesLastSpan) {
    ReqTraceSession session{"", "cut"};
    session.onBegin(1, 0, "job", 100);
    session.onSpan(1, ReqStage::kXbarQueue, 100, 600);
    session.finish(10'000);  // Run cut short: no requestEnd.
    const BlameSummary blame = computeBlame(session.data());
    ASSERT_EQ(blame.roots.size(), 1u);
    EXPECT_FALSE(session.data()[0].ended);
    EXPECT_EQ(blame.roots[0].end, 600u);
    EXPECT_EQ(blame.totalTicks, 500u);
}

TEST(ReqTrace, BlameReportJsonSharesSumTo100) {
    const std::string path = ::testing::TempDir() + "/shares.reqtrace.jsonl";
    {
        ReqTraceSession session{path, "shares"};
        populate(session);
        session.finish(10'000);
    }
    const ReqTraceFile file = readReqTrace(path);
    const BlameSummary blame = computeBlame(file.records);
    const exp::Json doc = blameReportJson(file, blame);
    double shareSum = 0;
    for (const auto& [stage, share] : doc.at("stageShares").members()) {
        shareSum += share.asDouble();
    }
    EXPECT_NEAR(shareSum, 100.0, 1e-9);
    EXPECT_EQ(doc.at("rootRequests").asInt(), 1);
    EXPECT_EQ(doc.at("totalTicks").asInt(), 10'000);
    std::remove(path.c_str());
}

TEST(ReqTrace, WaterfallRendersPrecedenceGlyphs) {
    ReqTraceSession session{"", "wf"};
    populate(session);
    session.finish(10'000);
    const BlameSummary blame = computeBlame(session.data());
    const std::string wf = renderWaterfall(session.data(), blame, 0, 20);
    // 20 columns over 10k ticks = 500 ticks/column: h h d d d d d d r r
    // r r m m m m r r . .
    EXPECT_NE(wf.find("hhdddddddd"), std::string::npos);
    EXPECT_NE(wf.find("mmmm"), std::string::npos);
    EXPECT_NE(wf.find(".."), std::string::npos);
    EXPECT_NE(wf.find("nvdlaJob"), std::string::npos);
    // Children are folded into their root, not printed as strips.
    EXPECT_EQ(wf.find("dmaPrefetch"), std::string::npos);
}

TEST(ReqTrace, CritpathCliExitCodes) {
    const std::string path = ::testing::TempDir() + "/cli.reqtrace.jsonl";
    {
        ReqTraceSession session{path, "cli"};
        populate(session);
        session.finish(10'000);
    }
    {
        const char* argv[] = {"g5r-critpath", "--assert-sum", path.c_str()};
        EXPECT_EQ(critpathCliMain(3, argv), 0);
    }
    {
        const char* argv[] = {"g5r-critpath", "--json", path.c_str()};
        EXPECT_EQ(critpathCliMain(3, argv), 0);
    }
    {
        const char* argv[] = {"g5r-critpath", "/no/such/file.reqtrace.jsonl"};
        EXPECT_EQ(critpathCliMain(2, argv), 2);
    }
    {
        const char* argv[] = {"g5r-critpath"};
        EXPECT_EQ(critpathCliMain(1, argv), 2);  // Usage.
    }
    {
        const char* argv[] = {"g5r-critpath", "--bogus", path.c_str()};
        EXPECT_EQ(critpathCliMain(3, argv), 2);
    }
    std::remove(path.c_str());
}

TEST(ReqTrace, OptionsComeFromEnvironment) {
    ::setenv("GEM5RTL_REQTRACE", "/tmp/reqtrace-out", 1);
    ObsOptions o = ObsOptions::fromEnv();
    EXPECT_TRUE(o.reqtraceEnabled);
    EXPECT_TRUE(o.anyEnabled());
    EXPECT_EQ(o.reqtraceDir, "/tmp/reqtrace-out");

    ::setenv("GEM5RTL_REQTRACE", "1", 1);
    o = ObsOptions::fromEnv();
    EXPECT_TRUE(o.reqtraceEnabled);
    EXPECT_EQ(o.reqtraceDir, ".");

    ::setenv("GEM5RTL_REQTRACE", "0", 1);
    o = ObsOptions::fromEnv();
    EXPECT_FALSE(o.reqtraceEnabled);

    ::unsetenv("GEM5RTL_REQTRACE");
    o = ObsOptions::fromEnv();
    EXPECT_FALSE(o.reqtraceEnabled);
}

TEST(ReqTrace, CombinedEnvOverlayPrecedence) {
    // The overlay contract: every GEM5RTL_* variable independently wins
    // over the programmatic SocConfig::obs base; untouched fields pass
    // through. Exercise all four sidecar families at once with deliberately
    // conflicting settings.
    ObsOptions base;
    base.traceEnabled = true;       // Env turns this OFF.
    base.traceDir = "/cfg/trace";
    base.metricsEnabled = false;    // Env turns this ON with its own dir.
    base.recordEnabled = true;      // Env doesn't mention it: base wins.
    base.recordDir = "/cfg/rec";
    base.reqtraceEnabled = false;   // Env turns this ON, dir form.
    base.reqtracePath = "-";        // Path is NOT env-controlled: survives.

    ::setenv("GEM5RTL_TRACE", "0", 1);
    ::setenv("GEM5RTL_METRICS", "/env/metrics", 1);
    ::setenv("GEM5RTL_REQTRACE", "/env/reqtrace", 1);
    ::unsetenv("GEM5RTL_RECORD");

    const ObsOptions merged = ObsOptions::fromEnv(base);
    EXPECT_FALSE(merged.traceEnabled);
    EXPECT_EQ(merged.traceDir, "/cfg/trace");  // Dir untouched by "0".
    EXPECT_TRUE(merged.metricsEnabled);
    EXPECT_EQ(merged.metricsDir, "/env/metrics");
    EXPECT_TRUE(merged.recordEnabled);
    EXPECT_EQ(merged.recordDir, "/cfg/rec");
    EXPECT_TRUE(merged.reqtraceEnabled);
    EXPECT_EQ(merged.reqtraceDir, "/env/reqtrace");
    EXPECT_EQ(merged.reqtracePath, "-");
    EXPECT_TRUE(merged.anyEnabled());

    ::unsetenv("GEM5RTL_TRACE");
    ::unsetenv("GEM5RTL_METRICS");
    ::unsetenv("GEM5RTL_REQTRACE");
}

}  // namespace
}  // namespace g5r::obs
