// TraceSession: Chrome trace-event JSON emission, escaping, failure paths.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "exp/json.hh"
#include "obs/trace_session.hh"

namespace g5r::obs {
namespace {

std::string tempPath(const std::string& stem) {
    return ::testing::TempDir() + "g5r_" + stem + ".trace.json";
}

std::string slurp(const std::string& path) {
    std::ifstream in{path};
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

// Count events with the given ph in a parsed trace document.
std::size_t countPh(const exp::Json& doc, const std::string& ph) {
    std::size_t n = 0;
    for (const auto& ev : doc.at("traceEvents").items()) {
        if (ev.at("ph").asString() == ph) ++n;
    }
    return n;
}

TEST(TraceSession, EmitsParsableChromeTraceDocument) {
    const std::string path = tempPath("parsable");
    {
        TraceSession t{path};
        ASSERT_TRUE(t.ok());
        t.threadName(1, "system.membus");
        t.completeEvent(1, "system.membus.reqDeliver", "dispatch", 10.0, 2.5, 4000);
        t.counterEvent("system.membus.reqsRouted", 12.0, 42.0);
        t.flowBegin(7, 1, 10.5);
        t.flowStep(7, 1, 11.0);
        t.flowEnd(7, 1, 12.0);
        t.finish();
        EXPECT_EQ(t.spansWritten(), 1u);
        EXPECT_EQ(t.eventsWritten(), 6u);
    }

    const exp::Json doc = exp::Json::parse(slurp(path));
    ASSERT_TRUE(doc.isObject());
    const auto& events = doc.at("traceEvents");
    ASSERT_TRUE(events.isArray());
    ASSERT_EQ(events.size(), 6u);

    // Every event carries the mandatory viewer fields (metadata events
    // have no timestamp).
    for (const auto& ev : events.items()) {
        EXPECT_TRUE(ev.contains("ph"));
        EXPECT_TRUE(ev.contains("pid"));
        if (ev.at("ph").asString() != "M") EXPECT_TRUE(ev.contains("ts"));
    }

    // The span ("X") has name/cat/tid/dur and the simulated tick.
    const auto& span = events.items()[1];
    EXPECT_EQ(span.at("ph").asString(), "X");
    EXPECT_EQ(span.at("name").asString(), "system.membus.reqDeliver");
    EXPECT_EQ(span.at("cat").asString(), "dispatch");
    EXPECT_EQ(span.at("tid").asInt(), 1);
    EXPECT_DOUBLE_EQ(span.at("ts").asDouble(), 10.0);
    EXPECT_DOUBLE_EQ(span.at("dur").asDouble(), 2.5);
    EXPECT_EQ(span.at("args").at("tick").asInt(), 4000);

    // Counter carries its value; flow events share an id; the end event
    // binds to its enclosing slice (bp:"e").
    EXPECT_DOUBLE_EQ(events.items()[2].at("args").at("value").asDouble(), 42.0);
    EXPECT_EQ(events.items()[3].at("ph").asString(), "s");
    EXPECT_EQ(events.items()[4].at("ph").asString(), "t");
    EXPECT_EQ(events.items()[5].at("ph").asString(), "f");
    EXPECT_EQ(events.items()[5].at("bp").asString(), "e");
    EXPECT_EQ(events.items()[3].at("id").asInt(), events.items()[5].at("id").asInt());

    // Metadata labels the track.
    EXPECT_EQ(events.items()[0].at("ph").asString(), "M");
    EXPECT_EQ(events.items()[0].at("name").asString(), "thread_name");

    std::remove(path.c_str());
}

TEST(TraceSession, EscapesSpecialCharactersInNames) {
    const std::string path = tempPath("escaping");
    const std::string nasty = "a\"b\\c\nd\te";
    {
        TraceSession t{path};
        ASSERT_TRUE(t.ok());
        t.completeEvent(0, nasty, "cat", 0.0, 1.0, 0);
        t.finish();
    }
    const exp::Json doc = exp::Json::parse(slurp(path));  // Must not throw.
    EXPECT_EQ(doc.at("traceEvents").items()[0].at("name").asString(), nasty);
    std::remove(path.c_str());
}

TEST(TraceSession, UnwritablePathReportsNotOkAndDropsEmits) {
    TraceSession t{"/nonexistent-g5r-dir/sub/trace.json"};
    EXPECT_FALSE(t.ok());
    // Every emit is a silent no-op; nothing throws and nothing is counted
    // as written.
    t.completeEvent(0, "x", "c", 0.0, 1.0, 0);
    t.counterEvent("n", 0.0, 1.0);
    t.flowBegin(1, 0, 0.0);
    t.finish();
    EXPECT_EQ(t.spansWritten(), 0u);
    EXPECT_EQ(t.eventsWritten(), 0u);
    EXPECT_FALSE(t.ok());
}

TEST(TraceSession, FinishIsIdempotent) {
    const std::string path = tempPath("idempotent");
    TraceSession t{path};
    t.completeEvent(0, "x", "c", 0.0, 1.0, 0);
    t.finish();
    const std::string once = slurp(path);
    t.finish();  // Second finish must not append another array tail.
    EXPECT_EQ(slurp(path), once);
    EXPECT_NO_THROW(exp::Json::parse(once));
    std::remove(path.c_str());
}

TEST(TraceSession, SpanCounterOnlyCountsCompleteEvents) {
    const std::string path = tempPath("spans");
    TraceSession t{path};
    t.counterEvent("n", 0.0, 1.0);
    t.flowBegin(1, 0, 0.0);
    t.flowEnd(1, 0, 1.0);
    EXPECT_EQ(t.spansWritten(), 0u);
    t.completeEvent(0, "x", "c", 0.0, 1.0, 0);
    t.completeEvent(0, "y", "c", 1.0, 1.0, 0);
    EXPECT_EQ(t.spansWritten(), 2u);
    EXPECT_EQ(t.eventsWritten(), 5u);
    t.finish();
    std::remove(path.c_str());
}

TEST(TraceSession, EmptySessionStillParses) {
    const std::string path = tempPath("empty");
    {
        TraceSession t{path};
        t.finish();
    }
    const exp::Json doc = exp::Json::parse(slurp(path));
    EXPECT_EQ(doc.at("traceEvents").size(), 0u);
    std::remove(path.c_str());
}

// countPh is exercised by session_test.cc too; keep a local sanity check.
TEST(TraceSession, FlowBeginEndPairsBalance) {
    const std::string path = tempPath("flows");
    {
        TraceSession t{path};
        for (std::uint64_t id = 0; id < 5; ++id) {
            t.flowBegin(id, 0, static_cast<double>(id));
            t.flowEnd(id, 0, static_cast<double>(id) + 0.5);
        }
        t.finish();
    }
    const exp::Json doc = exp::Json::parse(slurp(path));
    EXPECT_EQ(countPh(doc, "s"), 5u);
    EXPECT_EQ(countPh(doc, "f"), 5u);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace g5r::obs
