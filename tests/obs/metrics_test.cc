// Metrics timeline: JSONL round trip through readMetricsTimeline,
// delta/reset reconstruction, byte-identical output at any --jobs count,
// the zero-cost disabled path, and degradation on an unopenable path.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/record_harness.hh"
#include "exp/runner.hh"
#include "obs/metrics.hh"
#include "obs/options.hh"
#include "obs/session.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"

namespace g5r::obs {
namespace {

std::string slurp(const std::string& path) {
    std::ifstream in{path};
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

ObsOptions metricsOpts(const std::string& path, Tick intervalTicks = 2'000) {
    ObsOptions o;
    o.metricsEnabled = true;
    o.metricsPath = path;
    o.metricsIntervalTicks = intervalTicks;
    return o;
}

TEST(Metrics, TimelineRoundTripsThroughReader) {
    const std::string path = ::testing::TempDir() + "/metrics_roundtrip.jsonl";
    testing::RecordHarness h{metricsOpts(path), "metrics_roundtrip"};
    ASSERT_NE(h.session, nullptr);
    ASSERT_NE(h.session->metrics(), nullptr);
    ASSERT_TRUE(h.session->metrics()->ok());
    h.runReads(16);

    const MetricsTimeline tl = readMetricsTimeline(path);
    EXPECT_EQ(tl.schema, MetricsSession::kSchema);
    EXPECT_EQ(tl.run, "metrics_roundtrip");
    EXPECT_EQ(tl.intervalTicks, 2'000u);
    EXPECT_EQ(tl.endTick, h.sim.curTick());
    ASSERT_FALSE(tl.samples.empty());
    EXPECT_EQ(tl.declaredSamples, tl.samples.size());

    // Reconstructed final values equal the live stats at end of run: the
    // delta encoding loses nothing.
    const auto* numReads = h.sim.findStat("system.mem0.numReads");
    ASSERT_NE(numReads, nullptr);
    EXPECT_DOUBLE_EQ(tl.finalValue("system.mem0.numReads"), numReads->value());
    EXPECT_DOUBLE_EQ(tl.finalValue("system.mem0.numReads"), 16.0);
    EXPECT_DOUBLE_EQ(tl.finalValue("system.mem0.bytesRead"), 16.0 * 64.0);

    // The cumulative series is monotone for a counter and ends at the total.
    const auto series = tl.series("system.mem0.numReads");
    ASSERT_FALSE(series.empty());
    double prev = 0.0;
    for (const auto& [tick, value] : series) {
        EXPECT_GE(value, prev);
        prev = value;
    }
    EXPECT_DOUBLE_EQ(series.back().second, 16.0);
    std::remove(path.c_str());
}

TEST(Metrics, DeltasAndResetsReconstruct) {
    Simulation sim;
    SimObject obj{sim, "sys.dev"};
    auto& counter = obj.statsGroup().scalar("hits", "hit count");

    const std::string path = ::testing::TempDir() + "/metrics_deltas.jsonl";
    MetricsSession ms{sim, path, "deltas", 10};
    ASSERT_TRUE(ms.ok());

    counter += 5;
    ms.sampleAt(10);
    counter += 2.5;
    ms.sampleAt(20);
    ms.sampleAt(30);  // Nothing changed: the sample line has an empty delta map.
    obj.statsGroup().resetAll();
    ms.sampleAt(40);  // A reset round-trips as a negative delta.
    ms.finish(50);

    const MetricsTimeline tl = readMetricsTimeline(path);
    ASSERT_EQ(tl.samples.size(), 5u);  // 4 explicit + the tail sample.
    EXPECT_TRUE(tl.samples[2].deltas.empty());

    const auto series = tl.series("sys.dev.hits");
    ASSERT_EQ(series.size(), 5u);
    EXPECT_EQ(series[0], (std::pair<Tick, double>{10, 5.0}));
    EXPECT_EQ(series[1], (std::pair<Tick, double>{20, 7.5}));
    EXPECT_EQ(series[2], (std::pair<Tick, double>{30, 7.5}));
    EXPECT_EQ(series[3], (std::pair<Tick, double>{40, 0.0}));
    EXPECT_DOUBLE_EQ(tl.finalValue("sys.dev.hits"), 0.0);

    // Distributions and histograms expand to summary channels.
    auto& lat = obj.statsGroup().distribution("lat", "latency");
    auto& hist = obj.statsGroup().histogram("latHist", "latency histogram");
    for (int i = 1; i <= 100; ++i) {
        lat.sample(i);
        hist.sampleInt(static_cast<std::uint64_t>(i));
    }
    MetricsSession ms2{sim, path, "deltas2", 10};
    ms2.finish(60);
    const MetricsTimeline tl2 = readMetricsTimeline(path);
    EXPECT_DOUBLE_EQ(tl2.finalValue("sys.dev.lat.count"), 100.0);
    EXPECT_DOUBLE_EQ(tl2.finalValue("sys.dev.lat.mean"), 50.5);
    EXPECT_DOUBLE_EQ(tl2.finalValue("sys.dev.lat.max"), 100.0);
    EXPECT_DOUBLE_EQ(tl2.finalValue("sys.dev.latHist.count"), 100.0);
    EXPECT_GE(tl2.finalValue("sys.dev.latHist.p50"), 50.0);
    EXPECT_LE(tl2.finalValue("sys.dev.latHist.p99"), 100.0);
    std::remove(path.c_str());
}

// The determinism contract the diff gate rests on: the same simulated run
// writes byte-identical timelines whether the sweep ran on one thread or
// four (no wall-clock, no host state — simulated ticks and stats only).
TEST(Metrics, TimelinesAreByteIdenticalAcrossRunnerJobs) {
    constexpr int kRuns = 4;
    const auto makeTasks = [](const std::string& tag) {
        std::vector<exp::Task<std::string>> tasks;
        for (int t = 0; t < kRuns; ++t) {
            const std::string path = ::testing::TempDir() + "/metrics_" + tag + "_" +
                                     std::to_string(t) + ".jsonl";
            tasks.push_back(exp::Task<std::string>{
                "metrics/" + tag + std::to_string(t), [t, path] {
                    testing::RecordHarness h{metricsOpts(path),
                                             "metrics_run" + std::to_string(t)};
                    h.runReads(8 + 2 * t);
                    return path;
                }});
        }
        return tasks;
    };

    const auto serial = exp::runTasks(makeTasks("j1"), 1);
    const auto parallel = exp::runTasks(makeTasks("j4"), 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (int t = 0; t < kRuns; ++t) {
        SCOPED_TRACE("run " + std::to_string(t));
        ASSERT_TRUE(serial[static_cast<std::size_t>(t)].ok);
        ASSERT_TRUE(parallel[static_cast<std::size_t>(t)].ok);
        const std::string bytesS = slurp(serial[static_cast<std::size_t>(t)].value);
        const std::string bytesP = slurp(parallel[static_cast<std::size_t>(t)].value);
        ASSERT_FALSE(bytesS.empty());
        EXPECT_EQ(bytesS, bytesP);
        std::remove(serial[static_cast<std::size_t>(t)].value.c_str());
        std::remove(parallel[static_cast<std::size_t>(t)].value.c_str());
    }
}

TEST(Metrics, DisabledPathCreatesNothing) {
    // All-default options: no session at all — the simulation runs with the
    // observer slot empty (the zero-cost contract).
    testing::RecordHarness off{ObsOptions{}, "metrics_off"};
    EXPECT_EQ(off.session, nullptr);
    off.runReads(4);
    EXPECT_EQ(off.req->numResponses(), 4u);

    // Recording on but metrics off: a session exists, without a metrics
    // sampler and without a timeline file.
    const std::string recPath = ::testing::TempDir() + "/metrics_off.g5rec";
    ObsOptions o;
    o.recordEnabled = true;
    o.recordPath = recPath;
    testing::RecordHarness h{o, "metrics_off2"};
    ASSERT_NE(h.session, nullptr);
    EXPECT_EQ(h.session->metrics(), nullptr);
    h.runReads(4);
    std::remove(recPath.c_str());
}

TEST(Metrics, UnopenablePathDegradesWithoutKillingTheRun) {
    const std::string path = "/nonexistent-g5r-dir/deep/metrics.jsonl";
    testing::RecordHarness h{metricsOpts(path), "metrics_bad_path"};
    ASSERT_NE(h.session, nullptr);
    ASSERT_NE(h.session->metrics(), nullptr);
    EXPECT_FALSE(h.session->metrics()->ok());
    h.runReads(8);  // Must complete; every sample call is a no-op.
    EXPECT_EQ(h.req->numResponses(), 8u);
    EXPECT_EQ(h.session->metrics()->samplesWritten(), 0u);
}

TEST(Metrics, IntervalThrottlesSampling) {
    // With an interval far beyond the run length only the baseline sample
    // at the start tick and the finish() tail sample are taken.
    const std::string path = ::testing::TempDir() + "/metrics_throttle.jsonl";
    testing::RecordHarness h{metricsOpts(path, 1'000'000'000'000ULL), "metrics_throttle"};
    h.runReads(16);
    const MetricsTimeline tl = readMetricsTimeline(path);
    EXPECT_EQ(tl.samples.size(), 2u);
    EXPECT_DOUBLE_EQ(tl.finalValue("system.mem0.numReads"), 16.0);
    std::remove(path.c_str());
}

TEST(Metrics, OptionsComeFromEnvironment) {
    ::setenv("GEM5RTL_METRICS", "/tmp/metrics-out", 1);
    ::setenv("GEM5RTL_METRICS_INTERVAL", "5000", 1);
    ObsOptions o = ObsOptions::fromEnv();
    EXPECT_TRUE(o.metricsEnabled);
    EXPECT_TRUE(o.anyEnabled());
    EXPECT_EQ(o.metricsDir, "/tmp/metrics-out");
    EXPECT_EQ(o.metricsIntervalTicks, 5'000u);

    ::setenv("GEM5RTL_METRICS", "1", 1);
    o = ObsOptions::fromEnv();
    EXPECT_TRUE(o.metricsEnabled);
    EXPECT_EQ(o.metricsDir, ".");

    ::setenv("GEM5RTL_METRICS", "0", 1);
    o = ObsOptions::fromEnv();
    EXPECT_FALSE(o.metricsEnabled);

    ::unsetenv("GEM5RTL_METRICS");
    ::unsetenv("GEM5RTL_METRICS_INTERVAL");
    o = ObsOptions::fromEnv();
    EXPECT_FALSE(o.metricsEnabled);
}

}  // namespace
}  // namespace g5r::obs
