// g5r-stats: diff semantics (the CI perf-regression gate), threshold
// resolution, structural-loss violations, CLI exit codes, and render smoke.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "exp/json.hh"
#include "obs/metrics.hh"
#include "obs/stats_cli.hh"

namespace g5r::obs {
namespace {

/// One fig7-style hbm/q64 point. exp::Json has no erase(), so variants are
/// built, not mutated: @p includeP99 false leaves the metric out entirely.
exp::Json makePoint(double runtimeTicks, double p99 = 114688.0,
                    bool includeP99 = true, const char* memTech = "hbm") {
    exp::Json point = exp::Json::object();
    point["memTech"] = memTech;
    point["maxInflight"] = 64u;
    point["runtimeTicks"] = runtimeTicks;
    point["wallSeconds"] = 1.0;
    point["memLatencyP50"] = 21504.0;
    if (includeP99) point["memLatencyP99"] = p99;
    exp::Json one = exp::Json::object();
    one["count"] = std::uint64_t{100000};
    one["minTicks"] = 1500.0;
    one["meanTicks"] = 23456.5;
    one["maxTicks"] = 901234.0;
    one["p50Ticks"] = 21504.0;
    one["p99Ticks"] = p99;
    exp::Json lat = exp::Json::object();
    lat["nvdla0.dbbif"] = std::move(one);
    point["memLatency"] = std::move(lat);
    return point;
}

/// A minimal fig7-style BENCH document wrapping @p point.
exp::Json docWithPoint(exp::Json point) {
    exp::Json doc = exp::Json::object();
    doc["schema"] = 2;
    doc["bench"] = "fig7";
    doc["jobs"] = 2;
    exp::Json host = exp::Json::object();
    host["name"] = "somehost";
    host["threads"] = 8;
    doc["host"] = std::move(host);
    doc["points"] = exp::Json::array();
    doc["points"].push(std::move(point));
    return doc;
}

exp::Json benchDoc(double runtimeTicks, double p99 = 114688.0) {
    return docWithPoint(makePoint(runtimeTicks, p99));
}

std::string writeDoc(const std::string& name, const exp::Json& doc) {
    const std::string path = ::testing::TempDir() + "/" + name;
    std::ofstream out{path};
    out << doc.dump(2);
    return path;
}

TEST(StatsDiff, IdenticalDocumentsPass) {
    const exp::Json doc = benchDoc(1e6);
    const StatsDiffReport report = diffBenchDocuments(doc, doc, StatsDiffOptions{});
    EXPECT_TRUE(report.withinThresholds());
    EXPECT_EQ(report.pointsCompared, 1u);
    EXPECT_GE(report.metricsCompared, 3u);
    EXPECT_TRUE(report.violations.empty());
}

TEST(StatsDiff, RegressionBeyondThresholdFails) {
    const exp::Json base = benchDoc(1e6);
    const exp::Json cur = benchDoc(1.6e6);  // +60% runtime.
    const StatsDiffReport report = diffBenchDocuments(base, cur, StatsDiffOptions{});
    EXPECT_FALSE(report.withinThresholds());
    ASSERT_EQ(report.violations.size(), 1u);
    const StatsDiffViolation& v = report.violations[0];
    EXPECT_EQ(v.metric, "runtimeTicks");
    EXPECT_DOUBLE_EQ(v.baseline, 1e6);
    EXPECT_DOUBLE_EQ(v.current, 1.6e6);
    EXPECT_NEAR(v.relDelta, 0.6, 1e-9);
    EXPECT_DOUBLE_EQ(v.threshold, 0.25);
    EXPECT_NE(v.point.find("memTech=hbm"), std::string::npos);
    EXPECT_NE(v.point.find("maxInflight=64"), std::string::npos);

    // Within the default 25% the same pair passes.
    const StatsDiffReport small =
        diffBenchDocuments(base, benchDoc(1.2e6), StatsDiffOptions{});
    EXPECT_TRUE(small.withinThresholds());
}

TEST(StatsDiff, PerMetricThresholdOverrides) {
    const exp::Json base = benchDoc(1e6, 114688.0);
    const exp::Json cur = benchDoc(1e6, 137000.0);  // p99 +19.5%.
    // Default 25%: passes.
    EXPECT_TRUE(diffBenchDocuments(base, cur, StatsDiffOptions{}).withinThresholds());
    // Tighten memLatencyP99 to 10%: fails; other metrics keep the default.
    StatsDiffOptions opts;
    opts.perMetric.push_back(MetricThreshold{"memLatencyP99", 0.10});
    const StatsDiffReport report = diffBenchDocuments(base, cur, opts);
    ASSERT_EQ(report.violations.size(), 1u);
    EXPECT_EQ(report.violations[0].metric, "memLatencyP99");
    EXPECT_DOUBLE_EQ(report.violations[0].threshold, 0.10);
}

TEST(StatsDiff, HostDependentMetricsAreExcluded) {
    const exp::Json base = benchDoc(1e6);
    // Current run on a very different host, with very different wall time.
    exp::Json slowPoint = makePoint(1e6);
    slowPoint["wallSeconds"] = 5000.0;
    exp::Json cur = docWithPoint(std::move(slowPoint));
    cur["host"]["threads"] = 128;
    const StatsDiffReport report = diffBenchDocuments(base, cur, StatsDiffOptions{});
    EXPECT_TRUE(report.withinThresholds()) << formatStatsDiffReport(report, "b", "c");
}

TEST(StatsDiff, StructuralLossesAreViolations) {
    const exp::Json base = benchDoc(1e6);

    // Missing point: current has a different identity (ddr4, not hbm).
    const exp::Json curPoint =
        docWithPoint(makePoint(1e6, 114688.0, true, "ddr4"));
    const StatsDiffReport missingPoint =
        diffBenchDocuments(base, curPoint, StatsDiffOptions{});
    ASSERT_FALSE(missingPoint.violations.empty());
    EXPECT_EQ(missingPoint.violations[0].note, "missing point");

    // Missing metric: current dropped memLatencyP99.
    const exp::Json curMetric = docWithPoint(makePoint(1e6, 114688.0, false));
    const StatsDiffReport missingMetric =
        diffBenchDocuments(base, curMetric, StatsDiffOptions{});
    ASSERT_EQ(missingMetric.violations.size(), 1u);
    EXPECT_EQ(missingMetric.violations[0].note, "missing metric");
    EXPECT_EQ(missingMetric.violations[0].metric, "memLatencyP99");

    // Current-only additions are fine (schemas may grow).
    exp::Json extraPoint = makePoint(1e6);
    extraPoint["memLatencyP999"] = 999999.0;
    EXPECT_TRUE(diffBenchDocuments(base, docWithPoint(std::move(extraPoint)),
                                   StatsDiffOptions{})
                    .withinThresholds());

    // Bench name mismatch: not comparable at all.
    exp::Json other = benchDoc(1e6);
    other["bench"] = "fig6";
    const StatsDiffReport mismatch = diffBenchDocuments(base, other, StatsDiffOptions{});
    EXPECT_FALSE(mismatch.comparable);
    EXPECT_FALSE(mismatch.error.empty());
}

MetricsTimeline timelineOf(double finalReads, double finalP99) {
    MetricsTimeline tl;
    tl.schema = 1;
    tl.run = "t";
    tl.intervalTicks = 1000;
    tl.endTick = 5000;
    MetricsSample s1;
    s1.tick = 1000;
    s1.deltas.emplace_back("mem.numReads", finalReads / 2);
    s1.deltas.emplace_back("bus.latencyHist.cpu0.p99", finalP99);
    MetricsSample s2;
    s2.tick = 5000;
    s2.deltas.emplace_back("mem.numReads", finalReads / 2);
    tl.samples.push_back(std::move(s1));
    tl.samples.push_back(std::move(s2));
    return tl;
}

TEST(StatsDiff, TimelinesCompareByFinalValue) {
    const MetricsTimeline base = timelineOf(100.0, 20000.0);
    EXPECT_TRUE(diffTimelines(base, timelineOf(100.0, 20000.0), StatsDiffOptions{})
                    .withinThresholds());

    const StatsDiffReport report =
        diffTimelines(base, timelineOf(100.0, 40000.0), StatsDiffOptions{});
    ASSERT_EQ(report.violations.size(), 1u);
    EXPECT_EQ(report.violations[0].metric, "bus.latencyHist.cpu0.p99");
    EXPECT_NEAR(report.violations[0].relDelta, 1.0, 1e-9);

    // A channel present in the baseline but absent from current is a loss.
    MetricsTimeline lossy = timelineOf(100.0, 20000.0);
    for (MetricsSample& s : lossy.samples) {
        std::erase_if(s.deltas, [](const auto& d) { return d.first != "mem.numReads"; });
    }
    const StatsDiffReport loss = diffTimelines(base, lossy, StatsDiffOptions{});
    ASSERT_EQ(loss.violations.size(), 1u);
    EXPECT_EQ(loss.violations[0].note, "missing metric");
}

TEST(StatsCli, DiffExitCodesMatchTheGateContract) {
    const std::string basePath = writeDoc("cli_base.json", benchDoc(1e6));
    const std::string samePath = writeDoc("cli_same.json", benchDoc(1e6));
    const std::string worsePath = writeDoc("cli_worse.json", benchDoc(1.6e6));

    const auto run = [](std::vector<const char*> argv) {
        argv.insert(argv.begin(), "g5r-stats");
        return statsCliMain(static_cast<int>(argv.size()), argv.data());
    };

    EXPECT_EQ(run({"diff", basePath.c_str(), samePath.c_str()}), 0);
    EXPECT_EQ(run({"diff", basePath.c_str(), worsePath.c_str()}), 1);
    EXPECT_EQ(run({"diff", basePath.c_str(), worsePath.c_str(), "--threshold", "0.7"}), 0);
    EXPECT_EQ(run({"diff", basePath.c_str(), worsePath.c_str(), "--metric",
                   "runtimeTicks=0.9"}),
              0);
    EXPECT_EQ(run({"diff", basePath.c_str()}), 2);             // Missing operand.
    EXPECT_EQ(run({"diff", basePath.c_str(), "/no/such"}), 2);  // Unreadable.
    EXPECT_EQ(run({"frobnicate"}), 2);                          // Unknown command.
    EXPECT_EQ(run({"percentiles", basePath.c_str()}), 0);

    for (const std::string& p : {basePath, samePath, worsePath}) std::remove(p.c_str());
}

TEST(StatsCli, RenderersProduceReadableOutput) {
    const MetricsTimeline tl = timelineOf(100.0, 20000.0);
    const std::string strip = renderTimeline(tl, "", 0);
    EXPECT_NE(strip.find("mem.numReads"), std::string::npos);
    EXPECT_NE(strip.find("final 100"), std::string::npos);
    // The filter drops non-matching channels.
    const std::string filtered = renderTimeline(tl, "latencyHist", 0);
    EXPECT_EQ(filtered.find("mem.numReads"), std::string::npos);
    EXPECT_NE(filtered.find("bus.latencyHist.cpu0.p99"), std::string::npos);

    const std::string table = renderBenchPercentiles(benchDoc(1e6));
    EXPECT_NE(table.find("memTech=hbm"), std::string::npos);
    EXPECT_NE(table.find("p50"), std::string::npos);

    const StatsDiffReport report =
        diffBenchDocuments(benchDoc(1e6), benchDoc(1.6e6), StatsDiffOptions{});
    const std::string text = formatStatsDiffReport(report, "a.json", "b.json");
    EXPECT_NE(text.find("VIOLATION"), std::string::npos);
    EXPECT_NE(text.find("runtimeTicks"), std::string::npos);
    EXPECT_NE(text.find("FAIL"), std::string::npos);
}

}  // namespace
}  // namespace g5r::obs
