// HostProfiler: bucket classification, stride scaling, report invariants.
#include <gtest/gtest.h>

#include "exp/json.hh"
#include "obs/profiler.hh"

namespace g5r::obs {
namespace {

TEST(ClassifyBucket, MemoryTermsWinOverCoreAndRtl) {
    // "system.cpu0.l1d" contains both a core term and a memory term; the
    // memory system owns the caches.
    EXPECT_EQ(classifyBucket("system.cpu0.l1d"), "memory");
    EXPECT_EQ(classifyBucket("system.cpu0.l2"), "memory");
    EXPECT_EQ(classifyBucket("system.membus"), "memory");
    EXPECT_EQ(classifyBucket("system.noc"), "memory");
    EXPECT_EQ(classifyBucket("system.llc3"), "memory");
    EXPECT_EQ(classifyBucket("system.mem0.ch0"), "memory");
    EXPECT_EQ(classifyBucket("system.nvdla0.scratchpad"), "memory");
}

TEST(ClassifyBucket, RtlAndCoreAndOther) {
    EXPECT_EQ(classifyBucket("system.nvdla0"), "rtl");
    EXPECT_EQ(classifyBucket("system.pmu0"), "rtl");
    EXPECT_EQ(classifyBucket("system.bitonic0"), "rtl");
    EXPECT_EQ(classifyBucket("system.cpu3"), "core");
    EXPECT_EQ(classifyBucket("system.host0"), "core");
    EXPECT_EQ(classifyBucket("(unattributed)"), "other");
    EXPECT_EQ(classifyBucket("system.widget"), "other");
}

TEST(HostProfiler, StrideScalesSampledSecondsToAllDispatches) {
    HostProfiler p{4};
    const int slot = p.addSlot("system.nvdla0");
    for (int i = 0; i < 8; ++i) p.countDispatch(slot);
    // With stride 4 only 2 of the 8 dispatches were actually timed.
    p.addSample(slot, 0.010);
    p.addSample(slot, 0.010);
    p.addRunSeconds(0.100);

    const ProfileReport rep = p.report();
    EXPECT_EQ(rep.stride, 4u);
    EXPECT_EQ(rep.dispatches, 8u);
    ASSERT_EQ(rep.entries.size(), 1u);
    const ProfileEntry& e = rep.entries[0];
    EXPECT_EQ(e.dispatches, 8u);
    EXPECT_EQ(e.sampled, 2u);
    EXPECT_DOUBLE_EQ(e.sampledSeconds, 0.020);
    // 0.020 s over 2 samples, scaled to 8 dispatches -> 0.080 s.
    EXPECT_NEAR(e.estimatedSeconds, 0.080, 1e-12);
}

TEST(HostProfiler, ZeroStrideIsTreatedAsOne) {
    HostProfiler p{0};
    EXPECT_EQ(p.stride(), 1u);
}

TEST(HostProfiler, BucketsAlwaysSumToRunSeconds) {
    HostProfiler p{1};
    const int rtl = p.addSlot("system.nvdla0");
    const int mem = p.addSlot("system.membus");
    p.countDispatch(rtl);
    p.addSample(rtl, 0.30);
    p.countDispatch(mem);
    p.addSample(mem, 0.20);
    p.addRunSeconds(1.00);

    const ProfileReport rep = p.report();
    const auto buckets = rep.buckets();
    ASSERT_EQ(buckets.size(), 5u);  // rtl, memory, core, other, queue.
    EXPECT_EQ(buckets[0].name, "rtl");
    EXPECT_EQ(buckets[4].name, "queue");
    double total = 0.0;
    double fractions = 0.0;
    for (const auto& b : buckets) {
        total += b.seconds;
        fractions += b.fraction;
    }
    EXPECT_NEAR(total, 1.00, 1e-12);
    EXPECT_NEAR(fractions, 1.0, 1e-12);
    EXPECT_NEAR(buckets[0].seconds, 0.30, 1e-12);   // rtl
    EXPECT_NEAR(buckets[1].seconds, 0.20, 1e-12);   // memory
    EXPECT_NEAR(buckets[4].seconds, 0.50, 1e-12);   // queue remainder
}

TEST(HostProfiler, QueueBucketClampsAtZeroWhenSamplingOverEstimates) {
    HostProfiler p{1};
    const int slot = p.addSlot("system.nvdla0");
    p.countDispatch(slot);
    p.addSample(slot, 2.0);   // Attributed more than the run took.
    p.addRunSeconds(1.0);
    const auto buckets = p.report().buckets();
    EXPECT_DOUBLE_EQ(buckets.back().seconds, 0.0);
}

TEST(HostProfiler, EntriesSortedByEstimatedSecondsDescending) {
    HostProfiler p{1};
    const int small = p.addSlot("system.a");
    const int big = p.addSlot("system.b");
    const int idle = p.addSlot("system.never-dispatched");
    (void)idle;
    p.countDispatch(small);
    p.addSample(small, 0.1);
    p.countDispatch(big);
    p.addSample(big, 0.9);

    const ProfileReport rep = p.report();
    // The never-dispatched slot is dropped from the report entirely.
    ASSERT_EQ(rep.entries.size(), 2u);
    EXPECT_EQ(rep.entries[0].name, "system.b");
    EXPECT_EQ(rep.entries[1].name, "system.a");
}

TEST(HostProfiler, ReportSerializesToParsableJson) {
    HostProfiler p{2};
    const int slot = p.addSlot("system.membus");
    p.countDispatch(slot);
    p.countDispatch(slot);
    p.addSample(slot, 0.004);
    p.addRunSeconds(0.010);

    const exp::Json doc = exp::Json::parse(p.report().toJson().dump());
    EXPECT_DOUBLE_EQ(doc.at("runSeconds").asDouble(), 0.010);
    EXPECT_EQ(doc.at("dispatches").asInt(), 2);
    EXPECT_EQ(doc.at("stride").asInt(), 2);
    EXPECT_TRUE(doc.at("buckets").contains("memory"));
    EXPECT_TRUE(doc.at("buckets").contains("queue"));
    ASSERT_EQ(doc.at("objects").size(), 1u);
    EXPECT_EQ(doc.at("objects").items()[0].at("name").asString(), "system.membus");
}

TEST(HostProfiler, TableMentionsBucketsAndObjects) {
    HostProfiler p{1};
    const int slot = p.addSlot("system.nvdla0");
    p.countDispatch(slot);
    p.addSample(slot, 0.5);
    p.addRunSeconds(1.0);
    const std::string table = p.report().table();
    EXPECT_NE(table.find("rtl"), std::string::npos);
    EXPECT_NE(table.find("queue"), std::string::npos);
    EXPECT_NE(table.find("system.nvdla0"), std::string::npos);
    EXPECT_NE(table.find("stride 1"), std::string::npos);
}

}  // namespace
}  // namespace g5r::obs
