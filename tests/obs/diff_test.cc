// First-divergence finder: binary-search localization over synthetic
// recordings (interval, lane, owning-object and tail semantics), plus the
// golden end-to-end case — a FlakyForwarder injecting one deterministic
// retry diverges two otherwise-identical runs, and the finder names the
// forwarder and the first interval.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/record_harness.hh"
#include "obs/diff.hh"

namespace g5r::obs {
namespace {

std::string tempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
}

void writeFile(const std::string& path, const std::string& text) {
    std::ofstream out{path};
    out << text;
}

// A synthetic 16-hex digest: deterministic, distinct per tag.
std::string dig(unsigned tag) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016x", tag);
    return buf;
}

// Build a recording with intervals 0..7 whose cumulative dispatch digests
// follow @p cums (packet lane constant and identical across sides).
std::string eightIntervals(const std::string& label, const unsigned (&cums)[8]) {
    std::string text = "g5rec 1\nrun " + label + "\ninterval 1000\n";
    for (unsigned i = 0; i < 8; ++i) {
        text += "iv " + std::to_string(i) + " " + std::to_string(i * 1000) + " 4 " +
                dig(0x100 + i) + " " + dig(cums[i]) + " 2 " + dig(0x200) + " " +
                dig(0x300) + "\n";
        if (i == 5) {
            // Per-object rows of the interval the tests diverge in: slot 1
            // (system.alpha, first dispatch 5100) and slot 2 (system.beta,
            // first dispatch 5020).
            text += "ob 1 3 " + dig(0x400 + cums[i]) + " 5100\n";
            text += "ob 2 2 " + dig(0x500 + cums[i]) + " 5020\n";
        }
    }
    text += "obj 1 system.alpha\nobj 2 system.beta\n";
    text += "bb 1 D 5050 2 beta dispatch near the divergence\n";
    text += "end 8000 32 16 " + dig(cums[7]) + " " + dig(0x300) + "\n";
    return text;
}

TEST(DiffFinder, IdenticalRecordingsDoNotDiverge) {
    const unsigned cums[8] = {10, 11, 12, 13, 14, 15, 16, 17};
    const std::string a = tempPath("diff_ident_a.g5rec");
    const std::string b = tempPath("diff_ident_b.g5rec");
    writeFile(a, eightIntervals("same", cums));
    writeFile(b, eightIntervals("same", cums));
    const DivergenceReport rep = diffRecordingFiles(a, b);
    EXPECT_TRUE(rep.comparable);
    EXPECT_FALSE(rep.diverged);
    EXPECT_NE(formatDivergenceReport(rep, "a", "b").find("identical"), std::string::npos);
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(DiffFinder, BinarySearchFindsFirstDivergentInterval) {
    // Sides agree through interval 4; dispatch cumulative digests split at 5.
    const unsigned cumsA[8] = {10, 11, 12, 13, 14, 15, 16, 17};
    const unsigned cumsB[8] = {10, 11, 12, 13, 14, 95, 96, 97};
    const std::string a = tempPath("diff_mid_a.g5rec");
    const std::string b = tempPath("diff_mid_b.g5rec");
    writeFile(a, eightIntervals("side_a", cumsA));
    writeFile(b, eightIntervals("side_b", cumsB));
    const DivergenceReport rep = diffRecordingFiles(a, b);
    ASSERT_TRUE(rep.comparable);
    ASSERT_TRUE(rep.diverged);
    EXPECT_EQ(rep.lane, "dispatch");  // Packet lane is identical by design.
    EXPECT_EQ(rep.intervalIndex, 5u);
    EXPECT_EQ(rep.startTick, 5000u);
    EXPECT_EQ(rep.endTick, 6000u);
    // Both objects' digests differ in interval 5 (they mix the cum tag);
    // beta's first dispatch (5020) precedes alpha's (5100), so beta owns it.
    EXPECT_EQ(rep.objectName, "system.beta");
    EXPECT_FALSE(rep.neighborhoodA.empty());
    // The black-box line at t=5050 falls inside the one-interval window.
    EXPECT_NE(rep.neighborhoodA.front().find("beta dispatch"), std::string::npos);
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(DiffFinder, PacketsOnlyLaneIgnoresDispatchDivergence) {
    const unsigned cumsA[8] = {10, 11, 12, 13, 14, 15, 16, 17};
    const unsigned cumsB[8] = {10, 11, 92, 93, 94, 95, 96, 97};
    const std::string a = tempPath("diff_lane_a.g5rec");
    const std::string b = tempPath("diff_lane_b.g5rec");
    writeFile(a, eightIntervals("side_a", cumsA));
    writeFile(b, eightIntervals("side_b", cumsB));
    // Gated-vs-ungated mode: the dispatch stream may differ by design.
    const DivergenceReport packetsOnly =
        diffRecordingFiles(a, b, DiffLane::kPacketsOnly);
    EXPECT_TRUE(packetsOnly.comparable);
    EXPECT_FALSE(packetsOnly.diverged);
    // Both-lane mode still sees it.
    const DivergenceReport both = diffRecordingFiles(a, b, DiffLane::kBoth);
    ASSERT_TRUE(both.diverged);
    EXPECT_EQ(both.lane, "dispatch");
    EXPECT_EQ(both.intervalIndex, 2u);
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(DiffFinder, MissingEndRecordReportsTruncatedRun) {
    const unsigned cums[8] = {10, 11, 12, 13, 14, 15, 16, 17};
    const std::string a = tempPath("diff_trunc_a.g5rec");
    const std::string b = tempPath("diff_trunc_b.g5rec");
    writeFile(a, eightIntervals("complete", cums));
    // Side B crashed: same intervals, no end line (drop the last line).
    std::string textB = eightIntervals("crashed", cums);
    textB.erase(textB.rfind("end "));
    writeFile(b, textB);
    const DivergenceReport rep = diffRecordingFiles(a, b);
    ASSERT_TRUE(rep.comparable);
    ASSERT_TRUE(rep.diverged);
    EXPECT_EQ(rep.lane, "end");
    EXPECT_NE(rep.detail.find("truncated"), std::string::npos);
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(DiffFinder, TailMismatchAfterMatchingIntervals) {
    const unsigned cums[8] = {10, 11, 12, 13, 14, 15, 16, 17};
    const std::string a = tempPath("diff_tail_a.g5rec");
    const std::string b = tempPath("diff_tail_b.g5rec");
    writeFile(a, eightIntervals("tail_a", cums));
    // Same digests, but side B ran one tick longer past the last interval.
    std::string textB = eightIntervals("tail_b", cums);
    const std::size_t endAt = textB.rfind("end 8000");
    textB.replace(endAt, 8, "end 8001");
    writeFile(b, textB);
    const DivergenceReport rep = diffRecordingFiles(a, b);
    ASSERT_TRUE(rep.diverged);
    EXPECT_EQ(rep.lane, "end");
    EXPECT_NE(rep.detail.find("tails differ"), std::string::npos);
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(DiffFinder, DifferentIntervalWidthsAreNotComparable) {
    const unsigned cums[8] = {10, 11, 12, 13, 14, 15, 16, 17};
    const std::string a = tempPath("diff_width_a.g5rec");
    const std::string b = tempPath("diff_width_b.g5rec");
    writeFile(a, eightIntervals("w1000", cums));
    std::string textB = eightIntervals("w2000", cums);
    textB.replace(textB.find("interval 1000"), 13, "interval 2000");
    writeFile(b, textB);
    const DivergenceReport rep = diffRecordingFiles(a, b);
    EXPECT_FALSE(rep.comparable);
    EXPECT_NE(rep.error.find("GEM5RTL_RECORD_INTERVAL"), std::string::npos);
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(DiffFinder, EmptyIntervalGapsCarryCumulativeDigests) {
    // A was quiet during interval 3 (omitted row); B dispatched there. The
    // merged sweep must flag index 3 with A showing no activity.
    const std::string a = tempPath("diff_gap_a.g5rec");
    const std::string b = tempPath("diff_gap_b.g5rec");
    writeFile(a,
              "g5rec 1\nrun gap_a\ninterval 1000\n"
              "iv 0 0 2 " + dig(1) + " " + dig(10) + " 1 " + dig(2) + " " + dig(20) + "\n"
              "iv 5 5000 2 " + dig(3) + " " + dig(11) + " 1 " + dig(4) + " " + dig(21) + "\n"
              "end 6000 4 2 " + dig(11) + " " + dig(21) + "\n");
    writeFile(b,
              "g5rec 1\nrun gap_b\ninterval 1000\n"
              "iv 0 0 2 " + dig(1) + " " + dig(10) + " 1 " + dig(2) + " " + dig(20) + "\n"
              "iv 3 3000 1 " + dig(7) + " " + dig(77) + " 0 " + dig(0) + " " + dig(20) + "\n"
              "iv 5 5000 2 " + dig(3) + " " + dig(78) + " 1 " + dig(4) + " " + dig(21) + "\n"
              "end 6000 5 2 " + dig(78) + " " + dig(21) + "\n");
    const DivergenceReport rep = diffRecordingFiles(a, b);
    ASSERT_TRUE(rep.diverged);
    EXPECT_EQ(rep.intervalIndex, 3u);
    EXPECT_EQ(rep.lane, "dispatch");
    EXPECT_NE(rep.detail.find("no activity recorded"), std::string::npos);
    std::remove(a.c_str());
    std::remove(b.c_str());
}

// The golden end-to-end case: identical topologies, but side A's forwarder
// deterministically rejects the first request (LCG seed 1, rejectOneIn 3 —
// the first draw is divisible by 3), so side A grows a retry event at tick
// 2000 that side B never has. The finder must name the forwarder and the
// first interval.
TEST(DiffFinder, FlakyForwarderDivergenceIsLocalizedToTheForwarder) {
    const std::string pathA = tempPath("diff_flaky_a.g5rec");
    const std::string pathB = tempPath("diff_flaky_b.g5rec");
    ObsOptions opts;
    opts.recordEnabled = true;
    opts.recordIntervalTicks = 5'000;  // One interval spans issue + retry.

    testing::FlakyForwarderParams flakyParams;  // seed 1, rejectOneIn 3.
    testing::FlakyForwarderParams cleanParams;
    cleanParams.rejectOneIn = 0;  // Same topology, never rejects.

    opts.recordPath = pathA;
    {
        testing::RecordHarness h{opts, "flaky_run", &flakyParams};
        h.runReads(4);
        ASSERT_GT(h.fwd->reqRejections() + h.fwd->respRejections(), 0);
    }
    opts.recordPath = pathB;
    {
        testing::RecordHarness h{opts, "clean_run", &cleanParams};
        h.runReads(4);
        ASSERT_EQ(h.fwd->reqRejections(), 0);
    }

    const DivergenceReport rep = diffRecordingFiles(pathA, pathB);
    ASSERT_TRUE(rep.comparable) << rep.error;
    ASSERT_TRUE(rep.diverged);
    // The first rejection happens on the very first request: interval 0.
    EXPECT_EQ(rep.intervalIndex, 0u);
    EXPECT_EQ(rep.startTick, 0u);
    EXPECT_EQ(rep.endTick, 5'000u);
    // The forwarder's retry event (tick 2000) exists on side A only, and
    // precedes every other dispatch difference in the interval.
    EXPECT_EQ(rep.objectName, "system.flaky");
    EXPECT_FALSE(rep.neighborhoodA.empty());
    EXPECT_FALSE(rep.neighborhoodB.empty());
    const std::string formatted = formatDivergenceReport(rep, "flaky", "clean");
    EXPECT_NE(formatted.find("system.flaky"), std::string::npos);
    std::remove(pathA.c_str());
    std::remove(pathB.c_str());
}

}  // namespace
}  // namespace g5r::obs
