// Per-requestor crossbar latency distributions and their obs/ summaries.
#include <gtest/gtest.h>

#include <sstream>

#include "common/test_requester.hh"
#include "exp/json.hh"
#include "mem/simple_mem.hh"
#include "mem/xbar.hh"
#include "obs/session.hh"

namespace g5r {
namespace {

using testing::TestRequester;

struct Harness {
    Harness() {
        Xbar::Params xp;
        xbar = std::make_unique<Xbar>(sim, "xbar", xp);
        reqA = std::make_unique<TestRequester>(sim, "reqA");
        reqB = std::make_unique<TestRequester>(sim, "reqB");

        SimpleMemory::Params mp;
        mp.latency = 10'000;
        mp.range = AddrRange{0, 1ULL << 20};
        mem = std::make_unique<SimpleMemory>(sim, "mem", mp, store);

        reqA->port().bind(xbar->addCpuSidePort("a"));
        reqB->port().bind(xbar->addCpuSidePort("b"));
        xbar->addMemSidePort("m", RouteSpec{mem->range()}).bind(mem->port());
    }

    Simulation sim;
    BackingStore store;
    std::unique_ptr<Xbar> xbar;
    std::unique_ptr<TestRequester> reqA;
    std::unique_ptr<TestRequester> reqB;
    std::unique_ptr<SimpleMemory> mem;
};

TEST(XbarLatency, DistributionCountsEveryRoundTrip) {
    Harness h;
    constexpr int kA = 5, kB = 3;
    for (int i = 0; i < kA; ++i) h.reqA->issueAt(0, makeReadPacket(64 * i, 64));
    for (int i = 0; i < kB; ++i) h.reqB->issueAt(0, makeReadPacket(0x8000 + 64 * i, 64));
    h.sim.run();
    ASSERT_EQ(h.reqA->numResponses(), kA);
    ASSERT_EQ(h.reqB->numResponses(), kB);

    const auto* distA =
        dynamic_cast<const stats::Distribution*>(h.sim.findStat("xbar.latency.a"));
    const auto* distB =
        dynamic_cast<const stats::Distribution*>(h.sim.findStat("xbar.latency.b"));
    ASSERT_NE(distA, nullptr);
    ASSERT_NE(distB, nullptr);
    EXPECT_EQ(distA->count(), kA);
    EXPECT_EQ(distB->count(), kB);

    // Round trips take at least the memory latency, and the moments are
    // ordered sanely.
    EXPECT_GE(distA->minValue(), 10'000.0);
    EXPECT_LE(distA->minValue(), distA->mean());
    EXPECT_LE(distA->mean(), distA->maxValue());
    EXPECT_GE(distA->variance(), 0.0);
}

TEST(XbarLatency, WritebacksDoNotSampleLatency) {
    Harness h;
    auto wb = std::make_unique<Packet>(MemCmd::kWritebackDirty, 0x100, 64);
    h.reqA->issueAt(0, std::move(wb));
    h.sim.run();
    const auto* dist =
        dynamic_cast<const stats::Distribution*>(h.sim.findStat("xbar.latency.a"));
    ASSERT_NE(dist, nullptr);
    // No response ever returned, so nothing was sampled.
    EXPECT_EQ(dist->count(), 0u);
}

TEST(XbarLatency, PortLatenciesSummarisesEveryMaster) {
    Harness h;
    for (int i = 0; i < 4; ++i) h.reqA->issueAt(0, makeReadPacket(64 * i, 64));
    h.sim.run();

    const auto latencies = obs::portLatencies(h.xbar->statsGroup());
    ASSERT_EQ(latencies.size(), 2u);  // One summary per cpu-side port.
    const auto* a = &latencies[0];
    if (a->first != "a") a = &latencies[1];
    ASSERT_EQ(a->first, "a");
    EXPECT_EQ(a->second.count, 4u);
    EXPECT_LE(a->second.minTicks, a->second.meanTicks);
    EXPECT_LE(a->second.meanTicks, a->second.maxTicks);
}

TEST(XbarLatency, AppearsInTextAndJsonStatDumps) {
    Harness h;
    h.reqA->issueAt(0, makeReadPacket(0x0, 64));
    h.sim.run();

    std::ostringstream os;
    h.sim.dumpStats(os);
    EXPECT_NE(os.str().find("xbar.latency.a"), std::string::npos);

    const exp::Json doc = exp::Json::parse(h.sim.dumpStatsJson().dump());
    const exp::Json& lat = doc.at("xbar").at("latency.a");
    EXPECT_EQ(lat.at("count").asInt(), 1);
    EXPECT_GT(lat.at("mean").asDouble(), 0.0);
    EXPECT_TRUE(lat.contains("stddev"));
}

}  // namespace
}  // namespace g5r
