// Debug-trace gating: the lock-free disabled path and runtime flag control.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/logging.hh"

namespace g5r {
namespace {

// Streamable probe recording whether dtrace() ever formatted it.
struct Probe {
    bool* hit;
};
std::ostream& operator<<(std::ostream& os, const Probe& p) {
    *p.hit = true;
    return os;
}

// Restore a clean (all-off) flag state around each test so the suite does
// not leak tracing into unrelated tests.
class LoggingFlags : public ::testing::Test {
protected:
    void TearDown() override { setDebugFlags(""); }
};

TEST_F(LoggingFlags, SetDebugFlagsTogglesIndividualFlags) {
    setDebugFlags("xbar,cache");
    EXPECT_TRUE(debugFlagEnabled("xbar"));
    EXPECT_TRUE(debugFlagEnabled("cache"));
    EXPECT_FALSE(debugFlagEnabled("cpu"));

    // Replacing the set drops flags that are no longer listed.
    setDebugFlags("cpu");
    EXPECT_TRUE(debugFlagEnabled("cpu"));
    EXPECT_FALSE(debugFlagEnabled("xbar"));
}

TEST_F(LoggingFlags, EmptySpecDisablesAllTracing) {
    setDebugFlags("xbar");
    ASSERT_TRUE(debugFlagEnabled("xbar"));
    setDebugFlags("");
    EXPECT_FALSE(debugFlagEnabled("xbar"));
    // The fast-path gate resolves to "off": dtrace() takes its single
    // relaxed-load early return without consulting the flag set.
    EXPECT_FALSE(detail::debugTracingActive());
    EXPECT_EQ(detail::debugTraceState.load(), 0);
}

TEST_F(LoggingFlags, AllEnablesEveryFlag) {
    setDebugFlags("all");
    EXPECT_TRUE(debugFlagEnabled("xbar"));
    EXPECT_TRUE(debugFlagEnabled("anything-at-all"));
    EXPECT_TRUE(detail::debugTracingActive());
    EXPECT_EQ(detail::debugTraceState.load(), 1);
}

TEST_F(LoggingFlags, GateTracksFlagChanges) {
    // The optimisation must not freeze the first observed state: flags can
    // toggle on and off repeatedly and the gate follows.
    for (int i = 0; i < 3; ++i) {
        setDebugFlags("flag" + std::to_string(i));
        EXPECT_TRUE(detail::debugTracingActive()) << "iteration " << i;
        EXPECT_TRUE(debugFlagEnabled("flag" + std::to_string(i)));
        setDebugFlags("");
        EXPECT_FALSE(detail::debugTracingActive()) << "iteration " << i;
        EXPECT_FALSE(debugFlagEnabled("flag" + std::to_string(i)));
    }
}

TEST_F(LoggingFlags, DtraceIsSafeWhileDisabled) {
    setDebugFlags("");
    // Must not crash, lock, or print; the lazy formatter must not even run.
    bool formatted = false;
    dtrace("off-flag", Probe{&formatted});
    EXPECT_FALSE(formatted);
}

// --- panic hooks -----------------------------------------------------------

TEST(PanicHooks, HookRunsAfterPanicMessageBeforeAbort) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            PanicHookScope hook{[] { logRawLine("black-box: salvage line\n"); }};
            panic("hook ordering");
        },
        "panic: hook ordering(.|\n)*black-box: salvage line");
}

TEST(PanicHooks, HooksRunNewestFirst) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            PanicHookScope first{[] { logRawLine("hook-first\n"); }};
            PanicHookScope second{[] { logRawLine("hook-second\n"); }};
            panic("lifo order");
        },
        "hook-second(.|\n)*hook-first");
}

TEST(PanicHooks, RemovedHookDoesNotRun) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            {
                PanicHookScope removed{[] { logRawLine("should-not-appear\n"); }};
            }
            PanicHookScope kept{[] { logRawLine("kept-hook-ran\n"); }};
            panic("removal");
        },
        "kept-hook-ran");
}

TEST(PanicHooks, ThrowingHookDoesNotMaskPanic) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            PanicHookScope survivor{[] { logRawLine("survivor-ran\n"); }};
            PanicHookScope thrower{[] { throw std::runtime_error("contained"); }};
            panic("hook threw");
        },
        "panic: hook threw(.|\n)*survivor-ran");
}

TEST(PanicHooks, RecursivePanicInHookIsContained) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // A hook that itself panics must not re-enter the hook list (infinite
    // recursion); the nested panic message prints and abort proceeds.
    EXPECT_DEATH(
        {
            PanicHookScope bad{[] { panic("nested panic from hook"); }};
            panic("outer panic");
        },
        "panic: outer panic(.|\n)*panic: nested panic from hook");
}

}  // namespace
}  // namespace g5r
