// Event-queue semantics: ordering, determinism, (de|re)scheduling, and the
// simulation driver's exit conditions.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event.hh"
#include "sim/event_queue.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

namespace g5r {
namespace {

TEST(EventQueue, ProcessesInTickOrder) {
    EventQueue q;
    std::vector<int> order;
    CallbackEvent a{[&] { order.push_back(1); }, "a"};
    CallbackEvent b{[&] { order.push_back(2); }, "b"};
    CallbackEvent c{[&] { order.push_back(3); }, "c"};

    q.schedule(c, 300);
    q.schedule(a, 100);
    q.schedule(b, 200);

    while (!q.empty()) q.serviceOne();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.curTick(), 300u);
    EXPECT_EQ(q.numProcessed(), 3u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenInsertion) {
    EventQueue q;
    std::vector<int> order;
    CallbackEvent later{[&] { order.push_back(3); }, "later", EventPriority::kSimExit};
    CallbackEvent first{[&] { order.push_back(1); }, "first", EventPriority::kStatDump};
    CallbackEvent mid1{[&] { order.push_back(2); }, "mid1"};
    CallbackEvent mid2{[&] { order.push_back(20); }, "mid2"};

    q.schedule(later, 50);
    q.schedule(mid1, 50);
    q.schedule(mid2, 50);
    q.schedule(first, 50);

    while (!q.empty()) q.serviceOne();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 20, 3}));
}

TEST(EventQueue, DescheduleRemovesEvent) {
    EventQueue q;
    int fired = 0;
    CallbackEvent ev{[&] { ++fired; }, "ev"};
    q.schedule(ev, 10);
    EXPECT_TRUE(ev.scheduled());
    q.deschedule(ev);
    EXPECT_FALSE(ev.scheduled());
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, RescheduleMovesEvent) {
    EventQueue q;
    std::vector<Tick> firedAt;
    CallbackEvent marker{[&] { firedAt.push_back(q.curTick()); }, "marker"};
    CallbackEvent other{[] {}, "other"};

    q.schedule(marker, 10);
    q.schedule(other, 5);
    q.reschedule(marker, 42);

    while (!q.empty()) q.serviceOne();
    ASSERT_EQ(firedAt.size(), 1u);
    EXPECT_EQ(firedAt[0], 42u);
}

TEST(EventQueue, EventCanRescheduleItself) {
    EventQueue q;
    int count = 0;
    CallbackEvent* selfPtr = nullptr;
    CallbackEvent self{
        [&] {
            if (++count < 5) q.schedule(*selfPtr, q.curTick() + 7);
        },
        "self"};
    selfPtr = &self;
    q.schedule(self, 0);
    while (!q.empty()) q.serviceOne();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.curTick(), 28u);
}

TEST(EventQueue, ManyEventsStressOrdering) {
    EventQueue q;
    Tick last = 0;
    bool monotone = true;
    std::vector<std::unique_ptr<CallbackEvent>> events;
    events.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
        events.push_back(std::make_unique<CallbackEvent>(
            [&] {
                if (q.curTick() < last) monotone = false;
                last = q.curTick();
            },
            "stress"));
    }
    // Pseudo-random ticks with collisions.
    std::uint64_t x = 12345;
    for (auto& ev : events) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        q.schedule(*ev, (x >> 33) % 500);
    }
    while (!q.empty()) q.serviceOne();
    EXPECT_TRUE(monotone);
    EXPECT_EQ(q.numProcessed(), 1000u);
}

TEST(Simulation, RunsUntilQueueEmpty) {
    Simulation sim;
    int fired = 0;
    CallbackEvent ev{[&] { ++fired; }, "ev"};
    sim.eventQueue().schedule(ev, 1000);
    const RunResult result = sim.run();
    EXPECT_EQ(result.cause, ExitCause::kQueueEmpty);
    EXPECT_EQ(fired, 1);
}

TEST(Simulation, HonorsMaxTick) {
    Simulation sim;
    int fired = 0;
    CallbackEvent ev{[&] { ++fired; }, "ev"};
    sim.eventQueue().schedule(ev, 1000);
    const RunResult result = sim.run(500);
    EXPECT_EQ(result.cause, ExitCause::kMaxTickReached);
    EXPECT_EQ(fired, 0);
    // The event is still pending and fires on a later run.
    sim.run();
    EXPECT_EQ(fired, 1);
}

TEST(Simulation, ExitSimLoopStopsImmediately) {
    Simulation sim;
    int fired = 0;
    CallbackEvent stop{[&] { sim.exitSimLoop("done"); }, "stop"};
    CallbackEvent after{[&] { ++fired; }, "after"};
    sim.eventQueue().schedule(stop, 10);
    sim.eventQueue().schedule(after, 20);
    const RunResult result = sim.run();
    EXPECT_EQ(result.cause, ExitCause::kSimExit);
    EXPECT_EQ(result.message, "done");
    EXPECT_EQ(result.tick, 10u);
    EXPECT_EQ(fired, 0);
}

class CountingObject final : public SimObject {
public:
    using SimObject::SimObject;
    void init() override { ++inits; }
    void startup() override { ++startups; }
    int inits = 0;
    int startups = 0;
};

TEST(Simulation, LifecycleHooksRunExactlyOnce) {
    Simulation sim;
    CountingObject obj{sim, "obj"};
    CallbackEvent ev{[] {}, "noop"};
    sim.eventQueue().schedule(ev, 1);
    sim.run();
    sim.run();
    EXPECT_EQ(obj.inits, 1);
    EXPECT_EQ(obj.startups, 1);
}

}  // namespace
}  // namespace g5r
