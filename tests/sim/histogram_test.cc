// HDR histogram: quantiles verified against an exact-sort oracle across
// distribution shapes, lossless merge, bucket geometry, and edge cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "exp/json.hh"
#include "sim/stats.hh"

namespace g5r::stats {
namespace {

/// Deterministic 64-bit LCG (no std::random_device / Math.random in tests:
/// the suite must behave identically everywhere).
class Lcg {
public:
    explicit Lcg(std::uint64_t seed) : state_(seed) {}
    std::uint64_t next() {
        state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
        return state_ >> 16;
    }

private:
    std::uint64_t state_;
};

/// The exact quantile the histogram approximates: value of rank
/// ceil(q * n) in the sorted sample set.
std::uint64_t exactQuantile(std::vector<std::uint64_t> sorted, double q) {
    std::sort(sorted.begin(), sorted.end());
    const auto n = sorted.size();
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank == 0) rank = 1;
    if (rank > n) rank = n;
    return sorted[rank - 1];
}

/// The histogram reports the upper edge of the bucket holding the exact
/// quantile, so it may only exceed the oracle by one bucket's width:
/// exact <= reported <= exact * (1 + 1/kSubBuckets) + 1.
void expectWithinOneBucket(const HistogramData& h,
                           const std::vector<std::uint64_t>& values, double q) {
    const double exact = static_cast<double>(exactQuantile(values, q));
    const double reported = h.quantile(q);
    EXPECT_GE(reported, exact) << "q=" << q;
    EXPECT_LE(reported,
              exact * (1.0 + 1.0 / static_cast<double>(HistogramData::kSubBuckets)) + 1.0)
        << "q=" << q;
}

void checkAllQuantiles(const HistogramData& h, const std::vector<std::uint64_t>& values) {
    for (const double q : {0.5, 0.9, 0.99, 0.999}) expectWithinOneBucket(h, values, q);
}

TEST(Histogram, UniformShapeMatchesSortOracle) {
    Lcg rng{1};
    HistogramData h;
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 20'000; ++i) {
        const std::uint64_t v = rng.next() % 1'000'000;
        values.push_back(v);
        h.sampleInt(v);
    }
    ASSERT_EQ(h.count(), values.size());
    checkAllQuantiles(h, values);
}

TEST(Histogram, BimodalShapeMatchesSortOracle) {
    // Latency under contention: a fast mode near 100 ticks and a slow mode
    // near 10M ticks. Percentiles must not blur the modes the way mean does.
    Lcg rng{2};
    HistogramData h;
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 20'000; ++i) {
        const std::uint64_t base = (rng.next() % 10 < 7) ? 100 : 10'000'000;
        const std::uint64_t v = base + rng.next() % (base / 10 + 1);
        values.push_back(v);
        h.sampleInt(v);
    }
    checkAllQuantiles(h, values);
    // The modes are visible: p50 sits in the fast mode, p99 in the slow one.
    EXPECT_LT(h.p50(), 1'000.0);
    EXPECT_GT(h.p99(), 1'000'000.0);
}

TEST(Histogram, HeavyTailShapeMatchesSortOracle) {
    // Exponentially heavy tail: a base value shifted left by a geometric
    // number of octaves — the shape that breaks mean-based summaries.
    Lcg rng{3};
    HistogramData h;
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 20'000; ++i) {
        const std::uint64_t v = (1 + rng.next() % 1'000) << (rng.next() % 20);
        values.push_back(v);
        h.sampleInt(v);
    }
    checkAllQuantiles(h, values);
    EXPECT_GT(h.p999(), h.p50());
}

TEST(Histogram, MergeIsLossless) {
    // Sampling two disjoint streams into two histograms and merging must
    // produce bucket-for-bucket the same state as one histogram fed both —
    // the property the SoC-wide memLatencyP50/P99 rollup rests on.
    Lcg rng{4};
    HistogramData a, b, whole;
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 5'000; ++i) {
        const std::uint64_t v = rng.next() % 500'000;
        values.push_back(v);
        (i % 2 == 0 ? a : b).sampleInt(v);
        whole.sampleInt(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_DOUBLE_EQ(a.mean(), whole.mean());
    EXPECT_DOUBLE_EQ(a.minValue(), whole.minValue());
    EXPECT_DOUBLE_EQ(a.maxValue(), whole.maxValue());
    for (const double q : {0.5, 0.9, 0.99, 0.999}) {
        EXPECT_DOUBLE_EQ(a.quantile(q), whole.quantile(q)) << "q=" << q;
    }
    std::vector<std::uint64_t> bucketsMerged, bucketsWhole;
    a.forEachBucket([&](std::uint64_t lo, std::uint64_t, std::uint64_t n) {
        bucketsMerged.push_back(lo);
        bucketsMerged.push_back(n);
    });
    whole.forEachBucket([&](std::uint64_t lo, std::uint64_t, std::uint64_t n) {
        bucketsWhole.push_back(lo);
        bucketsWhole.push_back(n);
    });
    EXPECT_EQ(bucketsMerged, bucketsWhole);
    checkAllQuantiles(a, values);

    // Merging an empty histogram is a no-op (min/max must not be poisoned
    // by the empty side's sentinels).
    HistogramData empty;
    const double beforeMin = a.minValue(), beforeMax = a.maxValue();
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.minValue(), beforeMin);
    EXPECT_DOUBLE_EQ(a.maxValue(), beforeMax);

    // And merge into an empty histogram adopts the other side exactly.
    HistogramData fresh;
    fresh.merge(whole);
    EXPECT_EQ(fresh.count(), whole.count());
    EXPECT_DOUBLE_EQ(fresh.minValue(), whole.minValue());
    EXPECT_DOUBLE_EQ(fresh.p99(), whole.p99());
}

TEST(Histogram, SmallValuesAreExact) {
    // Identity buckets: every value below kSubBuckets is its own bucket, so
    // quantiles of small queue depths are exact, not approximate.
    HistogramData h;
    for (std::uint64_t v = 0; v < HistogramData::kSubBuckets; ++v) {
        for (std::uint64_t i = 0; i <= v; ++i) h.sampleInt(v);  // Weight v+1.
    }
    for (std::uint64_t v = 0; v < HistogramData::kSubBuckets; ++v) {
        EXPECT_EQ(HistogramData::bucketLow(HistogramData::bucketIndex(v)), v);
        EXPECT_EQ(HistogramData::bucketHigh(HistogramData::bucketIndex(v)), v);
    }
    // n = 32*33/2 = 528; rank ceil(0.5*528) = 264 -> value 22 exactly
    // (cumulative weight through 21 is 253, through 22 is 276).
    EXPECT_DOUBLE_EQ(h.p50(), 22.0);
}

TEST(Histogram, BucketGeometryIsConsistent) {
    Lcg rng{5};
    for (int i = 0; i < 10'000; ++i) {
        const std::uint64_t v = rng.next() << (rng.next() % 17);
        const std::size_t idx = HistogramData::bucketIndex(v);
        EXPECT_LE(HistogramData::bucketLow(idx), v);
        EXPECT_GE(HistogramData::bucketHigh(idx), v);
        if (idx > 0) {
            EXPECT_EQ(HistogramData::bucketLow(idx), HistogramData::bucketHigh(idx - 1) + 1);
        }
    }
    // The top octave's high edge saturates at the type maximum (unsigned
    // wraparound of ((sub+1) << exp) - 1 lands exactly there).
    const std::uint64_t top = std::numeric_limits<std::uint64_t>::max();
    EXPECT_EQ(HistogramData::bucketHigh(HistogramData::bucketIndex(top)), top);
    HistogramData h;
    h.sampleInt(top);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.maxValue(), static_cast<double>(top));
}

TEST(Histogram, EdgeCasesAndClamping) {
    HistogramData h;
    // Empty: everything reads zero.
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.minValue(), 0.0);
    EXPECT_DOUBLE_EQ(h.maxValue(), 0.0);

    // Quantiles never report above the largest observed sample, even though
    // the bucket's upper edge lies beyond it.
    h.sampleInt(1'000'000);
    for (const double q : {0.0, 0.5, 0.99, 1.0}) {
        EXPECT_DOUBLE_EQ(h.quantile(q), 1'000'000.0) << "q=" << q;
    }

    // q outside (0,1) clamps to min/max.
    h.sampleInt(10);
    EXPECT_DOUBLE_EQ(h.quantile(-1.0), 10.0);
    EXPECT_DOUBLE_EQ(h.quantile(2.0), 1'000'000.0);

    // Doubles: negatives and NaN clamp to the zero bucket; huge values cap.
    HistogramData d;
    d.sample(-5.0);
    d.sample(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(d.count(), 2u);
    EXPECT_DOUBLE_EQ(d.maxValue(), 0.0);
    d.sample(1e300);
    EXPECT_GE(d.maxValue(), 9e18);

    // Reset restores the empty state.
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.quantile(0.5), 0.0);
}

TEST(Histogram, GroupWrapperRegistersAndDumps) {
    Group g{"xbar"};
    Histogram& h = g.histogram("latencyHist.cpu0", "round-trip ticks");
    for (const std::uint64_t v : {100u, 200u, 300u, 400u}) h.sampleInt(v);

    // Registered and findable like any other stat; headline value = mean.
    const Stat* found = g.find("latencyHist.cpu0");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->name(), "xbar.latencyHist.cpu0");
    EXPECT_DOUBLE_EQ(found->value(), 250.0);
    ASSERT_NE(dynamic_cast<const Histogram*>(found), nullptr);

    // dumpJson carries the quantile block.
    const exp::Json doc = exp::Json::parse(g.dumpJson().dump());
    const exp::Json& j = doc.at("latencyHist.cpu0");
    EXPECT_EQ(j.at("count").asInt(), 4);
    EXPECT_DOUBLE_EQ(j.at("min").asDouble(), 100.0);
    EXPECT_DOUBLE_EQ(j.at("mean").asDouble(), 250.0);
    EXPECT_DOUBLE_EQ(j.at("max").asDouble(), 400.0);
    EXPECT_GE(j.at("p50").asDouble(), 200.0);
    EXPECT_LE(j.at("p99").asDouble(), j.at("p999").asDouble() + 1e-12);
    EXPECT_LE(j.at("p999").asDouble(), 400.0);

    // reset() through the Stat interface clears the histogram.
    g.resetAll();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

}  // namespace
}  // namespace g5r::stats
