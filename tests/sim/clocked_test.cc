// ClockedObject cycle/tick arithmetic across clock domains.
#include <gtest/gtest.h>

#include "sim/clocked.hh"
#include "sim/simulation.hh"

namespace g5r {
namespace {

TEST(Ticks, FrequencyConversions) {
    EXPECT_EQ(periodFromGHz(1), 1000u);
    EXPECT_EQ(periodFromGHz(2), 500u);
    EXPECT_EQ(periodFromMHz(500), 2000u);
    EXPECT_EQ(nsToTicks(1.5), 1500u);
    EXPECT_DOUBLE_EQ(ticksToSeconds(kTicksPerSecond), 1.0);
    EXPECT_DOUBLE_EQ(ticksToMs(2'000'000'000ULL), 2.0);
}

TEST(Clocked, EdgeAlignment) {
    Simulation sim;
    ClockedObject obj{sim, "clk", periodFromGHz(1)};  // 1000-tick period

    // At tick 0, the "next edge" is tick 0 itself.
    EXPECT_EQ(obj.clockEdge(), 0u);
    EXPECT_EQ(obj.clockEdge(3), 3000u);

    // Advance mid-cycle and check rounding up to the next edge.
    CallbackEvent ev{[] {}, "advance"};
    sim.eventQueue().schedule(ev, 1500);
    sim.run();
    EXPECT_EQ(sim.curTick(), 1500u);
    EXPECT_EQ(obj.curCycle(), 1u);
    EXPECT_EQ(obj.clockEdge(), 2000u);
    EXPECT_EQ(obj.clockEdge(2), 4000u);
    EXPECT_EQ(obj.cyclesToTicks(5), 5000u);
    EXPECT_EQ(obj.ticksToCycles(2500), 3u);
}

TEST(Clocked, DifferentDomainsDisagreeOnCycles) {
    Simulation sim;
    ClockedObject fast{sim, "fast", periodFromGHz(2)};
    ClockedObject slow{sim, "slow", periodFromGHz(1)};
    CallbackEvent ev{[] {}, "advance"};
    sim.eventQueue().schedule(ev, 10'000);
    sim.run();
    EXPECT_EQ(fast.curCycle(), 20u);
    EXPECT_EQ(slow.curCycle(), 10u);
}

}  // namespace
}  // namespace g5r
