// Statistics framework: scalars, formulas, distributions, lookup and dumps.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "exp/json.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"

namespace g5r {
namespace {

TEST(Stats, ScalarAccumulates) {
    stats::Group g{"grp"};
    auto& s = g.scalar("count", "a counter");
    EXPECT_EQ(s.value(), 0.0);
    ++s;
    s += 4.5;
    s.inc();
    EXPECT_DOUBLE_EQ(s.value(), 6.5);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(Stats, FormulaEvaluatesLazily) {
    stats::Group g{"grp"};
    auto& insts = g.scalar("insts", "instructions");
    auto& cycles = g.scalar("cycles", "cycles");
    auto& ipc = g.formula("ipc", "instructions per cycle", [&] {
        return cycles.value() > 0 ? insts.value() / cycles.value() : 0.0;
    });
    EXPECT_EQ(ipc.value(), 0.0);
    insts += 30;
    cycles += 10;
    EXPECT_DOUBLE_EQ(ipc.value(), 3.0);
    insts += 10;
    EXPECT_DOUBLE_EQ(ipc.value(), 4.0);
}

TEST(Stats, DistributionTracksMoments) {
    stats::Group g{"grp"};
    auto& d = g.distribution("lat", "latency");
    for (const double v : {1.0, 2.0, 3.0, 4.0}) d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.5);
    EXPECT_DOUBLE_EQ(d.minValue(), 1.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 4.0);
    EXPECT_NEAR(d.variance(), 1.25, 1e-12);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
}

TEST(Stats, GroupFindQualifiesNames) {
    stats::Group g{"cpu0"};
    auto& s = g.scalar("commits", "committed");
    s += 7;
    const stats::Stat* found = g.find("commits");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->name(), "cpu0.commits");
    EXPECT_DOUBLE_EQ(found->value(), 7.0);
    EXPECT_EQ(g.find("nope"), nullptr);
}

TEST(Stats, SimulationWideLookup) {
    Simulation sim;
    SimObject a{sim, "sys.cpu0"};
    SimObject b{sim, "sys.cpu1"};
    a.statsGroup().scalar("commits", "x") += 11;
    b.statsGroup().scalar("commits", "x") += 22;

    const auto* s0 = sim.findStat("sys.cpu0.commits");
    const auto* s1 = sim.findStat("sys.cpu1.commits");
    ASSERT_NE(s0, nullptr);
    ASSERT_NE(s1, nullptr);
    EXPECT_DOUBLE_EQ(s0->value(), 11.0);
    EXPECT_DOUBLE_EQ(s1->value(), 22.0);
    EXPECT_EQ(sim.findStat("sys.cpu2.commits"), nullptr);
    EXPECT_EQ(sim.findStat("sys.cpu0"), nullptr);
}

// Regression for the catastrophic-cancellation bug: with a naive
// sum-of-squares accumulator, latency-like samples riding on a large common
// offset (absolute ticks late in a long run) cancel to garbage — or a
// negative variance. Welford's algorithm keeps the exact small variance.
TEST(Stats, DistributionVarianceSurvivesLargeOffset) {
    stats::Group g{"grp"};
    auto& d = g.distribution("lat", "latency");
    for (const double delta : {4.0, 7.0, 13.0, 16.0}) d.sample(1e9 + delta);
    // Population variance of {4,7,13,16} (mean 10): (36+9+9+36)/4 = 22.5.
    EXPECT_NEAR(d.variance(), 22.5, 1e-6);
    EXPECT_NEAR(d.stddev(), std::sqrt(22.5), 1e-6);
    EXPECT_GE(d.variance(), 0.0);
    EXPECT_DOUBLE_EQ(d.mean(), 1e9 + 10.0);

    // Even larger offsets must still never go negative.
    d.reset();
    for (const double delta : {1.0, 2.0}) d.sample(1e15 + delta);
    EXPECT_GE(d.variance(), 0.0);
    EXPECT_NEAR(d.variance(), 0.25, 1e-3);
}

TEST(Stats, SingleSampleHasZeroVariance) {
    stats::Group g{"grp"};
    auto& d = g.distribution("lat", "latency");
    EXPECT_DOUBLE_EQ(d.variance(), 0.0);  // Empty.
    d.sample(123.0);
    EXPECT_DOUBLE_EQ(d.variance(), 0.0);  // One sample.
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(Stats, GroupDumpJsonRoundTrips) {
    stats::Group g{"mem"};
    g.scalar("reads", "read count") += 3;
    auto& d = g.distribution("lat", "latency");
    for (const double v : {10.0, 20.0, 30.0}) d.sample(v);

    // Serialize then re-parse through the same exp/json model CI uses.
    const exp::Json doc = exp::Json::parse(g.dumpJson().dump());
    EXPECT_DOUBLE_EQ(doc.at("reads").asDouble(), 3.0);
    const exp::Json& lat = doc.at("lat");
    EXPECT_EQ(lat.at("count").asInt(), 3);
    EXPECT_DOUBLE_EQ(lat.at("min").asDouble(), 10.0);
    EXPECT_DOUBLE_EQ(lat.at("mean").asDouble(), 20.0);
    EXPECT_DOUBLE_EQ(lat.at("max").asDouble(), 30.0);
    EXPECT_NEAR(lat.at("stddev").asDouble(), std::sqrt(200.0 / 3.0), 1e-9);
}

TEST(Stats, DumpJsonEmptyDistributionEmitsZeros) {
    // A never-sampled distribution must serialize as zeros, not as its
    // internal min/max sentinels (DBL_MAX / lowest) — downstream JSON
    // consumers treat min > max as corruption.
    stats::Group g{"mem"};
    g.distribution("lat", "latency");
    g.histogram("latHist", "latency histogram");
    const exp::Json doc = exp::Json::parse(g.dumpJson().dump());
    const exp::Json& lat = doc.at("lat");
    EXPECT_EQ(lat.at("count").asInt(), 0);
    EXPECT_DOUBLE_EQ(lat.at("min").asDouble(), 0.0);
    EXPECT_DOUBLE_EQ(lat.at("mean").asDouble(), 0.0);
    EXPECT_DOUBLE_EQ(lat.at("max").asDouble(), 0.0);
    EXPECT_DOUBLE_EQ(lat.at("stddev").asDouble(), 0.0);
    const exp::Json& hist = doc.at("latHist");
    EXPECT_EQ(hist.at("count").asInt(), 0);
    EXPECT_DOUBLE_EQ(hist.at("min").asDouble(), 0.0);
    EXPECT_DOUBLE_EQ(hist.at("p50").asDouble(), 0.0);
    EXPECT_DOUBLE_EQ(hist.at("p999").asDouble(), 0.0);
}

TEST(Stats, DumpJsonSingleSampleCollapsesToThatValue) {
    stats::Group g{"mem"};
    auto& d = g.distribution("lat", "latency");
    d.sample(42.0);
    auto& h = g.histogram("latHist", "latency histogram");
    h.sampleInt(42);
    const exp::Json doc = exp::Json::parse(g.dumpJson().dump());
    for (const char* key : {"lat", "latHist"}) {
        const exp::Json& j = doc.at(key);
        EXPECT_EQ(j.at("count").asInt(), 1) << key;
        EXPECT_DOUBLE_EQ(j.at("min").asDouble(), 42.0) << key;
        EXPECT_DOUBLE_EQ(j.at("mean").asDouble(), 42.0) << key;
        EXPECT_DOUBLE_EQ(j.at("max").asDouble(), 42.0) << key;
    }
    EXPECT_DOUBLE_EQ(doc.at("lat").at("stddev").asDouble(), 0.0);
    // All quantiles of a one-sample histogram are that sample.
    EXPECT_DOUBLE_EQ(doc.at("latHist").at("p50").asDouble(), 42.0);
    EXPECT_DOUBLE_EQ(doc.at("latHist").at("p999").asDouble(), 42.0);
}

TEST(Stats, FindScalesAsIndexNotScan) {
    // find() is backed by a name index; registering many stats and looking
    // each one up exercises index consistency across growth.
    stats::Group g{"big"};
    for (int i = 0; i < 200; ++i) {
        g.scalar("s" + std::to_string(i), "x").inc(i);
    }
    for (int i = 0; i < 200; ++i) {
        const stats::Stat* s = g.find("s" + std::to_string(i));
        ASSERT_NE(s, nullptr) << i;
        EXPECT_DOUBLE_EQ(s->value(), i);
    }
    EXPECT_EQ(g.find("s200"), nullptr);
}

TEST(Stats, DumpJsonLeavesTextDumpUnchanged) {
    // The JSON view is additive: the text dump must not change shape when
    // dumpJson() has been called (tools diff text dumps across runs).
    stats::Group g{"mem"};
    g.scalar("reads", "read count") += 3;
    std::ostringstream before;
    g.dump(before);
    (void)g.dumpJson();
    std::ostringstream after;
    g.dump(after);
    EXPECT_EQ(before.str(), after.str());
}

TEST(Stats, SimulationDumpStatsJsonKeyedByObject) {
    Simulation sim;
    SimObject a{sim, "sys.cpu0"};
    a.statsGroup().scalar("commits", "x") += 11;
    const exp::Json doc = exp::Json::parse(sim.dumpStatsJson().dump());
    EXPECT_DOUBLE_EQ(doc.at("sys.cpu0").at("commits").asDouble(), 11.0);
}

TEST(Stats, DumpContainsNamesAndValues) {
    stats::Group g{"mem"};
    g.scalar("reads", "read count") += 3;
    std::ostringstream os;
    g.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("mem.reads"), std::string::npos);
    EXPECT_NE(out.find("3"), std::string::npos);
    EXPECT_NE(out.find("read count"), std::string::npos);
}

}  // namespace
}  // namespace g5r
