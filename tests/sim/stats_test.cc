// Statistics framework: scalars, formulas, distributions, lookup and dumps.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/sim_object.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"

namespace g5r {
namespace {

TEST(Stats, ScalarAccumulates) {
    stats::Group g{"grp"};
    auto& s = g.scalar("count", "a counter");
    EXPECT_EQ(s.value(), 0.0);
    ++s;
    s += 4.5;
    s.inc();
    EXPECT_DOUBLE_EQ(s.value(), 6.5);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(Stats, FormulaEvaluatesLazily) {
    stats::Group g{"grp"};
    auto& insts = g.scalar("insts", "instructions");
    auto& cycles = g.scalar("cycles", "cycles");
    auto& ipc = g.formula("ipc", "instructions per cycle", [&] {
        return cycles.value() > 0 ? insts.value() / cycles.value() : 0.0;
    });
    EXPECT_EQ(ipc.value(), 0.0);
    insts += 30;
    cycles += 10;
    EXPECT_DOUBLE_EQ(ipc.value(), 3.0);
    insts += 10;
    EXPECT_DOUBLE_EQ(ipc.value(), 4.0);
}

TEST(Stats, DistributionTracksMoments) {
    stats::Group g{"grp"};
    auto& d = g.distribution("lat", "latency");
    for (const double v : {1.0, 2.0, 3.0, 4.0}) d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.5);
    EXPECT_DOUBLE_EQ(d.minValue(), 1.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 4.0);
    EXPECT_NEAR(d.variance(), 1.25, 1e-12);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
}

TEST(Stats, GroupFindQualifiesNames) {
    stats::Group g{"cpu0"};
    auto& s = g.scalar("commits", "committed");
    s += 7;
    const stats::Stat* found = g.find("commits");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->name(), "cpu0.commits");
    EXPECT_DOUBLE_EQ(found->value(), 7.0);
    EXPECT_EQ(g.find("nope"), nullptr);
}

TEST(Stats, SimulationWideLookup) {
    Simulation sim;
    SimObject a{sim, "sys.cpu0"};
    SimObject b{sim, "sys.cpu1"};
    a.statsGroup().scalar("commits", "x") += 11;
    b.statsGroup().scalar("commits", "x") += 22;

    const auto* s0 = sim.findStat("sys.cpu0.commits");
    const auto* s1 = sim.findStat("sys.cpu1.commits");
    ASSERT_NE(s0, nullptr);
    ASSERT_NE(s1, nullptr);
    EXPECT_DOUBLE_EQ(s0->value(), 11.0);
    EXPECT_DOUBLE_EQ(s1->value(), 22.0);
    EXPECT_EQ(sim.findStat("sys.cpu2.commits"), nullptr);
    EXPECT_EQ(sim.findStat("sys.cpu0"), nullptr);
}

TEST(Stats, DumpContainsNamesAndValues) {
    stats::Group g{"mem"};
    g.scalar("reads", "read count") += 3;
    std::ostringstream os;
    g.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("mem.reads"), std::string::npos);
    EXPECT_NE(out.find("3"), std::string::npos);
    EXPECT_NE(out.find("read count"), std::string::npos);
}

}  // namespace
}  // namespace g5r
