// Odds and ends: deterministic RNG, stats dumping from a whole simulation,
// the hardware event bus, and kernel invariant enforcement (death tests).
#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "sim/event_queue.hh"
#include "sim/hw_events.hh"
#include "sim/rng.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

namespace g5r {
namespace {

TEST(Rng, DeterministicAndWellSpread) {
    Rng a{42}, b{42}, c{43};
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
    // Different seeds diverge immediately.
    Rng a2{42};
    EXPECT_NE(a2.next(), c.next());

    // below() respects its bound; uniform() stays in [0,1).
    Rng r{7};
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(r.below(17), 17u);
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        const auto v = r.range(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
    }
}

TEST(HwEventBus, AccumulatesAndDrains) {
    HwEventBus bus;
    bus.pulse(HwEventBus::kCommit0);
    bus.pulse(HwEventBus::kCommit0, 3);
    bus.pulse(HwEventBus::kL1dMiss);
    bus.pulse(99);  // Out of range: ignored.
    EXPECT_EQ(bus.peek()[HwEventBus::kCommit0], 4u);
    const auto drained = bus.drain();
    EXPECT_EQ(drained[HwEventBus::kCommit0], 4u);
    EXPECT_EQ(drained[HwEventBus::kL1dMiss], 1u);
    EXPECT_EQ(bus.peek()[HwEventBus::kCommit0], 0u);
}

TEST(HwEventBus, PulseSaturatesInsteadOfWrapping) {
    // Regression: the count used to wrap at 2^32, so a consumer that drains
    // rarely (e.g. while quiescence-gated) could under-read its total.
    HwEventBus bus;
    const auto max = std::numeric_limits<std::uint32_t>::max();
    bus.pulse(HwEventBus::kCommit0, max - 2);
    bus.pulse(HwEventBus::kCommit0, 5);  // Would wrap to 2.
    EXPECT_EQ(bus.peek()[HwEventBus::kCommit0], max);
    bus.pulse(HwEventBus::kCommit0);     // Already saturated: stays put.
    EXPECT_EQ(bus.peek()[HwEventBus::kCommit0], max);
    EXPECT_EQ(bus.drain()[HwEventBus::kCommit0], max);
    EXPECT_EQ(bus.peek()[HwEventBus::kCommit0], 0u);
}

TEST(HwEventBus, WakeCallbackFiresOnEmptyToNonEmptyOnly) {
    HwEventBus bus;
    int wakes = 0;
    bus.addWakeCallback([&] { ++wakes; });
    EXPECT_FALSE(bus.hasPending());
    bus.pulse(HwEventBus::kCommit0);
    EXPECT_EQ(wakes, 1);
    EXPECT_TRUE(bus.hasPending());
    bus.pulse(HwEventBus::kCommit0);     // Still pending: no second wake.
    bus.pulse(HwEventBus::kL1dMiss);
    EXPECT_EQ(wakes, 1);
    bus.drain();
    EXPECT_FALSE(bus.hasPending());
    bus.pulse(HwEventBus::kCycle);       // Fresh transition: wakes again.
    EXPECT_EQ(wakes, 2);
    bus.pulse(HwEventBus::kCycle, 0);    // Zero pulses never wake.
    bus.drain();
    bus.pulse(HwEventBus::kCycle, 0);
    EXPECT_EQ(wakes, 2);
}

TEST(Simulation, DumpStatsListsEveryObject) {
    Simulation sim;
    SimObject a{sim, "sys.alpha"};
    SimObject b{sim, "sys.beta"};
    a.statsGroup().scalar("x", "an x") += 5;
    b.statsGroup().scalar("y", "a y") += 7;
    std::ostringstream os;
    sim.dumpStats(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("sys.alpha.x"), std::string::npos);
    EXPECT_NE(out.find("sys.beta.y"), std::string::npos);
}

using EventQueueDeath = ::testing::Test;

TEST(EventQueueDeath, SchedulingIntoThePastPanics) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const auto scheduleIntoPast = [] {
        EventQueue q;
        CallbackEvent later{[] {}, "later"};
        CallbackEvent now{[&] { q.schedule(later, 5); }, "now"};
        q.schedule(now, 100);
        q.serviceOne();
    };
    EXPECT_DEATH(scheduleIntoPast(), "into the past");
}

TEST(EventQueueDeath, DoubleSchedulePanics) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const auto doubleSchedule = [] {
        EventQueue q;
        CallbackEvent ev{[] {}, "ev"};
        q.schedule(ev, 10);
        q.schedule(ev, 20);
    };
    EXPECT_DEATH(doubleSchedule(), "already-scheduled");
}

TEST(EventQueueDeath, DescheduleIdleEventPanics) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const auto descheduleIdle = [] {
        EventQueue q;
        CallbackEvent ev{[] {}, "ev"};
        q.deschedule(ev);
    };
    EXPECT_DEATH(descheduleIdle(), "idle event");
}

}  // namespace
}  // namespace g5r
