// A minimal requester -> [FlakyForwarder] -> memory system with an
// ObsSession attached — shared by the flight-recorder and divergence-finder
// tests. The requester discards responses inside the receiving dispatch so
// every packet reaches its "complete" callback while the observer is still
// installed, mirroring the SoC's masters.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "common/flaky_forwarder.hh"
#include "mem/simple_mem.hh"
#include "obs/session.hh"
#include "sim/packet_id.hh"
#include "sim/simulation.hh"

namespace g5r::testing {

class SinkRequester : public SimObject {
public:
    SinkRequester(Simulation& sim, std::string objName)
        : SimObject(sim, std::move(objName)),
          port_(this->name() + ".port", *this),
          issueEvent_([this] { issuePending(); }, this->name() + ".issue") {}

    RequestPort& port() { return port_; }

    void issueAt(Tick when, PacketPtr pkt) {
        sendQueue_.push_back(std::move(pkt));
        if (!issueEvent_.scheduled()) {
            eventQueue().schedule(issueEvent_, std::max(when, curTick()));
        }
    }

    std::size_t numResponses() const { return numResponses_; }

private:
    class Port final : public RequestPort {
    public:
        Port(std::string portName, SinkRequester& owner)
            : RequestPort(std::move(portName)), owner_(owner) {}
        bool recvTimingResp(PacketPtr& pkt) override {
            pkt.reset();
            ++owner_.numResponses_;
            return true;
        }
        void recvReqRetry() override {
            owner_.blocked_ = false;
            owner_.issuePending();
        }

    private:
        SinkRequester& owner_;
    };

    void issuePending() {
        while (!blocked_ && !sendQueue_.empty()) {
            if (!port_.sendTimingReq(sendQueue_.front())) {
                blocked_ = true;
                return;
            }
            sendQueue_.pop_front();
        }
    }

    Port port_;
    CallbackEvent issueEvent_;
    std::deque<PacketPtr> sendQueue_;
    std::size_t numResponses_ = 0;
    bool blocked_ = false;
};

struct RecordHarness {
    /// @p flaky non-null splices a FlakyForwarder ("system.flaky") between
    /// the requester and the memory.
    RecordHarness(const obs::ObsOptions& opts, std::string_view runName,
                  const FlakyForwarderParams* flaky = nullptr) {
        SimpleMemory::Params p;
        p.range = AddrRange{0, 1ULL << 20};
        p.latency = 10'000;
        mem = std::make_unique<SimpleMemory>(sim, "system.mem0", p, store);
        req = std::make_unique<SinkRequester>(sim, "system.cpu0");
        if (flaky != nullptr) {
            fwd = std::make_unique<FlakyForwarder>(sim, "system.flaky", *flaky);
            req->port().bind(fwd->cpuSidePort());
            fwd->memSidePort().bind(mem->port());
        } else {
            req->port().bind(mem->port());
        }
        session = obs::ObsSession::create(sim, opts, runName);
    }

    /// Issue @p n 64-byte reads at tick 0, run to completion, finish the
    /// session (closing the recording).
    void runReads(int n) {
        {
            // Packets are built before run() installs the per-run ID counter;
            // without a local scope they would draw from the process-global
            // fallback and the recorded digests would depend on every run
            // that preceded this one in the process.
            std::uint64_t packetIds = 0;
            PacketIdScope idScope{packetIds};
            for (int i = 0; i < n; ++i) req->issueAt(0, makeReadPacket(64 * i, 64));
        }
        sim.run();
        if (session != nullptr) session->finish();
    }

    Simulation sim;
    BackingStore store;
    std::unique_ptr<SimpleMemory> mem;
    std::unique_ptr<SinkRequester> req;
    std::unique_ptr<FlakyForwarder> fwd;
    std::unique_ptr<obs::ObsSession> session;
};

}  // namespace g5r::testing
