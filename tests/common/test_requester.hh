// A reusable timing requester for memory-system tests: queues packets,
// respects the retry protocol, records responses with their arrival ticks.
#pragma once

#include <deque>
#include <utility>
#include <vector>

#include "mem/port.hh"
#include "sim/event.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

namespace g5r::testing {

class TestRequester : public SimObject {
public:
    TestRequester(Simulation& sim, std::string name)
        : SimObject(sim, std::move(name)),
          port_(this->name() + ".port", *this),
          issueEvent_([this] { issuePending(); }, this->name() + ".issue") {}

    RequestPort& port() { return port_; }

    /// Queue a packet for issue at the given tick (default: now).
    void issueAt(Tick when, PacketPtr pkt) {
        pkt->setIssueTick(when);
        sendQueue_.push_back(std::move(pkt));
        if (!issueEvent_.scheduled()) {
            eventQueue().schedule(issueEvent_, std::max(when, curTick()));
        }
    }

    struct Received {
        Tick tick;
        PacketPtr pkt;
    };
    std::vector<Received>& responses() { return responses_; }
    const std::vector<Received>& responses() const { return responses_; }
    std::size_t numResponses() const { return responses_.size(); }
    bool allResponsesReceived() const { return sendQueue_.empty() && outstanding_ == 0; }
    int retriesSeen() const { return retries_; }

private:
    class Port final : public RequestPort {
    public:
        Port(std::string portName, TestRequester& owner)
            : RequestPort(std::move(portName)), owner_(owner) {}
        bool recvTimingResp(PacketPtr& pkt) override {
            owner_.responses_.push_back({owner_.curTick(), std::move(pkt)});
            --owner_.outstanding_;
            return true;
        }
        void recvReqRetry() override {
            ++owner_.retries_;
            owner_.blocked_ = false;
            owner_.issuePending();
        }

    private:
        TestRequester& owner_;
    };

    void issuePending() {
        while (!blocked_ && !sendQueue_.empty()) {
            PacketPtr& pkt = sendQueue_.front();
            if (pkt->issueTick() > curTick()) {
                eventQueue().reschedule(issueEvent_, pkt->issueTick());
                return;
            }
            const bool needsResp = pkt->needsResponse();
            if (!port_.sendTimingReq(pkt)) {
                blocked_ = true;
                return;
            }
            if (needsResp) ++outstanding_;
            sendQueue_.pop_front();
        }
    }

    Port port_;
    CallbackEvent issueEvent_;
    std::deque<PacketPtr> sendQueue_;
    std::vector<Received> responses_;
    int outstanding_ = 0;
    int retries_ = 0;
    bool blocked_ = false;
};

}  // namespace g5r::testing
