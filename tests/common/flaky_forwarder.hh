// A pass-through timing-port stage that deterministically (LCG) rejects a
// fraction of first attempts in both directions, exercising the full
// req-retry / resp-retry protocol of everything up- and downstream of it.
// Unlike a flaky *memory*, it stores nothing: splice it between a requester
// and the real memory path and the data stays bit-exact.
#pragma once

#include <cstdint>

#include "mem/port.hh"
#include "sim/event.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

namespace g5r::testing {

struct FlakyForwarderParams {
    std::uint32_t seed = 1;
    unsigned rejectOneIn = 3;  ///< Reject ~1/N first attempts (0 = never).
    Tick retryDelay = 2'000;   ///< Delay before the unblocking retry.
};

class FlakyForwarder : public SimObject {
public:
    using Params = FlakyForwarderParams;

    FlakyForwarder(Simulation& sim, std::string objName, Params p = {})
        : SimObject(sim, std::move(objName)),
          params_(p),
          lcg_(p.seed != 0 ? p.seed : 1),
          cpuPort_(name() + ".cpu_side", *this),
          memPort_(name() + ".mem_side", *this),
          reqRetryEvent_([this] { cpuPort_.sendReqRetry(); }, name() + ".req_retry"),
          respRetryEvent_([this] { memPort_.sendRespRetry(); }, name() + ".resp_retry") {}

    ResponsePort& cpuSidePort() { return cpuPort_; }
    RequestPort& memSidePort() { return memPort_; }

    int reqRejections() const { return reqRejections_; }
    int respRejections() const { return respRejections_; }
    std::uint64_t reqsForwarded() const { return reqsForwarded_; }
    std::uint64_t respsForwarded() const { return respsForwarded_; }

private:
    class CpuSide final : public ResponsePort {
    public:
        CpuSide(std::string n, FlakyForwarder& o) : ResponsePort(std::move(n)), owner_(o) {}
        bool recvTimingReq(PacketPtr& pkt) override { return owner_.handleReq(pkt); }
        void recvFunctional(Packet& pkt) override { owner_.memPort_.sendFunctional(pkt); }
        void recvRespRetry() override { owner_.memPort_.sendRespRetry(); }

    private:
        FlakyForwarder& owner_;
    };

    class MemSide final : public RequestPort {
    public:
        MemSide(std::string n, FlakyForwarder& o) : RequestPort(std::move(n)), owner_(o) {}
        bool recvTimingResp(PacketPtr& pkt) override { return owner_.handleResp(pkt); }
        void recvReqRetry() override { owner_.cpuPort_.sendReqRetry(); }

    private:
        FlakyForwarder& owner_;
    };

    bool flip() {
        lcg_ = lcg_ * 1664525u + 1013904223u;
        return params_.rejectOneIn != 0 && lcg_ % params_.rejectOneIn == 0;
    }

    bool handleReq(PacketPtr& pkt) {
        if (flip()) {
            ++reqRejections_;
            if (!reqRetryEvent_.scheduled()) {
                eventQueue().schedule(reqRetryEvent_, curTick() + params_.retryDelay);
            }
            return false;
        }
        // A downstream rejection needs no bookkeeping: its recvReqRetry is
        // forwarded straight upstream by MemSide.
        if (!memPort_.sendTimingReq(pkt)) return false;
        ++reqsForwarded_;
        return true;
    }

    bool handleResp(PacketPtr& pkt) {
        if (flip()) {
            ++respRejections_;
            if (!respRetryEvent_.scheduled()) {
                eventQueue().schedule(respRetryEvent_, curTick() + params_.retryDelay);
            }
            return false;
        }
        if (!cpuPort_.sendTimingResp(pkt)) return false;
        ++respsForwarded_;
        return true;
    }

    Params params_;
    std::uint32_t lcg_;
    CpuSide cpuPort_;
    MemSide memPort_;
    CallbackEvent reqRetryEvent_;
    CallbackEvent respRetryEvent_;
    int reqRejections_ = 0;
    int respRejections_ = 0;
    std::uint64_t reqsForwarded_ = 0;
    std::uint64_t respsForwarded_ = 0;
};

}  // namespace g5r::testing
