// SoC extension features: the SRAMIF scratchpad (the paper's proposed
// extension), multi-core PMU event wiring, and multi-programmed workloads.
#include <gtest/gtest.h>

#include "soc/experiments.hh"
#include "soc/model_loader.hh"
#include "soc/soc.hh"

namespace g5r {
namespace {

// ----------------------------------------------------------- scratchpad ----

models::NvdlaShape weightHeavyShape() {
    // An FC-like layer where weights dominate the traffic, so steering them
    // to the SRAMIF scratchpad meaningfully unloads main memory.
    models::NvdlaShape s;
    s.width = s.height = 12;
    s.inChannels = 128;
    s.outChannels = 128;
    s.filterH = s.filterW = 3;
    s.refetch = 3;
    return s;
}

TEST(Scratchpad, WeightsViaSramifStillVerify) {
    experiments::DseRunConfig cfg;
    cfg.shape = weightHeavyShape();
    cfg.memTech = MemTech::kDdr4_1ch;
    cfg.numCores = 0;
    cfg.maxInflight = 64;
    cfg.sramScratchpad = true;
    const auto result = experiments::runNvdlaDse(cfg);
    ASSERT_TRUE(result.completed);
    EXPECT_TRUE(result.checksumsOk);
}

TEST(Scratchpad, OffloadingWeightsRelievesNarrowMemory) {
    experiments::DseRunConfig cfg;
    cfg.shape = weightHeavyShape();
    cfg.memTech = MemTech::kDdr4_1ch;
    cfg.numCores = 0;
    cfg.maxInflight = 64;

    cfg.sramScratchpad = false;
    const auto without = experiments::runNvdlaDse(cfg);
    ASSERT_TRUE(without.completed && without.checksumsOk);

    cfg.sramScratchpad = true;
    const auto with = experiments::runNvdlaDse(cfg);
    ASSERT_TRUE(with.completed && with.checksumsOk);

    // Weight traffic moved off the single DDR4 channel: the run gets faster.
    EXPECT_LT(with.runtimeTicks, without.runtimeTicks);
}

TEST(Scratchpad, MainMemorySeesNoWeightTraffic) {
    Simulation sim;
    SocConfig socCfg = table1Config(MemTech::kDdr4_1ch);
    socCfg.numCores = 0;
    Soc soc{sim, socCfg};

    RtlObjectParams rp;
    rp.clockPeriod = socCfg.rtlClock;
    RtlObject& rtl = soc.attachRtlModel("nvdla0", loadRtlModel("nvdla"), rp,
                                        Soc::MemPorts::kWithScratchpad, false);
    (void)rtl;
    // The scratchpad store exists and is writable; main memory store is
    // separate.
    soc.scratchpadStore(0).store<std::uint64_t>(0x100, 42);
    EXPECT_EQ(soc.scratchpadStore(0).load<std::uint64_t>(0x100), 42u);
    EXPECT_EQ(soc.memory().load<std::uint64_t>(0x100), 0u);
}

// ------------------------------------------------------- multi-core PMU ----

TEST(MultiCorePmu, EachCoreDrivesItsOwnCommitLine) {
    Simulation sim;
    SocConfig cfg = table1Config();
    cfg.numCores = 3;
    Soc soc{sim, cfg};

    // Three different-length counting loops.
    auto program = [](int iters) {
        return isa::assemble("  li t0, 0\n  li t1, " + std::to_string(iters) +
                             "\nloop:\n  addi t0, t0, 1\n  blt t0, t1, loop\n"
                             "  li a7, 0\n  ecall\n  halt\n");
    };
    soc.loadProgram(0, program(100), 0x1000);
    soc.loadProgram(1, program(300), 0x8000);
    soc.loadProgram(2, program(700), 0x10000);

    sim.run(100'000'000'000ULL);
    ASSERT_TRUE(soc.core(0).halted());
    ASSERT_TRUE(soc.core(1).halted());
    ASSERT_TRUE(soc.core(2).halted());

    const auto pulses = soc.eventBus().drain();
    // Core 0: four spread lanes sum to its commit count.
    EXPECT_EQ(pulses[0] + pulses[1] + pulses[2] + pulses[3],
              soc.core(0).committedInstructions());
    // Cores 1 and 2: single dedicated lines 8 and 9.
    EXPECT_EQ(pulses[8], soc.core(1).committedInstructions());
    EXPECT_EQ(pulses[9], soc.core(2).committedInstructions());
    EXPECT_GT(pulses[9], pulses[8]);
}

// ------------------------------------------------- multi-programmed SoC ----

TEST(MultiProgram, FourCoresSortConcurrently) {
    Simulation sim;
    SocConfig cfg = table1Config(MemTech::kDdr4_1ch);
    cfg.numCores = 4;
    Soc soc{sim, cfg};

    constexpr std::uint64_t kElems = 64;
    for (unsigned c = 0; c < 4; ++c) {
        const std::uint64_t arrayBase = 0x100000 + c * 0x10000;
        const std::uint64_t stackTop = 0x80000 + c * 0x4000;
        std::string src = "  li sp, " + std::to_string(stackTop) + "\n" +
                          "  li a0, " + std::to_string(arrayBase) + "\n" +
                          "  li a1, " + std::to_string(kElems) + "\n" +
                          "  call quicksort\n  li a7, 0\n  ecall\n  halt\n" +
                          workloads::quickSortFunction();
        soc.loadProgram(c, isa::assemble(src), 0x1000 + c * 0x2000);
        Rng rng{c + 77};
        for (std::uint64_t i = 0; i < kElems; ++i) {
            soc.memory().store<std::uint64_t>(arrayBase + 8 * i, rng.below(100000));
        }
    }

    const RunResult result = sim.run(500'000'000'000ULL);
    EXPECT_EQ(result.cause, ExitCause::kSimExit);

    // Every array is sorted (probe through each core's write-back L1D).
    for (unsigned c = 0; c < 4; ++c) {
        ASSERT_TRUE(soc.core(c).halted()) << "core " << c;
        const std::uint64_t arrayBase = 0x100000 + c * 0x10000;
        std::uint64_t prev = 0;
        for (std::uint64_t i = 0; i < kElems; ++i) {
            Packet probe{MemCmd::kReadReq, arrayBase + 8 * i, 8};
            soc.l1d(c).cpuSidePort().recvFunctional(probe);
            const auto v = probe.get<std::uint64_t>();
            if (i > 0) ASSERT_LE(prev, v) << "core " << c << " index " << i;
            prev = v;
        }
    }
    // All four private hierarchies saw traffic.
    for (unsigned c = 0; c < 4; ++c) {
        EXPECT_GT(sim.findStat("system.cpu" + std::to_string(c) + ".l1d.demandAccesses")
                      ->value(),
                  0.0);
    }
}

TEST(MultiProgram, ConcurrentCoresContendForSharedMemory) {
    // The same streaming program alone vs with three co-runners: shared LLC
    // and DRAM contention must make the shared run no faster.
    auto makeStream = [](unsigned c) {
        const std::uint64_t base = 0x400000 + c * 0x100000;  // 1 MiB apart.
        return isa::assemble("  li t0, " + std::to_string(base) + R"(
              li t1, 0
              li t2, 8192         ; 512 KiB: beyond L2, into LLC/DRAM
            loop:
              slli t3, t1, 6
              add t3, t0, t3
              ld t4, 0(t3)
              addi t1, t1, 1
              blt t1, t2, loop
              li a7, 0
              ecall
              halt
        )");
    };

    auto runWith = [&](unsigned numProgs) {
        Simulation sim;
        SocConfig cfg = table1Config(MemTech::kDdr4_1ch);
        cfg.numCores = 4;
        Soc soc{sim, cfg};
        for (unsigned c = 0; c < numProgs; ++c) {
            soc.loadProgram(c, makeStream(c), 0x1000 + c * 0x2000);
        }
        sim.run(500'000'000'000ULL);
        return soc.core(0).cyclesRetired();
    };

    const auto alone = runWith(1);
    const auto shared = runWith(4);
    EXPECT_GE(shared, alone);
}

}  // namespace
}  // namespace g5r
