// Combined integration: the paper's premise is "a system with multiple
// hardware components connected" — here the PMU and an NVDLA instance share
// one SoC while a core runs a program, all three interacting through the
// same interconnect.
#include <gtest/gtest.h>

#include "soc/model_loader.hh"
#include "soc/nvdla_host.hh"
#include "soc/pmu_observer.hh"
#include "soc/soc.hh"

namespace g5r {
namespace {

TEST(CombinedSoc, PmuMonitorsWhileNvdlaComputes) {
    Simulation sim;
    SocConfig cfg = table1Config(MemTech::kDdr4_2ch);
    cfg.numCores = 1;
    Soc soc{sim, cfg};

    // Model 0: the PMU, watching core 0 through the event bus.
    RtlObjectParams pmuParams;
    pmuParams.clockPeriod = cfg.coreClock;
    RtlObject& pmu = soc.attachRtlModel("pmu", loadRtlModel("pmu"), pmuParams,
                                        Soc::MemPorts::kNone, /*wireEventBus=*/true);

    // Model 1: an NVDLA running a small convolution, driven by a host.
    models::NvdlaShape shape;
    shape.width = shape.height = 16;
    shape.inChannels = shape.outChannels = 16;
    shape.filterH = shape.filterW = 1;
    const auto trace = models::makeConvTrace("combined", shape, models::NvdlaPlacement{}, 3);

    RtlObjectParams dlaParams;
    dlaParams.clockPeriod = cfg.rtlClock;
    dlaParams.maxInflight = 64;
    soc.attachRtlModel("nvdla0", loadRtlModel("nvdla"), dlaParams,
                       Soc::MemPorts::kMainMemory, /*wireEventBus=*/false);

    NvdlaHost::Params hp;
    hp.csbBase = soc.deviceBaseOf(1);
    NvdlaHost host{sim, "system.host0", hp, trace};
    host.port().bind(soc.addHostPort("host0"));

    // The PMU observer samples every 10k cycles while everything runs.
    PmuObserver::Params op;
    op.pmuBase = soc.deviceBaseOf(0);
    OooCore& core0 = soc.core(0);
    PmuObserver observer{sim, "system.pmu_observer", op,
                         [&core0]() -> std::array<double, 3> {
                             return {static_cast<double>(core0.committedInstructions()),
                                     static_cast<double>(core0.cyclesRetired()), 0.0};
                         }};
    observer.setConfigWrites(PmuObserver::fig5Config(10'000));
    observer.port().bind(soc.addHostPort("pmu_observer"));
    pmu.setIrqCallback([&observer](bool level) { observer.onIrq(level); });

    // The core crunches in parallel with the accelerator.
    soc.loadProgram(0, isa::assemble(R"(
          li t0, 0
          li t1, 200000
        loop:
          addi t0, t0, 1
          blt t0, t1, loop
          li a7, 0
          ecall
          halt
    )"));

    // Run until both the program and the accelerator are finished.
    bool coreDone = false;
    while ((!coreDone || !host.finished()) && sim.curTick() < 2'000'000'000ULL) {
        sim.run(sim.curTick() + 50'000'000);
        coreDone = soc.core(0).halted();
    }

    ASSERT_TRUE(soc.core(0).halted());
    ASSERT_TRUE(host.finished());
    EXPECT_TRUE(host.checksumOk());
    // The PMU sampled the whole episode; its commit totals track the core.
    ASSERT_GE(observer.samples().size(), 3u);
    const auto& last = observer.samples().back();
    EXPECT_NEAR(static_cast<double>(last.pmuCommits()), last.gem5Insts,
                last.gem5Insts * 0.02 + 200);
    // Both devices moved real traffic.
    EXPECT_GT(sim.findStat("system.pmu.devReads")->value(), 0.0);
    EXPECT_GT(sim.findStat("system.nvdla0.memReads")->value(), 0.0);
}

TEST(CombinedSoc, RtlObjectDeviceQueueBackpressures) {
    // Flood a device's CSB window with more outstanding writes than its
    // queue depth: the RTLObject must back-pressure and still complete all.
    Simulation sim;
    SocConfig cfg = table1Config();
    cfg.numCores = 1;
    Soc soc{sim, cfg};
    RtlObjectParams rp;
    rp.clockPeriod = cfg.rtlClock;
    rp.devQueueDepth = 2;
    soc.attachRtlModel("pmu", loadRtlModel("pmu"), rp, Soc::MemPorts::kNone, true);

    // 32 back-to-back device writes from the core (stores drain via the
    // store buffer, up to 4 outstanding at a time).
    std::string src = "  li t0, " + std::to_string(soc.deviceBaseOf(0)) + "\n";
    for (int i = 0; i < 32; ++i) {
        src += "  li t1, " + std::to_string(i) + "\n  sd t1, 0(t0)\n";
    }
    src += "  ld a0, 0(t0)\n  li a7, 0\n  ecall\n  halt\n";
    soc.loadProgram(0, isa::assemble(src));
    const RunResult result = sim.run(10'000'000'000ULL);
    EXPECT_EQ(result.cause, ExitCause::kSimExit);
    // The final read returns the last value written to counter 0 (writes
    // set the counter preset; counting may add on top, so >= 31).
    EXPECT_GE(soc.core(0).archReg(10), 31u);
    EXPECT_EQ(sim.findStat("system.pmu.devWrites")->value(), 32.0);
}

}  // namespace
}  // namespace g5r
