// NvdlaHost trace loading and start gating.
//
// The regression here guards the PR 9 chunking fix: startup()'s functional
// segment loads must never cross a 64 B line boundary, because the line-
// interleaved crossbar decode routes a whole packet by its start address —
// a line-crossing write from an unaligned segment lands its tail bytes in
// the wrong downstream memory.
#include <gtest/gtest.h>

#include "mem/simple_mem.hh"
#include "mem/xbar.hh"
#include "soc/nvdla_host.hh"

namespace g5r {
namespace {

constexpr AddrRange kRange{0, 1ULL << 30};

std::uint8_t patternByte(std::size_t i) { return static_cast<std::uint8_t>(i * 13 + 5); }

/// Two line-interleaved memories behind a crossbar — the smallest system
/// where mis-chunked functional writes are observable.
struct Harness {
    Harness() : xbar(sim, "xbar", {}) {
        SimpleMemory::Params mp;
        mp.range = kRange;
        even = std::make_unique<SimpleMemory>(sim, "even", mp, evenStore);
        odd = std::make_unique<SimpleMemory>(sim, "odd", mp, oddStore);
        xbar.addMemSidePort("even", RouteSpec{kRange, 6, 1, 0}).bind(even->port());
        xbar.addMemSidePort("odd", RouteSpec{kRange, 6, 1, 1}).bind(odd->port());
    }

    /// The store that owns @p addr under the line-interleaved routing.
    BackingStore& owningStore(Addr addr) {
        return ((addr >> 6) & 1) == 0 ? evenStore : oddStore;
    }

    Simulation sim;
    Xbar xbar;
    BackingStore evenStore;
    BackingStore oddStore;
    std::unique_ptr<SimpleMemory> even;
    std::unique_ptr<SimpleMemory> odd;
};

TEST(NvdlaHost, UnalignedSegmentLoadsByteExactly) {
    Harness h;
    models::NvdlaTrace trace;
    models::NvdlaTrace::Segment seg;
    seg.addr = 0x1000 + 13;  // Unaligned: every 64 B chunk would cross a line.
    for (std::size_t i = 0; i < 217; ++i) seg.bytes.push_back(patternByte(i));
    trace.segments.push_back(seg);

    NvdlaHost host{h.sim, "host", {}, trace};
    host.port().bind(h.xbar.addCpuSidePort("host"));
    host.startup();

    for (std::size_t i = 0; i < seg.bytes.size(); ++i) {
        const Addr addr = seg.addr + i;
        ASSERT_EQ(h.owningStore(addr).load<std::uint8_t>(addr), patternByte(i))
            << "byte " << i << " at 0x" << std::hex << addr
            << " missing from its line's store";
    }
}

TEST(NvdlaHost, WaitForReleaseGatesCsbProgramming) {
    Harness h;
    // A fake CSB endpoint: the status register already reports done and the
    // checksum register holds the expected value, so once released the host
    // runs its whole state machine against plain memory.
    constexpr Addr kCsbBase = 0x0010'0000;
    constexpr std::uint64_t kChecksum = 0x00C0FFEE;
    for (BackingStore* s : {&h.evenStore, &h.oddStore}) {
        s->store<std::uint64_t>(kCsbBase + models::NvdlaDesign::kStatusReg, 2);
        s->store<std::uint64_t>(kCsbBase + models::NvdlaDesign::kChecksumReg, kChecksum);
    }

    models::NvdlaTrace trace;
    trace.expectedChecksum = kChecksum;
    NvdlaHost::Params hp;
    hp.csbBase = kCsbBase;
    hp.waitForRelease = true;
    NvdlaHost host{h.sim, "host", hp, trace};
    host.port().bind(h.xbar.addCpuSidePort("host"));

    // startup() only loads segments; nothing is scheduled until release().
    const RunResult gated = h.sim.run();
    EXPECT_EQ(gated.cause, ExitCause::kQueueEmpty);
    EXPECT_FALSE(host.finished());

    host.release();
    h.sim.run();
    EXPECT_TRUE(host.finished());
    EXPECT_TRUE(host.checksumOk());
}

}  // namespace
}  // namespace g5r
