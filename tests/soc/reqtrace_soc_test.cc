// Request tracing over the full SoC: sidecar content for real DSE runs,
// byte-identity across runner job counts and across idle-tick gating, the
// .g5rec identity contract with tracing enabled, the always-on in-memory
// stage blame, and the metrics-timeline channels for the DMA latency
// histogram and SPM counters.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "exp/runner.hh"
#include "obs/diff.hh"
#include "obs/metrics.hh"
#include "obs/reqtrace.hh"
#include "soc/experiments.hh"

namespace g5r {
namespace {

models::NvdlaShape tinyShape() {
    models::NvdlaShape shape;
    shape.width = shape.height = 8;
    shape.inChannels = 16;
    shape.outChannels = 16;
    shape.filterH = shape.filterW = 3;
    shape.refetch = 1;
    return shape;
}

experiments::DseRunConfig baseConfig(MemPath path, unsigned maxInflight) {
    experiments::DseRunConfig cfg;
    cfg.shape = tinyShape();
    cfg.workloadName = "reqtrace";
    cfg.memTech = MemTech::kDdr4_1ch;
    cfg.memPath = path;
    cfg.maxInflight = maxInflight;
    cfg.numAccelerators = 1;
    cfg.numCores = 0;
    return cfg;
}

std::string slurp(const std::string& path) {
    std::ifstream in{path};
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(ReqTraceSoc, DmaSpmSidecarCarriesTheCausalTree) {
    auto cfg = baseConfig(MemPath::kDmaSpm, 16);
    cfg.obs.reqtraceEnabled = true;
    cfg.obs.reqtracePath = ::testing::TempDir() + "/soc_tree.reqtrace.jsonl";
    const auto result = experiments::runNvdlaDse(cfg);
    ASSERT_TRUE(result.completed && result.checksumsOk);
    EXPECT_EQ(result.reqtracePath, cfg.obs.reqtracePath);

    const obs::ReqTraceFile file = obs::readReqTrace(cfg.obs.reqtracePath);
    ASSERT_FALSE(file.records.empty());
    EXPECT_EQ(file.declaredRequests, file.records.size());

    // One nvdlaJob root; prefetch and drain descriptors parent under it.
    std::size_t jobs = 0, prefetches = 0, drains = 0;
    ReqId jobId = 0;
    for (const auto& rec : file.records) {
        if (rec.kind == "nvdlaJob") {
            ++jobs;
            jobId = rec.id;
            EXPECT_EQ(rec.parent, 0u);
            EXPECT_TRUE(rec.ended);
        }
    }
    ASSERT_EQ(jobs, 1u);
    for (const auto& rec : file.records) {
        if (rec.kind == "dmaPrefetch") {
            ++prefetches;
            EXPECT_EQ(rec.parent, jobId);
        } else if (rec.kind == "dmaDrain") {
            ++drains;
            EXPECT_EQ(rec.parent, jobId);
        }
    }
    EXPECT_GT(prefetches, 0u);
    EXPECT_EQ(drains, 1u);

    // The whole tree attributes cleanly and covers real simulated time.
    const obs::BlameSummary blame = obs::computeBlame(file.records);
    ASSERT_EQ(blame.roots.size(), 1u);
    Tick sum = blame.unattributed;
    for (const Tick t : blame.stageTicks) sum += t;
    EXPECT_EQ(sum, blame.totalTicks);
    EXPECT_GT(blame.totalTicks, 0u);
    EXPECT_GT(blame.stageTicks[static_cast<std::size_t>(ReqStage::kDmaStage)], 0u);
    EXPECT_GT(blame.stageTicks[static_cast<std::size_t>(ReqStage::kDrain)], 0u);
    EXPECT_GT(blame.stageTicks[static_cast<std::size_t>(ReqStage::kRtlCompute)], 0u);
    std::remove(cfg.obs.reqtracePath.c_str());
}

TEST(ReqTraceSoc, StageBlameAlwaysPopulatedInMemory) {
    // No observability requested at all: the DSE harness still computes
    // stage blame via the in-memory reqtrace (and leaves no sidecar).
    const auto result = experiments::runNvdlaDse(baseConfig(MemPath::kDirect, 8));
    ASSERT_TRUE(result.completed && result.checksumsOk);
    EXPECT_TRUE(result.reqtracePath.empty());
    ASSERT_FALSE(result.stageBlame.empty());
    EXPECT_EQ(result.stageBlame.back().first, "unattributed");
    double total = 0;
    for (const auto& [stage, ticks] : result.stageBlame) total += ticks;
    EXPECT_GT(total, 0.0);
}

TEST(ReqTraceSoc, SidecarByteIdenticalAcrossRunnerJobs) {
    // Same task labels both times, so the sidecar headers match; only the
    // output paths differ. Canonical sorting must erase any worker-thread
    // callback-order effects.
    const auto makeTasks = [](const std::string& tag) {
        std::vector<exp::Task<std::string>> tasks;
        for (int t = 0; t < 3; ++t) {
            const std::string path = ::testing::TempDir() + "/rt_" + tag + "_" +
                                     std::to_string(t) + ".reqtrace.jsonl";
            tasks.push_back(exp::Task<std::string>{
                "reqtrace/t" + std::to_string(t), [t, path] {
                    auto cfg = baseConfig(t % 2 == 0 ? MemPath::kDmaSpm
                                                     : MemPath::kDirect,
                                          8u + 8u * static_cast<unsigned>(t));
                    cfg.obs.reqtraceEnabled = true;
                    cfg.obs.reqtracePath = path;
                    const auto r = experiments::runNvdlaDse(cfg);
                    EXPECT_TRUE(r.completed && r.checksumsOk);
                    return path;
                }});
        }
        return tasks;
    };

    const auto serial = exp::runTasks(makeTasks("j1"), 1);
    const auto parallel = exp::runTasks(makeTasks("j4"), 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t t = 0; t < serial.size(); ++t) {
        SCOPED_TRACE("task " + std::to_string(t));
        ASSERT_TRUE(serial[t].ok);
        ASSERT_TRUE(parallel[t].ok);
        const std::string bytesS = slurp(serial[t].value);
        ASSERT_FALSE(bytesS.empty());
        EXPECT_EQ(bytesS, slurp(parallel[t].value));
        std::remove(serial[t].value.c_str());
        std::remove(parallel[t].value.c_str());
    }
}

TEST(ReqTraceSoc, GatedAndUngatedSidecarsAreByteIdentical) {
    // Quiescence gating changes host-side dispatch, never simulated-time
    // packet behavior — and every reqtrace span is derived from simulated
    // ticks, so the sidecars must match to the byte.
    auto gated = baseConfig(MemPath::kDmaSpm, 16);
    auto ungated = gated;
    gated.gateIdleTicks = true;
    ungated.gateIdleTicks = false;
    gated.obs.reqtraceEnabled = ungated.obs.reqtraceEnabled = true;
    gated.obs.reqtracePath = ::testing::TempDir() + "/rt_gated.reqtrace.jsonl";
    ungated.obs.reqtracePath = ::testing::TempDir() + "/rt_ungated.reqtrace.jsonl";

    const auto g = experiments::runNvdlaDse(gated);
    const auto u = experiments::runNvdlaDse(ungated);
    ASSERT_TRUE(g.completed && g.checksumsOk);
    ASSERT_TRUE(u.completed && u.checksumsOk);
    const std::string bytesG = slurp(gated.obs.reqtracePath);
    ASSERT_FALSE(bytesG.empty());
    EXPECT_EQ(bytesG, slurp(ungated.obs.reqtracePath));
    std::remove(gated.obs.reqtracePath.c_str());
    std::remove(ungated.obs.reqtracePath.c_str());
}

TEST(ReqTraceSoc, RecordingsUnchangedByTracing) {
    // Request IDs ride on packets but are deliberately excluded from the
    // flight recorder's digests, and ID allocation happens whether or not
    // tracing listens — so turning the tracer on cannot move a single byte
    // of the .g5rec.
    auto off = baseConfig(MemPath::kDmaSpm, 16);
    auto on = off;
    off.obs.recordEnabled = on.obs.recordEnabled = true;
    off.obs.recordPath = ::testing::TempDir() + "/rt_rec_off.g5rec";
    on.obs.recordPath = ::testing::TempDir() + "/rt_rec_on.g5rec";
    on.obs.reqtraceEnabled = true;
    on.obs.reqtracePath = ::testing::TempDir() + "/rt_rec_on.reqtrace.jsonl";

    const auto a = experiments::runNvdlaDse(off);
    const auto b = experiments::runNvdlaDse(on);
    ASSERT_TRUE(a.completed && a.checksumsOk);
    ASSERT_TRUE(b.completed && b.checksumsOk);
    EXPECT_EQ(a.runtimeTicks, b.runtimeTicks);
    const std::string bytesOff = slurp(off.obs.recordPath);
    ASSERT_FALSE(bytesOff.empty());
    if (bytesOff != slurp(on.obs.recordPath)) {
        const obs::DivergenceReport rep =
            obs::diffRecordingFiles(off.obs.recordPath, on.obs.recordPath);
        ADD_FAILURE() << "tracing changed the flight recording:\n"
                      << obs::formatDivergenceReport(rep, off.obs.recordPath,
                                                     on.obs.recordPath);
    }
    std::remove(off.obs.recordPath.c_str());
    std::remove(on.obs.recordPath.c_str());
    std::remove(on.obs.reqtracePath.c_str());
}

TEST(ReqTraceSoc, MetricsTimelineCarriesDmaAndSpmChannels) {
    // PR 9's DMA latency histogram and SPM counters must surface in the
    // metrics timeline (and therefore in g5r-stats) without bespoke wiring.
    auto cfg = baseConfig(MemPath::kDmaSpm, 16);
    cfg.obs.metricsEnabled = true;
    cfg.obs.metricsPath = ::testing::TempDir() + "/rt_dma.metrics.jsonl";
    const auto result = experiments::runNvdlaDse(cfg);
    ASSERT_TRUE(result.completed && result.checksumsOk);

    const obs::MetricsTimeline tl = obs::readMetricsTimeline(cfg.obs.metricsPath);
    EXPECT_GT(tl.finalValue("system.nvdla0.dma.descriptorLatency.count"), 0.0);
    EXPECT_GT(tl.finalValue("system.nvdla0.dma.descriptorLatency.p50"), 0.0);
    EXPECT_GT(tl.finalValue("system.nvdla0.dma.descriptorLatency.p99"), 0.0);
    EXPECT_GT(tl.finalValue("system.nvdla0.spm.readHits"), 0.0);
    EXPECT_GE(tl.finalValue("system.nvdla0.spm.mshrJoins"), 0.0);

    // And the harvested DseRunResult fields agree with the histogram.
    EXPECT_GT(result.dmaLatencyP50, 0.0);
    EXPECT_GE(result.dmaLatencyP99, result.dmaLatencyP50);
    EXPECT_GE(result.dmaLatencyMax, result.dmaLatencyP99);
    std::remove(cfg.obs.metricsPath.c_str());
}

}  // namespace
}  // namespace g5r
