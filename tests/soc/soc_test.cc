// Full-SoC integration: the Table 1 system boots, runs programs through the
// complete hierarchy, hosts RTL models, and the canned experiments produce
// paper-shaped results at single points.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "soc/experiments.hh"
#include "soc/model_loader.hh"
#include "soc/soc.hh"

namespace g5r {
namespace {

TEST(Soc, IdleCoresHaltImmediately) {
    Simulation sim;
    SocConfig cfg = table1Config();
    cfg.numCores = 2;
    Soc soc{sim, cfg};
    // No program loaded: the run drains when both cores hit their HALT.
    sim.run(10'000'000);
    EXPECT_TRUE(soc.core(0).halted());
    EXPECT_TRUE(soc.core(1).halted());
    EXPECT_EQ(soc.runningCores(), 0u);
}

TEST(Soc, ProgramRunsThroughTheFullHierarchy) {
    Simulation sim;
    SocConfig cfg = table1Config();
    cfg.numCores = 2;
    Soc soc{sim, cfg};

    const auto prog = isa::assemble(R"(
          li t0, 0x100000
          li t1, 0
          li t2, 512
        fill:
          slli t3, t1, 3
          add t3, t0, t3
          sd t1, 0(t3)
          addi t1, t1, 1
          blt t1, t2, fill
          li t1, 0
          li a0, 0
        sum:
          slli t3, t1, 3
          add t3, t0, t3
          ld t4, 0(t3)
          add a0, a0, t4
          addi t1, t1, 1
          blt t1, t2, sum
          li a7, 0
          ecall
          halt
    )");
    soc.loadProgram(0, prog);
    const RunResult result = sim.run(100'000'000'000ULL);
    EXPECT_EQ(result.cause, ExitCause::kSimExit);
    EXPECT_EQ(soc.core(0).archReg(10), 511u * 512u / 2u);
    // Traffic flowed through every level.
    EXPECT_GT(sim.findStat("system.cpu0.l1d.misses")->value(), 0.0);
    EXPECT_GT(sim.findStat("system.cpu0.l2.demandAccesses")->value(), 0.0);
    EXPECT_GT(sim.findStat("system.llc0.demandAccesses")->value(), 0.0);
    EXPECT_GT(sim.findStat("system.mem0.numReads")->value(), 0.0);
}

TEST(Soc, LlcBanksAreAllStriped) {
    Simulation sim;
    SocConfig cfg = table1Config();
    cfg.numCores = 1;
    Soc soc{sim, cfg};

    // Touch 64 consecutive lines: with 8 banks striped on bits [6,9),
    // every bank sees exactly 8 of them.
    const auto prog = isa::assemble(R"(
          li t0, 0x200000
          li t1, 0
          li t2, 64
        loop:
          slli t3, t1, 6
          add t3, t0, t3
          ld t4, 0(t3)
          addi t1, t1, 1
          blt t1, t2, loop
          li a7, 0
          ecall
          halt
    )");
    soc.loadProgram(0, prog);
    sim.run(100'000'000'000ULL);
    for (unsigned b = 0; b < 8; ++b) {
        EXPECT_GE(sim.findStat("system.llc" + std::to_string(b) + ".demandAccesses")->value(),
                  8.0)
            << "bank " << b;
    }
}

TEST(Soc, DeviceAccessesBypassTheCaches) {
    Simulation sim;
    SocConfig cfg = table1Config();
    cfg.numCores = 1;
    Soc soc{sim, cfg};
    RtlObjectParams rp;
    rp.clockPeriod = cfg.rtlClock;
    soc.attachRtlModel("pmu", loadRtlModel("pmu"), rp, Soc::MemPorts::kNone, true);

    // Read the PMU ID register twice from the core; both reads must reach
    // the device (uncacheable), and the value is the PMU signature.
    const Addr idReg = soc.deviceBaseOf(0) + 0x128;
    const auto prog = isa::assemble(
        "  li t0, 0x" + [](Addr a) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%llx", static_cast<unsigned long long>(a));
            return std::string{buf};
        }(idReg) + R"(
          ld a0, 0(t0)
          ld a1, 0(t0)
          li a7, 0
          ecall
          halt
    )");
    soc.loadProgram(0, prog);
    sim.run(100'000'000'000ULL);
    EXPECT_EQ(soc.core(0).archReg(10), 0x504D5501u);
    EXPECT_EQ(soc.core(0).archReg(11), 0x504D5501u);
    EXPECT_GE(sim.findStat("system.pmu.devReads")->value(), 2.0);
    EXPECT_FALSE(soc.l1d(0).isCached(idReg));
}

// ------------------------------------------------------ canned experiments --

TEST(Experiments, PmuSortRunMatchesGem5Statistics) {
    experiments::PmuRunConfig cfg;
    cfg.layout.baseElems = 60;           // Tiny for test speed.
    cfg.layout.sleepNs = 20'000;         // 20 us sleeps.
    cfg.intervalCycles = 10'000;
    cfg.numCores = 1;
    const auto result = experiments::runPmuSortExperiment(cfg);
    ASSERT_TRUE(result.completed);
    ASSERT_GE(result.intervals.size(), 10u);

    // Fig. 5's claim: both curves report the same IPC, with only the small
    // residual from the capture delay, the reset loss, and readout skew.
    EXPECT_LT(result.maxAbsIpcError, 0.25);
    double sumErr = 0;
    for (const auto& iv : result.intervals) sumErr += std::abs(iv.pmuIpc - iv.gem5Ipc);
    EXPECT_LT(sumErr / result.intervals.size(), 0.05);

    // The sleep phases show up as (near-)zero-IPC intervals on both curves.
    int idleIntervals = 0;
    for (const auto& iv : result.intervals) {
        if (iv.pmuIpc < 0.02 && iv.gem5Ipc < 0.02) ++idleIntervals;
    }
    EXPECT_GE(idleIntervals, 2);
}

TEST(Experiments, PmulessBaselineRunsToo) {
    experiments::PmuRunConfig cfg;
    cfg.layout.baseElems = 40;
    cfg.layout.sleepNs = 5'000;
    cfg.attachPmu = false;
    cfg.numCores = 1;
    const auto result = experiments::runPmuSortExperiment(cfg);
    ASSERT_TRUE(result.completed);
    EXPECT_TRUE(result.intervals.empty());
    EXPECT_GT(result.committedInsts, 10'000u);
}

// GEM5RTL_TRIGGER turns waveformPath from always-on VCD into a windowed
// capture routed through the model wrapper: the file appears only if the
// watchpoint fires during the run.
TEST(Experiments, TriggerEnvArmsWindowedCaptureOnThePmu) {
    const auto fileExists = [](const std::string& p) {
        return std::ifstream{p}.good();
    };
    experiments::PmuRunConfig cfg;
    cfg.layout.baseElems = 60;
    cfg.layout.sleepNs = 20'000;
    cfg.intervalCycles = 10'000;
    cfg.numCores = 1;

    // The PMU raises irq every intervalCycles, so a rising-edge watchpoint
    // fires and the windowed VCD is written.
    const std::string fired = ::testing::TempDir() + "/pmu_trigger_fired.vcd";
    cfg.waveformPath = fired;
    setenv("GEM5RTL_TRIGGER", "irq:rise@8,32", 1);
    const auto firedRun = experiments::runPmuSortExperiment(cfg);
    unsetenv("GEM5RTL_TRIGGER");
    ASSERT_TRUE(firedRun.completed);
    ASSERT_TRUE(fileExists(fired));
    std::ifstream in{fired};
    std::string vcd((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    EXPECT_NE(vcd.find("$enddefinitions"), std::string::npos);
    EXPECT_NE(vcd.find("irq"), std::string::npos);
    std::remove(fired.c_str());

    // A watchpoint that can never fire writes no file at all.
    const std::string quiet = ::testing::TempDir() + "/pmu_trigger_quiet.vcd";
    cfg.waveformPath = quiet;
    setenv("GEM5RTL_TRIGGER", "irq==0xdead", 1);
    const auto quietRun = experiments::runPmuSortExperiment(cfg);
    unsetenv("GEM5RTL_TRIGGER");
    ASSERT_TRUE(quietRun.completed);
    EXPECT_FALSE(fileExists(quiet));
}

TEST(Experiments, DsePointIdealBeatsNarrowDdr4) {
    models::NvdlaShape shape;
    shape.width = shape.height = 24;
    shape.inChannels = shape.outChannels = 64;
    shape.filterH = shape.filterW = 1;
    shape.refetch = 1;

    experiments::DseRunConfig ideal;
    ideal.memTech = MemTech::kIdeal;
    ideal.shape = shape;
    ideal.numCores = 0;
    ideal.maxInflight = 64;
    const auto idealResult = experiments::runNvdlaDse(ideal);
    ASSERT_TRUE(idealResult.completed);
    ASSERT_TRUE(idealResult.checksumsOk);

    experiments::DseRunConfig ddr = ideal;
    ddr.memTech = MemTech::kDdr4_1ch;
    const auto ddrResult = experiments::runNvdlaDse(ddr);
    ASSERT_TRUE(ddrResult.completed);
    ASSERT_TRUE(ddrResult.checksumsOk);

    const double norm = experiments::normalizedPerf(idealResult, ddrResult);
    EXPECT_GT(norm, 0.0);
    EXPECT_LE(norm, 1.05);

    // Starved of credits, the same point collapses.
    experiments::DseRunConfig starved = ddr;
    starved.maxInflight = 1;
    const auto starvedResult = experiments::runNvdlaDse(starved);
    ASSERT_TRUE(starvedResult.completed);
    EXPECT_GT(starvedResult.runtimeTicks, 2 * ddrResult.runtimeTicks);
}

TEST(Experiments, DseMultipleAcceleratorsShareTheMemory) {
    models::NvdlaShape shape;
    shape.width = shape.height = 16;
    shape.inChannels = shape.outChannels = 32;
    shape.filterH = shape.filterW = 1;

    experiments::DseRunConfig one;
    one.memTech = MemTech::kDdr4_1ch;
    one.shape = shape;
    one.numAccelerators = 1;
    one.numCores = 0;
    one.maxInflight = 64;
    const auto oneResult = experiments::runNvdlaDse(one);
    ASSERT_TRUE(oneResult.completed);
    ASSERT_TRUE(oneResult.checksumsOk);

    experiments::DseRunConfig two = one;
    two.numAccelerators = 2;
    const auto twoResult = experiments::runNvdlaDse(two);
    ASSERT_TRUE(twoResult.completed);
    ASSERT_TRUE(twoResult.checksumsOk);
    ASSERT_EQ(twoResult.perAcceleratorTicks.size(), 2u);

    // Two instances contending for one DDR4 channel cannot be faster than
    // one, and should be measurably slower on this memory-bound shape.
    EXPECT_GT(twoResult.runtimeTicks, oneResult.runtimeTicks);
}

}  // namespace
}  // namespace g5r
