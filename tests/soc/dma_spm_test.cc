// The DMA + scratchpad memory path (SocConfig::memPath == kDmaSpm): the
// NVDLA working set is staged into an SPM by a DmaEngine, the accelerator
// runs against SRAM-latency memory, and the ofmap is drained back. These
// tests cover end-to-end correctness, the performance crossover against the
// direct DBBIF path at shallow queue depth, determinism (repeat runs and
// gated-vs-ungated on the packet lane), and survival under a flaky host
// port while the real DRAM back-pressures the DMA.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/flaky_forwarder.hh"
#include "obs/diff.hh"
#include "soc/experiments.hh"
#include "soc/model_loader.hh"
#include "soc/nvdla_host.hh"
#include "soc/soc.hh"
#include "soc/spm_prefetcher.hh"

namespace g5r {
namespace {

models::NvdlaShape tinyShape() {
    models::NvdlaShape shape;
    shape.width = shape.height = 8;
    shape.inChannels = 16;
    shape.outChannels = 16;
    shape.filterH = shape.filterW = 3;
    shape.refetch = 1;
    return shape;
}

experiments::DseRunConfig baseConfig(MemPath path, unsigned maxInflight) {
    experiments::DseRunConfig cfg;
    cfg.shape = tinyShape();
    cfg.workloadName = "dmaspm";
    cfg.memTech = MemTech::kDdr4_1ch;
    cfg.memPath = path;
    cfg.maxInflight = maxInflight;
    cfg.numAccelerators = 1;
    cfg.numCores = 0;
    return cfg;
}

std::string slurp(const std::string& path) {
    std::ifstream in{path};
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(DmaSpmPath, CompletesAndVerifies) {
    const auto result = experiments::runNvdlaDse(baseConfig(MemPath::kDmaSpm, 64));
    ASSERT_TRUE(result.completed);
    EXPECT_TRUE(result.checksumsOk);
    // Prefetch descriptors ran and the DLA's reads hit the staged lines.
    EXPECT_GT(result.dmaDescriptors, 0u);
    EXPECT_GT(result.spmReadHits, 0.0);
}

TEST(DmaSpmPath, BeatsDirectAtShallowQueueDepth) {
    // With one in-flight request the direct path serializes DRAM round
    // trips; the DMA+SPM path streams the working set in at the DMA's own
    // (deep) queue depth and serves the accelerator at SRAM latency, so it
    // wins even after paying for the prefetch and the ofmap drain.
    const auto direct = experiments::runNvdlaDse(baseConfig(MemPath::kDirect, 1));
    const auto staged = experiments::runNvdlaDse(baseConfig(MemPath::kDmaSpm, 1));
    ASSERT_TRUE(direct.completed && direct.checksumsOk);
    ASSERT_TRUE(staged.completed && staged.checksumsOk);
    EXPECT_LT(staged.runtimeTicks, direct.runtimeTicks);
}

TEST(DmaSpmPath, RepeatRunsAreByteIdentical) {
    auto cfgA = baseConfig(MemPath::kDmaSpm, 16);
    auto cfgB = cfgA;
    cfgA.obs.recordEnabled = cfgB.obs.recordEnabled = true;
    cfgA.obs.recordPath = ::testing::TempDir() + "/dmaspm_rep_a.g5rec";
    cfgB.obs.recordPath = ::testing::TempDir() + "/dmaspm_rep_b.g5rec";

    const auto a = experiments::runNvdlaDse(cfgA);
    const auto b = experiments::runNvdlaDse(cfgB);
    ASSERT_TRUE(a.completed && a.checksumsOk);
    ASSERT_TRUE(b.completed && b.checksumsOk);
    EXPECT_EQ(a.runtimeTicks, b.runtimeTicks);
    const std::string bytesA = slurp(a.recordPath);
    ASSERT_FALSE(bytesA.empty());
    if (bytesA != slurp(b.recordPath)) {
        const obs::DivergenceReport rep =
            obs::diffRecordingFiles(a.recordPath, b.recordPath);
        ADD_FAILURE() << "flight recordings differ:\n"
                      << obs::formatDivergenceReport(rep, a.recordPath, b.recordPath);
    }
}

TEST(DmaSpmPath, GatedAndUngatedAgreeOnPacketLane) {
    // Quiescence gating elides idle RTL dispatches but must never change
    // the memory traffic (DESIGN.md §8) — compare the packet lane only.
    auto gated = baseConfig(MemPath::kDmaSpm, 16);
    auto ungated = gated;
    gated.gateIdleTicks = true;
    ungated.gateIdleTicks = false;
    gated.obs.recordEnabled = ungated.obs.recordEnabled = true;
    gated.obs.recordPath = ::testing::TempDir() + "/dmaspm_gated.g5rec";
    ungated.obs.recordPath = ::testing::TempDir() + "/dmaspm_ungated.g5rec";

    const auto g = experiments::runNvdlaDse(gated);
    const auto u = experiments::runNvdlaDse(ungated);
    ASSERT_TRUE(g.completed && g.checksumsOk);
    ASSERT_TRUE(u.completed && u.checksumsOk);
    EXPECT_EQ(g.runtimeTicks, u.runtimeTicks);
    const obs::DivergenceReport rep = obs::diffRecordingFiles(
        g.recordPath, u.recordPath, obs::DiffLane::kPacketsOnly);
    ASSERT_TRUE(rep.comparable) << rep.error;
    EXPECT_FALSE(rep.diverged)
        << obs::formatDivergenceReport(rep, g.recordPath, u.recordPath);
}

/// Full SoC over the dmaSpm path with a FlakyForwarder spliced into the
/// host's port: CSB traffic sees random rejections while the single DDR4
/// channel genuinely back-pressures the DMA prefetch/drain underneath.
void runFlakyDmaSpmSoc(bool gateIdleTicks) {
    Simulation sim;
    SocConfig socCfg = table1Config(MemTech::kDdr4_1ch);
    socCfg.numCores = 0;
    socCfg.memPath = MemPath::kDmaSpm;
    Soc soc{sim, socCfg};

    models::NvdlaPlacement placement;
    placement.ifmapBase = 0x2000'0000ULL;
    placement.weightBase = placement.ifmapBase + 0x0100'0000ULL;
    placement.ofmapBase = placement.ifmapBase + 0x0200'0000ULL;
    const models::NvdlaTrace trace =
        models::makeConvTrace("flaky-dmaspm", tinyShape(), placement, 0x5EED, false);

    RtlObjectParams rp;
    rp.clockPeriod = socCfg.rtlClock;
    rp.maxInflight = 16;
    rp.gateIdleTicks = gateIdleTicks;
    soc.attachRtlModel("nvdla0", loadRtlModel("nvdla"), rp, Soc::MemPorts::kMainMemory,
                       /*wireEventBus=*/false);

    NvdlaHost::Params hp;
    hp.csbBase = soc.deviceBaseOf(0);
    hp.clockPeriod = socCfg.coreClock;
    hp.waitForRelease = true;
    NvdlaHost host{sim, "system.host0", hp, trace};

    testing::FlakyForwarderParams fp;
    fp.rejectOneIn = 3;
    testing::FlakyForwarder flaky{sim, "system.flaky_host", fp};
    host.port().bind(flaky.cpuSidePort());
    flaky.memSidePort().bind(soc.addHostPort("host0"));

    SpmPrefetcher prefetcher{sim, "system.prefetch0", soc.dmaEngine(0), trace};
    prefetcher.setDoneCallback([&host] { host.release(); });
    host.setDoneCallback([&] {
        soc.dmaEngine(0).enqueue(DmaEngine::Descriptor{
            placement.ofmapBase, placement.ofmapBase, tinyShape().ofmapBytes(),
            DmaEngine::Direction::kSpmToMem,
            [&sim] { sim.exitSimLoop("drained"); }});
    });

    const RunResult run = sim.run(2'000'000'000'000ULL);
    EXPECT_EQ(run.cause, ExitCause::kSimExit);
    EXPECT_TRUE(host.finished());
    EXPECT_TRUE(host.checksumOk());
    EXPECT_GT(flaky.reqRejections(), 0);
}

TEST(DmaSpmPath, SurvivesFlakyHostPortGated) { runFlakyDmaSpmSoc(true); }

TEST(DmaSpmPath, SurvivesFlakyHostPortUngated) { runFlakyDmaSpmSoc(false); }

}  // namespace
}  // namespace g5r
