// Crossbar: routing (plain and interleaved), response return paths, layer
// contention/retries, latency, and functional access.
#include <gtest/gtest.h>

#include "common/test_requester.hh"
#include "mem/simple_mem.hh"
#include "mem/xbar.hh"

namespace g5r {
namespace {

using testing::TestRequester;

struct Harness {
    // Two requesters, crossbar, two memories at disjoint ranges.
    Harness() {
        Xbar::Params xp;
        xbar = std::make_unique<Xbar>(sim, "xbar", xp);
        reqA = std::make_unique<TestRequester>(sim, "reqA");
        reqB = std::make_unique<TestRequester>(sim, "reqB");

        SimpleMemory::Params mp;
        mp.latency = 10'000;
        mp.range = AddrRange{0, 1ULL << 20};
        memLo = std::make_unique<SimpleMemory>(sim, "memLo", mp, store);
        mp.range = AddrRange{1ULL << 20, 2ULL << 20};
        memHi = std::make_unique<SimpleMemory>(sim, "memHi", mp, store);

        reqA->port().bind(xbar->addCpuSidePort("a"));
        reqB->port().bind(xbar->addCpuSidePort("b"));
        xbar->addMemSidePort("lo", RouteSpec{memLo->range()}).bind(memLo->port());
        xbar->addMemSidePort("hi", RouteSpec{memHi->range()}).bind(memHi->port());
    }

    Simulation sim;
    BackingStore store;
    std::unique_ptr<Xbar> xbar;
    std::unique_ptr<TestRequester> reqA;
    std::unique_ptr<TestRequester> reqB;
    std::unique_ptr<SimpleMemory> memLo;
    std::unique_ptr<SimpleMemory> memHi;
};

TEST(Xbar, RoutesByAddressRange) {
    Harness h;
    h.reqA->issueAt(0, makeReadPacket(0x100, 8));
    h.reqA->issueAt(0, makeReadPacket((1ULL << 20) + 0x100, 8));
    h.sim.run();
    EXPECT_EQ(h.reqA->numResponses(), 2u);
    EXPECT_EQ(h.sim.findStat("memLo.numReads")->value(), 1.0);
    EXPECT_EQ(h.sim.findStat("memHi.numReads")->value(), 1.0);
}

TEST(Xbar, ResponsesReturnToCorrectRequester) {
    Harness h;
    h.store.store<std::uint64_t>(0x100, 0xA);
    h.store.store<std::uint64_t>(0x200, 0xB);
    h.reqA->issueAt(0, makeReadPacket(0x100, 8));
    h.reqB->issueAt(0, makeReadPacket(0x200, 8));
    h.sim.run();
    ASSERT_EQ(h.reqA->numResponses(), 1u);
    ASSERT_EQ(h.reqB->numResponses(), 1u);
    EXPECT_EQ(h.reqA->responses()[0].pkt->get<std::uint64_t>(), 0xAu);
    EXPECT_EQ(h.reqB->responses()[0].pkt->get<std::uint64_t>(), 0xBu);
}

TEST(Xbar, AddsForwardLatency) {
    Harness h;
    h.reqA->issueAt(0, makeReadPacket(0x100, 8));
    h.sim.run();
    ASSERT_EQ(h.reqA->numResponses(), 1u);
    // 2-cycle (1 ns) header each way at 2 GHz + 10 ns memory, plus beat
    // serialisation; strictly more than the raw memory latency.
    EXPECT_GT(h.reqA->responses()[0].tick, 10'000u + 2 * 1000u - 1);
}

TEST(Xbar, ContendingRequestersBothComplete) {
    Harness h;
    for (int i = 0; i < 50; ++i) {
        h.reqA->issueAt(0, makeReadPacket(64 * i, 64));
        h.reqB->issueAt(0, makeReadPacket(64 * i + (1 << 12), 64));
    }
    h.sim.run();
    EXPECT_EQ(h.reqA->numResponses(), 50u);
    EXPECT_EQ(h.reqB->numResponses(), 50u);
    EXPECT_GT(h.sim.findStat("xbar.layerConflicts")->value(), 0.0);
}

TEST(Xbar, InterleavedRoutingStripesBanks) {
    Simulation sim;
    BackingStore store;
    Xbar xbar{sim, "xbar", {}};
    TestRequester req{sim, "req"};
    req.port().bind(xbar.addCpuSidePort("r"));

    // Two banks striped on bit 6 (64 B lines).
    SimpleMemory::Params mp;
    mp.range = AddrRange{0, 1ULL << 20};
    SimpleMemory bank0{sim, "bank0", mp, store};
    SimpleMemory bank1{sim, "bank1", mp, store};
    xbar.addMemSidePort("b0", RouteSpec{mp.range, 6, 1, 0}).bind(bank0.port());
    xbar.addMemSidePort("b1", RouteSpec{mp.range, 6, 1, 1}).bind(bank1.port());

    for (int i = 0; i < 8; ++i) req.issueAt(0, makeReadPacket(64 * i, 64));
    sim.run();
    EXPECT_EQ(req.numResponses(), 8u);
    EXPECT_EQ(sim.findStat("bank0.numReads")->value(), 4.0);
    EXPECT_EQ(sim.findStat("bank1.numReads")->value(), 4.0);
}

TEST(Xbar, FunctionalRoutesToTheRightEndpoint) {
    Harness h;
    Packet w{MemCmd::kWriteReq, (1ULL << 20) + 0x40, 8};
    w.set<std::uint64_t>(4242);
    h.reqA->port().sendFunctional(w);
    EXPECT_EQ(h.store.load<std::uint64_t>((1ULL << 20) + 0x40), 4242u);

    Packet r{MemCmd::kReadReq, (1ULL << 20) + 0x40, 8};
    h.reqB->port().sendFunctional(r);
    EXPECT_EQ(r.get<std::uint64_t>(), 4242u);
}

TEST(Xbar, WritebacksRouteWithoutResponse) {
    Harness h;
    auto wb = std::make_unique<Packet>(MemCmd::kWritebackDirty, 0x300, 64);
    wb->set<std::uint64_t>(55);
    h.reqA->issueAt(0, std::move(wb));
    h.sim.run();
    EXPECT_EQ(h.reqA->numResponses(), 0u);
    EXPECT_EQ(h.store.load<std::uint64_t>(0x300), 55u);
}

TEST(Xbar, HeavyBidirectionalStress) {
    Harness h;
    for (int i = 0; i < 200; ++i) {
        if (i % 3 == 0) {
            auto w = makeWritePacket(8 * i, 8);
            w->set<std::uint64_t>(i);
            h.reqA->issueAt(i * 100, std::move(w));
        } else {
            h.reqA->issueAt(i * 100, makeReadPacket(64 * i, 8));
        }
        h.reqB->issueAt(i * 50, makeReadPacket((1ULL << 20) + 64 * i, 8));
    }
    h.sim.run();
    EXPECT_TRUE(h.reqA->allResponsesReceived());
    EXPECT_TRUE(h.reqB->allResponsesReceived());
}

}  // namespace
}  // namespace g5r
