// Sparse backing-store semantics: zero-fill, page granularity, packet access.
#include <gtest/gtest.h>

#include "mem/backing_store.hh"

namespace g5r {
namespace {

TEST(BackingStore, ReadsOfUntouchedMemoryAreZero) {
    BackingStore store;
    EXPECT_EQ(store.load<std::uint64_t>(0x123456789ULL), 0u);
    EXPECT_EQ(store.allocatedPages(), 0u);
}

TEST(BackingStore, RoundTripTypedAccess) {
    BackingStore store;
    store.store<std::uint32_t>(0x1000, 0xA5A5A5A5u);
    EXPECT_EQ(store.load<std::uint32_t>(0x1000), 0xA5A5A5A5u);
    EXPECT_EQ(store.allocatedPages(), 1u);
}

TEST(BackingStore, CrossPageAccess) {
    BackingStore store;
    const Addr addr = BackingStore::kPageSize - 4;  // Straddles two pages.
    store.store<std::uint64_t>(addr, 0x1122334455667788ULL);
    EXPECT_EQ(store.load<std::uint64_t>(addr), 0x1122334455667788ULL);
    EXPECT_EQ(store.allocatedPages(), 2u);
}

TEST(BackingStore, SparseAllocation) {
    BackingStore store;
    store.store<std::uint8_t>(0, 1);
    store.store<std::uint8_t>(1ULL << 40, 2);  // 1 TiB away.
    EXPECT_EQ(store.allocatedPages(), 2u);
    EXPECT_EQ(store.load<std::uint8_t>(0), 1);
    EXPECT_EQ(store.load<std::uint8_t>(1ULL << 40), 2);
}

TEST(BackingStore, PacketAccessReadAndWrite) {
    BackingStore store;
    Packet write{MemCmd::kWriteReq, 0x2000, 8};
    write.set<std::uint64_t>(77);
    store.access(write);

    Packet read{MemCmd::kReadReq, 0x2000, 8};
    store.access(read);
    EXPECT_EQ(read.get<std::uint64_t>(), 77u);
}

TEST(BackingStore, WritebackPacketsUpdateStore) {
    BackingStore store;
    Packet wb{MemCmd::kWritebackDirty, 0x3000, 8};
    wb.set<std::uint64_t>(99);
    store.access(wb);
    EXPECT_EQ(store.load<std::uint64_t>(0x3000), 99u);
}

}  // namespace
}  // namespace g5r
