// DRAM controller behaviour: latency composition, row-buffer locality,
// bandwidth scaling across channels/technologies, write drains, and
// back-pressure.
#include <gtest/gtest.h>

#include "common/test_requester.hh"
#include "mem/dram.hh"
#include "mem/dram_configs.hh"
#include "sim/rng.hh"

namespace g5r {
namespace {

using testing::TestRequester;

constexpr AddrRange kRange{0, 4ULL << 30};

struct Harness {
    explicit Harness(MemTech tech)
        : dram(sim, "dram", dramParamsFor(tech, kRange), store), req(sim, "req") {
        req.port().bind(dram.port());
    }

    /// Issue @p lines sequential 64 B reads starting at @p base, all at t=0.
    void streamReads(Addr base, int lines) {
        for (int i = 0; i < lines; ++i) req.issueAt(0, makeReadPacket(base + 64 * i, 64));
    }

    /// Achieved read bandwidth in GB/s over the whole run.
    double achievedReadBandwidth() const {
        const double bytes = req.responses().size() * 64.0;
        return bytes / ticksToSeconds(sim.curTick()) / 1e9;
    }

    Simulation sim;
    BackingStore store;
    MultiChannelDram dram;
    TestRequester req;
};

TEST(Dram, PeakBandwidthMatchesTable1) {
    Simulation sim;
    BackingStore store;
    MultiChannelDram ddr1{sim, "d1", dramParamsFor(MemTech::kDdr4_1ch, kRange), store};
    MultiChannelDram ddr4{sim, "d4", dramParamsFor(MemTech::kDdr4_4ch, kRange), store};
    MultiChannelDram gddr{sim, "g", dramParamsFor(MemTech::kGddr5, kRange), store};
    MultiChannelDram hbm{sim, "h", dramParamsFor(MemTech::kHbm, kRange), store};
    EXPECT_NEAR(ddr1.peakBandwidth() / 1e9, 18.75, 0.05);
    EXPECT_NEAR(ddr4.peakBandwidth() / 1e9, 75.0, 0.2);
    EXPECT_NEAR(gddr.peakBandwidth() / 1e9, 112.0, 0.5);
    EXPECT_NEAR(hbm.peakBandwidth() / 1e9, 128.0, 0.5);
}

TEST(Dram, SingleReadLatencyComposition) {
    Harness h{MemTech::kDdr4_1ch};
    h.store.store<std::uint64_t>(0x1000, 99);
    h.req.issueAt(0, makeReadPacket(0x1000, 64));
    h.sim.run();
    ASSERT_EQ(h.req.numResponses(), 1u);
    const auto& p = ddr4ChannelParams();
    // Cold bank: activate (tRCD) + CAS (tCL) + burst + static latencies.
    const Tick expected = p.tRCD + p.tCL + p.tBURST + p.frontendLatency + p.backendLatency;
    EXPECT_EQ(h.req.responses()[0].tick, expected);
    EXPECT_EQ(h.req.responses()[0].pkt->get<std::uint64_t>(), 99u);
}

TEST(Dram, StreamingReadsHitRowBuffer) {
    Harness h{MemTech::kDdr4_1ch};
    h.streamReads(0, 256);
    h.sim.run();
    ASSERT_EQ(h.req.numResponses(), 256u);
    const double hits = h.dram.statsGroup().prefix().empty()
                            ? 0.0
                            : h.sim.findStat("dram.ch0.rowHits")->value();
    const double misses = h.sim.findStat("dram.ch0.rowMisses")->value();
    // 8 KiB rows = 128 lines/row: 256 sequential lines touch 2 rows.
    EXPECT_EQ(misses, 2.0);
    EXPECT_EQ(hits, 254.0);
}

TEST(Dram, StreamingApproachesPeakBandwidth) {
    Harness h{MemTech::kDdr4_1ch};
    h.streamReads(0, 2048);
    h.sim.run();
    ASSERT_EQ(h.req.numResponses(), 2048u);
    const double peak = h.dram.peakBandwidth() / 1e9;
    EXPECT_GT(h.achievedReadBandwidth(), 0.85 * peak);
}

TEST(Dram, RandomReadsFarBelowPeak) {
    Harness h{MemTech::kDdr4_1ch};
    Rng rng{7};
    for (int i = 0; i < 512; ++i) {
        const Addr addr = (rng.below(1ULL << 24)) * 64;  // Random lines in 1 GiB.
        h.req.issueAt(0, makeReadPacket(addr, 64));
    }
    h.sim.run();
    ASSERT_EQ(h.req.numResponses(), 512u);
    const double peak = h.dram.peakBandwidth() / 1e9;
    EXPECT_LT(h.achievedReadBandwidth(), 0.6 * peak);
    EXPECT_GT(h.sim.findStat("dram.ch0.rowMisses")->value(), 256.0);
}

TEST(Dram, ChannelsScaleStreamBandwidth) {
    Harness one{MemTech::kDdr4_1ch};
    Harness four{MemTech::kDdr4_4ch};
    one.streamReads(0, 1024);
    four.streamReads(0, 1024);
    one.sim.run();
    four.sim.run();
    const double bwOne = one.achievedReadBandwidth();
    const double bwFour = four.achievedReadBandwidth();
    EXPECT_GT(bwFour, 3.0 * bwOne);
}

TEST(Dram, WritesAckImmediatelyAndDrainLater) {
    Harness h{MemTech::kDdr4_1ch};
    for (int i = 0; i < 32; ++i) {
        auto pkt = makeWritePacket(64 * i, 64);
        pkt->set<std::uint64_t>(i);
        h.req.issueAt(0, std::move(pkt));
    }
    h.sim.run();
    EXPECT_EQ(h.req.numResponses(), 32u);
    // Write data must be visible.
    for (int i = 0; i < 32; ++i) {
        EXPECT_EQ(h.store.load<std::uint64_t>(64 * i), static_cast<std::uint64_t>(i));
    }
    // All writes eventually burst to the array (opportunistic drain).
    EXPECT_EQ(h.sim.findStat("dram.ch0.writeBursts")->value(), 32.0);
}

TEST(Dram, WriteAckLatencyIsFrontendOnly) {
    Harness h{MemTech::kDdr4_1ch};
    h.req.issueAt(0, makeWritePacket(0, 64));
    h.sim.run();
    ASSERT_EQ(h.req.numResponses(), 1u);
    EXPECT_EQ(h.req.responses()[0].tick, ddr4ChannelParams().frontendLatency);
}

TEST(Dram, ReadQueueBackPressure) {
    Harness h{MemTech::kDdr4_1ch};
    // Far more reads than the 64-entry read queue.
    h.streamReads(0, 512);
    h.sim.run();
    EXPECT_EQ(h.req.numResponses(), 512u);
    EXPECT_GT(h.req.retriesSeen(), 0);
    EXPECT_GT(h.sim.findStat("dram.rejectedRequests")->value(), 0.0);
}

TEST(Dram, MixedTrafficTriggersBusTurnarounds) {
    Harness h{MemTech::kDdr4_1ch};
    Rng rng{3};
    for (int i = 0; i < 256; ++i) {
        const Addr addr = 64 * i;
        if (rng.below(2) == 0) {
            h.req.issueAt(0, makeReadPacket(addr, 64));
        } else {
            h.req.issueAt(0, makeWritePacket(addr + (1 << 20), 64));
        }
    }
    h.sim.run();
    EXPECT_TRUE(h.req.allResponsesReceived());
    EXPECT_GT(h.sim.findStat("dram.ch0.busTurnarounds")->value(), 0.0);
}

TEST(Dram, WritebacksAreAbsorbed) {
    Harness h{MemTech::kDdr4_1ch};
    auto wb = std::make_unique<Packet>(MemCmd::kWritebackDirty, 0x4000, 64);
    wb->set<std::uint64_t>(1234);
    h.req.issueAt(0, std::move(wb));
    h.sim.run();
    EXPECT_EQ(h.req.numResponses(), 0u);
    EXPECT_EQ(h.store.load<std::uint64_t>(0x4000), 1234u);
}

// Regression (PR 9): a rejected request must be retried only when the
// (channel, queue) that rejected it actually frees. The old code fired a
// retry from every channel on every serviced request, so a saturated
// channel 0 plus a busy channel 1 produced a storm of bounced retries.
TEST(DramRetry, NoBounceOnSaturatingCrossChannelWorkload) {
    Harness h{MemTech::kDdr4_2ch};
    // Channel = (addr >> 6) % 2. Fill channel 0's 64-entry read queue, give
    // channel 1 a deep backlog, then keep hammering channel 0.
    for (int i = 0; i < 64; ++i) h.req.issueAt(0, makeReadPacket(128 * i, 64));
    for (int i = 0; i < 64; ++i) h.req.issueAt(0, makeReadPacket(128 * i + 64, 64));
    for (int i = 64; i < 164; ++i) h.req.issueAt(0, makeReadPacket(128 * i, 64));
    h.sim.run();
    EXPECT_TRUE(h.req.allResponsesReceived());
    EXPECT_EQ(h.req.numResponses(), 228u);
    // Every retry must be productive: with 100 back-pressured tail reads the
    // requester needs about one retry per freed slot. Pre-fix, channel 1's
    // services additionally bounce the retried packet off the still-full
    // channel 0 queue — dozens of extra retry/reject round trips.
    const double rejected = h.sim.findStat("dram.rejectedRequests")->value();
    EXPECT_GT(rejected, 0.0);
    EXPECT_LE(rejected, 110.0);
    EXPECT_LE(h.req.retriesSeen(), 110);
}

// Regression (PR 9): FR-FCFS must not starve the oldest request forever
// under a sustained row-hit stream to another row. The starvation cap
// forces the queue head through after maxStarvation consecutive bypasses.
TEST(DramStarvation, OldestReadCompletesWithinCap) {
    Harness h{MemTech::kDdr4_1ch};
    // 8 KiB rows, 16 banks: lines 0..127 are bank 0 row 0; line 2048
    // (addr 0x20000) is bank 0 row 1 — the starvation victim.
    constexpr Addr kVictim = 0x20000;
    for (int i = 0; i < 30; ++i) h.req.issueAt(0, makeReadPacket(64 * i, 64));
    h.req.issueAt(0, makeReadPacket(kVictim, 64));
    // A long row-0 tail, issued over time so the queue never drains and a
    // row-0 candidate is always available to bypass the victim.
    for (int i = 30; i < 128; ++i) {
        h.req.issueAt(static_cast<Tick>(i) * 4'000, makeReadPacket(64 * i, 64));
    }
    h.sim.run();
    ASSERT_EQ(h.req.numResponses(), 129u);
    std::size_t victimPos = h.req.responses().size();
    for (std::size_t i = 0; i < h.req.responses().size(); ++i) {
        if (h.req.responses()[i].pkt->addr() == kVictim) victimPos = i;
    }
    // Pre-fix the victim is bypassed by every row-0 arrival and finishes
    // dead last; with the default cap of 16 it must complete well before.
    EXPECT_LT(victimPos, 60u);
    EXPECT_GT(h.sim.findStat("dram.ch0.starvationBreaks")->value(), 0.0);
    // Row locality must survive the cap: the victim costs at most a couple
    // of extra activates (open row 1, then back to row 0).
    EXPECT_LE(h.sim.findStat("dram.ch0.rowMisses")->value(), 4.0);
}

// The cap must stay invisible on a plain sequential stream: the head is
// always the first-ready pick, so no starvation break ever fires and the
// row-hit rate matches classic FR-FCFS.
TEST(DramStarvation, SequentialStreamRowHitRateUnchanged) {
    Harness h{MemTech::kDdr4_1ch};
    h.streamReads(0, 256);
    h.sim.run();
    ASSERT_EQ(h.req.numResponses(), 256u);
    EXPECT_EQ(h.sim.findStat("dram.ch0.starvationBreaks")->value(), 0.0);
    EXPECT_EQ(h.sim.findStat("dram.ch0.rowMisses")->value(), 2.0);
    EXPECT_EQ(h.sim.findStat("dram.ch0.rowHits")->value(), 254.0);
}

// Property sweep: achieved streaming bandwidth is ordered by the technology's
// peak bandwidth across all Table 1 configurations.
class DramTechSweep : public ::testing::TestWithParam<MemTech> {};

TEST_P(DramTechSweep, StreamBandwidthWithinPeak) {
    Harness h{GetParam()};
    h.streamReads(0, 1024);
    h.sim.run();
    ASSERT_EQ(h.req.numResponses(), 1024u);
    const double achieved = h.achievedReadBandwidth();
    const double peak = h.dram.peakBandwidth() / 1e9;
    EXPECT_LE(achieved, peak * 1.001);
    EXPECT_GT(achieved, 0.5 * peak);
}

INSTANTIATE_TEST_SUITE_P(Technologies, DramTechSweep,
                         ::testing::Values(MemTech::kDdr4_1ch, MemTech::kDdr4_2ch,
                                           MemTech::kDdr4_4ch, MemTech::kGddr5,
                                           MemTech::kHbm),
                         [](const auto& info) {
                             std::string n = memTechName(info.param);
                             for (auto& c : n) if (c == '-') c = '_';
                             return n;
                         });

}  // namespace
}  // namespace g5r
