// Cache behaviour: hits/misses, MSHR merging and exhaustion, write-allocate,
// dirty writebacks, LRU victimisation, prefetching, uncacheable forwarding,
// and multi-level stacking.
#include <gtest/gtest.h>

#include "common/test_requester.hh"
#include "mem/cache/cache.hh"
#include "mem/simple_mem.hh"

namespace g5r {
namespace {

using testing::TestRequester;

constexpr Tick kMemLatency = 40'000;  // 40 ns backing memory.

struct Harness {
    explicit Harness(CacheParams cacheParams = smallCache())
        : cache(sim, "l1", cacheParams), mem(sim, "mem", memParams(), store), req(sim, "req") {
        req.port().bind(cache.cpuSidePort());
        cache.memSidePort().bind(mem.port());
    }

    static CacheParams smallCache() {
        CacheParams p;
        p.sizeBytes = 4 * 1024;  // 4 KiB, 4-way, 64 B lines -> 16 sets.
        p.assoc = 4;
        p.lookupLatency = 2;
        p.responseLatency = 2;
        p.mshrs = 4;
        return p;
    }

    static SimpleMemory::Params memParams() {
        SimpleMemory::Params p;
        p.range = AddrRange{0, 1ULL << 30};
        p.latency = kMemLatency;
        return p;
    }

    double stat(const std::string& statName) const {
        return sim.findStat("l1." + statName)->value();
    }

    Simulation sim;
    BackingStore store;
    Cache cache;
    SimpleMemory mem;
    TestRequester req;
};

TEST(Cache, ColdMissThenHit) {
    Harness h;
    h.store.store<std::uint64_t>(0x1000, 11);

    h.req.issueAt(0, makeReadPacket(0x1000, 8));
    h.sim.run();
    ASSERT_EQ(h.req.numResponses(), 1u);
    EXPECT_EQ(h.req.responses()[0].pkt->get<std::uint64_t>(), 11u);
    const Tick missLatency = h.req.responses()[0].tick;
    EXPECT_GT(missLatency, kMemLatency);

    // Second access to the same line is a fast hit.
    h.req.issueAt(h.sim.curTick() + 1, makeReadPacket(0x1008, 8));
    h.sim.run();
    ASSERT_EQ(h.req.numResponses(), 2u);
    const Tick hitLatency = h.req.responses()[1].tick - h.req.responses()[1].pkt->issueTick();
    EXPECT_LT(hitLatency, kMemLatency);
    EXPECT_EQ(h.stat("hits"), 1.0);
    EXPECT_EQ(h.stat("misses"), 1.0);
}

TEST(Cache, MissesToSameLineMergeInMshr) {
    Harness h;
    for (int i = 0; i < 4; ++i) h.req.issueAt(0, makeReadPacket(0x2000 + 8 * i, 8));
    h.sim.run();
    EXPECT_EQ(h.req.numResponses(), 4u);
    EXPECT_EQ(h.stat("misses"), 1.0);
    EXPECT_EQ(h.stat("mshrHits"), 3.0);
    // Only one line fetch reached memory.
    EXPECT_EQ(h.sim.findStat("mem.numReads")->value(), 1.0);
}

TEST(Cache, MshrExhaustionBackPressures) {
    Harness h;  // 4 MSHRs.
    for (int i = 0; i < 16; ++i) h.req.issueAt(0, makeReadPacket(0x10000 + 64 * i, 8));
    h.sim.run();
    EXPECT_EQ(h.req.numResponses(), 16u);
    EXPECT_GT(h.stat("blockedOnMshrs"), 0.0);
    EXPECT_GT(h.req.retriesSeen(), 0);
}

TEST(Cache, WriteAllocateFetchesLineAndDirtiesIt) {
    Harness h;
    h.store.store<std::uint64_t>(0x3000, 0xAAAAAAAAAAAAAAAAULL);
    auto w = makeWritePacket(0x3008, 8);
    w->set<std::uint64_t>(0x5555555555555555ULL);
    h.req.issueAt(0, std::move(w));
    h.sim.run();
    ASSERT_EQ(h.req.numResponses(), 1u);
    EXPECT_TRUE(h.cache.isCached(0x3000));
    EXPECT_TRUE(h.cache.isDirty(0x3000));

    // The line holds both the fetched and the written data.
    Packet probe{MemCmd::kReadReq, 0x3000, 16};
    h.req.port().sendFunctional(probe);
    EXPECT_EQ(probe.get<std::uint64_t>(), 0xAAAAAAAAAAAAAAAAULL);
}

TEST(Cache, DirtyVictimWrittenBack) {
    Harness h;
    // 16 sets -> addresses 64*16 apart map to the same set. 4-way: the fifth
    // distinct line evicts the LRU.
    const Addr setStride = 64 * 16;
    auto w = makeWritePacket(0x0, 8);
    w->set<std::uint64_t>(123);
    h.req.issueAt(0, std::move(w));
    h.sim.run();
    ASSERT_TRUE(h.cache.isDirty(0x0));

    for (int i = 1; i <= 4; ++i) {
        h.req.issueAt(h.sim.curTick() + 1, makeReadPacket(setStride * i, 8));
        h.sim.run();
    }
    EXPECT_FALSE(h.cache.isCached(0x0));
    EXPECT_EQ(h.stat("writebacks"), 1.0);
    // The written data survived in memory.
    EXPECT_EQ(h.store.load<std::uint64_t>(0x0), 123u);
}

TEST(Cache, CleanVictimSilentlyDropped) {
    Harness h;
    const Addr setStride = 64 * 16;
    for (int i = 0; i <= 4; ++i) {
        h.req.issueAt(h.sim.curTick() + 1, makeReadPacket(setStride * i, 8));
        h.sim.run();
    }
    EXPECT_FALSE(h.cache.isCached(0x0));
    EXPECT_EQ(h.stat("writebacks"), 0.0);
}

TEST(Cache, LruKeepsRecentlyUsedLines) {
    Harness h;
    const Addr setStride = 64 * 16;
    // Fill the set: lines 0..3.
    for (int i = 0; i < 4; ++i) {
        h.req.issueAt(h.sim.curTick() + 1, makeReadPacket(setStride * i, 8));
        h.sim.run();
    }
    // Touch line 0 so line 1 becomes LRU.
    h.req.issueAt(h.sim.curTick() + 1, makeReadPacket(0, 8));
    h.sim.run();
    // Insert line 4: must evict line 1, not line 0.
    h.req.issueAt(h.sim.curTick() + 1, makeReadPacket(setStride * 4, 8));
    h.sim.run();
    EXPECT_TRUE(h.cache.isCached(0));
    EXPECT_FALSE(h.cache.isCached(setStride));
}

TEST(Cache, StridePrefetcherIssuesAndFills) {
    auto params = Harness::smallCache();
    params.enablePrefetcher = true;
    params.prefetchDegree = 2;
    params.mshrs = 8;
    Harness h{params};

    // A regular stride of 2 lines; after the detector warms up, prefetches
    // should cover upcoming misses.
    for (int i = 0; i < 8; ++i) {
        h.req.issueAt(h.sim.curTick() + 1, makeReadPacket(0x40000 + i * 128, 8));
        h.sim.run();
    }
    EXPECT_GT(h.stat("prefetchesIssued"), 0.0);
    EXPECT_GT(h.stat("prefetchFills"), 0.0);
    // A line beyond the last demand access is already resident.
    EXPECT_TRUE(h.cache.isCached(0x40000 + 8 * 128));
}

TEST(Cache, UncacheableForwardedNotCached) {
    auto params = Harness::smallCache();
    params.uncacheable.push_back(AddrRange{0x8000000, 0x8001000});
    Harness h{params};
    h.store.store<std::uint32_t>(0x8000010, 777);

    h.req.issueAt(0, makeReadPacket(0x8000010, 4));
    h.sim.run();
    ASSERT_EQ(h.req.numResponses(), 1u);
    EXPECT_EQ(h.req.responses()[0].pkt->get<std::uint32_t>(), 777u);
    EXPECT_FALSE(h.cache.isCached(0x8000010));
    EXPECT_EQ(h.stat("hits"), 0.0);
    EXPECT_EQ(h.stat("misses"), 0.0);

    // Repeated access goes to memory every time.
    h.req.issueAt(h.sim.curTick() + 1, makeReadPacket(0x8000010, 4));
    h.sim.run();
    EXPECT_EQ(h.sim.findStat("mem.numReads")->value(), 2.0);
}

TEST(Cache, FunctionalWritesUpdateCachedLine) {
    Harness h;
    h.req.issueAt(0, makeReadPacket(0x5000, 8));
    h.sim.run();
    ASSERT_TRUE(h.cache.isCached(0x5000));

    Packet w{MemCmd::kWriteReq, 0x5000, 8};
    w.set<std::uint64_t>(31415);
    h.req.port().sendFunctional(w);

    Packet r{MemCmd::kReadReq, 0x5000, 8};
    h.req.port().sendFunctional(r);
    EXPECT_EQ(r.get<std::uint64_t>(), 31415u);
    EXPECT_TRUE(h.cache.isDirty(0x5000));
}

// Two-level hierarchy: L1 -> L2 -> memory.
struct TwoLevel {
    TwoLevel() : l1(sim, "l1", l1Params()), l2(sim, "l2", l2Params()),
                 mem(sim, "mem", Harness::memParams(), store), req(sim, "req") {
        req.port().bind(l1.cpuSidePort());
        l1.memSidePort().bind(l2.cpuSidePort());
        l2.memSidePort().bind(mem.port());
    }

    static CacheParams l1Params() {
        auto p = Harness::smallCache();
        p.sizeBytes = 1024;  // Tiny L1 (4 sets) to force capacity misses.
        return p;
    }
    static CacheParams l2Params() {
        auto p = Harness::smallCache();
        p.sizeBytes = 16 * 1024;
        p.assoc = 8;
        p.lookupLatency = 9;
        p.mshrs = 24;
        return p;
    }

    Simulation sim;
    BackingStore store;
    Cache l1;
    Cache l2;
    SimpleMemory mem;
    TestRequester req;
};

TEST(CacheHierarchy, L2CatchesL1CapacityMisses) {
    TwoLevel h;
    // Touch 32 lines (2 KiB): fits in L2, thrashes the 1 KiB L1.
    for (int i = 0; i < 32; ++i) {
        h.req.issueAt(h.sim.curTick() + 1, makeReadPacket(64 * i, 8));
        h.sim.run();
    }
    // Second sweep: L1 misses again, L2 hits, memory sees no new reads.
    const double memReadsAfterFirstSweep = h.sim.findStat("mem.numReads")->value();
    for (int i = 0; i < 32; ++i) {
        h.req.issueAt(h.sim.curTick() + 1, makeReadPacket(64 * i, 8));
        h.sim.run();
    }
    EXPECT_EQ(h.sim.findStat("mem.numReads")->value(), memReadsAfterFirstSweep);
    EXPECT_GT(h.sim.findStat("l2.hits")->value(), 0.0);
}

TEST(CacheHierarchy, DirtyDataMigratesDownTheHierarchy) {
    TwoLevel h;
    auto w = makeWritePacket(0x0, 8);
    w->set<std::uint64_t>(0xBEEF);
    h.req.issueAt(0, std::move(w));
    h.sim.run();

    // Evict from L1 by touching the other lines of set 0 (4 sets in L1).
    for (int i = 1; i <= 4; ++i) {
        h.req.issueAt(h.sim.curTick() + 1, makeReadPacket(64 * 4 * i, 8));
        h.sim.run();
    }
    EXPECT_FALSE(h.l1.isCached(0x0));
    // The writeback landed in L2 (absorbed as a hit there), dirty.
    EXPECT_TRUE(h.l2.isCached(0x0));
    EXPECT_TRUE(h.l2.isDirty(0x0));

    // And the data is still readable.
    h.req.issueAt(h.sim.curTick() + 1, makeReadPacket(0x0, 8));
    h.sim.run();
    EXPECT_EQ(h.req.responses().back().pkt->get<std::uint64_t>(), 0xBEEFu);
}

// Property sweep: for any associativity, a working set of exactly `assoc`
// same-set lines never evicts, and `assoc + 1` always does.
class CacheAssocSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(CacheAssocSweep, WorkingSetFitsExactlyAssocWays) {
    auto params = Harness::smallCache();
    params.assoc = GetParam();
    params.sizeBytes = 64 * 16 * params.assoc;  // Keep 16 sets.
    Harness h{params};
    const Addr setStride = 64 * 16;
    const unsigned assoc = GetParam();

    for (unsigned round = 0; round < 3; ++round) {
        for (unsigned i = 0; i < assoc; ++i) {
            h.req.issueAt(h.sim.curTick() + 1, makeReadPacket(setStride * i, 8));
            h.sim.run();
        }
    }
    // After the first round everything hits: misses == assoc.
    EXPECT_EQ(h.stat("misses"), assoc);

    h.req.issueAt(h.sim.curTick() + 1, makeReadPacket(setStride * assoc, 8));
    h.sim.run();
    EXPECT_EQ(h.stat("misses"), assoc + 1.0);
    // One of the original lines is gone.
    unsigned resident = 0;
    for (unsigned i = 0; i <= assoc; ++i) {
        resident += h.cache.isCached(setStride * i) ? 1 : 0;
    }
    EXPECT_EQ(resident, assoc);
}

INSTANTIATE_TEST_SUITE_P(Assoc, CacheAssocSweep, ::testing::Values(1u, 2u, 4u, 8u, 16u));

}  // namespace
}  // namespace g5r
