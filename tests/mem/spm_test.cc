// Scratchpad memory behaviour: write-allocate semantics, SRAM-latency hits,
// miss fills from the downstream port (MSHR coalescing), banking conflicts,
// capacity enforcement, and back-pressure.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/test_requester.hh"
#include "sim/observer.hh"
#include "mem/simple_mem.hh"
#include "mem/spm.hh"

namespace g5r {
namespace {

using testing::TestRequester;

constexpr AddrRange kRange{0, 1ULL << 30};

struct Harness {
    explicit Harness(Spm::Params sp = defaultParams())
        : spm(sim, "spm", sp), dram(sim, "dram", dramParams(), dramStore),
          req(sim, "req") {
        req.port().bind(spm.cpuSidePort());
        spm.memSidePort().bind(dram.port());
    }

    static Spm::Params defaultParams() {
        Spm::Params p;
        p.range = kRange;
        return p;
    }

    static SimpleMemory::Params dramParams() {
        SimpleMemory::Params p;
        p.range = kRange;
        p.latency = 50'000;  // DRAM-class: much slower than the SPM array.
        p.maxPending = 256;
        return p;
    }

    double stat(const char* name) { return sim.findStat(name)->value(); }

    Simulation sim;
    BackingStore dramStore;
    Spm spm;
    SimpleMemory dram;
    TestRequester req;
};

// accessLatency = 2 cycles at periodFromGHz(2): 1000 ticks.
constexpr Tick kHitLatency = 2 * periodFromGHz(2);

TEST(Spm, WriteAllocateThenReadHitsAtSramLatency) {
    Harness h;
    auto wr = makeWritePacket(0x1000, 64);
    wr->set<std::uint64_t>(0xABCD);
    h.req.issueAt(0, std::move(wr));
    h.req.issueAt(10'000, makeReadPacket(0x1000, 64));
    h.sim.run();
    ASSERT_EQ(h.req.numResponses(), 2u);
    EXPECT_EQ(h.req.responses()[0].tick, kHitLatency);
    EXPECT_EQ(h.req.responses()[1].tick, 10'000 + kHitLatency);
    EXPECT_EQ(h.req.responses()[1].pkt->get<std::uint64_t>(), 0xABCDu);
    EXPECT_EQ(h.stat("spm.readHits"), 1.0);
    EXPECT_EQ(h.stat("spm.readMisses"), 0.0);
    EXPECT_EQ(h.stat("spm.fills"), 0.0);  // Hits never touch main memory.
    EXPECT_EQ(h.spm.residentLines(), 1u);
}

TEST(Spm, UnwrittenBytesOfAllocatedLineReadZero) {
    Harness h;
    // Private storage, not a cache: allocating 8 bytes must not pull the
    // rest of the line from main memory.
    h.dramStore.store<std::uint64_t>(0x2008, ~0ULL);
    auto wr = makeWritePacket(0x2000, 8);
    wr->set<std::uint64_t>(1);
    h.req.issueAt(0, std::move(wr));
    h.req.issueAt(10'000, makeReadPacket(0x2008, 8));
    h.sim.run();
    ASSERT_EQ(h.req.numResponses(), 2u);
    EXPECT_EQ(h.req.responses()[1].pkt->get<std::uint64_t>(), 0u);
}

TEST(Spm, ReadMissFillsFromDownstream) {
    Harness h;
    h.dramStore.store<std::uint64_t>(0x4000, 77);
    h.req.issueAt(0, makeReadPacket(0x4000, 64));
    h.sim.run();
    ASSERT_EQ(h.req.numResponses(), 1u);
    EXPECT_EQ(h.req.responses()[0].pkt->get<std::uint64_t>(), 77u);
    // Miss latency includes the downstream round trip.
    EXPECT_GE(h.req.responses()[0].tick, Harness::dramParams().latency);
    EXPECT_EQ(h.stat("spm.readMisses"), 1.0);
    EXPECT_EQ(h.stat("spm.fills"), 1.0);
    EXPECT_EQ(h.spm.residentLines(), 1u);

    // The filled line is now resident: a second read is a fast hit.
    h.req.issueAt(h.sim.curTick() + 1000, makeReadPacket(0x4000, 64));
    h.sim.run();
    ASSERT_EQ(h.req.numResponses(), 2u);
    EXPECT_EQ(h.stat("spm.readHits"), 1.0);
    EXPECT_EQ(h.stat("spm.fills"), 1.0);
}

TEST(Spm, LineCrossingMissFetchesEveryLineOnce) {
    Harness h;
    for (int i = 0; i < 16; ++i) h.dramStore.store<std::uint64_t>(0x8000 + 8 * i, i);
    // One 128 B read + a second read of the first line: 2 fills total (MSHR
    // coalescing, one per absent line).
    h.req.issueAt(0, makeReadPacket(0x8000, 128));
    h.req.issueAt(0, makeReadPacket(0x8000, 64));
    h.sim.run();
    ASSERT_EQ(h.req.numResponses(), 2u);
    EXPECT_EQ(h.stat("spm.fills"), 2.0);
    EXPECT_EQ(h.stat("spm.readMisses"), 2.0);
    EXPECT_EQ(h.spm.residentLines(), 2u);
}

/// Collects requestSpan callbacks so tests can assert on the causal-tracing
/// spans the SPM emits (sim/observer.hh).
struct SpanRecorder : SimObserver {
    struct Recorded {
        ReqId id;
        ReqStage stage;
        Tick begin;
        Tick end;
    };
    void dispatchBegin(const Event&, Tick) override {}
    void dispatchEnd(Tick) override {}
    void requestSpan(ReqId id, ReqStage stage, Tick begin, Tick end) override {
        spans.push_back(Recorded{id, stage, begin, end});
    }
    std::vector<Recorded> spans;
};

TEST(Spm, MshrJoinersEachGetTheirOwnFillSpan) {
    // Two tagged reads miss on the same absent line; the second joins the
    // first's in-flight fill (one fill, one mshrJoin). The fill packet keeps
    // the first waiter's ReqId, but *each* read reports its own kSpmFill
    // span — from its own arrival to the shared ready tick — so every
    // request's trace shows the stall it actually experienced.
    Harness h;
    SpanRecorder rec;
    h.sim.setObserver(&rec);
    h.dramStore.store<std::uint64_t>(0x4000, 7);
    auto first = makeReadPacket(0x4000, 64);
    first->setReqId(11);
    auto second = makeReadPacket(0x4000, 64);
    second->setReqId(22);
    h.req.issueAt(0, std::move(first));
    h.req.issueAt(5'000, std::move(second));
    h.sim.run();

    ASSERT_EQ(h.req.numResponses(), 2u);
    EXPECT_EQ(h.stat("spm.fills"), 1.0);
    EXPECT_EQ(h.stat("spm.readMisses"), 2.0);
    EXPECT_EQ(h.stat("spm.mshrJoins"), 1.0);

    ASSERT_EQ(rec.spans.size(), 2u);
    const auto& s1 = rec.spans[0];
    const auto& s2 = rec.spans[1];
    EXPECT_EQ(s1.id, 11u);
    EXPECT_EQ(s2.id, 22u);
    EXPECT_EQ(s1.stage, ReqStage::kSpmFill);
    EXPECT_EQ(s2.stage, ReqStage::kSpmFill);
    EXPECT_EQ(s1.begin, 0u);
    EXPECT_EQ(s2.begin, 5'000u);  // The joiner's stall starts at *its* arrival.
    EXPECT_GE(s1.end, Harness::dramParams().latency);
    EXPECT_GE(s2.end, s1.end);  // Shared fill: both become ready together.
}

TEST(Spm, UntaggedMissesEmitNoSpans) {
    Harness h;
    SpanRecorder rec;
    h.sim.setObserver(&rec);
    h.req.issueAt(0, makeReadPacket(0x4000, 64));
    h.sim.run();
    ASSERT_EQ(h.req.numResponses(), 1u);
    EXPECT_EQ(h.stat("spm.fills"), 1.0);
    EXPECT_TRUE(rec.spans.empty());
}

TEST(Spm, SameBankAccessesConflictAcrossBanksDoNot) {
    Spm::Params sp = Harness::defaultParams();
    sp.banks = 8;
    {
        Harness h{sp};
        // Same-cycle writes to the same bank: (addr >> 6) % 8.
        h.req.issueAt(0, makeWritePacket(0, 64));
        h.req.issueAt(0, makeWritePacket(64 * 8, 64));
        h.sim.run();
        ASSERT_EQ(h.req.numResponses(), 2u);
        EXPECT_EQ(h.stat("spm.bankConflicts"), 1.0);
        EXPECT_EQ(h.req.responses()[1].tick - h.req.responses()[0].tick,
                  h.spm.clockPeriod());
    }
    {
        Harness h{sp};
        h.req.issueAt(0, makeWritePacket(0, 64));
        h.req.issueAt(0, makeWritePacket(64, 64));  // Neighbouring bank.
        h.sim.run();
        ASSERT_EQ(h.req.numResponses(), 2u);
        EXPECT_EQ(h.stat("spm.bankConflicts"), 0.0);
        EXPECT_EQ(h.req.responses()[0].tick, h.req.responses()[1].tick);
    }
}

TEST(Spm, BackPressureRetriesAndCompletes) {
    Spm::Params sp = Harness::defaultParams();
    sp.maxPending = 2;
    Harness h{sp};
    for (int i = 0; i < 32; ++i) {
        auto wr = makeWritePacket(64 * i, 64);
        wr->set<std::uint64_t>(i);
        h.req.issueAt(0, std::move(wr));
    }
    for (int i = 0; i < 32; ++i) h.req.issueAt(0, makeReadPacket(64 * i, 64));
    h.sim.run();
    EXPECT_TRUE(h.req.allResponsesReceived());
    EXPECT_EQ(h.req.numResponses(), 64u);
    EXPECT_GT(h.req.retriesSeen(), 0);
    for (std::size_t i = 32; i < 64; ++i) {
        EXPECT_EQ(h.req.responses()[i].pkt->get<std::uint64_t>(),
                  static_cast<std::uint64_t>(i - 32));
    }
}

TEST(Spm, WritebacksAreAbsorbed) {
    Harness h;
    auto wb = std::make_unique<Packet>(MemCmd::kWritebackDirty, 0x5000, 64);
    wb->set<std::uint64_t>(4321);
    h.req.issueAt(0, std::move(wb));
    h.req.issueAt(10'000, makeReadPacket(0x5000, 64));
    h.sim.run();
    ASSERT_EQ(h.req.numResponses(), 1u);  // No ack for the writeback.
    EXPECT_EQ(h.req.responses()[0].pkt->get<std::uint64_t>(), 4321u);
}

TEST(Spm, FunctionalReadsMergeResidentAndDownstreamBytes) {
    Harness h;
    h.dramStore.store<std::uint64_t>(0x6040, 99);  // Second line, absent.
    auto wr = makeWritePacket(0x6000, 8);          // First line, resident.
    wr->set<std::uint64_t>(55);
    h.req.issueAt(0, std::move(wr));
    h.sim.run();

    Packet rd{MemCmd::kReadReq, 0x6000, 128};
    h.req.port().sendFunctional(rd);
    EXPECT_EQ(rd.get<std::uint64_t>(), 55u);
    std::uint64_t second = 0;
    std::memcpy(&second, rd.constData() + 0x40, sizeof(second));
    EXPECT_EQ(second, 99u);
}

TEST(SpmDeath, CapacityOverflowPanics) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Spm::Params sp = Harness::defaultParams();
    sp.sizeBytes = 64;  // One line.
    EXPECT_DEATH(
        {
            Harness h{sp};
            h.req.issueAt(0, makeWritePacket(0, 64));
            h.req.issueAt(0, makeWritePacket(64, 64));
            h.sim.run();
        },
        "overflow");
}

}  // namespace
}  // namespace g5r
