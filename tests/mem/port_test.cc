// Port protocol: accept/reject handshakes, retries in both directions, and
// functional access. Uses small scripted endpoints as protocol monitors.
#include <gtest/gtest.h>

#include <deque>

#include "mem/port.hh"

namespace g5r {
namespace {

// A requester that records responses and retry notifications.
class ScriptedRequester final : public RequestPort {
public:
    using RequestPort::RequestPort;

    bool recvTimingResp(PacketPtr& pkt) override {
        if (rejectResponses) {
            ++responsesRejected;
            return false;
        }
        responses.push_back(std::move(pkt));
        return true;
    }
    void recvReqRetry() override { ++reqRetries; }

    bool rejectResponses = false;
    int reqRetries = 0;
    int responsesRejected = 0;
    std::deque<PacketPtr> responses;
};

// A responder that can be told to reject, and echoes responses on demand.
class ScriptedResponder final : public ResponsePort {
public:
    using ResponsePort::ResponsePort;

    bool recvTimingReq(PacketPtr& pkt) override {
        if (rejectRequests) {
            ++requestsRejected;
            return false;
        }
        requests.push_back(std::move(pkt));
        return true;
    }
    void recvFunctional(Packet& pkt) override { ++functionalAccesses; lastFunctional = pkt.addr(); }
    void recvRespRetry() override { ++respRetries; }

    bool rejectRequests = false;
    int requestsRejected = 0;
    int respRetries = 0;
    int functionalAccesses = 0;
    Addr lastFunctional = 0;
    std::deque<PacketPtr> requests;
};

class PortTest : public ::testing::Test {
protected:
    void SetUp() override { req.bind(resp); }
    ScriptedRequester req{"req"};
    ScriptedResponder resp{"resp"};
};

TEST_F(PortTest, AcceptedRequestTransfersOwnership) {
    PacketPtr pkt = makeReadPacket(0x1000, 64);
    Packet* raw = pkt.get();
    EXPECT_TRUE(req.sendTimingReq(pkt));
    EXPECT_EQ(pkt, nullptr);
    ASSERT_EQ(resp.requests.size(), 1u);
    EXPECT_EQ(resp.requests.front().get(), raw);
}

TEST_F(PortTest, RejectedRequestStaysWithSender) {
    resp.rejectRequests = true;
    PacketPtr pkt = makeReadPacket(0x2000, 64);
    EXPECT_FALSE(req.sendTimingReq(pkt));
    ASSERT_NE(pkt, nullptr);
    EXPECT_EQ(pkt->addr(), 0x2000u);
    EXPECT_EQ(resp.requestsRejected, 1);

    // After the retry notification the sender can succeed.
    resp.rejectRequests = false;
    resp.sendReqRetry();
    EXPECT_EQ(req.reqRetries, 1);
    EXPECT_TRUE(req.sendTimingReq(pkt));
    EXPECT_EQ(pkt, nullptr);
}

TEST_F(PortTest, ResponseRoundTrip) {
    PacketPtr pkt = makeReadPacket(0x3000, 8);
    ASSERT_TRUE(req.sendTimingReq(pkt));

    PacketPtr response = std::move(resp.requests.front());
    resp.requests.pop_front();
    response->set<std::uint64_t>(0xDEADBEEFull);
    response->makeResponse();
    ASSERT_TRUE(response->isResponse());
    EXPECT_TRUE(resp.sendTimingResp(response));
    EXPECT_EQ(response, nullptr);
    ASSERT_EQ(req.responses.size(), 1u);
    EXPECT_EQ(req.responses.front()->get<std::uint64_t>(), 0xDEADBEEFull);
}

TEST_F(PortTest, RejectedResponseRetries) {
    PacketPtr pkt = makeReadPacket(0x4000, 8);
    ASSERT_TRUE(req.sendTimingReq(pkt));
    PacketPtr response = std::move(resp.requests.front());
    resp.requests.pop_front();
    response->makeResponse();

    req.rejectResponses = true;
    EXPECT_FALSE(resp.sendTimingResp(response));
    ASSERT_NE(response, nullptr);
    EXPECT_EQ(req.responsesRejected, 1);

    req.rejectResponses = false;
    req.sendRespRetry();
    EXPECT_EQ(resp.respRetries, 1);
    EXPECT_TRUE(resp.sendTimingResp(response));
}

TEST_F(PortTest, FunctionalAccessIsSynchronous) {
    Packet pkt{MemCmd::kWriteReq, 0x5000, 4};
    pkt.set<std::uint32_t>(42);
    req.sendFunctional(pkt);
    EXPECT_EQ(resp.functionalAccesses, 1);
    EXPECT_EQ(resp.lastFunctional, 0x5000u);
}

TEST(PacketTest, MakeResponseConversions) {
    Packet read{MemCmd::kReadReq, 0x0, 64};
    EXPECT_TRUE(read.needsResponse());
    read.makeResponse();
    EXPECT_EQ(read.cmd(), MemCmd::kReadResp);
    EXPECT_TRUE(read.isResponse());

    Packet write{MemCmd::kWriteReq, 0x0, 64};
    write.makeResponse();
    EXPECT_EQ(write.cmd(), MemCmd::kWriteResp);

    Packet prefetch{MemCmd::kPrefetchReq, 0x0, 64};
    EXPECT_TRUE(prefetch.isRead());
    prefetch.makeResponse();
    EXPECT_EQ(prefetch.cmd(), MemCmd::kReadResp);

    Packet wb{MemCmd::kWritebackDirty, 0x0, 64};
    EXPECT_FALSE(wb.needsResponse());
    EXPECT_TRUE(wb.isEviction());
    EXPECT_TRUE(wb.isWrite());
}

TEST(PacketTest, PayloadTypedAccess) {
    Packet pkt{MemCmd::kWriteReq, 0x10, 16};
    pkt.set<std::uint32_t>(0xCAFEBABE);
    EXPECT_EQ(pkt.get<std::uint32_t>(), 0xCAFEBABEu);
    EXPECT_TRUE(pkt.hasData());
    EXPECT_EQ(pkt.size(), 16u);
}

TEST(PacketTest, UniqueIds) {
    Packet a{MemCmd::kReadReq, 0, 4};
    Packet b{MemCmd::kReadReq, 0, 4};
    EXPECT_NE(a.id(), b.id());
}

}  // namespace
}  // namespace g5r
