// SimpleMemory timing: latency, bandwidth serialisation, back-pressure,
// writeback absorption, and functional access.
#include <gtest/gtest.h>

#include "common/test_requester.hh"
#include "mem/simple_mem.hh"

namespace g5r {
namespace {

using testing::TestRequester;

struct Harness {
    explicit Harness(SimpleMemory::Params params = defaultParams())
        : mem(sim, "mem", params, store), req(sim, "req") {
        req.port().bind(mem.port());
    }

    static SimpleMemory::Params defaultParams() {
        SimpleMemory::Params p;
        p.range = AddrRange{0, 1ULL << 30};
        p.latency = 10'000;  // 10 ns
        return p;
    }

    Simulation sim;
    BackingStore store;
    SimpleMemory mem;
    TestRequester req;
};

TEST(SimpleMem, ReadReturnsAfterFixedLatency) {
    Harness h;
    h.store.store<std::uint64_t>(0x100, 4242);
    h.req.issueAt(0, makeReadPacket(0x100, 8));
    h.sim.run();
    ASSERT_EQ(h.req.numResponses(), 1u);
    EXPECT_EQ(h.req.responses()[0].tick, 10'000u);
    EXPECT_EQ(h.req.responses()[0].pkt->get<std::uint64_t>(), 4242u);
}

TEST(SimpleMem, WriteUpdatesStoreAndResponds) {
    Harness h;
    auto pkt = makeWritePacket(0x200, 8);
    pkt->set<std::uint64_t>(777);
    h.req.issueAt(0, std::move(pkt));
    h.sim.run();
    ASSERT_EQ(h.req.numResponses(), 1u);
    EXPECT_EQ(h.req.responses()[0].pkt->cmd(), MemCmd::kWriteResp);
    EXPECT_EQ(h.store.load<std::uint64_t>(0x200), 777u);
}

TEST(SimpleMem, WritebackIsAbsorbedWithoutResponse) {
    Harness h;
    auto wb = std::make_unique<Packet>(MemCmd::kWritebackDirty, 0x300, 8);
    wb->set<std::uint64_t>(555);
    h.req.issueAt(0, std::move(wb));
    h.sim.run();
    EXPECT_EQ(h.req.numResponses(), 0u);
    EXPECT_EQ(h.store.load<std::uint64_t>(0x300), 555u);
    EXPECT_TRUE(h.req.allResponsesReceived());
}

TEST(SimpleMem, BandwidthSerialisesBackToBackReads) {
    auto params = Harness::defaultParams();
    params.bytesPerTick = 0.064;  // 64 bytes take 1000 ticks on the channel.
    Harness h{params};
    for (int i = 0; i < 4; ++i) h.req.issueAt(0, makeReadPacket(0x1000 + 64 * i, 64));
    h.sim.run();
    ASSERT_EQ(h.req.numResponses(), 4u);
    // Each response is spaced by the 1000-tick channel occupancy.
    for (int i = 1; i < 4; ++i) {
        EXPECT_EQ(h.req.responses()[i].tick - h.req.responses()[i - 1].tick, 1000u)
            << "response " << i;
    }
}

TEST(SimpleMem, UnlimitedBandwidthDeliversSameTick) {
    Harness h;  // bytesPerTick == 0 -> no serialisation.
    for (int i = 0; i < 4; ++i) h.req.issueAt(0, makeReadPacket(0x1000 + 64 * i, 64));
    h.sim.run();
    ASSERT_EQ(h.req.numResponses(), 4u);
    for (const auto& r : h.req.responses()) EXPECT_EQ(r.tick, 10'000u);
}

TEST(SimpleMem, BackPressureTriggersRetry) {
    auto params = Harness::defaultParams();
    params.maxPending = 2;
    Harness h{params};
    for (int i = 0; i < 6; ++i) h.req.issueAt(0, makeReadPacket(0x100 * i, 8));
    h.sim.run();
    EXPECT_EQ(h.req.numResponses(), 6u);
    EXPECT_GT(h.req.retriesSeen(), 0);
    EXPECT_TRUE(h.req.allResponsesReceived());
}

TEST(SimpleMem, FunctionalAccessBypassesTiming) {
    Harness h;
    Packet write{MemCmd::kWriteReq, 0x400, 4};
    write.set<std::uint32_t>(31337);
    h.req.port().sendFunctional(write);
    Packet read{MemCmd::kReadReq, 0x400, 4};
    h.req.port().sendFunctional(read);
    EXPECT_EQ(read.get<std::uint32_t>(), 31337u);
    EXPECT_EQ(h.sim.curTick(), 0u);
}

TEST(SimpleMem, StatsCountTraffic) {
    Harness h;
    h.req.issueAt(0, makeReadPacket(0x0, 64));
    h.req.issueAt(0, makeWritePacket(0x40, 64));
    h.sim.run();
    EXPECT_DOUBLE_EQ(h.mem.statsGroup().find("numReads")->value(), 1.0);
    EXPECT_DOUBLE_EQ(h.mem.statsGroup().find("numWrites")->value(), 1.0);
    EXPECT_DOUBLE_EQ(h.mem.statsGroup().find("bytesRead")->value(), 64.0);
    EXPECT_DOUBLE_EQ(h.mem.statsGroup().find("bytesWritten")->value(), 64.0);
}

// Property-style sweep: total completion time of a fixed burst scales with
// the configured channel bandwidth.
class SimpleMemBandwidthSweep : public ::testing::TestWithParam<double> {};

TEST_P(SimpleMemBandwidthSweep, BurstDurationMatchesBandwidth) {
    auto params = Harness::defaultParams();
    params.bytesPerTick = GetParam();
    Harness h{params};
    constexpr int kPackets = 16;
    for (int i = 0; i < kPackets; ++i) h.req.issueAt(0, makeReadPacket(64 * i, 64));
    h.sim.run();
    ASSERT_EQ(h.req.numResponses(), kPackets);
    const Tick last = h.req.responses().back().tick;
    const Tick expectedOccupancy =
        static_cast<Tick>(64.0 / GetParam()) * (kPackets - 1);
    EXPECT_EQ(last, params.latency + static_cast<Tick>(64.0 / GetParam()) + expectedOccupancy);
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, SimpleMemBandwidthSweep,
                         ::testing::Values(0.016, 0.032, 0.064, 0.128));

}  // namespace
}  // namespace g5r
