// Failure injection on the port protocol and the memory system: a flaky
// responder that randomly rejects requests and delays retries, and a flaky
// requester that randomly rejects responses — every transaction must still
// complete exactly once with correct data, through raw ports and through
// the crossbar.
#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <map>

#include "common/test_requester.hh"
#include "mem/cache/cache.hh"
#include "mem/simple_mem.hh"
#include "mem/xbar.hh"
#include "sim/rng.hh"

namespace g5r {
namespace {

using testing::TestRequester;

/// A memory endpoint that randomly rejects incoming requests (issuing the
/// retry later) and serves reads with address-derived data after a random
/// latency. Exercises every edge of the request/retry handshake.
class FlakyMemory : public ClockedObject {
public:
    FlakyMemory(Simulation& sim, std::string name, std::uint64_t seed)
        : ClockedObject(sim, std::move(name), periodFromGHz(1)),
          port_(this->name() + ".port", *this),
          rng_(seed),
          drainEvent_([this] { drain(); }, this->name() + ".drain") {}

    ResponsePort& port() { return port_; }
    std::uint64_t requestsServed() const { return served_; }

private:
    class Port final : public ResponsePort {
    public:
        Port(std::string n, FlakyMemory& o) : ResponsePort(std::move(n)), owner_(o) {}
        bool recvTimingReq(PacketPtr& pkt) override { return owner_.handleReq(pkt); }
        void recvFunctional(Packet& pkt) override { owner_.access(pkt); }
        void recvRespRetry() override { owner_.blocked_ = false; owner_.drain(); }

    private:
        FlakyMemory& owner_;
    };

    bool handleReq(PacketPtr& pkt) {
        if (rng_.below(3) == 0) {  // Reject one in three.
            pendingRetry_ = true;
            // Retry later, at a random delay.
            if (!drainEvent_.scheduled()) {
                eventQueue().schedule(drainEvent_, clockEdge(1 + rng_.below(5)));
            }
            return false;
        }
        access(*pkt);
        if (!pkt->needsResponse()) {
            pkt.reset();
            return true;
        }
        pkt->makeResponse();
        queue_.push_back(std::move(pkt));
        ++served_;
        if (!drainEvent_.scheduled()) {
            eventQueue().schedule(drainEvent_, clockEdge(1 + rng_.below(8)));
        }
        return true;
    }

    void drain() {
        while (!blocked_ && !queue_.empty()) {
            PacketPtr& pkt = queue_.front();
            if (!port_.sendTimingResp(pkt)) {
                blocked_ = true;
                break;
            }
            queue_.pop_front();
        }
        if (pendingRetry_) {
            pendingRetry_ = false;
            port_.sendReqRetry();
        }
        if (!queue_.empty() && !blocked_ && !drainEvent_.scheduled()) {
            eventQueue().schedule(drainEvent_, clockEdge(1 + rng_.below(8)));
        }
    }

    /// Reads return written data when available, else an address-derived
    /// pattern (so read-only fuzzing can verify payloads statelessly).
    void access(Packet& pkt) {
        if (pkt.isWrite() && pkt.hasData()) {
            std::uint64_t v = 0;
            std::memcpy(&v, pkt.constData(), std::min<unsigned>(8, pkt.size()));
            writes_[pkt.addr()] = v;
        } else if (pkt.isRead()) {
            const auto it = writes_.find(pkt.addr());
            pkt.set<std::uint64_t>(it != writes_.end() ? it->second : pkt.addr() * 31);
        }
    }

    Port port_;
    Rng rng_;
    std::map<Addr, std::uint64_t> writes_;
    CallbackEvent drainEvent_;
    std::deque<PacketPtr> queue_;
    bool pendingRetry_ = false;
    bool blocked_ = false;
    std::uint64_t served_ = 0;
};

class ProtocolFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolFuzz, DirectConnectionSurvivesRejection) {
    Simulation sim;
    FlakyMemory mem{sim, "flaky", GetParam()};
    TestRequester req{sim, "req"};
    req.port().bind(mem.port());

    Rng rng{GetParam() ^ 0xABCD};
    constexpr int kPackets = 300;
    for (int i = 0; i < kPackets; ++i) {
        req.issueAt(rng.below(50'000), makeReadPacket(8 * rng.below(1024), 8));
    }
    sim.run();
    ASSERT_EQ(req.numResponses(), kPackets);
    EXPECT_GT(req.retriesSeen(), 0);
    for (const auto& r : req.responses()) {
        EXPECT_EQ(r.pkt->get<std::uint64_t>(), r.pkt->addr() * 31);
    }
}

TEST_P(ProtocolFuzz, ThroughTheCrossbarWithTwoFlakyEndpoints) {
    Simulation sim;
    Xbar xbar{sim, "xbar", Xbar::Params{}};
    FlakyMemory lo{sim, "lo", GetParam()};
    FlakyMemory hi{sim, "hi", GetParam() * 7 + 1};
    TestRequester reqA{sim, "a"};
    TestRequester reqB{sim, "b"};

    reqA.port().bind(xbar.addCpuSidePort("a"));
    reqB.port().bind(xbar.addCpuSidePort("b"));
    xbar.addMemSidePort("lo", RouteSpec{AddrRange{0, 1 << 20}}).bind(lo.port());
    xbar.addMemSidePort("hi", RouteSpec{AddrRange{1 << 20, 2 << 20}}).bind(hi.port());

    Rng rng{GetParam() ^ 0x9999};
    constexpr int kPackets = 200;
    for (int i = 0; i < kPackets; ++i) {
        const Addr base = rng.below(2) == 0 ? 0 : (1 << 20);
        reqA.issueAt(rng.below(100'000), makeReadPacket(base + 8 * rng.below(512), 8));
        reqB.issueAt(rng.below(100'000), makeReadPacket(base + 8 * rng.below(512), 8));
    }
    sim.run();
    ASSERT_EQ(reqA.numResponses(), kPackets);
    ASSERT_EQ(reqB.numResponses(), kPackets);
    for (const auto& r : reqA.responses()) {
        EXPECT_EQ(r.pkt->get<std::uint64_t>(), r.pkt->addr() * 31);
    }
    for (const auto& r : reqB.responses()) {
        EXPECT_EQ(r.pkt->get<std::uint64_t>(), r.pkt->addr() * 31);
    }
}

TEST_P(ProtocolFuzz, CacheOverFlakyMemoryStaysCorrect) {
    // Write-then-read patterns through a cache whose backing memory is
    // flaky: data integrity end to end.
    Simulation sim;
    CacheParams cp;
    cp.sizeBytes = 2 * 1024;
    cp.assoc = 2;
    cp.mshrs = 4;
    Cache cache{sim, "c", cp};
    FlakyMemory mem{sim, "flaky", GetParam()};
    TestRequester req{sim, "req"};
    req.port().bind(cache.cpuSidePort());
    cache.memSidePort().bind(mem.port());

    Rng rng{GetParam() + 5};
    // Writes to 64 distinct lines (more than the cache holds).
    for (int i = 0; i < 64; ++i) {
        auto w = makeWritePacket(64 * i, 8);
        w->set<std::uint64_t>(0xA000 + i);
        req.issueAt(rng.below(20'000), std::move(w));
    }
    sim.run();
    ASSERT_TRUE(req.allResponsesReceived());

    // Read them all back through the same path.
    for (int i = 0; i < 64; ++i) {
        req.issueAt(sim.curTick() + rng.below(20'000), makeReadPacket(64 * i, 8));
    }
    sim.run();
    ASSERT_EQ(req.numResponses(), 128u);
    for (std::size_t i = 64; i < 128; ++i) {
        const auto& r = req.responses()[i];
        EXPECT_EQ(r.pkt->get<std::uint64_t>(), 0xA000 + r.pkt->addr() / 64);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzz, ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace g5r
