// DmaEngine behaviour: descriptor ordering, byte-exact copies at arbitrary
// alignment, the combined in-flight cap, retry handling on both ports, and
// the zero-byte edge case.
#include <gtest/gtest.h>

#include <vector>

#include "common/flaky_forwarder.hh"
#include "mem/dma.hh"
#include "mem/simple_mem.hh"

namespace g5r {
namespace {

using testing::FlakyForwarder;
using testing::FlakyForwarderParams;

constexpr AddrRange kRange{0, 1ULL << 30};

SimpleMemory::Params memParams() {
    SimpleMemory::Params p;
    p.range = kRange;
    p.maxPending = 256;
    return p;
}

/// DMA between two SimpleMemories with separate backing stores: "mem" plays
/// main memory, "spm" plays the scratchpad endpoint.
struct Harness {
    explicit Harness(DmaEngine::Params dp = {})
        : mem(sim, "mem", memParams(), memStore),
          spm(sim, "spm", memParams(), spmStore),
          dma(sim, "dma", dp) {
        dma.memPort().bind(mem.port());
        dma.spmPort().bind(spm.port());
    }

    void fillPattern(BackingStore& store, Addr base, unsigned bytes, std::uint8_t salt) {
        for (unsigned i = 0; i < bytes; ++i) {
            store.store<std::uint8_t>(base + i, static_cast<std::uint8_t>(i * 31 + salt));
        }
    }

    void expectPattern(BackingStore& store, Addr base, unsigned bytes, std::uint8_t salt) {
        for (unsigned i = 0; i < bytes; ++i) {
            ASSERT_EQ(store.load<std::uint8_t>(base + i),
                      static_cast<std::uint8_t>(i * 31 + salt))
                << "byte " << i << " at 0x" << std::hex << base + i;
        }
    }

    Simulation sim;
    BackingStore memStore;
    BackingStore spmStore;
    SimpleMemory mem;
    SimpleMemory spm;
    DmaEngine dma;
};

TEST(DmaEngine, CopiesLinesMemToSpm) {
    Harness h;
    h.fillPattern(h.memStore, 0x1000, 4096, 7);
    bool done = false;
    h.dma.enqueue({0x1000, 0x1000, 4096, DmaEngine::Direction::kMemToSpm,
                   [&done] { done = true; }});
    h.sim.run();
    EXPECT_TRUE(done);
    EXPECT_TRUE(h.dma.idle());
    h.expectPattern(h.spmStore, 0x1000, 4096, 7);
    EXPECT_EQ(h.sim.findStat("dma.bytesCopied")->value(), 4096.0);
}

TEST(DmaEngine, DrainsSpmToMem) {
    Harness h;
    h.fillPattern(h.spmStore, 0x8000, 1024, 3);
    h.dma.enqueue({0x8000, 0x8000, 1024, DmaEngine::Direction::kSpmToMem, {}});
    h.sim.run();
    h.expectPattern(h.memStore, 0x8000, 1024, 3);
}

TEST(DmaEngine, UnalignedSrcAndDstCopyByteExactly) {
    Harness h;
    // Different misalignments on each side: chunks bound to both lines.
    h.fillPattern(h.memStore, 0x1003, 517, 11);
    h.dma.enqueue({0x1003, 0x2025, 517, DmaEngine::Direction::kMemToSpm, {}});
    h.sim.run();
    EXPECT_TRUE(h.dma.idle());
    for (unsigned i = 0; i < 517; ++i) {
        ASSERT_EQ(h.spmStore.load<std::uint8_t>(0x2025 + i),
                  static_cast<std::uint8_t>(i * 31 + 11));
    }
}

TEST(DmaEngine, DescriptorsCompleteInSubmissionOrder) {
    Harness h;
    h.fillPattern(h.memStore, 0x1000, 256, 1);
    h.fillPattern(h.memStore, 0x5000, 256, 2);
    h.fillPattern(h.memStore, 0x9000, 256, 3);
    std::vector<int> order;
    for (int d = 0; d < 3; ++d) {
        const Addr base = 0x1000 + static_cast<Addr>(d) * 0x4000;
        h.dma.enqueue({base, base, 256, DmaEngine::Direction::kMemToSpm,
                       [&order, d] { order.push_back(d); }});
    }
    h.sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(h.dma.descriptorsCompleted(), 3u);
    h.expectPattern(h.spmStore, 0x1000, 256, 1);
    h.expectPattern(h.spmStore, 0x5000, 256, 2);
    h.expectPattern(h.spmStore, 0x9000, 256, 3);
}

TEST(DmaEngine, RespectsInflightCap) {
    DmaEngine::Params dp;
    dp.maxInflight = 4;
    Harness h{dp};
    h.fillPattern(h.memStore, 0, 8192, 5);
    h.dma.enqueue({0, 0, 8192, DmaEngine::Direction::kMemToSpm, {}});
    h.sim.run();
    h.expectPattern(h.spmStore, 0, 8192, 5);
    const auto* inflight =
        dynamic_cast<const stats::Distribution*>(h.sim.findStat("dma.inflight"));
    ASSERT_NE(inflight, nullptr);
    EXPECT_LE(inflight->maxValue(), 4.0);
    EXPECT_GT(inflight->maxValue(), 0.0);
}

TEST(DmaEngine, ZeroByteDescriptorCompletesImmediately) {
    Harness h;
    bool done = false;
    h.dma.enqueue({0x100, 0x200, 0, DmaEngine::Direction::kMemToSpm,
                   [&done] { done = true; }});
    h.sim.run();
    EXPECT_TRUE(done);
    EXPECT_TRUE(h.dma.idle());
    EXPECT_EQ(h.dma.descriptorsCompleted(), 1u);
    EXPECT_EQ(h.sim.findStat("dma.bytesCopied")->value(), 0.0);
    EXPECT_EQ(h.sim.findStat("mem.numReads")->value(), 0.0);
}

TEST(DmaEngine, SurvivesRetryOnBothPorts) {
    Simulation sim;
    BackingStore memStore;
    BackingStore spmStore;
    SimpleMemory::Params tight = memParams();
    tight.maxPending = 2;  // Genuine back-pressure on top of the flaky stages.
    SimpleMemory mem{sim, "mem", tight, memStore};
    SimpleMemory spm{sim, "spm", tight, spmStore};
    FlakyForwarderParams fp;
    fp.rejectOneIn = 3;
    FlakyForwarder flakyMem{sim, "flaky_mem", fp};
    fp.seed = 99;
    FlakyForwarder flakySpm{sim, "flaky_spm", fp};
    DmaEngine dma{sim, "dma", {}};
    dma.memPort().bind(flakyMem.cpuSidePort());
    flakyMem.memSidePort().bind(mem.port());
    dma.spmPort().bind(flakySpm.cpuSidePort());
    flakySpm.memSidePort().bind(spm.port());

    for (unsigned i = 0; i < 2048; ++i) {
        memStore.store<std::uint8_t>(0x3001 + i, static_cast<std::uint8_t>(i ^ 0x5A));
    }
    bool done = false;
    dma.enqueue({0x3001, 0x3001, 2048, DmaEngine::Direction::kMemToSpm,
                 [&done] { done = true; }});
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_GT(flakyMem.reqRejections() + flakySpm.reqRejections(), 0);
    for (unsigned i = 0; i < 2048; ++i) {
        ASSERT_EQ(spmStore.load<std::uint8_t>(0x3001 + i),
                  static_cast<std::uint8_t>(i ^ 0x5A));
    }
}

}  // namespace
}  // namespace g5r
