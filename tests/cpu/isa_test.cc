// ISA encoding/decoding, assembler syntax, and instruction semantics.
#include <gtest/gtest.h>

#include "cpu/assembler.hh"
#include "cpu/exec.hh"
#include "cpu/isa.hh"

namespace g5r::isa {
namespace {

TEST(Isa, EncodeDecodeRoundTrip) {
    for (unsigned opIdx = 0; opIdx < static_cast<unsigned>(Opcode::kOpcodeCount); ++opIdx) {
        Instr in;
        in.op = static_cast<Opcode>(opIdx);
        in.rd = 7;
        in.rs1 = 31;
        in.rs2 = 13;
        in.imm = -123456;
        const Instr out = decode(encode(in));
        EXPECT_EQ(out.op, in.op);
        EXPECT_EQ(out.rd, in.rd);
        EXPECT_EQ(out.rs1, in.rs1);
        EXPECT_EQ(out.rs2, in.rs2);
        EXPECT_EQ(out.imm, in.imm);
    }
}

TEST(Isa, MnemonicRoundTrip) {
    for (unsigned opIdx = 0; opIdx < static_cast<unsigned>(Opcode::kOpcodeCount); ++opIdx) {
        const auto op = static_cast<Opcode>(opIdx);
        EXPECT_EQ(opcodeFromMnemonic(mnemonic(op)), op) << mnemonic(op);
    }
    EXPECT_EQ(opcodeFromMnemonic("bogus"), Opcode::kOpcodeCount);
}

TEST(Isa, Classification) {
    EXPECT_TRUE(Instr{Opcode::kLd}.isLoad());
    EXPECT_TRUE(Instr{Opcode::kSd}.isStore());
    EXPECT_TRUE(Instr{Opcode::kBeq}.isBranch());
    EXPECT_TRUE(Instr{Opcode::kJal}.isJump());
    EXPECT_TRUE(Instr{Opcode::kJalr}.isControl());
    EXPECT_FALSE(Instr{Opcode::kAdd}.isMem());
    EXPECT_EQ(Instr{Opcode::kLw}.memBytes(), 4u);
    EXPECT_EQ(Instr{Opcode::kSb}.memBytes(), 1u);
    EXPECT_FALSE(Instr{Opcode::kSd}.writesRd());
    EXPECT_FALSE(Instr{Opcode::kBne}.writesRd());
    EXPECT_TRUE(Instr{Opcode::kJal}.writesRd());
}

TEST(Exec, AluSemantics) {
    auto alu = [](Opcode op, std::uint64_t a, std::uint64_t b, std::int32_t imm = 0) {
        Instr in;
        in.op = op;
        in.imm = imm;
        return aluResult(in, a, b);
    };
    EXPECT_EQ(alu(Opcode::kAdd, 2, 3), 5u);
    EXPECT_EQ(alu(Opcode::kSub, 2, 3), static_cast<std::uint64_t>(-1));
    EXPECT_EQ(alu(Opcode::kMul, 7, 6), 42u);
    EXPECT_EQ(alu(Opcode::kDiv, static_cast<std::uint64_t>(-10), 3),
              static_cast<std::uint64_t>(-3));
    EXPECT_EQ(alu(Opcode::kDiv, 5, 0), ~std::uint64_t{0});
    EXPECT_EQ(alu(Opcode::kRem, 7, 3), 1u);
    EXPECT_EQ(alu(Opcode::kSlt, static_cast<std::uint64_t>(-1), 0), 1u);
    EXPECT_EQ(alu(Opcode::kSltu, static_cast<std::uint64_t>(-1), 0), 0u);
    EXPECT_EQ(alu(Opcode::kSra, static_cast<std::uint64_t>(-8), 1),
              static_cast<std::uint64_t>(-4));
    EXPECT_EQ(alu(Opcode::kSrl, 8, 1), 4u);
    EXPECT_EQ(alu(Opcode::kAddi, 10, 0, -3), 7u);
    EXPECT_EQ(alu(Opcode::kSlli, 1, 0, 12), 4096u);
    EXPECT_EQ(alu(Opcode::kLui, 0, 0, 5), 5u << 12);
}

TEST(Exec, BranchSemantics) {
    auto taken = [](Opcode op, std::uint64_t a, std::uint64_t b) {
        Instr in;
        in.op = op;
        return branchTaken(in, a, b);
    };
    EXPECT_TRUE(taken(Opcode::kBeq, 4, 4));
    EXPECT_FALSE(taken(Opcode::kBeq, 4, 5));
    EXPECT_TRUE(taken(Opcode::kBlt, static_cast<std::uint64_t>(-2), 1));
    EXPECT_FALSE(taken(Opcode::kBltu, static_cast<std::uint64_t>(-2), 1));
    EXPECT_TRUE(taken(Opcode::kBge, 5, 5));
    EXPECT_TRUE(taken(Opcode::kBgeu, static_cast<std::uint64_t>(-1), 1));
}

TEST(Exec, LoadExtension) {
    Instr lb;
    lb.op = Opcode::kLb;
    EXPECT_EQ(extendLoad(lb, 0x80), static_cast<std::uint64_t>(-128));
    Instr lw;
    lw.op = Opcode::kLw;
    EXPECT_EQ(extendLoad(lw, 0xFFFFFFFFu), static_cast<std::uint64_t>(-1));
    Instr ld;
    ld.op = Opcode::kLd;
    EXPECT_EQ(extendLoad(ld, 0x123456789ABCDEFull), 0x123456789ABCDEFull);
}

TEST(Exec, ArchStateZeroRegister) {
    ArchState s;
    s.write(0, 99);
    EXPECT_EQ(s.read(0), 0u);
    s.write(5, 42);
    EXPECT_EQ(s.read(5), 42u);
}

TEST(Assembler, BasicProgram) {
    const Program p = assemble(R"(
        start:
          addi x1, x0, 5     ; five
          add  x2, x1, x1
          halt
    )");
    ASSERT_EQ(p.code.size(), 3u);
    const Instr i0 = decode(p.code[0]);
    EXPECT_EQ(i0.op, Opcode::kAddi);
    EXPECT_EQ(i0.rd, 1);
    EXPECT_EQ(i0.imm, 5);
    EXPECT_EQ(p.offsetOf("start"), 0u);
}

TEST(Assembler, AbiAliasesAndPseudoOps) {
    const Program p = assemble(R"(
          li a0, -7
          mv t0, a0
          nop
          ret
    )");
    ASSERT_EQ(p.code.size(), 4u);
    EXPECT_EQ(decode(p.code[0]).rd, 10);
    EXPECT_EQ(decode(p.code[0]).imm, -7);
    EXPECT_EQ(decode(p.code[1]).rd, 5);
    EXPECT_EQ(decode(p.code[3]).op, Opcode::kJalr);
    EXPECT_EQ(decode(p.code[3]).rs1, 1);
}

TEST(Assembler, BranchOffsetsArePcRelative) {
    const Program p = assemble(R"(
        top:
          addi x1, x1, 1
          beq x1, x2, top
          j top
    )");
    const Instr branch = decode(p.code[1]);
    EXPECT_EQ(branch.imm, -8);  // One instruction back.
    const Instr jump = decode(p.code[2]);
    EXPECT_EQ(jump.op, Opcode::kJal);
    EXPECT_EQ(jump.imm, -16);
}

TEST(Assembler, MemoryOperandForms) {
    const Program p = assemble(R"(
          ld x1, 16(x2)
          sd x3, -8(sp)
          lw x4, (x5)
    )");
    const Instr load = decode(p.code[0]);
    EXPECT_EQ(load.imm, 16);
    EXPECT_EQ(load.rs1, 2);
    const Instr store = decode(p.code[1]);
    EXPECT_EQ(store.rs2, 3);
    EXPECT_EQ(store.rs1, 2);
    EXPECT_EQ(store.imm, -8);
    EXPECT_EQ(decode(p.code[2]).imm, 0);
}

TEST(Assembler, HexImmediates) {
    const Program p = assemble("li x1, 0x1000\nli x2, -0x10\n");
    EXPECT_EQ(decode(p.code[0]).imm, 0x1000);
    EXPECT_EQ(decode(p.code[1]).imm, -16);
}

TEST(Assembler, ErrorsAreReportedWithLineNumbers) {
    EXPECT_THROW(assemble("frobnicate x1, x2\n"), AsmError);
    EXPECT_THROW(assemble("add x1, x2\n"), AsmError);   // Missing operand.
    EXPECT_THROW(assemble("ld x1, x2\n"), AsmError);    // Not imm(reg) form.
    EXPECT_THROW(assemble("beq x1, x2, nowhere\n"), AsmError);
    EXPECT_THROW(assemble("dup:\ndup:\n  nop\n"), AsmError);
    EXPECT_THROW(assemble("add x1, x2, x99\n"), AsmError);
    try {
        assemble("nop\nbogus\n");
        FAIL() << "expected AsmError";
    } catch (const AsmError& e) {
        EXPECT_NE(std::string{e.what()}.find("line 2"), std::string::npos);
    }
}

TEST(Assembler, DisassemblerProducesReadableText) {
    Instr in;
    in.op = Opcode::kAddi;
    in.rd = 1;
    in.rs1 = 2;
    in.imm = 42;
    EXPECT_EQ(disassemble(in), "addi x1, x2, x0, 42");
    in.op = Opcode::kLd;
    EXPECT_EQ(disassemble(in), "ld x1, 42(x2)");
}

}  // namespace
}  // namespace g5r::isa
