// OoO core: architectural correctness (co-simulated against the functional
// golden model), pipeline behaviours (superscalar IPC, mispredict recovery,
// store-to-load forwarding), syscalls, and the full cache-hierarchy path.
#include <gtest/gtest.h>

#include <memory>

#include "cpu/functional.hh"
#include "cpu/ooo_core.hh"
#include "cpu/workloads.hh"
#include "mem/cache/cache.hh"
#include "mem/simple_mem.hh"
#include "mem/xbar.hh"
#include "sim/rng.hh"

namespace g5r {
namespace {

// Full single-core system: core -> L1I/L1D -> xbar -> memory.
struct CoreHarness {
    explicit CoreHarness(const isa::Program& prog, std::uint64_t entry = 0,
                         OooCoreParams coreParams = {}) {
        core = std::make_unique<OooCore>(sim, "cpu0", coreParams, entry);

        CacheParams l1p;
        l1p.sizeBytes = 64 * 1024;
        l1p.assoc = 4;
        l1p.lookupLatency = 2;
        l1p.mshrs = 24;
        l1i = std::make_unique<Cache>(sim, "l1i", l1p);
        l1d = std::make_unique<Cache>(sim, "l1d", l1p);

        xbar = std::make_unique<Xbar>(sim, "xbar", Xbar::Params{});

        SimpleMemory::Params mp;
        mp.range = AddrRange{0, 1ULL << 30};
        mp.latency = 40'000;
        mem = std::make_unique<SimpleMemory>(sim, "mem", mp, store);

        core->icachePort().bind(l1i->cpuSidePort());
        core->dcachePort().bind(l1d->cpuSidePort());
        l1i->memSidePort().bind(xbar->addCpuSidePort("l1i"));
        l1d->memSidePort().bind(xbar->addCpuSidePort("l1d"));
        xbar->addMemSidePort("mem", RouteSpec{mp.range}).bind(mem->port());

        core->setExitCallback([this] { sim.exitSimLoop("cpu0 exit"); });

        for (std::size_t i = 0; i < prog.code.size(); ++i) {
            store.store<std::uint64_t>(entry + i * isa::kInstrBytes, prog.code[i]);
        }
    }

    RunResult run(Tick maxTick = 500'000'000'000ULL) { return sim.run(maxTick); }

    Simulation sim;
    BackingStore store;
    std::unique_ptr<OooCore> core;
    std::unique_ptr<Cache> l1i;
    std::unique_ptr<Cache> l1d;
    std::unique_ptr<Xbar> xbar;
    std::unique_ptr<SimpleMemory> mem;
};

TEST(OooCore, ArithmeticLoopProducesCorrectResult) {
    const auto prog = isa::assemble(R"(
          li a0, 0
          li t0, 1
          li t1, 101
        loop:
          add a0, a0, t0
          addi t0, t0, 1
          blt t0, t1, loop
          li a7, 0
          ecall
          halt
    )");
    CoreHarness h{prog};
    const auto result = h.run();
    EXPECT_EQ(result.cause, ExitCause::kSimExit);
    EXPECT_TRUE(h.core->halted());
    EXPECT_EQ(h.core->archReg(10), 5050u);
    EXPECT_GT(h.core->committedInstructions(), 300u);
}

TEST(OooCore, MemoryOperationsThroughCacheHierarchy) {
    const auto prog = isa::assemble(R"(
          li t0, 0x10000
          li t1, 0
          li t2, 64
        fill:                 ; arr[i] = i*2
          add t3, t1, t1
          slli t4, t1, 3
          add t4, t0, t4
          sd t3, 0(t4)
          addi t1, t1, 1
          blt t1, t2, fill
          li t1, 0
          li a0, 0
        sum:                  ; a0 = sum(arr)
          slli t4, t1, 3
          add t4, t0, t4
          ld t3, 0(t4)
          add a0, a0, t3
          addi t1, t1, 1
          blt t1, t2, sum
          halt
    )");
    CoreHarness h{prog};
    h.run();
    EXPECT_TRUE(h.core->halted());
    EXPECT_EQ(h.core->archReg(10), 64u * 63u);  // 2 * sum(0..63)
    // The stores must be visible through the hierarchy (the dirty lines may
    // still live in the write-back L1D, so probe functionally through it).
    Packet probe{MemCmd::kReadReq, 0x10000 + 8 * 10, 8};
    h.l1d->cpuSidePort().recvFunctional(probe);
    EXPECT_EQ(probe.get<std::uint64_t>(), 20u);
    EXPECT_GT(h.sim.findStat("l1d.hits")->value(), 0.0);
}

TEST(OooCore, SuperscalarIpcOnIndependentOps) {
    // Long stretches of independent adds: IPC should approach the 3-wide
    // front-end, certainly exceeding 1.5.
    std::string body;
    for (int i = 0; i < 16; ++i) {
        body += "  addi x" + std::to_string(5 + (i % 8)) + ", x0, " + std::to_string(i) + "\n";
    }
    std::string src = "  li t6, 0\n  li s11, 2000\nloop:\n" + body +
                      "  addi t6, t6, 1\n  blt t6, s11, loop\n  halt\n";
    CoreHarness h{isa::assemble(src)};
    h.run();
    const double ipc = static_cast<double>(h.core->committedInstructions()) /
                       static_cast<double>(h.core->cyclesRetired());
    EXPECT_GT(ipc, 1.5);
}

TEST(OooCore, DependentChainLimitsIpc) {
    // A pointer-chase-like serial dependency: every op needs the previous.
    std::string src = "  li t0, 1\n  li t6, 0\n  li s11, 2000\nloop:\n";
    for (int i = 0; i < 16; ++i) src += "  mul t0, t0, t0\n";
    src += "  addi t6, t6, 1\n  blt t6, s11, loop\n  halt\n";
    CoreHarness h{isa::assemble(src)};
    h.run();
    const double ipc = static_cast<double>(h.core->committedInstructions()) /
                       static_cast<double>(h.core->cyclesRetired());
    EXPECT_LT(ipc, 0.7);  // Serial 3-cycle muls dominate.
}

TEST(OooCore, BranchPredictionLearnsLoops) {
    const auto prog = isa::assemble(R"(
          li t0, 0
          li t1, 5000
        loop:
          addi t0, t0, 1
          blt t0, t1, loop
          halt
    )");
    CoreHarness h{prog};
    h.run();
    const double mispredicts = h.sim.findStat("cpu0.branchMispredicts")->value();
    const double branches = h.sim.findStat("cpu0.branches")->value();
    EXPECT_GT(branches, 4999.0);
    // A tight loop should mispredict only at warm-up and exit.
    EXPECT_LT(mispredicts / branches, 0.01);
}

TEST(OooCore, MispredictRecoveryIsArchitecturallyCorrect) {
    // Data-dependent unpredictable branches; result must still be exact.
    const auto prog = isa::assemble(R"(
          li t0, 0          ; i
          li t1, 3000       ; n
          li a0, 0          ; accumulator
          li t3, 1234567
        loop:
          mul t3, t3, t3    ; scramble
          addi t3, t3, 9973
          andi t4, t3, 1
          beq t4, x0, even
          addi a0, a0, 3
          j next
        even:
          addi a0, a0, 5
        next:
          addi t0, t0, 1
          blt t0, t1, loop
          halt
    )");
    CoreHarness h{prog};
    h.run();
    ASSERT_TRUE(h.core->halted());
    EXPECT_GT(h.sim.findStat("cpu0.branchMispredicts")->value(), 100.0);
    EXPECT_GT(h.sim.findStat("cpu0.squashedInsts")->value(), 0.0);

    // Golden check via the functional model.
    BackingStore ref;
    const auto progCopy = isa::assemble(R"(
          li t0, 0
          li t1, 3000
          li a0, 0
          li t3, 1234567
        loop:
          mul t3, t3, t3
          addi t3, t3, 9973
          andi t4, t3, 1
          beq t4, x0, even
          addi a0, a0, 3
          j next
        even:
          addi a0, a0, 5
        next:
          addi t0, t0, 1
          blt t0, t1, loop
          halt
    )");
    for (std::size_t i = 0; i < progCopy.code.size(); ++i) {
        ref.store<std::uint64_t>(i * isa::kInstrBytes, progCopy.code[i]);
    }
    isa::FunctionalCore golden{ref, 0};
    golden.run();
    EXPECT_EQ(h.core->archReg(10), golden.state().read(10));
}

TEST(OooCore, StoreToLoadForwarding) {
    // Push/pop pairs through the stack force load-after-store to the same
    // address while the store is still in flight.
    const auto prog = isa::assemble(R"(
          li sp, 0x20000
          li t0, 0
          li t1, 1000
          li a0, 0
        loop:
          addi sp, sp, -8
          sd t0, 0(sp)
          ld t2, 0(sp)
          add a0, a0, t2
          addi sp, sp, 8
          addi t0, t0, 1
          blt t0, t1, loop
          halt
    )");
    CoreHarness h{prog};
    h.run();
    EXPECT_EQ(h.core->archReg(10), 999u * 1000u / 2u);
    EXPECT_GT(h.sim.findStat("cpu0.stlForwards")->value(), 0.0);
}

TEST(OooCore, SleepSyscallIdlesThePipeline) {
    const auto prog = isa::assemble(R"(
          li a0, 10000      ; 10 us
          li a7, 1
          ecall
          li a7, 0
          ecall
          halt
    )");
    CoreHarness h{prog};
    h.run();
    EXPECT_TRUE(h.core->halted());
    // 10 us at 2 GHz = 20k cycles of sleep.
    EXPECT_GT(h.core->cyclesRetired(), 20'000u);
    EXPECT_GT(h.sim.findStat("cpu0.sleepCycles")->value(), 19'000.0);
    // IPC over the whole run is near zero because of the sleep window.
    const double ipc = static_cast<double>(h.core->committedInstructions()) /
                       static_cast<double>(h.core->cyclesRetired());
    EXPECT_LT(ipc, 0.01);
}

TEST(OooCore, ConsoleSyscalls) {
    const auto prog = isa::assemble(R"(
          li a0, 79        ; 'O'
          li a7, 2
          ecall
          li a0, 75        ; 'K'
          li a7, 2
          ecall
          li a0, 42
          li a7, 3
          ecall
          li a7, 0
          ecall
          halt
    )");
    CoreHarness h{prog};
    h.run();
    EXPECT_EQ(h.core->consoleOutput(), "OK42");
}

TEST(OooCore, ExitCallbackFires) {
    const auto prog = isa::assemble("  li a7, 0\n  ecall\n  halt\n");
    CoreHarness h{prog};
    bool fired = false;
    h.core->setExitCallback([&] { fired = true; });
    h.run(2'000'000);
    EXPECT_TRUE(fired);
}

TEST(OooCore, CommitEventsPulseTheEventBus) {
    const auto prog = isa::assemble(R"(
          li t0, 0
          li t1, 100
        loop:
          addi t0, t0, 1
          blt t0, t1, loop
          halt
    )");
    CoreHarness h{prog};
    HwEventBus bus;
    h.core->setEventBus(&bus);
    h.run();
    const auto pulses = bus.drain();
    std::uint64_t total = 0;
    for (unsigned lane = 0; lane < 4; ++lane) total += pulses[lane];
    EXPECT_EQ(total, h.core->committedInstructions());
}

// Co-simulation sweep: the OoO core and the functional golden model must
// agree on final architectural state for randomised programs.
class CoSimTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoSimTest, SortKernelMatchesGoldenModel) {
    workloads::SortBenchmarkLayout layout;
    layout.baseElems = 24;
    layout.sleepNs = 500;
    const auto prog = workloads::sortBenchmarkProgram(layout);

    CoreHarness h{prog};
    workloads::populateSortArrays(h.store, layout, GetParam());
    const auto result = h.run();
    ASSERT_EQ(result.cause, ExitCause::kSimExit) << "timing core did not finish";

    BackingStore ref;
    workloads::populateSortArrays(ref, layout, GetParam());
    for (std::size_t i = 0; i < prog.code.size(); ++i) {
        ref.store<std::uint64_t>(i * isa::kInstrBytes, prog.code[i]);
    }
    isa::FunctionalCore golden{ref, 0};
    while (golden.run(1'000'000'000) != isa::StopReason::kHalted) {}

    // Same committed-instruction count and identical sorted arrays. Dirty
    // lines may still be in the write-back L1D, so read through it.
    EXPECT_EQ(h.core->committedInstructions(), golden.instructionsRetired());
    auto timingLoad = [&](std::uint64_t addr) {
        Packet probe{MemCmd::kReadReq, addr, 8};
        h.l1d->cpuSidePort().recvFunctional(probe);
        return probe.get<std::uint64_t>();
    };
    std::uint64_t prev = 0;
    for (const auto base : {layout.quickBase, layout.selBase, layout.bubbleBase}) {
        const std::uint64_t elems =
            base == layout.quickBase ? layout.quickElems() : layout.baseElems;
        for (std::uint64_t i = 0; i < elems; ++i) {
            const std::uint64_t v = timingLoad(base + 8 * i);
            ASSERT_EQ(v, ref.load<std::uint64_t>(base + 8 * i))
                << "mismatch at array 0x" << std::hex << base << " index " << std::dec << i;
            if (i > 0) EXPECT_LE(prev, v) << "array not sorted";
            prev = v;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoSimTest, ::testing::Values(11u, 22u, 33u));

}  // namespace
}  // namespace g5r
