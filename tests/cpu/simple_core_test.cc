// In-order SimpleCore: architectural equivalence with the golden model and
// with the OoO core, plus in-order-specific timing behaviour.
#include <gtest/gtest.h>

#include <memory>

#include "cpu/functional.hh"
#include "cpu/ooo_core.hh"
#include "cpu/simple_core.hh"
#include "cpu/workloads.hh"
#include "mem/cache/cache.hh"
#include "mem/simple_mem.hh"
#include "mem/xbar.hh"

namespace g5r {
namespace {

template <typename Core, typename Params>
struct Harness {
    Harness(const isa::Program& prog, const Params& coreParams = {}) {
        core = std::make_unique<Core>(sim, "cpu", coreParams, 0);
        CacheParams cp;
        cp.sizeBytes = 32 * 1024;
        cp.assoc = 4;
        cp.mshrs = 16;
        l1i = std::make_unique<Cache>(sim, "l1i", cp);
        l1d = std::make_unique<Cache>(sim, "l1d", cp);
        xbar = std::make_unique<Xbar>(sim, "xbar", Xbar::Params{});
        SimpleMemory::Params mp;
        mp.range = AddrRange{0, 1ULL << 24};
        mp.latency = 40'000;
        mem = std::make_unique<SimpleMemory>(sim, "mem", mp, store);

        core->icachePort().bind(l1i->cpuSidePort());
        core->dcachePort().bind(l1d->cpuSidePort());
        l1i->memSidePort().bind(xbar->addCpuSidePort("i"));
        l1d->memSidePort().bind(xbar->addCpuSidePort("d"));
        xbar->addMemSidePort("m", RouteSpec{mp.range}).bind(mem->port());
        core->setExitCallback([this] { sim.exitSimLoop("done"); });
        for (std::size_t i = 0; i < prog.code.size(); ++i) {
            store.store<std::uint64_t>(i * isa::kInstrBytes, prog.code[i]);
        }
    }

    Simulation sim;
    BackingStore store;
    std::unique_ptr<Core> core;
    std::unique_ptr<Cache> l1i, l1d;
    std::unique_ptr<Xbar> xbar;
    std::unique_ptr<SimpleMemory> mem;
};

using SimpleHarness = Harness<SimpleCore, SimpleCoreParams>;
using OooHarness = Harness<OooCore, OooCoreParams>;

TEST(SimpleCore, ArithmeticAndMemory) {
    const auto prog = isa::assemble(R"(
          li t0, 0x8000
          li t1, 12345
          sd t1, 0(t0)
          ld a0, 0(t0)
          addi a0, a0, 5
          li a7, 0
          ecall
          halt
    )");
    SimpleHarness h{prog};
    const auto result = h.sim.run(10'000'000'000ULL);
    EXPECT_EQ(result.cause, ExitCause::kSimExit);
    EXPECT_EQ(h.core->archReg(10), 12350u);
}

TEST(SimpleCore, SortBenchmarkMatchesGoldenModel) {
    workloads::SortBenchmarkLayout layout;
    layout.baseElems = 20;
    layout.sleepNs = 1'000;
    const auto prog = workloads::sortBenchmarkProgram(layout);

    SimpleHarness h{prog};
    workloads::populateSortArrays(h.store, layout, 5);
    const auto result = h.sim.run(500'000'000'000ULL);
    ASSERT_EQ(result.cause, ExitCause::kSimExit);

    BackingStore golden;
    workloads::populateSortArrays(golden, layout, 5);
    for (std::size_t i = 0; i < prog.code.size(); ++i) {
        golden.store<std::uint64_t>(i * isa::kInstrBytes, prog.code[i]);
    }
    isa::FunctionalCore ref{golden, 0};
    while (ref.run(1'000'000'000) != isa::StopReason::kHalted) {}

    EXPECT_EQ(h.core->committedInstructions(), ref.instructionsRetired());
    for (std::uint64_t i = 0; i < layout.baseElems; ++i) {
        Packet probe{MemCmd::kReadReq, layout.selBase + 8 * i, 8};
        h.l1d->cpuSidePort().recvFunctional(probe);
        EXPECT_EQ(probe.get<std::uint64_t>(),
                  golden.load<std::uint64_t>(layout.selBase + 8 * i));
    }
}

TEST(SimpleCore, ConsoleAndSleep) {
    const auto prog = isa::assemble(R"(
          li a0, 72
          li a7, 2
          ecall
          li a0, 4000
          li a7, 1
          ecall
          li a0, 73
          li a7, 2
          ecall
          li a7, 0
          ecall
          halt
    )");
    SimpleHarness h{prog};
    h.sim.run(100'000'000'000ULL);
    EXPECT_EQ(h.core->consoleOutput(), "HI");
    // The 4 us sleep shows up in elapsed cycles (8000 at 2 GHz).
    EXPECT_GT(h.core->cyclesRetired(), 8000u);
}

TEST(SimpleCore, InOrderIsSlowerThanOutOfOrder) {
    // Independent-op kernel: OoO extracts ILP, the in-order core cannot.
    std::string body = "  li t6, 0\n  li s11, 2000\nloop:\n";
    for (int i = 0; i < 12; ++i) {
        body += "  addi x" + std::to_string(5 + (i % 6)) + ", x0, " + std::to_string(i) + "\n";
    }
    body += "  addi t6, t6, 1\n  blt t6, s11, loop\n  li a7, 0\n  ecall\n  halt\n";
    const auto prog = isa::assemble(body);

    SimpleHarness inorder{prog};
    inorder.sim.run(100'000'000'000ULL);
    OooHarness ooo{prog};
    ooo.sim.run(100'000'000'000ULL);

    ASSERT_TRUE(inorder.core->halted());
    ASSERT_TRUE(ooo.core->halted());
    EXPECT_EQ(inorder.core->committedInstructions(), ooo.core->committedInstructions());
    EXPECT_GT(inorder.core->cyclesRetired(), 2 * ooo.core->cyclesRetired());
}

TEST(SimpleCore, BlockedDataPortRetries) {
    // A tiny memory queue forces back-pressure on the blocking D-port path.
    const auto prog = isa::assemble(R"(
          li t0, 0x8000
          li t1, 0
          li t2, 64
        loop:
          slli t3, t1, 3
          add t3, t0, t3
          sd t1, 0(t3)
          ld t4, 0(t3)
          addi t1, t1, 1
          blt t1, t2, loop
          li a7, 0
          ecall
          halt
    )");
    SimpleHarness h{prog};
    const auto result = h.sim.run(100'000'000'000ULL);
    EXPECT_EQ(result.cause, ExitCause::kSimExit);
    EXPECT_EQ(h.core->archReg(29), 63u);  // t4 = last value read back.
}

}  // namespace
}  // namespace g5r
