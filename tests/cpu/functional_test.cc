// Functional-core execution and validation of the workload kernels against
// std::sort as the golden reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cpu/functional.hh"
#include "cpu/workloads.hh"
#include "sim/rng.hh"

namespace g5r {
namespace {

using isa::FunctionalCore;
using isa::Program;
using isa::StopReason;

void loadProgram(BackingStore& mem, const Program& p, std::uint64_t base) {
    for (std::size_t i = 0; i < p.code.size(); ++i) {
        mem.store<std::uint64_t>(base + i * isa::kInstrBytes, p.code[i]);
    }
}

TEST(Functional, ArithmeticLoop) {
    // Sum 1..10 into a0.
    const Program p = isa::assemble(R"(
          li a0, 0
          li t0, 1
          li t1, 11
        loop:
          add a0, a0, t0
          addi t0, t0, 1
          blt t0, t1, loop
          halt
    )");
    BackingStore mem;
    loadProgram(mem, p, 0);
    FunctionalCore core{mem, 0};
    EXPECT_EQ(core.run(), StopReason::kHalted);
    EXPECT_EQ(core.state().read(10), 55u);
}

TEST(Functional, LoadsAndStores) {
    const Program p = isa::assemble(R"(
          li t0, 0x1000
          li t1, -1
          sd t1, 0(t0)
          lw t2, 0(t0)      ; sign-extended -1
          lb t3, 0(t0)
          li t4, 300
          sb t4, 8(t0)      ; truncated to 44
          lb t5, 8(t0)
          halt
    )");
    BackingStore mem;
    loadProgram(mem, p, 0);
    FunctionalCore core{mem, 0};
    core.run();
    EXPECT_EQ(core.state().read(7), static_cast<std::uint64_t>(-1));   // t2
    EXPECT_EQ(core.state().read(28), static_cast<std::uint64_t>(-1));  // t3
    EXPECT_EQ(core.state().read(30), 44u);                             // t5
}

TEST(Functional, CallAndReturn) {
    const Program p = isa::assemble(R"(
          li sp, 0x8000
          li a0, 20
          call double_it
          call double_it
          halt
        double_it:
          add a0, a0, a0
          ret
    )");
    BackingStore mem;
    loadProgram(mem, p, 0);
    FunctionalCore core{mem, 0};
    EXPECT_EQ(core.run(), StopReason::kHalted);
    EXPECT_EQ(core.state().read(10), 80u);
}

TEST(Functional, SyscallsExitAndPrint) {
    const Program p = isa::assemble(R"(
          li a0, 72        ; 'H'
          li a7, 2
          ecall
          li a0, -42
          li a7, 3
          ecall
          li a7, 0
          ecall
          halt
    )");
    BackingStore mem;
    loadProgram(mem, p, 0);
    FunctionalCore core{mem, 0};
    EXPECT_EQ(core.run(), StopReason::kHalted);
    EXPECT_EQ(core.consoleOutput(), "H-42");
}

TEST(Functional, SleepSyscallReportsDuration) {
    const Program p = isa::assemble(R"(
          li a0, 5000
          li a7, 1
          ecall
          halt
    )");
    BackingStore mem;
    loadProgram(mem, p, 0);
    FunctionalCore core{mem, 0};
    StopReason r = StopReason::kRunning;
    while (r == StopReason::kRunning) r = core.step();
    EXPECT_EQ(r, StopReason::kSleeping);
    EXPECT_EQ(core.lastSleepNs(), 5000u);
    // Continuing past the sleep reaches the halt.
    EXPECT_EQ(core.run(), StopReason::kHalted);
}

TEST(Functional, RunBudgetStopsInfiniteLoops) {
    const Program p = isa::assemble("spin: j spin\n");
    BackingStore mem;
    loadProgram(mem, p, 0);
    FunctionalCore core{mem, 0};
    EXPECT_EQ(core.run(1000), StopReason::kMaxInstrs);
    EXPECT_EQ(core.instructionsRetired(), 1000u);
}

// --- sorting-kernel validation ---------------------------------------------

class SortKernelTest : public ::testing::TestWithParam<std::uint64_t> {};

std::vector<std::int64_t> runKernel(const std::string& kernelSource,
                                    const std::string& kernelName,
                                    std::vector<std::int64_t> data) {
    const std::uint64_t arrayBase = 0x100000;
    const std::uint64_t progBase = 0;
    std::ostringstream driver;
    driver << "  li sp, 0xF0000\n"
           << "  li a0, " << arrayBase << "\n"
           << "  li a1, " << data.size() << "\n"
           << "  call " << kernelName << "\n"
           << "  halt\n"
           << kernelSource;
    const Program p = isa::assemble(driver.str());

    BackingStore mem;
    loadProgram(mem, p, progBase);
    for (std::size_t i = 0; i < data.size(); ++i) {
        mem.store<std::uint64_t>(arrayBase + 8 * i, static_cast<std::uint64_t>(data[i]));
    }
    FunctionalCore core{mem, progBase};
    const StopReason r = core.run(200'000'000);
    EXPECT_EQ(r, StopReason::kHalted);

    std::vector<std::int64_t> out(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
        out[i] = static_cast<std::int64_t>(mem.load<std::uint64_t>(arrayBase + 8 * i));
    }
    return out;
}

std::vector<std::int64_t> randomData(std::size_t n, std::uint64_t seed) {
    Rng rng{seed};
    std::vector<std::int64_t> v(n);
    for (auto& x : v) x = static_cast<std::int64_t>(rng.below(100000)) - 50000;
    return v;
}

TEST_P(SortKernelTest, QuickSortMatchesStdSort) {
    auto data = randomData(257, GetParam());
    auto expected = data;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(runKernel(workloads::quickSortFunction(), "quicksort", data), expected);
}

TEST_P(SortKernelTest, SelectionSortMatchesStdSort) {
    auto data = randomData(100, GetParam());
    auto expected = data;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(runKernel(workloads::selectionSortFunction(), "selectionsort", data), expected);
}

TEST_P(SortKernelTest, BubbleSortMatchesStdSort) {
    auto data = randomData(100, GetParam());
    auto expected = data;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(runKernel(workloads::bubbleSortFunction(), "bubblesort", data), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortKernelTest, ::testing::Values(1u, 2u, 3u, 17u, 99u));

TEST(SortKernels, EdgeCases) {
    for (const auto& kernel :
         {std::pair{workloads::quickSortFunction(), std::string{"quicksort"}},
          std::pair{workloads::selectionSortFunction(), std::string{"selectionsort"}},
          std::pair{workloads::bubbleSortFunction(), std::string{"bubblesort"}}}) {
        EXPECT_EQ(runKernel(kernel.first, kernel.second, {}), std::vector<std::int64_t>{});
        EXPECT_EQ(runKernel(kernel.first, kernel.second, {7}), std::vector<std::int64_t>{7});
        EXPECT_EQ(runKernel(kernel.first, kernel.second, {2, 1}),
                  (std::vector<std::int64_t>{1, 2}));
        EXPECT_EQ(runKernel(kernel.first, kernel.second, {5, 5, 5}),
                  (std::vector<std::int64_t>{5, 5, 5}));
        EXPECT_EQ(runKernel(kernel.first, kernel.second, {3, 2, 1, 0, -1}),
                  (std::vector<std::int64_t>{-1, 0, 1, 2, 3}));
    }
}

TEST(SortBenchmark, FullThreePhaseProgramSortsAllArrays) {
    workloads::SortBenchmarkLayout layout;
    layout.baseElems = 50;
    BackingStore mem;
    workloads::populateSortArrays(mem, layout);
    const Program p = workloads::sortBenchmarkProgram(layout);
    loadProgram(mem, p, 0);

    FunctionalCore core{mem, 0};
    int sleeps = 0;
    StopReason r = StopReason::kRunning;
    while (r != StopReason::kHalted) {
        r = core.step();
        if (r == StopReason::kSleeping) {
            ++sleeps;
            EXPECT_EQ(core.lastSleepNs(), layout.sleepNs);
        }
        ASSERT_LT(core.instructionsRetired(), 50'000'000u);
    }
    EXPECT_EQ(sleeps, 2);
    EXPECT_TRUE(workloads::isSorted(mem, layout.quickBase, layout.quickElems()));
    EXPECT_TRUE(workloads::isSorted(mem, layout.selBase, layout.baseElems));
    EXPECT_TRUE(workloads::isSorted(mem, layout.bubbleBase, layout.baseElems));
}

TEST(SortBenchmark, QuickSortIsAsymptoticallyFaster) {
    // The paper's observation: quicksort handles 10x the elements in less
    // time. Compare dynamic instruction counts at the same layout.
    workloads::SortBenchmarkLayout layout;
    layout.baseElems = 500;  // quick sorts 5000; large enough that the
                             // quadratic kernels dominate despite 10x data.
    BackingStore mem;
    workloads::populateSortArrays(mem, layout);
    loadProgram(mem, workloads::sortBenchmarkProgram(layout), 0);

    FunctionalCore core{mem, 0};
    std::vector<std::uint64_t> phaseInstrs;
    std::uint64_t phaseStart = 0;
    StopReason r = StopReason::kRunning;
    while (r != StopReason::kHalted) {
        r = core.step();
        if (r == StopReason::kSleeping) {
            phaseInstrs.push_back(core.instructionsRetired() - phaseStart);
            phaseStart = core.instructionsRetired();
        }
    }
    phaseInstrs.push_back(core.instructionsRetired() - phaseStart);
    ASSERT_EQ(phaseInstrs.size(), 3u);
    // Quicksort on 10x data still needs fewer instructions than either
    // quadratic kernel on 1x data.
    EXPECT_LT(phaseInstrs[0], phaseInstrs[1]);
    EXPECT_LT(phaseInstrs[0], phaseInstrs[2]);
}

}  // namespace
}  // namespace g5r
