// Differential fuzzing: pseudo-random programs run on the OoO timing core
// must produce exactly the architectural state the functional golden model
// produces — registers and memory. Programs mix ALU ops, loads/stores of
// all widths into a sandboxed region, and forward branches (so termination
// is guaranteed by construction).
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "cpu/assembler.hh"
#include "cpu/functional.hh"
#include "cpu/ooo_core.hh"
#include "mem/cache/cache.hh"
#include "mem/simple_mem.hh"
#include "mem/xbar.hh"
#include "sim/rng.hh"

namespace g5r {
namespace {

constexpr std::uint64_t kDataBase = 0x10000;
constexpr std::uint64_t kDataSize = 0x1000;

/// Generate a random but well-formed, terminating program.
std::string generateProgram(std::uint64_t seed, unsigned length) {
    Rng rng{seed};
    std::ostringstream os;
    // Seed registers with arbitrary values.
    for (unsigned r = 5; r <= 15; ++r) {
        os << "  li x" << r << ", " << static_cast<std::int64_t>(rng.below(2'000'000)) -
                                           1'000'000
           << "\n";
    }

    std::multimap<unsigned, unsigned> pendingLabels;  // instr index -> label ids.
    unsigned nextLabel = 0;
    unsigned emitted = 0;

    auto reg = [&] { return 5 + rng.below(11); };  // x5..x15.

    for (unsigned i = 0; i < length; ++i) {
        for (auto [it, end] = pendingLabels.equal_range(i); it != end; ++it) {
            os << "L" << it->second << ":\n";
        }
        pendingLabels.erase(i);
        ++emitted;
        switch (rng.below(10)) {
        case 0: case 1: case 2: {  // ALU register-register.
            static const char* kOps[] = {"add", "sub", "and", "or",  "xor", "sll",
                                         "srl", "sra", "slt", "sltu", "mul", "div",
                                         "rem"};
            os << "  " << kOps[rng.below(13)] << " x" << reg() << ", x" << reg()
               << ", x" << reg() << "\n";
            break;
        }
        case 3: case 4: case 5: {  // ALU immediate.
            static const char* kOps[] = {"addi", "andi", "ori", "xori", "slti"};
            os << "  " << kOps[rng.below(5)] << " x" << reg() << ", x" << reg() << ", "
               << static_cast<std::int64_t>(rng.below(8192)) - 4096 << "\n";
            break;
        }
        case 6: {  // Shift-immediate (bounded shamt).
            static const char* kOps[] = {"slli", "srli", "srai"};
            os << "  " << kOps[rng.below(3)] << " x" << reg() << ", x" << reg() << ", "
               << rng.below(63) << "\n";
            break;
        }
        case 7: {  // Load (sandboxed address in x20).
            static const std::pair<const char*, unsigned> kLoads[] = {
                {"ld", 0xFF8}, {"lw", 0xFFC}, {"lb", 0xFFF}};
            const auto& [op, mask] = kLoads[rng.below(3)];
            os << "  andi x20, x" << reg() << ", " << mask << "\n"
               << "  li x21, " << kDataBase << "\n"
               << "  add x20, x20, x21\n"
               << "  " << op << " x" << reg() << ", 0(x20)\n";
            break;
        }
        case 8: {  // Store.
            static const std::pair<const char*, unsigned> kStores[] = {
                {"sd", 0xFF8}, {"sw", 0xFFC}, {"sb", 0xFFF}};
            const auto& [op, mask] = kStores[rng.below(3)];
            os << "  andi x20, x" << reg() << ", " << mask << "\n"
               << "  li x21, " << kDataBase << "\n"
               << "  add x20, x20, x21\n"
               << "  " << op << " x" << reg() << ", 0(x20)\n";
            break;
        }
        default: {  // Forward branch over 1..5 upcoming instructions.
            static const char* kOps[] = {"beq", "bne", "blt", "bge", "bltu", "bgeu"};
            const unsigned label = nextLabel++;
            const unsigned target = i + 1 + static_cast<unsigned>(rng.below(5));
            pendingLabels.emplace(std::min(target, length), label);
            os << "  " << kOps[rng.below(6)] << " x" << reg() << ", x" << reg() << ", L"
               << label << "\n";
            break;
        }
        }
    }
    // Flush any labels that point past the end.
    for (const auto& [idx, label] : pendingLabels) os << "L" << label << ":\n";
    os << "  halt\n";
    (void)emitted;
    return os.str();
}

/// Timing system: core + split L1s + xbar + memory.
struct FuzzHarness {
    explicit FuzzHarness(const isa::Program& prog) {
        core = std::make_unique<OooCore>(sim, "cpu", OooCoreParams{}, 0);
        CacheParams cp;
        cp.sizeBytes = 8 * 1024;  // Small, to stress miss/writeback paths.
        cp.assoc = 2;
        cp.mshrs = 6;
        l1i = std::make_unique<Cache>(sim, "l1i", cp);
        l1d = std::make_unique<Cache>(sim, "l1d", cp);
        xbar = std::make_unique<Xbar>(sim, "xbar", Xbar::Params{});
        SimpleMemory::Params mp;
        mp.range = AddrRange{0, 1ULL << 24};
        mp.latency = 30'000;
        mem = std::make_unique<SimpleMemory>(sim, "mem", mp, store);

        core->icachePort().bind(l1i->cpuSidePort());
        core->dcachePort().bind(l1d->cpuSidePort());
        l1i->memSidePort().bind(xbar->addCpuSidePort("i"));
        l1d->memSidePort().bind(xbar->addCpuSidePort("d"));
        xbar->addMemSidePort("m", RouteSpec{mp.range}).bind(mem->port());
        core->setExitCallback([this] { sim.exitSimLoop("done"); });

        for (std::size_t i = 0; i < prog.code.size(); ++i) {
            store.store<std::uint64_t>(i * isa::kInstrBytes, prog.code[i]);
        }
    }

    std::uint64_t memRead(std::uint64_t addr) {
        Packet probe{MemCmd::kReadReq, addr, 8};
        l1d->cpuSidePort().recvFunctional(probe);
        return probe.get<std::uint64_t>();
    }

    Simulation sim;
    BackingStore store;
    std::unique_ptr<OooCore> core;
    std::unique_ptr<Cache> l1i, l1d;
    std::unique_ptr<Xbar> xbar;
    std::unique_ptr<SimpleMemory> mem;
};

class CoreFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoreFuzz, RandomProgramMatchesGoldenModel) {
    const std::string source = generateProgram(GetParam(), 150);
    const isa::Program prog = isa::assemble(source);

    // Pre-fill the data region identically on both sides.
    Rng fill{GetParam() ^ 0xF00D};
    FuzzHarness timing{prog};
    BackingStore golden;
    for (std::size_t i = 0; i < prog.code.size(); ++i) {
        golden.store<std::uint64_t>(i * isa::kInstrBytes, prog.code[i]);
    }
    for (std::uint64_t a = 0; a < kDataSize; a += 8) {
        const std::uint64_t v = fill.next();
        timing.store.store<std::uint64_t>(kDataBase + a, v);
        golden.store<std::uint64_t>(kDataBase + a, v);
    }

    isa::FunctionalCore ref{golden, 0};
    ASSERT_EQ(ref.run(10'000'000), isa::StopReason::kHalted) << source;

    const RunResult run = timing.sim.run(10'000'000'000ULL);
    ASSERT_EQ(run.cause, ExitCause::kSimExit)
        << "timing core did not halt; seed " << GetParam();

    EXPECT_EQ(timing.core->committedInstructions(), ref.instructionsRetired())
        << "seed " << GetParam();
    for (unsigned r = 1; r < isa::kNumRegs; ++r) {
        ASSERT_EQ(timing.core->archReg(r), ref.state().read(r))
            << "x" << r << " differs; seed " << GetParam() << "\n" << source;
    }
    for (std::uint64_t a = 0; a < kDataSize; a += 8) {
        ASSERT_EQ(timing.memRead(kDataBase + a), golden.load<std::uint64_t>(kDataBase + a))
            << "mem[0x" << std::hex << (kDataBase + a) << "] differs; seed " << std::dec
            << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoreFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u,
                                           101u, 202u, 303u, 404u, 505u));

}  // namespace
}  // namespace g5r
