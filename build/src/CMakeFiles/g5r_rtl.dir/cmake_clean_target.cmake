file(REMOVE_RECURSE
  "libg5r_rtl.a"
)
