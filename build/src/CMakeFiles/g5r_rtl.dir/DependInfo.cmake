
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/kernel.cc" "src/CMakeFiles/g5r_rtl.dir/rtl/kernel.cc.o" "gcc" "src/CMakeFiles/g5r_rtl.dir/rtl/kernel.cc.o.d"
  "/root/repo/src/rtl/netlist.cc" "src/CMakeFiles/g5r_rtl.dir/rtl/netlist.cc.o" "gcc" "src/CMakeFiles/g5r_rtl.dir/rtl/netlist.cc.o.d"
  "/root/repo/src/rtl/vcd.cc" "src/CMakeFiles/g5r_rtl.dir/rtl/vcd.cc.o" "gcc" "src/CMakeFiles/g5r_rtl.dir/rtl/vcd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/g5r_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
