# Empty compiler generated dependencies file for g5r_rtl.
# This may be replaced when dependencies are built.
