file(REMOVE_RECURSE
  "CMakeFiles/g5r_rtl.dir/rtl/kernel.cc.o"
  "CMakeFiles/g5r_rtl.dir/rtl/kernel.cc.o.d"
  "CMakeFiles/g5r_rtl.dir/rtl/netlist.cc.o"
  "CMakeFiles/g5r_rtl.dir/rtl/netlist.cc.o.d"
  "CMakeFiles/g5r_rtl.dir/rtl/vcd.cc.o"
  "CMakeFiles/g5r_rtl.dir/rtl/vcd.cc.o.d"
  "libg5r_rtl.a"
  "libg5r_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g5r_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
