# Empty compiler generated dependencies file for bitonic_model.
# This may be replaced when dependencies are built.
