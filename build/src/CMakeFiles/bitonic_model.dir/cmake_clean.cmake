file(REMOVE_RECURSE
  "CMakeFiles/bitonic_model.dir/models/bitonic/bitonic_api.cc.o"
  "CMakeFiles/bitonic_model.dir/models/bitonic/bitonic_api.cc.o.d"
  "libbitonic_model.a"
  "libbitonic_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitonic_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
