file(REMOVE_RECURSE
  "libbitonic_model.a"
)
