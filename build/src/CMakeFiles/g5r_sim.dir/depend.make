# Empty dependencies file for g5r_sim.
# This may be replaced when dependencies are built.
