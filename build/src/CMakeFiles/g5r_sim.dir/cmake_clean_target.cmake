file(REMOVE_RECURSE
  "libg5r_sim.a"
)
