file(REMOVE_RECURSE
  "CMakeFiles/g5r_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/g5r_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/g5r_sim.dir/sim/logging.cc.o"
  "CMakeFiles/g5r_sim.dir/sim/logging.cc.o.d"
  "CMakeFiles/g5r_sim.dir/sim/simulation.cc.o"
  "CMakeFiles/g5r_sim.dir/sim/simulation.cc.o.d"
  "CMakeFiles/g5r_sim.dir/sim/stats.cc.o"
  "CMakeFiles/g5r_sim.dir/sim/stats.cc.o.d"
  "libg5r_sim.a"
  "libg5r_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g5r_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
