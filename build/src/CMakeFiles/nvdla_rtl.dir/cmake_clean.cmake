file(REMOVE_RECURSE
  "../models/libnvdla_rtl.pdb"
  "../models/libnvdla_rtl.so"
  "CMakeFiles/nvdla_rtl.dir/models/shim.cc.o"
  "CMakeFiles/nvdla_rtl.dir/models/shim.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvdla_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
