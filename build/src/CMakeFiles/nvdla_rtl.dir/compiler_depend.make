# Empty compiler generated dependencies file for nvdla_rtl.
# This may be replaced when dependencies are built.
