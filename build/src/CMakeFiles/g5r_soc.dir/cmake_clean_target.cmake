file(REMOVE_RECURSE
  "libg5r_soc.a"
)
