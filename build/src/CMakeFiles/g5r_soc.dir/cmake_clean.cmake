file(REMOVE_RECURSE
  "CMakeFiles/g5r_soc.dir/soc/experiments.cc.o"
  "CMakeFiles/g5r_soc.dir/soc/experiments.cc.o.d"
  "CMakeFiles/g5r_soc.dir/soc/nvdla_host.cc.o"
  "CMakeFiles/g5r_soc.dir/soc/nvdla_host.cc.o.d"
  "CMakeFiles/g5r_soc.dir/soc/pmu_observer.cc.o"
  "CMakeFiles/g5r_soc.dir/soc/pmu_observer.cc.o.d"
  "CMakeFiles/g5r_soc.dir/soc/soc.cc.o"
  "CMakeFiles/g5r_soc.dir/soc/soc.cc.o.d"
  "libg5r_soc.a"
  "libg5r_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g5r_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
