# Empty compiler generated dependencies file for g5r_soc.
# This may be replaced when dependencies are built.
