file(REMOVE_RECURSE
  "libg5r_mem.a"
)
