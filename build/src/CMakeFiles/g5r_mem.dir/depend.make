# Empty dependencies file for g5r_mem.
# This may be replaced when dependencies are built.
