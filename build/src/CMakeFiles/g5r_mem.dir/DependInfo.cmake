
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cache/cache.cc" "src/CMakeFiles/g5r_mem.dir/mem/cache/cache.cc.o" "gcc" "src/CMakeFiles/g5r_mem.dir/mem/cache/cache.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/g5r_mem.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/g5r_mem.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/packet.cc" "src/CMakeFiles/g5r_mem.dir/mem/packet.cc.o" "gcc" "src/CMakeFiles/g5r_mem.dir/mem/packet.cc.o.d"
  "/root/repo/src/mem/simple_mem.cc" "src/CMakeFiles/g5r_mem.dir/mem/simple_mem.cc.o" "gcc" "src/CMakeFiles/g5r_mem.dir/mem/simple_mem.cc.o.d"
  "/root/repo/src/mem/xbar.cc" "src/CMakeFiles/g5r_mem.dir/mem/xbar.cc.o" "gcc" "src/CMakeFiles/g5r_mem.dir/mem/xbar.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/g5r_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
