file(REMOVE_RECURSE
  "CMakeFiles/g5r_mem.dir/mem/cache/cache.cc.o"
  "CMakeFiles/g5r_mem.dir/mem/cache/cache.cc.o.d"
  "CMakeFiles/g5r_mem.dir/mem/dram.cc.o"
  "CMakeFiles/g5r_mem.dir/mem/dram.cc.o.d"
  "CMakeFiles/g5r_mem.dir/mem/packet.cc.o"
  "CMakeFiles/g5r_mem.dir/mem/packet.cc.o.d"
  "CMakeFiles/g5r_mem.dir/mem/simple_mem.cc.o"
  "CMakeFiles/g5r_mem.dir/mem/simple_mem.cc.o.d"
  "CMakeFiles/g5r_mem.dir/mem/xbar.cc.o"
  "CMakeFiles/g5r_mem.dir/mem/xbar.cc.o.d"
  "libg5r_mem.a"
  "libg5r_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g5r_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
