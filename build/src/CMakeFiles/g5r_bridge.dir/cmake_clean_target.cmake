file(REMOVE_RECURSE
  "libg5r_bridge.a"
)
