file(REMOVE_RECURSE
  "CMakeFiles/g5r_bridge.dir/bridge/rtl_model.cc.o"
  "CMakeFiles/g5r_bridge.dir/bridge/rtl_model.cc.o.d"
  "CMakeFiles/g5r_bridge.dir/bridge/rtl_object.cc.o"
  "CMakeFiles/g5r_bridge.dir/bridge/rtl_object.cc.o.d"
  "libg5r_bridge.a"
  "libg5r_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g5r_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
