# Empty dependencies file for g5r_bridge.
# This may be replaced when dependencies are built.
