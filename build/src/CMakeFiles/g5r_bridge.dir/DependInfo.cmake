
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bridge/rtl_model.cc" "src/CMakeFiles/g5r_bridge.dir/bridge/rtl_model.cc.o" "gcc" "src/CMakeFiles/g5r_bridge.dir/bridge/rtl_model.cc.o.d"
  "/root/repo/src/bridge/rtl_object.cc" "src/CMakeFiles/g5r_bridge.dir/bridge/rtl_object.cc.o" "gcc" "src/CMakeFiles/g5r_bridge.dir/bridge/rtl_object.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/g5r_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/g5r_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
