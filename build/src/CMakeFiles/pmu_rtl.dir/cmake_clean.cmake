file(REMOVE_RECURSE
  "../models/libpmu_rtl.pdb"
  "../models/libpmu_rtl.so"
  "CMakeFiles/pmu_rtl.dir/models/shim.cc.o"
  "CMakeFiles/pmu_rtl.dir/models/shim.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmu_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
