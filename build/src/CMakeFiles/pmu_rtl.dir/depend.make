# Empty dependencies file for pmu_rtl.
# This may be replaced when dependencies are built.
