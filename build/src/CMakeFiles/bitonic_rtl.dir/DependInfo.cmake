
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/shim.cc" "src/CMakeFiles/bitonic_rtl.dir/models/shim.cc.o" "gcc" "src/CMakeFiles/bitonic_rtl.dir/models/shim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bitonic_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/g5r_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/g5r_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/g5r_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
