file(REMOVE_RECURSE
  "../models/libbitonic_rtl.pdb"
  "../models/libbitonic_rtl.so"
  "CMakeFiles/bitonic_rtl.dir/models/shim.cc.o"
  "CMakeFiles/bitonic_rtl.dir/models/shim.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitonic_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
