# Empty compiler generated dependencies file for bitonic_rtl.
# This may be replaced when dependencies are built.
