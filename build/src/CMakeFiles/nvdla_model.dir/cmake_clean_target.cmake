file(REMOVE_RECURSE
  "libnvdla_model.a"
)
