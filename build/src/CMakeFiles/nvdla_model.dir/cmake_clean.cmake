file(REMOVE_RECURSE
  "CMakeFiles/nvdla_model.dir/models/nvdla/nvdla_api.cc.o"
  "CMakeFiles/nvdla_model.dir/models/nvdla/nvdla_api.cc.o.d"
  "CMakeFiles/nvdla_model.dir/models/nvdla/nvdla_design.cc.o"
  "CMakeFiles/nvdla_model.dir/models/nvdla/nvdla_design.cc.o.d"
  "CMakeFiles/nvdla_model.dir/models/nvdla/standalone.cc.o"
  "CMakeFiles/nvdla_model.dir/models/nvdla/standalone.cc.o.d"
  "CMakeFiles/nvdla_model.dir/models/nvdla/trace.cc.o"
  "CMakeFiles/nvdla_model.dir/models/nvdla/trace.cc.o.d"
  "libnvdla_model.a"
  "libnvdla_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvdla_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
