# Empty dependencies file for nvdla_model.
# This may be replaced when dependencies are built.
