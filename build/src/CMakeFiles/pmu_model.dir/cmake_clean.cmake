file(REMOVE_RECURSE
  "CMakeFiles/pmu_model.dir/models/pmu/pmu_api.cc.o"
  "CMakeFiles/pmu_model.dir/models/pmu/pmu_api.cc.o.d"
  "CMakeFiles/pmu_model.dir/models/pmu/pmu_design.cc.o"
  "CMakeFiles/pmu_model.dir/models/pmu/pmu_design.cc.o.d"
  "libpmu_model.a"
  "libpmu_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmu_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
