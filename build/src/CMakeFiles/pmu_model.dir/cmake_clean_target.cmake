file(REMOVE_RECURSE
  "libpmu_model.a"
)
