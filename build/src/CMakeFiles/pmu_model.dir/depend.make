# Empty dependencies file for pmu_model.
# This may be replaced when dependencies are built.
