file(REMOVE_RECURSE
  "libg5r_cpu.a"
)
