
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/assembler.cc" "src/CMakeFiles/g5r_cpu.dir/cpu/assembler.cc.o" "gcc" "src/CMakeFiles/g5r_cpu.dir/cpu/assembler.cc.o.d"
  "/root/repo/src/cpu/functional.cc" "src/CMakeFiles/g5r_cpu.dir/cpu/functional.cc.o" "gcc" "src/CMakeFiles/g5r_cpu.dir/cpu/functional.cc.o.d"
  "/root/repo/src/cpu/isa.cc" "src/CMakeFiles/g5r_cpu.dir/cpu/isa.cc.o" "gcc" "src/CMakeFiles/g5r_cpu.dir/cpu/isa.cc.o.d"
  "/root/repo/src/cpu/ooo_core.cc" "src/CMakeFiles/g5r_cpu.dir/cpu/ooo_core.cc.o" "gcc" "src/CMakeFiles/g5r_cpu.dir/cpu/ooo_core.cc.o.d"
  "/root/repo/src/cpu/simple_core.cc" "src/CMakeFiles/g5r_cpu.dir/cpu/simple_core.cc.o" "gcc" "src/CMakeFiles/g5r_cpu.dir/cpu/simple_core.cc.o.d"
  "/root/repo/src/cpu/workloads.cc" "src/CMakeFiles/g5r_cpu.dir/cpu/workloads.cc.o" "gcc" "src/CMakeFiles/g5r_cpu.dir/cpu/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/g5r_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/g5r_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
