# Empty dependencies file for g5r_cpu.
# This may be replaced when dependencies are built.
