file(REMOVE_RECURSE
  "CMakeFiles/g5r_cpu.dir/cpu/assembler.cc.o"
  "CMakeFiles/g5r_cpu.dir/cpu/assembler.cc.o.d"
  "CMakeFiles/g5r_cpu.dir/cpu/functional.cc.o"
  "CMakeFiles/g5r_cpu.dir/cpu/functional.cc.o.d"
  "CMakeFiles/g5r_cpu.dir/cpu/isa.cc.o"
  "CMakeFiles/g5r_cpu.dir/cpu/isa.cc.o.d"
  "CMakeFiles/g5r_cpu.dir/cpu/ooo_core.cc.o"
  "CMakeFiles/g5r_cpu.dir/cpu/ooo_core.cc.o.d"
  "CMakeFiles/g5r_cpu.dir/cpu/simple_core.cc.o"
  "CMakeFiles/g5r_cpu.dir/cpu/simple_core.cc.o.d"
  "CMakeFiles/g5r_cpu.dir/cpu/workloads.cc.o"
  "CMakeFiles/g5r_cpu.dir/cpu/workloads.cc.o.d"
  "libg5r_cpu.a"
  "libg5r_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g5r_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
