# Empty compiler generated dependencies file for pmu_monitor.
# This may be replaced when dependencies are built.
