file(REMOVE_RECURSE
  "CMakeFiles/pmu_monitor.dir/pmu_monitor.cpp.o"
  "CMakeFiles/pmu_monitor.dir/pmu_monitor.cpp.o.d"
  "pmu_monitor"
  "pmu_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmu_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
