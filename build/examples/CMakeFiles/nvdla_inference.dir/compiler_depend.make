# Empty compiler generated dependencies file for nvdla_inference.
# This may be replaced when dependencies are built.
