file(REMOVE_RECURSE
  "CMakeFiles/nvdla_inference.dir/nvdla_inference.cpp.o"
  "CMakeFiles/nvdla_inference.dir/nvdla_inference.cpp.o.d"
  "nvdla_inference"
  "nvdla_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvdla_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
