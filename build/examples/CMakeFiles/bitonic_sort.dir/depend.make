# Empty dependencies file for bitonic_sort.
# This may be replaced when dependencies are built.
