file(REMOVE_RECURSE
  "CMakeFiles/bitonic_sort.dir/bitonic_sort.cpp.o"
  "CMakeFiles/bitonic_sort.dir/bitonic_sort.cpp.o.d"
  "bitonic_sort"
  "bitonic_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitonic_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
