file(REMOVE_RECURSE
  "CMakeFiles/test_soc.dir/soc/combined_test.cc.o"
  "CMakeFiles/test_soc.dir/soc/combined_test.cc.o.d"
  "CMakeFiles/test_soc.dir/soc/soc_ext_test.cc.o"
  "CMakeFiles/test_soc.dir/soc/soc_ext_test.cc.o.d"
  "CMakeFiles/test_soc.dir/soc/soc_test.cc.o"
  "CMakeFiles/test_soc.dir/soc/soc_test.cc.o.d"
  "test_soc"
  "test_soc.pdb"
  "test_soc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
