
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/models/bitonic_test.cc" "tests/CMakeFiles/test_models.dir/models/bitonic_test.cc.o" "gcc" "tests/CMakeFiles/test_models.dir/models/bitonic_test.cc.o.d"
  "/root/repo/tests/models/nvdla_test.cc" "tests/CMakeFiles/test_models.dir/models/nvdla_test.cc.o" "gcc" "tests/CMakeFiles/test_models.dir/models/nvdla_test.cc.o.d"
  "/root/repo/tests/models/pmu_test.cc" "tests/CMakeFiles/test_models.dir/models/pmu_test.cc.o" "gcc" "tests/CMakeFiles/test_models.dir/models/pmu_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/g5r_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmu_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvdla_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bitonic_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/g5r_bridge.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/g5r_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/g5r_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
