
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cpu/functional_test.cc" "tests/CMakeFiles/test_cpu.dir/cpu/functional_test.cc.o" "gcc" "tests/CMakeFiles/test_cpu.dir/cpu/functional_test.cc.o.d"
  "/root/repo/tests/cpu/fuzz_test.cc" "tests/CMakeFiles/test_cpu.dir/cpu/fuzz_test.cc.o" "gcc" "tests/CMakeFiles/test_cpu.dir/cpu/fuzz_test.cc.o.d"
  "/root/repo/tests/cpu/isa_test.cc" "tests/CMakeFiles/test_cpu.dir/cpu/isa_test.cc.o" "gcc" "tests/CMakeFiles/test_cpu.dir/cpu/isa_test.cc.o.d"
  "/root/repo/tests/cpu/ooo_core_test.cc" "tests/CMakeFiles/test_cpu.dir/cpu/ooo_core_test.cc.o" "gcc" "tests/CMakeFiles/test_cpu.dir/cpu/ooo_core_test.cc.o.d"
  "/root/repo/tests/cpu/simple_core_test.cc" "tests/CMakeFiles/test_cpu.dir/cpu/simple_core_test.cc.o" "gcc" "tests/CMakeFiles/test_cpu.dir/cpu/simple_core_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/g5r_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/g5r_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/g5r_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
