
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mem/backing_store_test.cc" "tests/CMakeFiles/test_mem.dir/mem/backing_store_test.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/backing_store_test.cc.o.d"
  "/root/repo/tests/mem/cache_test.cc" "tests/CMakeFiles/test_mem.dir/mem/cache_test.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/cache_test.cc.o.d"
  "/root/repo/tests/mem/dram_test.cc" "tests/CMakeFiles/test_mem.dir/mem/dram_test.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/dram_test.cc.o.d"
  "/root/repo/tests/mem/port_test.cc" "tests/CMakeFiles/test_mem.dir/mem/port_test.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/port_test.cc.o.d"
  "/root/repo/tests/mem/protocol_fuzz_test.cc" "tests/CMakeFiles/test_mem.dir/mem/protocol_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/protocol_fuzz_test.cc.o.d"
  "/root/repo/tests/mem/simple_mem_test.cc" "tests/CMakeFiles/test_mem.dir/mem/simple_mem_test.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/simple_mem_test.cc.o.d"
  "/root/repo/tests/mem/xbar_test.cc" "tests/CMakeFiles/test_mem.dir/mem/xbar_test.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/xbar_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/g5r_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/g5r_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
