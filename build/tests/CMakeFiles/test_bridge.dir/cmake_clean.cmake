file(REMOVE_RECURSE
  "CMakeFiles/test_bridge.dir/bridge/rtl_object_test.cc.o"
  "CMakeFiles/test_bridge.dir/bridge/rtl_object_test.cc.o.d"
  "CMakeFiles/test_bridge.dir/bridge/tlb_test.cc.o"
  "CMakeFiles/test_bridge.dir/bridge/tlb_test.cc.o.d"
  "test_bridge"
  "test_bridge.pdb"
  "test_bridge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
