file(REMOVE_RECURSE
  "CMakeFiles/test_rtl.dir/rtl/kernel_test.cc.o"
  "CMakeFiles/test_rtl.dir/rtl/kernel_test.cc.o.d"
  "CMakeFiles/test_rtl.dir/rtl/netlist_test.cc.o"
  "CMakeFiles/test_rtl.dir/rtl/netlist_test.cc.o.d"
  "test_rtl"
  "test_rtl.pdb"
  "test_rtl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
