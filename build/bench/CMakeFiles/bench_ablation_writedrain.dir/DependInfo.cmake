
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_writedrain.cpp" "bench/CMakeFiles/bench_ablation_writedrain.dir/bench_ablation_writedrain.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_writedrain.dir/bench_ablation_writedrain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/g5r_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/g5r_bridge.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/g5r_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvdla_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmu_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/g5r_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/g5r_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/g5r_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
