file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_writedrain.dir/bench_ablation_writedrain.cpp.o"
  "CMakeFiles/bench_ablation_writedrain.dir/bench_ablation_writedrain.cpp.o.d"
  "bench_ablation_writedrain"
  "bench_ablation_writedrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_writedrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
