file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sramif.dir/bench_ablation_sramif.cpp.o"
  "CMakeFiles/bench_ablation_sramif.dir/bench_ablation_sramif.cpp.o.d"
  "bench_ablation_sramif"
  "bench_ablation_sramif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sramif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
