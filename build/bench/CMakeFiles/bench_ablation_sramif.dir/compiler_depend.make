# Empty compiler generated dependencies file for bench_ablation_sramif.
# This may be replaced when dependencies are built.
