# Empty dependencies file for bench_fig6_nvdla_googlenet.
# This may be replaced when dependencies are built.
