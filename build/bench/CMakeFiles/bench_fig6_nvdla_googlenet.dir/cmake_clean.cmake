file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_nvdla_googlenet.dir/bench_fig6_nvdla_googlenet.cpp.o"
  "CMakeFiles/bench_fig6_nvdla_googlenet.dir/bench_fig6_nvdla_googlenet.cpp.o.d"
  "bench_fig6_nvdla_googlenet"
  "bench_fig6_nvdla_googlenet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_nvdla_googlenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
