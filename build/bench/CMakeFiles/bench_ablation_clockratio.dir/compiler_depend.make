# Empty compiler generated dependencies file for bench_ablation_clockratio.
# This may be replaced when dependencies are built.
