file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_clockratio.dir/bench_ablation_clockratio.cpp.o"
  "CMakeFiles/bench_ablation_clockratio.dir/bench_ablation_clockratio.cpp.o.d"
  "bench_ablation_clockratio"
  "bench_ablation_clockratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_clockratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
