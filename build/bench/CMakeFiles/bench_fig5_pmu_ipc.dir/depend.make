# Empty dependencies file for bench_fig5_pmu_ipc.
# This may be replaced when dependencies are built.
