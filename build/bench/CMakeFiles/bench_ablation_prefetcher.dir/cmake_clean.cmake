file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_prefetcher.dir/bench_ablation_prefetcher.cpp.o"
  "CMakeFiles/bench_ablation_prefetcher.dir/bench_ablation_prefetcher.cpp.o.d"
  "bench_ablation_prefetcher"
  "bench_ablation_prefetcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_prefetcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
