file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_coremodel.dir/bench_ablation_coremodel.cpp.o"
  "CMakeFiles/bench_ablation_coremodel.dir/bench_ablation_coremodel.cpp.o.d"
  "bench_ablation_coremodel"
  "bench_ablation_coremodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_coremodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
