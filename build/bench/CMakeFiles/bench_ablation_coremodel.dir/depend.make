# Empty dependencies file for bench_ablation_coremodel.
# This may be replaced when dependencies are built.
