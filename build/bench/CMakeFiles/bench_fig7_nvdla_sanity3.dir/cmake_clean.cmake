file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_nvdla_sanity3.dir/bench_fig7_nvdla_sanity3.cpp.o"
  "CMakeFiles/bench_fig7_nvdla_sanity3.dir/bench_fig7_nvdla_sanity3.cpp.o.d"
  "bench_fig7_nvdla_sanity3"
  "bench_fig7_nvdla_sanity3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_nvdla_sanity3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
