# Empty compiler generated dependencies file for bench_fig7_nvdla_sanity3.
# This may be replaced when dependencies are built.
