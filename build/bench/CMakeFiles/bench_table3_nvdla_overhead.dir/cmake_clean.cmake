file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_nvdla_overhead.dir/bench_table3_nvdla_overhead.cpp.o"
  "CMakeFiles/bench_table3_nvdla_overhead.dir/bench_table3_nvdla_overhead.cpp.o.d"
  "bench_table3_nvdla_overhead"
  "bench_table3_nvdla_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_nvdla_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
