// Memory-path comparison demo: run one fig. 7 design point (1 NVDLA,
// DDR4-1ch, a starved 1-request in-flight window) over both memory paths —
// the direct DBBIF connection and the DMA + scratchpad staging path — and
// print the crossover. Writes BENCH_dma_spm.json with both points.
//
// CI runs this as the memory-path smoke: the binary exits non-zero unless
// both runs complete with verified checksums AND the staged path is faster
// at this starved queue depth (the configuration the SPM exists for).
#include <cstdio>

#include "exp/bench_report.hh"
#include "soc/experiments.hh"

using namespace g5r;

int main() {
    experiments::DseRunConfig cfg;
    cfg.shape = models::sanity3Shape();
    cfg.workloadName = "sanity3";
    cfg.memTech = MemTech::kDdr4_1ch;
    cfg.numAccelerators = 1;
    cfg.maxInflight = 1;  // Starved: every DBBIF request pays full DRAM latency.
    cfg.numCores = 0;

    cfg.memPath = MemPath::kDirect;
    const auto direct = experiments::runNvdlaDse(cfg);
    cfg.memPath = MemPath::kDmaSpm;
    const auto staged = experiments::runNvdlaDse(cfg);

    std::printf("fig7 point: 1x NVDLA, DDR4-1ch, 1 in-flight request\n");
    const auto show = [](const char* name, const experiments::DseRunResult& r) {
        std::printf("  %-8s completed=%d checksumOk=%d runtimeTicks=%llu\n", name,
                    r.completed, r.checksumsOk,
                    static_cast<unsigned long long>(r.runtimeTicks));
    };
    show("direct", direct);
    show("dmaSpm", staged);
    if (staged.dmaDescriptors > 0) {
        std::printf("  dmaSpm   descriptors=%llu spmReadHits=%.0f spmReadMisses=%.0f\n",
                    static_cast<unsigned long long>(staged.dmaDescriptors),
                    staged.spmReadHits, staged.spmReadMisses);
    }

    exp::Json doc = exp::benchDocument("dma_spm_compare", 1);
    doc["workload"] = "Sanity3";
    const auto addPoint = [&doc](const char* memPath,
                                 const experiments::DseRunResult& r) {
        exp::Json entry = exp::Json::object();
        entry["accelerators"] = 1u;
        entry["memTech"] = "DDR4-1ch";
        entry["memPath"] = memPath;
        entry["maxInflight"] = 1u;
        entry["runtimeTicks"] = r.runtimeTicks;
        entry["checksumOk"] = r.completed && r.checksumsOk;
        doc["points"].push(std::move(entry));
    };
    addPoint("direct", direct);
    addPoint("dmaSpm", staged);
    const std::string path = exp::writeBenchJson("BENCH_dma_spm.json", doc);
    if (!path.empty()) std::printf("# wrote %s\n", path.c_str());

    const bool ok = direct.completed && direct.checksumsOk && staged.completed &&
                    staged.checksumsOk && staged.runtimeTicks < direct.runtimeTicks;
    std::printf("[%s] DMA+SPM staging beats the direct path when starved\n",
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
