// Observability demo: run one fig. 7 design point (1 NVDLA, HBM, 64
// in-flight requests) with Perfetto tracing and host-time profiling on, and
// print where the wall clock went.
//
// Output artefacts:
//   * <dir>/fig7_hbm_q64.trace.json — load it at https://ui.perfetto.dev
//     (dir from GEM5RTL_TRACE=<dir>, default current directory)
//   * <dir>/fig7_hbm_q64.metrics.jsonl — the stats timeline, when
//     GEM5RTL_METRICS=<dir> is set; render it with `g5r-stats timeline`
//   * a host-time profile table: RTL eval vs memory system vs queue overhead
//   * per-master memory-bus latency distributions with p50/p99 percentiles
//
// CI runs this with GEM5RTL_TRACE=trace-out GEM5RTL_METRICS=trace-out and
// then validates the emitted trace with tests/obs (TraceCheck.*) and the
// timeline with g5r-stats.
#include <cstdio>

#include "sim/logging.hh"
#include "soc/experiments.hh"

using namespace g5r;

int main() {
    // The run label names the trace file: fig7_hbm_q64.trace.json.
    const RunLabelScope label{"fig7_hbm_q64"};

    experiments::DseRunConfig cfg;
    cfg.shape = models::sanity3Shape();
    cfg.workloadName = "sanity3";
    cfg.memTech = MemTech::kHbm;
    cfg.numAccelerators = 1;
    cfg.maxInflight = 64;
    cfg.numCores = 0;  // Accelerator-only study, like the fig. 7 sweep.
    cfg.obs.traceEnabled = true;    // GEM5RTL_TRACE can still redirect/disable.
    cfg.obs.profileEnabled = true;  // GEM5RTL_PROFILE likewise.

    const auto result = experiments::runNvdlaDse(cfg);
    std::printf("fig7 point: 1x NVDLA, HBM, 64 in-flight\n");
    std::printf("  completed=%d checksumOk=%d runtimeTicks=%llu\n", result.completed,
                result.checksumsOk, static_cast<unsigned long long>(result.runtimeTicks));

    if (!result.tracePath.empty()) {
        std::printf("\ntrace written to %s (open in Perfetto)\n", result.tracePath.c_str());
    }

    if (result.profile != nullptr) {
        std::printf("\n%s", result.profile->table().c_str());
    }

    if (!result.memLatency.empty()) {
        std::printf("\nmemory-bus round-trip latency per master (ticks):\n");
        for (const auto& [master, lat] : result.memLatency) {
            std::printf("  %-16s count=%-8llu min=%-8.0f mean=%-10.1f p50=%-8.0f "
                        "p99=%-8.0f max=%.0f\n",
                        master.c_str(), static_cast<unsigned long long>(lat.count),
                        lat.minTicks, lat.meanTicks, lat.p50Ticks, lat.p99Ticks,
                        lat.maxTicks);
        }
        std::printf("  %-16s p50=%-8.0f p99=%.0f\n", "(SoC merged)",
                    result.memLatencyP50, result.memLatencyP99);
    }

    if (!result.metricsPath.empty()) {
        std::printf("\nmetrics timeline written to %s (render with g5r-stats)\n",
                    result.metricsPath.c_str());
    }
    return result.completed && result.checksumsOk ? 0 : 1;
}
