// NVDLA integration example — the paper's second use case (Section 4.2).
//
// Integrates one NVDLA-style accelerator into the Table 1 SoC, lets the host
// load a convolution trace and launch it over the CSB, and reports runtime,
// achieved memory traffic and the verified datapath checksum.
//
//   $ ./nvdla_inference [sanity3|googlenet] [memtech] [maxInflight]
//   memtech: ddr4-1ch ddr4-2ch ddr4-4ch gddr5 hbm ideal
#include <cstdio>
#include <cstring>
#include <string>

#include "soc/experiments.hh"

using namespace g5r;

namespace {

MemTech parseTech(const std::string& s) {
    if (s == "ddr4-1ch") return MemTech::kDdr4_1ch;
    if (s == "ddr4-2ch") return MemTech::kDdr4_2ch;
    if (s == "ddr4-4ch") return MemTech::kDdr4_4ch;
    if (s == "gddr5") return MemTech::kGddr5;
    if (s == "hbm") return MemTech::kHbm;
    return MemTech::kIdeal;
}

}  // namespace

int main(int argc, char** argv) {
    const std::string workload = argc > 1 ? argv[1] : "googlenet";
    const std::string tech = argc > 2 ? argv[2] : "ddr4-4ch";
    const unsigned inflight = argc > 3 ? std::strtoul(argv[3], nullptr, 0) : 64;

    experiments::DseRunConfig cfg;
    cfg.memTech = parseTech(tech);
    cfg.shape = workload == "sanity3" ? models::sanity3Shape()
                                      : models::googlenetConv2Shape();
    cfg.workloadName = workload;
    cfg.maxInflight = inflight;
    cfg.numCores = 1;

    std::printf("workload %s on %s, max %u in-flight requests\n", workload.c_str(),
                memTechName(cfg.memTech), inflight);
    std::printf("  ifmap %llu B (x%u refetch), weights %llu B, ofmap %llu B, "
                "%llu MACs\n",
                static_cast<unsigned long long>(cfg.shape.ifmapBytes()),
                cfg.shape.refetch,
                static_cast<unsigned long long>(cfg.shape.weightBytes()),
                static_cast<unsigned long long>(cfg.shape.ofmapBytes()),
                static_cast<unsigned long long>(cfg.shape.totalMacs()));

    const auto result = experiments::runNvdlaDse(cfg);
    if (!result.completed) {
        std::printf("accelerator did not finish\n");
        return 1;
    }

    const double us = ticksToMs(result.runtimeTicks) * 1000.0;
    const double gbps = static_cast<double>(cfg.shape.totalTrafficBytes()) /
                        (us * 1e-6) / 1e9;
    std::printf("finished in %.2f us simulated (avg %.1f outstanding requests)\n", us,
                result.avgOutstanding);
    std::printf("achieved memory traffic: %.2f GB/s\n", gbps);
    std::printf("datapath checksum: %s\n", result.checksumsOk ? "OK" : "MISMATCH");
    return result.checksumsOk ? 0 : 1;
}
