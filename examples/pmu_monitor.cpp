// PMU monitoring example — the paper's first use case (Section 4.1).
//
// Runs the three-kernel sorting benchmark on a full SoC with the PMU RTL
// model attached and interrupting every 10,000 cycles, then prints the IPC
// and MPKI time series as measured by the PMU and by the simulator's own
// statistics side by side (the data behind Fig. 5).
//
//   $ ./pmu_monitor [baseElems] [sleepNs]
#include <cstdio>
#include <cstdlib>

#include "soc/experiments.hh"

using namespace g5r;

int main(int argc, char** argv) {
    experiments::PmuRunConfig cfg;
    cfg.layout.baseElems = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 150;
    cfg.layout.sleepNs = argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 50'000;
    cfg.numCores = 1;

    std::printf("sorting %llu/%llu/%llu elements (quick/selection/bubble), "
                "%llu ns sleeps, PMU interval %llu cycles\n",
                static_cast<unsigned long long>(cfg.layout.quickElems()),
                static_cast<unsigned long long>(cfg.layout.baseElems),
                static_cast<unsigned long long>(cfg.layout.baseElems),
                static_cast<unsigned long long>(cfg.layout.sleepNs),
                static_cast<unsigned long long>(cfg.intervalCycles));

    const auto result = experiments::runPmuSortExperiment(cfg);
    if (!result.completed) {
        std::printf("benchmark did not finish within the tick budget\n");
        return 1;
    }

    std::printf("\n%10s %10s %10s %12s %12s\n", "time(ms)", "IPC(pmu)", "IPC(gem5)",
                "MPKI(pmu)", "MPKI(gem5)");
    for (const auto& iv : result.intervals) {
        std::printf("%10.4f %10.3f %10.3f %12.2f %12.2f\n", iv.timeMs, iv.pmuIpc,
                    iv.gem5Ipc, iv.pmuMpki, iv.gem5Mpki);
    }
    std::printf("\nintervals: %zu   max |IPC_pmu - IPC_gem5|: %.4f\n",
                result.intervals.size(), result.maxAbsIpcError);
    std::printf("total: %llu instructions over %llu cycles (IPC %.3f)\n",
                static_cast<unsigned long long>(result.committedInsts),
                static_cast<unsigned long long>(result.cycles),
                static_cast<double>(result.committedInsts) /
                    static_cast<double>(result.cycles));
    return 0;
}
