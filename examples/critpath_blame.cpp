// Request-tracing smoke: critical-path stage blame at the fig. 7 starved
// point (1 NVDLA, DDR4-1ch, 1 in-flight DBBIF request).
//
// Runs three simulations, each writing a .reqtrace.jsonl sidecar:
//   direct   — the direct DBBIF path
//   dmaSpm/8 — DMA + SPM staging with a narrow 8-line DMA window
//   dmaSpm/64— same point with the default 64-line window
//
// then prints each run's blame table (via the g5r-critpath library) and
// exits non-zero unless:
//   * every run completed with a verified checksum,
//   * per-stage blame sums to exactly 100% of every request window
//     (g5r-critpath --assert-sum on each sidecar),
//   * the dmaSpm win over direct shows up as blame: the direct path spends
//     a larger share in dramService+xbarQueue than the staged path,
//   * widening the DMA in-flight window shrinks staging blame:
//     dmaStage+spmFill ticks at window 64 < at window 8.
//
// CI runs this as the request-tracing gate and uploads the sidecars plus
// the JSON reports it leaves behind.
#include <cstdio>
#include <string>

#include "obs/critpath_cli.hh"
#include "soc/experiments.hh"

using namespace g5r;

namespace {

double blamed(const experiments::DseRunResult& r, const char* stage) {
    for (const auto& [name, ticks] : r.stageBlame) {
        if (name == stage) return ticks;
    }
    return 0;
}

double blameTotal(const experiments::DseRunResult& r) {
    double total = 0;
    for (const auto& [name, ticks] : r.stageBlame) total += ticks;
    return total;
}

}  // namespace

int main() {
    experiments::DseRunConfig cfg;
    cfg.shape = models::sanity3Shape();
    cfg.workloadName = "sanity3";
    cfg.memTech = MemTech::kDdr4_1ch;
    cfg.numAccelerators = 1;
    cfg.maxInflight = 1;  // Starved DBBIF: the fig. 7 worst case.
    cfg.numCores = 0;
    cfg.obs.reqtraceEnabled = true;

    struct Run {
        const char* label;
        std::string sidecar;
        experiments::DseRunResult result;
    };
    Run runs[3] = {{"direct", "critpath_direct.reqtrace.jsonl", {}},
                   {"dmaSpm/w8", "critpath_dmaspm_w8.reqtrace.jsonl", {}},
                   {"dmaSpm/w64", "critpath_dmaspm_w64.reqtrace.jsonl", {}}};

    cfg.memPath = MemPath::kDirect;
    cfg.obs.reqtracePath = runs[0].sidecar;
    runs[0].result = experiments::runNvdlaDse(cfg);

    cfg.memPath = MemPath::kDmaSpm;
    cfg.dmaMaxInflight = 8;
    cfg.obs.reqtracePath = runs[1].sidecar;
    runs[1].result = experiments::runNvdlaDse(cfg);

    cfg.dmaMaxInflight = 64;
    cfg.obs.reqtracePath = runs[2].sidecar;
    runs[2].result = experiments::runNvdlaDse(cfg);

    int failures = 0;
    const auto check = [&failures](bool ok, const char* what) {
        std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", what);
        if (!ok) ++failures;
    };

    std::printf("fig7 starved point: 1x NVDLA sanity3, DDR4-1ch, 1 in-flight request\n");
    for (Run& run : runs) {
        const auto& r = run.result;
        std::printf("\n== %s: runtimeTicks=%llu ==\n", run.label,
                    static_cast<unsigned long long>(r.runtimeTicks));
        const double total = blameTotal(r);
        for (const auto& [stage, ticks] : r.stageBlame) {
            if (ticks <= 0) continue;
            std::printf("  %-13s %16.0f  %6.2f%%\n", stage.c_str(), ticks,
                        total > 0 ? 100.0 * ticks / total : 0.0);
        }
        check(r.completed && r.checksumsOk, "run completed, checksum verified");

        // The CLI re-derives blame from the sidecar and re-checks the
        // sums-to-100% invariant per request; exercise it end to end.
        const char* argv[] = {"g5r-critpath", "--assert-sum", run.sidecar.c_str()};
        check(obs::critpathCliMain(3, argv) == 0,
              "g5r-critpath --assert-sum on the sidecar");
    }

    const auto dramShare = [](const experiments::DseRunResult& r) {
        const double total = blameTotal(r);
        return total > 0
                   ? (blamed(r, "dramService") + blamed(r, "xbarQueue")) / total
                   : 0.0;
    };
    std::printf("\nmemory-system blame share: direct %.1f%%, dmaSpm %.1f%%\n",
                100 * dramShare(runs[0].result), 100 * dramShare(runs[2].result));
    check(dramShare(runs[0].result) > dramShare(runs[2].result),
          "staging shifts blame off dramService+xbarQueue (the dmaSpm win)");

    const double staging8 =
        blamed(runs[1].result, "dmaStage") + blamed(runs[1].result, "spmFill");
    const double staging64 =
        blamed(runs[2].result, "dmaStage") + blamed(runs[2].result, "spmFill");
    std::printf("staging blame (dmaStage+spmFill): window 8 = %.0f, window 64 = %.0f\n",
                staging8, staging64);
    check(staging64 < staging8,
          "a deeper DMA in-flight window shrinks dmaStage+spmFill blame");

    return failures == 0 ? 0 : 1;
}
