// Bitonic-sorter example — the paper's GHDL/VHDL use case.
//
// The sorting network is described as a structural netlist (the GHDL-flow
// stand-in), packaged behind the same shared-library ABI as the Verilator
// models, and driven here through an RTLObject on the SoC: a program running
// on the simulated core writes unsorted values into the accelerator's
// registers, starts it, waits for completion, and reads back sorted data.
//
//   $ ./bitonic_sort
#include <cstdio>
#include <string>

#include "sim/rng.hh"
#include "soc/model_loader.hh"
#include "soc/soc.hh"

using namespace g5r;

int main() {
    constexpr unsigned kN = 8;

    Simulation sim;
    SocConfig cfg = table1Config();
    cfg.numCores = 1;
    Soc soc{sim, cfg};

    RtlObjectParams rtlParams;
    rtlParams.clockPeriod = cfg.rtlClock;  // 1 GHz accelerator in a 2 GHz SoC.
    soc.attachRtlModel("bitonic", loadRtlModel("bitonic", "n=" + std::to_string(kN)),
                       rtlParams, Soc::MemPorts::kNone, /*wireEventBus=*/false);

    // The core's program: write kN values, start, poll status, read back
    // into memory at 0x100000.
    const Addr dev = soc.deviceBaseOf(0);
    std::string src = "  li t0, " + std::to_string(dev) + "\n" +
                      "  li t6, 0x100000\n";
    Rng rng{2026};
    std::printf("input :");
    for (unsigned i = 0; i < kN; ++i) {
        const auto v = rng.below(1000);
        std::printf(" %4llu", static_cast<unsigned long long>(v));
        src += "  li t1, " + std::to_string(v) + "\n";
        src += "  sd t1, " + std::to_string(8 * i) + "(t0)\n";
    }
    std::printf("\n");
    src += R"(
      li t1, 1
      sd t1, 0x200(t0)     ; start
    poll:
      ld t1, 0x208(t0)     ; status
      andi t1, t1, 2       ; done bit
      beq t1, x0, poll
    )";
    for (unsigned i = 0; i < kN; ++i) {
        src += "  ld t1, " + std::to_string(0x100 + 8 * i) + "(t0)\n";
        src += "  sd t1, " + std::to_string(8 * i) + "(t6)\n";
    }
    src += "  li a7, 0\n  ecall\n  halt\n";
    soc.loadProgram(0, isa::assemble(src));

    const RunResult result = sim.run(10'000'000'000ULL);
    if (result.cause != ExitCause::kSimExit) {
        std::printf("program did not finish\n");
        return 1;
    }

    std::printf("sorted:");
    bool ok = true;
    std::uint64_t prev = 0;
    for (unsigned i = 0; i < kN; ++i) {
        // Results may still be dirty in the L1D; probe through the cache.
        Packet probe{MemCmd::kReadReq, 0x100000 + 8 * i, 8};
        soc.l1d(0).cpuSidePort().recvFunctional(probe);
        const auto v = probe.get<std::uint64_t>();
        std::printf(" %4llu", static_cast<unsigned long long>(v));
        if (i > 0 && v < prev) ok = false;
        prev = v;
    }
    std::printf("\n%s after %.2f us simulated\n", ok ? "sorted correctly" : "NOT SORTED",
                ticksToMs(result.tick) * 1000.0);
    return ok ? 0 : 1;
}
