// Quickstart: the smallest end-to-end gem5+rtl session.
//
// Builds a one-core Table 1 SoC, loads an RTL model (the PMU) from its
// shared library at runtime, runs a small program on the core while the PMU
// counts its committed instructions, and reads the counters back over the
// simulated interconnect.
//
//   $ ./quickstart
#include <cstdio>

#include "soc/model_loader.hh"
#include "soc/soc.hh"

using namespace g5r;

int main() {
    Simulation sim;

    // 1. Build the SoC (Table 1 parameters; one core is enough here).
    SocConfig cfg = table1Config(MemTech::kDdr4_1ch);
    cfg.numCores = 1;
    Soc soc{sim, cfg};

    // 2. Attach an RTL model. The library is dlopen()ed — the simulator was
    //    never linked against it, exactly as in the paper.
    RtlObjectParams rtlParams;
    rtlParams.clockPeriod = cfg.coreClock;
    RtlObject& pmu = soc.attachRtlModel("pmu", loadRtlModel("pmu"), rtlParams,
                                        Soc::MemPorts::kNone,
                                        /*wireEventBus=*/true);
    (void)pmu;

    // 3. Write a program. The mini-ISA assembler accepts RISC-style text;
    //    this one enables the PMU's commit counter through the device
    //    window, does some work, then reads the counter back.
    const Addr pmuBase = soc.deviceBaseOf(0);
    const std::string source =
        "  li t0, " + std::to_string(pmuBase) + "\n" +
        R"(
          li t1, 1          ; enable mask: event line 0 (commit lane 0)
          sd t1, 0x100(t0)  ; PMU enable register
          li t2, 0
          li t3, 20000
        work:               ; something to count
          addi t2, t2, 1
          blt t2, t3, work
          ld a0, 0(t0)      ; read PMU counter 0
          li a7, 0
          ecall             ; exit
          halt
    )";
    soc.loadProgram(0, isa::assemble(source));

    // 4. Run to completion.
    const RunResult result = sim.run();
    const std::uint64_t counted = soc.core(0).archReg(10);

    std::printf("simulated %.3f us, exit: %s\n", ticksToMs(result.tick) * 1000.0,
                result.message.c_str());
    std::printf("core committed   : %llu instructions\n",
                static_cast<unsigned long long>(soc.core(0).committedInstructions()));
    std::printf("PMU counted      : %llu commits on lane 0 (read by the program)\n",
                static_cast<unsigned long long>(counted));
    std::printf("core IPC         : %.3f\n",
                static_cast<double>(soc.core(0).committedInstructions()) /
                    static_cast<double>(soc.core(0).cyclesRetired()));
    return counted > 0 ? 0 : 1;
}
