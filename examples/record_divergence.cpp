// Deep-debugging demo: flight-record two runs of the same design point that
// differ in one knob (idle-tick quiescence gating on vs off), then locate
// their first divergence with the obs/diff finder — the library behind the
// g5r-diff CLI.
//
// Gating changes the *dispatch* stream by design (idle RTL ticks are
// descheduled) while leaving the *packet* stream bit-identical, so this
// demo shows both lanes:
//
//   * both-lane diff: reports the first interval where the dispatch streams
//     part ways — expected, and localized to the gated RTL object;
//   * packet-lane diff: reports "identical" — the memory traffic agrees,
//     which is exactly the gated-vs-ungated identity check the Table 2/3
//     benches run on failure.
//
// CI runs this as the perturbed-pair divergence smoke and uploads the two
// .g5rec recordings as artifacts.
#include <cstdio>
#include <string>

#include "obs/diff.hh"
#include "soc/experiments.hh"

using namespace g5r;

namespace {

std::string runRecorded(bool gate, const std::string& dir) {
    experiments::DseRunConfig cfg;
    cfg.shape = models::sanity3Shape();
    cfg.workloadName = "sanity3";
    cfg.memTech = MemTech::kHbm;
    cfg.numAccelerators = 1;
    cfg.maxInflight = 64;
    cfg.numCores = 0;
    cfg.gateIdleTicks = gate;
    cfg.obs.recordEnabled = true;
    cfg.obs.recordIntervalTicks = 100'000;  // 100 ns: fine-grained localization.
    cfg.obs.recordPath = dir + "/" + (gate ? "gated" : "ungated") + ".g5rec";
    const auto result = experiments::runNvdlaDse(cfg);
    if (!result.completed || !result.checksumsOk) {
        std::printf("run failed verification (gate=%d)\n", gate);
        return {};
    }
    return result.recordPath;
}

}  // namespace

int main(int argc, char** argv) {
    const std::string dir = argc > 1 ? argv[1] : ".";
    const std::string gated = runRecorded(true, dir);
    const std::string ungated = runRecorded(false, dir);
    if (gated.empty() || ungated.empty()) return 1;
    std::printf("recorded %s and %s\n\n", gated.c_str(), ungated.c_str());

    // Both lanes: the dispatch streams must differ (gating removed idle RTL
    // ticks) — the finder names the first interval and the gated object.
    const auto both = obs::diffRecordingFiles(gated, ungated, obs::DiffLane::kBoth);
    std::printf("--- both lanes (dispatch stream differs by design) ---\n%s\n",
                obs::formatDivergenceReport(both, "gated", "ungated").c_str());

    // Packet lane only: the identity check — gating must not change the
    // memory traffic.
    const auto packets =
        obs::diffRecordingFiles(gated, ungated, obs::DiffLane::kPacketsOnly);
    std::printf("--- packet lane (the gating identity check) ---\n%s",
                obs::formatDivergenceReport(packets, "gated", "ungated").c_str());

    // Exit like g5r-diff would on the packet lane: divergence here is a bug.
    if (!packets.comparable) return 2;
    if (packets.diverged) return 1;
    if (!both.comparable || !both.diverged) {
        // Gating should have produced *some* dispatch-lane difference; if it
        // did not, the demo is not demonstrating anything.
        std::printf("unexpected: dispatch streams identical despite gating toggle\n");
        return 1;
    }
    return 0;
}
