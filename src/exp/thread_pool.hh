// A bounded worker pool for fan-out experiment sweeps.
//
// std::jthread-based: N workers pull jobs from a FIFO queue. The pool exists
// to run *independent* Simulation instances side by side (one thread drives
// one Simulation at a time — the concurrency model DESIGN.md documents), so
// it deliberately has no futures, priorities or work stealing; submission
// order is the only order that matters and result placement is the caller's
// job (see runner.hh, which writes each result into a pre-sized slot).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace g5r::exp {

class ThreadPool {
public:
    /// Spawn @p jobs workers (clamped to >= 1).
    explicit ThreadPool(unsigned jobs);

    /// Finishes every queued job, then joins the workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueue a job. Thread-safe. Jobs must not throw (wrap them; the
    /// runner does) and must not submit() recursively into a pool they
    /// block on with wait().
    void submit(std::function<void()> job);

    /// Block until every job submitted so far has finished.
    void wait();

    unsigned jobCount() const { return static_cast<unsigned>(workers_.size()); }

private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable allIdle_;
    std::deque<std::function<void()>> queue_;
    unsigned active_ = 0;
    bool stopping_ = false;
    std::vector<std::jthread> workers_;  // Last member: joins before the rest die.
};

}  // namespace g5r::exp
