// The parallel experiment runner.
//
// A sweep is a vector of labelled tasks, each building and running its own
// Simulation (tasks share *nothing*; see DESIGN.md's concurrency model).
// runTasks() fans them out over a bounded ThreadPool and returns results in
// deterministic submission order regardless of completion order. A task
// that throws becomes a first-class failed point (ok = false, the exception
// text in `error`) without poisoning its neighbours or aborting the sweep.
//
// With jobs <= 1 the tasks run inline on the calling thread, in order —
// byte-compatible with the historical serial bench loops.
#pragma once

#include <chrono>
#include <exception>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "exp/thread_pool.hh"
#include "sim/logging.hh"

namespace g5r::exp {

/// Worker count for sweeps: @p requested if nonzero, else the GEM5RTL_JOBS
/// environment variable, else std::thread::hardware_concurrency().
unsigned resolveJobs(unsigned requested = 0);

/// Parse `--jobs N` / `--jobs=N` from argv (ignoring unrelated arguments)
/// and resolve it as resolveJobs() does. Exits with a usage message on a
/// malformed value.
unsigned parseJobsFlag(int argc, char** argv);

template <typename T>
struct Task {
    std::string label;      ///< Run label: tags log output, names the point.
    std::function<T()> fn;  ///< Builds, runs, and measures one experiment.
};

template <typename T>
struct TaskResult {
    std::string label;
    bool ok = false;
    std::string error;       ///< Exception text when !ok.
    double wallSeconds = 0;  ///< Host wall-clock spent inside the task.
    T value{};               ///< Meaningful only when ok.
};

template <typename T>
std::vector<TaskResult<T>> runTasks(std::vector<Task<T>> tasks, unsigned jobs) {
    std::vector<TaskResult<T>> results(tasks.size());
    const auto runOne = [&tasks, &results](std::size_t i) {
        TaskResult<T>& result = results[i];
        result.label = tasks[i].label;
        const RunLabelScope labelScope{result.label};
        const auto start = std::chrono::steady_clock::now();
        try {
            result.value = tasks[i].fn();
            result.ok = true;
        } catch (const std::exception& e) {
            result.error = e.what();
        } catch (...) {
            result.error = "unknown exception";
        }
        result.wallSeconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    };

    if (resolveJobs(jobs) <= 1 || tasks.size() <= 1) {
        for (std::size_t i = 0; i < tasks.size(); ++i) runOne(i);
        return results;
    }
    // Each task writes only its pre-sized slot; pool.wait() publishes the
    // writes to this thread before results is read.
    ThreadPool pool{resolveJobs(jobs)};
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        pool.submit([&runOne, i] { runOne(i); });
    }
    pool.wait();
    return results;
}

}  // namespace g5r::exp
