#include "exp/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace g5r::exp {
namespace {

[[noreturn]] void typeError(const char* what) {
    throw std::runtime_error(std::string{"json: value is not "} + what);
}

void appendEscaped(std::string& out, std::string_view s) {
    out += '"';
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void appendNumber(std::string& out, double v) {
    if (!std::isfinite(v)) {  // JSON has no inf/nan; emit null like most writers.
        out += "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    // Trim to the shortest representation that round-trips.
    for (int prec = 1; prec < 17; ++prec) {
        char probe[32];
        std::snprintf(probe, sizeof probe, "%.*g", prec, v);
        double back = 0;
        std::sscanf(probe, "%lf", &back);
        if (back == v) {
            out += probe;
            return;
        }
    }
    out += buf;
}

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Json parseDocument() {
        Json value = parseValue();
        skipWhitespace();
        if (pos_ != text_.size()) fail("trailing characters after document");
        return value;
    }

private:
    [[noreturn]] void fail(const std::string& what) {
        throw std::runtime_error("json parse error at offset " + std::to_string(pos_) +
                                 ": " + what);
    }

    void skipWhitespace() {
        while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                       text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string{"expected '"} + c + "'");
        ++pos_;
    }

    bool consumeKeyword(std::string_view kw) {
        if (text_.substr(pos_, kw.size()) != kw) return false;
        pos_ += kw.size();
        return true;
    }

    Json parseValue() {
        skipWhitespace();
        switch (peek()) {
        case '{': return parseObject();
        case '[': return parseArray();
        case '"': return Json{parseString()};
        case 't':
            if (!consumeKeyword("true")) fail("bad keyword");
            return Json{true};
        case 'f':
            if (!consumeKeyword("false")) fail("bad keyword");
            return Json{false};
        case 'n':
            if (!consumeKeyword("null")) fail("bad keyword");
            return Json{};
        default: return parseNumber();
        }
    }

    Json parseObject() {
        expect('{');
        Json obj = Json::object();
        skipWhitespace();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        while (true) {
            skipWhitespace();
            std::string key = parseString();
            skipWhitespace();
            expect(':');
            obj[key] = parseValue();
            skipWhitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return obj;
        }
    }

    Json parseArray() {
        expect('[');
        Json arr = Json::array();
        skipWhitespace();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        while (true) {
            arr.push(parseValue());
            skipWhitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return arr;
        }
    }

    std::string parseString() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                    else fail("bad \\u escape digit");
                }
                // Encode the BMP code point as UTF-8 (surrogate pairs are
                // out of scope for benchmark metadata).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default: fail("unknown escape");
            }
        }
    }

    Json parseNumber() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
                text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        const std::string_view token = text_.substr(start, pos_ - start);
        if (token.empty() || token == "-") fail("bad number");
        if (token.find('.') == std::string_view::npos &&
            token.find('e') == std::string_view::npos &&
            token.find('E') == std::string_view::npos) {
            std::int64_t value = 0;
            const auto [ptr, ec] =
                std::from_chars(token.data(), token.data() + token.size(), value);
            if (ec == std::errc{} && ptr == token.data() + token.size()) return Json{value};
        }
        double value = 0;
        const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
        if (ec != std::errc{} || ptr != token.data() + token.size()) fail("bad number");
        return Json{value};
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

bool Json::asBool() const {
    if (kind_ != Kind::kBool) typeError("a bool");
    return bool_;
}

std::int64_t Json::asInt() const {
    if (kind_ != Kind::kInt) typeError("an integer");
    return int_;
}

double Json::asDouble() const {
    if (kind_ == Kind::kInt) return static_cast<double>(int_);
    if (kind_ != Kind::kDouble) typeError("a number");
    return double_;
}

const std::string& Json::asString() const {
    if (kind_ != Kind::kString) typeError("a string");
    return string_;
}

const Json::Array& Json::items() const {
    if (kind_ != Kind::kArray) typeError("an array");
    return array_;
}

const Json::Object& Json::members() const {
    if (kind_ != Kind::kObject) typeError("an object");
    return object_;
}

Json& Json::operator[](std::string_view key) {
    if (kind_ == Kind::kNull) kind_ = Kind::kObject;
    if (kind_ != Kind::kObject) typeError("an object");
    for (auto& [k, v] : object_) {
        if (k == key) return v;
    }
    object_.emplace_back(std::string{key}, Json{});
    return object_.back().second;
}

const Json& Json::at(std::string_view key) const {
    if (kind_ != Kind::kObject) typeError("an object");
    for (const auto& [k, v] : object_) {
        if (k == key) return v;
    }
    throw std::runtime_error("json: missing key '" + std::string{key} + "'");
}

bool Json::contains(std::string_view key) const {
    if (kind_ != Kind::kObject) return false;
    for (const auto& [k, v] : object_) {
        if (k == key) return true;
    }
    return false;
}

void Json::push(Json value) {
    if (kind_ == Kind::kNull) kind_ = Kind::kArray;
    if (kind_ != Kind::kArray) typeError("an array");
    array_.push_back(std::move(value));
}

std::size_t Json::size() const {
    if (kind_ == Kind::kArray) return array_.size();
    if (kind_ == Kind::kObject) return object_.size();
    typeError("a container");
}

std::string Json::dump(int indent) const {
    std::string out;
    dumpTo(out, indent, 0);
    if (indent > 0) out += '\n';
    return out;
}

void Json::dumpTo(std::string& out, int indent, int depth) const {
    const auto newline = [&](int level) {
        if (indent <= 0) return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent) * level, ' ');
    };
    switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kDouble: appendNumber(out, double_); break;
    case Kind::kString: appendEscaped(out, string_); break;
    case Kind::kArray:
        out += '[';
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i > 0) out += ',';
            newline(depth + 1);
            array_[i].dumpTo(out, indent, depth + 1);
        }
        if (!array_.empty()) newline(depth);
        out += ']';
        break;
    case Kind::kObject:
        out += '{';
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (i > 0) out += ',';
            newline(depth + 1);
            appendEscaped(out, object_[i].first);
            out += indent > 0 ? ": " : ":";
            object_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (!object_.empty()) newline(depth);
        out += '}';
        break;
    }
}

Json Json::parse(std::string_view text) { return Parser{text}.parseDocument(); }

}  // namespace g5r::exp
