#include "exp/bench_report.hh"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <thread>

namespace g5r::exp {
namespace {

std::string utcTimestamp() {
    const std::time_t now =
        std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

std::string hostName() {
    char buf[256] = {};
    if (gethostname(buf, sizeof buf - 1) != 0) return "unknown";
    return buf;
}

}  // namespace

Json benchDocument(std::string_view benchName, unsigned jobs) {
    Json doc = Json::object();
    doc["schema"] = 2;
    doc["bench"] = benchName;
    doc["jobs"] = jobs;

    Json host = Json::object();
    host["name"] = hostName();
    host["threads"] = std::thread::hardware_concurrency();
#ifdef __VERSION__
    host["compiler"] = __VERSION__;
#endif
    host["timestampUtc"] = utcTimestamp();
    doc["host"] = std::move(host);

    const char* full = std::getenv("GEM5RTL_FULL");
    doc["fullScale"] = full != nullptr && full[0] != '0';
    doc["points"] = Json::array();
    return doc;
}

std::string benchOutputPath(std::string_view filename) {
    if (const char* dir = std::getenv("GEM5RTL_BENCH_DIR")) {
        if (dir[0] != '\0') return std::string{dir} + "/" + std::string{filename};
    }
    return std::string{filename};
}

std::string writeBenchJson(std::string_view filename, const Json& doc) {
    const std::string path = benchOutputPath(filename);
    std::ofstream out{path};
    if (!out) {
        std::fprintf(stderr, "note: could not open %s for writing\n", path.c_str());
        return "";
    }
    out << doc.dump(2);
    if (!out.good()) {
        std::fprintf(stderr, "note: write to %s failed\n", path.c_str());
        return "";
    }
    return path;
}

}  // namespace g5r::exp
