// A minimal JSON document model for the BENCH_*.json results files.
//
// Self-contained on purpose (no third-party dependency may be added to the
// container): enough of RFC 8259 for machine-readable benchmark output and
// its round-trip tests. Objects preserve insertion order so serialized
// documents are deterministic and diffable across runs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace g5r::exp {

class Json {
public:
    enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

    using Array = std::vector<Json>;
    using Member = std::pair<std::string, Json>;
    using Object = std::vector<Member>;  // Insertion-ordered.

    Json() = default;  // null
    Json(bool b) : kind_(Kind::kBool), bool_(b) {}
    Json(int v) : kind_(Kind::kInt), int_(v) {}
    Json(unsigned v) : kind_(Kind::kInt), int_(static_cast<std::int64_t>(v)) {}
    Json(std::int64_t v) : kind_(Kind::kInt), int_(v) {}
    Json(std::uint64_t v) : kind_(Kind::kInt), int_(static_cast<std::int64_t>(v)) {}
    Json(double v) : kind_(Kind::kDouble), double_(v) {}
    Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
    Json(std::string_view s) : kind_(Kind::kString), string_(s) {}
    Json(const char* s) : kind_(Kind::kString), string_(s) {}

    static Json array() { Json j; j.kind_ = Kind::kArray; return j; }
    static Json object() { Json j; j.kind_ = Kind::kObject; return j; }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::kNull; }
    bool isBool() const { return kind_ == Kind::kBool; }
    bool isNumber() const { return kind_ == Kind::kInt || kind_ == Kind::kDouble; }
    bool isString() const { return kind_ == Kind::kString; }
    bool isArray() const { return kind_ == Kind::kArray; }
    bool isObject() const { return kind_ == Kind::kObject; }

    bool asBool() const;
    std::int64_t asInt() const;
    double asDouble() const;  ///< Valid for both kInt and kDouble.
    const std::string& asString() const;
    const Array& items() const;
    const Object& members() const;

    /// Object access: insert-or-fetch (mutable), throwing lookup (const).
    Json& operator[](std::string_view key);
    const Json& at(std::string_view key) const;
    bool contains(std::string_view key) const;

    /// Array append.
    void push(Json value);

    std::size_t size() const;

    /// Serialize. indent = 0: compact one-liner; > 0: pretty, that many
    /// spaces per level.
    std::string dump(int indent = 0) const;

    /// Parse a complete JSON document. Throws std::runtime_error (with an
    /// offset) on malformed input or trailing garbage.
    static Json parse(std::string_view text);

private:
    void dumpTo(std::string& out, int indent, int depth) const;

    Kind kind_ = Kind::kNull;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double double_ = 0;
    std::string string_;
    Array array_;
    Object object_;
};

}  // namespace g5r::exp
