#include "exp/thread_pool.hh"

#include <algorithm>

namespace g5r::exp {

ThreadPool::ThreadPool(unsigned jobs) {
    const unsigned n = std::max(1u, jobs);
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock{mutex_};
        stopping_ = true;
    }
    workAvailable_.notify_all();
    // std::jthread joins on destruction; workers drain the queue first.
}

void ThreadPool::submit(std::function<void()> job) {
    {
        const std::lock_guard<std::mutex> lock{mutex_};
        queue_.push_back(std::move(job));
    }
    workAvailable_.notify_one();
}

void ThreadPool::wait() {
    std::unique_lock<std::mutex> lock{mutex_};
    allIdle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::workerLoop() {
    std::unique_lock<std::mutex> lock{mutex_};
    while (true) {
        workAvailable_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and nothing left to drain.
        std::function<void()> job = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
        lock.unlock();
        job();
        lock.lock();
        --active_;
        if (queue_.empty() && active_ == 0) allIdle_.notify_all();
    }
}

}  // namespace g5r::exp
