#include "exp/runner.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace g5r::exp {
namespace {

unsigned parsePositive(const char* text, const char* what) {
    char* end = nullptr;
    const long value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || value <= 0 || value > 4096) {
        std::fprintf(stderr, "invalid %s '%s': expected an integer in [1, 4096]\n", what,
                     text);
        std::exit(2);
    }
    return static_cast<unsigned>(value);
}

}  // namespace

unsigned resolveJobs(unsigned requested) {
    if (requested > 0) return requested;
    if (const char* env = std::getenv("GEM5RTL_JOBS")) {
        if (env[0] != '\0') return parsePositive(env, "GEM5RTL_JOBS");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

unsigned parseJobsFlag(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--jobs requires a value\n");
                std::exit(2);
            }
            return parsePositive(argv[i + 1], "--jobs");
        }
        if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            return parsePositive(argv[i] + 7, "--jobs");
        }
    }
    return resolveJobs(0);
}

}  // namespace g5r::exp
