// Machine-readable BENCH_*.json emission.
//
// Every bench sweep serializes one JSON document — host/config metadata plus
// one entry per sweep point — so future changes have a perf trajectory to
// regress against. Files land in the current directory unless the
// GEM5RTL_BENCH_DIR environment variable points elsewhere.
//
// Document shape (schema 2 — v2 added latency percentile fields to points:
// per-suffix memLatency p50Ticks/p99Ticks and point-level memLatencyP50/P99
// from the merged per-master histograms):
//   {
//     "schema": 2,
//     "bench": "fig6",            // sweep name
//     "jobs": 4,                  // worker threads used
//     "host": { "threads": ..., "compiler": ..., "timestampUtc": ... },
//     "fullScale": false,         // GEM5RTL_FULL
//     "sweepWallSeconds": 12.3,   // whole-sweep wall clock
//     "points": [ { per-point keys... }, ... ]
//   }
#pragma once

#include <string>
#include <string_view>

#include "exp/json.hh"

namespace g5r::exp {

/// The common document skeleton: schema version, bench name, jobs, host
/// metadata, GEM5RTL_FULL flag. Callers fill "points" and
/// "sweepWallSeconds".
Json benchDocument(std::string_view benchName, unsigned jobs);

/// Where @p filename will be written: $GEM5RTL_BENCH_DIR/<filename> when the
/// variable is set and non-empty, ./<filename> otherwise.
std::string benchOutputPath(std::string_view filename);

/// Serialize @p doc (pretty, 2-space indent) to benchOutputPath(filename).
/// Returns the path written, or "" (with a note on stderr) on I/O failure —
/// benches must not fail their shape checks because a disk write did.
std::string writeBenchJson(std::string_view filename, const Json& doc);

}  // namespace g5r::exp
