// Constant propagation / value-range analysis over a levelized netlist.
//
// Every net gets an unsigned interval [lo, hi] over-approximating the values
// it can ever carry (after masking to its declared width). The analysis is
// sound: the true set of reachable values is always inside the interval, so
//   - hi == lo            proves the net constant (dead logic);
//   - interval arithmetic proves compares always-true / always-false;
//   - preMask (the operation result *before* masking) proves which width
//     truncations can actually lose bits: preMask.hi <= resultMask is a
//     proof of benignity, preMask.lo > resultMask a proof that every
//     reachable value loses bits.
//
// Registers are solved by a bounded fixpoint: a reg starts at its reset
// value, absorbs the range of its data input once per iteration, and is
// widened to its full width after kRegFixpointIters rounds if still growing
// (counters would otherwise converge one value per round). Deterministic:
// pure function of the graph, independent of run or thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "rtl/analysis/levelize.hh"
#include "rtl/netlist_graph.hh"

namespace g5r::rtl::analysis {

struct ValueRange {
    std::uint64_t lo = 0;
    std::uint64_t hi = ~std::uint64_t{0};

    bool constant() const { return lo == hi; }
    bool contains(std::uint64_t v) const { return lo <= v && v <= hi; }
};

/// Minimum bits needed to represent @p v (0 -> 0 bits).
unsigned bitsFor(std::uint64_t v);

struct ConstProp {
    /// Post-mask range per node: what the net can carry.
    std::vector<ValueRange> range;

    /// Pre-mask range of the operation result per node (== range for
    /// sources). preMask.hi > mask(width) means the mask can drop bits.
    std::vector<ValueRange> preMask;

    /// Registers whose data input provably never leaves the reset value
    /// (the reg is stuck). Subset of constant(range[i]) for reg nodes.
    std::vector<bool> stuckReg;

    bool provablyConstant(int node) const { return range[node].constant(); }
};

/// Number of reg-fixpoint rounds before widening (see header comment).
inline constexpr int kRegFixpointIters = 3;

/// Run the analysis. @p sched must come from levelize() on the same graph.
/// Tolerant-graph safe: unresolved operands and cycle members degrade to
/// full-width ranges instead of misanalyzing.
ConstProp propagateConstants(const NetlistGraph& g, const LevelSchedule& sched);

}  // namespace g5r::rtl::analysis
