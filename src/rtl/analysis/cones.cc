#include "rtl/analysis/cones.hh"

#include <algorithm>
#include <map>

namespace g5r::rtl::analysis {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnvMix(std::uint64_t h, std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
        h ^= (v >> (8 * byte)) & 0xFF;
        h *= kFnvPrime;
    }
    return h;
}

std::uint64_t maskForWidth(unsigned width) {
    return width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
}

bool commutative(NetOp op) {
    return op == NetOp::kAnd || op == NetOp::kOr || op == NetOp::kXor ||
           op == NetOp::kAdd || op == NetOp::kEq;
}

/// Exact structural equivalence of two cones (collision guard). Memoized on
/// node pairs; identical node indices are trivially equivalent, so shared
/// sub-cones cut the recursion.
class ConeComparer {
public:
    explicit ConeComparer(const NetlistGraph& g) : g_(g) {}

    bool equal(int x, int y) {
        if (x == y) return true;
        if (x < 0 || y < 0) return false;
        if (x > y) std::swap(x, y);
        const auto key = std::pair{x, y};
        if (const auto it = memo_.find(key); it != memo_.end()) return it->second;
        memo_[key] = false;  // Cycles (defensive) compare unequal.
        const bool eq = compare(x, y);
        memo_[key] = eq;
        return eq;
    }

private:
    bool compare(int x, int y) {
        const auto& a = g_.nodes[x];
        const auto& b = g_.nodes[y];
        if (a.op != b.op || a.width != b.width) return false;
        switch (a.op) {
        case NetOp::kConst:
            return (a.init & maskForWidth(a.width)) == (b.init & maskForWidth(b.width));
        case NetOp::kInput:
        case NetOp::kReg:
            return false;  // Distinct sources are distinct values (x != y here).
        default: break;
        }
        if (commutative(a.op)) {
            return (equal(a.src[0], b.src[0]) && equal(a.src[1], b.src[1])) ||
                   (equal(a.src[0], b.src[1]) && equal(a.src[1], b.src[0]));
        }
        const unsigned arity = netOpArity(a.op);
        for (unsigned s = 0; s < arity; ++s) {
            if (!equal(a.src[s], b.src[s])) return false;
        }
        return true;
    }

    const NetlistGraph& g_;
    std::map<std::pair<int, int>, bool> memo_;
};

}  // namespace

ConeHashes hashCones(const NetlistGraph& g, const LevelSchedule& sched) {
    const int n = static_cast<int>(g.nodes.size());
    ConeHashes ch;
    ch.hash.assign(n, 0);
    ch.coneSize.assign(n, 0);

    // Sources first: identity for inputs/regs (two different pins are never
    // interchangeable), value+width for constants (two equal literals are).
    for (int i = 0; i < n; ++i) {
        const auto& node = g.nodes[i];
        std::uint64_t h = fnvMix(kFnvOffset, static_cast<std::uint64_t>(node.op));
        switch (node.op) {
        case NetOp::kInput:
        case NetOp::kReg:
            h = fnvMix(h, static_cast<std::uint64_t>(i));
            break;
        case NetOp::kConst:
            h = fnvMix(h, node.init & maskForWidth(node.width));
            h = fnvMix(h, node.width);
            break;
        default:
            continue;  // Combinational nodes below, in level order.
        }
        ch.hash[i] = h;
    }

    for (const int i : sched.order) {
        const auto& node = g.nodes[i];
        std::uint64_t h = fnvMix(kFnvOffset, static_cast<std::uint64_t>(node.op));
        h = fnvMix(h, node.width);
        const unsigned arity = netOpArity(node.op);
        std::uint64_t opHash[3] = {0, 0, 0};
        std::size_t size = 1;
        for (unsigned s = 0; s < arity; ++s) {
            const int src = node.src[s];
            // Unresolved operands hash as a distinct "hole" so broken inputs
            // never alias a real cone.
            opHash[s] = src >= 0 ? ch.hash[src] : fnvMix(kFnvOffset, 0xDEADu);
            if (src >= 0) size += ch.coneSize[src];
        }
        if (commutative(node.op) && opHash[0] > opHash[1]) {
            std::swap(opHash[0], opHash[1]);
        }
        for (unsigned s = 0; s < arity; ++s) h = fnvMix(h, opHash[s]);
        ch.hash[i] = h;
        ch.coneSize[i] = size;
    }
    return ch;
}

DuplicateCones findDuplicateCones(const NetlistGraph& g, const LevelSchedule& sched) {
    const ConeHashes ch = hashCones(g, sched);
    DuplicateCones dup;
    dup.combNodes = sched.order.size();

    // Bucket by hash (insertion keeps ascending node order within a bucket),
    // then verify each bucket structurally.
    std::map<std::uint64_t, std::vector<int>> buckets;
    for (const int i : sched.order) buckets[ch.hash[i]].push_back(i);

    ConeComparer cmp{g};
    std::vector<DuplicateCones::Class> classes;
    for (auto& [hash, members] : buckets) {
        if (members.size() == 1) {
            ++dup.distinctCones;
            continue;
        }
        // Partition hash-equal members into exactly-equal classes.
        std::vector<std::vector<int>> verified;
        for (const int m : members) {
            bool placed = false;
            for (auto& cls : verified) {
                if (cmp.equal(cls.front(), m)) {
                    cls.push_back(m);
                    placed = true;
                    break;
                }
            }
            if (!placed) verified.push_back({m});
        }
        dup.distinctCones += verified.size();
        for (auto& cls : verified) {
            if (cls.size() < 2) continue;
            dup.redundantNodes += cls.size() - 1;
            const std::size_t size = ch.coneSize[cls.front()];
            classes.push_back(DuplicateCones::Class{std::move(cls), size, hash});
        }
    }
    std::sort(classes.begin(), classes.end(),
              [](const auto& a, const auto& b) { return a.nodes.front() < b.nodes.front(); });
    dup.classes = std::move(classes);
    return dup;
}

}  // namespace g5r::rtl::analysis
