#include "rtl/analysis/const_prop.hh"

#include <algorithm>
#include <bit>

namespace g5r::rtl::analysis {
namespace {

constexpr std::uint64_t kU64Max = ~std::uint64_t{0};

std::uint64_t maskForWidth(unsigned width) {
    return width >= 64 ? kU64Max : ((std::uint64_t{1} << width) - 1);
}

std::uint64_t maskForBits(unsigned bits) {
    return bits >= 64 ? kU64Max : ((std::uint64_t{1} << bits) - 1);
}

ValueRange full(std::uint64_t mask) { return ValueRange{0, mask}; }

ValueRange single(std::uint64_t v) { return ValueRange{v, v}; }

/// Post-mask image of @p pre: exact for singletons and for intervals that
/// already fit under the mask, the full masked range otherwise (masking
/// folds a spanning interval in a non-monotone way).
ValueRange clip(ValueRange pre, std::uint64_t mask) {
    if (pre.constant()) return single(pre.lo & mask);
    return pre.hi <= mask ? pre : full(mask);
}

std::int64_t sext(std::uint64_t v, unsigned width) {
    if (width >= 64) return static_cast<std::int64_t>(v);
    const unsigned sh = 64 - width;
    return static_cast<std::int64_t>(v << sh) >> sh;
}

}  // namespace

unsigned bitsFor(std::uint64_t v) {
    return static_cast<unsigned>(std::bit_width(v));
}

ConstProp propagateConstants(const NetlistGraph& g, const LevelSchedule& sched) {
    const int n = static_cast<int>(g.nodes.size());
    ConstProp cp;
    cp.range.assign(n, ValueRange{});
    cp.preMask.assign(n, ValueRange{});
    cp.stuckReg.assign(n, false);

    std::vector<bool> isCyclic(n, false);
    for (const int v : sched.cyclic) isCyclic[v] = true;

    const auto nodeMask = [&](int i) { return maskForWidth(g.nodes[i].width); };

    // Sources. Registers start at their reset value; the fixpoint below
    // grows them as their data inputs are understood.
    for (int i = 0; i < n; ++i) {
        const auto& node = g.nodes[i];
        switch (node.op) {
        case NetOp::kInput: cp.range[i] = full(nodeMask(i)); break;
        case NetOp::kConst: cp.range[i] = single(node.init & nodeMask(i)); break;
        case NetOp::kReg: cp.range[i] = single(node.init & nodeMask(i)); break;
        default: cp.range[i] = full(nodeMask(i)); break;  // Refined below.
        }
        cp.preMask[i] = cp.range[i];
        if (isCyclic[i]) {  // No finite schedule: stay conservative.
            cp.range[i] = full(nodeMask(i));
            cp.preMask[i] = cp.range[i];
        }
    }

    // Operand range; unresolved references degrade to unconstrained.
    const auto src = [&](int i, int slot) -> ValueRange {
        const int s = g.nodes[i].src[slot];
        return s >= 0 ? cp.range[s] : ValueRange{};
    };
    const auto srcWidth = [&](int i, int slot) -> unsigned {
        const int s = g.nodes[i].src[slot];
        return s >= 0 ? g.nodes[s].width : 64;
    };

    const auto evalNode = [&](int i) {
        const auto& node = g.nodes[i];
        const std::uint64_t mask = nodeMask(i);
        const ValueRange a = src(i, 0);
        const ValueRange b = src(i, 1);
        const bool constAB = a.constant() && b.constant();
        ValueRange pre = full(kU64Max);

        switch (node.op) {
        case NetOp::kNot:
            pre = ValueRange{~a.hi, ~a.lo};
            cp.preMask[i] = pre;
            // (~x) & mask == mask - x when x's bits fit inside the mask.
            cp.range[i] = a.hi <= mask ? ValueRange{mask - a.hi, mask - a.lo}
                                       : full(mask);
            return;
        case NetOp::kAnd:
            pre = constAB ? single(a.lo & b.lo) : ValueRange{0, std::min(a.hi, b.hi)};
            break;
        case NetOp::kOr:
            pre = constAB ? single(a.lo | b.lo)
                          : ValueRange{std::max(a.lo, b.lo),
                                       maskForBits(bitsFor(std::max(a.hi, b.hi)))};
            break;
        case NetOp::kXor:
            pre = constAB ? single(a.lo ^ b.lo)
                          : ValueRange{0, maskForBits(bitsFor(std::max(a.hi, b.hi)))};
            break;
        case NetOp::kAdd:
            if (constAB) {
                pre = single(a.lo + b.lo);  // Exact mod 2^64, like eval().
            } else if (a.hi > kU64Max - b.hi) {
                pre = full(kU64Max);  // May wrap.
            } else {
                pre = ValueRange{a.lo + b.lo, a.hi + b.hi};
            }
            break;
        case NetOp::kSub:
            if (constAB) {
                pre = single(a.lo - b.lo);  // Exact mod 2^64, like eval().
            } else if (a.lo >= b.hi) {
                pre = ValueRange{a.lo - b.hi, a.hi - b.lo};
            } else {
                pre = full(kU64Max);  // May wrap.
            }
            break;
        case NetOp::kLt:
            if (node.src[0] >= 0 && node.src[0] == node.src[1]) {
                pre = single(0);
            } else if (constAB) {
                pre = single(sext(a.lo, srcWidth(i, 0)) < sext(b.lo, srcWidth(i, 1))
                                 ? 1
                                 : 0);
            } else {
                pre = ValueRange{0, 1};
            }
            break;
        case NetOp::kLtu:
            if (node.src[0] >= 0 && node.src[0] == node.src[1]) {
                pre = single(0);
            } else if (a.hi < b.lo) {
                pre = single(1);
            } else if (a.lo >= b.hi) {
                pre = single(0);
            } else {
                pre = ValueRange{0, 1};
            }
            break;
        case NetOp::kEq:
            if (node.src[0] >= 0 && node.src[0] == node.src[1]) {
                pre = single(1);
            } else if (constAB && a.lo == b.lo) {
                pre = single(1);
            } else if (a.hi < b.lo || b.hi < a.lo) {
                pre = single(0);
            } else {
                pre = ValueRange{0, 1};
            }
            break;
        case NetOp::kMux: {
            const ValueRange d1 = src(i, 1), d2 = src(i, 2);
            if (a.lo > 0) {
                pre = d1;  // Select provably non-zero.
            } else if (a.hi == 0) {
                pre = d2;  // Select provably zero.
            } else {
                pre = ValueRange{std::min(d1.lo, d2.lo), std::max(d1.hi, d2.hi)};
            }
            break;
        }
        default:
            return;  // Sources handled above.
        }
        cp.preMask[i] = pre;
        cp.range[i] = clip(pre, mask);
    };

    // Bounded fixpoint: settle combinational logic, absorb reg next-values,
    // widen stragglers, re-settle. Terminates in <= kRegFixpointIters + 2
    // rounds because widened regs cannot grow further.
    for (int iter = 0;; ++iter) {
        for (const int i : sched.order) evalNode(i);

        bool changed = false;
        for (int i = 0; i < n; ++i) {
            if (g.nodes[i].op != NetOp::kReg || isCyclic[i]) continue;
            const int s = g.nodes[i].src[0];
            const ValueRange in = s >= 0 ? cp.range[s] : ValueRange{};
            cp.preMask[i] = in;
            const ValueRange latched = clip(in, nodeMask(i));
            ValueRange merged{std::min(cp.range[i].lo, latched.lo),
                              std::max(cp.range[i].hi, latched.hi)};
            if (merged.lo == cp.range[i].lo && merged.hi == cp.range[i].hi) continue;
            if (iter >= kRegFixpointIters) merged = full(nodeMask(i));
            cp.range[i] = merged;
            changed = true;
        }
        if (!changed) break;
    }

    for (int i = 0; i < n; ++i) {
        if (g.nodes[i].op != NetOp::kReg) continue;
        const std::uint64_t init = g.nodes[i].init & nodeMask(i);
        cp.stuckReg[i] = cp.range[i].constant() && cp.range[i].lo == init;
    }
    return cp;
}

}  // namespace g5r::rtl::analysis
