// Combinational-cone extraction, canonicalization, and structural dedup.
//
// The cone of a combinational node is the sub-DAG of combinational logic
// feeding it, cut at sources (inputs, constants, register outputs). Two
// nodes with *identical* cones — same operators, widths, and wiring over the
// same source nets — compute the same value every cycle, so one of them is
// redundant: a compiled backend evaluates the class once and fans the result
// out, and g5r-lint reports the duplication as a design smell.
//
// Canonicalization: cones are hashed bottom-up in level order (FNV-1a-64
// over op, width, and operand hashes). Sources hash by identity (node
// index), except constants, which hash by masked value + width so equal
// literals are interchangeable. Operand hashes of commutative ops (and, or,
// xor, add, eq) are sorted before mixing, so `and x a b` and `and y b a`
// land in one class. Hash-equal nodes are verified by exact recursive
// comparison before being reported — a 64-bit collision can suggest a class,
// never corrupt one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rtl/analysis/levelize.hh"
#include "rtl/netlist_graph.hh"

namespace g5r::rtl::analysis {

struct ConeHashes {
    /// Canonical cone hash per node (sources included).
    std::vector<std::uint64_t> hash;

    /// Combinational nodes inside the cone, self included (0 for sources).
    /// Shared sub-cones are counted once per path, i.e. this is the cone's
    /// *expression* size, an upper bound on its gate count.
    std::vector<std::size_t> coneSize;
};

/// Hash every node's cone. @p sched must come from levelize() on @p g.
/// Cycle members keep hash 0 (their cone is not a DAG).
ConeHashes hashCones(const NetlistGraph& g, const LevelSchedule& sched);

struct DuplicateCones {
    struct Class {
        std::vector<int> nodes;  ///< Members, ascending; nodes[0] is canonical.
        std::size_t coneSize;    ///< Expression size of the shared cone.
        std::uint64_t hash;
    };

    /// Verified classes of >= 2 structurally identical cones, ordered by
    /// first member index.
    std::vector<Class> classes;

    std::size_t combNodes = 0;       ///< Total combinational nodes analyzed.
    std::size_t distinctCones = 0;   ///< Equivalence classes (incl. singletons).
    std::size_t redundantNodes = 0;  ///< Sum over classes of (members - 1).
};

/// Group combinational nodes into identical-cone classes.
DuplicateCones findDuplicateCones(const NetlistGraph& g, const LevelSchedule& sched);

}  // namespace g5r::rtl::analysis
