// Levelization: SCC condensation + topological leveling of a parsed netlist.
//
// The level of a node is the length of the longest purely-combinational path
// from any source (input / const / reg output) to it: sources sit at level 0,
// a gate reading only sources at level 1, and so on. Evaluating nodes in
// level-major order is a correct evaluation schedule for any acyclic netlist,
// and — unlike an arbitrary topological order — the schedule is *canonical*:
// it depends only on the graph, not on traversal order, hash seeds, or thread
// count. That determinism is what lets the interpreter's evalLevelized()
// mode, the future compiled backend, and `g5r-lint --dump-levels` all agree
// byte-for-byte.
//
// Cycles are handled by SCC condensation (iterative Tarjan): every member of
// a non-trivial strongly connected component is marked cyclic, pinned at
// level 0, and excluded from the schedule; nodes downstream of a cycle are
// still levelized so analysis keeps working on broken inputs. Strictly
// elaborated netlists are acyclic, so `order` covers every combinational
// node there.
#pragma once

#include <cstddef>
#include <vector>

#include "rtl/netlist_graph.hh"

namespace g5r::rtl::analysis {

/// Combinational fan-out adjacency over @p g: edge s -> c for every
/// combinational node c reading s. A register's data input is a sequential
/// edge (cut by the clock) and is deliberately absent.
std::vector<std::vector<int>> combFanout(const NetlistGraph& g);

/// Strongly connected components of @p adjacency (iterative Tarjan).
/// Each component's members are sorted ascending; components are ordered by
/// their smallest member, so the result is deterministic.
std::vector<std::vector<int>> stronglyConnectedComponents(
    const std::vector<std::vector<int>>& adjacency);

struct LevelSchedule {
    /// Per node: its combinational level. Sources (and cycle members, which
    /// have no finite level) are level 0.
    std::vector<int> levelOf;

    /// levels[L] = node indices at level L, ascending. Level 0 holds the
    /// sources (and any cycle members); levels 1.. hold combinational nodes.
    std::vector<std::vector<int>> levels;

    /// The evaluation schedule: every acyclic combinational node, level-major
    /// then index-minor. This is the order evalLevelized() runs.
    std::vector<int> order;

    /// Combinational nodes on a combinational cycle (members of a
    /// non-trivial SCC), ascending. Empty for every elaborable netlist.
    std::vector<int> cyclic;

    /// Non-trivial SCCs (size > 1 or a self-edge), from
    /// stronglyConnectedComponents() ordering.
    std::vector<std::vector<int>> cyclicSccs;

    /// Longest combinational path length == highest level in use.
    unsigned depth() const {
        return levels.empty() ? 0 : static_cast<unsigned>(levels.size() - 1);
    }

    bool acyclic() const { return cyclic.empty(); }
};

/// Compute the canonical level schedule of @p g. Pure and deterministic:
/// equal graphs produce equal schedules on every run, host, and job count.
LevelSchedule levelize(const NetlistGraph& g);

}  // namespace g5r::rtl::analysis
