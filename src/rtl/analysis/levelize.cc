#include "rtl/analysis/levelize.hh"

#include <algorithm>

namespace g5r::rtl::analysis {

std::vector<std::vector<int>> combFanout(const NetlistGraph& g) {
    std::vector<std::vector<int>> out(g.nodes.size());
    for (std::size_t i = 0; i < g.nodes.size(); ++i) {
        const auto& node = g.nodes[i];
        if (netOpIsSource(node.op)) continue;
        for (const int s : node.src) {
            if (s >= 0) out[s].push_back(static_cast<int>(i));
        }
    }
    return out;
}

std::vector<std::vector<int>> stronglyConnectedComponents(
    const std::vector<std::vector<int>>& adjacency) {
    const int n = static_cast<int>(adjacency.size());
    std::vector<int> index(n, -1), low(n, 0), stack;
    std::vector<bool> onStack(n, false);
    std::vector<std::vector<int>> sccs;
    int counter = 0;

    struct Frame {
        int v;
        std::size_t edge;
    };
    for (int root = 0; root < n; ++root) {
        if (index[root] != -1) continue;
        std::vector<Frame> call{{root, 0}};
        while (!call.empty()) {
            Frame& f = call.back();
            const int v = f.v;
            if (f.edge == 0) {
                index[v] = low[v] = counter++;
                stack.push_back(v);
                onStack[v] = true;
            }
            if (f.edge < adjacency[v].size()) {
                const int w = adjacency[v][f.edge++];
                if (index[w] == -1) {
                    call.push_back(Frame{w, 0});
                } else if (onStack[w]) {
                    low[v] = std::min(low[v], index[w]);
                }
            } else {
                if (low[v] == index[v]) {
                    std::vector<int> scc;
                    int w;
                    do {
                        w = stack.back();
                        stack.pop_back();
                        onStack[w] = false;
                        scc.push_back(w);
                    } while (w != v);
                    std::sort(scc.begin(), scc.end());
                    sccs.push_back(std::move(scc));
                }
                call.pop_back();
                if (!call.empty()) {
                    low[call.back().v] = std::min(low[call.back().v], low[v]);
                }
            }
        }
    }
    std::sort(sccs.begin(), sccs.end(),
              [](const auto& a, const auto& b) { return a.front() < b.front(); });
    return sccs;
}

LevelSchedule levelize(const NetlistGraph& g) {
    const int n = static_cast<int>(g.nodes.size());
    LevelSchedule sched;
    sched.levelOf.assign(n, 0);

    // SCC condensation: map every node to its component; non-trivial
    // components (size > 1 or a self-edge) are combinational cycles.
    const auto fanout = combFanout(g);
    const auto sccs = stronglyConnectedComponents(fanout);
    std::vector<int> compOf(n, -1);
    for (std::size_t c = 0; c < sccs.size(); ++c) {
        for (const int v : sccs[c]) compOf[v] = static_cast<int>(c);
    }
    std::vector<bool> isCyclic(n, false);
    for (const auto& scc : sccs) {
        bool cyclic = scc.size() > 1;
        if (!cyclic) {
            const int v = scc.front();
            cyclic = std::find(fanout[v].begin(), fanout[v].end(), v) != fanout[v].end();
        }
        if (!cyclic) continue;
        sched.cyclicSccs.push_back(scc);
        for (const int v : scc) {
            isCyclic[v] = true;
            sched.cyclic.push_back(v);
        }
    }
    std::sort(sched.cyclic.begin(), sched.cyclic.end());

    // Level = 1 + max level over combinational predecessors (0 for sources
    // and cycle members). Kahn waves only guarantee predecessors are final
    // before their consumers; the level function itself is canonical
    // (longest path) regardless of visit order.
    std::vector<int> indegree(n, 0);
    for (int i = 0; i < n; ++i) {
        const auto& node = g.nodes[i];
        if (netOpIsSource(node.op) || isCyclic[i]) continue;
        for (const int s : node.src) {
            if (s >= 0 && !netOpIsSource(g.nodes[s].op) && !isCyclic[s]) ++indegree[i];
        }
    }
    std::vector<int> ready;
    for (int i = 0; i < n; ++i) {
        if (!netOpIsSource(g.nodes[i].op) && !isCyclic[i] && indegree[i] == 0) {
            ready.push_back(i);
        }
    }
    // Process in ascending-index waves; the computed level is order-
    // independent (longest path), the waves just guarantee predecessors are
    // final before consumers.
    std::vector<int> next;
    while (!ready.empty()) {
        std::sort(ready.begin(), ready.end());
        next.clear();
        for (const int i : ready) {
            int level = 1;
            for (const int s : g.nodes[i].src) {
                if (s < 0) continue;
                // A cyclic predecessor contributes its (partial) level so
                // downstream logic still stratifies on broken inputs.
                level = std::max(level, sched.levelOf[s] + 1);
            }
            sched.levelOf[i] = level;
            for (const int c : fanout[i]) {
                if (isCyclic[c]) continue;
                if (--indegree[c] == 0) next.push_back(c);
            }
        }
        ready.swap(next);
    }

    int maxLevel = 0;
    for (int i = 0; i < n; ++i) maxLevel = std::max(maxLevel, sched.levelOf[i]);
    sched.levels.assign(static_cast<std::size_t>(maxLevel) + 1, {});
    if (n == 0) sched.levels.clear();
    for (int i = 0; i < n; ++i) {
        sched.levels[static_cast<std::size_t>(sched.levelOf[i])].push_back(i);
    }
    for (std::size_t l = 1; l < sched.levels.size(); ++l) {
        for (const int i : sched.levels[l]) {
            if (!netOpIsSource(g.nodes[i].op) && !isCyclic[i]) sched.order.push_back(i);
        }
    }
    return sched;
}

}  // namespace g5r::rtl::analysis
