// RTL simulation kernel: the contract Verilator-generated C++ fulfils.
//
// Verilator turns a Verilog design into a C++ class with `eval()` semantics:
// reading inputs and current register state, computing next state, and
// latching on the clock edge. This kernel reproduces that contract for
// hand-written cycle-accurate models (the paper's PMU and NVDLA stand-ins):
//
//   * Reg<T>: a flip-flop with separate current (q) and next (d) values.
//     Reads during eval() observe q; writes set d; the kernel latches all
//     registers after eval(), giving race-free two-phase semantics.
//   * Module: a named hierarchy node. evalComb() computes next state;
//     tick() = evalComb() + latch of every register in the subtree.
//   * Registers self-register with their owning module, which also gives
//     the VCD tracer a complete signal inventory for free.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace g5r::rtl {

class Module;

/// Type-erased flip-flop interface: latch d into q, report value for VCD.
class RegBase {
public:
    RegBase(Module& owner, std::string name, unsigned widthBits);
    RegBase(const RegBase&) = delete;
    RegBase& operator=(const RegBase&) = delete;
    virtual ~RegBase() = default;

    const std::string& name() const { return name_; }
    unsigned width() const { return width_; }

    /// q <- d. Non-virtual so every latch is counted: the static-analysis
    /// pass in src/lint/kernel_lint flags registers that never latched
    /// (G5R-KRNL-NEVER-LATCHED) after a design has ticked.
    void latch() {
        ++latchCount_;
        doLatch();
    }
    std::uint64_t latchCount() const { return latchCount_; }

    virtual void holdDefault() = 0;  ///< d <- q, the implicit "else hold".
    virtual void resetState() = 0;
    virtual std::uint64_t valueBits() const = 0;

protected:
    virtual void doLatch() = 0;

private:
    std::string name_;
    unsigned width_;
    std::uint64_t latchCount_ = 0;
};

/// A register of up to 64 bits. Construct as a member of a Module.
template <typename T>
class Reg final : public RegBase {
public:
    Reg(Module& owner, std::string name, unsigned widthBits = sizeof(T) * 8,
        T resetValue = T{})
        : RegBase(owner, std::move(name), widthBits), resetValue_(resetValue),
          q_(resetValue), d_(resetValue) {}

    /// Current (latched) value — what downstream logic sees this cycle.
    T q() const { return q_; }
    operator T() const { return q_; }

    /// Next value, applied at the coming clock edge.
    void setD(T v) { d_ = v; }
    T d() const { return d_; }

    /// Convenience: keep current value unless overwritten later in eval().
    void hold() { d_ = q_; }

    void holdDefault() override { d_ = q_; }
    void resetState() override { q_ = d_ = resetValue_; }
    std::uint64_t valueBits() const override { return static_cast<std::uint64_t>(q_); }

protected:
    void doLatch() override { q_ = d_; }

private:
    T resetValue_;
    T q_;
    T d_;
};

/// A node in the design hierarchy.
class Module {
public:
    explicit Module(std::string name, Module* parent = nullptr);
    Module(const Module&) = delete;
    Module& operator=(const Module&) = delete;
    virtual ~Module() = default;

    const std::string& name() const { return name_; }
    const std::vector<Module*>& children() const { return children_; }
    const std::vector<RegBase*>& registers() const { return registers_; }

    /// Combinational evaluation: read q values and inputs, write d values.
    /// Default holds every register; override in leaf modules.
    virtual void evalComb();

    /// One clock edge for this subtree: eval everything, then latch.
    void tick();

    /// For procedurally driven models (state machines written in C++ rather
    /// than as evalComb overrides): beginCycle() arms every register with
    /// hold-by-default, the caller then setD()s what changes, and
    /// commitCycle() latches the edge.
    void beginCycle();
    void commitCycle();

    /// Synchronous reset of every register in the subtree.
    void reset();

private:
    friend class RegBase;
    void evalSubtree();
    void latchSubtree();

    std::string name_;
    std::vector<Module*> children_;
    std::vector<RegBase*> registers_;
};

}  // namespace g5r::rtl
