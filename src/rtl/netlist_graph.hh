// Parsed netlist IR: the analyzable form behind the Netlist interpreter.
//
// parseNetlistGraph() is deliberately *tolerant*: syntax errors, duplicate
// definitions, and references to undefined nets do not throw — they are
// recorded in the graph so static analysis (src/lint/netlist_lint) can
// report every problem in one pass with source lines, instead of dying on
// the first. The strict path (the Netlist constructor) parses, lints, and
// throws when the lint report contains error-severity findings.
//
// Statement grammar (one per line, '#' starts a comment):
//   input  <name> [width]
//   output <name> <src>
//   const  <name> <value>
//   not    <name> <a> [width]
//   and|or|xor|add|sub <name> <a> <b> [width]
//   lt|ltu|eq <name> <a> <b>          -- 1-bit result
//   mux    <name> <sel> <a> <b> [width]
//   reg    <name> <next> [init] [width]
//
// The optional trailing width (default 64) is what makes the lint's
// truncation analysis meaningful: values are masked to the net's width, so
// a 64-bit sum flowing into an 8-bit net silently drops its high bits.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace g5r::rtl {

enum class NetOp {
    kInput, kConst, kNot, kAnd, kOr, kXor, kAdd, kSub,
    kLt, kLtu, kEq, kMux, kReg,
};

std::string_view netOpName(NetOp op);

/// Number of operand slots the op consumes.
unsigned netOpArity(NetOp op);

/// True for nodes with no *combinational* in-edges: inputs, constants, and
/// registers (a reg's data input is a sequential edge, cut by the clock).
bool netOpIsSource(NetOp op);

struct NetlistGraph {
    struct Node {
        NetOp op = NetOp::kInput;
        std::string name;
        unsigned width = 64;
        std::uint64_t init = 0;     ///< Reg: reset value. Const: literal.
        int src[3] = {-1, -1, -1};  ///< Operand node indices; -1 = unresolved.
        std::size_t line = 0;       ///< 1-based source line of the definition.
    };

    struct Output {
        std::string alias;
        std::string targetName;
        int target = -1;  ///< Node index; -1 if the target net is undefined.
        std::size_t line = 0;
    };

    /// A net defined more than once; the first definition wins, later ones
    /// are dropped but remembered here.
    struct Redefinition {
        std::string name;
        std::size_t firstLine = 0;
        std::size_t line = 0;
    };

    /// An operand (or output target) naming a net that is never defined.
    struct UnresolvedRef {
        std::string user;  ///< The referencing net / output alias.
        std::string ref;   ///< The missing net.
        std::size_t line = 0;
    };

    struct ParseError {
        std::size_t line = 0;
        std::string message;
    };

    std::vector<Node> nodes;
    std::vector<Output> outputs;
    std::vector<Redefinition> redefinitions;
    std::vector<UnresolvedRef> unresolved;
    std::vector<ParseError> errors;
    std::map<std::string, int, std::less<>> byName;

    /// True when the graph is structurally sound enough to elaborate
    /// (cycles are a separate, lint-detected property).
    bool wellFormed() const {
        return errors.empty() && redefinitions.empty() && unresolved.empty();
    }
};

NetlistGraph parseNetlistGraph(std::string_view source);

}  // namespace g5r::rtl
