// g5r-netlistc: compile a textual netlist into a native model library.
//
// The GHDL role in the paper's toolflow, end to end: strict elaboration
// (parse -> lint -> throw on errors), levelized codegen through
// rtl/codegen, and a host-toolchain compile producing a shared library that
// exports both the bridge/rtl_api.h v2 table (SharedLibModel loads it like
// any hand-written model) and the raw-kernel table of netlist_kernel.h.
//
//   g5r-netlistc [options] (<netlist-file> | --builtin bitonic:N) -o <model.so>
//     -o <path>           output shared library
//     --emit-only <file>  write the generated C++ and stop (no compile)
//     --builtin <name:N>  compile a generated design (names: bitonic);
//                         sets the device-wrapper latency to the design's
//                         pipeline depth automatically
//     --model-name <s>    ABI model name (default: derived from the input)
//     --latency <cycles>  device-wrapper compute latency (default: builtin
//                         pipeline depth, else the schedule depth)
//     --cxx <path>        host C++ compiler (default: $CXX, then c++)
//     --cxxflag <flag>    extra compiler flag (repeatable; e.g. -fsanitize=…)
//     --keep-source       leave the generated <model.so>.cc next to the .so
//     --stats             print codegen statistics
//     --quiet             suppress the success line
//
// Exit status: 0 success, 1 elaboration/codegen/compile failure, 2 usage.
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "rtl/codegen/compile.hh"
#include "rtl/netlist.hh"

namespace {

int usage(std::ostream& os, int code) {
    os << "usage: g5r-netlistc [--emit-only <file.cc>] [--model-name <s>]\n"
          "                    [--latency <cycles>] [--cxx <path>]\n"
          "                    [--cxxflag <flag>]... [--keep-source] [--stats]\n"
          "                    [--quiet] (<netlist-file> | --builtin <name:N>)\n"
          "                    -o <model.so>\n";
    return code;
}

unsigned bitonicStages(unsigned n) {
    // Pipeline depth of the bitonic network: log2(n) * (log2(n)+1) / 2 —
    // the same per-sort latency the interpreted bitonic wrapper models.
    unsigned log2n = 0;
    while ((1u << log2n) < n) ++log2n;
    return log2n * (log2n + 1) / 2;
}

struct Input {
    std::string label;
    std::string source;
    std::string defaultName;
    unsigned defaultLatency = 0;  ///< 0: fall back to schedule depth.
    unsigned elems = 0;           ///< Builtin element count (0 for files).
};

bool builtinInput(const std::string& spec, Input& input, std::string& error) {
    const auto colon = spec.find(':');
    const std::string name = spec.substr(0, colon);
    unsigned n = 8;
    if (colon != std::string::npos) {
        try {
            n = static_cast<unsigned>(std::stoul(spec.substr(colon + 1)));
        } catch (const std::exception&) {
            error = "bad builtin size in '" + spec + "'";
            return false;
        }
    }
    if (name != "bitonic") {
        error = "unknown builtin '" + name + "' (available: bitonic)";
        return false;
    }
    try {
        input.source = g5r::rtl::bitonicSorterNetlist(n);
    } catch (const g5r::rtl::NetlistError& e) {
        error = e.what();
        return false;
    }
    input.label = "builtin:bitonic:" + std::to_string(n);
    input.defaultName = "bitonic_c" + std::to_string(n);
    input.defaultLatency = bitonicStages(n);
    input.elems = n;
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    g5r::rtl::codegen::CodegenOptions cgOpts;
    g5r::rtl::codegen::CompileOptions ccOpts;
    std::string outPath, emitPath, modelName;
    bool wantStats = false, quiet = false;
    Input input;
    bool haveInput = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char* {
            return ++i < argc ? argv[i] : nullptr;
        };
        if (arg == "-o") {
            const char* v = value();
            if (v == nullptr) return usage(std::cerr, 2);
            outPath = v;
        } else if (arg == "--emit-only") {
            const char* v = value();
            if (v == nullptr) return usage(std::cerr, 2);
            emitPath = v;
        } else if (arg == "--model-name") {
            const char* v = value();
            if (v == nullptr) return usage(std::cerr, 2);
            modelName = v;
        } else if (arg == "--latency") {
            const char* v = value();
            if (v == nullptr) return usage(std::cerr, 2);
            try {
                cgOpts.deviceLatency = static_cast<unsigned>(std::stoul(v));
            } catch (const std::exception&) {
                std::cerr << "g5r-netlistc: bad --latency value '" << v << "'\n";
                return 2;
            }
        } else if (arg == "--cxx") {
            const char* v = value();
            if (v == nullptr) return usage(std::cerr, 2);
            ccOpts.cxx = v;
        } else if (arg == "--cxxflag") {
            const char* v = value();
            if (v == nullptr) return usage(std::cerr, 2);
            ccOpts.extraFlags.push_back(v);
        } else if (arg == "--builtin") {
            const char* v = value();
            if (v == nullptr) return usage(std::cerr, 2);
            std::string error;
            if (!builtinInput(v, input, error)) {
                std::cerr << "g5r-netlistc: " << error << '\n';
                return 2;
            }
            haveInput = true;
        } else if (arg == "--keep-source") {
            ccOpts.keepSource = true;
        } else if (arg == "--stats") {
            wantStats = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "g5r-netlistc: unknown option " << arg << '\n';
            return usage(std::cerr, 2);
        } else {
            if (haveInput) {
                std::cerr << "g5r-netlistc: exactly one input, please\n";
                return 2;
            }
            std::ifstream in(arg);
            if (!in) {
                std::cerr << "g5r-netlistc: cannot open " << arg << '\n';
                return 2;
            }
            std::ostringstream ss;
            ss << in.rdbuf();
            input.source = ss.str();
            input.label = arg;
            input.defaultName = std::filesystem::path{arg}.stem().string();
            haveInput = true;
        }
    }
    if (!haveInput) return usage(std::cerr, 2);
    if (outPath.empty() && emitPath.empty()) {
        std::cerr << "g5r-netlistc: -o <model.so> (or --emit-only) required\n";
        return usage(std::cerr, 2);
    }

    cgOpts.modelName = !modelName.empty() ? modelName : input.defaultName;
    cgOpts.sourceLabel = input.label;
    if (cgOpts.deviceLatency == 0) cgOpts.deviceLatency = input.defaultLatency;

    g5r::rtl::codegen::CodegenStats stats;
    try {
        const g5r::rtl::Netlist netlist{input.source};

        // The generic device register map packs inputs at 0x000 and control
        // at 0x200: more than 64 elements would overlap. The raw kernel ABI
        // has no such limit, but a silently broken wrapper helps nobody.
        std::size_t numInputs = 0;
        for (const auto& node : netlist.graph().nodes) {
            if (node.op == g5r::rtl::NetOp::kInput) ++numInputs;
        }
        if (numInputs > 64) {
            std::cerr << "g5r-netlistc: " << input.label << " has " << numInputs
                      << " inputs; the device wrapper's register map supports"
                         " at most 64\n";
            return 1;
        }

        if (!emitPath.empty()) {
            const std::string source =
                g5r::rtl::codegen::emitCompiledModel(netlist, cgOpts, &stats);
            std::ofstream out(emitPath, std::ios::trunc);
            if (!out || !(out << source).flush()) {
                std::cerr << "g5r-netlistc: cannot write " << emitPath << '\n';
                return 1;
            }
        }
        if (!outPath.empty()) {
            std::string error;
            if (!g5r::rtl::codegen::compileNetlistModel(netlist, cgOpts, ccOpts,
                                                        outPath, &error, &stats)) {
                std::cerr << "g5r-netlistc: " << error << '\n';
                return 1;
            }
        }
    } catch (const g5r::rtl::NetlistError& e) {
        std::cerr << "g5r-netlistc: " << input.label << " failed to elaborate:\n"
                  << e.what() << '\n';
        return 1;
    }

    if (wantStats) {
        std::cout << "codegen " << input.label << ": " << stats.combNodes
                  << " comb node(s) -> " << stats.emittedExprs << " expr(s) in "
                  << stats.levelBlocks << " block(s) over depth " << stats.depth
                  << "; " << stats.constFolded << " const-folded, "
                  << stats.dedupReused << " dedup-reused, "
                  << stats.localsPromoted << " register-promoted; masks "
                  << stats.masksApplied << " applied / " << stats.masksSkipped
                  << " folded away; " << stats.inputs << " input(s), "
                  << stats.outputs << " output(s), " << stats.regs
                  << " reg(s)\n";
    }
    if (!quiet) {
        if (!outPath.empty()) {
            std::cout << input.label << " -> " << outPath << " (model \""
                      << cgOpts.modelName << "\", latency "
                      << (cgOpts.deviceLatency > 0 ? cgOpts.deviceLatency
                                                   : std::max(1u, stats.depth))
                      << " cycle(s))\n";
        } else {
            std::cout << input.label << " -> " << emitPath << " (emit only)\n";
        }
    }
    return 0;
}
