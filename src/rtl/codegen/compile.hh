// Driving the host toolchain: netlist source -> generated C++ -> model .so.
//
// This is the moral equivalent of the paper's GHDL invocation: a one-shot
// native compile producing a shared library the simulator dlopen()s through
// the stable C ABI. The simulator itself never links any of it — only
// g5r-netlistc (and the conformance tests) run the compiler.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "rtl/codegen/codegen.hh"

namespace g5r::rtl::codegen {

struct CompileOptions {
    /// C++ compiler to invoke. Empty: $CXX, falling back to "c++".
    std::string cxx;

    /// Extra flags appended to the base set (e.g. -fsanitize=... so a
    /// sanitizer-instrumented test binary loads an instrumented model).
    std::vector<std::string> extraFlags;

    /// Keep the generated .cc next to the .so instead of deleting it.
    bool keepSource = false;
};

/// The compiler command line that would be run (testing/--verbose).
std::string compileCommand(const CompileOptions& opts, const std::string& srcPath,
                           const std::string& soPath);

/// Emit @p netlist with @p cgOpts, write the source next to @p soPath
/// (<soPath>.cc), and compile it into @p soPath. On failure returns false
/// and fills @p error with the compiler/tool diagnostics. Throws nothing.
bool compileNetlistModel(const Netlist& netlist, const CodegenOptions& cgOpts,
                         const CompileOptions& opts, const std::string& soPath,
                         std::string* error, CodegenStats* stats = nullptr);

/// Strict-elaborate @p source first (NetlistError text lands in @p error
/// instead of being thrown), then compile as above.
bool compileNetlistModelFromSource(std::string_view source,
                                   const CodegenOptions& cgOpts,
                                   const CompileOptions& opts,
                                   const std::string& soPath, std::string* error,
                                   CodegenStats* stats = nullptr);

}  // namespace g5r::rtl::codegen
