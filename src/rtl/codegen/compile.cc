#include "rtl/codegen/compile.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace g5r::rtl::codegen {
namespace {

/// Single-quote @p arg for /bin/sh: the only character needing care inside
/// single quotes is the quote itself.
std::string shellQuote(const std::string& arg) {
    std::string out = "'";
    for (const char c : arg) {
        if (c == '\'') {
            out += "'\\''";
        } else {
            out += c;
        }
    }
    out += '\'';
    return out;
}

std::string resolveCxx(const CompileOptions& opts) {
    if (!opts.cxx.empty()) return opts.cxx;
    if (const char* env = std::getenv("CXX"); env != nullptr && *env != '\0') {
        return env;
    }
    return "c++";
}

}  // namespace

std::string compileCommand(const CompileOptions& opts, const std::string& srcPath,
                           const std::string& soPath) {
    std::string cmd = shellQuote(resolveCxx(opts));
    // The generated code is plain C++17, position independent, and meant to
    // be fast: straight-line level blocks with register-promoted locals
    // reward -O3 the way GSIM/CCSS-style compiled simulators do.
    cmd += " -O3 -fPIC -shared -std=c++17";
    for (const auto& flag : opts.extraFlags) cmd += ' ' + shellQuote(flag);
    cmd += ' ' + shellQuote(srcPath) + " -o " + shellQuote(soPath);
    return cmd;
}

bool compileNetlistModel(const Netlist& netlist, const CodegenOptions& cgOpts,
                         const CompileOptions& opts, const std::string& soPath,
                         std::string* error, CodegenStats* stats) {
    const std::string source = emitCompiledModel(netlist, cgOpts, stats);
    const std::string srcPath = soPath + ".cc";
    {
        std::ofstream out(srcPath, std::ios::trunc);
        if (!out) {
            if (error != nullptr) *error = "cannot write " + srcPath;
            return false;
        }
        out << source;
        if (!out.flush()) {
            if (error != nullptr) *error = "short write to " + srcPath;
            return false;
        }
    }

    // Capture the compiler's stdout+stderr so failures carry the real
    // diagnostics instead of a bare exit status.
    const std::string cmd = compileCommand(opts, srcPath, soPath) + " 2>&1";
    std::string toolOutput;
    FILE* pipe = ::popen(cmd.c_str(), "r");
    if (pipe == nullptr) {
        if (error != nullptr) *error = "cannot run host compiler: " + cmd;
        if (!opts.keepSource) std::remove(srcPath.c_str());
        return false;
    }
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, pipe)) > 0) {
        toolOutput.append(buf, got);
    }
    const int status = ::pclose(pipe);

    if (!opts.keepSource) std::remove(srcPath.c_str());
    if (status != 0) {
        if (error != nullptr) {
            *error = "host compiler failed (status " + std::to_string(status) +
                     "):\n" + cmd + "\n" + toolOutput;
        }
        std::remove(soPath.c_str());  // Never leave a half-linked library.
        return false;
    }
    return true;
}

bool compileNetlistModelFromSource(std::string_view source,
                                   const CodegenOptions& cgOpts,
                                   const CompileOptions& opts,
                                   const std::string& soPath, std::string* error,
                                   CodegenStats* stats) {
    try {
        const Netlist netlist{source};
        return compileNetlistModel(netlist, cgOpts, opts, soPath, error, stats);
    } catch (const NetlistError& e) {
        if (error != nullptr) *error = e.what();
        return false;
    }
}

}  // namespace g5r::rtl::codegen
