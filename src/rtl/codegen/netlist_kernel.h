/*
 * The raw-kernel ABI a g5r-netlistc-compiled netlist library exports next to
 * the simulator-facing bridge/rtl_api.h table.
 *
 * The rtl_api.h entry point wraps the compiled netlist in a generic device
 * register map so RtlObject/SharedLibModel can drive it like any other
 * model. This second, lower-level table exposes the netlist itself —
 * set-input / eval / tick / get-output by dense index, with name and width
 * tables for one-time resolution — so conformance tests and the
 * compiled-vs-interpreted benchmarks can exercise the generated evaluation
 * code directly, without threading every value through the device channel.
 *
 * Pure C for the same reason rtl_api.h is: the .so is produced by whatever
 * host toolchain g5r-netlistc found, which need not match the simulator's.
 */
#ifndef G5R_RTL_CODEGEN_NETLIST_KERNEL_H
#define G5R_RTL_CODEGEN_NETLIST_KERNEL_H

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

#define G5R_NETLIST_KERNEL_ABI_VERSION 1u

typedef struct G5rNetlistKernelApi {
    uint32_t abi_version; /* == G5R_NETLIST_KERNEL_ABI_VERSION */
    const char* name;     /* model name, matches the rtl_api table */

    /* External nets, in netlist declaration order. Widths are the declared
     * net widths (1..64); names point at static storage in the library. */
    uint32_t num_inputs;
    uint32_t num_outputs;
    const char* const* input_names;
    const uint32_t* input_widths;
    const char* const* output_names;
    const uint32_t* output_widths;

    /* Instance lifecycle. create() returns a reset kernel. */
    void* (*create)(void);
    void (*destroy)(void* kernel);

    /* Reset registers to their init values (combinational values settle on
     * the next eval, exactly like the interpreter's reset()). */
    void (*reset)(void* kernel);

    /* Drive input @p index (masked to its declared width). */
    void (*set_input)(void* kernel, uint32_t index, uint64_t value);

    /* Propagate combinational logic / clock one edge (eval + latch). */
    void (*eval)(void* kernel);
    void (*tick)(void* kernel);

    /* Output @p index after the last eval()/tick(). */
    uint64_t (*get_output)(void* kernel, uint32_t index);
} G5rNetlistKernelApi;

/* Compiled netlist libraries export this symbol in addition to
 * G5R_RTL_GET_API_SYMBOL. */
#define G5R_NETLIST_KERNEL_GET_API_SYMBOL "g5r_netlist_kernel_get_api"
typedef const G5rNetlistKernelApi* (*G5rNetlistKernelGetApiFn)(void);

#ifdef __cplusplus
}
#endif

#endif /* G5R_RTL_CODEGEN_NETLIST_KERNEL_H */
