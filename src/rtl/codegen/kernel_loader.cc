#include "rtl/codegen/kernel_loader.hh"

#include <dlfcn.h>

namespace g5r::rtl::codegen {
namespace {

void fail(std::string* error, const std::string& what) {
    if (error != nullptr) *error = what;
}

}  // namespace

std::unique_ptr<CompiledKernel> CompiledKernel::load(const std::string& soPath,
                                                     std::string* error) {
    void* handle = ::dlopen(soPath.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (handle == nullptr) {
        const char* why = ::dlerror();
        fail(error, "dlopen failed: " + std::string{why != nullptr ? why : soPath});
        return nullptr;
    }
    auto getApi = reinterpret_cast<G5rNetlistKernelGetApiFn>(
        ::dlsym(handle, G5R_NETLIST_KERNEL_GET_API_SYMBOL));
    if (getApi == nullptr) {
        fail(error, soPath + " exports no " G5R_NETLIST_KERNEL_GET_API_SYMBOL
                            " (not a compiled netlist library?)");
        ::dlclose(handle);
        return nullptr;
    }
    const G5rNetlistKernelApi* api = getApi();
    if (api == nullptr || api->abi_version != G5R_NETLIST_KERNEL_ABI_VERSION) {
        fail(error, soPath + ": kernel ABI mismatch");
        ::dlclose(handle);
        return nullptr;
    }
    void* instance = api->create();
    if (instance == nullptr) {
        fail(error, soPath + ": kernel create() failed");
        ::dlclose(handle);
        return nullptr;
    }
    return std::unique_ptr<CompiledKernel>{
        new CompiledKernel{handle, api, instance}};
}

CompiledKernel::~CompiledKernel() {
    api_->destroy(instance_);
    ::dlclose(dlHandle_);
}

int CompiledKernel::outputIndex(const std::string& alias) const {
    for (std::uint32_t i = 0; i < api_->num_outputs; ++i) {
        if (alias == api_->output_names[i]) return static_cast<int>(i);
    }
    return -1;
}

}  // namespace g5r::rtl::codegen
