// Compiled netlist backend: emit the canonical level schedule as C++.
//
// This is the missing half of the GHDL story: the paper's GHDL path compiles
// VHDL to *native code* behind the same wrapper ABI as Verilator, while our
// netlist stand-in interpreted every node. emitCompiledModel() walks the
// analysis substrate built in src/rtl/analysis — the deterministic
// level-major LevelSchedule, the const-prop value ranges, and the structural
// cone-dedup classes — and emits a self-contained C++ translation unit:
//
//   * one function per level-partitioned basic block (straight-line code,
//     no per-node dispatch, no dirty-bit bookkeeping);
//   * every net packed into a uint64_t slot; width masking folded into each
//     statement and *skipped* wherever const prop proves the pre-mask value
//     already fits the net (preMask.hi <= mask);
//   * nets proven constant initialized once at reset and never recomputed;
//   * duplicate cones evaluated once — later members of a verified
//     identical-cone class copy the canonical member's value;
//   * the bridge/rtl_api.h v2 table (generic device register map + the PR 4
//     idle_hint), so SharedLibModel dlopen()s the result exactly like the
//     hand-written models, plus the raw-kernel table of netlist_kernel.h
//     for conformance tests and eval-rate benchmarks.
//
// The interpreter (rtl/netlist.hh) stays the reference/debug backend: both
// its modes and the compiled library must agree on every output every cycle,
// which the conformance suite and the flight-recorder identity tests enforce.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "rtl/netlist.hh"

namespace g5r::rtl::codegen {

struct CodegenOptions {
    /// Model name reported by both ABI tables.
    std::string modelName = "netlist";

    /// Device-wrapper compute latency in RTL cycles (a start written to
    /// 0x200 raises busy for this many ticks before outputs settle — the
    /// pipeline depth of the registered design). 0 = the schedule depth,
    /// minimum 1.
    unsigned deviceLatency = 0;

    /// Statements per emitted level-block function. Levels are packed into
    /// blocks up to this budget (an oversized single level is split — nodes
    /// on one level are mutually independent, so any cut is safe). Bigger
    /// blocks promote more nets to register-allocatable locals — every block
    /// boundary pins the nets crossing it to the v[] array — at the cost of
    /// host-compiler time on huge designs.
    std::size_t blockBudget = 4096;

    /// Identifying label woven into the generated banner (source path or
    /// builtin spec).
    std::string sourceLabel = "<netlist>";
};

/// What the emitter did — the compiled backend's analogue of the lint dumps.
struct CodegenStats {
    std::size_t combNodes = 0;     ///< Schedule nodes considered.
    std::size_t emittedExprs = 0;  ///< Nodes emitted as real expressions.
    std::size_t constFolded = 0;   ///< Nodes proven constant, set at reset.
    std::size_t dedupReused = 0;   ///< Duplicate-cone members emitted as copies.
    std::size_t masksApplied = 0;  ///< Statements that needed a width mask.
    std::size_t masksSkipped = 0;  ///< Masks dropped via const-prop pre-mask proof.
    std::size_t levelBlocks = 0;   ///< Emitted basic-block functions.
    std::size_t localsPromoted = 0;  ///< Nets kept in block-local temporaries
                                     ///< (every reader in the same block)
                                     ///< instead of the v[] state array.
    std::size_t regs = 0;
    std::size_t inputs = 0;
    std::size_t outputs = 0;
    unsigned depth = 0;            ///< Schedule depth (levels).
};

/// Emit the self-contained C++ model for @p netlist. Throws NetlistError is
/// impossible here by construction (the Netlist already elaborated strictly).
std::string emitCompiledModel(const Netlist& netlist, const CodegenOptions& opts,
                              CodegenStats* stats = nullptr);

/// Convenience: strict-elaborate @p source (throws NetlistError like the
/// Netlist constructor on syntax/undriven/multi-driver/cycle findings), then
/// emit.
std::string emitCompiledModelFromSource(std::string_view source,
                                        const CodegenOptions& opts,
                                        CodegenStats* stats = nullptr);

}  // namespace g5r::rtl::codegen
