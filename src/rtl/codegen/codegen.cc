#include "rtl/codegen/codegen.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "rtl/analysis/cones.hh"
#include "rtl/analysis/const_prop.hh"

namespace g5r::rtl::codegen {
namespace {

std::uint64_t maskFor(unsigned width) {
    return width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
}

std::string hex(std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llxULL",
                  static_cast<unsigned long long>(v));
    return buf;
}

/// C string literal for @p s: arbitrary bytes are legal net names (the
/// tolerant parser only splits on whitespace), so escape everything that is
/// not plainly printable.
std::string cstr(const std::string& s) {
    std::string out = "\"";
    for (const unsigned char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += static_cast<char>(c);
        } else if (c >= 0x20 && c < 0x7F) {
            out += static_cast<char>(c);
        } else {
            char buf[8];
            // Close and reopen the literal so a following hex digit can't
            // extend the escape ("\x01" "2", not "\x012").
            std::snprintf(buf, sizeof buf, "\\x%02x\" \"", c);
            out += buf;
        }
    }
    out += '"';
    return out;
}

std::string slot(int node) { return "v[" + std::to_string(node) + "]"; }

/// Operand of a signed compare: sign-extended from the *source* net's
/// declared width, exactly like the interpreter's computeValue(). @p opnd is
/// the already-resolved reference (local or v[] slot).
std::string sext(const NetlistGraph& g, int src, const std::string& opnd) {
    if (g.nodes[src].width >= 64) {
        return "static_cast<int64_t>(" + opnd + ")";
    }
    const unsigned sh = 64 - g.nodes[src].width;
    return "(static_cast<int64_t>(" + opnd + " << " + std::to_string(sh) +
           ") >> " + std::to_string(sh) + ")";
}

/// The pure C declarations the generated translation unit needs. Emitted
/// verbatim so the .so is self-contained: it mirrors bridge/rtl_api.h (ABI
/// v2) and rtl/codegen/netlist_kernel.h (ABI v1) field for field — any
/// drift is caught immediately by the conformance tests, which drive the
/// library through the real headers.
constexpr const char* kAbiDecls = R"(
extern "C" {

/* --- mirror of bridge/rtl_api.h (ABI v2) ------------------------------- */
#define G5R_RTL_ABI_VERSION 2u
#define G5R_RTL_MAX_MEM_REQ 8u
#define G5R_RTL_MEM_DATA_BYTES 64u
#define G5R_RTL_NUM_EVENT_LINES 32u

typedef struct G5rRtlMemReq {
    uint64_t id;
    uint64_t addr;
    uint8_t write;
    uint8_t port;
    uint16_t size;
    uint8_t data[G5R_RTL_MEM_DATA_BYTES];
} G5rRtlMemReq;

typedef struct G5rRtlInput {
    uint8_t dev_valid;
    uint8_t dev_write;
    uint64_t dev_addr;
    uint64_t dev_wdata;
    uint8_t mem_resp_valid;
    uint64_t mem_resp_id;
    uint8_t mem_resp_data[G5R_RTL_MEM_DATA_BYTES];
    uint32_t mem_req_credits;
    uint32_t events[G5R_RTL_NUM_EVENT_LINES];
} G5rRtlInput;

typedef struct G5rRtlOutput {
    uint8_t dev_ready;
    uint8_t dev_resp_valid;
    uint64_t dev_rdata;
    uint32_t mem_req_count;
    G5rRtlMemReq mem_req[G5R_RTL_MAX_MEM_REQ];
    uint8_t irq;
    uint8_t done;
    uint8_t idle_hint;
} G5rRtlOutput;

typedef struct G5rRtlModelApi {
    uint32_t abi_version;
    const char* name;
    void* (*create)(const char* config);
    void (*destroy)(void* model);
    void (*reset)(void* model);
    void (*tick)(void* model, const G5rRtlInput* in, G5rRtlOutput* out);
    int (*trace_start)(void* model, const char* vcd_path);
    void (*trace_stop)(void* model);
} G5rRtlModelApi;

/* --- mirror of rtl/codegen/netlist_kernel.h (ABI v1) ------------------- */
#define G5R_NETLIST_KERNEL_ABI_VERSION 1u

typedef struct G5rNetlistKernelApi {
    uint32_t abi_version;
    const char* name;
    uint32_t num_inputs;
    uint32_t num_outputs;
    const char* const* input_names;
    const uint32_t* input_widths;
    const char* const* output_names;
    const uint32_t* output_widths;
    void* (*create)(void);
    void (*destroy)(void* kernel);
    void (*reset)(void* kernel);
    void (*set_input)(void* kernel, uint32_t index, uint64_t value);
    void (*eval)(void* kernel);
    void (*tick)(void* kernel);
    uint64_t (*get_output)(void* kernel, uint32_t index);
} G5rNetlistKernelApi;

}  /* extern "C" */
)";

}  // namespace

std::string emitCompiledModel(const Netlist& netlist, const CodegenOptions& opts,
                              CodegenStats* statsOut) {
    const NetlistGraph& g = netlist.graph();
    const analysis::LevelSchedule& sched = netlist.schedule();
    const analysis::ConstProp cp = analysis::propagateConstants(g, sched);
    const analysis::DuplicateCones dup = analysis::findDuplicateCones(g, sched);

    CodegenStats stats;
    stats.combNodes = sched.order.size();
    stats.depth = sched.depth();

    const int numNodes = static_cast<int>(g.nodes.size());

    // Per node: the canonical member of its verified identical-cone class
    // (or itself). Copying from the canonical slot is safe because class
    // members share one level and levels are emitted ascending-index within
    // a level, so the canonical (smallest-index) member is computed first.
    std::vector<int> canonical(numNodes);
    for (int i = 0; i < numNodes; ++i) canonical[i] = i;
    for (const auto& cls : dup.classes) {
        for (const int member : cls.nodes) canonical[member] = cls.nodes[0];
    }

    std::vector<int> inputNodes, regNodes;
    for (int i = 0; i < numNodes; ++i) {
        if (g.nodes[i].op == NetOp::kInput) inputNodes.push_back(i);
        if (g.nodes[i].op == NetOp::kReg) regNodes.push_back(i);
    }
    stats.inputs = inputNodes.size();
    stats.regs = regNodes.size();
    stats.outputs = g.outputs.size();

    const unsigned latency =
        opts.deviceLatency > 0 ? opts.deviceLatency : std::max(1u, sched.depth());

    std::ostringstream os;
    os << "// Generated by g5r-netlistc from " << opts.sourceLabel << ".\n"
       << "// Compiled netlist model \"" << opts.modelName << "\": "
       << numNodes << " net(s), " << stats.combNodes
       << " combinational, depth " << stats.depth << ", " << stats.regs
       << " reg(s). DO NOT EDIT.\n"
       << "#include <stdint.h>\n"
       << "#include <string.h>\n"
       << kAbiDecls
       << "\nnamespace {\n\n"
       << "constexpr uint32_t kNumNodes = " << numNodes << ";\n"
       << "constexpr uint32_t kNumInputs = " << inputNodes.size() << ";\n"
       << "constexpr uint32_t kNumOutputs = " << g.outputs.size() << ";\n"
       << "constexpr uint32_t kNumRegs = " << regNodes.size() << ";\n"
       << "constexpr uint32_t kDeviceLatency = " << latency << ";\n\n";

    // --- the kernel: packed state + level-block eval functions -----------
    os << "struct Kernel {\n"
       << "    uint64_t v[kNumNodes];\n";
    if (!regNodes.empty()) os << "    uint64_t regNext[kNumRegs];\n";
    os << "    void reset();\n"
       << "    void eval();\n"
       << "    void tick();\n";

    // Emission order: level-major with a greedy readiness chase. The
    // canonical schedule's level-major walk keeps independent nodes adjacent
    // (instruction-level parallelism in the generated straight line); the
    // chase — whenever a node is emitted, any consumer whose operands all
    // just became available is emitted immediately after — keeps short-lived
    // intermediates (a compare feeding its muxes) inside the host compiler's
    // register window instead of spilling a whole level of them. The result
    // is still a topological order (a node is only ever emitted once every
    // dependency is), so it computes exactly what the canonical schedule
    // computes; dedup members depend on their canonical node, so the copy
    // source is always emitted first.
    const auto emits = [&](int i) {
        return !netOpIsSource(g.nodes[i].op) && !cp.range[i].constant();
    };
    std::vector<int> emitOrder;
    {
        std::vector<std::vector<int>> consumers(numNodes);
        std::vector<int> depRemaining(numNodes, 0);
        for (const int i : sched.order) {
            if (!emits(i)) continue;
            const auto addDep = [&](int d) {
                if (d >= 0 && emits(d)) {
                    consumers[d].push_back(i);
                    ++depRemaining[i];
                }
            };
            if (canonical[i] != i) {
                addDep(canonical[i]);
            } else {
                for (const int s : g.nodes[i].src) addDep(s);
            }
        }
        // Chase at most one consumer hop: deeper descendants wait for the
        // level-major main loop, otherwise the chase degenerates into a
        // depth-first walk of the whole circuit and the generated code loses
        // the level's instruction-level parallelism again.
        std::vector<char> done(numNodes, 0);
        std::vector<int> chase;
        for (const int seed : sched.order) {
            if (!emits(seed) || done[seed] != 0 || depRemaining[seed] > 0) {
                continue;
            }
            done[seed] = 1;
            emitOrder.push_back(seed);
            for (const int c : consumers[seed]) {
                if (--depRemaining[c] == 0) chase.push_back(c);
            }
            for (const int n : chase) {
                done[n] = 1;
                emitOrder.push_back(n);
                for (const int c : consumers[n]) --depRemaining[c];
            }
            chase.clear();
        }
    }
    for (const int i : sched.order) {
        // Proven-constant nets: initialized once in reset(), no per-eval
        // work at all.
        if (!netOpIsSource(g.nodes[i].op) && cp.range[i].constant()) {
            ++stats.constFolded;
        }
    }

    // Partition the emission order into basic-block functions: since the
    // order is topological and the blocks run in sequence, any cut is safe.
    std::vector<std::vector<int>> blockNodes;
    {
        std::vector<int> current;
        const std::size_t budget = opts.blockBudget == 0 ? 256 : opts.blockBudget;
        for (const int i : emitOrder) {
            current.push_back(i);
            if (current.size() >= budget) {
                blockNodes.push_back(std::move(current));
                current.clear();
            }
        }
        if (!current.empty()) blockNodes.push_back(std::move(current));
    }
    stats.levelBlocks = blockNodes.size();

    std::vector<int> blockOf(numNodes, -1);
    for (std::size_t b = 0; b < blockNodes.size(); ++b) {
        for (const int i : blockNodes[b]) blockOf[i] = static_cast<int>(b);
    }

    // Escape analysis: an emitted net whose every reader sits in the same
    // block never needs its v[] slot — it becomes a block-local uint64_t the
    // host compiler can keep in a register. Readers outside any block (the
    // output table, regNext capture, the device wrapper) pin the net to the
    // array, as does any cross-block consumer. Sources, constants, and
    // folded nets always live in v[].
    std::vector<char> isLocal(numNodes, 0);
    for (const auto& blk : blockNodes) {
        for (const int i : blk) isLocal[i] = 1;
    }
    const auto pinIfCrossBlock = [&](int x, int readerBlock) {
        if (x >= 0 && blockOf[x] != readerBlock) isLocal[x] = 0;
    };
    for (std::size_t b = 0; b < blockNodes.size(); ++b) {
        const int rb = static_cast<int>(b);
        for (const int i : blockNodes[b]) {
            if (canonical[i] != i) {
                pinIfCrossBlock(canonical[i], rb);
            } else {
                for (const int s : g.nodes[i].src) pinIfCrossBlock(s, rb);
            }
        }
    }
    for (const int r : regNodes) pinIfCrossBlock(g.nodes[r].src[0], -1);
    for (const auto& out : g.outputs) pinIfCrossBlock(out.target, -1);
    for (int i = 0; i < numNodes; ++i) {
        if (isLocal[i]) ++stats.localsPromoted;
    }

    // Resolved reference to net @p x from inside block @p blk.
    const auto ref = [&](int x, int blk) {
        return (isLocal[x] && blockOf[x] == blk) ? "n" + std::to_string(x)
                                                 : slot(x);
    };

    struct Stmt {
        int node;
        std::string text;
    };
    std::vector<std::vector<Stmt>> blocks(blockNodes.size());
    for (std::size_t b = 0; b < blockNodes.size(); ++b) {
        const int rb = static_cast<int>(b);
        for (const int i : blockNodes[b]) {
            const auto& node = g.nodes[i];
            const std::uint64_t m = maskFor(node.width);
            const int level = sched.levelOf[i];
            const std::string lhs =
                isLocal[i] ? "const uint64_t n" + std::to_string(i) : slot(i);

            std::string stmt;
            if (canonical[i] != i) {
                stmt = lhs + " = " + ref(canonical[i], rb) + ";";
                ++stats.dedupReused;
            } else {
                const int a = node.src[0], b2 = node.src[1], c = node.src[2];
                const auto ra = [&] { return ref(a, rb); };
                const auto rbx = [&] { return ref(b2, rb); };
                std::string expr;
                bool boolExpr = false;
                switch (node.op) {
                case NetOp::kNot: expr = "~" + ra(); break;
                case NetOp::kAnd: expr = ra() + " & " + rbx(); break;
                case NetOp::kOr: expr = ra() + " | " + rbx(); break;
                case NetOp::kXor: expr = ra() + " ^ " + rbx(); break;
                case NetOp::kAdd: expr = ra() + " + " + rbx(); break;
                case NetOp::kSub: expr = ra() + " - " + rbx(); break;
                case NetOp::kLt:
                    expr = sext(g, a, ra()) + " < " + sext(g, b2, rbx());
                    boolExpr = true;
                    break;
                case NetOp::kLtu:
                    expr = ra() + " < " + rbx();
                    boolExpr = true;
                    break;
                case NetOp::kEq:
                    expr = ra() + " == " + rbx();
                    boolExpr = true;
                    break;
                case NetOp::kMux: {
                    // Branchless select. A ternary here tempts the host
                    // compiler into conditional branches (it balks at
                    // if-converting the paired swap pattern), and data-
                    // dependent selects mispredict half the time; the
                    // xor-mask form is straight-line for any stimulus. The
                    // !=0 normalization drops when const prop bounds the
                    // select to [0,1] (every compare does).
                    const std::string sel =
                        cp.range[a].hi <= 1
                            ? ra()
                            : "static_cast<uint64_t>(" + ra() + " != 0)";
                    const std::string el = ref(c, rb);
                    expr = el + " ^ ((" + rbx() + " ^ " + el + ") & (0 - " +
                           sel + "))";
                    break;
                }
                default: continue;  // Sources never reach the block list.
                }
                if (boolExpr) {
                    // Compares carry [0,1]: never wider than any mask.
                    stmt = lhs + " = (" + expr + ") ? 1u : 0u;";
                    ++stats.masksSkipped;
                } else if (node.width < 64 && cp.preMask[i].hi > m) {
                    stmt = lhs + " = (" + expr + ") & " + hex(m) + ";";
                    ++stats.masksApplied;
                } else {
                    // Width-64 net, or const prop proved the pre-mask value
                    // already fits: masking folded away.
                    stmt = lhs + " = " + expr + ";";
                    ++stats.masksSkipped;
                }
                ++stats.emittedExprs;
            }
            stmt += "  // L" + std::to_string(level) + ' ' + node.name;
            blocks[b].push_back(Stmt{i, std::move(stmt)});
        }
    }

    for (std::size_t blk = 0; blk < blocks.size(); ++blk) {
        os << "    void block" << blk << "();\n";
    }
    os << "};\n\n";

    // reset(): zero everything, then the once-only values — constants, reg
    // init values, and every comb net const prop proved can hold exactly
    // one value.
    os << "void Kernel::reset() {\n"
       << "    memset(v, 0, sizeof v);\n";
    if (!regNodes.empty()) os << "    memset(regNext, 0, sizeof regNext);\n";
    for (int i = 0; i < numNodes; ++i) {
        const auto& node = g.nodes[i];
        if (node.op == NetOp::kConst) {
            os << "    " << slot(i) << " = " << hex(node.init & maskFor(node.width))
               << ";  // const " << node.name << '\n';
        }
    }
    for (std::size_t j = 0; j < regNodes.size(); ++j) {
        const auto& node = g.nodes[regNodes[j]];
        const std::string init = hex(node.init & maskFor(node.width));
        os << "    " << slot(regNodes[j]) << " = " << init << ";  // reg "
           << node.name << '\n'
           << "    regNext[" << j << "] = " << init << ";\n";
    }
    for (const int i : sched.order) {
        if (!cp.range[i].constant() || netOpIsSource(g.nodes[i].op)) continue;
        os << "    " << slot(i) << " = " << hex(cp.range[i].lo)
           << ";  // const-folded " << g.nodes[i].name << '\n';
    }
    os << "}\n\n";

    for (std::size_t blk = 0; blk < blocks.size(); ++blk) {
        os << "void Kernel::block" << blk << "() {\n";
        for (const Stmt& s : blocks[blk]) os << "    " << s.text << '\n';
        os << "}\n\n";
    }

    os << "void Kernel::eval() {\n";
    for (std::size_t blk = 0; blk < blocks.size(); ++blk) {
        os << "    block" << blk << "();\n";
    }
    // Capture reg next-values after combinational settle, like the
    // interpreter's captureRegNext(). The mask folds away when the data
    // input provably fits the register's width.
    for (std::size_t j = 0; j < regNodes.size(); ++j) {
        const auto& node = g.nodes[regNodes[j]];
        const int src = node.src[0];
        const std::uint64_t m = maskFor(node.width);
        os << "    regNext[" << j << "] = " << slot(src);
        if (node.width < 64 && cp.range[src].hi > m) os << " & " << hex(m);
        os << ";  // reg " << node.name << " <- " << g.nodes[src].name << '\n';
    }
    os << "}\n\n"
       << "void Kernel::tick() {\n"
       << "    eval();\n";
    for (std::size_t j = 0; j < regNodes.size(); ++j) {
        os << "    " << slot(regNodes[j]) << " = regNext[" << j << "];\n";
    }
    os << "}\n\n";

    // --- static name/width/mask tables for the kernel ABI ----------------
    // Always emitted (with one dummy entry when the set is empty) so the
    // wrapper and API code below compile for input-less / output-less
    // netlists; the num_* counts keep callers out of the dummy slot.
    const auto emitTable = [&](const char* type, const char* name,
                               std::vector<std::string> items,
                               const char* dummy) {
        if (items.empty()) items.push_back(dummy);
        os << type << ' ' << name << "[] = {";
        for (std::size_t i = 0; i < items.size(); ++i) {
            os << (i == 0 ? "" : ", ") << items[i];
        }
        os << "};\n";
    };

    std::vector<std::string> inNames, inWidths, inNodes, inMasks;
    for (const int i : inputNodes) {
        inNames.push_back(cstr(g.nodes[i].name));
        inWidths.push_back(std::to_string(g.nodes[i].width) + 'u');
        inNodes.push_back(std::to_string(i) + 'u');
        inMasks.push_back(hex(maskFor(g.nodes[i].width)));
    }
    std::vector<std::string> outNames, outWidths, outNodes;
    for (const auto& out : g.outputs) {
        outNames.push_back(cstr(out.alias));
        outWidths.push_back(std::to_string(g.nodes[out.target].width) + 'u');
        outNodes.push_back(std::to_string(out.target) + 'u');
    }
    emitTable("const char* const", "kInputNames", inNames, "\"\"");
    emitTable("const uint32_t", "kInputWidths", inWidths, "0u");
    emitTable("const uint32_t", "kInputNode", inNodes, "0u");
    emitTable("const uint64_t", "kInputMask", inMasks, "0u");
    emitTable("const char* const", "kOutputNames", outNames, "\"\"");
    emitTable("const uint32_t", "kOutputWidths", outWidths, "0u");
    emitTable("const uint32_t", "kOutputNode", outNodes, "0u");

    // --- kernel ABI ------------------------------------------------------
    os << R"(
void* kernelCreate(void) {
    Kernel* k = new Kernel;
    k->reset();
    return k;
}
void kernelDestroy(void* p) { delete static_cast<Kernel*>(p); }
void kernelReset(void* p) { static_cast<Kernel*>(p)->reset(); }
void kernelSetInput(void* p, uint32_t index, uint64_t value) {
    if (index >= kNumInputs) return;
    static_cast<Kernel*>(p)->v[kInputNode[index]] = value & kInputMask[index];
}
void kernelEval(void* p) { static_cast<Kernel*>(p)->eval(); }
void kernelTick(void* p) { static_cast<Kernel*>(p)->tick(); }
uint64_t kernelGetOutput(void* p, uint32_t index) {
    if (index >= kNumOutputs) return 0;
    return static_cast<Kernel*>(p)->v[kOutputNode[index]];
}
)";
    os << "\nconst G5rNetlistKernelApi kKernelApi = {\n"
       << "    G5R_NETLIST_KERNEL_ABI_VERSION,\n"
       << "    " << cstr(opts.modelName) << ",\n"
       << "    kNumInputs, kNumOutputs,\n"
       << "    kInputNames, kInputWidths,\n"
       << "    kOutputNames, kOutputWidths,\n"
       << "    kernelCreate, kernelDestroy, kernelReset,\n"
       << "    kernelSetInput, kernelEval, kernelTick,\n"
       << "    kernelGetOutput,\n};\n";

    // --- the rtl_api.h device wrapper ------------------------------------
    // Register map (the generic netlist-accelerator protocol the bitonic
    // model established; element counts above 64 would collide with the
    // control block and are rejected by g5r-netlistc's CLI for the wrapper
    // path):
    //   0x000 + 8*i : input element i (write)
    //   0x100 + 8*i : output element i (read; valid when done)
    //   0x200       : control — write 1 to start (busy for kDeviceLatency)
    //   0x208       : status — bit0 busy, bit1 done
    //   0x210       : element count (read-only)
    os << R"(
struct Model {
    Kernel kernel;
    uint64_t inputs[kNumInputs ? kNumInputs : 1];
    uint64_t outputs[kNumOutputs ? kNumOutputs : 1];
    uint32_t busyCycles;
    uint8_t done;
    uint8_t readPending;
    uint64_t readAddr;
};

void modelReset(Model* m) {
    m->kernel.reset();
    memset(m->inputs, 0, sizeof m->inputs);
    memset(m->outputs, 0, sizeof m->outputs);
    m->busyCycles = 0;
    m->done = 0;
    m->readPending = 0;
    m->readAddr = 0;
}

void* apiCreate(const char* /*config: n and eval mode are baked in*/) {
    Model* m = new Model;
    modelReset(m);
    return m;
}
void apiDestroy(void* p) { delete static_cast<Model*>(p); }
void apiReset(void* p) { modelReset(static_cast<Model*>(p)); }

uint64_t readReg(const Model* m, uint64_t addr) {
    const uint64_t off = addr & 0x3FF;
    if (off >= 0x100 && off < 0x100 + 8ull * kNumOutputs) {
        return m->outputs[(off - 0x100) / 8];
    }
    if (off == 0x208) {
        return (m->busyCycles > 0 ? 1u : 0u) | (m->done ? 2u : 0u);
    }
    if (off == 0x210) return kNumInputs;
    return 0;
}

void writeReg(Model* m, uint64_t addr, uint64_t data) {
    const uint64_t off = addr & 0x3FF;
    if (off < 8ull * kNumInputs) {
        m->inputs[off / 8] = data;
    } else if (off == 0x200 && (data & 1) != 0) {
        m->busyCycles = kDeviceLatency;
        m->done = 0;
    }
}

void apiTick(void* p, const G5rRtlInput* in, G5rRtlOutput* out) {
    Model* m = static_cast<Model*>(p);
    memset(out, 0, sizeof *out);

    if (m->readPending) {
        out->dev_resp_valid = 1;
        out->dev_rdata = readReg(m, m->readAddr);
        m->readPending = 0;
    }

    if (in->dev_valid != 0) {
        out->dev_ready = 1;
        if (in->dev_write != 0) {
            writeReg(m, in->dev_addr, in->dev_wdata);
        } else {
            m->readPending = 1;
            m->readAddr = in->dev_addr;
        }
    }

    if (m->busyCycles > 0) {
        if (--m->busyCycles == 0) {
            for (uint32_t i = 0; i < kNumInputs; ++i) {
                m->kernel.v[kInputNode[i]] = m->inputs[i] & kInputMask[i];
            }
            m->kernel.eval();
            for (uint32_t i = 0; i < kNumOutputs; ++i) {
                m->outputs[i] = m->kernel.v[kOutputNode[i]];
            }
            m->done = 1;
        }
    }

    out->irq = m->done ? 1 : 0;
    out->done = m->done ? 1 : 0;
    /* Quiescent whenever the compute pipeline is drained and no CSB read
     * awaits its reply beat: with stable inputs nothing changes. Compiled
     * models never trace, so there is no capture clause. */
    out->idle_hint = (m->busyCycles == 0 && !m->readPending) ? 1 : 0;
}

int apiTraceStart(void*, const char*) { return 1; /* no waveform support */ }
void apiTraceStop(void*) {}

const G5rRtlModelApi kModelApi = {
    G5R_RTL_ABI_VERSION,
)";
    os << "    " << cstr(opts.modelName) << ",\n";
    os << R"(    apiCreate, apiDestroy, apiReset, apiTick,
    apiTraceStart, apiTraceStop,
};

}  // namespace

extern "C" const G5rRtlModelApi* g5r_rtl_get_api(void) { return &kModelApi; }
extern "C" const G5rNetlistKernelApi* g5r_netlist_kernel_get_api(void) {
    return &kKernelApi;
}
)";

    if (statsOut != nullptr) *statsOut = stats;
    return os.str();
}

std::string emitCompiledModelFromSource(std::string_view source,
                                        const CodegenOptions& opts,
                                        CodegenStats* stats) {
    const Netlist netlist{source};  // Strict elaboration; throws NetlistError.
    return emitCompiledModel(netlist, opts, stats);
}

}  // namespace g5r::rtl::codegen
