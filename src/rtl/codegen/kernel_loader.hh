// dlopen RAII handle for the raw-kernel face of a compiled netlist library.
//
// SharedLibModel (bridge/rtl_model.hh) loads the simulator-facing
// G5rRtlModelApi table; this loader resolves the *second* exported symbol,
// the G5rNetlistKernelApi of netlist_kernel.h, giving conformance tests and
// benchmarks direct set-input / eval / get-output access to the generated
// evaluation code.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "rtl/codegen/netlist_kernel.h"

namespace g5r::rtl::codegen {

class CompiledKernel {
public:
    /// dlopen @p soPath and instantiate one kernel. Returns nullptr (and
    /// fills @p error when non-null) on a missing library/symbol, an ABI
    /// mismatch, or a failed create().
    static std::unique_ptr<CompiledKernel> load(const std::string& soPath,
                                                std::string* error = nullptr);
    ~CompiledKernel();
    CompiledKernel(const CompiledKernel&) = delete;
    CompiledKernel& operator=(const CompiledKernel&) = delete;

    const char* name() const { return api_->name; }
    std::uint32_t numInputs() const { return api_->num_inputs; }
    std::uint32_t numOutputs() const { return api_->num_outputs; }
    std::string inputName(std::uint32_t i) const { return api_->input_names[i]; }
    unsigned inputWidth(std::uint32_t i) const { return api_->input_widths[i]; }
    std::string outputName(std::uint32_t i) const { return api_->output_names[i]; }
    unsigned outputWidth(std::uint32_t i) const { return api_->output_widths[i]; }

    void reset() { api_->reset(instance_); }
    void setInput(std::uint32_t index, std::uint64_t value) {
        api_->set_input(instance_, index, value);
    }
    void eval() { api_->eval(instance_); }
    void tick() { api_->tick(instance_); }
    std::uint64_t output(std::uint32_t index) const {
        return api_->get_output(instance_, index);
    }

    /// Output index of @p alias, or -1 when the library exports no such net.
    int outputIndex(const std::string& alias) const;

private:
    CompiledKernel(void* dlHandle, const G5rNetlistKernelApi* api, void* instance)
        : dlHandle_(dlHandle), api_(api), instance_(instance) {}

    void* dlHandle_;
    const G5rNetlistKernelApi* api_;
    void* instance_;
};

}  // namespace g5r::rtl::codegen
