#include "rtl/kernel.hh"

namespace g5r::rtl {

RegBase::RegBase(Module& owner, std::string regName, unsigned widthBits)
    : name_(std::move(regName)), width_(widthBits) {
    // Zero-width registers are accepted here and rejected by the static
    // analysis pass instead (G5R-KRNL-ZERO-WIDTH), so lint can report every
    // problem in a design at once rather than aborting on the first.
    simAssert(widthBits <= 64, "register wider than 64 bits");
    owner.registers_.push_back(this);
}

Module::Module(std::string moduleName, Module* parent) : name_(std::move(moduleName)) {
    if (parent != nullptr) parent->children_.push_back(this);
}

void Module::evalComb() {}

void Module::evalSubtree() {
    // Hold-by-default: every register's d starts from q, so evalComb() only
    // has to write the registers it actually changes this cycle.
    for (RegBase* reg : registers_) reg->holdDefault();
    evalComb();
    for (Module* child : children_) child->evalSubtree();
}

void Module::latchSubtree() {
    for (RegBase* reg : registers_) reg->latch();
    for (Module* child : children_) child->latchSubtree();
}

void Module::tick() {
    evalSubtree();
    latchSubtree();
}

void Module::beginCycle() {
    for (RegBase* reg : registers_) reg->holdDefault();
    for (Module* child : children_) child->beginCycle();
}

void Module::commitCycle() { latchSubtree(); }

void Module::reset() {
    for (RegBase* reg : registers_) reg->resetState();
    for (Module* child : children_) child->reset();
}

}  // namespace g5r::rtl
