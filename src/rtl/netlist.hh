// Structural netlist interpreter: the GHDL toolflow stand-in.
//
// GHDL compiles VHDL into an executable model behind the same wrapper ABI as
// Verilator's C++. Here, "VHDL" designs are expressed as word-level
// structural netlists in a small textual format, elaborated and interpreted
// by this class — a second, independent path from HDL-ish source to a
// tick-able model, exactly where GHDL sits in the paper's Figure 1.
//
// Format (one statement per line, '#' comments):
//   input  <name> [width]          -- external input net
//   output <name> <src>            -- external output alias
//   const  <name> <value> [width]  -- literal
//   not    <name> <a> [width]      -- bitwise ops
//   and|or|xor <name> <a> <b> [width]
//   add|sub <name> <a> <b> [width]
//   lt|ltu|eq <name> <a> <b>       -- comparisons (1-bit result); lt is
//                                     signed: operands are sign-extended
//                                     from their declared net widths
//   mux    <name> <sel> <a> <b> [width]
//   reg    <name> <next> [init] [width]  -- D flip-flop, latched by tick()
//
// Nets are up to 64 bits wide; values are masked to the net's width.
//
// Elaboration is the strict path over the tolerant parser in
// rtl/netlist_graph.hh: the source is parsed into a NetlistGraph, the
// static-analysis passes in src/lint run over it, and any error-severity
// finding (syntax, undriven net, multiple drivers, combinational loop —
// with the full cycle path in the message) aborts construction with a
// NetlistError carrying the formatted diagnostics.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "rtl/analysis/levelize.hh"
#include "rtl/netlist_graph.hh"

namespace g5r::rtl {

class NetlistError : public std::runtime_error {
public:
    explicit NetlistError(const std::string& what) : std::runtime_error(what) {}
};

/// How eval() propagates combinational logic. Both modes produce identical
/// values on every net after every eval()/tick() — the flight-recorder
/// identity tests in tests/bridge enforce this byte-for-byte.
enum class EvalMode {
    kDirtyBit,   ///< Activity-driven: recompute only cones whose sources changed.
    kLevelized,  ///< Full recompute in the canonical level-major schedule.
};

class Netlist {
public:
    /// Parse and elaborate; throws NetlistError on syntax errors,
    /// undefined nets, duplicate definitions, or combinational cycles.
    explicit Netlist(std::string_view source);

    // --- external interface -------------------------------------------------
    void setInput(const std::string& name, std::uint64_t value);
    std::uint64_t output(const std::string& name) const;

    /// Propagate combinational logic from inputs/register outputs.
    /// Dispatches on evalMode(): activity-driven dirty-bit propagation by
    /// default, or a full level-ordered recompute (evalLevelized()).
    void eval();

    /// Full recompute in the canonical level-major schedule from
    /// rtl::analysis::levelize(). Slower per call than the dirty-bit path
    /// but branch-free per node and trivially parallelizable per level —
    /// the interpreter-side twin of the planned compiled backend.
    void evalLevelized();

    void setEvalMode(EvalMode mode) { evalMode_ = mode; }
    EvalMode evalMode() const { return evalMode_; }

    /// The canonical level schedule this netlist evaluates with.
    const analysis::LevelSchedule& schedule() const { return sched_; }

    /// Clock edge: eval(), then latch every reg.
    void tick();

    /// Reset registers to their init values.
    void reset();

    std::size_t numNodes() const { return nodes_.size(); }
    std::size_t numRegs() const { return regIndices_.size(); }

    /// Combinational nodes recomputed by the most recent eval() — 0 when
    /// every input and register held its value (testing/profiling).
    std::size_t lastEvalComputedNodes() const { return lastEvalComputed_; }

    /// Value of any named net after the last eval() (testing/debug).
    std::uint64_t probe(const std::string& name) const;

    // --- watch hooks ---------------------------------------------------------
    // Index-based access for per-cycle pollers (trigger-windowed waveform
    // capture, obs/trigger.hh): resolve a name once with probeIndex(), then
    // read by index every cycle without a map lookup.

    /// Node index of a named net, or -1 when unknown (never throws).
    int probeIndex(const std::string& name) const;

    /// Value/width/name of node @p index after the last eval(). Like
    /// probeIndex(), these never throw: the -1 miss sentinel (or any other
    /// out-of-range index) reads as value 0, width 0, empty name.
    std::uint64_t valueAt(int index) const {
        return nodeInRange(index) ? nodes_[static_cast<std::size_t>(index)].value : 0;
    }
    unsigned widthAt(int index) const {
        return nodeInRange(index) ? nodes_[static_cast<std::size_t>(index)].width : 0;
    }
    const std::string& nameAt(int index) const {
        static const std::string kNoName;
        return nodeInRange(index) ? nodes_[static_cast<std::size_t>(index)].name : kNoName;
    }

    /// The parsed IR this netlist was elaborated from (lint re-runs, tools).
    const NetlistGraph& graph() const { return graph_; }

private:
    using Op = NetOp;

    struct Node {
        Op op;
        std::string name;
        unsigned width = 64;
        std::uint64_t value = 0;    ///< Current evaluated value.
        std::uint64_t init = 0;     ///< Reg: reset value. Const: literal.
        std::uint64_t next = 0;     ///< Reg: captured next value.
        int src[3] = {-1, -1, -1};  ///< Operand node indices.
    };

    int indexOf(const std::string& name) const;
    bool nodeInRange(int index) const {
        return index >= 0 && static_cast<std::size_t>(index) < nodes_.size();
    }
    std::uint64_t mask(const Node& n) const {
        return n.width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n.width) - 1);
    }
    std::uint64_t computeValue(const Node& node) const;
    void evalDirtyBit();
    void captureRegNext();

    NetlistGraph graph_;
    std::vector<Node> nodes_;
    std::map<std::string, int, std::less<>> byName_;
    std::map<std::string, int, std::less<>> outputs_;  ///< alias -> node index.
    analysis::LevelSchedule sched_;  ///< Canonical level schedule of graph_.
    std::vector<int> evalOrder_;   ///< == sched_.order (comb nodes, level-major).
    std::vector<int> regIndices_;
    std::vector<std::uint8_t> dirty_;  ///< Per node: value changed since last settle.
    bool anyDirty_ = true;
    EvalMode evalMode_ = EvalMode::kDirtyBit;
    std::size_t lastEvalComputed_ = 0;
};

/// Generate a bitonic sorting-network netlist for @p n power-of-two inputs
/// named in0..in{n-1}, outputs out0..out{n-1} (ascending). This is the
/// "bitonic sorting accelerator written in VHDL" of the paper's GHDL test.
std::string bitonicSorterNetlist(unsigned n, unsigned width = 64);

}  // namespace g5r::rtl
