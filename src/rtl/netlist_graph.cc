#include "rtl/netlist_graph.hh"

#include <optional>
#include <sstream>

namespace g5r::rtl {
namespace {

std::vector<std::string> tokenize(const std::string& line) {
    std::vector<std::string> tokens;
    std::istringstream is(line);
    std::string tok;
    while (is >> tok) {
        if (tok[0] == '#') break;
        tokens.push_back(tok);
    }
    return tokens;
}

std::optional<std::uint64_t> parseValue(const std::string& tok) {
    try {
        std::size_t used = 0;
        const std::uint64_t v = std::stoull(tok, &used, 0);
        if (used != tok.size()) return std::nullopt;
        return v;
    } catch (const std::exception&) {
        return std::nullopt;
    }
}

}  // namespace

std::string_view netOpName(NetOp op) {
    switch (op) {
    case NetOp::kInput: return "input";
    case NetOp::kConst: return "const";
    case NetOp::kNot: return "not";
    case NetOp::kAnd: return "and";
    case NetOp::kOr: return "or";
    case NetOp::kXor: return "xor";
    case NetOp::kAdd: return "add";
    case NetOp::kSub: return "sub";
    case NetOp::kLt: return "lt";
    case NetOp::kLtu: return "ltu";
    case NetOp::kEq: return "eq";
    case NetOp::kMux: return "mux";
    case NetOp::kReg: return "reg";
    }
    return "?";
}

unsigned netOpArity(NetOp op) {
    switch (op) {
    case NetOp::kInput:
    case NetOp::kConst: return 0;
    case NetOp::kNot:
    case NetOp::kReg: return 1;
    case NetOp::kMux: return 3;
    default: return 2;
    }
}

bool netOpIsSource(NetOp op) {
    return op == NetOp::kInput || op == NetOp::kConst || op == NetOp::kReg;
}

NetlistGraph parseNetlistGraph(std::string_view source) {
    NetlistGraph g;

    struct PendingRef {
        int node;  ///< Consuming node index, or -1 for an output alias.
        int slot;  ///< Operand slot, or output index when node == -1.
        std::string name;
        std::size_t line;
    };
    std::vector<PendingRef> refs;  // Resolved after all nodes exist (regs may
                                   // reference nets defined later).

    std::istringstream stream{std::string{source}};
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(stream, line)) {
        ++lineNo;
        const auto tokens = tokenize(line);
        if (tokens.empty()) continue;
        const std::string& kind = tokens[0];

        const auto fail = [&](std::string message) {
            g.errors.push_back(NetlistGraph::ParseError{lineNo, std::move(message)});
        };
        const auto need = [&](std::size_t n) {
            if (tokens.size() >= n + 1) return true;
            fail("too few operands for " + kind);
            return false;
        };
        // Optional trailing width token at position @p at.
        const auto widthAt = [&](std::size_t at, NetlistGraph::Node& node) {
            if (tokens.size() <= at) return true;
            const auto v = parseValue(tokens[at]);
            if (!v || *v > 64) {
                fail("bad width " + tokens[at]);
                return false;
            }
            node.width = static_cast<unsigned>(*v);
            return true;
        };

        if (kind == "output") {
            if (!need(2)) continue;
            g.outputs.push_back(
                NetlistGraph::Output{tokens[1], tokens[2], -1, lineNo});
            refs.push_back(PendingRef{-1, static_cast<int>(g.outputs.size()) - 1,
                                      tokens[2], lineNo});
            continue;
        }

        if (tokens.size() < 2) {
            fail("statement needs a net name");
            continue;
        }

        NetlistGraph::Node node;
        node.name = tokens[1];
        node.line = lineNo;

        const int selfIdx = static_cast<int>(g.nodes.size());
        auto ref = [&](int slot, const std::string& src) {
            refs.push_back(PendingRef{selfIdx, slot, src, lineNo});
        };

        bool ok = true;
        if (kind == "input") {
            node.op = NetOp::kInput;
            ok = widthAt(2, node);
        } else if (kind == "const") {
            node.op = NetOp::kConst;
            if ((ok = need(2))) {
                const auto v = parseValue(tokens[2]);
                if (!v) {
                    fail("bad value " + tokens[2]);
                    ok = false;
                } else {
                    node.init = *v;
                }
                if (ok) ok = widthAt(3, node);
            }
        } else if (kind == "not") {
            node.op = NetOp::kNot;
            if ((ok = need(2))) {
                ref(0, tokens[2]);
                ok = widthAt(3, node);
            }
        } else if (kind == "and" || kind == "or" || kind == "xor" || kind == "add" ||
                   kind == "sub" || kind == "lt" || kind == "ltu" || kind == "eq") {
            node.op = kind == "and"  ? NetOp::kAnd
                      : kind == "or"  ? NetOp::kOr
                      : kind == "xor" ? NetOp::kXor
                      : kind == "add" ? NetOp::kAdd
                      : kind == "sub" ? NetOp::kSub
                      : kind == "lt"  ? NetOp::kLt
                      : kind == "ltu" ? NetOp::kLtu
                                      : NetOp::kEq;
            const bool isCompare =
                node.op == NetOp::kLt || node.op == NetOp::kLtu || node.op == NetOp::kEq;
            if (isCompare) node.width = 1;
            if ((ok = need(3))) {
                ref(0, tokens[2]);
                ref(1, tokens[3]);
                if (!isCompare) ok = widthAt(4, node);
            }
        } else if (kind == "mux") {
            node.op = NetOp::kMux;
            if ((ok = need(4))) {
                ref(0, tokens[2]);
                ref(1, tokens[3]);
                ref(2, tokens[4]);
                ok = widthAt(5, node);
            }
        } else if (kind == "reg") {
            node.op = NetOp::kReg;
            if ((ok = need(2))) {
                ref(0, tokens[2]);
                if (tokens.size() > 3) {
                    const auto v = parseValue(tokens[3]);
                    if (!v) {
                        fail("bad value " + tokens[3]);
                        ok = false;
                    } else {
                        node.init = *v;
                    }
                }
                if (ok) ok = widthAt(4, node);
            }
        } else {
            fail("unknown statement " + kind);
            ok = false;
        }

        if (!ok) {
            // Drop the refs queued for this malformed node.
            while (!refs.empty() && refs.back().node == selfIdx) refs.pop_back();
            continue;
        }

        const auto [it, inserted] = g.byName.emplace(node.name, selfIdx);
        if (!inserted) {
            g.redefinitions.push_back(NetlistGraph::Redefinition{
                node.name, g.nodes[it->second].line, lineNo});
            while (!refs.empty() && refs.back().node == selfIdx) refs.pop_back();
            continue;
        }
        g.nodes.push_back(std::move(node));
    }

    for (const auto& r : refs) {
        const auto it = g.byName.find(r.name);
        if (r.node < 0) {  // Output alias.
            auto& out = g.outputs[r.slot];
            if (it == g.byName.end()) {
                g.unresolved.push_back(
                    NetlistGraph::UnresolvedRef{out.alias, r.name, r.line});
            } else {
                out.target = it->second;
            }
            continue;
        }
        if (it == g.byName.end()) {
            g.unresolved.push_back(NetlistGraph::UnresolvedRef{
                g.nodes[r.node].name, r.name, r.line});
        } else {
            g.nodes[r.node].src[r.slot] = it->second;
        }
    }
    return g;
}

}  // namespace g5r::rtl
