#include "rtl/netlist.hh"

#include <algorithm>
#include <sstream>

#include "lint/netlist_lint.hh"

namespace g5r::rtl {

int Netlist::indexOf(const std::string& name) const {
    const auto it = byName_.find(name);
    if (it == byName_.end()) throw NetlistError("undefined net: " + name);
    return it->second;
}

Netlist::Netlist(std::string_view source) : graph_(parseNetlistGraph(source)) {
    // Strict mode: any error-severity lint finding (syntax, undriven net,
    // multiple drivers, combinational loop) aborts elaboration. Warnings
    // (floating nets, dead cones, width truncation) are tolerated here and
    // surfaced by the g5r-lint tool.
    const lint::Report report = lint::run(graph_);
    if (report.hasErrors()) {
        std::string what;
        for (const auto& d : report.diagnostics()) {
            if (d.severity != lint::Severity::kError) continue;
            if (!what.empty()) what += '\n';
            what += lint::formatDiagnostic(d);
        }
        throw NetlistError(what);
    }

    nodes_.reserve(graph_.nodes.size());
    for (const auto& gn : graph_.nodes) {
        Node node;
        node.op = gn.op;
        node.name = gn.name;
        node.width = gn.width;
        node.init = gn.init;
        for (int s = 0; s < 3; ++s) node.src[s] = gn.src[s];
        if (node.op == Op::kReg) {
            node.value = node.init;
            regIndices_.push_back(static_cast<int>(nodes_.size()));
        }
        // Constants never change; initialize once instead of on every eval().
        if (node.op == Op::kConst) node.value = node.init;
        byName_[node.name] = static_cast<int>(nodes_.size());
        nodes_.push_back(std::move(node));
    }
    for (const auto& out : graph_.outputs) outputs_[out.alias] = out.target;

    // The canonical level schedule is the evaluation order for both modes:
    // the dirty-bit walker only needs *a* topological order, the levelized
    // path wants the level-major one, and sharing it keeps the two modes
    // trivially value-identical. Lint already rejected cycles above.
    sched_ = analysis::levelize(graph_);
    evalOrder_ = sched_.order;
    dirty_.assign(nodes_.size(), 1);  // First eval() computes everything.
}

void Netlist::setInput(const std::string& name, std::uint64_t value) {
    const int idx = indexOf(name);
    Node& node = nodes_[idx];
    if (node.op != Op::kInput) throw NetlistError(name + " is not an input");
    const std::uint64_t masked = value & mask(node);
    if (masked != node.value) {
        node.value = masked;
        dirty_[idx] = 1;
        anyDirty_ = true;
    }
}

std::uint64_t Netlist::output(const std::string& name) const {
    const auto it = outputs_.find(name);
    if (it == outputs_.end()) throw NetlistError("unknown output: " + name);
    return nodes_[it->second].value;
}

std::uint64_t Netlist::probe(const std::string& name) const {
    return nodes_[indexOf(name)].value;
}

int Netlist::probeIndex(const std::string& name) const {
    const auto it = byName_.find(name);
    return it == byName_.end() ? -1 : it->second;
}

std::uint64_t Netlist::computeValue(const Node& node) const {
    const auto a = [&] { return nodes_[node.src[0]].value; };
    const auto b = [&] { return nodes_[node.src[1]].value; };
    // Signed compare honors the *source* nets' declared widths: a 4-bit
    // 0xF is -1, not 15. Zero-extending the masked storage (the old
    // behavior) made lt identical to ltu for every net narrower than
    // 64 bits.
    const auto sext = [&](int operand) {
        const Node& s = nodes_[node.src[operand]];
        if (s.width >= 64) return static_cast<std::int64_t>(s.value);
        const unsigned sh = 64 - s.width;
        return static_cast<std::int64_t>(s.value << sh) >> sh;
    };

    std::uint64_t value = 0;
    switch (node.op) {
    case Op::kNot: value = ~a(); break;
    case Op::kAnd: value = a() & b(); break;
    case Op::kOr: value = a() | b(); break;
    case Op::kXor: value = a() ^ b(); break;
    case Op::kAdd: value = a() + b(); break;
    case Op::kSub: value = a() - b(); break;
    case Op::kLt: value = sext(0) < sext(1) ? 1 : 0; break;
    case Op::kLtu: value = a() < b() ? 1 : 0; break;
    case Op::kEq: value = a() == b() ? 1 : 0; break;
    case Op::kMux:
        value = a() != 0 ? nodes_[node.src[1]].value : nodes_[node.src[2]].value;
        break;
    default: value = node.value; break;
    }
    return value & mask(node);
}

void Netlist::captureRegNext() {
    // Capture reg next-values after combinational settle.
    for (const int r : regIndices_) {
        Node& reg = nodes_[r];
        reg.next = nodes_[reg.src[0]].value & mask(reg);
    }
}

void Netlist::eval() {
    if (evalMode_ == EvalMode::kLevelized) {
        evalLevelized();
    } else {
        evalDirtyBit();
    }
}

void Netlist::evalDirtyBit() {
    lastEvalComputed_ = 0;
    // Quiescent fast path: no input or register changed since the last
    // settle, so every combinational value (and every reg next-value
    // captured then) is still correct.
    if (!anyDirty_) return;

    for (const int i : evalOrder_) {
        Node& node = nodes_[i];
        bool srcChanged = false;
        for (const int s : node.src) {
            if (s >= 0 && dirty_[s] != 0) {
                srcChanged = true;
                break;
            }
        }
        if (!srcChanged) continue;  // Cone is quiet; value still valid.
        ++lastEvalComputed_;

        const std::uint64_t value = computeValue(node);
        // Dirtiness propagates only on an actual change, so a glitch that
        // recomputes to the same value stops the wave there.
        if (value != node.value) {
            node.value = value;
            dirty_[i] = 1;
        }
    }
    captureRegNext();
    std::fill(dirty_.begin(), dirty_.end(), 0);
    anyDirty_ = false;
}

void Netlist::evalLevelized() {
    // Full recompute in the canonical level-major order. Because a node's
    // value is a pure function of its sources and both orders are
    // topological, this settles to exactly the values the dirty-bit path
    // computes — it just never consults (only clears) the dirty state, so
    // the two modes can be switched freely between calls.
    for (const int i : evalOrder_) {
        Node& node = nodes_[i];
        node.value = computeValue(node);
    }
    lastEvalComputed_ = evalOrder_.size();
    captureRegNext();
    std::fill(dirty_.begin(), dirty_.end(), 0);
    anyDirty_ = false;
}

void Netlist::tick() {
    eval();
    for (const int r : regIndices_) {
        Node& reg = nodes_[r];
        if (reg.value != reg.next) {
            reg.value = reg.next;
            dirty_[r] = 1;
            anyDirty_ = true;
        }
    }
}

void Netlist::reset() {
    for (const int r : regIndices_) {
        nodes_[r].value = nodes_[r].init;
        nodes_[r].next = nodes_[r].init;
    }
    // Conservative: recompute the whole netlist on the next eval().
    std::fill(dirty_.begin(), dirty_.end(), 1);
    anyDirty_ = true;
}

// ---------------------------------------------------------------------------

std::string bitonicSorterNetlist(unsigned n, unsigned width) {
    if (n == 0 || (n & (n - 1)) != 0) {
        throw NetlistError("bitonic sorter size must be a power of two");
    }
    std::ostringstream os;
    os << "# bitonic sorting network, n=" << n << " width=" << width << "\n";
    for (unsigned i = 0; i < n; ++i) os << "input in" << i << ' ' << width << "\n";

    // stage wires: w<stage>_<lane>; stage 0 is the inputs.
    std::vector<std::string> cur(n);
    for (unsigned i = 0; i < n; ++i) cur[i] = "in" + std::to_string(i);

    unsigned stage = 0;
    auto compareExchange = [&](unsigned lo, unsigned hi, bool ascending,
                               std::vector<std::string>& next) {
        const std::string a = cur[lo];
        const std::string b = cur[hi];
        const std::string tag = "s" + std::to_string(stage) + "_" + std::to_string(lo);
        // Signed compare: lane data are signed words (the model tests sort
        // negative values), sign-extended from the lane width.
        os << "lt " << tag << "_cmp " << a << ' ' << b << "\n";
        // ascending: lo gets min, hi gets max.
        if (ascending) {
            os << "mux " << tag << "_lo " << tag << "_cmp " << a << ' ' << b << "\n";
            os << "mux " << tag << "_hi " << tag << "_cmp " << b << ' ' << a << "\n";
        } else {
            os << "mux " << tag << "_lo " << tag << "_cmp " << b << ' ' << a << "\n";
            os << "mux " << tag << "_hi " << tag << "_cmp " << a << ' ' << b << "\n";
        }
        next[lo] = tag + "_lo";
        next[hi] = tag + "_hi";
    };

    // Standard bitonic network (ascending overall).
    for (unsigned k = 2; k <= n; k <<= 1) {
        for (unsigned j = k >> 1; j > 0; j >>= 1) {
            std::vector<std::string> next = cur;
            for (unsigned i = 0; i < n; ++i) {
                const unsigned partner = i ^ j;
                if (partner > i) {
                    const bool ascending = (i & k) == 0;
                    compareExchange(i, partner, ascending, next);
                }
            }
            cur = std::move(next);
            ++stage;
        }
    }

    for (unsigned i = 0; i < n; ++i) os << "output out" << i << ' ' << cur[i] << "\n";
    return os.str();
}

}  // namespace g5r::rtl
