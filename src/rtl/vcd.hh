// VCD waveform writer.
//
// Mirrors the Verilator tracing feature the paper relies on for Table 2:
// waveforms can be enabled and disabled at runtime, and tracing every
// register every cycle is deliberately expensive in the same way real VCD
// dumping is (string formatting + file I/O per changed signal).
//
// The writer traces a flat list of VcdSignal descriptors — {scope path,
// name, width, read closure} — so the same machinery covers kernel Modules
// (moduleSignals()), interpreted netlists (netlistSignals()), and the
// trigger-windowed capture in obs/trigger.hh, which replays a pre-trigger
// history ring through dumpCycleValues(). A live writer registers a
// panic-time flush hook so a crash mid-run leaves a readable waveform
// instead of losing the buffered tail.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rtl/kernel.hh"
#include "sim/logging.hh"

namespace g5r::rtl {

class Netlist;

/// One traced signal: where it sits in the hierarchy, how wide it is, and
/// how to read its current value.
struct VcdSignal {
    std::string scope;  ///< Dot-separated module path ("pmu.counter0").
    std::string name;
    unsigned width = 1;
    std::function<std::uint64_t()> read;
};

/// Every register in @p top's subtree, depth-first, scoped by module path.
std::vector<VcdSignal> moduleSignals(const Module& top);

/// Every named net of @p netlist under a single "netlist" scope. Values
/// reflect the most recent eval()/tick(); @p netlist must outlive the use
/// of the returned closures.
std::vector<VcdSignal> netlistSignals(const Netlist& netlist);

class VcdWriter {
public:
    /// Opens @p path and writes the header for @p top's register hierarchy.
    VcdWriter(const std::string& path, const Module& top,
              std::uint64_t timescalePs = 1000);

    /// Opens @p path and writes the header for an explicit signal list.
    VcdWriter(const std::string& path, std::vector<VcdSignal> signals,
              std::uint64_t timescalePs = 1000);
    ~VcdWriter();
    VcdWriter(const VcdWriter&) = delete;
    VcdWriter& operator=(const VcdWriter&) = delete;

    bool ok() const { return out_.good(); }

    /// Dump the state of every traced signal at @p timestamp (in cycles).
    /// Only signals whose value changed since the previous dump are written.
    void dumpCycle(std::uint64_t cycle);

    /// Same, but from caller-supplied values (index-aligned with the signal
    /// list) instead of live reads — how the trigger capture replays its
    /// pre-trigger history ring. Ignores entries beyond the signal count.
    void dumpCycleValues(std::uint64_t cycle, const std::vector<std::uint64_t>& values);

    /// Runtime enable/disable (the Verilator feature Table 2 measures).
    void setEnabled(bool enabled) { enabled_ = enabled; }
    bool enabled() const { return enabled_; }

    /// Push buffered output to the OS. Also runs on panic() via a hook
    /// registered for the writer's lifetime.
    void flush();

    std::size_t numSignals() const { return signals_.size(); }
    std::uint64_t bytesWritten() const { return bytesWritten_; }

private:
    struct TracedSignal {
        VcdSignal sig;
        std::string id;  ///< Short VCD identifier code.
        std::uint64_t lastValue = 0;
        bool everDumped = false;
    };

    void init(std::uint64_t timescalePs);
    void writeHeader(std::uint64_t timescalePs);
    static std::string idCode(std::size_t index);
    void emitValue(const TracedSignal& sig, std::uint64_t value);
    void beginTimestamp(std::uint64_t cycle);
    void emitChanged(std::size_t index, std::uint64_t value);

    std::ofstream out_;
    std::vector<TracedSignal> signals_;
    bool enabled_ = true;
    bool headerDone_ = false;
    std::uint64_t bytesWritten_ = 0;
    std::unique_ptr<PanicHookScope> panicHook_;
};

}  // namespace g5r::rtl
