// VCD waveform writer.
//
// Mirrors the Verilator tracing feature the paper relies on for Table 2:
// waveforms can be enabled and disabled at runtime, and tracing every
// register every cycle is deliberately expensive in the same way real VCD
// dumping is (string formatting + file I/O per changed signal).
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "rtl/kernel.hh"

namespace g5r::rtl {

class VcdWriter {
public:
    /// Opens @p path and writes the header for @p top's register hierarchy.
    VcdWriter(const std::string& path, const Module& top,
              std::uint64_t timescalePs = 1000);
    ~VcdWriter();
    VcdWriter(const VcdWriter&) = delete;
    VcdWriter& operator=(const VcdWriter&) = delete;

    bool ok() const { return out_.good(); }

    /// Dump the state of every traced signal at @p timestamp (in cycles).
    /// Only signals whose value changed since the previous dump are written.
    void dumpCycle(std::uint64_t cycle);

    /// Runtime enable/disable (the Verilator feature Table 2 measures).
    void setEnabled(bool enabled) { enabled_ = enabled; }
    bool enabled() const { return enabled_; }

    std::uint64_t bytesWritten() const { return bytesWritten_; }

private:
    struct TracedSignal {
        const RegBase* reg;
        std::string id;            ///< Short VCD identifier code.
        std::uint64_t lastValue;
        bool everDumped;
    };

    void collect(const Module& module);
    void writeHeader(const Module& top, std::uint64_t timescalePs);
    void writeScope(const Module& module);
    static std::string idCode(std::size_t index);
    void emitValue(const TracedSignal& sig, std::uint64_t value);

    std::ofstream out_;
    std::vector<TracedSignal> signals_;
    bool enabled_ = true;
    bool headerDone_ = false;
    std::uint64_t bytesWritten_ = 0;
};

}  // namespace g5r::rtl
