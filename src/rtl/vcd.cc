#include "rtl/vcd.hh"

#include <algorithm>

#include "rtl/netlist.hh"

namespace g5r::rtl {

namespace {

void collectModule(const Module& module, const std::string& scope,
                   std::vector<VcdSignal>& out) {
    for (const RegBase* reg : module.registers()) {
        out.push_back(VcdSignal{scope, reg->name(), reg->width(),
                                [reg] { return reg->valueBits(); }});
    }
    for (const Module* child : module.children()) {
        collectModule(*child, scope + "." + child->name(), out);
    }
}

std::vector<std::string> splitScope(const std::string& scope) {
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= scope.size()) {
        const std::size_t dot = scope.find('.', start);
        const std::size_t end = dot == std::string::npos ? scope.size() : dot;
        if (end > start) parts.push_back(scope.substr(start, end - start));
        if (dot == std::string::npos) break;
        start = dot + 1;
    }
    return parts;
}

}  // namespace

std::vector<VcdSignal> moduleSignals(const Module& top) {
    std::vector<VcdSignal> out;
    collectModule(top, top.name(), out);
    return out;
}

std::vector<VcdSignal> netlistSignals(const Netlist& netlist) {
    std::vector<VcdSignal> out;
    out.reserve(netlist.numNodes());
    for (std::size_t i = 0; i < netlist.numNodes(); ++i) {
        const int idx = static_cast<int>(i);
        out.push_back(VcdSignal{"netlist", netlist.nameAt(idx), netlist.widthAt(idx),
                                [&netlist, idx] { return netlist.valueAt(idx); }});
    }
    return out;
}

VcdWriter::VcdWriter(const std::string& path, const Module& top, std::uint64_t timescalePs)
    : out_(path) {
    if (!out_.good()) return;
    std::vector<VcdSignal> sigs = moduleSignals(top);
    for (std::size_t i = 0; i < sigs.size(); ++i) {
        signals_.push_back(TracedSignal{std::move(sigs[i]), idCode(i)});
    }
    init(timescalePs);
}

VcdWriter::VcdWriter(const std::string& path, std::vector<VcdSignal> signals,
                     std::uint64_t timescalePs)
    : out_(path) {
    if (!out_.good()) return;
    for (std::size_t i = 0; i < signals.size(); ++i) {
        signals_.push_back(TracedSignal{std::move(signals[i]), idCode(i)});
    }
    init(timescalePs);
}

VcdWriter::~VcdWriter() = default;

void VcdWriter::init(std::uint64_t timescalePs) {
    writeHeader(timescalePs);
    // A mid-run panic must not lose the buffered waveform tail — the crash
    // window is exactly when the waveform matters most.
    panicHook_ = std::make_unique<PanicHookScope>([this] { flush(); });
}

void VcdWriter::flush() {
    if (out_.is_open()) out_.flush();
}

std::string VcdWriter::idCode(std::size_t index) {
    // Printable identifier characters per the VCD spec: '!' (33) to '~' (126).
    std::string code;
    do {
        code.push_back(static_cast<char>('!' + index % 94));
        index /= 94;
    } while (index > 0);
    return code;
}

void VcdWriter::writeHeader(std::uint64_t timescalePs) {
    out_ << "$date gem5+rtl reproduction $end\n"
         << "$version g5r rtl kernel $end\n"
         << "$timescale " << timescalePs << "ps $end\n";
    // Emit $scope/$upscope transitions between consecutive signals' scope
    // paths; signal order therefore determines the hierarchy (depth-first
    // for moduleSignals(), flat for netlists).
    std::vector<std::string> stack;
    for (const TracedSignal& sig : signals_) {
        const std::vector<std::string> parts = splitScope(sig.sig.scope);
        std::size_t common = 0;
        while (common < stack.size() && common < parts.size() &&
               stack[common] == parts[common]) {
            ++common;
        }
        while (stack.size() > common) {
            out_ << "$upscope $end\n";
            stack.pop_back();
        }
        while (stack.size() < parts.size()) {
            out_ << "$scope module " << parts[stack.size()] << " $end\n";
            stack.push_back(parts[stack.size()]);
        }
        out_ << "$var reg " << sig.sig.width << ' ' << sig.id << ' ' << sig.sig.name
             << " $end\n";
    }
    while (!stack.empty()) {
        out_ << "$upscope $end\n";
        stack.pop_back();
    }
    out_ << "$enddefinitions $end\n";
    headerDone_ = true;
}

void VcdWriter::emitValue(const TracedSignal& sig, std::uint64_t value) {
    if (sig.sig.width == 1) {
        out_ << (value & 1) << sig.id << '\n';
        bytesWritten_ += sig.id.size() + 2;
        return;
    }
    std::string bits;
    bits.reserve(sig.sig.width);
    for (int b = static_cast<int>(sig.sig.width) - 1; b >= 0; --b) {
        bits.push_back((value >> b) & 1 ? '1' : '0');
    }
    out_ << 'b' << bits << ' ' << sig.id << '\n';
    bytesWritten_ += bits.size() + sig.id.size() + 3;
}

void VcdWriter::beginTimestamp(std::uint64_t cycle) {
    out_ << '#' << cycle << '\n';
    bytesWritten_ += 8;
}

void VcdWriter::emitChanged(std::size_t index, std::uint64_t value) {
    TracedSignal& sig = signals_[index];
    if (sig.everDumped && value == sig.lastValue) return;
    emitValue(sig, value);
    sig.lastValue = value;
    sig.everDumped = true;
}

void VcdWriter::dumpCycle(std::uint64_t cycle) {
    if (!enabled_ || !out_.good()) return;
    beginTimestamp(cycle);
    for (std::size_t i = 0; i < signals_.size(); ++i) {
        emitChanged(i, signals_[i].sig.read());
    }
}

void VcdWriter::dumpCycleValues(std::uint64_t cycle, const std::vector<std::uint64_t>& values) {
    if (!enabled_ || !out_.good()) return;
    beginTimestamp(cycle);
    const std::size_t n = std::min(values.size(), signals_.size());
    for (std::size_t i = 0; i < n; ++i) emitChanged(i, values[i]);
}

}  // namespace g5r::rtl
