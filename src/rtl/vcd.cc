#include "rtl/vcd.hh"

namespace g5r::rtl {

VcdWriter::VcdWriter(const std::string& path, const Module& top, std::uint64_t timescalePs)
    : out_(path) {
    if (!out_.good()) return;
    collect(top);
    writeHeader(top, timescalePs);
}

VcdWriter::~VcdWriter() = default;

void VcdWriter::collect(const Module& module) {
    for (const RegBase* reg : module.registers()) {
        signals_.push_back(TracedSignal{reg, idCode(signals_.size()), 0, false});
    }
    for (const Module* child : module.children()) collect(*child);
}

std::string VcdWriter::idCode(std::size_t index) {
    // Printable identifier characters per the VCD spec: '!' (33) to '~' (126).
    std::string code;
    do {
        code.push_back(static_cast<char>('!' + index % 94));
        index /= 94;
    } while (index > 0);
    return code;
}

void VcdWriter::writeScope(const Module& module) {
    out_ << "$scope module " << module.name() << " $end\n";
    // Identifier codes are assigned in collect() order, which matches this
    // traversal; recompute the running index via a static-free approach:
    for (const auto& sig : signals_) {
        // Emit only the signals owned directly by this module.
        for (const RegBase* reg : module.registers()) {
            if (sig.reg == reg) {
                out_ << "$var reg " << reg->width() << ' ' << sig.id << ' '
                     << reg->name() << " $end\n";
            }
        }
    }
    for (const Module* child : module.children()) writeScope(*child);
    out_ << "$upscope $end\n";
}

void VcdWriter::writeHeader(const Module& top, std::uint64_t timescalePs) {
    out_ << "$date gem5+rtl reproduction $end\n"
         << "$version g5r rtl kernel $end\n"
         << "$timescale " << timescalePs << "ps $end\n";
    writeScope(top);
    out_ << "$enddefinitions $end\n";
    headerDone_ = true;
}

void VcdWriter::emitValue(const TracedSignal& sig, std::uint64_t value) {
    if (sig.reg->width() == 1) {
        out_ << (value & 1) << sig.id << '\n';
        bytesWritten_ += sig.id.size() + 2;
        return;
    }
    std::string bits;
    bits.reserve(sig.reg->width());
    for (int b = static_cast<int>(sig.reg->width()) - 1; b >= 0; --b) {
        bits.push_back((value >> b) & 1 ? '1' : '0');
    }
    out_ << 'b' << bits << ' ' << sig.id << '\n';
    bytesWritten_ += bits.size() + sig.id.size() + 3;
}

void VcdWriter::dumpCycle(std::uint64_t cycle) {
    if (!enabled_ || !out_.good()) return;
    out_ << '#' << cycle << '\n';
    bytesWritten_ += 8;
    for (auto& sig : signals_) {
        const std::uint64_t value = sig.reg->valueBits();
        if (!sig.everDumped || value != sig.lastValue) {
            emitValue(sig, value);
            sig.lastValue = value;
            sig.everDumped = true;
        }
    }
}

}  // namespace g5r::rtl
