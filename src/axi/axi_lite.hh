// AXI4-Lite bus-functional model.
//
// The paper's PMU "is interfaced through the Arm AXI protocol for reading
// and writing the counters and its configuration". This header provides the
// five AXI-Lite channels (AW, W, B, AR, R) with per-cycle valid/ready
// handshakes and a slave-side sequencer that model wrappers place between
// the bridge's device channel and their register file — so the register
// interface of a model really is an AXI endpoint, not an ad-hoc decode.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

namespace g5r::axi {

/// Write/read address channel beat (AW / AR).
struct AddrBeat {
    bool valid = false;
    std::uint64_t addr = 0;
};

/// Write data channel beat (W).
struct WriteBeat {
    bool valid = false;
    std::uint64_t data = 0;
    std::uint8_t strb = 0xFF;  ///< Byte-lane strobes.
};

/// Write response channel beat (B).
struct WriteResp {
    bool valid = false;
    std::uint8_t resp = 0;  ///< 0 = OKAY.
};

/// Read data channel beat (R).
struct ReadBeat {
    bool valid = false;
    std::uint64_t data = 0;
    std::uint8_t resp = 0;
};

/// A single-outstanding AXI4-Lite slave endpoint.
///
/// Drive cycle() once per clock with the master-side beats; the returned
/// ready/response signals follow AXI rules: AW and W may arrive in either
/// order or together; the write executes when both have been accepted and B
/// is held valid until bready; reads execute on AR acceptance with R data
/// valid the next cycle and held until rready.
class AxiLiteSlave {
public:
    using ReadFn = std::function<std::uint64_t(std::uint64_t addr)>;
    using WriteFn = std::function<void(std::uint64_t addr, std::uint64_t data,
                                       std::uint8_t strb)>;

    struct Inputs {
        AddrBeat aw;
        WriteBeat w;
        bool bready = true;
        AddrBeat ar;
        bool rready = true;
    };

    struct Outputs {
        bool awready = false;
        bool wready = false;
        WriteResp b;
        bool arready = false;
        ReadBeat r;
    };

    AxiLiteSlave(ReadFn readFn, WriteFn writeFn)
        : readFn_(std::move(readFn)), writeFn_(std::move(writeFn)) {}

    /// Advance one clock cycle.
    Outputs cycle(const Inputs& in) {
        Outputs out;

        // Response holds: B/R stay valid until the master is ready.
        if (bPending_) {
            out.b.valid = true;
            if (in.bready) bPending_ = false;
        }
        if (rPending_.has_value()) {
            out.r.valid = true;
            out.r.data = *rPending_;
            if (in.rready) rPending_.reset();
        }

        // Write address/data acceptance (either order, single outstanding).
        if (in.aw.valid && !awHeld_.has_value() && !bPending_) {
            awHeld_ = in.aw.addr;
            out.awready = true;
        }
        if (in.w.valid && !wHeld_.has_value() && !bPending_) {
            wHeld_ = in.w;
            out.wready = true;
        }
        if (awHeld_.has_value() && wHeld_.has_value()) {
            writeFn_(*awHeld_, wHeld_->data, wHeld_->strb);
            awHeld_.reset();
            wHeld_.reset();
            bPending_ = true;
        }

        // Read address acceptance: data appears on the next cycle.
        if (in.ar.valid && !rPending_.has_value() && !arHeld_.has_value()) {
            arHeld_ = in.ar.addr;
            out.arready = true;
        } else if (arHeld_.has_value()) {
            rPending_ = readFn_(*arHeld_);
            arHeld_.reset();
        }

        return out;
    }

    void reset() {
        awHeld_.reset();
        wHeld_.reset();
        arHeld_.reset();
        rPending_.reset();
        bPending_ = false;
    }

    bool idle() const {
        return !awHeld_ && !wHeld_ && !arHeld_ && !rPending_ && !bPending_;
    }

private:
    ReadFn readFn_;
    WriteFn writeFn_;
    std::optional<std::uint64_t> awHeld_;
    std::optional<WriteBeat> wHeld_;
    std::optional<std::uint64_t> arHeld_;
    std::optional<std::uint64_t> rPending_;
    bool bPending_ = false;
};

}  // namespace g5r::axi
