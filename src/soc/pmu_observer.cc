#include "soc/pmu_observer.hh"

#include "sim/hw_events.hh"

namespace g5r {

namespace {

/// PMU register offsets fetched per interrupt, in order.
constexpr std::array<std::uint64_t, PmuObserver::kNumReads> kReadOffsets = {
    models::PmuDesign::kCounterBase + 8 * 0,  // Commit lane 0.
    models::PmuDesign::kCounterBase + 8 * 1,
    models::PmuDesign::kCounterBase + 8 * 2,
    models::PmuDesign::kCounterBase + 8 * 3,
    models::PmuDesign::kCounterBase + 8 * 4,  // L1D miss line.
    models::PmuDesign::kCounterBase + 8 * 5,  // Cycle line.
};

}  // namespace

PmuObserver::PmuObserver(Simulation& sim, std::string objName, const Params& params,
                         std::function<std::array<double, 3>()> gem5Probe)
    : ClockedObject(sim, std::move(objName), params.clockPeriod),
      params_(params),
      port_(name() + ".port", *this),
      gem5Probe_(std::move(gem5Probe)),
      kickEvent_([this] { issueNext(); }, name() + ".kick"),
      interrupts_(stats_.scalar("interrupts", "PMU interrupts observed")),
      readouts_(stats_.scalar("readouts", "complete counter readouts")) {
    scriptRequest_ = sim.allocRequestId();
}

std::vector<PmuObserver::RegWrite> PmuObserver::fig5Config(std::uint64_t intervalCycles) {
    using models::PmuDesign;
    const std::uint64_t enableMask = 0b1111 |                     // Commit lanes.
                                     (1u << HwEventBus::kL1dMiss) |
                                     (1u << HwEventBus::kCycle);
    return {
        {PmuDesign::kEnableReg, enableMask},
        {PmuDesign::kThresholdSelReg, HwEventBus::kCycle},
        {PmuDesign::kThresholdReg, intervalCycles},
    };
}

void PmuObserver::startup() {
    if (SimObserver* obs = threadObserver()) {
        obs->requestBegin(scriptRequest_, 0, "pmuScript", curTick());
    }
    if (!configWrites_.empty()) {
        configuring_ = true;
        nextConfig_ = 0;
        eventQueue().schedule(kickEvent_, clockEdge(1));
    }
}

void PmuObserver::onIrq(bool level) {
    if (!level) return;
    ++interrupts_;
    if (readoutActive_ || configuring_) {
        irqPendingDuringReadout_ = true;
        return;
    }
    startReadout();
}

void PmuObserver::startReadout() {
    readoutActive_ = true;
    nextRead_ = 0;
    current_ = Sample{};
    current_.irqTick = curTick();
    // Each interrupt readout is its own child request (allocated whether or
    // not anyone listens, to keep the ID stream config-deterministic).
    readoutRequest_ = sim_.allocRequestId();
    if (SimObserver* obs = threadObserver()) {
        obs->requestBegin(readoutRequest_, scriptRequest_, "pmuReadout", curTick());
    }
    // Snapshot the simulator's own statistics at the interrupt instant —
    // the "gem5 statistics" curve of Fig. 5.
    if (gem5Probe_) {
        const auto probe = gem5Probe_();
        current_.gem5Insts = probe[0];
        current_.gem5Cycles = probe[1];
        current_.gem5L1dMisses = probe[2];
    }
    if (!kickEvent_.scheduled()) eventQueue().schedule(kickEvent_, clockEdge(1));
}

void PmuObserver::issueNext() {
    if (pendingSend_ != nullptr) {
        trySend();
        return;
    }
    if (configuring_) {
        if (nextConfig_ < configWrites_.size()) {
            auto pkt = makeWritePacket(params_.pmuBase + configWrites_[nextConfig_].addr, 8);
            pkt->set<std::uint64_t>(configWrites_[nextConfig_].data);
            pkt->setReqId(scriptRequest_);
            pendingSend_ = std::move(pkt);
            trySend();
        }
        return;
    }
    if (nextRead_ < kNumReads) {
        pendingSend_ = makeReadPacket(params_.pmuBase + kReadOffsets[nextRead_], 8);
        pendingSend_->setReqId(readoutRequest_);
        trySend();
        return;
    }
    // All counters read: clear the interrupt.
    auto clear = makeWritePacket(params_.pmuBase + models::PmuDesign::kIrqStatusReg, 8);
    clear->set<std::uint64_t>(0);
    clear->setReqId(readoutRequest_);
    pendingSend_ = std::move(clear);
    trySend();
}

void PmuObserver::trySend() {
    if (pendingSend_ == nullptr) return;
    if (!port_.sendTimingReq(pendingSend_)) return;  // recvReqRetry resends.
}

bool PmuObserver::handleResp(PacketPtr& pkt) {
    if (configuring_) {
        pkt.reset();
        if (++nextConfig_ >= configWrites_.size()) {
            configuring_ = false;
            if (irqPendingDuringReadout_) {
                irqPendingDuringReadout_ = false;
                startReadout();
            }
        } else if (!kickEvent_.scheduled()) {
            eventQueue().schedule(kickEvent_, clockEdge(1));
        }
        return true;
    }
    if (pkt->cmd() == MemCmd::kReadResp) {
        current_.counters[nextRead_] = pkt->get<std::uint64_t>();
        ++nextRead_;
        pkt.reset();
        if (!kickEvent_.scheduled()) eventQueue().schedule(kickEvent_, clockEdge(1));
        return true;
    }
    // The IRQ-clear write completed: the sample is done. The whole readout is
    // interrupt-handler work running on the host, so it bills as hostLoad.
    pkt.reset();
    if (SimObserver* obs = threadObserver()) {
        obs->requestSpan(readoutRequest_, ReqStage::kHostLoad, current_.irqTick, curTick());
        obs->requestEnd(readoutRequest_, curTick());
    }
    samples_.push_back(current_);
    ++readouts_;
    readoutActive_ = false;
    if (irqPendingDuringReadout_) {
        irqPendingDuringReadout_ = false;
        startReadout();
    }
    return true;
}

}  // namespace g5r
