// PmuObserver: the interrupt-service side of the Fig. 5 experiment.
//
// The paper configures the PMU to interrupt every 10,000 cycles and dumps
// both the PMU counters and gem5's own statistics at each interrupt,
// plotting the two IPC curves on top of each other. This object plays the
// interrupt handler: on the PMU's IRQ it reads the commit-lane, L1D-miss and
// cycle counters over the timing interconnect, snapshots the simulator
// statistics at the IRQ instant, clears the interrupt, and appends a sample.
//
// The small skew between the snapshot (instantaneous) and the counter reads
// (which take real bus time while the PMU keeps counting) plus the PMU's
// capture-delay and reset-loss artefacts are exactly the "minor differences"
// the paper reports; samples() exposes everything needed to quantify them.
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "mem/port.hh"
#include "models/pmu/pmu_design.hh"
#include "sim/clocked.hh"
#include "sim/event.hh"
#include "sim/simulation.hh"

namespace g5r {

class PmuObserver : public ClockedObject {
public:
    /// Counters fetched at every interrupt, in read order.
    static constexpr unsigned kNumReads = 6;  // Commit lanes 0..3, L1D miss, cycles.

    struct Sample {
        Tick irqTick = 0;
        std::array<std::uint64_t, kNumReads> counters{};  ///< Raw PMU values.
        double gem5Insts = 0;    ///< Simulator stats at the IRQ instant.
        double gem5Cycles = 0;
        double gem5L1dMisses = 0;

        std::uint64_t pmuCommits() const {
            return counters[0] + counters[1] + counters[2] + counters[3];
        }
        std::uint64_t pmuL1dMisses() const { return counters[4]; }
    };

    struct Params {
        Addr pmuBase = 0;
        Tick clockPeriod = periodFromGHz(2);
    };

    /// @p gem5Probe returns {committed insts, cycles, l1d misses} at call time.
    PmuObserver(Simulation& sim, std::string name, const Params& params,
                std::function<std::array<double, 3>()> gem5Probe);

    RequestPort& port() { return port_; }

    /// Wire this to the PMU RTLObject's IRQ callback.
    void onIrq(bool level);

    const std::vector<Sample>& samples() const { return samples_; }

    struct RegWrite {
        std::uint64_t addr;  ///< Offset from pmuBase.
        std::uint64_t data;
    };

    /// Register writes performed over the bus at startup, before sampling —
    /// the "configure the PMU by enabling events and thresholds" step.
    void setConfigWrites(std::vector<RegWrite> writes) { configWrites_ = std::move(writes); }

    void startup() override;

    /// Convenience: the Fig. 5 configuration — enable commit lanes 0-3, the
    /// L1D-miss line and the cycle line; interrupt every @p intervalCycles
    /// cycles on the cycle counter.
    static std::vector<RegWrite> fig5Config(std::uint64_t intervalCycles = 10'000);

private:
    class Port final : public RequestPort {
    public:
        Port(std::string n, PmuObserver& o) : RequestPort(std::move(n)), owner_(o) {}
        bool recvTimingResp(PacketPtr& pkt) override { return owner_.handleResp(pkt); }
        void recvReqRetry() override { owner_.trySend(); }

    private:
        PmuObserver& owner_;
    };

    void startReadout();
    void issueNext();
    void trySend();
    bool handleResp(PacketPtr& pkt);

    Params params_;
    Port port_;
    std::function<std::array<double, 3>()> gem5Probe_;
    CallbackEvent kickEvent_;

    std::vector<RegWrite> configWrites_;
    /// Causal tracing: the whole script is one root request; each interrupt
    /// readout is a child whose hostLoad span covers IRQ to sample-complete.
    ReqId scriptRequest_ = 0;
    ReqId readoutRequest_ = 0;
    std::size_t nextConfig_ = 0;
    bool configuring_ = false;
    bool readoutActive_ = false;
    bool irqPendingDuringReadout_ = false;
    unsigned nextRead_ = 0;
    PacketPtr pendingSend_;
    Sample current_;
    std::vector<Sample> samples_;

    stats::Scalar& interrupts_;
    stats::Scalar& readouts_;
};

}  // namespace g5r
