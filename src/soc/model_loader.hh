// Locating and loading the RTL model shared libraries at runtime.
//
// Models live in <build>/models (the path is baked in at compile time and
// can be overridden with the G5R_MODEL_DIR environment variable), and are
// loaded with dlopen through SharedLibModel — the paper's deployment, where
// the simulator binary has no link-time knowledge of any model.
#pragma once

#include <cstdlib>
#include <memory>
#include <string>

#include "bridge/rtl_model.hh"

#ifndef G5R_MODEL_DIR
#define G5R_MODEL_DIR "./models"
#endif

namespace g5r {

inline std::string rtlModelDir() {
    if (const char* env = std::getenv("G5R_MODEL_DIR")) return env;
    return G5R_MODEL_DIR;
}

inline std::string rtlModelPath(const std::string& shortName) {
    return rtlModelDir() + "/lib" + shortName + "_rtl.so";
}

/// Load "pmu", "nvdla" or "bitonic" (or any model following the naming
/// convention) from the model directory.
inline std::unique_ptr<RtlModel> loadRtlModel(const std::string& shortName,
                                              const std::string& config = "") {
    return SharedLibModel::load(rtlModelPath(shortName), config);
}

}  // namespace g5r
