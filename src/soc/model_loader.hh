// Locating and loading the RTL model shared libraries at runtime.
//
// Models live in <build>/models (the path is baked in at compile time and
// can be overridden with the G5R_MODEL_DIR environment variable), and are
// loaded with dlopen through SharedLibModel — the paper's deployment, where
// the simulator binary has no link-time knowledge of any model.
#pragma once

#include <cstdlib>
#include <memory>
#include <string>

#include "bridge/rtl_model.hh"

#ifndef G5R_MODEL_DIR
#define G5R_MODEL_DIR "./models"
#endif

namespace g5r {

inline std::string rtlModelDir() {
    if (const char* env = std::getenv("G5R_MODEL_DIR")) return env;
    return G5R_MODEL_DIR;
}

inline std::string rtlModelPath(const std::string& shortName) {
    return rtlModelDir() + "/lib" + shortName + "_rtl.so";
}

/// Path of a g5r-netlistc compiled model library (lib<name>_c<n>.so).
inline std::string compiledNetlistModelPath(const std::string& shortName,
                                            unsigned n) {
    return rtlModelDir() + "/lib" + shortName + "_c" + std::to_string(n) + ".so";
}

/// Resolve the library for a model + config pair: the interpreted model by
/// default, the netlistc-compiled one when the config carries eval=compiled
/// (the element count follows the same "n=" token the interpreted wrapper
/// parses — default 16, powers of two up to 64).
inline std::string rtlModelPathForConfig(const std::string& shortName,
                                         const std::string& config) {
    const auto evalPos = config.find("eval=");
    if (evalPos == std::string::npos ||
        config.compare(evalPos + 5, 8, "compiled") != 0) {
        return rtlModelPath(shortName);
    }
    unsigned n = 16;
    if (const auto nPos = config.find("n="); nPos != std::string::npos &&
        (nPos == 0 || config[nPos - 1] == ',')) {
        const unsigned parsed = static_cast<unsigned>(
            std::strtoul(config.c_str() + nPos + 2, nullptr, 10));
        if (parsed >= 2 && (parsed & (parsed - 1)) == 0 && parsed <= 64) {
            n = parsed;
        }
    }
    return compiledNetlistModelPath(shortName, n);
}

/// Load "pmu", "nvdla" or "bitonic" (or any model following the naming
/// convention) from the model directory. A config carrying eval=compiled
/// loads the netlistc-built library instead of the interpreted one.
inline std::unique_ptr<RtlModel> loadRtlModel(const std::string& shortName,
                                              const std::string& config = "") {
    return SharedLibModel::load(rtlModelPathForConfig(shortName, config), config);
}

}  // namespace g5r
