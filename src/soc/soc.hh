// Soc: assembles the full Table 1 system and hosts RTL models on it.
//
// Topology (paper Fig. 2):
//
//   core[i] -> L1I/L1D -> L2 --\
//                               >-- system crossbar (NoC) --> LLC bank[0..7]
//   RTLObject cpu-side  <------/        |                          |
//   (CSB windows routed here)           |                      memory bus
//                                       |                          |
//   RTLObject mem-side ----------------------------------------> DRAM
//
// Cores that are not given a program halt immediately. The simulation ends
// when every program-carrying core has exited (or, for accelerator-only
// studies, when the caller's host objects say so).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bridge/rtl_object.hh"
#include "cpu/assembler.hh"
#include "cpu/ooo_core.hh"
#include "lint/diagnostics.hh"
#include "mem/backing_store.hh"
#include "mem/cache/cache.hh"
#include "mem/dma.hh"
#include "mem/dram.hh"
#include "mem/simple_mem.hh"
#include "mem/spm.hh"
#include "mem/xbar.hh"
#include "obs/session.hh"
#include "soc/config.hh"

namespace g5r {

class Soc {
public:
    Soc(Simulation& sim, const SocConfig& config);

    const SocConfig& config() const { return config_; }
    Simulation& simulation() { return sim_; }
    BackingStore& memory() { return store_; }
    HwEventBus& eventBus() { return eventBus_; }

    OooCore& core(unsigned i) { return *cores_.at(i); }
    Cache& l1d(unsigned i) { return *l1d_.at(i); }
    Cache& l1i(unsigned i) { return *l1i_.at(i); }
    Cache& l2(unsigned i) { return *l2_.at(i); }
    Xbar& systemXbar() { return *systemXbar_; }
    Xbar& memBus() { return *memBus_; }

    /// Load an assembled program at @p base and point core @p coreId at it.
    /// Other cores keep their default HALT and exit immediately.
    void loadProgram(unsigned coreId, const isa::Program& program, Addr base = 0);

    /// How an RTL model's memory-side ports are wired.
    enum class MemPorts {
        kNone,            ///< No memory-side connectivity (e.g. the PMU).
        kMainMemory,      ///< Both ports to main memory (the paper's NVDLA setup).
        kWithScratchpad,  ///< Port 0 to main memory; port 1 to a private
                          ///< scratchpad SRAM (the paper's proposed extension).
    };

    /// Attach an RTL model from a shared library (or in-process model).
    /// Returns the RTLObject; its CSB window is deviceRange(index).
    RtlObject& attachRtlModel(const std::string& name, std::unique_ptr<RtlModel> model,
                              const RtlObjectParams& params, MemPorts memPorts,
                              bool wireEventBus);

    /// Backing store of the scratchpad attached to model number @p idx
    /// (panics if that model has none). Preload data here.
    BackingStore& scratchpadStore(unsigned idx);

    /// The SPM / DMA engine of model number @p idx's dmaSpm memory path
    /// (panics if the model was attached on the direct path).
    Spm& spm(unsigned idx);
    DmaEngine& dmaEngine(unsigned idx);

    /// CSB base address of attached model number @p idx.
    Addr deviceBaseOf(unsigned idx) const { return config_.deviceRange(idx).start; }

    /// A spare upstream port on the system crossbar (for host/observer
    /// objects that issue their own transactions).
    ResponsePort& addHostPort(const std::string& name);

    /// Peak DRAM bandwidth (0 for the ideal-memory configuration).
    double memPeakBandwidth() const;

    /// The observability session created from SocConfig::obs (plus the
    /// GEM5RTL_* environment), or nullptr when fully disabled. Callers
    /// finish() it after run() to flush the trace and build the profile.
    obs::ObsSession* observability() { return obs_.get(); }

    /// Static analysis over the assembled interconnect: unbound crossbar
    /// ports, overlapping/shadowed routes, uncovered memory. Runs
    /// automatically (strict: errors panic) at the end of construction when
    /// SocConfig::elaborationLint is set; callers that wire more ports
    /// afterwards (attachRtlModel, addHostPort) can re-run it.
    lint::Report elaborationLint() const;

    unsigned runningCores() const { return runningCores_; }

private:
    void coreExited();

    Simulation& sim_;
    SocConfig config_;
    BackingStore store_;
    HwEventBus eventBus_;

    std::vector<std::unique_ptr<OooCore>> cores_;
    std::vector<std::unique_ptr<Cache>> l1i_;
    std::vector<std::unique_ptr<Cache>> l1d_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::vector<std::unique_ptr<Xbar>> l1Muxes_;  ///< Per-core L1I/L1D -> L2 join.
    std::vector<std::unique_ptr<Cache>> llcBanks_;
    std::unique_ptr<Xbar> systemXbar_;
    std::unique_ptr<Xbar> memBus_;
    std::vector<std::unique_ptr<MultiChannelDram>> dramChannels_;
    std::vector<std::unique_ptr<SimpleMemory>> idealMems_;
    std::vector<std::unique_ptr<RtlObject>> rtlObjects_;
    struct Scratchpad {
        std::unique_ptr<BackingStore> store;
        std::unique_ptr<SimpleMemory> mem;
    };
    std::map<unsigned, Scratchpad> scratchpads_;  ///< Model idx -> SRAM.
    /// dmaSpm memory path (SocConfig::memPath): the model's DBBIF and the
    /// DMA's staging port join at a small crossbar in front of the SPM,
    /// whose fill port (and the DMA's memory port) go to the memory bus.
    struct MemPathObjs {
        std::unique_ptr<Xbar> bus;
        std::unique_ptr<Spm> spm;
        std::unique_ptr<DmaEngine> dma;
    };
    std::map<unsigned, MemPathObjs> memPaths_;  ///< Model idx -> DMA+SPM.

    unsigned runningCores_ = 0;
    unsigned attachedModels_ = 0;

    /// Last member: detaches from the simulation and flushes its trace
    /// before any of the observed objects go away.
    std::unique_ptr<obs::ObsSession> obs_;
};

}  // namespace g5r
