#include "soc/experiments.hh"

#include <cstdlib>
#include <memory>

#include "obs/reqtrace.hh"
#include "soc/model_loader.hh"
#include "soc/nvdla_host.hh"
#include "soc/soc.hh"
#include "soc/spm_prefetcher.hh"

namespace g5r::experiments {

bool fullScaleRequested() {
    const char* env = std::getenv("GEM5RTL_FULL");
    return env != nullptr && env[0] != '0';
}

// ------------------------------------------------------------------ Fig 5 --

PmuRunResult runPmuSortExperiment(const PmuRunConfig& config) {
    Simulation sim;
    SocConfig socCfg = table1Config(config.memTech);
    socCfg.numCores = config.numCores;
    socCfg.obs = config.obs;
    Soc soc{sim, socCfg};

    // Workload: the three sorting kernels with sleeps, on core 0.
    const isa::Program program = workloads::sortBenchmarkProgram(config.layout);
    workloads::populateSortArrays(soc.memory(), config.layout);
    soc.loadProgram(0, program);

    std::unique_ptr<PmuObserver> observer;
    RtlObject* pmu = nullptr;
    if (config.attachPmu) {
        RtlObjectParams rp;
        rp.clockPeriod = socCfg.coreClock;  // Count at core resolution (Fig. 5);
                                            // Table 1's 1 GHz ratio is exercised
                                            // in the overhead study instead.
        rp.gateIdleTicks = config.gateIdleTicks;
        pmu = &soc.attachRtlModel("pmu", loadRtlModel("pmu"), rp, Soc::MemPorts::kNone,
                                  /*wireEventBus=*/true);

        PmuObserver::Params op;
        op.pmuBase = soc.deviceBaseOf(0);
        op.clockPeriod = socCfg.coreClock;
        OooCore& core0 = soc.core(0);
        Cache& l1d0 = soc.l1d(0);
        observer = std::make_unique<PmuObserver>(
            sim, "system.pmu_observer", op, [&core0, &l1d0]() -> std::array<double, 3> {
                const double misses = l1d0.statsGroup().find("misses")->value() +
                                      l1d0.statsGroup().find("mshrHits")->value();
                return {static_cast<double>(core0.committedInstructions()),
                        static_cast<double>(core0.cyclesRetired()), misses};
            });
        if (config.programPmu) {
            observer->setConfigWrites(PmuObserver::fig5Config(config.intervalCycles));
        }
        observer->port().bind(soc.addHostPort("pmu_observer"));
        pmu->setIrqCallback([&obs = *observer](bool level) { obs.onIrq(level); });

        if (!config.waveformPath.empty()) pmu->traceStart(config.waveformPath);
    }

    const RunResult run = sim.run(config.maxTicks);

    PmuRunResult result;
    result.completed = run.cause == ExitCause::kSimExit;
    result.finalTick = run.tick;
    result.committedInsts = soc.core(0).committedInstructions();
    result.cycles = soc.core(0).cyclesRetired();
    result.memLatency = obs::portLatencies(soc.memBus().statsGroup());
    {
        const stats::HistogramData merged =
            obs::mergedPortLatencyHistogram(soc.memBus().statsGroup());
        result.memLatencyP50 = merged.p50();
        result.memLatencyP99 = merged.p99();
    }
    if (obs::ObsSession* obsSession = soc.observability()) {
        obsSession->finish();
        result.profile = obsSession->profileReport();
        if (obsSession->recorder() != nullptr && obsSession->recorder()->ok()) {
            result.recordPath = obsSession->recorder()->path();
        }
        if (obsSession->metrics() != nullptr && obsSession->metrics()->ok()) {
            result.metricsPath = obsSession->metrics()->path();
        }
    }

    if (observer != nullptr) {
        result.rawSamples = observer->samples();
        const auto& samples = result.rawSamples;
        for (std::size_t i = 1; i < samples.size(); ++i) {
            const auto& prev = samples[i - 1];
            const auto& cur = samples[i];
            PmuInterval interval;
            interval.timeMs = ticksToMs(cur.irqTick);
            // PMU counters accumulate; the cycle counter resets each
            // interrupt, so the interval length is the threshold.
            const double pmuDeltaInsts =
                static_cast<double>(cur.pmuCommits() - prev.pmuCommits());
            const double pmuDeltaMisses =
                static_cast<double>(cur.pmuL1dMisses() - prev.pmuL1dMisses());
            const double pmuCyclesInInterval = static_cast<double>(config.intervalCycles);
            interval.pmuIpc = pmuDeltaInsts / pmuCyclesInInterval;
            interval.pmuMpki =
                pmuDeltaInsts > 0 ? 1000.0 * pmuDeltaMisses / pmuDeltaInsts : 0.0;

            const double gem5DeltaInsts = cur.gem5Insts - prev.gem5Insts;
            const double gem5DeltaCycles = cur.gem5Cycles - prev.gem5Cycles;
            const double gem5DeltaMisses = cur.gem5L1dMisses - prev.gem5L1dMisses;
            interval.gem5Ipc =
                gem5DeltaCycles > 0 ? gem5DeltaInsts / gem5DeltaCycles : 0.0;
            interval.gem5Mpki =
                gem5DeltaInsts > 0 ? 1000.0 * gem5DeltaMisses / gem5DeltaInsts : 0.0;

            result.maxAbsIpcError =
                std::max(result.maxAbsIpcError, std::abs(interval.pmuIpc - interval.gem5Ipc));
            result.intervals.push_back(interval);
        }
    }
    return result;
}

// --------------------------------------------------------------- Figs 6/7 --

DseRunResult runNvdlaDse(const DseRunConfig& config) {
    Simulation sim;
    SocConfig socCfg = table1Config(config.memTech);
    socCfg.numCores = config.numCores;
    socCfg.memPath = config.memPath;
    if (config.dmaMaxInflight > 0) socCfg.dmaMaxInflight = config.dmaMaxInflight;
    socCfg.obs = config.obs;
    // Stage blame is part of every DSE result, so request tracing is always
    // on — in-memory ("-": no sidecar) unless the caller already configured
    // it or the GEM5RTL_REQTRACE overlay (applied inside Soc) speaks for
    // itself. The reqtrace-only fast path keeps this inside the <2% budget.
    if (!socCfg.obs.reqtraceEnabled && std::getenv("GEM5RTL_REQTRACE") == nullptr) {
        socCfg.obs.reqtraceEnabled = true;
        socCfg.obs.reqtracePath = "-";
    }
    Soc soc{sim, socCfg};

    const bool dmaSpm = config.memPath == MemPath::kDmaSpm;
    struct Instance {
        models::NvdlaTrace trace;
        RtlObject* rtl = nullptr;
        std::unique_ptr<NvdlaHost> host;
        std::unique_ptr<SpmPrefetcher> prefetcher;
        models::NvdlaPlacement placement;
        Tick doneTick = 0;  ///< Checksum read (direct) or ofmap drained (dmaSpm).
    };
    std::vector<Instance> instances(config.numAccelerators);

    unsigned remaining = config.numAccelerators;
    for (unsigned i = 0; i < config.numAccelerators; ++i) {
        models::NvdlaPlacement placement;
        placement.ifmapBase = 0x2000'0000ULL + i * 0x0400'0000ULL;
        placement.weightBase = placement.ifmapBase + 0x0100'0000ULL;
        placement.ofmapBase = placement.ifmapBase + 0x0200'0000ULL;

        Instance& inst = instances[i];
        inst.placement = placement;
        inst.trace = models::makeConvTrace(config.workloadName + std::to_string(i),
                                           config.shape, placement, 0x5EED + i,
                                           config.sramScratchpad);

        RtlObjectParams rp;
        rp.clockPeriod = socCfg.rtlClock;  // NVDLA at 1 GHz (Table 1).
        rp.maxInflight = config.maxInflight;
        rp.gateIdleTicks = config.gateIdleTicks;
        inst.rtl = &soc.attachRtlModel("nvdla" + std::to_string(i), loadRtlModel("nvdla"),
                                       rp,
                                       config.sramScratchpad
                                           ? Soc::MemPorts::kWithScratchpad
                                           : Soc::MemPorts::kMainMemory,
                                       /*wireEventBus=*/false);
        if (config.sramScratchpad) {
            // Weights live in the scratchpad; stage them there directly (the
            // host-side DMA into SRAM is not part of the measured run).
            const auto& weights = inst.trace.segments[1];
            soc.scratchpadStore(i).write(weights.addr, weights.bytes.data(),
                                         static_cast<unsigned>(weights.bytes.size()));
        }

        NvdlaHost::Params hp;
        hp.csbBase = soc.deviceBaseOf(i);
        hp.clockPeriod = socCfg.coreClock;
        hp.waitForRelease = dmaSpm;  // CSB programming waits for the prefetch.
        inst.host = std::make_unique<NvdlaHost>(sim, "system.host" + std::to_string(i),
                                                hp, inst.trace);
        inst.host->port().bind(soc.addHostPort("host" + std::to_string(i)));
        if (dmaSpm) {
            // Stage the working set into the SPM, release the host once it is
            // resident, and after the checksum readback drain the ofmap back
            // to main memory — that drain is the instance's finish line.
            inst.prefetcher = std::make_unique<SpmPrefetcher>(
                sim, "system.prefetch" + std::to_string(i), soc.dmaEngine(i),
                inst.trace);
            inst.prefetcher->setParentRequest(inst.host->requestId());
            inst.prefetcher->setDoneCallback([&inst] { inst.host->release(); });
            inst.host->setDoneCallback([&inst, &soc, &sim, &remaining, i,
                                        &shape = config.shape] {
                DmaEngine::Descriptor drain{
                    inst.placement.ofmapBase, inst.placement.ofmapBase,
                    shape.ofmapBytes(), DmaEngine::Direction::kSpmToMem,
                    [&inst, &sim, &remaining] {
                        inst.doneTick = sim.curTick();
                        if (--remaining == 0) sim.exitSimLoop("all accelerators done");
                    }};
                // The ofmap drain is part of the job's end-to-end window.
                drain.parent = inst.host->requestId();
                soc.dmaEngine(i).enqueue(std::move(drain));
            });
        } else {
            inst.host->setDoneCallback([&inst, &sim, &remaining] {
                inst.doneTick = sim.curTick();
                if (--remaining == 0) sim.exitSimLoop("all accelerators done");
            });
        }
    }

    const RunResult run = sim.run(config.maxTicks);

    DseRunResult result;
    result.completed = run.cause == ExitCause::kSimExit && remaining == 0;
    result.checksumsOk = true;
    Tick last = 0;
    for (auto& inst : instances) {
        result.checksumsOk = result.checksumsOk && inst.host->checksumOk();
        result.perAcceleratorTicks.push_back(inst.doneTick);
        last = std::max(last, inst.doneTick);
    }
    result.runtimeTicks = last;
    if (!instances.empty()) {
        const auto* dist = dynamic_cast<const stats::Distribution*>(
            instances[0].rtl->statsGroup().find("outstanding"));
        if (dist != nullptr) result.avgOutstanding = dist->mean();
        if (dmaSpm) {
            const stats::Group& spmStats = soc.spm(0).statsGroup();
            if (const auto* s = spmStats.find("readHits")) result.spmReadHits = s->value();
            if (const auto* s = spmStats.find("readMisses")) {
                result.spmReadMisses = s->value();
            }
            if (const auto* s = spmStats.find("mshrJoins")) {
                result.spmMshrJoins = s->value();
            }
            result.dmaDescriptors = soc.dmaEngine(0).descriptorsCompleted();
            if (const auto* h = dynamic_cast<const stats::Histogram*>(
                    soc.dmaEngine(0).statsGroup().find("descriptorLatency"))) {
                result.dmaLatencyP50 = h->quantile(0.50);
                result.dmaLatencyP99 = h->quantile(0.99);
                result.dmaLatencyMax = h->maxValue();
            }
        }
    }
    result.memLatency = obs::portLatencies(soc.memBus().statsGroup());
    {
        const stats::HistogramData merged =
            obs::mergedPortLatencyHistogram(soc.memBus().statsGroup());
        result.memLatencyP50 = merged.p50();
        result.memLatencyP99 = merged.p99();
    }
    if (obs::ObsSession* obsSession = soc.observability()) {
        obsSession->finish();
        result.profile = obsSession->profileReport();
        if (obsSession->trace() != nullptr && obsSession->trace()->ok()) {
            result.tracePath = obsSession->trace()->path();
        }
        if (obsSession->recorder() != nullptr && obsSession->recorder()->ok()) {
            result.recordPath = obsSession->recorder()->path();
        }
        if (obsSession->metrics() != nullptr && obsSession->metrics()->ok()) {
            result.metricsPath = obsSession->metrics()->path();
        }
        if (obs::ReqTraceSession* rt = obsSession->reqtrace()) {
            if (rt->ok() && !rt->path().empty()) result.reqtracePath = rt->path();
            const obs::BlameSummary blame = obs::computeBlame(rt->data());
            for (unsigned s = 0; s < kNumReqStages; ++s) {
                result.stageBlame.emplace_back(
                    reqStageName(static_cast<ReqStage>(s)),
                    static_cast<double>(blame.stageTicks[s]));
            }
            result.stageBlame.emplace_back("unattributed",
                                           static_cast<double>(blame.unattributed));
        }
    }
    return result;
}

}  // namespace g5r::experiments
