// NvdlaHost: the host-side application driving an NVDLA instance.
//
// Substitutes the paper's "simple user-level application on the simulated
// SoC host cores" that loads an NVDLA trace into main memory, programs the
// accelerator through the CSB, starts it, and waits for completion. The
// host first functionally preloads the trace's data segments (the paper's
// trace-load step — the reason Table 3's Sanity3 overhead is larger), then
// performs the CSB register writes as timing transactions, then polls the
// status register until the done bit rises, and finally reads back the
// datapath checksum for verification.
#pragma once

#include <functional>

#include "mem/port.hh"
#include "models/nvdla/nvdla_design.hh"
#include "models/nvdla/trace.hh"
#include "sim/clocked.hh"
#include "sim/event.hh"
#include "sim/simulation.hh"

namespace g5r {

class NvdlaHost : public ClockedObject {
public:
    struct Params {
        Addr csbBase = 0;               ///< Where the RTLObject's CSB is mapped.
        Tick clockPeriod = periodFromGHz(2);
        Cycles pollIntervalCycles = 200;  ///< Status-poll spacing.
        bool verifyChecksum = true;
        /// When set, startup() only loads the trace segments; the CSB
        /// programming waits for release() — used by the dmaSpm memory path,
        /// where the SPM prefetch must finish before the accelerator starts.
        bool waitForRelease = false;
    };

    NvdlaHost(Simulation& sim, std::string name, const Params& params,
              models::NvdlaTrace trace);

    RequestPort& port() { return port_; }

    /// Invoked once when this accelerator finishes (after checksum readback).
    void setDoneCallback(std::function<void()> cb) { doneCallback_ = std::move(cb); }

    /// Start the CSB programming phase (no-op unless waiting for release).
    void release();

    bool finished() const { return state_ == State::kFinished; }
    Tick startTick() const { return startTick_; }
    Tick finishTick() const { return finishTick_; }

    /// The job's causal-tracing root ID (allocated at construction, so
    /// helpers wired before startup — the SPM prefetcher — can parent their
    /// own work under it).
    ReqId requestId() const { return requestId_; }
    std::uint64_t checksumRead() const { return checksumRead_; }
    bool checksumOk() const { return checksumRead_ == trace_.expectedChecksum; }

    void startup() override;

private:
    enum class State {
        kIdle,
        kWriteRegs,     ///< Issuing configuration writes.
        kPollStatus,    ///< Reading the status register until done.
        kReadChecksum,  ///< Fetching the datapath checksum.
        kFinished,
    };

    class Port final : public RequestPort {
    public:
        Port(std::string n, NvdlaHost& o) : RequestPort(std::move(n)), owner_(o) {}
        bool recvTimingResp(PacketPtr& pkt) override { return owner_.handleResp(pkt); }
        void recvReqRetry() override { owner_.trySend(); }

    private:
        NvdlaHost& owner_;
    };

    void advance();
    void trySend();
    bool handleResp(PacketPtr& pkt);

    Params params_;
    models::NvdlaTrace trace_;
    Port port_;
    CallbackEvent advanceEvent_;
    std::function<void()> doneCallback_;

    State state_ = State::kIdle;
    bool loaded_ = false;
    bool released_ = false;
    std::size_t nextRegWrite_ = 0;
    PacketPtr pendingSend_;
    bool awaitingResp_ = false;
    Tick startTick_ = 0;
    Tick finishTick_ = 0;
    Tick pollStartTick_ = 0;  ///< kWriteRegs -> kPollStatus transition.
    std::uint64_t checksumRead_ = 0;
    ReqId requestId_ = 0;

    stats::Scalar& csbWrites_;
    stats::Scalar& statusPolls_;
};

}  // namespace g5r
