// SpmPrefetcher: warms a scratchpad from an NVDLA txn trace.
//
// The dmaSpm memory path stages the accelerator's working set (ifmap +
// weights, i.e. the trace's preloaded data segments) in the SPM before the
// CSB programming starts, so the DLA's read stream sees SRAM-class latency
// from the first transaction. At startup() it enqueues one DMA descriptor
// per trace segment (src == dst: the SPM mirrors the main-memory window)
// and fires its done callback once the last copy completes — the SoC layer
// uses that to release the waiting NvdlaHost.
#pragma once

#include <functional>
#include <vector>

#include "mem/dma.hh"
#include "models/nvdla/trace.hh"
#include "sim/sim_object.hh"

namespace g5r {

class SpmPrefetcher : public SimObject {
public:
    SpmPrefetcher(Simulation& sim, std::string name, DmaEngine& dma,
                  const models::NvdlaTrace& trace);

    /// Invoked once when every segment has been staged into the SPM.
    void setDoneCallback(std::function<void()> cb) { doneCallback_ = std::move(cb); }

    /// Parent the prefetch descriptors under @p id (the host job's root
    /// request), so staging work shows up in that job's critical path.
    void setParentRequest(ReqId id) { parentRequest_ = id; }

    bool done() const { return remaining_ == 0; }
    Tick doneTick() const { return doneTick_; }

    void startup() override;

private:
    struct Region {
        Addr addr;
        std::uint64_t bytes;
    };

    DmaEngine& dma_;
    std::vector<Region> regions_;
    std::function<void()> doneCallback_;
    std::size_t remaining_ = 0;
    Tick doneTick_ = 0;
    ReqId parentRequest_ = 0;
};

}  // namespace g5r
