#include "soc/nvdla_host.hh"

namespace g5r {

NvdlaHost::NvdlaHost(Simulation& sim, std::string objName, const Params& params,
                     models::NvdlaTrace trace)
    : ClockedObject(sim, std::move(objName), params.clockPeriod),
      params_(params),
      trace_(std::move(trace)),
      port_(name() + ".port", *this),
      advanceEvent_([this] { advance(); }, name() + ".advance"),
      csbWrites_(stats_.scalar("csbWrites", "configuration writes issued")),
      statusPolls_(stats_.scalar("statusPolls", "status-register polls")) {
    // The job's root request ID. Allocated here — not at startup — so the
    // prefetcher (constructed after the host, before run()) can parent its
    // DMA descriptors under the job.
    requestId_ = sim.allocRequestId();
}

void NvdlaHost::startup() {
    // Trace load: data segments into main memory (functional, as the real
    // host would have done before handing off to the accelerator).
    for (const auto& seg : trace_.segments) {
        // Chunk into line-bounded functional writes. Each chunk runs at most
        // to the next 64 B line boundary: the interleaved decode downstream
        // routes a packet by its start address at line granularity, so a
        // line-crossing write from an unaligned seg.addr would land its tail
        // bytes in the wrong channel's backing store.
        std::size_t offset = 0;
        while (offset < seg.bytes.size()) {
            const auto toLineEnd =
                static_cast<std::size_t>(64 - ((seg.addr + offset) % 64));
            const auto chunk = std::min(toLineEnd, seg.bytes.size() - offset);
            Packet pkt{MemCmd::kWriteReq, seg.addr + offset, static_cast<unsigned>(chunk)};
            pkt.setData(seg.bytes.data() + offset);
            port_.sendFunctional(pkt);
            offset += chunk;
        }
    }
    loaded_ = true;
    // The job begins here (even when gated on release()): the prefetch that
    // runs before release is part of this job's end-to-end window.
    if (SimObserver* obs = threadObserver()) {
        obs->requestBegin(requestId_, 0, "nvdlaJob", curTick());
    }
    if (params_.waitForRelease && !released_) return;
    state_ = State::kWriteRegs;
    startTick_ = curTick();
    eventQueue().schedule(advanceEvent_, clockEdge());
}

void NvdlaHost::release() {
    released_ = true;
    if (!loaded_ || state_ != State::kIdle) return;
    state_ = State::kWriteRegs;
    startTick_ = curTick();
    eventQueue().schedule(advanceEvent_, clockEdge());
}

void NvdlaHost::advance() {
    if (awaitingResp_ || pendingSend_ != nullptr) {
        trySend();
        return;
    }
    switch (state_) {
    case State::kIdle:
    case State::kFinished:
        return;
    case State::kWriteRegs: {
        if (nextRegWrite_ >= trace_.regWrites.size()) {
            state_ = State::kPollStatus;
            pollStartTick_ = curTick();
            // The configuration stream is done: [startTick_, now) is the
            // job's host-side programming (hostLoad) stage.
            if (SimObserver* obs = threadObserver()) {
                obs->requestSpan(requestId_, ReqStage::kHostLoad, startTick_, curTick());
            }
            eventQueue().schedule(advanceEvent_,
                                  clockEdge(params_.pollIntervalCycles));
            return;
        }
        const auto& rw = trace_.regWrites[nextRegWrite_];
        auto pkt = makeWritePacket(params_.csbBase + rw.addr, 8);
        pkt->set<std::uint64_t>(rw.data);
        pkt->setReqId(requestId_);
        pendingSend_ = std::move(pkt);
        ++csbWrites_;
        trySend();
        return;
    }
    case State::kPollStatus: {
        pendingSend_ = makeReadPacket(params_.csbBase + models::NvdlaDesign::kStatusReg, 8);
        pendingSend_->setReqId(requestId_);
        ++statusPolls_;
        trySend();
        return;
    }
    case State::kReadChecksum: {
        pendingSend_ =
            makeReadPacket(params_.csbBase + models::NvdlaDesign::kChecksumReg, 8);
        pendingSend_->setReqId(requestId_);
        trySend();
        return;
    }
    }
}

void NvdlaHost::trySend() {
    if (pendingSend_ == nullptr) return;
    if (!port_.sendTimingReq(pendingSend_)) return;  // Retry resends.
    awaitingResp_ = true;
}

bool NvdlaHost::handleResp(PacketPtr& pkt) {
    awaitingResp_ = false;
    switch (state_) {
    case State::kWriteRegs:
        ++nextRegWrite_;
        eventQueue().reschedule(advanceEvent_, clockEdge(1));
        break;
    case State::kPollStatus: {
        const std::uint64_t status = pkt->get<std::uint64_t>();
        if ((status & 2u) != 0) {  // Done bit.
            // The poll window is the job's compute stage: the accelerator
            // owned the work from the last config write to the done bit.
            if (SimObserver* obs = threadObserver()) {
                obs->requestSpan(requestId_, ReqStage::kRtlCompute, pollStartTick_,
                                 curTick());
            }
            state_ = State::kReadChecksum;
            eventQueue().reschedule(advanceEvent_, clockEdge(1));
        } else {
            eventQueue().reschedule(advanceEvent_, clockEdge(params_.pollIntervalCycles));
        }
        break;
    }
    case State::kReadChecksum:
        checksumRead_ = pkt->get<std::uint64_t>();
        state_ = State::kFinished;
        finishTick_ = curTick();
        // Note: the dmaSpm path appends an ofmap drain after this; the drain
        // descriptor is a child of this job, so the blame window stretches
        // past this explicit end to cover it (effective-end rule).
        if (SimObserver* obs = threadObserver()) {
            obs->requestEnd(requestId_, curTick());
        }
        if (doneCallback_) doneCallback_();
        break;
    default:
        break;
    }
    pkt.reset();
    return true;
}

}  // namespace g5r
