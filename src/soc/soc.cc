#include "soc/soc.hh"

#include <sstream>

#include "lint/soc_lint.hh"
#include "sim/logging.hh"

namespace g5r {
namespace {

/// Where idle (program-less) cores boot: a lone HALT instruction.
constexpr Addr kIdleEntry = 0xF000;

unsigned log2of(unsigned v) {
    unsigned bits = 0;
    while ((1u << bits) < v) ++bits;
    return bits;
}

}  // namespace

Soc::Soc(Simulation& sim, const SocConfig& config) : sim_(sim), config_(config) {
    simAssert(config_.llcBanks > 0 && (config_.llcBanks & (config_.llcBanks - 1)) == 0,
              "LLC bank count must be a power of two");

    systemXbar_ = std::make_unique<Xbar>(sim_, "system.noc", config_.nocParams());
    memBus_ = std::make_unique<Xbar>(sim_, "system.membus", config_.nocParams());

    // Main memory: Table 1 DRAM technology, or the ideal 1-cycle memory
    // Figures 6/7 normalise against. Every channel gets its own memory-bus
    // port (as gem5 instantiates one controller per channel), so aggregate
    // bandwidth is not serialised through a single crossbar layer.
    if (config_.memTech == MemTech::kIdeal) {
        constexpr unsigned kIdealBanks = 8;
        for (unsigned b = 0; b < kIdealBanks; ++b) {
            SimpleMemory::Params mp;
            mp.range = config_.memRange;
            mp.clockPeriod = config_.coreClock;
            mp.latency = config_.coreClock;  // 1 cycle.
            mp.bytesPerTick = 0.0;           // Unlimited bandwidth.
            mp.maxPending = 4096;
            idealMems_.push_back(std::make_unique<SimpleMemory>(
                sim_, "system.mem" + std::to_string(b), mp, store_));
            memBus_->addMemSidePort("mem" + std::to_string(b),
                                    RouteSpec{config_.memRange, 6, 3, b})
                .bind(idealMems_.back()->port());
        }
    } else {
        MultiChannelDram::Params dramParams =
            dramParamsFor(config_.memTech, config_.memRange);
        const unsigned numChannels = dramParams.channels;
        const unsigned chBits = log2of(numChannels);
        dramParams.channels = 1;
        dramParams.decodeChannels = numChannels;
        for (unsigned c = 0; c < numChannels; ++c) {
            dramChannels_.push_back(std::make_unique<MultiChannelDram>(
                sim_, "system.mem" + std::to_string(c), dramParams, store_));
            memBus_->addMemSidePort("mem" + std::to_string(c),
                                    RouteSpec{config_.memRange, 6, chBits, c})
                .bind(dramChannels_.back()->port());
        }
    }

    // Shared LLC: banked, striped on the line-address bits above the offset.
    const unsigned bankBits = log2of(config_.llcBanks);
    for (unsigned b = 0; b < config_.llcBanks; ++b) {
        llcBanks_.push_back(std::make_unique<Cache>(
            sim_, "system.llc" + std::to_string(b), config_.llcBankParams()));
        systemXbar_->addMemSidePort("llc" + std::to_string(b),
                                    RouteSpec{config_.memRange, 6, bankBits, b})
            .bind(llcBanks_.back()->cpuSidePort());
        llcBanks_.back()->memSidePort().bind(
            memBus_->addCpuSidePort("llc" + std::to_string(b)));
    }

    // Cores with their private hierarchies.
    store_.store<std::uint64_t>(kIdleEntry, isa::encode(isa::Instr{}));  // HALT.
    for (unsigned i = 0; i < config_.numCores; ++i) {
        const std::string cpu = "system.cpu" + std::to_string(i);
        OooCoreParams coreParams = config_.core;
        coreParams.clockPeriod = config_.coreClock;
        coreParams.stronglyOrdered.push_back(config_.deviceRangeAll());
        cores_.push_back(std::make_unique<OooCore>(sim_, cpu, coreParams, kIdleEntry));
        l1i_.push_back(std::make_unique<Cache>(sim_, cpu + ".l1i", config_.l1iParams()));
        l1d_.push_back(std::make_unique<Cache>(sim_, cpu + ".l1d", config_.l1dParams()));
        l2_.push_back(std::make_unique<Cache>(sim_, cpu + ".l2", config_.l2Params()));

        cores_.back()->icachePort().bind(l1i_.back()->cpuSidePort());
        cores_.back()->dcachePort().bind(l1d_.back()->cpuSidePort());
        // Both L1s feed the private L2 through the crossbar-free local path:
        // a tiny per-core bus is modelled by routing through the L2's single
        // cpu-side port via an L1 mux crossbar.
        // Keep it simple and faithful: L1I and L1D each get a system-xbar
        // port only through L2, so join them with a per-core mux xbar.
        auto mux = std::make_unique<Xbar>(sim_, cpu + ".l1bus", config_.nocParams());
        l1i_.back()->memSidePort().bind(mux->addCpuSidePort("l1i"));
        l1d_.back()->memSidePort().bind(mux->addCpuSidePort("l1d"));
        mux->addMemSidePort("l2", RouteSpec{AddrRange{0, ~Addr{0}}})
            .bind(l2_.back()->cpuSidePort());
        l1Muxes_.push_back(std::move(mux));

        l2_.back()->memSidePort().bind(systemXbar_->addCpuSidePort("cpu" + std::to_string(i)));
    }

    // PMU wiring: core 0 and its L1D drive the classic Fig. 5 event lines
    // (four commit lanes + L1D miss). Additional cores each get their own
    // commit-count line starting at line 8, so one PMU can monitor the
    // whole processor ("the possibility to have multiple cores connected to
    // the PMU").
    if (!cores_.empty()) {
        cores_[0]->setEventBus(&eventBus_);
        l1d_[0]->setMissEvent(&eventBus_, HwEventBus::kL1dMiss);
        for (unsigned i = 1; i < cores_.size(); ++i) {
            const unsigned line = 8 + (i - 1);
            if (line < HwEventBus::kLines) {
                cores_[i]->setEventBus(&eventBus_, line, /*spreadAcrossLanes=*/false);
            }
        }
    }

    // Strict elaboration lint: a miswired interconnect should fail loudly
    // here, not as a "no route for address" panic mid-simulation.
    if (config_.elaborationLint) {
        const lint::Report report = elaborationLint();
        if (report.hasErrors()) {
            std::ostringstream os;
            os << "SoC elaboration lint failed:\n";
            lint::emitText(report, os);
            panicStream(os.str());
        }
    }

    // Observability last, once the topology exists. The thread's run label
    // (set by the parallel experiment runner) names the trace file, so
    // concurrent sweep points each write their own file.
    obs_ = obs::ObsSession::create(sim_, obs::ObsOptions::fromEnv(config_.obs),
                                   logRunLabel());
    if (obs_ != nullptr) {
        for (const char* statName : {"reqsRouted", "respsRouted", "layerConflicts"}) {
            if (const auto* s = systemXbar_->statsGroup().find(statName)) {
                obs_->addCounter(*s);
            }
            if (const auto* s = memBus_->statsGroup().find(statName)) {
                obs_->addCounter(*s);
            }
        }
    }
}

lint::Report Soc::elaborationLint() const {
    lint::Report report;
    lint::lintXbar(*systemXbar_, report);
    lint::lintXbar(*memBus_, report);
    for (const auto& mux : l1Muxes_) lint::lintXbar(*mux, report);
    // Every byte of main memory must be reachable from the cores (through
    // the LLC banks) and from the LLC (through the memory bus).
    lint::lintRouteCoverage(*systemXbar_, config_.memRange, report);
    lint::lintRouteCoverage(*memBus_, config_.memRange, report);
    for (const auto& [idx, path] : memPaths_) {
        lint::lintXbar(*path.bus, report);
        lint::lintRouteCoverage(*path.bus, config_.memRange, report);
        lint::lintDmaSpmPath(*path.dma, *path.spm, config_.memRange, report);
    }
    return report;
}

void Soc::loadProgram(unsigned coreId, const isa::Program& program, Addr base) {
    simAssert(coreId < cores_.size(), "no such core");
    for (std::size_t i = 0; i < program.code.size(); ++i) {
        store_.store<std::uint64_t>(base + i * isa::kInstrBytes, program.code[i]);
    }
    cores_[coreId]->setEntry(base);
    ++runningCores_;
    cores_[coreId]->setExitCallback([this] { coreExited(); });
}

void Soc::coreExited() {
    simAssert(runningCores_ > 0, "core exit underflow");
    if (--runningCores_ == 0) sim_.exitSimLoop("all program cores exited");
}

RtlObject& Soc::attachRtlModel(const std::string& name, std::unique_ptr<RtlModel> model,
                               const RtlObjectParams& params, MemPorts memPorts,
                               bool wireEventBus) {
    const unsigned idx = attachedModels_++;
    rtlObjects_.push_back(std::make_unique<RtlObject>(
        sim_, "system." + name, params, std::move(model),
        wireEventBus ? &eventBus_ : nullptr));
    RtlObject& obj = *rtlObjects_.back();

    // CSB window on the system crossbar (reachable from the cores through
    // their uncacheable device aperture).
    systemXbar_->addMemSidePort(name + "_csb", RouteSpec{config_.deviceRange(idx)})
        .bind(obj.cpuSidePort(0));

    if (memPorts != MemPorts::kNone) {
        if (memPorts == MemPorts::kMainMemory && config_.memPath == MemPath::kDmaSpm) {
            // dmaSpm memory path: the DBBIF sees a private banked SPM; a DMA
            // engine stages the working set there (and drains results back)
            // with its own deep request window against the memory bus.
            MemPathObjs& path = memPaths_[idx];
            path.bus = std::make_unique<Xbar>(sim_, "system." + name + ".spmbus",
                                              config_.nocParams());

            Spm::Params spmParams;
            spmParams.range = config_.memRange;
            spmParams.clockPeriod = config_.coreClock;
            spmParams.accessLatency = config_.spmAccessLatency;
            spmParams.banks = config_.spmBanks;
            spmParams.maxPending = config_.spmMaxPending;
            path.spm = std::make_unique<Spm>(sim_, "system." + name + ".spm", spmParams);

            DmaEngine::Params dmaParams;
            dmaParams.clockPeriod = config_.rtlClock;
            dmaParams.maxInflight = config_.dmaMaxInflight;
            path.dma = std::make_unique<DmaEngine>(sim_, "system." + name + ".dma",
                                                   dmaParams);

            obj.memSidePort(0).bind(path.bus->addCpuSidePort(name + "_dbbif"));
            path.dma->spmPort().bind(path.bus->addCpuSidePort(name + "_dma_stage"));
            path.bus->addMemSidePort("spm", RouteSpec{config_.memRange})
                .bind(path.spm->cpuSidePort());
            path.spm->memSidePort().bind(memBus_->addCpuSidePort(name + "_spmfill"));
            path.dma->memPort().bind(memBus_->addCpuSidePort(name + "_dma"));
            obj.memSidePort(1).bind(memBus_->addCpuSidePort(name + "_sramif"));
        } else if (memPorts == MemPorts::kMainMemory) {
            obj.memSidePort(0).bind(memBus_->addCpuSidePort(name + "_dbbif"));
            obj.memSidePort(1).bind(memBus_->addCpuSidePort(name + "_sramif"));
        } else {
            obj.memSidePort(0).bind(memBus_->addCpuSidePort(name + "_dbbif"));
            // The paper's proposed extension: "hook a proper SRAM such as a
            // scratchpad memory to the SRAMIF interface". Point-to-point,
            // low latency, private backing store.
            Scratchpad& pad = scratchpads_[idx];
            pad.store = std::make_unique<BackingStore>();
            SimpleMemory::Params sp;
            sp.range = config_.memRange;  // Sees only port-1 traffic.
            sp.clockPeriod = config_.coreClock;
            sp.latency = 2 * config_.coreClock;  // SRAM-class latency.
            sp.maxPending = 64;
            pad.mem = std::make_unique<SimpleMemory>(
                sim_, "system." + name + ".scratchpad", sp, *pad.store);
            obj.memSidePort(1).bind(pad.mem->port());
        }
    }
    if (obs_ != nullptr) {
        if (const auto* s = obj.statsGroup().find("outstanding")) obs_->addCounter(*s);
        if (const auto* s = obj.statsGroup().find("gatedTicks")) obs_->addCounter(*s);
        const auto it = memPaths_.find(idx);
        if (it != memPaths_.end()) {
            for (const char* statName : {"readHits", "readMisses"}) {
                if (const auto* s = it->second.spm->statsGroup().find(statName)) {
                    obs_->addCounter(*s);
                }
            }
            if (const auto* s = it->second.dma->statsGroup().find("descriptors")) {
                obs_->addCounter(*s);
            }
        }
    }
    return obj;
}

BackingStore& Soc::scratchpadStore(unsigned idx) {
    const auto it = scratchpads_.find(idx);
    simAssert(it != scratchpads_.end(), "model has no scratchpad attached");
    return *it->second.store;
}

Spm& Soc::spm(unsigned idx) {
    const auto it = memPaths_.find(idx);
    simAssert(it != memPaths_.end(), "model has no dmaSpm memory path");
    return *it->second.spm;
}

DmaEngine& Soc::dmaEngine(unsigned idx) {
    const auto it = memPaths_.find(idx);
    simAssert(it != memPaths_.end(), "model has no dmaSpm memory path");
    return *it->second.dma;
}

ResponsePort& Soc::addHostPort(const std::string& name) {
    return systemXbar_->addCpuSidePort(name);
}

double Soc::memPeakBandwidth() const {
    double total = 0.0;
    for (const auto& channel : dramChannels_) total += channel->peakBandwidth();
    return total;
}

}  // namespace g5r
