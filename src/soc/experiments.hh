// Canned experiment setups for the paper's evaluation.
//
// Each function assembles a Table 1 SoC, runs one experimental point, and
// returns the measurements the corresponding figure/table needs. The bench
// binaries (bench/) sweep these; integration tests sanity-check single
// points.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cpu/workloads.hh"
#include "mem/dram_configs.hh"
#include "models/nvdla/trace.hh"
#include "obs/session.hh"
#include "soc/config.hh"
#include "soc/pmu_observer.hh"

namespace g5r::experiments {

// ------------------------------------------------------------------ Fig 5 --

struct PmuRunConfig {
    workloads::SortBenchmarkLayout layout;  ///< Sort-benchmark sizing.
    std::uint64_t intervalCycles = 10'000;  ///< PMU interrupt period.
    bool attachPmu = true;                  ///< false = bare-gem5 baseline (Table 2).
    bool programPmu = true;                 ///< false = attached but never configured:
                                            ///< no counter enables, so the model is
                                            ///< quiescent and idle-tick gating can
                                            ///< skip it (Table 2's idle rows).
    std::string waveformPath;               ///< Non-empty = enable VCD tracing.
    MemTech memTech = MemTech::kDdr4_1ch;
    unsigned numCores = 8;
    Tick maxTicks = 200'000'000'000ULL;     ///< Safety net (200 ms simulated).
    bool gateIdleTicks = true;              ///< Quiescence-gate the PMU tick.
    obs::ObsOptions obs;                    ///< Tracing/profiling for this run.
};

struct PmuInterval {
    double timeMs = 0;       ///< Interval end, simulated milliseconds.
    double pmuIpc = 0;       ///< IPC from PMU counters.
    double gem5Ipc = 0;      ///< IPC from simulator statistics.
    double pmuMpki = 0;      ///< L1D misses per kilo-instruction (PMU).
    double gem5Mpki = 0;     ///< Same from simulator statistics.
};

struct PmuRunResult {
    bool completed = false;
    Tick finalTick = 0;
    std::uint64_t committedInsts = 0;
    std::uint64_t cycles = 0;
    std::vector<PmuInterval> intervals;
    std::vector<PmuObserver::Sample> rawSamples;
    double maxAbsIpcError = 0;  ///< max |pmuIpc - gem5Ipc| over intervals.

    /// Per-master round-trip latency on the memory bus, plus SoC-wide
    /// percentiles from the merged latency histograms (always collected).
    std::vector<std::pair<std::string, obs::LatencySummary>> memLatency;
    double memLatencyP50 = 0;
    double memLatencyP99 = 0;
    std::shared_ptr<const obs::ProfileReport> profile;  ///< When profiling on.
    std::string recordPath;                             ///< When recording on.
    std::string metricsPath;                            ///< When metrics timeline on.
};

/// Run the three-kernel sort benchmark with (or without) the PMU attached.
PmuRunResult runPmuSortExperiment(const PmuRunConfig& config);

// --------------------------------------------------------------- Figs 6/7 --

struct DseRunConfig {
    MemTech memTech = MemTech::kIdeal;
    unsigned numAccelerators = 1;
    unsigned maxInflight = 240;             ///< The swept knob.
    models::NvdlaShape shape;               ///< sanity3Shape()/googlenetConv2Shape().
    std::string workloadName = "workload";
    unsigned numCores = 8;                  ///< The paper's SoC has 8 (idle) cores.
    bool sramScratchpad = false;            ///< Weights via a SRAMIF scratchpad
                                            ///< (the paper's proposed extension).
    MemPath memPath = MemPath::kDirect;     ///< Direct DBBIF vs DMA+SPM staging.
    unsigned dmaMaxInflight = 0;            ///< dmaSpm DMA line-request window
                                            ///< override (0 = SocConfig default).
    Tick maxTicks = 2'000'000'000'000ULL;   ///< 2 s simulated safety net.
    bool gateIdleTicks = true;              ///< Quiescence-gate accelerator ticks.
    obs::ObsOptions obs;                    ///< Tracing/profiling for this run.
};

struct DseRunResult {
    bool completed = false;
    bool checksumsOk = false;
    Tick runtimeTicks = 0;       ///< Until the last accelerator finished (for
                                 ///< dmaSpm: until its ofmap drain completed).
    std::vector<Tick> perAcceleratorTicks;
    double avgOutstanding = 0;   ///< Mean outstanding requests (accelerator 0).

    /// dmaSpm-path stats (accelerator 0; zero on the direct path).
    double spmReadHits = 0;
    double spmReadMisses = 0;
    double spmMshrJoins = 0;     ///< Misses coalesced onto in-flight fills.
    std::uint64_t dmaDescriptors = 0;

    /// Per-descriptor DMA latency percentiles (accelerator 0's engine, in
    /// ticks; zero on the direct path).
    double dmaLatencyP50 = 0;
    double dmaLatencyP99 = 0;
    double dmaLatencyMax = 0;

    /// Critical-path stage blame over all root requests, in blamed ticks.
    /// Request tracing is force-enabled (in-memory) for every DSE run, so
    /// this is always populated; stage names plus a final "unattributed"
    /// entry, in ReqStage declaration order. Shares of the summed total sum
    /// to 100% by construction.
    std::vector<std::pair<std::string, double>> stageBlame;
    std::string reqtracePath;    ///< Sidecar path, when one was written.

    /// Per-master round-trip latency on the memory bus ("latency.<suffix>"
    /// distributions), always collected — the Xbar maintains them whether
    /// or not observability is on.
    std::vector<std::pair<std::string, obs::LatencySummary>> memLatency;

    /// SoC-wide latency percentiles from the merged per-master histograms.
    double memLatencyP50 = 0;
    double memLatencyP99 = 0;

    std::shared_ptr<const obs::ProfileReport> profile;  ///< When profiling on.
    std::string tracePath;                              ///< When tracing on.
    std::string recordPath;                             ///< When recording on.
    std::string metricsPath;                            ///< When metrics timeline on.
};

/// One point of the design-space exploration: N accelerators, one memory
/// technology, one in-flight cap, all instances running the same workload.
DseRunResult runNvdlaDse(const DseRunConfig& config);

/// Normalised performance: ideal-memory runtime / tech runtime (the Figs.
/// 6/7 metric; 1.0 means memory is not the bottleneck).
inline double normalizedPerf(const DseRunResult& ideal, const DseRunResult& tech) {
    return tech.runtimeTicks > 0
               ? static_cast<double>(ideal.runtimeTicks) /
                     static_cast<double>(tech.runtimeTicks)
               : 0.0;
}

/// The in-flight request sweep of Figs. 6/7.
inline const std::vector<unsigned>& inflightSweep() {
    static const std::vector<unsigned> sweep{1, 4, 8, 16, 32, 64, 128, 240};
    return sweep;
}

/// The memory-technology series of Figs. 6/7.
inline const std::vector<MemTech>& memTechSeries() {
    static const std::vector<MemTech> series{MemTech::kDdr4_1ch, MemTech::kDdr4_2ch,
                                             MemTech::kDdr4_4ch, MemTech::kGddr5,
                                             MemTech::kHbm};
    return series;
}

/// True when the user asked for paper-scale parameters (GEM5RTL_FULL=1).
bool fullScaleRequested();

}  // namespace g5r::experiments
