#include "soc/spm_prefetcher.hh"

namespace g5r {

SpmPrefetcher::SpmPrefetcher(Simulation& sim, std::string objName, DmaEngine& dma,
                             const models::NvdlaTrace& trace)
    : SimObject(sim, std::move(objName)), dma_(dma) {
    for (const auto& seg : trace.segments) {
        if (seg.bytes.empty()) continue;
        regions_.push_back(Region{seg.addr, seg.bytes.size()});
    }
}

void SpmPrefetcher::startup() {
    remaining_ = regions_.size();
    if (remaining_ == 0) {
        doneTick_ = curTick();
        if (doneCallback_) doneCallback_();
        return;
    }
    for (const Region& region : regions_) {
        DmaEngine::Descriptor desc{
            region.addr, region.addr, region.bytes, DmaEngine::Direction::kMemToSpm,
            [this] {
                if (--remaining_ == 0) {
                    doneTick_ = curTick();
                    if (doneCallback_) doneCallback_();
                }
            }};
        desc.parent = parentRequest_;
        dma_.enqueue(std::move(desc));
    }
}

}  // namespace g5r
