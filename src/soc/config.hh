// SoC configuration presets — Table 1 of the paper.
//
//   Processor     8 cores, 3-wide issue/retire, 92-entry IQ, 192-entry ROB,
//                 48 LDQ + 48 STQ, 2 GHz
//   Private       L1I 64 KiB 4-way 2-cycle 8 MSHRs; L1D 64 KiB 4-way 2-cycle
//   caches        24 MSHRs; L2 256 KiB 8-way 9-cycle 24 MSHRs + stride pf
//   LLC           16 MiB, 16-way, 64 B lines, 8 banks, 32 MSHRs/bank,
//                 20-cycle data access
//   NoC           coherent crossbar, 128-bit wide, 2 cycles
//   Memory        DDR4-2400 / GDDR5 / HBM presets (mem/dram_configs.hh)
//   PMU           20 x 32-bit counters, 1 GHz
//   NVDLA         nv_full: 2048 8-bit MACs, 512 KiB buffer, 1 GHz
#pragma once

#include <cstdint>

#include "cpu/ooo_core.hh"
#include "mem/cache/cache.hh"
#include "mem/dram_configs.hh"
#include "mem/xbar.hh"
#include "obs/options.hh"

namespace g5r {

/// How an accelerator's memory-side traffic reaches main memory.
enum class MemPath {
    kDirect,  ///< DBBIF straight onto the memory bus (the paper's setup).
    kDmaSpm,  ///< Through a per-model scratchpad warmed by a DMA engine
              ///< (gem5-NVDLA's simple_spm/embeddedBuffer direction).
};

inline const char* memPathName(MemPath path) {
    return path == MemPath::kDirect ? "direct" : "dmaSpm";
}

struct SocConfig {
    unsigned numCores = 8;
    Tick coreClock = periodFromGHz(2);
    Tick rtlClock = periodFromGHz(1);  ///< PMU / NVDLA clock (Table 1).

    OooCoreParams core;  ///< Defaults already match Table 1.

    AddrRange memRange{0, 1ULL << 31};          ///< 2 GiB of DRAM.
    Addr deviceBase = 0x9000'0000;              ///< RTL-model CSB windows.
    Addr deviceStride = 0x1'0000;               ///< One 64 KiB window per model.
    MemTech memTech = MemTech::kDdr4_1ch;

    unsigned llcBanks = 8;
    bool l2Prefetcher = true;  ///< Table 1 has it on; ablation bench toggles it.

    /// Memory-path axis for attached accelerators (Fig. 6/7 DSE). With
    /// kDmaSpm each kMainMemory model gets a private banked SPM on its
    /// DBBIF plus a DMA engine that stages the trace working set there.
    MemPath memPath = MemPath::kDirect;
    unsigned spmBanks = 8;
    Cycles spmAccessLatency = 2;
    unsigned spmMaxPending = 64;
    unsigned dmaMaxInflight = 64;

    /// Run the interconnect lint (src/lint/soc_lint) at the end of Soc
    /// construction and panic on error-severity findings (miswired ports,
    /// ambiguous routes). Purely structural — no simulation cost.
    bool elaborationLint = true;

    /// Observability (src/obs/): Perfetto tracing, host-time profiling, and
    /// flight recording. Off by default; the GEM5RTL_TRACE / GEM5RTL_PROFILE
    /// / GEM5RTL_RECORD environment variables overlay these at Soc
    /// construction (ObsOptions::fromEnv).
    obs::ObsOptions obs;

    CacheParams l1iParams() const {
        CacheParams p;
        p.sizeBytes = 64 * 1024;
        p.assoc = 4;
        p.lookupLatency = 2;
        p.responseLatency = 2;
        p.mshrs = 8;
        p.clockPeriod = coreClock;
        return p;
    }

    CacheParams l1dParams() const {
        CacheParams p = l1iParams();
        p.mshrs = 24;
        p.uncacheable.push_back(deviceRangeAll());
        return p;
    }

    CacheParams l2Params() const {
        CacheParams p;
        p.sizeBytes = 256 * 1024;
        p.assoc = 8;
        p.lookupLatency = 9;
        p.responseLatency = 9;
        p.mshrs = 24;
        p.enablePrefetcher = l2Prefetcher;
        p.prefetchDegree = 2;
        p.clockPeriod = coreClock;
        p.uncacheable.push_back(deviceRangeAll());
        return p;
    }

    CacheParams llcBankParams() const {
        CacheParams p;
        p.sizeBytes = 16 * 1024 * 1024 / llcBanks;  // 2 MiB per bank.
        p.assoc = 16;
        p.lookupLatency = 20;
        p.responseLatency = 20;
        p.mshrs = 32;
        p.clockPeriod = coreClock;
        return p;
    }

    Xbar::Params nocParams() const {
        Xbar::Params p;
        p.clockPeriod = coreClock;
        p.forwardLatency = 2;
        p.widthBytes = 16;  // 128-bit.
        return p;
    }

    /// CSB window of attached RTL model number @p idx.
    AddrRange deviceRange(unsigned idx) const {
        const Addr base = deviceBase + idx * deviceStride;
        return AddrRange{base, base + deviceStride};
    }

    /// The whole device aperture (for cache uncacheable lists).
    AddrRange deviceRangeAll() const {
        return AddrRange{deviceBase, deviceBase + 64 * deviceStride};
    }
};

/// The paper's full Table 1 system.
inline SocConfig table1Config(MemTech tech = MemTech::kDdr4_1ch) {
    SocConfig cfg;
    cfg.memTech = tech;
    return cfg;
}

}  // namespace g5r
