#include "sim/stats.hh"

#include <iomanip>
#include <ostream>

#include "exp/json.hh"

namespace g5r::stats {

double HistogramData::quantile(double q) const {
    if (count_ == 0) return 0.0;
    if (q <= 0.0) return minValue();
    if (q >= 1.0) return maxValue();
    // Rank of the quantile sample, 1-based: the smallest r such that at
    // least ceil(q * count) samples are <= the returned value.
    const std::uint64_t rank =
        static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen >= rank) {
            // Report the upper bucket edge, clamped to the true max so an
            // all-in-one-bucket histogram never reports above its largest
            // sample.
            const std::uint64_t hi = bucketHigh(i);
            return static_cast<double>(hi < max_ ? hi : max_);
        }
    }
    return maxValue();  // Unreachable when counts_ is consistent with count_.
}

std::string Group::qualify(std::string_view name) const {
    std::string full = prefix_;
    if (!full.empty()) full += '.';
    full += name;
    return full;
}

Stat& Group::adopt(std::unique_ptr<Stat> stat) {
    Stat& ref = *stat;
    index_.emplace(ref.name(), stats_.size());
    stats_.push_back(std::move(stat));
    return ref;
}

Scalar& Group::scalar(std::string_view name, std::string_view desc) {
    return static_cast<Scalar&>(
        adopt(std::make_unique<Scalar>(qualify(name), std::string{desc})));
}

Formula& Group::formula(std::string_view name, std::string_view desc,
                        std::function<double()> fn) {
    return static_cast<Formula&>(adopt(
        std::make_unique<Formula>(qualify(name), std::string{desc}, std::move(fn))));
}

Distribution& Group::distribution(std::string_view name, std::string_view desc) {
    return static_cast<Distribution&>(
        adopt(std::make_unique<Distribution>(qualify(name), std::string{desc})));
}

Histogram& Group::histogram(std::string_view name, std::string_view desc) {
    return static_cast<Histogram&>(
        adopt(std::make_unique<Histogram>(qualify(name), std::string{desc})));
}

const Stat* Group::find(std::string_view name) const {
    const auto it = index_.find(qualify(name));
    return it == index_.end() ? nullptr : stats_[it->second].get();
}

void Group::dump(std::ostream& os) const {
    for (const auto& s : stats_) {
        os << std::left << std::setw(48) << s->name() << ' '
           << std::right << std::setw(16) << s->value() << "  # " << s->desc() << '\n';
    }
}

exp::Json Group::dumpJson() const {
    exp::Json doc = exp::Json::object();
    for (const auto& s : stats_) {
        // Stat names are fully qualified; strip "<prefix>." so the JSON
        // nests naturally under a member keyed by the group prefix.
        std::string_view rel = s->name();
        if (!prefix_.empty() && rel.size() > prefix_.size() &&
            rel.substr(0, prefix_.size()) == prefix_ && rel[prefix_.size()] == '.') {
            rel.remove_prefix(prefix_.size() + 1);
        }
        if (const auto* dist = dynamic_cast<const Distribution*>(s.get())) {
            // minValue()/maxValue() guard count==0 internally, so an empty
            // distribution serializes as all-zeros rather than the min>max
            // accumulator sentinels.
            exp::Json d = exp::Json::object();
            d["count"] = dist->count();
            d["min"] = dist->minValue();
            d["mean"] = dist->mean();
            d["max"] = dist->maxValue();
            d["stddev"] = dist->stddev();
            doc[rel] = std::move(d);
        } else if (const auto* hist = dynamic_cast<const Histogram*>(s.get())) {
            exp::Json h = exp::Json::object();
            h["count"] = hist->count();
            h["min"] = hist->minValue();
            h["mean"] = hist->mean();
            h["max"] = hist->maxValue();
            h["p50"] = hist->quantile(0.50);
            h["p90"] = hist->quantile(0.90);
            h["p99"] = hist->quantile(0.99);
            h["p999"] = hist->quantile(0.999);
            doc[rel] = std::move(h);
        } else {
            doc[rel] = s->value();
        }
    }
    return doc;
}

void Group::resetAll() {
    for (auto& s : stats_) s->reset();
}

}  // namespace g5r::stats
