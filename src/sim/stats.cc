#include "sim/stats.hh"

#include <iomanip>
#include <ostream>

#include "exp/json.hh"

namespace g5r::stats {

std::string Group::qualify(std::string_view name) const {
    std::string full = prefix_;
    if (!full.empty()) full += '.';
    full += name;
    return full;
}

Scalar& Group::scalar(std::string_view name, std::string_view desc) {
    auto stat = std::make_unique<Scalar>(qualify(name), std::string{desc});
    Scalar& ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

Formula& Group::formula(std::string_view name, std::string_view desc,
                        std::function<double()> fn) {
    auto stat = std::make_unique<Formula>(qualify(name), std::string{desc}, std::move(fn));
    Formula& ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

Distribution& Group::distribution(std::string_view name, std::string_view desc) {
    auto stat = std::make_unique<Distribution>(qualify(name), std::string{desc});
    Distribution& ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

const Stat* Group::find(std::string_view name) const {
    const std::string full = qualify(name);
    for (const auto& s : stats_) {
        if (s->name() == full) return s.get();
    }
    return nullptr;
}

void Group::dump(std::ostream& os) const {
    for (const auto& s : stats_) {
        os << std::left << std::setw(48) << s->name() << ' '
           << std::right << std::setw(16) << s->value() << "  # " << s->desc() << '\n';
    }
}

exp::Json Group::dumpJson() const {
    exp::Json doc = exp::Json::object();
    for (const auto& s : stats_) {
        // Stat names are fully qualified; strip "<prefix>." so the JSON
        // nests naturally under a member keyed by the group prefix.
        std::string_view rel = s->name();
        if (!prefix_.empty() && rel.size() > prefix_.size() &&
            rel.substr(0, prefix_.size()) == prefix_ && rel[prefix_.size()] == '.') {
            rel.remove_prefix(prefix_.size() + 1);
        }
        if (const auto* dist = dynamic_cast<const Distribution*>(s.get())) {
            exp::Json d = exp::Json::object();
            d["count"] = dist->count();
            d["min"] = dist->minValue();
            d["mean"] = dist->mean();
            d["max"] = dist->maxValue();
            d["stddev"] = dist->stddev();
            doc[rel] = std::move(d);
        } else {
            doc[rel] = s->value();
        }
    }
    return doc;
}

void Group::resetAll() {
    for (auto& s : stats_) s->reset();
}

}  // namespace g5r::stats
