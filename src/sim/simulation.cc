#include "sim/simulation.hh"

#include <ostream>

#include "exp/json.hh"
#include "sim/logging.hh"
#include "sim/observer.hh"
#include "sim/packet_id.hh"
#include "sim/sim_object.hh"

namespace g5r {

SimObject::SimObject(Simulation& sim, std::string name)
    : sim_(sim), stats_(name), name_(std::move(name)) {
    sim.registerObject(*this);
}

EventQueue& SimObject::eventQueue() { return sim_.eventQueue(); }

Tick SimObject::curTick() const { return sim_.eventQueue().curTick(); }

void Simulation::exitSimLoop(std::string reason) {
    exitRequested_ = true;
    exitMessage_ = std::move(reason);
}

void Simulation::setObserver(SimObserver* observer) {
    simAssert(observer == nullptr || observer_ == nullptr || observer == observer_,
              "a different observer is already attached to this Simulation");
    observer_ = observer;
    queue_.setObserver(observer);
}

RunResult Simulation::run(Tick maxTick) {
    // All packets built while this simulation's events execute draw their
    // IDs from this instance, not a process-wide counter, so the stream is
    // identical whether one or many simulations share the process. The
    // observer rides the same thread-local mechanism so the port layer can
    // report packet lifecycles without a back-pointer to the Simulation.
    const PacketIdScope idScope{packetIdCounter_};
    const ObserverScope obsScope{observer_};
    if (!initialized_) {
        initialized_ = true;
        for (SimObject* obj : objects_) obj->init();
        for (SimObject* obj : objects_) obj->startup();
    }
    exitRequested_ = false;
    exitMessage_.clear();

    if (observer_ != nullptr) observer_->runBegin();
    const RunResult result = runLoop(maxTick);
    if (observer_ != nullptr) observer_->runEnd();
    return result;
}

RunResult Simulation::runLoop(Tick maxTick) {
    while (!queue_.empty()) {
        if (queue_.nextTick() > maxTick) {
            queue_.advanceTo(maxTick);
            return RunResult{ExitCause::kMaxTickReached, maxTick, {}};
        }
        queue_.serviceOne();
        if (exitRequested_) {
            return RunResult{ExitCause::kSimExit, queue_.curTick(), exitMessage_};
        }
    }
    // A bounded run behaves as if an exit event fired at maxTick: simulated
    // time reaches the bound even when every object has quiesced (e.g. all
    // RTL ticks gated), so callers observe the same clock gated or not.
    // Unbounded runs keep the historical queue-exhausted result.
    if (maxTick != kMaxTick) {
        queue_.advanceTo(maxTick);
        return RunResult{ExitCause::kMaxTickReached, maxTick, {}};
    }
    return RunResult{ExitCause::kQueueEmpty, queue_.curTick(), {}};
}

void Simulation::dumpStats(std::ostream& os) const {
    for (const SimObject* obj : objects_) obj->statsGroup().dump(os);
}

exp::Json Simulation::dumpStatsJson() const {
    exp::Json doc = exp::Json::object();
    for (const SimObject* obj : objects_) {
        doc[obj->statsGroup().prefix()] = obj->statsGroup().dumpJson();
    }
    return doc;
}

const stats::Stat* Simulation::findStat(std::string_view fullName) const {
    for (const SimObject* obj : objects_) {
        const std::string& prefix = obj->statsGroup().prefix();
        if (fullName.size() > prefix.size() + 1 && fullName.substr(0, prefix.size()) == prefix &&
            fullName[prefix.size()] == '.') {
            if (const auto* s = obj->statsGroup().find(fullName.substr(prefix.size() + 1))) {
                return s;
            }
        }
    }
    return nullptr;
}

}  // namespace g5r
