#include "sim/simulation.hh"

#include <ostream>

#include "sim/logging.hh"
#include "sim/packet_id.hh"
#include "sim/sim_object.hh"

namespace g5r {

SimObject::SimObject(Simulation& sim, std::string name)
    : sim_(sim), stats_(name), name_(std::move(name)) {
    sim.registerObject(*this);
}

EventQueue& SimObject::eventQueue() { return sim_.eventQueue(); }

Tick SimObject::curTick() const { return sim_.eventQueue().curTick(); }

void Simulation::exitSimLoop(std::string reason) {
    exitRequested_ = true;
    exitMessage_ = std::move(reason);
}

RunResult Simulation::run(Tick maxTick) {
    // All packets built while this simulation's events execute draw their
    // IDs from this instance, not a process-wide counter, so the stream is
    // identical whether one or many simulations share the process.
    const PacketIdScope idScope{packetIdCounter_};
    if (!initialized_) {
        initialized_ = true;
        for (SimObject* obj : objects_) obj->init();
        for (SimObject* obj : objects_) obj->startup();
    }
    exitRequested_ = false;
    exitMessage_.clear();

    while (!queue_.empty()) {
        if (queue_.nextTick() > maxTick) {
            return RunResult{ExitCause::kMaxTickReached, maxTick, {}};
        }
        queue_.serviceOne();
        if (exitRequested_) {
            return RunResult{ExitCause::kSimExit, queue_.curTick(), exitMessage_};
        }
    }
    return RunResult{ExitCause::kQueueEmpty, queue_.curTick(), {}};
}

void Simulation::dumpStats(std::ostream& os) const {
    for (const SimObject* obj : objects_) obj->statsGroup().dump(os);
}

const stats::Stat* Simulation::findStat(std::string_view fullName) const {
    for (const SimObject* obj : objects_) {
        const std::string& prefix = obj->statsGroup().prefix();
        if (fullName.size() > prefix.size() + 1 && fullName.substr(0, prefix.size()) == prefix &&
            fullName[prefix.size()] == '.') {
            if (const auto* s = obj->statsGroup().find(fullName.substr(prefix.size() + 1))) {
                return s;
            }
        }
    }
    return nullptr;
}

}  // namespace g5r
