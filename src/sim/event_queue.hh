// The central event queue: a lazy-deletion binary heap over (tick, priority,
// sequence). Descheduling marks the event's live heap entry stale via a
// generation counter rather than removing it, keeping all operations O(log n).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event.hh"
#include "sim/ticks.hh"

namespace g5r {

class SimObserver;

class EventQueue {
public:
    EventQueue() = default;
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /// Current simulated time. Monotonically non-decreasing.
    Tick curTick() const { return curTick_; }

    /// Schedule @p ev at absolute tick @p when (>= curTick()).
    void schedule(Event& ev, Tick when);

    /// Remove a scheduled event from the queue.
    void deschedule(Event& ev);

    /// Move an already-scheduled (or idle) event to a new tick.
    void reschedule(Event& ev, Tick when);

    /// True when no live events remain.
    bool empty() const { return liveEvents_ == 0; }

    /// Tick of the next live event. Queue must not be empty. Non-const:
    /// lazily drops stale (descheduled) heap entries from the top.
    Tick nextTick();

    /// Pop and process the next event, advancing curTick.
    void serviceOne();

    /// Total number of events processed so far.
    std::uint64_t numProcessed() const { return numProcessed_; }

    /// Number of currently scheduled events.
    std::uint64_t numPending() const { return liveEvents_; }

    /// Observer wrapped around every dispatch (nullptr = off, the fast
    /// path: one predictable branch per event). Installed by
    /// Simulation::setObserver().
    void setObserver(SimObserver* observer) { observer_ = observer; }
    SimObserver* observer() const { return observer_; }

private:
    struct Entry {
        Tick when;
        int priority;
        std::uint64_t sequence;
        std::uint64_t generation;
        Event* event;
    };

    static bool laterThan(const Entry& a, const Entry& b);
    void siftUp(std::size_t idx);
    void siftDown(std::size_t idx);
    void popStale();

    std::vector<Entry> heap_;
    SimObserver* observer_ = nullptr;
    Tick curTick_ = 0;
    std::uint64_t nextSequence_ = 0;
    std::uint64_t numProcessed_ = 0;
    std::uint64_t liveEvents_ = 0;
};

}  // namespace g5r
