// The central event queue: a lazy-deletion binary heap over (tick, priority,
// sequence). Descheduling marks the event's live heap entry stale via a
// generation counter rather than removing it, keeping all operations O(log n).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/event.hh"
#include "sim/ticks.hh"

namespace g5r {

class SimObserver;

class EventQueue {
public:
    EventQueue() = default;
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /// Current simulated time. Monotonically non-decreasing.
    Tick curTick() const { return curTick_; }

    /// Schedule @p ev at absolute tick @p when (>= curTick()).
    void schedule(Event& ev, Tick when);

    /// Remove a scheduled event from the queue.
    void deschedule(Event& ev);

    /// Move an already-scheduled (or idle) event to a new tick.
    void reschedule(Event& ev, Tick when);

    /// True when no live events remain.
    bool empty() const { return liveEvents_ == 0; }

    /// Tick of the next live event. Queue must not be empty. Non-const:
    /// lazily drops stale (descheduled) heap entries from the top.
    Tick nextTick();

    /// Pop and process the next event, advancing curTick.
    void serviceOne();

    /// Advance to the *end* of tick @p when without servicing anything.
    /// Used by the run loop to land exactly on a finite run bound, so a
    /// fully quiesced system (e.g. every RTL tick gated) still sees
    /// simulated time pass. Marks every priority at @p when as passed.
    /// No-op when @p when is in the past.
    void advanceTo(Tick when) {
        if (when < curTick_) return;
        curTick_ = when;
        passedPriority_ = kAllPriorities;
    }

    /// True when the dispatch position has moved past (@p when,
    /// @p priority): a hypothetical event there would already have run.
    /// Lets a wake path decide whether an ungated twin's tick at this very
    /// edge would have fired by now — stimuli injected afterwards (e.g. an
    /// embedder poking a bus between run() slices) must be sampled at the
    /// *next* edge to keep gated and ungated timing identical.
    bool hasPassed(Tick when, int priority) const {
        return when < curTick_ || (when == curTick_ && priority <= passedPriority_);
    }

    /// Total number of events processed so far.
    std::uint64_t numProcessed() const { return numProcessed_; }

    /// Number of currently scheduled events.
    std::uint64_t numPending() const { return liveEvents_; }

    /// Observer wrapped around every dispatch (nullptr = off, the fast
    /// path: one predictable branch per event). Installed by
    /// Simulation::setObserver().
    void setObserver(SimObserver* observer) { observer_ = observer; }
    SimObserver* observer() const { return observer_; }

private:
    struct Entry {
        Tick when;
        int priority;
        std::uint64_t sequence;
        std::uint64_t generation;
        Event* event;
    };

    static bool laterThan(const Entry& a, const Entry& b);
    void siftUp(std::size_t idx);
    void siftDown(std::size_t idx);
    void popStale();

    /// Sentinel for passedPriority_: the whole tick is behind us.
    static constexpr int kAllPriorities = std::numeric_limits<int>::max();

    std::vector<Entry> heap_;
    SimObserver* observer_ = nullptr;
    Tick curTick_ = 0;
    /// Highest priority dispatched at curTick_ so far (-1: none yet).
    /// Within one tick this only grows via dispatch order, except when an
    /// embedder schedules a fresh low-priority event at the current tick —
    /// the high-water mark keeps recording how far the tick had advanced.
    int passedPriority_ = -1;
    std::uint64_t nextSequence_ = 0;
    std::uint64_t numProcessed_ = 0;
    std::uint64_t liveEvents_ = 0;
};

}  // namespace g5r
