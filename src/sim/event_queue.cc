#include "sim/event_queue.hh"

#include "sim/logging.hh"
#include "sim/observer.hh"

namespace g5r {

Event::~Event() {
    if (scheduled_ && queue_ != nullptr) queue_->deschedule(*this);
}

bool EventQueue::laterThan(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when > b.when;
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.sequence > b.sequence;
}

void EventQueue::siftUp(std::size_t idx) {
    while (idx > 0) {
        const std::size_t parent = (idx - 1) / 2;
        if (!laterThan(heap_[parent], heap_[idx])) break;
        std::swap(heap_[parent], heap_[idx]);
        idx = parent;
    }
}

void EventQueue::siftDown(std::size_t idx) {
    const std::size_t n = heap_.size();
    while (true) {
        const std::size_t left = 2 * idx + 1;
        const std::size_t right = left + 1;
        std::size_t smallest = idx;
        if (left < n && laterThan(heap_[smallest], heap_[left])) smallest = left;
        if (right < n && laterThan(heap_[smallest], heap_[right])) smallest = right;
        if (smallest == idx) break;
        std::swap(heap_[idx], heap_[smallest]);
        idx = smallest;
    }
}

void EventQueue::schedule(Event& ev, Tick when) {
    simAssert(!ev.scheduled_, "schedule() on an already-scheduled event");
    simAssert(when >= curTick_, "schedule() into the past");
    ev.when_ = when;
    ev.scheduled_ = true;
    ev.queue_ = this;
    ++ev.generation_;
    heap_.push_back(Entry{when, ev.priority_, nextSequence_++, ev.generation_, &ev});
    siftUp(heap_.size() - 1);
    ++liveEvents_;
}

void EventQueue::deschedule(Event& ev) {
    simAssert(ev.scheduled_, "deschedule() on an idle event");
    simAssert(ev.queue_ == this, "deschedule() on the wrong queue");
    ev.scheduled_ = false;
    ++ev.generation_;  // Invalidates the heap entry; it is dropped lazily.
    --liveEvents_;
}

void EventQueue::reschedule(Event& ev, Tick when) {
    if (ev.scheduled_) deschedule(ev);
    schedule(ev, when);
}

void EventQueue::popStale() {
    while (!heap_.empty()) {
        const Entry& top = heap_.front();
        const bool live = top.event->scheduled_ && top.event->generation_ == top.generation;
        if (live) return;
        std::swap(heap_.front(), heap_.back());
        heap_.pop_back();
        if (!heap_.empty()) siftDown(0);
    }
}

Tick EventQueue::nextTick() {
    popStale();
    simAssert(!heap_.empty(), "nextTick() on an empty queue");
    return heap_.front().when;
}

void EventQueue::serviceOne() {
    popStale();
    simAssert(!heap_.empty(), "serviceOne() on an empty queue");
    const Entry top = heap_.front();
    std::swap(heap_.front(), heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) siftDown(0);

    Event& ev = *top.event;
    simAssert(top.when >= curTick_, "event queue went backwards");
    if (top.when > curTick_) {
        curTick_ = top.when;
        passedPriority_ = top.priority;
    } else if (top.priority > passedPriority_) {
        passedPriority_ = top.priority;
    }
    ev.scheduled_ = false;
    ++ev.generation_;
    --liveEvents_;
    ++numProcessed_;
    if (observer_ == nullptr) {
        ev.process();
    } else {
        // The observer must cache what it needs at dispatchBegin(): the
        // handler may legally destroy its own event.
        observer_->dispatchBegin(ev, curTick_);
        ev.process();
        observer_->dispatchEnd(curTick_);
    }
}

}  // namespace g5r
