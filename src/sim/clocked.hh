// ClockedObject: a SimObject with an associated clock.
//
// Provides cycle<->tick conversion helpers analogous to gem5's ClockedObject.
// RtlObject uses these to run an RTL model's clock at a ratio of the SoC
// clock (e.g. a 1 GHz accelerator inside a 2 GHz system).
#pragma once

#include "sim/sim_object.hh"
#include "sim/ticks.hh"

namespace g5r {

class ClockedObject : public SimObject {
public:
    ClockedObject(Simulation& sim, std::string name, Tick clockPeriod)
        : SimObject(sim, std::move(name)), period_(clockPeriod) {}

    Tick clockPeriod() const { return period_; }

    /// Number of whole cycles elapsed at the current tick.
    Cycles curCycle() const { return curTick() / period_; }

    /// The next clock edge at or after the current tick, offset by
    /// @p cyclesAhead additional cycles.
    Tick clockEdge(Cycles cyclesAhead = 0) const {
        const Tick now = curTick();
        const Tick thisEdge = ((now + period_ - 1) / period_) * period_;
        return thisEdge + cyclesAhead * period_;
    }

    /// Convert a cycle count in this domain to ticks.
    Tick cyclesToTicks(Cycles c) const { return c * period_; }

    /// Convert ticks to whole cycles in this domain (rounding up).
    Cycles ticksToCycles(Tick t) const { return (t + period_ - 1) / period_; }

private:
    Tick period_;
};

}  // namespace g5r
