#include "sim/logging.hh"

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

namespace g5r {

namespace detail {
std::atomic<int> debugTraceState{-1};
}  // namespace detail

namespace {

std::set<std::string, std::less<>> parseDebugSpec(std::string_view spec) {
    std::set<std::string, std::less<>> flags;
    std::string_view rest{spec};
    while (!rest.empty()) {
        const auto comma = rest.find(',');
        const auto item = rest.substr(0, comma);
        if (!item.empty()) flags.emplace(item);
        if (comma == std::string_view::npos) break;
        rest.remove_prefix(comma + 1);
    }
    return flags;
}

// Written under initOnce / by setDebugFlags(); read only when
// debugTraceState says tracing is active.
std::set<std::string, std::less<>> debugFlagSet;
std::once_flag debugInitOnce;

void installDebugFlags(std::set<std::string, std::less<>> flags) {
    debugFlagSet = std::move(flags);
    detail::debugTraceState.store(debugFlagSet.empty() ? 0 : 1, std::memory_order_release);
}

std::mutex logMutex;

thread_local std::string tlsRunLabel;

// Panic hooks are per-thread (one thread drives one run); the counter is
// process-wide only so handles stay unique across threads.
struct PanicHook {
    std::uint64_t id;
    std::function<void()> fn;
};
thread_local std::vector<PanicHook> tlsPanicHooks;
thread_local bool tlsInPanicHooks = false;
std::atomic<std::uint64_t> panicHookIds{0};

/// Run the calling thread's hooks, newest first. Re-entrancy (a hook that
/// panics) and hook exceptions are contained so the abort always proceeds.
void runPanicHooks() noexcept {
    if (tlsInPanicHooks) return;
    tlsInPanicHooks = true;
    for (auto it = tlsPanicHooks.rbegin(); it != tlsPanicHooks.rend(); ++it) {
        try {
            it->fn();
        } catch (...) {
            // A salvage hook must never mask the original panic.
        }
    }
    tlsInPanicHooks = false;
}

/// Every diagnostic goes out as one pre-built string under the mutex, so
/// concurrent runs can interleave whole lines but never characters.
void writeStderrLine(const std::string& line) {
    const std::lock_guard<std::mutex> lock{logMutex};
    std::cerr << line;
}

}  // namespace

std::string formatPanicMessage(std::string_view msg, const std::source_location& loc) {
    std::ostringstream os;
    if (!tlsRunLabel.empty()) os << '[' << tlsRunLabel << "] ";
    os << "panic: " << msg << "\n  at " << loc.file_name() << ':' << loc.line() << " ("
       << loc.function_name() << ")\n";
    return os.str();
}

[[noreturn]] void panicImpl(std::string_view msg, const std::source_location& loc) {
    writeStderrLine(formatPanicMessage(msg, loc));
    // Crash-time salvage (black-box dump, waveform flush) runs after the
    // message so the report reads cause-first, and outside logMutex so the
    // hooks can emit their own lines.
    runPanicHooks();
    std::abort();
}

std::uint64_t addPanicHook(std::function<void()> hook) {
    const std::uint64_t id = panicHookIds.fetch_add(1, std::memory_order_relaxed) + 1;
    tlsPanicHooks.push_back(PanicHook{id, std::move(hook)});
    return id;
}

void removePanicHook(std::uint64_t id) {
    for (auto it = tlsPanicHooks.begin(); it != tlsPanicHooks.end(); ++it) {
        if (it->id == id) {
            tlsPanicHooks.erase(it);
            return;
        }
    }
}

void logRawLine(const std::string& line) { writeStderrLine(line); }

[[noreturn]] void panicStream(const std::string& msg, std::source_location loc) {
    panicImpl(msg, loc);
}

bool detail::debugTracingSlow() {
    std::call_once(debugInitOnce, [] {
        const char* env = std::getenv("G5R_DEBUG");
        installDebugFlags(parseDebugSpec(env ? env : ""));
    });
    return debugTraceState.load(std::memory_order_relaxed) != 0;
}

void setDebugFlags(std::string_view spec) {
    // Claim the one-time init so a later first dtrace() can't clobber this
    // explicit configuration with the environment's.
    std::call_once(debugInitOnce, [] {});
    installDebugFlags(parseDebugSpec(spec));
}

bool debugFlagEnabled(std::string_view flag) {
    if (!detail::debugTracingActive()) return false;
    return debugFlagSet.count("all") > 0 || debugFlagSet.count(flag) > 0;
}

void debugPrint(std::string_view flag, const std::string& msg) {
    std::string line;
    line.reserve(tlsRunLabel.size() + flag.size() + msg.size() + 8);
    if (!tlsRunLabel.empty()) {
        line += '[';
        line += tlsRunLabel;
        line += "] ";
    }
    line += '[';
    line += flag;
    line += "] ";
    line += msg;
    line += '\n';
    writeStderrLine(line);
}

void setLogRunLabel(std::string label) { tlsRunLabel = std::move(label); }

const std::string& logRunLabel() { return tlsRunLabel; }

RunLabelScope::RunLabelScope(std::string label) : prev_(std::move(tlsRunLabel)) {
    tlsRunLabel = std::move(label);
}

RunLabelScope::~RunLabelScope() { tlsRunLabel = std::move(prev_); }

}  // namespace g5r
