#include "sim/logging.hh"

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <set>

namespace g5r {
namespace {

std::set<std::string, std::less<>> parseDebugFlags() {
    std::set<std::string, std::less<>> flags;
    const char* env = std::getenv("G5R_DEBUG");
    if (!env) return flags;
    std::string_view rest{env};
    while (!rest.empty()) {
        const auto comma = rest.find(',');
        const auto item = rest.substr(0, comma);
        if (!item.empty()) flags.emplace(item);
        if (comma == std::string_view::npos) break;
        rest.remove_prefix(comma + 1);
    }
    return flags;
}

const std::set<std::string, std::less<>>& debugFlags() {
    static const auto flags = parseDebugFlags();
    return flags;
}

std::mutex logMutex;

}  // namespace

[[noreturn]] void panicImpl(std::string_view msg, const std::source_location& loc) {
    std::cerr << "panic: " << msg << "\n  at " << loc.file_name() << ':' << loc.line()
              << " (" << loc.function_name() << ")\n";
    std::abort();
}

[[noreturn]] void panicStream(const std::string& msg, std::source_location loc) {
    panicImpl(msg, loc);
}

bool debugFlagEnabled(std::string_view flag) {
    const auto& flags = debugFlags();
    if (flags.empty()) return false;
    return flags.count("all") > 0 || flags.count(flag) > 0;
}

void debugPrint(std::string_view flag, const std::string& msg) {
    const std::lock_guard<std::mutex> lock{logMutex};
    std::cerr << '[' << flag << "] " << msg << '\n';
}

}  // namespace g5r
