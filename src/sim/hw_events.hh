// Hardware event lines: the sideband that connects SoC components to
// monitoring RTL blocks.
//
// The paper wires gem5 core/cache event signals (committed instructions, L1D
// misses, cycles) to the PMU RTL model's event inputs. Components pulse named
// lines here; the RTLObject hosting the PMU drains the accumulated pulses on
// each RTL clock tick and presents them as per-cycle event bits.
#pragma once

#include <array>
#include <cstdint>

namespace g5r {

class HwEventBus {
public:
    static constexpr unsigned kLines = 32;

    /// Standard line assignments used by the SoC builder and the PMU wrapper.
    enum Line : unsigned {
        kCommit0 = 0,  ///< Commit lanes 0..3: one pulse each per instruction.
        kCommit1 = 1,
        kCommit2 = 2,
        kCommit3 = 3,
        kL1dMiss = 4,
        kCycle = 5,
    };

    /// Record @p count pulses on @p line since the last drain.
    void pulse(unsigned line, std::uint32_t count = 1) {
        if (line < kLines) pending_[line] += count;
    }

    /// Read-and-clear all accumulated pulses.
    std::array<std::uint32_t, kLines> drain() {
        const auto out = pending_;
        pending_.fill(0);
        return out;
    }

    /// Peek without clearing (tests).
    const std::array<std::uint32_t, kLines>& peek() const { return pending_; }

private:
    std::array<std::uint32_t, kLines> pending_{};
};

}  // namespace g5r
