// Hardware event lines: the sideband that connects SoC components to
// monitoring RTL blocks.
//
// The paper wires gem5 core/cache event signals (committed instructions, L1D
// misses, cycles) to the PMU RTL model's event inputs. Components pulse named
// lines here; the RTLObject hosting the PMU drains the accumulated pulses on
// each RTL clock tick and presents them as per-cycle event bits.
//
// A gated (quiescent) RTLObject does not tick, so it registers a wake
// callback: the first pulse after a drain invokes every registered callback
// once, which reschedules the consumer's tick. Subsequent pulses before the
// next drain are free (a single branch), keeping the producer hot path flat.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

namespace g5r {

class HwEventBus {
public:
    static constexpr unsigned kLines = 32;

    /// Standard line assignments used by the SoC builder and the PMU wrapper.
    enum Line : unsigned {
        kCommit0 = 0,  ///< Commit lanes 0..3: one pulse each per instruction.
        kCommit1 = 1,
        kCommit2 = 2,
        kCommit3 = 3,
        kL1dMiss = 4,
        kCycle = 5,
    };

    /// Record @p count pulses on @p line since the last drain. Saturates at
    /// UINT32_MAX rather than wrapping: a consumer that drains rarely (or is
    /// gated for a long stretch) must never see the count roll over and
    /// under-report, e.g. PMU event totals.
    void pulse(unsigned line, std::uint32_t count = 1) {
        if (line >= kLines || count == 0) return;
        const std::uint32_t room =
            std::numeric_limits<std::uint32_t>::max() - pending_[line];
        pending_[line] += count < room ? count : room;
        if (!hasPending_) {
            hasPending_ = true;
            for (const auto& wake : wakeCallbacks_) wake();
        }
    }

    /// Read-and-clear all accumulated pulses.
    std::array<std::uint32_t, kLines> drain() {
        const auto out = pending_;
        pending_.fill(0);
        hasPending_ = false;
        return out;
    }

    /// True when any pulses arrived since the last drain.
    bool hasPending() const { return hasPending_; }

    /// Peek without clearing (tests).
    const std::array<std::uint32_t, kLines>& peek() const { return pending_; }

    /// Register a callback fired on the first pulse after each drain (the
    /// empty -> non-empty transition). Callbacks must outlive the bus's
    /// producers or be removed with clearWakeCallbacks().
    void addWakeCallback(std::function<void()> cb) {
        wakeCallbacks_.push_back(std::move(cb));
    }

    void clearWakeCallbacks() { wakeCallbacks_.clear(); }

private:
    std::array<std::uint32_t, kLines> pending_{};
    std::vector<std::function<void()>> wakeCallbacks_;
    bool hasPending_ = false;
};

}  // namespace g5r
