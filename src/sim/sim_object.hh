// SimObject: the base of every simulated component.
//
// A SimObject is constructed against a Simulation, which provides the shared
// event queue and registers the object for lifecycle hooks. Construction
// order defines wiring order; Simulation::run() calls init() on every object
// (after all wiring is complete) and startup() just before the first event is
// serviced.
#pragma once

#include <string>

#include "sim/stats.hh"
#include "sim/ticks.hh"

namespace g5r {

class EventQueue;
class Simulation;

class SimObject {
public:
    SimObject(Simulation& sim, std::string name);
    SimObject(const SimObject&) = delete;
    SimObject& operator=(const SimObject&) = delete;
    virtual ~SimObject() = default;

    const std::string& name() const { return name_; }

    /// Called once after the full system is constructed and connected.
    virtual void init() {}

    /// Called once immediately before simulation begins; schedule initial
    /// events here.
    virtual void startup() {}

    Simulation& simulation() { return sim_; }
    EventQueue& eventQueue();
    Tick curTick() const;

    stats::Group& statsGroup() { return stats_; }
    const stats::Group& statsGroup() const { return stats_; }

protected:
    Simulation& sim_;
    stats::Group stats_;

private:
    std::string name_;
};

}  // namespace g5r
