// Discrete-event primitives.
//
// An Event is something that happens at a simulated tick. Events are owned by
// the objects that schedule them (typically as data members) and must outlive
// any tick at which they are scheduled. The queue orders events by
// (tick, priority, insertion sequence), which makes simulation fully
// deterministic for a fixed program.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "sim/ticks.hh"

namespace g5r {

class EventQueue;

/// Scheduling priority: lower values run first within the same tick.
enum class EventPriority : int {
    kStatDump = -100,   ///< Interval statistic dumps observe pre-tick state.
    kClockTick = 0,     ///< Normal model activity.
    kResponse = 10,     ///< Packet responses, after same-tick requests.
    kRtlTick = 20,      ///< RTL model clock edges sample *after* every
                        ///< same-tick packet delivery and event pulse, so a
                        ///< tick rescheduled by a quiescence wake-up observes
                        ///< exactly the state a free-running tick would.
    kSimExit = 100,     ///< Exit checks run after all activity at a tick.
};

/// Base class for all schedulable events.
class Event {
public:
    Event() = default;
    explicit Event(EventPriority prio) : priority_(static_cast<int>(prio)) {}
    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;
    virtual ~Event();

    /// Invoked by the event queue when the event's tick is reached.
    virtual void process() = 0;

    /// Human-readable identification used in debug traces.
    virtual std::string name() const { return "anon-event"; }

    bool scheduled() const { return scheduled_; }
    Tick when() const { return when_; }
    int priority() const { return priority_; }

private:
    friend class EventQueue;
    Tick when_ = 0;
    int priority_ = static_cast<int>(EventPriority::kClockTick);
    std::uint64_t generation_ = 0;  ///< Bumped on (de)schedule to invalidate stale heap entries.
    bool scheduled_ = false;
    EventQueue* queue_ = nullptr;   ///< Queue the event is currently scheduled on.
};

/// Convenience event that invokes a std::function. Mirrors gem5's
/// EventFunctionWrapper; the typical use is a member `onTick()` bound once in
/// the constructor and rescheduled every cycle.
class CallbackEvent final : public Event {
public:
    CallbackEvent(std::function<void()> callback, std::string eventName,
                  EventPriority prio = EventPriority::kClockTick)
        : Event(prio), callback_(std::move(callback)), name_(std::move(eventName)) {}

    void process() override { callback_(); }
    std::string name() const override { return name_; }

private:
    std::function<void()> callback_;
    std::string name_;
};

}  // namespace g5r
