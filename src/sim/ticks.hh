// Global simulated-time definitions.
//
// Like gem5, simulated time is counted in integer "ticks" where one tick is
// one picosecond. All latencies and clock periods are expressed in ticks so
// that heterogeneous clock domains (e.g. a 2 GHz core and a 1 GHz RTL model)
// compose without rounding surprises.
#pragma once

#include <cstdint>

namespace g5r {

/// Simulated time. 1 tick == 1 picosecond.
using Tick = std::uint64_t;

/// A count of clock cycles in some clock domain.
using Cycles = std::uint64_t;

/// Number of ticks in one simulated second.
inline constexpr Tick kTicksPerSecond = 1'000'000'000'000ULL;

/// Sentinel for "no deadline".
inline constexpr Tick kMaxTick = ~Tick{0};

/// Clock period, in ticks, of a clock running at @p mhz megahertz.
constexpr Tick periodFromMHz(std::uint64_t mhz) {
    return kTicksPerSecond / (mhz * 1'000'000ULL);
}

/// Clock period, in ticks, of a clock running at @p ghz gigahertz.
constexpr Tick periodFromGHz(std::uint64_t ghz) {
    return periodFromMHz(ghz * 1000ULL);
}

/// Ticks in @p ns nanoseconds.
constexpr Tick nsToTicks(double ns) {
    return static_cast<Tick>(ns * 1000.0);
}

/// Convert ticks to (double) seconds, for reporting.
constexpr double ticksToSeconds(Tick t) {
    return static_cast<double>(t) / static_cast<double>(kTicksPerSecond);
}

/// Convert ticks to (double) milliseconds, for reporting.
constexpr double ticksToMs(Tick t) {
    return static_cast<double>(t) / 1e9;
}

}  // namespace g5r
