// Observability hook points for the simulation core.
//
// A SimObserver sees every event-queue dispatch (wrapped around
// Event::process()) and the lifecycle of every timing packet (reported from
// the port layer). The production implementation is obs::ObsSession
// (src/obs/), which fans the callbacks out to the Perfetto trace writer and
// the host-time profiler; the simulation core knows only this interface.
//
// Cost when off: the event loop pays one branch on a null pointer per
// dispatch, and the port layer one thread-local load + branch per hop —
// there is no locking, no allocation, and no string work on the disabled
// path.
//
// The packet hooks are delivered through a *thread-local* channel
// (ObserverScope, installed by Simulation::run() exactly like
// PacketIdScope): ports and packets are plain objects with no back-pointer
// to their Simulation, and one thread drives one Simulation (DESIGN.md), so
// the thread identifies the run.
#pragma once

#include <cstdint>

#include "sim/ticks.hh"

namespace g5r {

class Event;

/// Identifies one logical unit of work flowing through the SoC (an NVDLA
/// job, a DMA descriptor, a PMU script, ...). 0 means "untagged"; real IDs
/// come from Simulation::allocRequestId() and are strictly positive, so a
/// run's ID stream is per-Simulation and deterministic.
using ReqId = std::uint64_t;

/// Stage taxonomy for request span attribution. Each span a component
/// reports is labelled with the stage of the pipeline the request spent
/// those ticks in; the critical-path analysis (src/obs/reqtrace.hh) blames
/// overlapping spans by a fixed precedence. Keep the order stable: the
/// numeric values are serialized into .reqtrace.jsonl sidecars.
enum class ReqStage : std::uint8_t {
    kHostLoad,     ///< Host-side configuration (CSB register writes, PMU readout).
    kDmaStage,     ///< DMA engine staging data into the scratchpad.
    kSpmFill,      ///< SPM miss fill in flight (MSHR occupancy).
    kXbarQueue,    ///< Queued in a crossbar layer waiting for the peer.
    kDramService,  ///< In a DRAM channel queue / being serviced.
    kRtlCompute,   ///< RTL model computing (host poll window).
    kDrain,        ///< Result draining back to main memory.
};

inline constexpr unsigned kNumReqStages = 7;

const char* reqStageName(ReqStage stage);

class SimObserver {
public:
    virtual ~SimObserver() = default;

    /// Bracketing Simulation::run(): wall time between the two calls is the
    /// run's host cost (the profiler's denominator).
    virtual void runBegin() {}
    virtual void runEnd() {}

    /// Wrapped around Event::process(). dispatchEnd() deliberately does not
    /// receive the event again: a handler may destroy its own event, so
    /// implementations must cache whatever they need at dispatchBegin().
    virtual void dispatchBegin(const Event& ev, Tick when) = 0;
    virtual void dispatchEnd(Tick when) = 0;

    /// Packet lifecycle, reported by the port layer (mem/port.hh). "Issued"
    /// fires at the first accepted timing send of a response-needing packet,
    /// "forwarded" at each later accepted request hop, "responded" at each
    /// accepted response hop, and "completed" when the (response) packet is
    /// finally destroyed by its requester. Simulated time is not passed:
    /// the observer tracks the current tick via dispatchBegin().
    virtual void packetIssued(std::uint64_t id, std::uint64_t addr, unsigned size,
                              bool isRead) {
        (void)id; (void)addr; (void)size; (void)isRead;
    }
    virtual void packetForwarded(std::uint64_t id) { (void)id; }
    virtual void packetResponded(std::uint64_t id) { (void)id; }
    virtual void packetCompleted(std::uint64_t id) { (void)id; }

    /// Request lifecycle, reported by the components that own a unit of
    /// work (soc/NvdlaHost, mem/DmaEngine, soc/PmuObserver, ...). A request
    /// begins once, may reference a parent (0 = root), accumulates stage
    /// spans in simulated ticks, and ends once. Components call these
    /// unconditionally when tracing is on; the default implementations cost
    /// nothing so observers that do not care need not override.
    virtual void requestBegin(ReqId id, ReqId parent, const char* kind, Tick when) {
        (void)id; (void)parent; (void)kind; (void)when;
    }
    virtual void requestEnd(ReqId id, Tick when) { (void)id; (void)when; }
    virtual void requestSpan(ReqId id, ReqStage stage, Tick begin, Tick end) {
        (void)id; (void)stage; (void)begin; (void)end;
    }
};

namespace detail {
extern thread_local SimObserver* tlsSimObserver;
}  // namespace detail

/// The calling thread's active observer; nullptr when observability is off
/// (the common case — callers branch on this and pay nothing more).
inline SimObserver* threadObserver() { return detail::tlsSimObserver; }

/// RAII: install @p observer (may be nullptr) as the calling thread's
/// active observer. Scopes nest; the previous observer is restored on
/// destruction.
class ObserverScope {
public:
    explicit ObserverScope(SimObserver* observer);
    ~ObserverScope();
    ObserverScope(const ObserverScope&) = delete;
    ObserverScope& operator=(const ObserverScope&) = delete;

private:
    SimObserver* prev_;
};

}  // namespace g5r
