// Per-run packet-ID allocation.
//
// Packet IDs used to come from one process-global (non-atomic!) counter,
// which was a data race once two Simulations ran on different threads and
// made a run's ID sequence depend on every run that preceded it in the
// process. IDs are now drawn from a thread-local *active counter*, installed
// by `Simulation::run()` (one thread per Simulation — see DESIGN.md) so each
// run observes its own deterministic 1, 2, 3, ... sequence regardless of how
// many runs execute concurrently. Code that builds packets with no
// Simulation driving the thread (some unit tests) falls back to a
// process-global std::atomic counter.
#pragma once

#include <cstdint>

namespace g5r {

/// Next packet ID: the thread's active per-run counter when one is
/// installed, the atomic process-global fallback otherwise.
std::uint64_t nextPacketId();

/// RAII: install @p counter as the calling thread's active packet-ID
/// counter. Scopes nest; the previous counter is restored on destruction.
class PacketIdScope {
public:
    explicit PacketIdScope(std::uint64_t& counter);
    ~PacketIdScope();
    PacketIdScope(const PacketIdScope&) = delete;
    PacketIdScope& operator=(const PacketIdScope&) = delete;

private:
    std::uint64_t* prev_;
};

}  // namespace g5r
