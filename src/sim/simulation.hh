// Simulation: owns the event queue, tracks all SimObjects, and drives the
// main event loop. One Simulation instance per simulated system; there is no
// global state, so tests can run many systems in one process.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/event.hh"
#include "sim/event_queue.hh"
#include "sim/ticks.hh"

namespace g5r {

class SimObject;
namespace stats { class Stat; }

/// Why the event loop returned.
enum class ExitCause {
    kQueueEmpty,      ///< No events left to service.
    kMaxTickReached,  ///< The caller's deadline elapsed.
    kSimExit,         ///< A component called exitSimLoop().
};

struct RunResult {
    ExitCause cause;
    Tick tick;             ///< Tick at which the loop stopped.
    std::string message;   ///< exitSimLoop() reason, if any.
};

class Simulation {
public:
    Simulation() = default;
    Simulation(const Simulation&) = delete;
    Simulation& operator=(const Simulation&) = delete;

    EventQueue& eventQueue() { return queue_; }
    Tick curTick() const { return queue_.curTick(); }

    /// Called by the SimObject constructor.
    void registerObject(SimObject& obj) { objects_.push_back(&obj); }

    /// Request that the event loop stop at the current tick.
    void exitSimLoop(std::string reason);

    /// Run until the queue drains, maxTick passes, or exitSimLoop() is
    /// called. init()/startup() hooks run exactly once, on the first call.
    RunResult run(Tick maxTick = kMaxTick);

    /// Dump every registered object's statistics.
    void dumpStats(std::ostream& os) const;

    /// Look up a stat by fully-qualified name ("cpu0.committedInsts").
    const stats::Stat* findStat(std::string_view fullName) const;

    const std::vector<SimObject*>& objects() const { return objects_; }

    /// This simulation's packet-ID counter. run() installs it as the
    /// calling thread's active counter (sim/packet_id.hh) so the run's
    /// packet-ID stream is per-Simulation and deterministic.
    std::uint64_t& packetIdCounter() { return packetIdCounter_; }

private:
    EventQueue queue_;
    std::vector<SimObject*> objects_;
    std::uint64_t packetIdCounter_ = 0;
    bool initialized_ = false;
    bool exitRequested_ = false;
    std::string exitMessage_;
};

}  // namespace g5r
