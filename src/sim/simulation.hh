// Simulation: owns the event queue, tracks all SimObjects, and drives the
// main event loop. One Simulation instance per simulated system; there is no
// global state, so tests can run many systems in one process.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/event.hh"
#include "sim/event_queue.hh"
#include "sim/ticks.hh"

namespace g5r {

class SimObject;
class SimObserver;
namespace exp { class Json; }
namespace stats { class Stat; }

/// Why the event loop returned.
enum class ExitCause {
    kQueueEmpty,      ///< No events left to service.
    kMaxTickReached,  ///< The caller's deadline elapsed.
    kSimExit,         ///< A component called exitSimLoop().
};

struct RunResult {
    ExitCause cause;
    Tick tick;             ///< Tick at which the loop stopped.
    std::string message;   ///< exitSimLoop() reason, if any.
};

class Simulation {
public:
    Simulation() = default;
    Simulation(const Simulation&) = delete;
    Simulation& operator=(const Simulation&) = delete;

    EventQueue& eventQueue() { return queue_; }
    Tick curTick() const { return queue_.curTick(); }

    /// Called by the SimObject constructor.
    void registerObject(SimObject& obj) { objects_.push_back(&obj); }

    /// Request that the event loop stop at the current tick.
    void exitSimLoop(std::string reason);

    /// Run until the queue drains, maxTick passes, or exitSimLoop() is
    /// called. init()/startup() hooks run exactly once, on the first call.
    RunResult run(Tick maxTick = kMaxTick);

    /// Dump every registered object's statistics.
    void dumpStats(std::ostream& os) const;

    /// The same snapshot as a machine-readable JSON document: one member
    /// per object (keyed by its name), each a stats::Group::dumpJson()
    /// object. Shares the BENCH_*.json document model (exp/json.hh).
    exp::Json dumpStatsJson() const;

    /// Attach an observability hook (src/obs/ObsSession) — or nullptr to
    /// detach. The observer sees every dispatch and packet of subsequent
    /// run() calls; with none attached the loop runs on its historical
    /// fast path.
    void setObserver(SimObserver* observer);
    SimObserver* observer() const { return observer_; }

    /// Look up a stat by fully-qualified name ("cpu0.committedInsts").
    const stats::Stat* findStat(std::string_view fullName) const;

    const std::vector<SimObject*>& objects() const { return objects_; }

    /// This simulation's packet-ID counter. run() installs it as the
    /// calling thread's active counter (sim/packet_id.hh) so the run's
    /// packet-ID stream is per-Simulation and deterministic.
    std::uint64_t& packetIdCounter() { return packetIdCounter_; }

    /// Allocate a request ID for causal tracing (sim/observer.hh). Always
    /// counts — whether or not an observer is attached — so the ID stream a
    /// given configuration produces is identical traced or untraced. IDs
    /// start at 1; 0 means "untagged".
    std::uint64_t allocRequestId() { return ++requestIdCounter_; }

private:
    RunResult runLoop(Tick maxTick);

    EventQueue queue_;
    SimObserver* observer_ = nullptr;
    std::vector<SimObject*> objects_;
    std::uint64_t packetIdCounter_ = 0;
    std::uint64_t requestIdCounter_ = 0;
    bool initialized_ = false;
    bool exitRequested_ = false;
    std::string exitMessage_;
};

}  // namespace g5r
