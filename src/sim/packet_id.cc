#include "sim/packet_id.hh"

#include <atomic>

namespace g5r {
namespace {

thread_local std::uint64_t* activePacketCounter = nullptr;

/// Fallback for packets built outside any Simulation::run() (unit tests,
/// ad-hoc tooling). Atomic: such packets may still be built from several
/// threads at once.
std::atomic<std::uint64_t> processPacketCounter{0};

}  // namespace

std::uint64_t nextPacketId() {
    if (activePacketCounter != nullptr) return ++*activePacketCounter;
    return processPacketCounter.fetch_add(1, std::memory_order_relaxed) + 1;
}

PacketIdScope::PacketIdScope(std::uint64_t& counter) : prev_(activePacketCounter) {
    activePacketCounter = &counter;
}

PacketIdScope::~PacketIdScope() { activePacketCounter = prev_; }

}  // namespace g5r
