#include "sim/observer.hh"

namespace g5r {

namespace detail {
thread_local SimObserver* tlsSimObserver = nullptr;
}  // namespace detail

const char* reqStageName(ReqStage stage) {
    switch (stage) {
    case ReqStage::kHostLoad: return "hostLoad";
    case ReqStage::kDmaStage: return "dmaStage";
    case ReqStage::kSpmFill: return "spmFill";
    case ReqStage::kXbarQueue: return "xbarQueue";
    case ReqStage::kDramService: return "dramService";
    case ReqStage::kRtlCompute: return "rtlCompute";
    case ReqStage::kDrain: return "drain";
    }
    return "?";
}

ObserverScope::ObserverScope(SimObserver* observer) : prev_(detail::tlsSimObserver) {
    detail::tlsSimObserver = observer;
}

ObserverScope::~ObserverScope() { detail::tlsSimObserver = prev_; }

}  // namespace g5r
