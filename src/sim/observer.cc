#include "sim/observer.hh"

namespace g5r {

namespace detail {
thread_local SimObserver* tlsSimObserver = nullptr;
}  // namespace detail

ObserverScope::ObserverScope(SimObserver* observer) : prev_(detail::tlsSimObserver) {
    detail::tlsSimObserver = observer;
}

ObserverScope::~ObserverScope() { detail::tlsSimObserver = prev_; }

}  // namespace g5r
