// Deterministic pseudo-random number generation for workload and trace
// generators. SplitMix64: tiny, fast, well-distributed, and — unlike
// std::mt19937's distributions — bit-for-bit reproducible across standard
// libraries, which keeps generated workloads identical everywhere.
#pragma once

#include <cstdint>

namespace g5r {

class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed) {}

    /// Next raw 64-bit value.
    std::uint64_t next() {
        std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

    /// Uniform value in [0, bound). bound must be non-zero.
    std::uint64_t below(std::uint64_t bound) { return next() % bound; }

    /// Uniform value in [lo, hi] inclusive.
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
        return lo + below(hi - lo + 1);
    }

    /// Uniform double in [0, 1).
    double uniform() {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

private:
    std::uint64_t state_;
};

}  // namespace g5r
