// Fatal-error and debug-trace helpers.
//
// panic()/fatal() terminate the simulation with a source location; they are
// for internal invariant violations and unrecoverable user errors
// respectively. Debug tracing is gated per-flag by the G5R_DEBUG environment
// variable (comma-separated flag names, or "all").
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <source_location>
#include <sstream>
#include <string>
#include <string_view>

namespace g5r {

[[noreturn]] void panicImpl(std::string_view msg, const std::source_location& loc);

/// Abort the simulation: an internal invariant was violated.
template <typename... Args>
[[noreturn]] inline void
panic(std::string_view fmt, const std::source_location loc = std::source_location::current()) {
    panicImpl(fmt, loc);
}

/// Abort with a formatted message built from an ostringstream-able list.
[[noreturn]] void panicStream(const std::string& msg,
                              std::source_location loc = std::source_location::current());

/// Check an invariant; panic with the expression text when it fails.
inline void
simAssert(bool cond, std::string_view what,
          const std::source_location loc = std::source_location::current()) {
    if (!cond) panicImpl(what, loc);
}

/// True when the named debug flag was enabled via G5R_DEBUG (or a later
/// setDebugFlags() call).
bool debugFlagEnabled(std::string_view flag);

/// Replace the active debug-flag set with @p spec (same comma-separated
/// syntax as G5R_DEBUG; "" disables all tracing). Overrides the environment.
/// Not safe to call while other threads are actively tracing — intended for
/// setup code and tests.
void setDebugFlags(std::string_view spec);

namespace detail {
/// Tri-state tracing gate: -1 = G5R_DEBUG not yet parsed, 0 = no flags
/// enabled, 1 = at least one flag enabled. Once resolved, the dtrace()
/// disabled path is a single relaxed atomic load — no lock, no magic-static
/// guard, no set lookup.
extern std::atomic<int> debugTraceState;

/// Parse G5R_DEBUG exactly once (thread-safe) and resolve the gate.
bool debugTracingSlow();

inline bool debugTracingActive() {
    const int s = debugTraceState.load(std::memory_order_relaxed);
    return s >= 0 ? s != 0 : debugTracingSlow();
}
}  // namespace detail

/// Emit one debug-trace line (already formatted) for the given flag.
/// The whole line is built first and written with a single locked write,
/// so lines from concurrent simulations never interleave mid-line.
void debugPrint(std::string_view flag, const std::string& msg);

// --- run labels ------------------------------------------------------------
// When experiment runs execute in parallel (src/exp/), each worker tags its
// log and panic output with a run label so interleaved *lines* remain
// attributable. The label is thread-local: one thread drives one run.

/// Set the calling thread's run label ("" = untagged, the default).
void setLogRunLabel(std::string label);

/// The calling thread's current run label.
const std::string& logRunLabel();

/// RAII: tag the calling thread's log output for the scope's lifetime.
class RunLabelScope {
public:
    explicit RunLabelScope(std::string label);
    ~RunLabelScope();
    RunLabelScope(const RunLabelScope&) = delete;
    RunLabelScope& operator=(const RunLabelScope&) = delete;

private:
    std::string prev_;
};

/// The exact single string panicImpl() writes (exposed for tests): run
/// label tag, message, and source location, newline-terminated.
std::string formatPanicMessage(std::string_view msg, const std::source_location& loc);

// --- panic hooks -------------------------------------------------------------
// Crash-time salvage: panic() runs the calling thread's registered hooks
// (most recently registered first) after writing the panic message and
// before abort(). The flight recorder dumps its black box here and the VCD
// writer flushes its buffered waveform tail. Hooks are *thread-local*
// because one thread drives one simulation (DESIGN.md): the panicking
// thread's hooks belong to the run that died. A hook that itself panics or
// throws is contained — remaining hooks still run and the abort proceeds.

/// Register @p hook on the calling thread; returns a handle for removal.
std::uint64_t addPanicHook(std::function<void()> hook);

/// Remove a previously registered hook (no-op for unknown handles). Must be
/// called on the registering thread.
void removePanicHook(std::uint64_t id);

/// RAII registration for scoped owners (recorders, waveform writers).
class PanicHookScope {
public:
    explicit PanicHookScope(std::function<void()> hook) : id_(addPanicHook(std::move(hook))) {}
    ~PanicHookScope() { removePanicHook(id_); }
    PanicHookScope(const PanicHookScope&) = delete;
    PanicHookScope& operator=(const PanicHookScope&) = delete;

private:
    std::uint64_t id_;
};

/// Write one pre-built diagnostic line (newline included by the caller)
/// with the same single-write interleaving guarantee as debugPrint().
/// Panic hooks use this so black-box reports stay line-atomic.
void logRawLine(const std::string& line);

/// Build a message from streamable parts: strCat(a, " ", b) -> std::string.
template <typename... Parts>
std::string strCat(const Parts&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    return os.str();
}

/// Debug-trace with lazy formatting: only builds the string when enabled.
/// With tracing fully off (the production case) the cost is one relaxed
/// atomic load and a branch; no flag-name lookup happens.
template <typename... Parts>
void dtrace(std::string_view flag, const Parts&... parts) {
    if (!detail::debugTracingActive()) return;
    if (debugFlagEnabled(flag)) debugPrint(flag, strCat(parts...));
}

}  // namespace g5r
