// Statistics framework.
//
// Each SimObject owns a stats::Group named after it. Stats are created once
// (during construction or regStats()) and updated on the fast path with plain
// arithmetic. Formulas are evaluated lazily at read time, so derived metrics
// such as IPC or MPKI always reflect the current counter values — which is
// exactly what the Fig. 5 interval-dump machinery needs.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace g5r {
namespace exp { class Json; }
}  // namespace g5r

namespace g5r::stats {

/// Base of every statistic: a named, documented, readable value.
class Stat {
public:
    Stat(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc)) {}
    Stat(const Stat&) = delete;
    Stat& operator=(const Stat&) = delete;
    virtual ~Stat() = default;

    const std::string& name() const { return name_; }
    const std::string& desc() const { return desc_; }

    /// Current value of the statistic (counters: total; formulas: computed).
    virtual double value() const = 0;

    /// Reset accumulated state (formulas are stateless and ignore this).
    virtual void reset() {}

private:
    std::string name_;
    std::string desc_;
};

/// A simple accumulating counter / gauge.
class Scalar final : public Stat {
public:
    using Stat::Stat;

    Scalar& operator+=(double d) { value_ += d; return *this; }
    Scalar& operator++() { value_ += 1.0; return *this; }
    void inc(double d = 1.0) { value_ += d; }
    void set(double v) { value_ = v; }

    double value() const override { return value_; }
    void reset() override { value_ = 0.0; }

private:
    double value_ = 0.0;
};

/// A derived metric computed on demand from other stats.
class Formula final : public Stat {
public:
    Formula(std::string name, std::string desc, std::function<double()> fn)
        : Stat(std::move(name), std::move(desc)), fn_(std::move(fn)) {}

    double value() const override { return fn_ ? fn_() : 0.0; }

private:
    std::function<double()> fn_;
};

/// Running distribution: min/max/mean/stddev of sampled values.
///
/// Moments accumulate with Welford's online algorithm. The naive
/// sum-of-squares form cancels catastrophically once samples carry a large
/// common offset (e.g. latencies measured in absolute ticks late in a long
/// run): sumSq/n and mean² agree in their leading digits and the subtraction
/// can even go negative. Welford tracks the centered second moment directly,
/// so variance stays accurate and non-negative regardless of offset.
class Distribution final : public Stat {
public:
    using Stat::Stat;

    void sample(double v) {
        ++count_;
        const double delta = v - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (v - mean_);
        if (v < min_) min_ = v;
        if (v > max_) max_ = v;
    }

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double minValue() const { return count_ ? min_ : 0.0; }
    double maxValue() const { return count_ ? max_ : 0.0; }

    /// Population variance (divide by n, matching the historical behavior).
    double variance() const {
        if (count_ < 2) return 0.0;
        return m2_ / static_cast<double>(count_);
    }
    double stddev() const { return std::sqrt(variance()); }

    /// The headline value of a distribution is its mean.
    double value() const override { return mean(); }

    void reset() override {
        count_ = 0;
        mean_ = m2_ = 0.0;
        min_ = std::numeric_limits<double>::max();
        max_ = std::numeric_limits<double>::lowest();
    }

private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;  ///< Sum of squared deviations from the running mean.
    double min_ = std::numeric_limits<double>::max();
    double max_ = std::numeric_limits<double>::lowest();
};

/// Exact-count log2-bucketed histogram state (HDR-style).
///
/// Buckets are octaves split into 2^kSubBucketBits linear sub-buckets, so
/// values below kSubBuckets are recorded exactly and larger values with a
/// bounded relative error of 1/kSubBuckets (~3.1%). Counts are exact 64-bit
/// integers, which makes two properties the Welford distribution cannot
/// offer: arbitrary quantile queries (p50/p90/p99/p999) and lossless
/// merging across instances (per-master latency histograms fold into one
/// SoC-wide histogram by adding bucket counts).
///
/// This is a plain copyable value type; the Stat wrapper below registers it
/// in a Group. Samples are non-negative magnitudes (ticks, queue depths);
/// negative inputs clamp to zero.
class HistogramData {
public:
    static constexpr unsigned kSubBucketBits = 5;
    static constexpr std::uint64_t kSubBuckets = std::uint64_t{1} << kSubBucketBits;

    /// Bucket index of @p v: identity below kSubBuckets, then kSubBuckets
    /// linear sub-buckets per octave.
    static std::size_t bucketIndex(std::uint64_t v) {
        if (v < kSubBuckets) return static_cast<std::size_t>(v);
        const unsigned exp = static_cast<unsigned>(std::bit_width(v)) - kSubBucketBits - 1;
        const std::uint64_t sub = v >> exp;  // In [kSubBuckets, 2*kSubBuckets).
        return static_cast<std::size_t>((std::uint64_t{exp} + 1) * kSubBuckets +
                                        (sub - kSubBuckets));
    }

    /// Smallest / largest value mapping to bucket @p idx.
    static std::uint64_t bucketLow(std::size_t idx) {
        if (idx < kSubBuckets) return idx;
        const std::uint64_t exp = idx / kSubBuckets - 1;
        const std::uint64_t sub = kSubBuckets + idx % kSubBuckets;
        return sub << exp;
    }
    static std::uint64_t bucketHigh(std::size_t idx) {
        if (idx < kSubBuckets) return idx;
        const std::uint64_t exp = idx / kSubBuckets - 1;
        const std::uint64_t sub = kSubBuckets + idx % kSubBuckets;
        return ((sub + 1) << exp) - 1;
    }

    void sampleInt(std::uint64_t v) {
        const std::size_t idx = bucketIndex(v);
        if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
        ++counts_[idx];
        ++count_;
        sum_ += static_cast<double>(v);
        if (v < min_) min_ = v;
        if (v > max_) max_ = v;
    }

    /// Doubles round to the nearest integer magnitude; negatives clamp to 0.
    void sample(double v) {
        if (!(v > 0.0)) { sampleInt(0); return; }  // NaN and negatives too.
        sampleInt(v >= 9.2e18 ? std::uint64_t{9'200'000'000'000'000'000ULL}
                              : static_cast<std::uint64_t>(std::llround(v)));
    }

    /// Fold @p other into this histogram (exact: bucket counts add).
    void merge(const HistogramData& other) {
        if (other.counts_.size() > counts_.size()) counts_.resize(other.counts_.size(), 0);
        for (std::size_t i = 0; i < other.counts_.size(); ++i) counts_[i] += other.counts_[i];
        count_ += other.count_;
        sum_ += other.sum_;
        if (other.count_ > 0) {
            if (other.min_ < min_) min_ = other.min_;
            if (other.max_ > max_) max_ = other.max_;
        }
    }

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
    double minValue() const { return count_ ? static_cast<double>(min_) : 0.0; }
    double maxValue() const { return count_ ? static_cast<double>(max_) : 0.0; }

    /// Value v such that at least ceil(q * count) samples are <= v, reported
    /// as the upper edge of the containing bucket (exact for values below
    /// kSubBuckets). Returns 0 on an empty histogram.
    double quantile(double q) const;

    double p50() const { return quantile(0.50); }
    double p90() const { return quantile(0.90); }
    double p99() const { return quantile(0.99); }
    double p999() const { return quantile(0.999); }

    void reset() {
        counts_.clear();
        count_ = 0;
        sum_ = 0.0;
        min_ = std::numeric_limits<std::uint64_t>::max();
        max_ = 0;
    }

    /// Visit every non-empty bucket in ascending value order:
    /// fn(low, high, count).
    template <typename Fn>
    void forEachBucket(Fn&& fn) const {
        for (std::size_t i = 0; i < counts_.size(); ++i) {
            if (counts_[i] != 0) fn(bucketLow(i), bucketHigh(i), counts_[i]);
        }
    }

private:
    std::vector<std::uint64_t> counts_;  ///< Grown on demand to the top bucket.
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max_ = 0;
};

/// The Stat wrapper over HistogramData: a quantile-capable companion to
/// Distribution for the hot sampling sites (crossbar latency, bridge queue
/// occupancy). The headline value is the mean, matching Distribution.
class Histogram final : public Stat {
public:
    using Stat::Stat;

    void sample(double v) { data_.sample(v); }
    void sampleInt(std::uint64_t v) { data_.sampleInt(v); }

    const HistogramData& data() const { return data_; }

    std::uint64_t count() const { return data_.count(); }
    double mean() const { return data_.mean(); }
    double minValue() const { return data_.minValue(); }
    double maxValue() const { return data_.maxValue(); }
    double quantile(double q) const { return data_.quantile(q); }

    double value() const override { return data_.mean(); }
    void reset() override { data_.reset(); }

private:
    HistogramData data_;
};

/// A named collection of stats; one per SimObject, prefix = object name.
class Group {
public:
    explicit Group(std::string prefix) : prefix_(std::move(prefix)) {}
    Group(const Group&) = delete;
    Group& operator=(const Group&) = delete;

    Scalar& scalar(std::string_view name, std::string_view desc);
    Formula& formula(std::string_view name, std::string_view desc, std::function<double()> fn);
    Distribution& distribution(std::string_view name, std::string_view desc);
    Histogram& histogram(std::string_view name, std::string_view desc);

    const std::string& prefix() const { return prefix_; }

    /// Look up a stat by its name relative to this group; nullptr if absent.
    /// O(1): an index keyed by fully-qualified name is maintained at
    /// registration time (MetricsSession and the timeline tests resolve
    /// stats by name every sample, so lookup must not scan).
    const Stat* find(std::string_view name) const;

    void dump(std::ostream& os) const;

    /// The same snapshot as a JSON object keyed by stat name relative to
    /// this group's prefix. Scalars and formulas become numbers;
    /// distributions become {count, min, mean, max, stddev} objects. The
    /// text dump() above is unchanged (and byte-identical) — this is a
    /// parallel machine-readable view for BENCH_*.json-style consumers.
    exp::Json dumpJson() const;

    void resetAll();

    const std::vector<std::unique_ptr<Stat>>& all() const { return stats_; }

private:
    std::string qualify(std::string_view name) const;

    /// Take ownership of @p stat and index it by fully-qualified name.
    Stat& adopt(std::unique_ptr<Stat> stat);

    std::string prefix_;
    std::vector<std::unique_ptr<Stat>> stats_;
    std::unordered_map<std::string, std::size_t> index_;  ///< Full name -> stats_ slot.
};

}  // namespace g5r::stats
