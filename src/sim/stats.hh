// Statistics framework.
//
// Each SimObject owns a stats::Group named after it. Stats are created once
// (during construction or regStats()) and updated on the fast path with plain
// arithmetic. Formulas are evaluated lazily at read time, so derived metrics
// such as IPC or MPKI always reflect the current counter values — which is
// exactly what the Fig. 5 interval-dump machinery needs.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace g5r {
namespace exp { class Json; }
}  // namespace g5r

namespace g5r::stats {

/// Base of every statistic: a named, documented, readable value.
class Stat {
public:
    Stat(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc)) {}
    Stat(const Stat&) = delete;
    Stat& operator=(const Stat&) = delete;
    virtual ~Stat() = default;

    const std::string& name() const { return name_; }
    const std::string& desc() const { return desc_; }

    /// Current value of the statistic (counters: total; formulas: computed).
    virtual double value() const = 0;

    /// Reset accumulated state (formulas are stateless and ignore this).
    virtual void reset() {}

private:
    std::string name_;
    std::string desc_;
};

/// A simple accumulating counter / gauge.
class Scalar final : public Stat {
public:
    using Stat::Stat;

    Scalar& operator+=(double d) { value_ += d; return *this; }
    Scalar& operator++() { value_ += 1.0; return *this; }
    void inc(double d = 1.0) { value_ += d; }
    void set(double v) { value_ = v; }

    double value() const override { return value_; }
    void reset() override { value_ = 0.0; }

private:
    double value_ = 0.0;
};

/// A derived metric computed on demand from other stats.
class Formula final : public Stat {
public:
    Formula(std::string name, std::string desc, std::function<double()> fn)
        : Stat(std::move(name), std::move(desc)), fn_(std::move(fn)) {}

    double value() const override { return fn_ ? fn_() : 0.0; }

private:
    std::function<double()> fn_;
};

/// Running distribution: min/max/mean/stddev of sampled values.
///
/// Moments accumulate with Welford's online algorithm. The naive
/// sum-of-squares form cancels catastrophically once samples carry a large
/// common offset (e.g. latencies measured in absolute ticks late in a long
/// run): sumSq/n and mean² agree in their leading digits and the subtraction
/// can even go negative. Welford tracks the centered second moment directly,
/// so variance stays accurate and non-negative regardless of offset.
class Distribution final : public Stat {
public:
    using Stat::Stat;

    void sample(double v) {
        ++count_;
        const double delta = v - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (v - mean_);
        if (v < min_) min_ = v;
        if (v > max_) max_ = v;
    }

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double minValue() const { return count_ ? min_ : 0.0; }
    double maxValue() const { return count_ ? max_ : 0.0; }

    /// Population variance (divide by n, matching the historical behavior).
    double variance() const {
        if (count_ < 2) return 0.0;
        return m2_ / static_cast<double>(count_);
    }
    double stddev() const { return std::sqrt(variance()); }

    /// The headline value of a distribution is its mean.
    double value() const override { return mean(); }

    void reset() override {
        count_ = 0;
        mean_ = m2_ = 0.0;
        min_ = std::numeric_limits<double>::max();
        max_ = std::numeric_limits<double>::lowest();
    }

private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;  ///< Sum of squared deviations from the running mean.
    double min_ = std::numeric_limits<double>::max();
    double max_ = std::numeric_limits<double>::lowest();
};

/// A named collection of stats; one per SimObject, prefix = object name.
class Group {
public:
    explicit Group(std::string prefix) : prefix_(std::move(prefix)) {}
    Group(const Group&) = delete;
    Group& operator=(const Group&) = delete;

    Scalar& scalar(std::string_view name, std::string_view desc);
    Formula& formula(std::string_view name, std::string_view desc, std::function<double()> fn);
    Distribution& distribution(std::string_view name, std::string_view desc);

    const std::string& prefix() const { return prefix_; }

    /// Look up a stat by its name relative to this group; nullptr if absent.
    const Stat* find(std::string_view name) const;

    void dump(std::ostream& os) const;

    /// The same snapshot as a JSON object keyed by stat name relative to
    /// this group's prefix. Scalars and formulas become numbers;
    /// distributions become {count, min, mean, max, stddev} objects. The
    /// text dump() above is unchanged (and byte-identical) — this is a
    /// parallel machine-readable view for BENCH_*.json-style consumers.
    exp::Json dumpJson() const;

    void resetAll();

    const std::vector<std::unique_ptr<Stat>>& all() const { return stats_; }

private:
    std::string qualify(std::string_view name) const;

    std::string prefix_;
    std::vector<std::unique_ptr<Stat>> stats_;
};

}  // namespace g5r::stats
