#include "obs/critpath_cli.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string_view>
#include <vector>

#include "exp/json.hh"

namespace g5r::obs {

namespace {

/// Blame precedence, mirrored from the computeBlame sweep (reqtrace.cc):
/// dmaStage > drain > spmFill > dramService > xbarQueue > hostLoad >
/// rtlCompute.
constexpr std::array<int, kNumReqStages> kStageRank = {1, 6, 4, 2, 3, 0, 5};

std::string formatLine(const char* fmt, ...) {
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return buf;
}

/// parent -> child slot adjacency + root slots, as computeBlame builds them.
struct Tree {
    std::vector<std::vector<std::size_t>> children;
    std::vector<std::size_t> roots;
};

Tree buildTree(const std::vector<ReqRecord>& records) {
    Tree tree;
    tree.children.resize(records.size());
    std::vector<std::size_t> slotOf;
    for (std::size_t i = 0; i < records.size(); ++i) {
        const ReqId id = records[i].id;
        if (id >= slotOf.size()) slotOf.resize(id + 1, 0);
        slotOf[id] = i + 1;
    }
    for (std::size_t i = 0; i < records.size(); ++i) {
        const ReqId parent = records[i].parent;
        if (parent != 0 && parent < slotOf.size() && slotOf[parent] != 0) {
            tree.children[slotOf[parent] - 1].push_back(i);
        } else {
            tree.roots.push_back(i);
        }
    }
    return tree;
}

/// All spans of @p rootSlot's subtree, clamped to [begin, end).
std::vector<ReqSpan> subtreeSpans(const std::vector<ReqRecord>& records,
                                  const Tree& tree, std::size_t rootSlot, Tick begin,
                                  Tick end) {
    std::vector<ReqSpan> spans;
    std::vector<std::size_t> stack{rootSlot};
    while (!stack.empty()) {
        const std::size_t idx = stack.back();
        stack.pop_back();
        for (const ReqSpan& span : records[idx].spans) {
            const Tick b = std::max(span.begin, begin);
            const Tick e = std::min(span.end, end);
            if (e > b) spans.push_back(ReqSpan{span.stage, b, e});
        }
        for (const std::size_t child : tree.children[idx]) stack.push_back(child);
    }
    return spans;
}

}  // namespace

char reqStageGlyph(ReqStage stage) {
    switch (stage) {
    case ReqStage::kHostLoad: return 'h';
    case ReqStage::kDmaStage: return 'd';
    case ReqStage::kSpmFill: return 'f';
    case ReqStage::kXbarQueue: return 'x';
    case ReqStage::kDramService: return 'm';
    case ReqStage::kRtlCompute: return 'r';
    case ReqStage::kDrain: return 'n';
    }
    return '?';
}

std::string renderBlameTable(const BlameSummary& blame) {
    std::string out;
    out += formatLine("%-13s %16s %8s %8s %8s\n", "stage", "ticks", "share",
                      "p50root", "maxroot");

    const double total = blame.totalTicks > 0 ? static_cast<double>(blame.totalTicks) : 1.0;
    double shareSum = 0;
    auto row = [&](const std::string& name, Tick ticks,
                   std::vector<double> rootShares) {
        const double share = 100.0 * static_cast<double>(ticks) / total;
        shareSum += share;
        double p50 = 0;
        double maxShare = 0;
        if (!rootShares.empty()) {
            std::sort(rootShares.begin(), rootShares.end());
            p50 = rootShares[rootShares.size() / 2];
            maxShare = rootShares.back();
        }
        out += formatLine("%-13s %16llu %7.2f%% %7.2f%% %7.2f%%\n", name.c_str(),
                          static_cast<unsigned long long>(ticks), share, p50, maxShare);
    };

    for (unsigned s = 0; s < kNumReqStages; ++s) {
        std::vector<double> shares;
        for (const RequestBlame& r : blame.roots) {
            if (r.total() > 0) {
                shares.push_back(100.0 * static_cast<double>(r.stageTicks[s]) /
                                 static_cast<double>(r.total()));
            }
        }
        row(reqStageName(static_cast<ReqStage>(s)), blame.stageTicks[s],
            std::move(shares));
    }
    {
        std::vector<double> shares;
        for (const RequestBlame& r : blame.roots) {
            if (r.total() > 0) {
                shares.push_back(100.0 * static_cast<double>(r.unattributed) /
                                 static_cast<double>(r.total()));
            }
        }
        row("unattributed", blame.unattributed, std::move(shares));
    }
    out += formatLine("%-13s %16llu %7.2f%%\n", "total",
                      static_cast<unsigned long long>(blame.totalTicks),
                      blame.totalTicks > 0 ? shareSum : 0.0);
    return out;
}

std::string renderWaterfall(const std::vector<ReqRecord>& records,
                            const BlameSummary& blame, std::size_t maxRequests,
                            std::size_t width) {
    const Tree tree = buildTree(records);
    if (width == 0) width = 64;

    // blame.roots and tree.roots come from the same traversal over the same
    // record order, so they line up index-for-index.
    std::string out;
    out += "per-request waterfall (one column = 1/" + std::to_string(width) +
           " of the request's window; legend: h=hostLoad d=dmaStage f=spmFill "
           "x=xbarQueue m=dramService r=rtlCompute n=drain .=unattributed)\n";
    const std::size_t count =
        maxRequests == 0 ? blame.roots.size() : std::min(maxRequests, blame.roots.size());
    for (std::size_t r = 0; r < count && r < tree.roots.size(); ++r) {
        const RequestBlame& root = blame.roots[r];
        std::string strip(width, '.');
        if (root.total() > 0) {
            const auto spans =
                subtreeSpans(records, tree, tree.roots[r], root.begin, root.end);
            const double ticksPerCol =
                static_cast<double>(root.total()) / static_cast<double>(width);
            for (std::size_t c = 0; c < width; ++c) {
                const Tick mid = root.begin +
                                 static_cast<Tick>((static_cast<double>(c) + 0.5) *
                                                   ticksPerCol);
                int best = -1;
                for (const ReqSpan& span : spans) {
                    if (span.begin <= mid && mid < span.end) {
                        const auto s = static_cast<unsigned>(span.stage);
                        if (best < 0 ||
                            kStageRank[s] > kStageRank[static_cast<unsigned>(best)]) {
                            best = static_cast<int>(s);
                        }
                    }
                }
                if (best >= 0) strip[c] = reqStageGlyph(static_cast<ReqStage>(best));
            }
        }
        out += formatLine("#%-5llu %-12s |%s| %llu ticks\n",
                          static_cast<unsigned long long>(root.id), root.kind.c_str(),
                          strip.c_str(),
                          static_cast<unsigned long long>(root.total()));
    }
    if (count < blame.roots.size()) {
        out += formatLine("... %zu more root requests (raise --waterfall=N)\n",
                          blame.roots.size() - count);
    }
    return out;
}

exp::Json blameReportJson(const ReqTraceFile& file, const BlameSummary& blame) {
    exp::Json doc = exp::Json::object();
    doc["schema"] = file.schema;
    doc["run"] = file.run;
    doc["endTick"] = static_cast<std::uint64_t>(file.endTick);
    doc["requests"] = static_cast<std::uint64_t>(file.records.size());
    doc["rootRequests"] = static_cast<std::uint64_t>(blame.roots.size());
    doc["totalTicks"] = static_cast<std::uint64_t>(blame.totalTicks);

    exp::Json stages = exp::Json::object();
    exp::Json shares = exp::Json::object();
    const double total = blame.totalTicks > 0 ? static_cast<double>(blame.totalTicks) : 1.0;
    for (unsigned s = 0; s < kNumReqStages; ++s) {
        const char* name = reqStageName(static_cast<ReqStage>(s));
        stages[name] = static_cast<std::uint64_t>(blame.stageTicks[s]);
        shares[name] = 100.0 * static_cast<double>(blame.stageTicks[s]) / total;
    }
    stages["unattributed"] = static_cast<std::uint64_t>(blame.unattributed);
    shares["unattributed"] = 100.0 * static_cast<double>(blame.unattributed) / total;
    doc["stageTicks"] = std::move(stages);
    doc["stageShares"] = std::move(shares);

    exp::Json roots = exp::Json::array();
    for (const RequestBlame& r : blame.roots) {
        exp::Json one = exp::Json::object();
        one["id"] = r.id;
        one["kind"] = r.kind;
        one["begin"] = static_cast<std::uint64_t>(r.begin);
        one["end"] = static_cast<std::uint64_t>(r.end);
        one["totalTicks"] = static_cast<std::uint64_t>(r.total());
        exp::Json st = exp::Json::object();
        for (unsigned s = 0; s < kNumReqStages; ++s) {
            st[reqStageName(static_cast<ReqStage>(s))] =
                static_cast<std::uint64_t>(r.stageTicks[s]);
        }
        st["unattributed"] = static_cast<std::uint64_t>(r.unattributed);
        one["stageTicks"] = std::move(st);
        roots.push(std::move(one));
    }
    doc["roots"] = std::move(roots);
    return doc;
}

namespace {

int usage() {
    std::cerr
        << "usage: g5r-critpath [--json] [--waterfall[=N]] [--assert-sum] "
           "<trace.reqtrace.jsonl>\n"
           "  critical-path stage blame over a request-trace sidecar\n"
           "  --json          machine-readable report on stdout\n"
           "  --waterfall[=N] per-request glyph strips (first N roots; default all)\n"
           "  --assert-sum    exit 1 unless per-stage blame sums to 100%% of every\n"
           "                  request's end-to-end window\n";
    return 2;
}

}  // namespace

int critpathCliMain(int argc, const char* const* argv) {
    bool json = false;
    bool waterfall = false;
    bool assertSum = false;
    std::size_t waterfallCount = 0;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg{argv[i]};
        if (arg == "--json") {
            json = true;
        } else if (arg == "--waterfall") {
            waterfall = true;
        } else if (arg.rfind("--waterfall=", 0) == 0) {
            waterfall = true;
            waterfallCount = static_cast<std::size_t>(
                std::strtoull(argv[i] + std::strlen("--waterfall="), nullptr, 10));
        } else if (arg == "--assert-sum") {
            assertSum = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else if (path.empty()) {
            path = arg;
        } else {
            return usage();
        }
    }
    if (path.empty()) return usage();

    ReqTraceFile file;
    try {
        file = readReqTrace(path);
    } catch (const std::exception& e) {
        std::cerr << "g5r-critpath: " << e.what() << '\n';
        return 2;
    }

    const BlameSummary blame = computeBlame(file.records);

    // The computeBlame invariant, re-checked from the outputs: every root's
    // window fully attributed, nothing double-counted.
    bool sumOk = true;
    Tick aggregate = blame.unattributed;
    for (unsigned s = 0; s < kNumReqStages; ++s) aggregate += blame.stageTicks[s];
    sumOk = sumOk && aggregate == blame.totalTicks;
    for (const RequestBlame& r : blame.roots) {
        Tick sum = r.unattributed;
        for (unsigned s = 0; s < kNumReqStages; ++s) sum += r.stageTicks[s];
        sumOk = sumOk && sum == r.total();
    }

    if (json) {
        exp::Json doc = blameReportJson(file, blame);
        doc["sumOk"] = sumOk;
        std::cout << doc.dump() << '\n';
    } else {
        std::printf("# g5r-critpath: %s\n", path.c_str());
        std::printf("# run '%s', %zu requests (%zu roots), final tick %llu\n",
                    file.run.c_str(), file.records.size(), blame.roots.size(),
                    static_cast<unsigned long long>(file.endTick));
        std::fputs(renderBlameTable(blame).c_str(), stdout);
        if (waterfall) {
            std::fputs(renderWaterfall(file.records, blame, waterfallCount).c_str(),
                       stdout);
        }
        if (assertSum) {
            std::printf("[%s] stage blame sums to 100%% of every request window\n",
                        sumOk ? "PASS" : "FAIL");
        }
    }
    return assertSum && !sumOk ? 1 : 0;
}

}  // namespace g5r::obs
