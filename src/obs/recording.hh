// Flight-recording format: the .g5rec sidecar written by obs::Recorder and
// consumed by the first-divergence finder (obs/diff.hh, g5r-diff CLI).
//
// A recording summarises one run's dispatch and packet streams as a list of
// fixed-width simulated-time intervals. Each interval carries, per lane
// (dispatch / packet), an event count, an order-sensitive FNV-1a 64 digest
// of the interval's events, and the *cumulative* digest of everything up to
// and including the interval. Cumulative digests make "do the two runs agree
// through interval i?" a single comparison, so the diff tool can binary-
// search for the first divergent interval instead of replaying both streams.
//
// Two lanes exist because quiescence gating (PR 4) changes the dispatch
// stream by design while leaving the packet stream identical: gated-vs-
// ungated identity checks compare the packet lane only, while jobs-1 vs
// jobs-N determinism checks compare both.
//
// The format is deterministic plain text — no host times, no pointers — so
// byte-identical runs produce byte-identical files at any --jobs count:
//
//   g5rec 1                      header + version
//   run <label>                  run label (rest of line, may be empty)
//   interval <ticks>             interval width
//   iv <idx> <start> <dCount> <dDig> <dCum> <pCount> <pDig> <pCum>
//   ob <slot> <count> <digest> <firstTick>     per-object rows of last iv
//   obj <slot> <name>            slot -> SimObject name table
//   bb <seq> <kind> <tick> <slot> <text...>    black-box tail (oldest first)
//   end <finalTick> <dispatches> <packets> <dCum> <pCum>
//
// Digests print as 16 hex digits. Empty intervals are not written; the
// cumulative digest simply carries across the gap.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/ticks.hh"

namespace g5r::obs {

// --- FNV-1a 64 --------------------------------------------------------------

inline constexpr std::uint64_t kDigestSeed = 14695981039346656037ULL;
inline constexpr std::uint64_t kDigestPrime = 1099511628211ULL;

inline std::uint64_t digestByte(std::uint64_t h, unsigned char b) {
    return (h ^ b) * kDigestPrime;
}

inline std::uint64_t digestU64(std::uint64_t h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h = digestByte(h, static_cast<unsigned char>(v & 0xff));
        v >>= 8;
    }
    return h;
}

inline std::uint64_t digestStr(std::uint64_t h, std::string_view s) {
    for (const char c : s) h = digestByte(h, static_cast<unsigned char>(c));
    return h;
}

/// Stand-alone digest of a string (event labels are hashed once, then the
/// 64-bit result is mixed per dispatch).
inline std::uint64_t digestOf(std::string_view s) { return digestStr(kDigestSeed, s); }

// --- in-memory model --------------------------------------------------------

/// One SimObject's share of an interval (dispatch lane only).
struct ObjEntry {
    int slot = 0;
    std::uint64_t count = 0;
    std::uint64_t digest = kDigestSeed;
    Tick firstTick = 0;  ///< Tick of the object's first dispatch in the interval.
};

struct IntervalRecord {
    std::uint64_t index = 0;  ///< Interval number: covers [index*T, (index+1)*T).
    Tick startTick = 0;
    std::uint64_t dispatchCount = 0;
    std::uint64_t dispatchDigest = kDigestSeed;  ///< This interval only.
    std::uint64_t cumDispatchDigest = kDigestSeed;
    std::uint64_t packetCount = 0;
    std::uint64_t packetDigest = kDigestSeed;
    std::uint64_t cumPacketDigest = kDigestSeed;
    std::vector<ObjEntry> objects;  ///< Sorted by slot.
};

/// One black-box ring entry: kind 'D' = dispatch, 'P' = packet op.
struct BlackBoxEntry {
    std::uint64_t seq = 0;
    char kind = 'D';
    Tick tick = 0;
    int slot = 0;
    std::string text;
};

struct Recording {
    std::string runLabel;
    Tick intervalTicks = 0;
    std::vector<std::string> objectNames;  ///< Indexed by slot; "" = unknown.
    std::vector<IntervalRecord> intervals;  ///< Sorted by index; empty ones omitted.
    std::vector<BlackBoxEntry> blackBox;    ///< Oldest first.

    bool hasEnd = false;
    Tick finalTick = 0;
    std::uint64_t totalDispatches = 0;
    std::uint64_t totalPackets = 0;
    std::uint64_t finalDispatchDigest = kDigestSeed;
    std::uint64_t finalPacketDigest = kDigestSeed;

    const std::string& objectName(int slot) const;

    /// Parse @p path. Throws std::runtime_error with a line-numbered message
    /// on malformed input or an unreadable file.
    static Recording load(const std::string& path);
};

}  // namespace g5r::obs
