#include "obs/session.hh"

#include <algorithm>
#include <atomic>

#include "sim/sim_object.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"

namespace g5r::obs {

namespace {

/// File-system-safe run name: non-alphanumerics collapse to '_'.
std::string sanitize(std::string_view runName) {
    std::string out;
    out.reserve(runName.size());
    for (const char c : runName) {
        const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '-' || c == '_';
        out += keep ? c : '_';
    }
    return out;
}

std::string runFileBase(std::string_view runName) {
    std::string base = sanitize(runName);
    if (base.empty()) {
        // Parallel sweeps create many unnamed sessions; give each its own
        // file rather than corrupting a shared one.
        static std::atomic<std::uint64_t> counter{0};
        base = "run" + std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
    }
    return base;
}

std::string joinDir(const std::string& dir, std::string file) {
    std::string path = dir.empty() ? std::string{"."} : dir;
    if (path.back() != '/') path += '/';
    path += std::move(file);
    return path;
}

}  // namespace

std::vector<std::pair<std::string, LatencySummary>> portLatencies(const stats::Group& group) {
    std::vector<std::pair<std::string, LatencySummary>> out;
    static constexpr std::string_view kKey = "latency.";
    static constexpr std::string_view kHistKey = "latencyHist.";
    for (const auto& stat : group.all()) {
        const auto* dist = dynamic_cast<const stats::Distribution*>(stat.get());
        if (dist == nullptr) continue;
        const std::string& name = dist->name();
        const auto pos = name.find(kKey);
        if (pos == std::string::npos) continue;
        if (pos != 0 && name[pos - 1] != '.') continue;
        const std::string suffix = name.substr(pos + kKey.size());
        LatencySummary summary{dist->count(), dist->minValue(), dist->mean(),
                               dist->maxValue(), 0.0, 0.0};
        // The shadowing histogram lives in the same group under
        // "latencyHist.<suffix>" (relative to the group prefix).
        const auto* hist = dynamic_cast<const stats::Histogram*>(
            group.find(std::string{kHistKey} + suffix));
        if (hist != nullptr) {
            summary.p50Ticks = hist->quantile(0.50);
            summary.p99Ticks = hist->quantile(0.99);
        }
        out.emplace_back(suffix, summary);
    }
    return out;
}

stats::HistogramData mergedPortLatencyHistogram(const stats::Group& group) {
    stats::HistogramData merged;
    static constexpr std::string_view kHistKey = "latencyHist.";
    for (const auto& stat : group.all()) {
        const auto* hist = dynamic_cast<const stats::Histogram*>(stat.get());
        if (hist == nullptr) continue;
        const std::string& name = hist->name();
        const auto pos = name.find(kHistKey);
        if (pos == std::string::npos) continue;
        if (pos != 0 && name[pos - 1] != '.') continue;
        merged.merge(hist->data());
    }
    return merged;
}

std::unique_ptr<ObsSession> ObsSession::create(Simulation& sim, const ObsOptions& opts,
                                               std::string_view runName) {
    if (!opts.anyEnabled()) return nullptr;
    return std::unique_ptr<ObsSession>(new ObsSession(sim, opts, runName));
}

ObsSession::ObsSession(Simulation& sim, const ObsOptions& opts, std::string_view runName)
    : sim_(sim),
      counterInterval_(opts.counterIntervalTicks),
      stride_(opts.profileStride ? opts.profileStride : 1),
      t0_(Clock::now()) {
    if (opts.profileEnabled) profiler_ = std::make_unique<HostProfiler>(stride_);
    const bool reqtraceToFile = opts.reqtraceEnabled && opts.reqtracePath != "-";
    const std::string base =
        (opts.traceEnabled || opts.recordEnabled || opts.metricsEnabled || reqtraceToFile)
            ? runFileBase(runName)
            : std::string{};
    if (opts.traceEnabled) {
        trace_ = std::make_unique<TraceSession>(joinDir(opts.traceDir, base + ".trace.json"));
    }
    if (opts.recordEnabled) {
        std::string path = !opts.recordPath.empty()
                               ? opts.recordPath
                               : joinDir(opts.recordDir, base + ".g5rec");
        recorder_ = std::make_unique<Recorder>(std::move(path), std::string{runName},
                                               opts.recordIntervalTicks, opts.blackBoxDepth);
    }
    if (opts.metricsEnabled) {
        std::string path = !opts.metricsPath.empty()
                               ? opts.metricsPath
                               : joinDir(opts.metricsDir, base + ".metrics.jsonl");
        metrics_ = std::make_unique<MetricsSession>(sim, std::move(path),
                                                    std::string{runName},
                                                    opts.metricsIntervalTicks);
    }
    if (opts.reqtraceEnabled) {
        // "-" selects in-memory collection (computeBlame without a sidecar).
        std::string path;
        if (opts.reqtracePath == "-") {
            path = "";
        } else if (!opts.reqtracePath.empty()) {
            path = opts.reqtracePath;
        } else {
            path = joinDir(opts.reqtraceDir, base + ".reqtrace.jsonl");
        }
        reqtrace_ = std::make_unique<ReqTraceSession>(std::move(path), std::string{runName});
    }
    reqtraceOnly_ = reqtrace_ != nullptr && trace_ == nullptr && profiler_ == nullptr &&
                    recorder_ == nullptr && metrics_ == nullptr;

    // Slot 0 catches events whose name matches no registered object;
    // object slots are handed out lazily by slotFor().
    if (profiler_) profiler_->addSlot("(unattributed)");
    if (trace_) {
        trace_->processName(runName.empty() ? std::string_view{"g5r"} : runName);
        trace_->threadName(0, "(unattributed)");
    }
    if (recorder_) recorder_->noteObjectName(0, "(unattributed)");
    nextCounterTick_ = sim.curTick();
    sim.setObserver(this);
}

ObsSession::~ObsSession() {
    finish();
    if (sim_.observer() == this) sim_.setObserver(nullptr);
}

void ObsSession::addCounter(const stats::Stat& stat) { counters_.push_back(&stat); }

void ObsSession::finish() {
    if (finished_) return;
    finished_ = true;
    if (profiler_) report_ = std::make_shared<const ProfileReport>(profiler_->report());
    if (reqtrace_) {
        reqtrace_->finish(sim_.curTick());
        if (trace_) emitRequestSpans();
    }
    if (trace_) trace_->finish();
    if (recorder_) recorder_->finish(sim_.curTick());
    if (metrics_) metrics_->finish(sim_.curTick());
}

void ObsSession::emitRequestSpans() {
    // Requests live on their own track family, in *simulated* microseconds
    // (ticks are picoseconds), one track per stage plus a summary track.
    // Flow arrows link each root request to its descendants; their IDs are
    // offset into a high range so they never collide with packet flows.
    constexpr int kReqTidBase = 900;
    constexpr int kSummaryTid = kReqTidBase + static_cast<int>(kNumReqStages);
    constexpr std::uint64_t kFlowBase = std::uint64_t{1} << 62;
    constexpr double kTicksPerUs = 1e6;

    for (unsigned s = 0; s < kNumReqStages; ++s) {
        trace_->threadName(kReqTidBase + static_cast<int>(s),
                           std::string{"req:"} + reqStageName(static_cast<ReqStage>(s)));
    }
    trace_->threadName(kSummaryTid, "req:requests");

    const std::vector<ReqRecord>& records = reqtrace_->data();
    // id -> root id, walking parent chains (records are id-sorted, parents
    // precede children, so one pass suffices).
    std::vector<ReqId> rootOf;
    for (const ReqRecord& rec : records) {
        if (rec.id >= rootOf.size()) rootOf.resize(rec.id + 1, 0);
        rootOf[rec.id] = (rec.parent != 0 && rec.parent < rootOf.size() &&
                          rootOf[rec.parent] != 0)
                             ? rootOf[rec.parent]
                             : rec.id;
    }
    for (const ReqRecord& rec : records) {
        Tick end = rec.ended ? rec.endTick : rec.beginTick;
        for (const ReqSpan& span : rec.spans) end = std::max(end, span.end);
        const double beginUs = static_cast<double>(rec.beginTick) / kTicksPerUs;
        trace_->completeEvent(kSummaryTid, rec.kind + "#" + std::to_string(rec.id),
                              "request", beginUs,
                              static_cast<double>(end - rec.beginTick) / kTicksPerUs,
                              rec.beginTick);
        const std::uint64_t flow = kFlowBase | rootOf[rec.id];
        if (rec.parent == 0) {
            trace_->flowBegin(flow, kSummaryTid, beginUs);
            trace_->flowEnd(flow, kSummaryTid, static_cast<double>(end) / kTicksPerUs);
        } else {
            trace_->flowStep(flow, kSummaryTid, beginUs);
        }
        for (const ReqSpan& span : rec.spans) {
            trace_->completeEvent(kReqTidBase + static_cast<int>(span.stage),
                                  reqStageName(span.stage), "reqstage",
                                  static_cast<double>(span.begin) / kTicksPerUs,
                                  static_cast<double>(span.end - span.begin) / kTicksPerUs,
                                  span.begin);
        }
    }
}

int ObsSession::slotFor(const SimObject& obj) {
    const auto it = slotByObject_.find(&obj);
    if (it != slotByObject_.end()) return it->second;
    const int slot = nextSlot_++;
    slotByObject_.emplace(&obj, slot);
    if (profiler_) profiler_->addSlot(obj.name());
    if (trace_) trace_->threadName(slot, obj.name());
    if (recorder_) recorder_->noteObjectName(slot, obj.name());
    return slot;
}

const ObsSession::Owner& ObsSession::resolve(const Event& ev) {
    const auto it = ownerCache_.find(&ev);
    if (it != ownerCache_.end()) return it->second;

    // Longest object-name prefix of the event name (on a '.' boundary)
    // wins, so "system.cpu0.l1d.respond" attributes to the L1D, not the
    // core. The live object list is consulted (not a snapshot) so objects
    // created after the session still resolve.
    const std::string evName = ev.name();
    const SimObject* best = nullptr;
    std::size_t bestLen = 0;
    for (const SimObject* obj : sim_.objects()) {
        const std::string& objName = obj->name();
        if (objName.size() < bestLen || evName.size() < objName.size()) continue;
        if (evName.compare(0, objName.size(), objName) != 0) continue;
        if (evName.size() > objName.size() && evName[objName.size()] != '.') continue;
        best = obj;
        bestLen = objName.size();
    }
    const int slot = best != nullptr ? slotFor(*best) : 0;
    return ownerCache_.emplace(&ev, Owner{slot, evName, digestOf(evName)}).first->second;
}

void ObsSession::runBegin() { runStart_ = Clock::now(); }

void ObsSession::runEnd() {
    if (profiler_) {
        profiler_->addRunSeconds(
            std::chrono::duration<double>(Clock::now() - runStart_).count());
    }
    // Flush a final counter sample so the tail interval — which may hold
    // most of a short run's activity — is not silently dropped.
    if (trace_ && !counters_.empty()) sampleCounters(sim_.curTick());
}

void ObsSession::dispatchBegin(const Event& ev, Tick when) {
    curTick_ = when;
    // Request tracing alone needs none of the dispatch machinery: spans
    // arrive through the component-driven request hooks with their own
    // ticks. Skipping resolve() here is what makes always-on tracing cheap.
    if (reqtraceOnly_) return;
    const Owner& owner = resolve(ev);
    curSlot_ = owner.slot;
    curLabel_ = &owner.label;
    if (profiler_) profiler_->countDispatch(curSlot_);
    if (recorder_) recorder_->recordDispatch(when, curSlot_, owner.label, owner.labelHash);
    if (trace_ && !counters_.empty() && when >= nextCounterTick_) sampleCounters(when);
    if (metrics_) metrics_->maybeSample(when);

    // Tracing needs every span timed; profiling alone only every Nth.
    timedThis_ = trace_ != nullptr;
    if (!timedThis_ && profiler_) {
        if (++strideCount_ >= stride_) {
            strideCount_ = 0;
            timedThis_ = true;
        }
    }
    if (timedThis_) dispatchStart_ = Clock::now();
}

void ObsSession::dispatchEnd(Tick /*when*/) {
    if (!timedThis_) return;
    const Clock::time_point end = Clock::now();
    const double seconds = std::chrono::duration<double>(end - dispatchStart_).count();
    if (trace_) {
        trace_->completeEvent(curSlot_, *curLabel_, "dispatch", relUs(dispatchStart_),
                              seconds * 1e6, curTick_);
    }
    if (profiler_) profiler_->addSample(curSlot_, seconds);
    timedThis_ = false;
}

void ObsSession::sampleCounters(Tick when) {
    const double tsUs = relUs(Clock::now());
    for (const stats::Stat* stat : counters_) {
        trace_->counterEvent(stat->name(), tsUs, stat->value());
    }
    nextCounterTick_ = when + counterInterval_;
}

void ObsSession::packetIssued(std::uint64_t id, std::uint64_t addr, unsigned size,
                              bool isRead) {
    if (trace_) trace_->flowBegin(id, curSlot_, relUs(Clock::now()));
    if (recorder_) recorder_->recordPacket(curTick_, curSlot_, 'I', id, addr, size, isRead);
}

void ObsSession::packetForwarded(std::uint64_t id) {
    if (trace_) trace_->flowStep(id, curSlot_, relUs(Clock::now()));
    if (recorder_) recorder_->recordPacket(curTick_, curSlot_, 'F', id, 0, 0, false);
}

void ObsSession::packetResponded(std::uint64_t id) {
    if (trace_) trace_->flowStep(id, curSlot_, relUs(Clock::now()));
    if (recorder_) recorder_->recordPacket(curTick_, curSlot_, 'R', id, 0, 0, false);
}

void ObsSession::packetCompleted(std::uint64_t id) {
    if (trace_) trace_->flowEnd(id, curSlot_, relUs(Clock::now()));
    if (recorder_) recorder_->recordPacket(curTick_, curSlot_, 'C', id, 0, 0, false);
}

void ObsSession::requestBegin(ReqId id, ReqId parent, const char* kind, Tick when) {
    if (reqtrace_) reqtrace_->onBegin(id, parent, kind, when);
}

void ObsSession::requestEnd(ReqId id, Tick when) {
    if (reqtrace_) reqtrace_->onEnd(id, when);
}

void ObsSession::requestSpan(ReqId id, ReqStage stage, Tick begin, Tick end) {
    if (reqtrace_) reqtrace_->onSpan(id, stage, begin, end);
}

}  // namespace g5r::obs
