#include "obs/profiler.hh"

#include <algorithm>
#include <array>
#include <cstdio>

#include "exp/json.hh"

namespace g5r::obs {

namespace {

bool containsTerm(std::string_view name, std::string_view term) {
    return name.find(term) != std::string_view::npos;
}

constexpr std::array<std::string_view, 10> kMemoryTerms = {
    "l1", "l2", "llc", "cache", "dram", "mem", "xbar", "noc", "bus", "scratchpad"};
constexpr std::array<std::string_view, 4> kRtlTerms = {"nvdla", "pmu", "bitonic", "rtl"};
constexpr std::array<std::string_view, 3> kCoreTerms = {"cpu", "core", "host"};

}  // namespace

std::string_view classifyBucket(std::string_view objectName) {
    for (const auto term : kMemoryTerms) {
        if (containsTerm(objectName, term)) return "memory";
    }
    for (const auto term : kRtlTerms) {
        if (containsTerm(objectName, term)) return "rtl";
    }
    for (const auto term : kCoreTerms) {
        if (containsTerm(objectName, term)) return "core";
    }
    return "other";
}

int HostProfiler::addSlot(std::string name) {
    slots_.push_back(Slot{std::move(name), 0, 0, 0.0});
    return static_cast<int>(slots_.size() - 1);
}

ProfileReport HostProfiler::report() const {
    ProfileReport rep;
    rep.runSeconds = runSeconds_;
    rep.stride = stride_;
    for (const Slot& s : slots_) {
        rep.dispatches += s.dispatches;
        if (s.dispatches == 0) continue;
        ProfileEntry e;
        e.name = s.name;
        e.dispatches = s.dispatches;
        e.sampled = s.sampled;
        e.sampledSeconds = s.seconds;
        e.estimatedSeconds =
            s.sampled ? s.seconds * static_cast<double>(s.dispatches) /
                            static_cast<double>(s.sampled)
                      : 0.0;
        rep.entries.push_back(std::move(e));
    }
    std::sort(rep.entries.begin(), rep.entries.end(),
              [](const ProfileEntry& a, const ProfileEntry& b) {
                  if (a.estimatedSeconds != b.estimatedSeconds) {
                      return a.estimatedSeconds > b.estimatedSeconds;
                  }
                  return a.name < b.name;  // Deterministic ties.
              });
    return rep;
}

std::vector<ProfileBucket> ProfileReport::buckets() const {
    // Fixed order so reports diff cleanly run to run.
    std::vector<ProfileBucket> out = {
        {"rtl", 0.0, 0.0}, {"memory", 0.0, 0.0}, {"core", 0.0, 0.0},
        {"other", 0.0, 0.0}, {"queue", 0.0, 0.0}};
    double attributed = 0.0;
    for (const ProfileEntry& e : entries) {
        const std::string_view bucket = classifyBucket(e.name);
        for (ProfileBucket& b : out) {
            if (b.name == bucket) {
                b.seconds += e.estimatedSeconds;
                break;
            }
        }
        attributed += e.estimatedSeconds;
    }
    // Remainder: the event loop itself plus sampling skew. Clamped at zero
    // because stride scaling can legitimately over-estimate slightly.
    out.back().seconds = std::max(0.0, runSeconds - attributed);
    for (ProfileBucket& b : out) {
        b.fraction = runSeconds > 0.0 ? b.seconds / runSeconds : 0.0;
    }
    return out;
}

std::string ProfileReport::table() const {
    std::string out;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "host profile: %.6f s over %llu dispatches (stride %u)\n",
                  runSeconds, static_cast<unsigned long long>(dispatches), stride);
    out += buf;
    for (const ProfileBucket& b : buckets()) {
        std::snprintf(buf, sizeof buf, "  %-8s %10.6f s  %5.1f%%\n", b.name.c_str(),
                      b.seconds, 100.0 * b.fraction);
        out += buf;
    }
    for (const ProfileEntry& e : entries) {
        std::snprintf(buf, sizeof buf, "  %-40s %10.6f s  %10llu dispatches\n",
                      e.name.c_str(), e.estimatedSeconds,
                      static_cast<unsigned long long>(e.dispatches));
        out += buf;
    }
    return out;
}

exp::Json ProfileReport::toJson() const {
    exp::Json doc = exp::Json::object();
    doc["runSeconds"] = runSeconds;
    doc["dispatches"] = dispatches;
    doc["stride"] = static_cast<std::uint64_t>(stride);
    exp::Json bucketObj = exp::Json::object();
    for (const ProfileBucket& b : buckets()) {
        exp::Json one = exp::Json::object();
        one["seconds"] = b.seconds;
        one["fraction"] = b.fraction;
        bucketObj[b.name] = std::move(one);
    }
    doc["buckets"] = std::move(bucketObj);
    exp::Json objects = exp::Json::array();
    for (const ProfileEntry& e : entries) {
        exp::Json one = exp::Json::object();
        one["name"] = e.name;
        one["dispatches"] = e.dispatches;
        one["sampled"] = e.sampled;
        one["estimatedSeconds"] = e.estimatedSeconds;
        objects.push(std::move(one));
    }
    doc["objects"] = std::move(objects);
    return doc;
}

}  // namespace g5r::obs
