// First-divergence finder over two flight recordings (obs/recording.hh).
//
// Cumulative interval digests make "do the runs agree through interval i?"
// a monotone predicate, so the finder binary-searches the merged interval
// index list for the first interval where the selected lanes' cumulative
// digests disagree, then drills into that interval's per-object rows (keyed
// by SimObject *name* — slot numbers are per-run) to name the owning object
// and pulls the event neighborhood out of both black boxes.
//
// Lane selection: jobs-1 vs jobs-N determinism checks compare both lanes;
// gated-vs-ungated identity checks compare the packet lane only, because
// quiescence gating changes the dispatch stream by design (DESIGN.md §8).
#pragma once

#include <string>
#include <vector>

#include "obs/recording.hh"

namespace g5r::obs {

enum class DiffLane {
    kBoth,         ///< Dispatch and packet lanes must both match.
    kPacketsOnly,  ///< Packet lane only (gated-vs-ungated comparisons).
};

struct DivergenceReport {
    /// False when the recordings cannot be compared at all (different
    /// interval widths); error holds the reason.
    bool comparable = true;
    std::string error;

    bool diverged = false;

    // Valid when diverged:
    std::string lane;  ///< "dispatch", "packet", or "end" (tail-only mismatch).
    std::uint64_t intervalIndex = 0;
    Tick startTick = 0;
    Tick endTick = 0;          ///< Exclusive.
    std::string objectName;    ///< Owning SimObject ("" when not localizable).
    std::string detail;        ///< One-line counts/digests summary of the interval.
    std::vector<std::string> neighborhoodA;  ///< Black-box lines near the divergence.
    std::vector<std::string> neighborhoodB;
};

/// Locate the first divergence between @p a and @p b.
DivergenceReport findFirstDivergence(const Recording& a, const Recording& b,
                                     DiffLane lane = DiffLane::kBoth);

/// Multi-line human-readable report; @p nameA / @p nameB label the sides.
std::string formatDivergenceReport(const DivergenceReport& rep, const std::string& nameA,
                                   const std::string& nameB);

/// Machine-readable form of the same report (g5r-diff --json): one JSON
/// document with every DivergenceReport field, plus the side labels.
std::string divergenceReportJson(const DivergenceReport& rep, const std::string& nameA,
                                 const std::string& nameB);

/// Convenience: load both paths, diff, and format. Returns the report; any
/// load error comes back as comparable == false.
DivergenceReport diffRecordingFiles(const std::string& pathA, const std::string& pathB,
                                    DiffLane lane = DiffLane::kBoth);

}  // namespace g5r::obs
