// Trigger-windowed waveform capture.
//
// Always-on VCD tracing is far too expensive for Table 2/3-scale runs, so
// this layer makes hardware-level waveforms cost (almost) nothing until the
// condition of interest fires: a TriggerSpec watchpoint on one signal —
// value==K, any-change, or rising-edge — is polled once per cycle while a
// ring of pre-trigger value snapshots is maintained in memory. When the
// watchpoint fires, the VcdWriter is constructed *then*: the ring is
// replayed into it (pre-trigger history), the firing cycle is dumped, and
// capture continues live for the post-trigger window. A run whose trigger
// never fires writes no file at all.
//
// Spec string syntax (GEM5RTL_TRIGGER for the bundled models):
//
//   <signal>==<K>[@pre,post]     fire when the signal's value equals K
//   <signal>:change[@pre,post]   fire on any value change
//   <signal>:rise[@pre,post]     fire on zero -> non-zero
//
// K is decimal or 0x-hex; pre/post are cycle counts for the capture window
// (defaults 16 and 64). Signal names match the VcdSignal's name or its
// "scope.name" path.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rtl/vcd.hh"

namespace g5r::obs {

struct TriggerSpec {
    enum class Kind { kValueEquals, kAnyChange, kRisingEdge };

    std::string signal;
    Kind kind = Kind::kAnyChange;
    std::uint64_t value = 0;  ///< Comparand for kValueEquals.
    std::uint64_t preTriggerCycles = 16;
    std::uint64_t postTriggerCycles = 64;

    /// Parse the spec syntax above. On failure returns nullopt and, when
    /// @p error is non-null, stores the reason.
    static std::optional<TriggerSpec> parse(std::string_view spec, std::string* error = nullptr);
};

class TriggerCapture {
public:
    /// Watch @p spec.signal within @p signals (the full capture set) and
    /// write the window to @p vcdPath when it fires. Throws
    /// std::invalid_argument when the watched signal is not in the list.
    TriggerCapture(TriggerSpec spec, std::string vcdPath,
                   std::vector<rtl::VcdSignal> signals, std::uint64_t timescalePs = 1000);
    ~TriggerCapture();
    TriggerCapture(const TriggerCapture&) = delete;
    TriggerCapture& operator=(const TriggerCapture&) = delete;

    /// Poll once per design cycle, after the design has settled. Cheap
    /// while armed (one read per signal into the ring, one compare); a
    /// no-op once the post-trigger window has been written.
    void cycle(std::uint64_t cycleNumber);

    bool fired() const { return fired_; }
    std::uint64_t firedCycle() const { return firedCycle_; }

    /// True once the post-trigger window is complete and the file closed.
    bool done() const { return done_; }

    /// True while the capture still wants cycle() calls — the model must
    /// not report an idle hint while this holds, or gating would starve
    /// the post-trigger window.
    bool active() const { return !done_; }

    const std::string& path() const { return vcdPath_; }
    const TriggerSpec& spec() const { return spec_; }

    /// Build a capture from a spec string, resolving the watched signal in
    /// @p signals. Returns nullptr (reason in @p error when non-null) on a
    /// malformed spec or unknown signal.
    static std::unique_ptr<TriggerCapture> fromSpecString(std::string_view specString,
                                                          std::string vcdPath,
                                                          std::vector<rtl::VcdSignal> signals,
                                                          std::uint64_t timescalePs = 1000,
                                                          std::string* error = nullptr);

private:
    struct Snapshot {
        std::uint64_t cycle = 0;
        std::vector<std::uint64_t> values;
    };

    bool conditionFires(std::uint64_t watchValue);
    void fire(std::uint64_t cycleNumber);
    void finishCapture();

    TriggerSpec spec_;
    std::string vcdPath_;
    std::vector<rtl::VcdSignal> signals_;
    std::size_t watchIndex_ = 0;
    std::uint64_t timescalePs_;

    std::vector<Snapshot> ring_;  ///< Pre-trigger history, capacity = preTriggerCycles.
    std::size_t ringNext_ = 0;
    std::size_t ringCount_ = 0;

    std::vector<std::uint64_t> cur_;  ///< Scratch: this cycle's values.
    bool havePrev_ = false;
    std::uint64_t prevWatch_ = 0;

    bool fired_ = false;
    bool done_ = false;
    std::uint64_t firedCycle_ = 0;
    std::uint64_t postLeft_ = 0;
    std::unique_ptr<rtl::VcdWriter> writer_;
};

}  // namespace g5r::obs
