// Configuration for the observability subsystem (src/obs/).
//
// Observability is off by default and costs nothing when off (see
// sim/observer.hh for the cost argument). It is switched on either
// programmatically — SocConfig carries an ObsOptions — or from the
// environment:
//
//   GEM5RTL_TRACE=1          write <run>.trace.json to the current directory
//   GEM5RTL_TRACE=<dir>      write it to <dir> (created by the caller)
//   GEM5RTL_TRACE=0          force tracing off
//   GEM5RTL_PROFILE=1        per-SimObject host-time profile
//   GEM5RTL_PROFILE_STRIDE=N time every Nth dispatch (default 1 = all)
//   GEM5RTL_TRACE_INTERVAL=T counter sample interval in ticks
//   GEM5RTL_RECORD=1         write <run>.g5rec flight recording here
//   GEM5RTL_RECORD=<dir>     write it to <dir> (created by the caller)
//   GEM5RTL_RECORD=0         force recording off
//   GEM5RTL_RECORD_INTERVAL=T digest interval in ticks
//   GEM5RTL_METRICS=1        write <run>.metrics.jsonl timeline here
//   GEM5RTL_METRICS=<dir>    write it to <dir> (created by the caller)
//   GEM5RTL_METRICS=0        force the metrics timeline off
//   GEM5RTL_METRICS_INTERVAL=T metrics sample interval in ticks
//   GEM5RTL_REQTRACE=1       write <run>.reqtrace.jsonl request trace here
//   GEM5RTL_REQTRACE=<dir>   write it to <dir> (created by the caller)
//   GEM5RTL_REQTRACE=0       force request tracing off
#pragma once

#include <string>

#include "sim/ticks.hh"

namespace g5r::obs {

struct ObsOptions {
    /// Emit a Chrome trace-event JSON file (Perfetto-loadable).
    bool traceEnabled = false;

    /// Directory the trace file is written into ("." = current directory).
    std::string traceDir = ".";

    /// Attribute host wall time to SimObjects during run().
    bool profileEnabled = false;

    /// Time every Nth dispatch (>= 1). Dispatch *counts* stay exact; wall
    /// time is scaled up from the sampled subset, cutting the two
    /// steady_clock reads per dispatch to two per stride.
    unsigned profileStride = 1;

    /// Simulated-time interval between counter samples in the trace.
    Tick counterIntervalTicks = 1'000'000;  // 1 us of simulated time.

    /// Write a flight recording (.g5rec sidecar) of the dispatch and packet
    /// streams; see obs/recording.hh for the format.
    bool recordEnabled = false;

    /// Directory the recording is written into ("." = current directory).
    std::string recordDir = ".";

    /// Exact recording path; overrides recordDir when non-empty. Lets a
    /// harness record two runs of the same label to different files.
    std::string recordPath;

    /// Simulated-time interval covered by one digest record.
    Tick recordIntervalTicks = 1'000'000;  // 1 us of simulated time.

    /// Depth of the always-on black-box ring (last K dispatches/packets
    /// dumped by panic()). Active whenever recording is enabled.
    unsigned blackBoxDepth = 64;

    /// Write a metrics timeline (.metrics.jsonl sidecar): periodic
    /// delta-encoded snapshots of every stats::Group; see obs/metrics.hh.
    bool metricsEnabled = false;

    /// Directory the timeline is written into ("." = current directory).
    std::string metricsDir = ".";

    /// Exact timeline path; overrides metricsDir when non-empty.
    std::string metricsPath;

    /// Simulated-time interval between metrics samples.
    Tick metricsIntervalTicks = 1'000'000;  // 1 us of simulated time.

    /// Collect request-level causal spans (.reqtrace.jsonl sidecar) and
    /// critical-path stage blame; see obs/reqtrace.hh.
    bool reqtraceEnabled = false;

    /// Directory the request trace is written into ("." = current
    /// directory).
    std::string reqtraceDir = ".";

    /// Exact request-trace path; overrides reqtraceDir when non-empty. An
    /// explicit "-" keeps the trace in memory only (no sidecar) — the DSE
    /// harness uses this to compute stage blame without touching disk.
    std::string reqtracePath;

    bool anyEnabled() const {
        return traceEnabled || profileEnabled || recordEnabled || metricsEnabled ||
               reqtraceEnabled;
    }

    /// Overlay the GEM5RTL_* environment variables (see header comment)
    /// onto @p base. The environment wins where set, so a benchmark run
    /// can be traced without recompiling or editing its config.
    static ObsOptions fromEnv(ObsOptions base);
    static ObsOptions fromEnv();  ///< fromEnv() over all-default options.
};

}  // namespace g5r::obs
