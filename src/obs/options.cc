#include "obs/options.hh"

#include <cstdlib>
#include <string_view>

namespace g5r::obs {

ObsOptions ObsOptions::fromEnv() { return fromEnv(ObsOptions{}); }

ObsOptions ObsOptions::fromEnv(ObsOptions base) {
    if (const char* env = std::getenv("GEM5RTL_TRACE")) {
        const std::string_view v{env};
        if (v.empty() || v == "0") {
            base.traceEnabled = false;
        } else {
            base.traceEnabled = true;
            if (v != "1") base.traceDir = std::string{v};
        }
    }
    if (const char* env = std::getenv("GEM5RTL_PROFILE")) {
        const std::string_view v{env};
        base.profileEnabled = !v.empty() && v != "0";
    }
    if (const char* env = std::getenv("GEM5RTL_PROFILE_STRIDE")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1) base.profileStride = static_cast<unsigned>(v);
    }
    if (const char* env = std::getenv("GEM5RTL_TRACE_INTERVAL")) {
        const long long v = std::strtoll(env, nullptr, 10);
        if (v >= 1) base.counterIntervalTicks = static_cast<Tick>(v);
    }
    if (const char* env = std::getenv("GEM5RTL_RECORD")) {
        const std::string_view v{env};
        if (v.empty() || v == "0") {
            base.recordEnabled = false;
        } else {
            base.recordEnabled = true;
            if (v != "1") base.recordDir = std::string{v};
        }
    }
    if (const char* env = std::getenv("GEM5RTL_RECORD_INTERVAL")) {
        const long long v = std::strtoll(env, nullptr, 10);
        if (v >= 1) base.recordIntervalTicks = static_cast<Tick>(v);
    }
    if (const char* env = std::getenv("GEM5RTL_METRICS")) {
        const std::string_view v{env};
        if (v.empty() || v == "0") {
            base.metricsEnabled = false;
        } else {
            base.metricsEnabled = true;
            if (v != "1") base.metricsDir = std::string{v};
        }
    }
    if (const char* env = std::getenv("GEM5RTL_METRICS_INTERVAL")) {
        const long long v = std::strtoll(env, nullptr, 10);
        if (v >= 1) base.metricsIntervalTicks = static_cast<Tick>(v);
    }
    if (const char* env = std::getenv("GEM5RTL_REQTRACE")) {
        const std::string_view v{env};
        if (v.empty() || v == "0") {
            base.reqtraceEnabled = false;
        } else {
            base.reqtraceEnabled = true;
            if (v != "1") base.reqtraceDir = std::string{v};
        }
    }
    return base;
}

}  // namespace g5r::obs
