// obs::Recorder — the flight recorder.
//
// Fed by ObsSession on every dispatch and packet-lifecycle callback, it
// maintains:
//
//   * per-interval digests of the dispatch and packet lanes, streamed to a
//     .g5rec sidecar file (format: obs/recording.hh) as each interval
//     closes, with a flush per interval so a crash loses at most the open
//     interval; and
//   * an always-cheap in-memory ring of the last K dispatches/packets — the
//     "black box" — dumped to stderr by panic() via a panic hook registered
//     for the lifetime of the recorder, and appended to the sidecar by
//     finish() so g5r-diff can show the event neighborhood of a divergence.
//
// The recorder holds no host-time or pointer state in anything it writes:
// recordings of byte-identical runs are byte-identical at any --jobs count.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "obs/recording.hh"
#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace g5r::obs {

class Recorder {
public:
    /// Open @p path for writing. An unopenable path degrades to ok()==false:
    /// the black box still runs, the sidecar is silently skipped.
    Recorder(std::string path, std::string runLabel, Tick intervalTicks,
             unsigned blackBoxDepth);
    ~Recorder();
    Recorder(const Recorder&) = delete;
    Recorder& operator=(const Recorder&) = delete;

    bool ok() const { return static_cast<bool>(out_); }
    const std::string& path() const { return path_; }

    /// One event dispatch. @p labelHash is the precomputed digestOf(label)
    /// (cached per Event* by ObsSession) so the hot path hashes 8 bytes,
    /// not the label string.
    void recordDispatch(Tick when, int slot, const std::string& label,
                        std::uint64_t labelHash);

    /// One packet lifecycle step: op is 'I'ssue, 'F'orward, 'R'espond,
    /// 'C'omplete. addr/size/isRead are meaningful for 'I' only.
    void recordPacket(Tick when, int slot, char op, std::uint64_t id, std::uint64_t addr,
                      unsigned size, bool isRead);

    /// Record the slot -> SimObject name binding (first time only).
    void noteObjectName(int slot, const std::string& name);

    /// Close the open interval, write the name table, black box and end
    /// line, and close the file. Idempotent; also run by the destructor.
    void finish(Tick finalTick);

    /// The black-box report panic() prints: one header plus one line per
    /// ring entry, oldest first.
    std::string blackBoxReport() const;

private:
    struct ObjAcc {
        std::uint64_t count = 0;
        std::uint64_t digest = kDigestSeed;
        Tick firstTick = 0;
    };

    void rollTo(Tick when);
    void flushInterval();
    void pushBlackBox(char kind, Tick tick, int slot, std::string text);

    std::string path_;
    std::string runLabel_;
    std::ofstream out_;
    Tick interval_;

    // Open interval state.
    bool intervalOpen_ = false;
    std::uint64_t intervalIndex_ = 0;
    Tick intervalStart_ = 0;
    std::uint64_t ivDispatchCount_ = 0;
    std::uint64_t ivDispatchDigest_ = kDigestSeed;
    std::uint64_t ivPacketCount_ = 0;
    std::uint64_t ivPacketDigest_ = kDigestSeed;
    std::vector<ObjAcc> ivObjects_;  ///< Indexed by slot.

    // Whole-run state.
    std::uint64_t cumDispatchDigest_ = kDigestSeed;
    std::uint64_t cumPacketDigest_ = kDigestSeed;
    std::uint64_t totalDispatches_ = 0;
    std::uint64_t totalPackets_ = 0;
    Tick lastTick_ = 0;
    std::vector<std::string> objectNames_;

    // Black box.
    std::vector<BlackBoxEntry> ring_;
    std::size_t ringNext_ = 0;
    std::uint64_t ringSeq_ = 0;
    unsigned ringDepth_;

    bool finished_ = false;
    std::unique_ptr<PanicHookScope> panicHook_;
};

}  // namespace g5r::obs
