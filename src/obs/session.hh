// ObsSession: the production SimObserver.
//
// One session per Simulation (and per thread — the one-thread-per-run model
// of src/exp/ carries over). It fans the observer callbacks out to up to
// three sinks, each individually optional:
//
//   * TraceSession  — Chrome/Perfetto trace: one "X" span per event
//     dispatch on the owning SimObject's track, counter samples on a
//     simulated-time interval, and flow arrows following each packet from
//     issue to completion.
//   * HostProfiler  — wall-time attribution per SimObject, folded into
//     rtl/memory/core/other/queue buckets for the fig. 6/7 overhead story.
//   * Recorder      — flight recording: interval digests of the dispatch
//     and packet streams to a .g5rec sidecar for g5r-diff, plus the
//     black-box ring panic() dumps.
//
// Event -> SimObject attribution works by name: event names in this
// codebase are "<object>.<what>" ("system.membus.reqDeliver.dbbif"), so the
// longest registered object name that prefixes the event name (on a '.'
// boundary) owns the dispatch. The resolution is cached per Event*, making
// it a hash lookup on the hot path. (Caveat: the cache keys on the event's
// address, so a destroyed-then-reallocated event could inherit a stale
// owner; events here are long-lived members, and a mis-attributed span is
// an acceptable observability error.)
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hh"
#include "obs/options.hh"
#include "obs/profiler.hh"
#include "obs/recorder.hh"
#include "obs/reqtrace.hh"
#include "obs/trace_session.hh"
#include "sim/observer.hh"
#include "sim/stats.hh"

namespace g5r {
class SimObject;
class Simulation;
namespace stats {
class Group;
class Stat;
}  // namespace stats
}  // namespace g5r

namespace g5r::obs {

/// Compact view of one per-requestor latency distribution, for BENCH_*.json.
/// The percentile fields come from the "latencyHist.<suffix>" histogram that
/// shadows each "latency.<suffix>" distribution; they are 0 when no matching
/// histogram exists.
struct LatencySummary {
    std::uint64_t count = 0;
    double minTicks = 0.0;
    double meanTicks = 0.0;
    double maxTicks = 0.0;
    double p50Ticks = 0.0;
    double p99Ticks = 0.0;
};

/// All "latency.<suffix>" distributions of a stats group (the per-master
/// round-trip distributions an Xbar maintains), keyed by suffix.
std::vector<std::pair<std::string, LatencySummary>> portLatencies(const stats::Group& group);

/// Fold every "latencyHist.<suffix>" histogram of @p group into one
/// SoC-wide latency histogram. The merge is exact (bucket counts add), so
/// quantiles of the result are the true quantiles of the union of all
/// per-master sample streams.
stats::HistogramData mergedPortLatencyHistogram(const stats::Group& group);

class ObsSession final : public SimObserver {
public:
    /// Build a session for @p sim per @p opts and attach it as the
    /// simulation's observer. Returns nullptr when nothing is enabled —
    /// callers hold a null unique_ptr and the simulation keeps its fast
    /// path. @p runName names the trace file ("" = generated).
    static std::unique_ptr<ObsSession> create(Simulation& sim, const ObsOptions& opts,
                                              std::string_view runName);

    ~ObsSession() override;
    ObsSession(const ObsSession&) = delete;
    ObsSession& operator=(const ObsSession&) = delete;

    /// Sample @p stat as a trace counter every counterIntervalTicks.
    void addCounter(const stats::Stat& stat);

    /// Flush and close the sinks; build the profile report. Idempotent,
    /// also run by the destructor.
    void finish();

    TraceSession* trace() { return trace_.get(); }
    Recorder* recorder() { return recorder_.get(); }
    MetricsSession* metrics() { return metrics_.get(); }
    ReqTraceSession* reqtrace() { return reqtrace_.get(); }
    bool profiling() const { return profiler_ != nullptr; }

    /// The profile report; non-null only after finish() when profiling.
    std::shared_ptr<const ProfileReport> profileReport() const { return report_; }

    // --- SimObserver --------------------------------------------------------
    void runBegin() override;
    void runEnd() override;
    void dispatchBegin(const Event& ev, Tick when) override;
    void dispatchEnd(Tick when) override;
    void packetIssued(std::uint64_t id, std::uint64_t addr, unsigned size,
                      bool isRead) override;
    void packetForwarded(std::uint64_t id) override;
    void packetResponded(std::uint64_t id) override;
    void packetCompleted(std::uint64_t id) override;
    void requestBegin(ReqId id, ReqId parent, const char* kind, Tick when) override;
    void requestEnd(ReqId id, Tick when) override;
    void requestSpan(ReqId id, ReqStage stage, Tick begin, Tick end) override;

private:
    using Clock = std::chrono::steady_clock;

    struct Owner {
        int slot;
        std::string label;       ///< Span name: the event's own name.
        std::uint64_t labelHash;  ///< digestOf(label), for the recorder.
    };

    ObsSession(Simulation& sim, const ObsOptions& opts, std::string_view runName);

    const Owner& resolve(const Event& ev);
    int slotFor(const SimObject& obj);
    double relUs(Clock::time_point tp) const {
        return std::chrono::duration<double, std::micro>(tp - t0_).count();
    }
    void sampleCounters(Tick when);

    /// Translate the collected request records into Perfetto spans + flow
    /// arrows on the trace's dedicated "req:*" tracks (run at finish()).
    void emitRequestSpans();

    Simulation& sim_;
    std::unique_ptr<TraceSession> trace_;
    std::unique_ptr<HostProfiler> profiler_;
    std::unique_ptr<Recorder> recorder_;
    std::unique_ptr<MetricsSession> metrics_;
    std::unique_ptr<ReqTraceSession> reqtrace_;
    std::shared_ptr<const ProfileReport> report_;

    /// True when request tracing is the *only* enabled sink: dispatchBegin
    /// then skips event resolution, profiling, and sampling entirely —
    /// request hooks are component-driven and never consult the dispatch
    /// state, which is what keeps the always-on DSE tracing inside the <2%
    /// overhead budget.
    bool reqtraceOnly_ = false;

    /// Slot 0 is "(unattributed)"; object slots are allocated lazily the
    /// first time an object's event dispatches, so SimObjects created
    /// after the session (attachRtlModel, host objects) are still
    /// attributed. Trace tids equal slot indices.
    std::unordered_map<const SimObject*, int> slotByObject_;
    int nextSlot_ = 1;
    std::unordered_map<const Event*, Owner> ownerCache_;

    std::vector<const stats::Stat*> counters_;
    Tick counterInterval_;
    Tick nextCounterTick_ = 0;

    unsigned stride_;
    unsigned strideCount_ = 0;
    bool timedThis_ = false;
    int curSlot_ = 0;
    const std::string* curLabel_ = nullptr;
    Tick curTick_ = 0;
    Clock::time_point t0_;
    Clock::time_point dispatchStart_;
    Clock::time_point runStart_;
    bool finished_ = false;
};

}  // namespace g5r::obs
